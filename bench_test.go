package evedge_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	evedge "evedge"
	"evedge/internal/dsfa"
	"evedge/internal/e2sf"
	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/pipeline"
	"evedge/internal/scene"
	"evedge/internal/sparse"
	"evedge/internal/taskgraph"
)

// benchConfig sizes the experiment benchmarks. The harness uses the
// full DAVIS346 geometry; results are cached across b.N iterations by
// the experiments package, so the first iteration pays the simulation
// cost and the table below reflects steady-state regeneration.
func benchConfig() evedge.ExperimentConfig { return evedge.FullExperimentConfig() }

func ratioCell(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		b.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

// runExperiment executes one experiment per iteration and prints the
// regenerated table once.
func runExperiment(b *testing.B, id string) *evedge.ExperimentResult {
	b.Helper()
	var res *evedge.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = evedge.RunExperiment(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + evedge.RenderExperiment(res))
	return res
}

// BenchmarkTable1 regenerates the network summary (paper Table 1).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig1 regenerates Figure 1: events per frame vs operations
// expended for Adaptive-SpikeNet on IndoorFlying1.
func BenchmarkFig1(b *testing.B) {
	res := runExperiment(b, "fig1")
	waste := ratioCell(b, res.Rows[4][1])
	b.ReportMetric(waste, "waste-factor")
}

// BenchmarkFig3 regenerates Figure 3: per-network event-frame density.
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5 regenerates Figure 5: IndoorFlying2 temporal density.
func BenchmarkFig5(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(ratioCell(b, res.Rows[3][1]), "peak/mean")
}

// BenchmarkFig8 regenerates Figure 8: single-task speedups vs all-GPU
// at each optimization level (paper band 1.23x-2.05x).
func BenchmarkFig8(b *testing.B) {
	res := runExperiment(b, "fig8")
	var minAll, maxAll = 100.0, 0.0
	for _, row := range res.Rows {
		v := ratioCell(b, row[3])
		if v < minAll {
			minAll = v
		}
		if v > maxAll {
			maxAll = v
		}
	}
	b.ReportMetric(minAll, "min-speedup")
	b.ReportMetric(maxAll, "max-speedup")
}

// BenchmarkEnergy regenerates the Sec. 6 energy comparison (paper band
// 1.23x-2.15x).
func BenchmarkEnergy(b *testing.B) {
	res := runExperiment(b, "energy")
	var minR, maxR = 100.0, 0.0
	for _, row := range res.Rows {
		v := ratioCell(b, row[3])
		if v < minR {
			minR = v
		}
		if v > maxR {
			maxR = v
		}
	}
	b.ReportMetric(minR, "min-improvement")
	b.ReportMetric(maxR, "max-improvement")
}

// BenchmarkFig9 regenerates Figure 9: multi-task NMP vs round-robin
// (paper: 1.43x-1.81x over RR-Network, 1.24x-1.41x over RR-Layer).
func BenchmarkFig9(b *testing.B) {
	res := runExperiment(b, "fig9")
	for _, row := range res.Rows {
		b.ReportMetric(ratioCell(b, row[2]), row[0]+"-vs-RRNet")
	}
}

// BenchmarkFig10a regenerates Figure 10a: search convergence.
func BenchmarkFig10a(b *testing.B) {
	res := runExperiment(b, "fig10a")
	b.ReportMetric(ratioCell(b, res.Rows[3][1]), "convergence-gain")
}

// BenchmarkFig10b regenerates Figure 10b: evolutionary vs random
// search (paper: 1.42x).
func BenchmarkFig10b(b *testing.B) {
	res := runExperiment(b, "fig10b")
	b.ReportMetric(ratioCell(b, res.Rows[2][1]), "vs-random")
}

// BenchmarkTable2 regenerates the accuracy table.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices called out in DESIGN.md.
// ---------------------------------------------------------------------------

// BenchmarkAblationE2SFDirect compares direct event->sparse conversion
// against the dense-frame-then-sparsify detour whose encode overhead
// the paper's Sec. 4.1 motivates against.
func BenchmarkAblationE2SFDirect(b *testing.B) {
	stream := scene.GenerateUniform(346, 260, 400_000, 100_000, 1)
	conv, err := e2sf.New(e2sf.Config{Width: 346, Height: 260, NumBins: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := conv.Convert(stream, 0, 100_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-then-sparsify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dense, _, err := conv.ConvertDense(stream, 0, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range dense {
				if _, err := sparse.FromDense(d, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSparseConv compares dense, im2col and sparse
// convolution kernels at event-frame density.
func BenchmarkAblationSparseConv(b *testing.B) {
	in := sparse.NewTensor(2, 128, 128)
	in.FillRandomSparse(rand.New(rand.NewSource(3)), 0.05)
	f := sparse.NewFilter(16, 2, 3, 1, 1)
	for i := range f.Weights {
		f.Weights[i] = 0.01 * float32(i%7)
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparse.Conv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparse.Im2colConv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparse.SparseConv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDSFAModes measures the aggregator under each merge
// mode.
func BenchmarkAblationDSFAModes(b *testing.B) {
	frames := benchFrames(b)
	for _, mode := range []dsfa.CMode{dsfa.CAdd, dsfa.CAverage, dsfa.CBatch} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := dsfa.DefaultConfig()
				cfg.Mode = mode
				agg, err := dsfa.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range frames {
					agg.Push(f)
				}
				agg.Dispatch()
			}
		})
	}
}

// BenchmarkAblationDSFAThresholds sweeps the MtTh delay threshold and
// reports the achieved merge ratio.
func BenchmarkAblationDSFAThresholds(b *testing.B) {
	frames := benchFrames(b)
	for _, mtth := range []int64{2_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("MtTh=%dus", mtth), func(b *testing.B) {
			var mr float64
			for i := 0; i < b.N; i++ {
				cfg := dsfa.DefaultConfig()
				cfg.MtThUS = mtth
				agg, err := dsfa.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range frames {
					agg.Push(f)
				}
				agg.Dispatch()
				mr = agg.Stats().MergeRatio()
			}
			b.ReportMetric(mr, "merge-ratio")
		})
	}
}

// BenchmarkAblationNMPCache measures the fitness cache's effect on
// search cost.
func BenchmarkAblationNMPCache(b *testing.B) {
	db, model := benchWorkload(b)
	for _, disable := range []bool{false, true} {
		name := "cached"
		if disable {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			var evals int
			for i := 0; i < b.N; i++ {
				cfg := nmp.DefaultConfig()
				cfg.Population = 12
				cfg.Generations = 10
				cfg.DisableCache = disable
				mp, err := nmp.NewMapper(db, model, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mp.Search()
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Evaluations
			}
			b.ReportMetric(float64(evals), "evaluations")
		})
	}
}

// BenchmarkAblationCommAware compares scheduling with realistic
// unified-memory transfers against a free-communication idealization
// (the compute-only view some mapping frameworks take).
func BenchmarkAblationCommAware(b *testing.B) {
	for _, free := range []bool{false, true} {
		name := "comm-aware"
		platform := hw.Xavier()
		if free {
			name = "comm-free"
			platform.Link.BandwidthBps = 1e18
			platform.Link.LatencyUS = 0
		}
		model := perf.NewModel(platform)
		nets := []*nn.Network{nn.MustByName(nn.FusionFlowNet), nn.MustByName(nn.HALSIE)}
		db, err := perf.BuildProfileDB(model, nets, true, []float64{0.01, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		asg, err := nmp.RRLayer(nets, platform)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				g, err := taskgraph.Build(db, model, asg)
				if err != nil {
					b.Fatal(err)
				}
				s, err := g.Run(platform)
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.MakespanUS
			}
			b.ReportMetric(makespan, "makespan-us")
		})
	}
}

// BenchmarkAblationNMPPopulation sweeps the population size at a fixed
// evaluation budget.
func BenchmarkAblationNMPPopulation(b *testing.B) {
	db, model := benchWorkload(b)
	for _, pop := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("pop=%d", pop), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				cfg := nmp.DefaultConfig()
				cfg.Population = pop
				cfg.Generations = 320 / pop
				mp, err := nmp.NewMapper(db, model, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mp.Search()
				if err != nil {
					b.Fatal(err)
				}
				lat = res.LatencyUS
			}
			b.ReportMetric(lat, "latency-us")
		})
	}
}

// BenchmarkPipelineLevels measures one full streaming run per level
// for SpikeFlowNet at test scale.
func BenchmarkPipelineLevels(b *testing.B) {
	stream, err := evedge.GenerateSequence(scene.IndoorFlying2, evedge.HalfScale, 5, 800_000)
	if err != nil {
		b.Fatal(err)
	}
	net, err := evedge.LoadNetwork(evedge.SpikeFlowNet)
	if err != nil {
		b.Fatal(err)
	}
	for _, lvl := range []evedge.Level{evedge.LevelBaseline, evedge.LevelE2SF, evedge.LevelDSFA} {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evedge.RunPipeline(evedge.PipelineConfig{
					Net: net, Level: lvl, Stream: stream,
					Scale: evedge.HalfScale, DurUS: 800_000, Seed: 5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers ---------------------------------------------------------------

func benchFrames(b *testing.B) []*sparse.Frame {
	b.Helper()
	stream := scene.GenerateUniform(173, 130, 200_000, 500_000, 2)
	net := nn.MustByName(nn.SpikeFlowNet)
	frames, _, err := pipeline.ConvertStream(net, stream, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	return frames
}

func benchWorkload(b *testing.B) (*perf.ProfileDB, *perf.Model) {
	b.Helper()
	platform := hw.Xavier()
	model := perf.NewModel(platform)
	nets := []*nn.Network{nn.MustByName(nn.DOTIE), nn.MustByName(nn.SpikeFlowNet)}
	db, err := perf.BuildProfileDB(model, nets, true, []float64{0.005, 0.01})
	if err != nil {
		b.Fatal(err)
	}
	return db, model
}

// BenchmarkAblationCrossPlatform runs the same multi-task search on
// the Xavier and Orin platform models, demonstrating that the mapper
// ports across commodity platforms (and that the faster board shifts
// the optimum, not just scales it).
func BenchmarkAblationCrossPlatform(b *testing.B) {
	nets := []*nn.Network{nn.MustByName(nn.FusionFlowNet), nn.MustByName(nn.HALSIE)}
	for _, platName := range hw.Platforms() {
		platform, err := hw.PlatformByName(platName)
		if err != nil {
			b.Fatal(err)
		}
		model := perf.NewModel(platform)
		db, err := perf.BuildProfileDB(model, nets, true, []float64{0.01, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(platName, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				cfg := nmp.DefaultConfig()
				cfg.Population = 16
				cfg.Generations = 20
				mp, err := nmp.NewMapper(db, model, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mp.Search()
				if err != nil {
					b.Fatal(err)
				}
				lat = res.LatencyUS
			}
			b.ReportMetric(lat, "latency-us")
		})
	}
}

// BenchmarkAblationEnergyObjective compares the latency- and
// energy-objective searches (paper Sec. 4.3: "this procedure can be
// repeated to optimize for other objectives such as energy as well").
func BenchmarkAblationEnergyObjective(b *testing.B) {
	db, model := benchWorkload(b)
	for _, obj := range []nmp.Objective{nmp.MinLatency, nmp.MinEnergy} {
		name := "latency"
		if obj == nmp.MinEnergy {
			name = "energy"
		}
		b.Run(name, func(b *testing.B) {
			var lat, en float64
			for i := 0; i < b.N; i++ {
				cfg := nmp.DefaultConfig()
				cfg.Population = 16
				cfg.Generations = 20
				cfg.Objective = obj
				mp, err := nmp.NewMapper(db, model, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mp.Search()
				if err != nil {
					b.Fatal(err)
				}
				lat, en = res.LatencyUS, res.EnergyJ
			}
			b.ReportMetric(lat, "latency-us")
			b.ReportMetric(en*1000, "energy-mJ")
		})
	}
}
