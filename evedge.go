// Package evedge is a reproduction of "Ev-Edge: Efficient Execution of
// Event-based Vision Algorithms on Commodity Edge Platforms"
// (Sridharan et al., DAC 2024).
//
// Ev-Edge boosts event-camera perception pipelines on heterogeneous
// edge SoCs with three optimizations integrated into the inference
// pipeline:
//
//   - E2SF, an Event2Sparse Frame converter that turns raw AER event
//     streams directly into sparse COO-style frames;
//   - DSFA, a Dynamic Sparse Frame Aggregator that merges sparse
//     frames at runtime based on input dynamics and hardware
//     availability;
//   - NMP, a Network Mapper that evolutionarily searches per-layer
//     device placement and precision for concurrently executing
//     networks under accuracy-degradation bounds.
//
// This package is the public facade: it exposes the network zoo
// (paper Table 1), the Jetson Xavier AGX-like platform model, the
// end-to-end streaming pipeline with its cumulative optimization
// levels, the Network Mapper with its round-robin baselines, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package evedge

import (
	"io"
	"net/http"

	"evedge/internal/cluster"
	"evedge/internal/control"
	"evedge/internal/events"
	"evedge/internal/experiments"
	"evedge/internal/harness"
	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/perf"
	"evedge/internal/pipeline"
	"evedge/internal/scene"
	"evedge/internal/sched"
	"evedge/internal/serve"
)

// Core type aliases: the implementation lives in internal packages;
// these aliases form the supported public surface.
type (
	// Network is a layer DAG plus task metadata (paper Table 1).
	Network = nn.Network
	// Platform is a heterogeneous edge platform model.
	Platform = hw.Platform
	// Stream is an AER event stream.
	Stream = events.Stream
	// Event is one AER event {x, y, t, p}.
	Event = events.Event
	// PipelineConfig configures an end-to-end streaming run.
	PipelineConfig = pipeline.Config
	// PipelineReport summarizes a streaming run.
	PipelineReport = pipeline.Report
	// Level is a cumulative optimization level of the pipeline.
	Level = pipeline.Level
	// MapperConfig tunes the evolutionary search.
	MapperConfig = nmp.Config
	// MapperResult is a search or baseline outcome.
	MapperResult = nmp.Result
	// ExperimentConfig sizes an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one regenerated table or figure.
	ExperimentResult = experiments.Result
	// ScenePreset names a synthetic dataset-like sequence.
	ScenePreset = scene.Preset
	// SceneScale selects the camera resolution.
	SceneScale = scene.Scale
)

// Optimization levels (each includes the previous).
const (
	LevelBaseline = pipeline.LevelBaseline
	LevelE2SF     = pipeline.LevelE2SF
	LevelDSFA     = pipeline.LevelDSFA
	LevelNMP      = pipeline.LevelNMP
)

// Camera scales.
const (
	FullScale = scene.Full
	HalfScale = scene.Half
)

// Canonical network names.
const (
	SpikeFlowNet     = nn.SpikeFlowNet
	FusionFlowNet    = nn.FusionFlowNet
	AdaptiveSpikeNet = nn.AdaptiveSpikeNet
	HALSIE           = nn.HALSIE
	HidalgoDepth     = nn.HidalgoDepth
	DOTIE            = nn.DOTIE
	EVFlowNet        = nn.EVFlowNet
)

// Networks lists every network in the zoo.
func Networks() []string { return nn.AllNames() }

// Table1Networks lists exactly the networks of the paper's Table 1.
func Table1Networks() []string { return nn.Table1Names() }

// LoadNetwork constructs a network by canonical name.
func LoadNetwork(name string) (*Network, error) { return nn.ByName(name) }

// Xavier returns the Jetson Xavier AGX-like platform model (CPU, GPU,
// two DLAs, unified memory).
func Xavier() *Platform { return hw.Xavier() }

// Orin returns the Jetson AGX Orin-like platform model — roughly twice
// the Xavier per device class — used to show Ev-Edge porting across
// commodity platforms and to build heterogeneous serving fleets.
func Orin() *Platform { return hw.Orin() }

// Platforms lists the built-in platform preset names.
func Platforms() []string { return hw.Platforms() }

// PlatformByName returns a built-in platform preset ("xavier",
// "orin").
func PlatformByName(name string) (*Platform, error) { return hw.PlatformByName(name) }

// GenerateSequence simulates an event-camera sequence for one of the
// dataset-like presets.
func GenerateSequence(p ScenePreset, sc SceneScale, seed, durUS int64) (*Stream, error) {
	seq, err := scene.NewSequence(p, sc, seed)
	if err != nil {
		return nil, err
	}
	return seq.Generate(durUS)
}

// Presets lists the available synthetic sequences.
func Presets() []ScenePreset { return scene.AllPresets() }

// RunPipeline executes the end-to-end streaming pipeline.
func RunPipeline(cfg PipelineConfig) (*PipelineReport, error) { return pipeline.Run(cfg) }

// ParseLevel parses an optimization level by number or name (0|all-gpu,
// 1|e2sf, 2|dsfa, 3|nmp); unknown spellings are an error naming the
// valid levels, never a silent fallback.
func ParseLevel(s string) (Level, error) { return pipeline.ParseLevel(s) }

// Multi-task streaming aliases.
type (
	// MultiTaskConfig configures a concurrent streaming run of several
	// networks sharing the platform.
	MultiTaskConfig = pipeline.MultiTaskConfig
	// MultiTaskReport summarizes a concurrent streaming run.
	MultiTaskReport = pipeline.MultiTaskReport
)

// RunMultiTask streams several networks' frames through the shared
// platform under a mapper (or baseline) assignment, with cross-task
// queue contention.
func RunMultiTask(cfg MultiTaskConfig) (*MultiTaskReport, error) {
	return pipeline.RunMultiTask(cfg)
}

// NewMapper profiles the given networks on the platform (at the given
// per-task input event densities) and returns a Network Mapper ready
// to Search. Pass nil densities to profile fully dense.
func NewMapper(p *Platform, nets []*Network, densities []float64, cfg MapperConfig) (*nmp.Mapper, error) {
	model := perf.NewModel(p)
	db, err := perf.BuildProfileDB(model, nets, true, densities)
	if err != nil {
		return nil, err
	}
	return nmp.NewMapper(db, model, cfg)
}

// DefaultMapperConfig returns the search settings used by the
// experiments.
func DefaultMapperConfig() MapperConfig { return nmp.DefaultConfig() }

// Experiments lists the regenerable tables and figures.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.Run(id, cfg)
}

// RenderExperiment formats a result as an aligned text table.
func RenderExperiment(r *ExperimentResult) string { return experiments.RenderText(r) }

// FullExperimentConfig returns the full-fidelity experiment settings
// (DAVIS346 geometry, 2 s streams).
func FullExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig returns reduced settings for fast iteration.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// Serving aliases: the multi-tenant streaming inference server
// (cmd/evserve) and its client (cmd/evload).
type (
	// ServeConfig tunes the streaming inference server.
	ServeConfig = serve.Config
	// Server multiplexes client sessions onto one shared platform.
	Server = serve.Server
	// ServeClient talks to a running evserve instance.
	ServeClient = serve.Client
	// ServeSessionConfig is a session creation request.
	ServeSessionConfig = serve.SessionConfig
	// SessionSnapshot is the observable state of a serving session.
	SessionSnapshot = serve.SessionSnapshot
	// IngestResult acknowledges one ingested event chunk.
	IngestResult = serve.IngestResult
	// ResultEvent is one journaled inference result, as delivered on the
	// SSE stream at /v1/sessions/{id}/stream (ServeConfig.Journal).
	ResultEvent = serve.ResultEvent
	// ServeHealth is the /healthz payload.
	ServeHealth = serve.Health
	// DropPolicy selects what a full session ingest queue sheds.
	DropPolicy = serve.DropPolicy
	// MapperPolicy selects how sessions are placed on the platform.
	MapperPolicy = serve.MapperPolicy
	// ServeAdaptConfig enables the online adaptation plane on a server:
	// per-session DSFA retuning and warm-started NMP remaps.
	ServeAdaptConfig = serve.AdaptConfig
	// ServeTotals is a server's monotonic session-counter roll-up.
	ServeTotals = serve.SessionTotals
	// ServeNodeLoad is the node-load signal a fleet router places
	// against, including the execution scheduler's backlog signals.
	ServeNodeLoad = serve.NodeLoad
	// RetunerConfig tunes the per-session DSFA retune controller.
	RetunerConfig = control.DSFAConfig
	// RemapPlannerConfig tunes the remap/migration gate.
	RemapPlannerConfig = control.RemapConfig
	// SchedStats is the execution scheduler's counter snapshot:
	// submissions, micro-batch dispatches, coalesced members and the
	// derived batch occupancy (Server.SchedStats, Cluster.SchedTotals).
	SchedStats = sched.Stats
	// TraceConfig enables the frame-lifecycle tracer on a server or
	// fleet (ServeConfig.Trace): bounded per-session span rings,
	// per-stage latency histograms on /metrics, and Chrome trace-event
	// JSON on /v1/trace.
	TraceConfig = obs.Config
	// StageSummary is one frame-lifecycle stage's latency roll-up
	// (count, mean, p50/p99, max in virtual us).
	StageSummary = obs.StageSummary
)

// Session placement policies and queue drop policies.
const (
	MapperNMP  = serve.MapperNMP
	MapperRR   = serve.MapperRR
	DropOldest = serve.DropOldest
	DropNewest = serve.DropNewest
)

// DefaultServeConfig returns the server defaults (Xavier platform,
// round-robin placement, 4 workers).
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// ParseDropPolicy parses a queue shed policy name ("", "drop-oldest",
// "oldest", "drop-newest", "newest").
func ParseDropPolicy(s string) (DropPolicy, error) { return serve.ParseDropPolicy(s) }

// NewServer starts the worker pool and returns the streaming server;
// mount NewServer(...).Handler() on an HTTP listener and Close it on
// shutdown.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewServeClient returns a client for the server at base (e.g.
// "http://localhost:7733"). A nil http.Client uses a 30 s timeout.
func NewServeClient(base string, hc *http.Client) *ServeClient { return serve.NewClient(base, hc) }

// Cluster aliases: the sharded multi-node serving fleet (cmd/evcluster)
// that fronts N embedded Servers with load-aware routing and
// health-driven failover. The router speaks the same HTTP API as a
// single node, so ServeClient and evload work against it unchanged.
type (
	// ClusterConfig tunes the fleet: node specs, placement policy,
	// probe interval and the base per-node server config.
	ClusterConfig = cluster.Config
	// Cluster is the sharded serving fleet.
	Cluster = cluster.Cluster
	// ClusterNodeSpec describes one fleet node.
	ClusterNodeSpec = cluster.NodeSpec
	// ClusterHealth is the fleet /healthz payload.
	ClusterHealth = cluster.Health
	// ClusterNodeHealth is one node's view in the fleet health.
	ClusterNodeHealth = cluster.NodeHealth
	// PlacementPolicy selects how the router places sessions on nodes.
	PlacementPolicy = cluster.PlacementPolicy
)

// Fleet placement policies.
const (
	PolicyLeastLoaded = cluster.PolicyLeastLoaded
	PolicyHash        = cluster.PolicyHash
)

// NewCluster starts every node's worker pool plus the health-probe
// loop and returns the fleet; mount NewCluster(...).Handler() on an
// HTTP listener and Close it on shutdown.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ParseNodeSpecs parses the -nodes flag syntax ("xavier:4,orin:4").
func ParseNodeSpecs(s string) ([]ClusterNodeSpec, error) { return cluster.ParseNodeSpecs(s) }

// ParsePlacementPolicy parses a placement policy name ("" =
// least-loaded).
func ParsePlacementPolicy(s string) (PlacementPolicy, error) {
	return cluster.ParsePlacementPolicy(s)
}

// Scenario-harness aliases: the deterministic chaos/soak engine
// (cmd/evscenario) that scripts fleets of sessions, bursts, dynamics
// shifts and node kill/drain/revive against an embedded cluster (or a
// single server) on a virtual clock, and checks system-wide invariants
// on the recorded timeline.
type (
	// Scenario is a declarative chaos/soak script.
	Scenario = harness.Script
	// ScenarioPhase is one stage of a scenario.
	ScenarioPhase = harness.Phase
	// ScenarioResult is a recorded run: timeline + terminal state.
	ScenarioResult = harness.Result
	// ScenarioViolation is one failed invariant or expectation.
	ScenarioViolation = harness.Violation
)

// ScenarioNames lists the built-in scenario library.
func ScenarioNames() []string { return harness.Names() }

// ScenarioByName returns a built-in scenario script.
func ScenarioByName(name string) (Scenario, error) { return harness.Get(name) }

// RunScenario executes a scenario script under a seed. The run is
// deterministic: same (script, seed), byte-identical Encode output.
func RunScenario(sc Scenario, seed int64) (*ScenarioResult, error) { return harness.Run(sc, seed) }

// RunScenarioTraced is RunScenario with frame-lifecycle tracing forced
// on: the Chrome trace-event JSON is written to w (load it in
// chrome://tracing or Perfetto). Under the virtual clock the trace is
// byte-identical per (scenario, seed).
func RunScenarioTraced(sc Scenario, seed int64, w io.Writer) (*ScenarioResult, error) {
	sc.Trace = true
	return harness.RunTraced(sc, seed, w)
}

// CheckScenario verifies the system-wide invariants (frame
// conservation, monotonic totals, no loss on drain, migration
// cooldown) on a recorded run.
func CheckScenario(res *ScenarioResult) []ScenarioViolation { return harness.Check(res) }

// CheckScenarioExpect verifies the scenario's own outcome contract.
func CheckScenarioExpect(sc Scenario, res *ScenarioResult) []ScenarioViolation {
	return harness.CheckExpect(sc, res)
}

// EncodeEvents serializes a stream in the EVAR binary wire format —
// the same format the server's ingest endpoint accepts.
func EncodeEvents(w io.Writer, s *Stream) error { return events.WriteBinary(w, s) }

// DecodeEvents parses a stream from the EVAR binary wire format.
func DecodeEvents(r io.Reader) (*Stream, error) { return events.ReadBinary(r) }
