// Package mem is the serving hot path's memory-discipline layer:
// free-list pools for the objects the steady-state frame path churns
// through — sparse frames, dense tensors, matrices, CSR buffers, and
// (via the generic Pool) pipeline invocation and scheduler request
// structs. Borrowed objects keep their backing arrays across reuse, so
// after a short warm-up the ingest→E2SF→DSFA→dispatch cycle runs at
// zero allocations per frame (see serve's alloc-regression test).
//
// Every pool carries a double-release tripwire: Put panics loudly when
// handed an object that is already free. Use-after-release bugs in a
// pooled system otherwise surface as silent cross-session data
// corruption — a panic at the second Put is the cheap, debuggable
// failure mode.
//
// Pools are mutex-guarded and safe for concurrent use. The tripwire
// set is a map, but steady-state Put/Get pairs only insert and delete
// without growing it, which Go's map implementation does without
// allocating.
package mem

import (
	"sync"

	"evedge/internal/sparse"
)

// PoolStats counts one pool's traffic. News is the number of Gets that
// missed the free list and allocated; a steady-state hot path should
// hold News flat while Gets climbs.
type PoolStats struct {
	Gets uint64 `json:"gets"`
	Puts uint64 `json:"puts"`
	News uint64 `json:"news"`
}

// Live returns the number of objects currently borrowed.
func (s PoolStats) Live() uint64 { return s.Gets - s.Puts }

// add merges another snapshot (Arena totals).
func (s *PoolStats) add(o PoolStats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.News += o.News
}

// FramePool free-lists sparse frames. Get returns a frame with the
// requested geometry and time bounds whose channel slices are empty
// but keep the capacity of their previous use.
type FramePool struct {
	mu    sync.Mutex
	free  []*sparse.Frame
	inSet map[*sparse.Frame]struct{}
	stats PoolStats
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool {
	return &FramePool{inSet: map[*sparse.Frame]struct{}{}}
}

// Get borrows a frame with the given geometry and time bounds.
func (p *FramePool) Get(h, w int, t0, t1 int64) *sparse.Frame {
	p.mu.Lock()
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		delete(p.inSet, f)
		p.mu.Unlock()
		f.Reset(h, w, t0, t1)
		return f
	}
	p.stats.News++
	p.mu.Unlock()
	return sparse.NewFrame(h, w, t0, t1)
}

// Put returns a frame to the pool. Putting the same frame twice
// without an intervening Get panics: the caller kept a stale
// reference, and letting two owners share a recycled frame would
// corrupt data silently.
func (p *FramePool) Put(f *sparse.Frame) {
	if f == nil {
		panic("mem: Put of nil frame")
	}
	p.mu.Lock()
	if _, dup := p.inSet[f]; dup {
		p.mu.Unlock()
		panic("mem: double release of sparse.Frame")
	}
	p.stats.Puts++
	p.inSet[f] = struct{}{}
	p.free = append(p.free, f)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *FramePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// tensorShape keys the tensor free lists; pooled kernels reuse a small
// number of fixed shapes (one per layer), so per-shape lists stay warm.
type tensorShape struct{ c, h, w int }

// TensorPool free-lists dense tensors by exact shape. Returned
// tensors' contents are UNSPECIFIED — the Into-style kernels
// initialize every element (bias fill or zero) before accumulating,
// so Get skips the redundant memclr.
type TensorPool struct {
	mu    sync.Mutex
	free  map[tensorShape][]*sparse.Tensor
	inSet map[*sparse.Tensor]struct{}
	stats PoolStats
}

// NewTensorPool returns an empty pool.
func NewTensorPool() *TensorPool {
	return &TensorPool{
		free:  map[tensorShape][]*sparse.Tensor{},
		inSet: map[*sparse.Tensor]struct{}{},
	}
}

// Get borrows a c x h x w tensor with unspecified contents.
func (p *TensorPool) Get(c, h, w int) *sparse.Tensor {
	key := tensorShape{c, h, w}
	p.mu.Lock()
	p.stats.Gets++
	if lst := p.free[key]; len(lst) > 0 {
		t := lst[len(lst)-1]
		lst[len(lst)-1] = nil
		p.free[key] = lst[:len(lst)-1]
		delete(p.inSet, t)
		p.mu.Unlock()
		return t
	}
	p.stats.News++
	p.mu.Unlock()
	return sparse.NewTensor(c, h, w)
}

// GetZeroed borrows a zeroed c x h x w tensor.
func (p *TensorPool) GetZeroed(c, h, w int) *sparse.Tensor {
	t := p.Get(c, h, w)
	t.Zero()
	return t
}

// Put returns a tensor to its shape's free list; double release panics.
func (p *TensorPool) Put(t *sparse.Tensor) {
	if t == nil {
		panic("mem: Put of nil tensor")
	}
	key := tensorShape{t.C, t.H, t.W}
	p.mu.Lock()
	if _, dup := p.inSet[t]; dup {
		p.mu.Unlock()
		panic("mem: double release of sparse.Tensor")
	}
	p.stats.Puts++
	p.inSet[t] = struct{}{}
	p.free[key] = append(p.free[key], t)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *TensorPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// matShape keys the matrix free lists.
type matShape struct{ rows, cols int }

// MatPool free-lists dense matrices by exact shape. Like TensorPool,
// returned contents are unspecified; SpMMInto overwrites fully.
type MatPool struct {
	mu    sync.Mutex
	free  map[matShape][]*sparse.Mat
	inSet map[*sparse.Mat]struct{}
	stats PoolStats
}

// NewMatPool returns an empty pool.
func NewMatPool() *MatPool {
	return &MatPool{
		free:  map[matShape][]*sparse.Mat{},
		inSet: map[*sparse.Mat]struct{}{},
	}
}

// Get borrows a rows x cols matrix with unspecified contents.
func (p *MatPool) Get(rows, cols int) *sparse.Mat {
	key := matShape{rows, cols}
	p.mu.Lock()
	p.stats.Gets++
	if lst := p.free[key]; len(lst) > 0 {
		m := lst[len(lst)-1]
		lst[len(lst)-1] = nil
		p.free[key] = lst[:len(lst)-1]
		delete(p.inSet, m)
		p.mu.Unlock()
		return m
	}
	p.stats.News++
	p.mu.Unlock()
	return sparse.NewMat(rows, cols)
}

// Put returns a matrix; double release panics.
func (p *MatPool) Put(m *sparse.Mat) {
	if m == nil {
		panic("mem: Put of nil mat")
	}
	key := matShape{m.Rows, m.Cols}
	p.mu.Lock()
	if _, dup := p.inSet[m]; dup {
		p.mu.Unlock()
		panic("mem: double release of sparse.Mat")
	}
	p.stats.Puts++
	p.inSet[m] = struct{}{}
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *MatPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CSRPool free-lists CSR buffers. Get returns a matrix sized
// rows x cols with RowPtr length rows+1 (zeroed) and empty
// ColIdx/Vals keeping prior capacity.
type CSRPool struct {
	mu    sync.Mutex
	free  []*sparse.CSR
	inSet map[*sparse.CSR]struct{}
	stats PoolStats
}

// NewCSRPool returns an empty pool.
func NewCSRPool() *CSRPool {
	return &CSRPool{inSet: map[*sparse.CSR]struct{}{}}
}

// Get borrows an empty rows x cols CSR buffer.
func (p *CSRPool) Get(rows, cols int) *sparse.CSR {
	p.mu.Lock()
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		delete(p.inSet, m)
		p.mu.Unlock()
		m.Reset(rows, cols)
		return m
	}
	p.stats.News++
	p.mu.Unlock()
	m := &sparse.CSR{}
	m.Reset(rows, cols)
	return m
}

// Put returns a CSR buffer; double release panics.
func (p *CSRPool) Put(m *sparse.CSR) {
	if m == nil {
		panic("mem: Put of nil CSR")
	}
	p.mu.Lock()
	if _, dup := p.inSet[m]; dup {
		p.mu.Unlock()
		panic("mem: double release of sparse.CSR")
	}
	p.stats.Puts++
	p.inSet[m] = struct{}{}
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *CSRPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ActiveSetPool free-lists rulebook active sets (see sparse.ActiveSet).
// Get returns an empty set retargeted to the requested shape whose
// site slices keep the capacity of their previous use; serve wires
// Get/Put into RulebookCache's Borrow/Release hooks so steady-state
// rulebook maintenance allocates nothing.
type ActiveSetPool struct {
	mu    sync.Mutex
	free  []*sparse.ActiveSet
	inSet map[*sparse.ActiveSet]struct{}
	stats PoolStats
}

// NewActiveSetPool returns an empty pool.
func NewActiveSetPool() *ActiveSetPool {
	return &ActiveSetPool{inSet: map[*sparse.ActiveSet]struct{}{}}
}

// Get borrows an empty h x w active set for K x K windows.
func (p *ActiveSetPool) Get(h, w, k int) *sparse.ActiveSet {
	p.mu.Lock()
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		delete(p.inSet, a)
		p.mu.Unlock()
		a.Reset(h, w, k)
		return a
	}
	p.stats.News++
	p.mu.Unlock()
	return sparse.NewActiveSet(h, w, k)
}

// Put returns an active set; double release panics.
func (p *ActiveSetPool) Put(a *sparse.ActiveSet) {
	if a == nil {
		panic("mem: Put of nil active set")
	}
	p.mu.Lock()
	if _, dup := p.inSet[a]; dup {
		p.mu.Unlock()
		panic("mem: double release of sparse.ActiveSet")
	}
	p.stats.Puts++
	p.inSet[a] = struct{}{}
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *ActiveSetPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Pool is a generic free list for consumer-defined structs (pipeline
// invocations, scheduler requests, dispatch payloads). The reset hook
// runs on every Get — including the allocating first one — so borrowed
// objects always start from a known state while keeping whatever slice
// capacity their fields accumulated.
type Pool[T any] struct {
	mu    sync.Mutex
	free  []*T
	inSet map[*T]struct{}
	reset func(*T)
	stats PoolStats
}

// NewPool returns a pool whose objects are reset by the given hook
// (nil for none).
func NewPool[T any](reset func(*T)) *Pool[T] {
	return &Pool[T]{inSet: map[*T]struct{}{}, reset: reset}
}

// Get borrows an object, reset.
func (p *Pool[T]) Get() *T {
	p.mu.Lock()
	p.stats.Gets++
	var x *T
	if n := len(p.free); n > 0 {
		x = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		delete(p.inSet, x)
		p.mu.Unlock()
	} else {
		p.stats.News++
		p.mu.Unlock()
		x = new(T)
	}
	if p.reset != nil {
		p.reset(x)
	}
	return x
}

// Put returns an object; double release panics.
func (p *Pool[T]) Put(x *T) {
	if x == nil {
		panic("mem: Put of nil object")
	}
	p.mu.Lock()
	if _, dup := p.inSet[x]; dup {
		p.mu.Unlock()
		panic("mem: double release of pooled object")
	}
	p.stats.Puts++
	p.inSet[x] = struct{}{}
	p.free = append(p.free, x)
	p.mu.Unlock()
}

// Stats snapshots the counters.
func (p *Pool[T]) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Arena bundles the pools one serving node shares across all sessions:
// frames flow ingest→DSFA→dispatch→release regardless of which session
// produced them, so one free list per type maximizes reuse.
type Arena struct {
	Frames     *FramePool
	Tensors    *TensorPool
	Mats       *MatPool
	CSRs       *CSRPool
	ActiveSets *ActiveSetPool
}

// NewArena returns an arena with empty pools.
func NewArena() *Arena {
	return &Arena{
		Frames:     NewFramePool(),
		Tensors:    NewTensorPool(),
		Mats:       NewMatPool(),
		CSRs:       NewCSRPool(),
		ActiveSets: NewActiveSetPool(),
	}
}

// ArenaStats is the per-pool counter snapshot plus the total.
type ArenaStats struct {
	Frames     PoolStats `json:"frames"`
	Tensors    PoolStats `json:"tensors"`
	Mats       PoolStats `json:"mats"`
	CSRs       PoolStats `json:"csrs"`
	ActiveSets PoolStats `json:"active_sets"`
	Total      PoolStats `json:"total"`
}

// Stats snapshots every pool.
func (a *Arena) Stats() ArenaStats {
	st := ArenaStats{
		Frames:     a.Frames.Stats(),
		Tensors:    a.Tensors.Stats(),
		Mats:       a.Mats.Stats(),
		CSRs:       a.CSRs.Stats(),
		ActiveSets: a.ActiveSets.Stats(),
	}
	st.Total.add(st.Frames)
	st.Total.add(st.Tensors)
	st.Total.add(st.Mats)
	st.Total.add(st.CSRs)
	st.Total.add(st.ActiveSets)
	return st
}
