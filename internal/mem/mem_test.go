package mem

import (
	"testing"

	"evedge/internal/sparse"
)

func TestFramePoolReuse(t *testing.T) {
	p := NewFramePool()
	f := p.Get(4, 6, 10, 20)
	if f.H != 4 || f.W != 6 || f.T0 != 10 || f.T1 != 20 {
		t.Fatalf("Get geometry = %dx%d [%d,%d)", f.H, f.W, f.T0, f.T1)
	}
	f.Set(1, 2, 3, 4)
	p.Put(f)
	g := p.Get(8, 8, 30, 40)
	if g != f {
		t.Fatalf("expected recycled frame pointer")
	}
	if g.H != 8 || g.W != 8 || g.T0 != 30 || g.T1 != 40 || g.NNZ() != 0 {
		t.Fatalf("recycled frame not reset: %dx%d nnz=%d", g.H, g.W, g.NNZ())
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.News != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Live() != 1 {
		t.Fatalf("live = %d", st.Live())
	}
}

func TestFramePoolDoubleReleasePanics(t *testing.T) {
	p := NewFramePool()
	f := p.Get(2, 2, 0, 1)
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(f)
}

func TestFramePoolNilPutPanics(t *testing.T) {
	p := NewFramePool()
	defer func() {
		if recover() == nil {
			t.Fatalf("nil Put did not panic")
		}
	}()
	p.Put(nil)
}

func TestTensorPoolShapeKeyed(t *testing.T) {
	p := NewTensorPool()
	a := p.Get(2, 3, 4)
	b := p.Get(1, 5, 5)
	p.Put(a)
	p.Put(b)
	// Same shape hits the free list; different shape allocates fresh.
	if got := p.Get(2, 3, 4); got != a {
		t.Fatalf("same-shape Get did not recycle")
	}
	if got := p.Get(2, 9, 9); got == b {
		t.Fatalf("different-shape Get recycled wrong tensor")
	}
	z := p.GetZeroed(1, 5, 5)
	if z != b {
		t.Fatalf("GetZeroed did not recycle")
	}
	for _, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed returned dirty tensor")
		}
	}
}

func TestTensorPoolDoubleReleasePanics(t *testing.T) {
	p := NewTensorPool()
	a := p.Get(1, 2, 2)
	p.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(a)
}

func TestMatPoolReuse(t *testing.T) {
	p := NewMatPool()
	m := p.Get(3, 4)
	p.Put(m)
	if got := p.Get(3, 4); got != m {
		t.Fatalf("same-shape Get did not recycle")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(m)
	p.Put(m)
}

func TestCSRPoolResetsGeometry(t *testing.T) {
	p := NewCSRPool()
	m := p.Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.RowPtr) != 4 {
		t.Fatalf("fresh CSR geometry = %dx%d rowptr=%d", m.Rows, m.Cols, len(m.RowPtr))
	}
	m.ColIdx = append(m.ColIdx, 1)
	m.Vals = append(m.Vals, 2)
	m.RowPtr[1] = 1
	p.Put(m)
	g := p.Get(2, 2)
	if g != m {
		t.Fatalf("expected recycled CSR pointer")
	}
	if g.Rows != 2 || g.Cols != 2 || len(g.RowPtr) != 3 || g.NNZ() != 0 {
		t.Fatalf("recycled CSR not reset: %dx%d rowptr=%d nnz=%d", g.Rows, g.Cols, len(g.RowPtr), g.NNZ())
	}
	for i, v := range g.RowPtr {
		if v != 0 {
			t.Fatalf("RowPtr[%d] = %d after Reset", i, v)
		}
	}
}

func TestGenericPoolResetHook(t *testing.T) {
	type inv struct {
		frames []*sparse.Frame
		ready  float64
	}
	p := NewPool(func(x *inv) {
		x.frames = x.frames[:0]
		x.ready = 0
	})
	a := p.Get()
	a.frames = append(a.frames, sparse.NewFrame(1, 1, 0, 1))
	a.ready = 9
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatalf("expected recycled object")
	}
	if len(b.frames) != 0 || b.ready != 0 {
		t.Fatalf("reset hook did not run: %+v", b)
	}
	if cap(b.frames) == 0 {
		t.Fatalf("reset hook lost slice capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(b)
	p.Put(b)
}

// TestSteadyStateZeroAlloc is the core contract: once warm, a
// Get/use/Put cycle against every pool type performs no heap
// allocation.
func TestSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena()
	type req struct{ session string }
	gp := NewPool(func(r *req) { r.session = "" })

	// Warm every free list (and the tripwire maps) once.
	warm := func() {
		f := a.Frames.Get(16, 16, 0, 100)
		tn := a.Tensors.Get(2, 16, 16)
		m := a.Mats.Get(4, 4)
		c := a.CSRs.Get(4, 4)
		as := a.ActiveSets.Get(16, 16, 3)
		r := gp.Get()
		gp.Put(r)
		a.ActiveSets.Put(as)
		a.CSRs.Put(c)
		a.Mats.Put(m)
		a.Tensors.Put(tn)
		a.Frames.Put(f)
	}
	warm()

	if n := testing.AllocsPerRun(200, warm); n != 0 {
		t.Fatalf("steady-state pool cycle allocates %.1f allocs/op, want 0", n)
	}
}

func TestArenaStatsTotal(t *testing.T) {
	a := NewArena()
	f := a.Frames.Get(2, 2, 0, 1)
	tn := a.Tensors.Get(1, 2, 2)
	as := a.ActiveSets.Get(2, 2, 3)
	a.Frames.Put(f)
	a.Tensors.Put(tn)
	a.ActiveSets.Put(as)
	st := a.Stats()
	if st.Total.Gets != 3 || st.Total.Puts != 3 || st.Total.News != 3 {
		t.Fatalf("total = %+v", st.Total)
	}
	if st.ActiveSets.Gets != 1 {
		t.Fatalf("active set stats = %+v", st.ActiveSets)
	}
}

// TestActiveSetPoolReuse: a returned set comes back retargeted and
// empty while keeping slice capacity; double release panics.
func TestActiveSetPoolReuse(t *testing.T) {
	p := NewActiveSetPool()
	a := p.Get(8, 8, 3)
	tn := sparse.NewTensor(1, 8, 8)
	tn.Set(0, 3, 4, 1)
	tn.Set(0, 5, 5, 1)
	a.BuildFromTensor(tn, 3)
	if a.Sites() != 2 {
		t.Fatalf("built %d sites, want 2", a.Sites())
	}
	p.Put(a)
	b := p.Get(4, 4, 5)
	if b != a {
		t.Fatal("pool allocated instead of reusing")
	}
	if b.Sites() != 0 || b.H != 4 || b.W != 4 || b.K != 5 {
		t.Fatalf("reused set not reset: %d sites, %dx%d k=%d", b.Sites(), b.H, b.W, b.K)
	}
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Put(b)
}
