// Package par is the engine-shared bounded worker pool behind the
// tiled compute kernels: one pool per serving node, sized from
// GOMAXPROCS, executing sharded tasks with zero steady-state heap
// allocations per dispatch.
//
// The design goal is determinism-compatible parallelism. A Task
// partitions its work into shards over DISJOINT output ranges; the
// pool only decides which goroutine runs which shard, never the
// arithmetic order within one shard. Kernels built this way (see
// sparse's tiled variants) produce bit-identical results to their
// serial counterparts regardless of worker count or scheduling, which
// is what keeps scenario replay byte-identical when parallelism is on.
//
// Allocation discipline mirrors internal/mem: dispatch records are
// free-listed and reused, the completion channel is reused across
// dispatches, shard claiming is a single atomic counter (no per-shard
// closures, no WaitGroups that escape to the heap), and per-goroutine
// scratch buffers are pooled so tasks needing staging space allocate
// only while growing to their high-water mark.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one sharded unit of work. The pool calls RunShard exactly
// once for every shard in [0, shards); implementations must write only
// to state owned by their shard (disjoint output ranges) so shards can
// run concurrently and in any order. scratch is a reusable staging
// buffer private to the executing goroutine for the duration of the
// call.
type Task interface {
	RunShard(shard, shards int, scratch *Scratch)
}

// Scratch is pooled per-goroutine staging space handed to every
// RunShard call. Buffers keep their capacity across dispatches, so a
// warm pool serves Grow requests without allocating. Contents are
// unspecified on entry.
type Scratch struct {
	I32 []int32
	F32 []float32
}

// GrowI32 returns a length-n int32 buffer with unspecified contents,
// reusing the scratch capacity when possible.
func (s *Scratch) GrowI32(n int) []int32 {
	if cap(s.I32) < n {
		s.I32 = make([]int32, n)
	}
	s.I32 = s.I32[:n]
	return s.I32
}

// GrowF32 returns a length-n float32 buffer with unspecified contents,
// reusing the scratch capacity when possible.
func (s *Scratch) GrowF32(n int) []float32 {
	if cap(s.F32) < n {
		s.F32 = make([]float32, n)
	}
	s.F32 = s.F32[:n]
	return s.F32
}

// scratchPool recycles Scratch buffers across goroutines and
// dispatches; sync.Pool because workers and callers borrow
// concurrently.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// dispatch is one Run call in flight. Records are free-listed on the
// pool; the claim counter hands out shards, pending counts them home,
// refs counts live references (caller + queued helper wakeups) so a
// record is recycled only after every holder is done with it — a
// helper that dequeues the record after the work finished sees an
// exhausted claim counter and just releases.
type dispatch struct {
	task    Task
	shards  int32
	next    atomic.Int32  // shard claim counter
	pending atomic.Int32  // shards not yet finished
	refs    atomic.Int32  // caller + enqueued helper references
	done    chan struct{} // buffered(1), signaled once per dispatch
}

// work claims and executes shards until none remain.
func (d *dispatch) work() {
	s := scratchPool.Get().(*Scratch)
	for {
		i := d.next.Add(1) - 1
		if i >= d.shards {
			break
		}
		d.task.RunShard(int(i), int(d.shards), s)
		if d.pending.Add(-1) == 0 {
			d.done <- struct{}{}
		}
	}
	scratchPool.Put(s)
}

// Pool is a bounded worker pool. The zero value is not usable; New
// returns a ready pool. A nil *Pool is valid everywhere and means
// "serial": Run executes all shards inline on the caller.
type Pool struct {
	workers int
	jobs    chan *dispatch

	mu     sync.Mutex
	free   []*dispatch
	closed bool

	dispatches atomic.Uint64 // parallel Run calls
	inline     atomic.Uint64 // Run calls executed fully on the caller
}

// New returns a pool of the given parallel width (worker goroutines
// plus the calling goroutine participate, so width n engages at most n
// CPUs per dispatch). n <= 0 sizes the pool from GOMAXPROCS. Call
// Close to stop the workers.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: n,
		jobs:    make(chan *dispatch, 4*n),
	}
	for i := 0; i < n-1; i++ {
		go p.worker()
	}
	return p
}

// Size returns the pool's parallel width (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Stats reports dispatch traffic: parallel dispatches and inline
// (serial-path) runs.
func (p *Pool) Stats() (dispatches, inline uint64) {
	if p == nil {
		return 0, 0
	}
	return p.dispatches.Load(), p.inline.Load()
}

func (p *Pool) worker() {
	for d := range p.jobs {
		d.work()
		p.release(d)
	}
}

// getLocked borrows a dispatch record from the free list; callers
// hold p.mu.
func (p *Pool) getLocked() *dispatch {
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return d
	}
	return &dispatch{done: make(chan struct{}, 1)}
}

// release drops one reference; the last holder recycles the record.
func (p *Pool) release(d *dispatch) {
	if d.refs.Add(-1) != 0 {
		return
	}
	d.task = nil
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}

// Run executes t's shards and returns when all of them finished. The
// caller participates, so Run never deadlocks even with zero idle
// workers; helper wakeups are best-effort (a full queue just means the
// caller does more shards itself). shards <= 0 is a no-op; a nil pool,
// width 1, or a single shard runs everything inline on the caller in
// ascending shard order.
func (p *Pool) Run(shards int, t Task) {
	if shards <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || shards == 1 {
		s := scratchPool.Get().(*Scratch)
		for i := 0; i < shards; i++ {
			t.RunShard(i, shards, s)
		}
		scratchPool.Put(s)
		if p != nil {
			p.inline.Add(1)
		}
		return
	}
	p.mu.Lock()
	if p.closed {
		// Draining after Close: execute inline rather than hanging on a
		// dead worker set.
		p.mu.Unlock()
		s := scratchPool.Get().(*Scratch)
		for i := 0; i < shards; i++ {
			t.RunShard(i, shards, s)
		}
		scratchPool.Put(s)
		p.inline.Add(1)
		return
	}
	d := p.getLocked()
	d.task = t
	d.shards = int32(shards)
	d.next.Store(0)
	d.pending.Store(int32(shards))
	helpers := p.workers - 1
	if helpers > shards-1 {
		helpers = shards - 1
	}
	// One reference per intended wakeup plus the caller's, stored
	// BEFORE the first enqueue — a helper may dequeue and release the
	// moment the send lands. Wakeups enqueue under p.mu so Close cannot
	// close the channel mid-send; a full queue means concurrent
	// dispatches already saturate the workers, so the rest are dropped
	// (their references handed back below) and the caller chews through
	// the shards itself.
	d.refs.Store(int32(helpers) + 1)
	enq := 0
enqueue:
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- d:
			enq++
		default:
			break enqueue
		}
	}
	if enq < helpers {
		// The caller's own reference keeps refs >= 1 until the final
		// release, so this can never drop the count to zero early.
		d.refs.Add(int32(enq - helpers))
	}
	p.mu.Unlock()
	p.dispatches.Add(1)
	d.work()
	<-d.done
	p.release(d)
}

// Close stops the worker goroutines. Outstanding Run calls finish
// first (the caller always participates); Run calls after Close
// execute inline. Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
}
