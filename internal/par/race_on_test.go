//go:build race

package par

// raceEnabled reports whether the race detector is compiled in; its
// twin in race_off_test.go clears it on plain builds.
const raceEnabled = true
