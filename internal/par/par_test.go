package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// rangeTask writes shard ownership over a disjoint range partition of
// out — the exact pattern the tiled kernels use.
type rangeTask struct {
	out   []int32
	calls atomic.Int32
}

func (t *rangeTask) RunShard(shard, shards int, _ *Scratch) {
	t.calls.Add(1)
	n := len(t.out)
	lo, hi := shard*n/shards, (shard+1)*n/shards
	for i := lo; i < hi; i++ {
		t.out[i] = int32(shard)
	}
}

func TestRunCoversAllShardsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, shards := range []int{1, 2, 7, 16, 33} {
			task := &rangeTask{out: make([]int32, 97)}
			p.Run(shards, task)
			if got := int(task.calls.Load()); got != shards {
				t.Fatalf("workers=%d shards=%d: RunShard called %d times", workers, shards, got)
			}
			for i, v := range task.out {
				want := int32(0)
				for s := 0; s < shards; s++ {
					if i >= s*len(task.out)/shards && i < (s+1)*len(task.out)/shards {
						want = int32(s)
					}
				}
				if v != want {
					t.Fatalf("workers=%d shards=%d: out[%d]=%d want %d", workers, shards, i, v, want)
				}
			}
		}
		p.Close()
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool Size = %d, want 1", p.Size())
	}
	task := &rangeTask{out: make([]int32, 10)}
	p.Run(4, task)
	if got := int(task.calls.Load()); got != 4 {
		t.Fatalf("nil pool ran %d shards, want 4", got)
	}
}

func TestRunZeroShardsIsNoop(t *testing.T) {
	p := New(2)
	defer p.Close()
	task := &rangeTask{out: make([]int32, 1)}
	p.Run(0, task)
	p.Run(-3, task)
	if task.calls.Load() != 0 {
		t.Fatal("zero/negative shard counts must not invoke the task")
	}
}

func TestDefaultSizeFromGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if want := runtime.GOMAXPROCS(0); p.Size() != want {
		t.Fatalf("New(0).Size() = %d, want GOMAXPROCS %d", p.Size(), want)
	}
}

func TestRunAfterCloseExecutesInline(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	task := &rangeTask{out: make([]int32, 20)}
	p.Run(5, task)
	if got := int(task.calls.Load()); got != 5 {
		t.Fatalf("closed pool ran %d shards, want 5", got)
	}
}

// sumTask accumulates into a per-shard slot; the final sum checks no
// shard was lost or doubled even under heavy concurrent dispatch.
type sumTask struct {
	slots []int64
	base  int64
}

func (t *sumTask) RunShard(shard, shards int, _ *Scratch) {
	t.slots[shard] += t.base + int64(shard)
}

func TestConcurrentDispatchers(t *testing.T) {
	p := New(4)
	defer p.Close()
	const goroutines = 8
	const iters = 200
	const shards = 11
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			task := &sumTask{slots: make([]int64, shards), base: int64(g)}
			for i := 0; i < iters; i++ {
				p.Run(shards, task)
			}
			for sh, v := range task.slots {
				if want := iters * (int64(g) + int64(sh)); v != want {
					t.Errorf("goroutine %d shard %d: sum %d, want %d", g, sh, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// scratchTask exercises the pooled staging buffers.
type scratchTask struct {
	mu   sync.Mutex
	seen int
}

func (t *scratchTask) RunShard(shard, shards int, s *Scratch) {
	b := s.GrowI32(64)
	for i := range b {
		b[i] = int32(shard)
	}
	f := s.GrowF32(32)
	for i := range f {
		f[i] = float32(shard)
	}
	// Verify the buffer was not shared mid-shard with anyone else.
	for _, v := range b {
		if v != int32(shard) {
			panic("par: scratch shared across concurrent shards")
		}
	}
	t.mu.Lock()
	t.seen++
	t.mu.Unlock()
}

func TestScratchIsPerGoroutine(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &scratchTask{}
	for i := 0; i < 50; i++ {
		p.Run(9, task)
	}
	if task.seen != 450 {
		t.Fatalf("ran %d shards, want 450", task.seen)
	}
}

// TestDispatchZeroAllocs pins the steady-state dispatch path to zero
// heap allocations per Run once the record/scratch pools are warm —
// the same discipline the serve alloc-regression suite enforces for
// the frame path.
func TestDispatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds are meaningless under -race instrumentation")
	}
	p := New(4)
	defer p.Close()
	task := &rangeTask{out: make([]int32, 1024)}
	for i := 0; i < 100; i++ { // warm dispatch records and scratches
		p.Run(8, task)
	}
	avg := testing.AllocsPerRun(200, func() {
		p.Run(8, task)
	})
	if avg > 0.05 {
		t.Fatalf("parallel dispatch allocates %.2f allocs/op, want 0", avg)
	}
}

func TestStatsCount(t *testing.T) {
	p := New(2)
	defer p.Close()
	task := &rangeTask{out: make([]int32, 8)}
	p.Run(4, task) // parallel
	p.Run(1, task) // inline (single shard)
	disp, inline := p.Stats()
	if disp != 1 || inline != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", disp, inline)
	}
	var nilPool *Pool
	if d, i := nilPool.Stats(); d != 0 || i != 0 {
		t.Fatal("nil pool stats must be zero")
	}
}
