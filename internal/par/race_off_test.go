//go:build !race

package par

// raceEnabled reports whether the race detector is compiled in; its
// twin in race_on_test.go flips it under -race. Allocation bounds are
// asserted only on plain builds — the detector's instrumentation
// allocates on its own.
const raceEnabled = false
