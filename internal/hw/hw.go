// Package hw models a commodity heterogeneous edge platform — the
// NVIDIA Jetson Xavier AGX of the paper — as a set of processing
// elements (CPU, GPU, two DLAs) with per-precision peak throughput,
// saturating utilization behavior, launch and SNN-timestep overheads,
// a unified-memory transfer link, and active/idle power. A small
// discrete-event engine executes work spans against per-device queues
// and integrates energy, standing in for the real board plus
// Tegrastats.
//
// The model is deliberately analytic: the Network Mapper consumes
// *profiled layer times* (as the paper measures with TensorRT before
// the search), so fidelity lives in the ratios — the GPU is fast but
// batch-hungry and poor at irregular sparse work, the DLAs are
// efficient at INT8/FP16 only with high dispatch latency, and the CPU
// is slow but tolerant of irregular access — not in absolute silicon
// numbers.
package hw

import (
	"fmt"
	"sort"

	"evedge/internal/nn"
)

// DeviceKind classifies a processing element.
type DeviceKind int

// Device kinds on Jetson-class platforms.
const (
	CPU DeviceKind = iota
	GPU
	DLA
)

// String names the kind.
func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case DLA:
		return "DLA"
	}
	return fmt.Sprintf("DeviceKind(%d)", int(k))
}

// Device is one processing element with its performance and power
// profile.
type Device struct {
	ID   int
	Name string
	Kind DeviceKind

	// PeakMACs maps each supported precision to peak multiply-
	// accumulates per second. Missing precision = unsupported.
	PeakMACs map[nn.Precision]float64

	// SparseEff derates peak throughput for irregular gather-scatter
	// (sparse) work, in (0, 1].
	SparseEff float64

	// SparseOverheadFrac is the fixed overhead of the sparse path
	// (rulebook construction, output scatter/zero-init) expressed as a
	// fraction of the layer's dense work. It bounds the best-case
	// sparse gain: even an empty frame costs this much.
	SparseOverheadFrac float64

	// SaturationSites is the output-element parallelism at which a
	// kernel reaches 50% of peak utilization:
	// util = sites / (sites + SaturationSites). Large for the GPU
	// (needs wide kernels to fill), tiny for the CPU.
	SaturationSites float64

	// LaunchUS is the fixed per-kernel dispatch overhead.
	LaunchUS float64

	// TimestepUS is the extra overhead per SNN timestep (stateful
	// kernels cannot be fused across timesteps).
	TimestepUS float64

	ActiveWatts float64
	IdleWatts   float64
}

// Supports reports whether the device executes the given precision.
func (d *Device) Supports(p nn.Precision) bool {
	_, ok := d.PeakMACs[p]
	return ok
}

// Precisions lists supported precisions, lowest enum first.
func (d *Device) Precisions() []nn.Precision {
	out := make([]nn.Precision, 0, len(d.PeakMACs))
	for p := range d.PeakMACs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BestPrecision returns the highest-throughput supported precision.
func (d *Device) BestPrecision() nn.Precision {
	best, bestMACs := nn.FP32, 0.0
	for p, m := range d.PeakMACs {
		if m > bestMACs {
			best, bestMACs = p, m
		}
	}
	return best
}

// FullPrecision returns the most precise supported precision (FP32
// where available, else FP16) — what the paper's Ev-Edge-NMP-FP
// variant maps to.
func (d *Device) FullPrecision() nn.Precision {
	ps := d.Precisions()
	return ps[0]
}

// Link models the unified-memory transfer path between processing
// elements.
type Link struct {
	BandwidthBps float64 // bytes per second
	LatencyUS    float64 // fixed per-transfer latency
}

// TransferUS returns the time to move the given volume.
func (l Link) TransferUS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencyUS + float64(bytes)/l.BandwidthBps*1e6
}

// Platform is a set of devices plus the unified-memory link.
type Platform struct {
	Name    string
	Devices []*Device
	Link    Link
}

// Device returns the device with the given name.
func (p *Platform) Device(name string) (*Device, error) {
	for _, d := range p.Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("hw: platform %q has no device %q", p.Name, name)
}

// MustDevice is Device that panics on error.
func (p *Platform) MustDevice(name string) *Device {
	d, err := p.Device(name)
	if err != nil {
		panic(err)
	}
	return d
}

// DeviceName returns the name of the device at platform index id, or
// "dev<id>" when the index is out of range — trace track naming must
// never panic on a stale plan index.
func (p *Platform) DeviceName(id int) string {
	if id >= 0 && id < len(p.Devices) {
		return p.Devices[id].Name
	}
	return fmt.Sprintf("dev%d", id)
}

// GPUDevice returns the first GPU.
func (p *Platform) GPUDevice() *Device {
	for _, d := range p.Devices {
		if d.Kind == GPU {
			return d
		}
	}
	return nil
}

// Validate checks platform consistency.
func (p *Platform) Validate() error {
	if len(p.Devices) == 0 {
		return fmt.Errorf("hw: platform %q has no devices", p.Name)
	}
	names := map[string]bool{}
	for i, d := range p.Devices {
		if d.ID != i {
			return fmt.Errorf("hw: device %q has ID %d at index %d", d.Name, d.ID, i)
		}
		if names[d.Name] {
			return fmt.Errorf("hw: duplicate device name %q", d.Name)
		}
		names[d.Name] = true
		if len(d.PeakMACs) == 0 {
			return fmt.Errorf("hw: device %q supports no precision", d.Name)
		}
		for pr, macs := range d.PeakMACs {
			if macs <= 0 {
				return fmt.Errorf("hw: device %q has non-positive peak at %v", d.Name, pr)
			}
		}
		if d.SparseEff <= 0 || d.SparseEff > 1 {
			return fmt.Errorf("hw: device %q sparse efficiency %f outside (0,1]", d.Name, d.SparseEff)
		}
		if d.SparseOverheadFrac < 0 {
			return fmt.Errorf("hw: device %q sparse overhead must be non-negative", d.Name)
		}
		if d.SaturationSites <= 0 {
			return fmt.Errorf("hw: device %q saturation must be positive", d.Name)
		}
	}
	if p.Link.BandwidthBps <= 0 {
		return fmt.Errorf("hw: link bandwidth must be positive")
	}
	return nil
}

// Xavier returns the Jetson Xavier AGX-like platform used throughout
// the evaluation: one 8-core CPU, one Volta-class GPU, and two DLAs
// sharing 137 GB/s of unified memory.
func Xavier() *Platform {
	p := &Platform{
		Name: "jetson-xavier-agx",
		Devices: []*Device{
			{
				ID: 0, Name: "CPU", Kind: CPU,
				PeakMACs: map[nn.Precision]float64{
					nn.FP32: 60e9, nn.FP16: 70e9, nn.INT8: 120e9,
				},
				SparseEff:          0.90,
				SparseOverheadFrac: 0.05,
				SaturationSites:    2e3,
				LaunchUS:           8,
				TimestepUS:         15,
				ActiveWatts:        10, IdleWatts: 1.5,
			},
			{
				ID: 1, Name: "GPU", Kind: GPU,
				PeakMACs: map[nn.Precision]float64{
					nn.FP32: 700e9, nn.FP16: 1400e9, nn.INT8: 2800e9,
				},
				SparseEff:          0.45,
				SparseOverheadFrac: 0.35,
				SaturationSites:    1.2e5,
				LaunchUS:           12,
				TimestepUS:         25,
				ActiveWatts:        20, IdleWatts: 2.5,
			},
			{
				ID: 2, Name: "DLA0", Kind: DLA,
				PeakMACs: map[nn.Precision]float64{
					nn.FP16: 700e9, nn.INT8: 1400e9,
				},
				SparseEff:          0.12,
				SparseOverheadFrac: 0.60,
				SaturationSites:    3e4,
				LaunchUS:           28,
				TimestepUS:         35,
				ActiveWatts:        5, IdleWatts: 0.5,
			},
			{
				ID: 3, Name: "DLA1", Kind: DLA,
				PeakMACs: map[nn.Precision]float64{
					nn.FP16: 700e9, nn.INT8: 1400e9,
				},
				SparseEff:          0.12,
				SparseOverheadFrac: 0.60,
				SaturationSites:    3e4,
				LaunchUS:           28,
				TimestepUS:         35,
				ActiveWatts:        5, IdleWatts: 0.5,
			},
		},
		Link: Link{BandwidthBps: 137e9 * 0.85, LatencyUS: 5},
	}
	if err := p.Validate(); err != nil {
		panic(err) // construction bug, not runtime input
	}
	return p
}
