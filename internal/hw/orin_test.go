package hw

import (
	"strings"
	"testing"

	"evedge/internal/nn"
)

func TestOrinShape(t *testing.T) {
	p := Orin()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	x := Xavier()
	// Orin is strictly faster per device class.
	if !(p.MustDevice("GPU").PeakMACs[nn.FP16] > x.MustDevice("GPU").PeakMACs[nn.FP16]) {
		t.Fatal("Orin GPU should beat Xavier GPU")
	}
	if !(p.MustDevice("DLA0").PeakMACs[nn.INT8] > x.MustDevice("DLA0").PeakMACs[nn.INT8]) {
		t.Fatal("Orin DLA should beat Xavier DLA")
	}
	if p.MustDevice("DLA0").Supports(nn.FP32) {
		t.Fatal("Orin DLA must not support FP32")
	}
	if !(p.Link.BandwidthBps > x.Link.BandwidthBps) {
		t.Fatal("Orin memory should be faster")
	}
}

func TestPlatformByName(t *testing.T) {
	for _, name := range Platforms() {
		p, err := PlatformByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := PlatformByName("tpu-pod"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	// Case-insensitive and full names work.
	if _, err := PlatformByName("XAVIER"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("jetson-agx-orin"); err != nil {
		t.Fatal(err)
	}
}

func TestGantt(t *testing.T) {
	p := Xavier()
	spans := []Span{
		{Device: "GPU", Tag: "a", Start: 0, End: 50},
		{Device: "DLA0", Tag: "b", Start: 50, End: 100},
		{Device: "UM", Tag: "xfer", Start: 45, End: 55},
	}
	out := Gantt(p, spans, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 4 devices + UM.
	if len(lines) != 6 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "GPU") || !strings.Contains(out, "UM") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// GPU busy in the first half only.
	var gpuRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "GPU") {
			gpuRow = l
		}
	}
	if !strings.Contains(gpuRow[:26], "#") || strings.Contains(gpuRow[30:], "#") {
		t.Fatalf("gpu row occupancy wrong: %q", gpuRow)
	}
	// Empty timeline handled.
	if !strings.Contains(Gantt(p, nil, 10), "empty") {
		t.Fatal("empty timeline not reported")
	}
	// Zero width defaults.
	if Gantt(p, spans, 0) == "" {
		t.Fatal("zero width broke rendering")
	}
}
