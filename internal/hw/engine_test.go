package hw

import (
	"math"
	"sync"
	"testing"
)

// TestEngineConcurrentSubmits drives many goroutines into the engine
// (run under -race in CI) and checks the per-device accounting is
// exact: no lost busy time, FIFO queues never overlap, and the
// unified-memory bus serializes every reservation.
func TestEngineConcurrentSubmits(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, true)
	const perDev = 200
	var wg sync.WaitGroup
	for _, d := range p.Devices {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(d *Device) {
				defer wg.Done()
				for i := 0; i < perDev; i++ {
					e.Submit(d, 0, 2, "load")
					e.ReserveUM(0, 1)
				}
			}(d)
		}
	}
	wg.Wait()
	for _, d := range p.Devices {
		want := float64(4 * perDev * 2)
		if got := e.BusyTime(d); math.Abs(got-want) > 1e-6 {
			t.Fatalf("device %s busy %f, want %f", d.Name, got, want)
		}
		if got := e.BusyUntil(d); math.Abs(got-want) > 1e-6 {
			t.Fatalf("device %s busyUntil %f, want %f (FIFO with earliest=0 must pack)", d.Name, got, want)
		}
	}
	wantUM := float64(len(p.Devices) * 4 * perDev)
	if got := e.UMBusyUntil(); math.Abs(got-wantUM) > 1e-6 {
		t.Fatalf("UM busy-until %f, want %f", got, wantUM)
	}
	// Per-device spans must not overlap (queue FIFO invariant).
	last := map[string]float64{}
	for _, s := range e.Timeline() {
		if s.Start < last[s.Device]-1e-9 {
			t.Fatalf("span on %s starts at %f before queue frees at %f", s.Device, s.Start, last[s.Device])
		}
		if s.End > last[s.Device] {
			last[s.Device] = s.End
		}
	}
}

// TestEngineResetInFlightPanics pins the loud half of the concurrency
// contract: Reset with a submission in flight must panic instead of
// silently corrupting busyUntil (the bug class the old caller-side
// engine mutex hid). The in-flight window is simulated directly; the
// real overlap is additionally race-detector-visible via resetTick.
func TestEngineResetInFlightPanics(t *testing.T) {
	e := NewEngine(Xavier(), false)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with an in-flight submission did not panic")
		}
	}()
	e.Reset()
}

// TestEngineResetClearsEverything covers the exclusive-path Reset:
// queues, totals, timeline and the unified-memory bus all go back to
// zero.
func TestEngineResetClearsEverything(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, true)
	gpu := p.GPUDevice()
	e.Submit(gpu, 0, 10, "warm")
	e.ReserveUM(0, 5)
	e.AddAux(AuxParallelDispatches, 3)
	e.AddAux(AuxRulebookHits, 2)
	e.Reset()
	if e.Makespan() != 0 || e.BusyTime(gpu) != 0 || e.UMBusyUntil() != 0 {
		t.Fatalf("Reset left state: makespan=%f busy=%f um=%f", e.Makespan(), e.BusyTime(gpu), e.UMBusyUntil())
	}
	if spans := e.Timeline(); len(spans) != 0 {
		t.Fatalf("Reset left %d spans", len(spans))
	}
	if e.Aux(AuxParallelDispatches) != 0 || e.Aux(AuxRulebookHits) != 0 {
		t.Fatal("Reset left aux counters")
	}
}

// TestEngineAuxCountersNeverTouchVirtualTime: aux cost hooks are
// observability only — no amount of aux traffic may move a queue.
func TestEngineAuxCountersNeverTouchVirtualTime(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, false)
	gpu := p.GPUDevice()
	_, end := e.Submit(gpu, 0, 10, "work")
	for i := 0; i < 1000; i++ {
		e.AddAux(AuxParallelDispatches, 1)
		e.AddAux(AuxRulebookMisses, 7)
		e.AddAux(AuxRulebookSavedScans, 65536)
	}
	if e.BusyUntil(gpu) != end || e.Makespan() != end {
		t.Fatalf("aux traffic moved virtual time: busy=%f makespan=%f want %f",
			e.BusyUntil(gpu), e.Makespan(), end)
	}
	if e.Aux(AuxRulebookMisses) != 7000 {
		t.Fatalf("aux miss counter = %d, want 7000", e.Aux(AuxRulebookMisses))
	}
}

// TestReserveUMSerializes checks the shared-bus recurrence: a second
// transfer starts no earlier than the first one ends.
func TestReserveUMSerializes(t *testing.T) {
	e := NewEngine(Xavier(), false)
	_, end1 := e.ReserveUM(100, 50)
	if end1 != 150 {
		t.Fatalf("first transfer ends at %f, want 150", end1)
	}
	start2, end2 := e.ReserveUM(0, 10)
	if start2 != 150 || end2 != 160 {
		t.Fatalf("second transfer [%f,%f), want [150,160)", start2, end2)
	}
}
