package hw

import (
	"math"
	"testing"

	"evedge/internal/nn"
)

func TestXavierShape(t *testing.T) {
	p := Xavier()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Devices) != 4 {
		t.Fatalf("devices=%d", len(p.Devices))
	}
	gpu := p.MustDevice("GPU")
	if gpu.Kind != GPU {
		t.Fatal("GPU kind wrong")
	}
	for _, name := range []string{"DLA0", "DLA1"} {
		d := p.MustDevice(name)
		if d.Supports(nn.FP32) {
			t.Fatalf("%s must not support FP32", name)
		}
		if !d.Supports(nn.INT8) || !d.Supports(nn.FP16) {
			t.Fatalf("%s must support FP16+INT8", name)
		}
	}
	cpu := p.MustDevice("CPU")
	if !cpu.Supports(nn.FP32) {
		t.Fatal("CPU must support FP32")
	}
	// Performance ordering: GPU fastest, CPU slowest, DLA between.
	if !(gpu.PeakMACs[nn.FP16] > p.MustDevice("DLA0").PeakMACs[nn.FP16]) {
		t.Fatal("GPU should outrun DLA at FP16")
	}
	if !(p.MustDevice("DLA0").PeakMACs[nn.FP16] > cpu.PeakMACs[nn.FP16]) {
		t.Fatal("DLA should outrun CPU")
	}
	// Power ordering: GPU hungriest, DLA most efficient accelerator.
	if !(gpu.ActiveWatts > p.MustDevice("DLA0").ActiveWatts) {
		t.Fatal("GPU should draw more than DLA")
	}
	if _, err := p.Device("TPU"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if p.GPUDevice() != gpu {
		t.Fatal("GPUDevice wrong")
	}
}

func TestDevicePrecisionHelpers(t *testing.T) {
	p := Xavier()
	gpu := p.MustDevice("GPU")
	if gpu.BestPrecision() != nn.INT8 {
		t.Fatalf("GPU best=%v", gpu.BestPrecision())
	}
	if gpu.FullPrecision() != nn.FP32 {
		t.Fatalf("GPU full=%v", gpu.FullPrecision())
	}
	dla := p.MustDevice("DLA0")
	if dla.FullPrecision() != nn.FP16 {
		t.Fatalf("DLA full=%v", dla.FullPrecision())
	}
	ps := gpu.Precisions()
	if len(ps) != 3 || ps[0] != nn.FP32 || ps[2] != nn.INT8 {
		t.Fatalf("precisions=%v", ps)
	}
}

func TestLinkTransfer(t *testing.T) {
	l := Link{BandwidthBps: 1e9, LatencyUS: 10}
	if l.TransferUS(0) != 0 {
		t.Fatal("zero bytes should be free")
	}
	// 1 MB at 1 GB/s = 1000 us + 10 us latency.
	got := l.TransferUS(1_000_000)
	if math.Abs(got-1010) > 1e-6 {
		t.Fatalf("transfer=%f", got)
	}
}

func TestEngineFIFOAndDeps(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, true)
	gpu := p.MustDevice("GPU")
	dla := p.MustDevice("DLA0")

	// Two ops on GPU: second queues behind first even if ready earlier.
	s1, e1 := e.Submit(gpu, 0, 100, "a")
	if s1 != 0 || e1 != 100 {
		t.Fatalf("span1 [%f,%f]", s1, e1)
	}
	s2, e2 := e.Submit(gpu, 20, 50, "b")
	if s2 != 100 || e2 != 150 {
		t.Fatalf("span2 [%f,%f]: FIFO violated", s2, e2)
	}
	// Dependency start honored on an idle device.
	s3, _ := e.Submit(dla, 400, 10, "c")
	if s3 != 400 {
		t.Fatalf("span3 start=%f", s3)
	}
	if e.Makespan() != 410 {
		t.Fatalf("makespan=%f", e.Makespan())
	}
	if e.BusyTime(gpu) != 150 || e.BusyTime(dla) != 10 {
		t.Fatal("busy accounting wrong")
	}
	if u := e.Utilization(gpu); math.Abs(u-150.0/410) > 1e-9 {
		t.Fatalf("gpu utilization=%f", u)
	}
	tl := e.Timeline()
	if len(tl) != 3 || tl[0].Tag != "a" || tl[2].Tag != "c" {
		t.Fatalf("timeline=%v", tl)
	}
	e.Reset()
	if e.Makespan() != 0 || len(e.Timeline()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEngineEnergy(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, false)
	gpu := p.MustDevice("GPU")
	e.Submit(gpu, 0, 1_000_000, "burn") // 1 second on GPU
	j := e.EnergyJoules(0)
	// GPU 20W for 1s + everything else idle for 1s.
	wantIdle := 1.5 + 0.5 + 0.5 // CPU + 2xDLA idle
	want := 20.0 + wantIdle
	if math.Abs(j-want) > 1e-6 {
		t.Fatalf("energy=%f want %f", j, want)
	}
	// Longer horizon adds idle time everywhere.
	j2 := e.EnergyJoules(2_000_000)
	if j2 <= j {
		t.Fatal("longer horizon must cost more")
	}
}

func TestEnginePanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine(Xavier(), false).Submit(Xavier().MustDevice("CPU"), 0, -1, "bad")
}

func TestPowerTrace(t *testing.T) {
	p := Xavier()
	e := NewEngine(p, true)
	gpu := p.MustDevice("GPU")
	dla := p.MustDevice("DLA0")
	e.Submit(gpu, 0, 100, "g")
	e.Submit(dla, 0, 200, "d")
	trace := e.PowerTrace(50)
	if len(trace) == 0 {
		t.Fatal("no trace")
	}
	// At t=0 both active; at t=150 only DLA active.
	idle := 1.5 + 2.5 + 0.5 + 0.5
	if math.Abs(trace[0].Watts-(idle+(20-2.5)+(5-0.5))) > 1e-6 {
		t.Fatalf("t0 watts=%f", trace[0].Watts)
	}
	var at150 float64
	for _, s := range trace {
		if s.TimeUS == 150 {
			at150 = s.Watts
		}
	}
	if math.Abs(at150-(idle+(5-0.5))) > 1e-6 {
		t.Fatalf("t150 watts=%f", at150)
	}
	// No recording -> no trace.
	e2 := NewEngine(p, false)
	e2.Submit(gpu, 0, 10, "x")
	if e2.PowerTrace(5) != nil {
		t.Fatal("trace without recording")
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	bad := []*Platform{
		{Name: "empty"},
		{Name: "dupe", Devices: []*Device{
			{ID: 0, Name: "A", PeakMACs: map[nn.Precision]float64{nn.FP32: 1}, SparseEff: 1, SaturationSites: 1},
			{ID: 1, Name: "A", PeakMACs: map[nn.Precision]float64{nn.FP32: 1}, SparseEff: 1, SaturationSites: 1},
		}, Link: Link{BandwidthBps: 1}},
		{Name: "noprec", Devices: []*Device{
			{ID: 0, Name: "A", SparseEff: 1, SaturationSites: 1},
		}, Link: Link{BandwidthBps: 1}},
		{Name: "badlink", Devices: []*Device{
			{ID: 0, Name: "A", PeakMACs: map[nn.Precision]float64{nn.FP32: 1}, SparseEff: 1, SaturationSites: 1},
		}},
		{Name: "badid", Devices: []*Device{
			{ID: 5, Name: "A", PeakMACs: map[nn.Precision]float64{nn.FP32: 1}, SparseEff: 1, SaturationSites: 1},
		}, Link: Link{BandwidthBps: 1}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("platform %q accepted", p.Name)
		}
	}
}
