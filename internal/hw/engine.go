package hw

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Span is one executed interval on a device's queue.
type Span struct {
	Device string
	Tag    string
	Start  float64 // microseconds
	End    float64
}

// devQueue is one device's FIFO accounting, guarded by its own lock so
// concurrent submitters targeting different devices never contend.
type devQueue struct {
	mu        sync.Mutex
	busyUntil float64
	busyTotal float64
	timeline  []Span
}

// Engine is a discrete-event executor with one FIFO queue per device.
// Work is submitted with an earliest-start constraint (data
// dependencies) and begins at max(earliest, queue-free time) — exactly
// the End_T recurrence of the paper's Eq. 3.
//
// Concurrency contract: Submit, ReserveUM and every query method
// (BusyUntil, Makespan, Loads, ...) are safe for concurrent use; the
// engine locks per device, so submitters on different devices do not
// serialize against each other. Reset is the one exception: it
// requires exclusive access. A Reset racing an in-flight submission is
// the silent-corruption bug class the old caller-side engine mutex
// hid, so it now fails loudly twice over: Reset panics when it
// observes in-flight submissions, and the resetTick tripwire below is
// read/written without synchronization so the race detector reports
// the overlap even when the panic window is missed.
type Engine struct {
	p      *Platform
	devs   []devQueue
	record bool

	// umMu serializes unified-memory transfers (ReserveUM), the shared
	// bus every cross-device edge rides.
	umMu   sync.Mutex
	umBusy float64

	// inFlight counts submissions currently inside Submit/ReserveUM;
	// Reset panics unless it is zero.
	inFlight atomic.Int64
	// resetTick is deliberately accessed without synchronization: Reset
	// writes it, Submit reads it, so `go test -race` flags a concurrent
	// Reset/Submit pair as a data race at the exact misuse site.
	resetTick int64

	// aux holds the out-of-band cost counters (see AuxCounter). They
	// record real host-side work — parallel kernel dispatches, rulebook
	// cache traffic — without ever entering the virtual-time accounting
	// above, so enabling parallelism cannot perturb a replay.
	aux [auxCount]atomic.Uint64
}

// AuxCounter names one out-of-band cost counter on the engine: host
// work that is worth observing (benchmarks, Prom metrics) but must not
// influence virtual time.
type AuxCounter int

// Aux counters.
const (
	// AuxParallelDispatches counts sharded kernel dispatches run on the
	// node's worker pool.
	AuxParallelDispatches AuxCounter = iota
	// AuxRulebookHits / AuxRulebookMisses count rulebook cache traffic
	// across all sessions.
	AuxRulebookHits
	AuxRulebookMisses
	// AuxRulebookSavedScans counts dense activity-scan elements avoided
	// by reusing cached rulebooks.
	AuxRulebookSavedScans
	auxCount
)

// AddAux adds n to an aux cost counter. Safe for concurrent use and
// deliberately decoupled from Submit: aux costs never move busyUntil.
func (e *Engine) AddAux(c AuxCounter, n uint64) { e.aux[c].Add(n) }

// Aux reads an aux cost counter.
func (e *Engine) Aux(c AuxCounter) uint64 { return e.aux[c].Load() }

// NewEngine returns an idle engine over the platform. If record is
// true every span is kept for timeline inspection (power traces,
// Gantt-style dumps).
func NewEngine(p *Platform, record bool) *Engine {
	return &Engine{
		p:      p,
		devs:   make([]devQueue, len(p.Devices)),
		record: record,
	}
}

// Platform returns the engine's platform.
func (e *Engine) Platform() *Platform { return e.p }

// Recording reports whether the engine keeps per-span timelines. Hot
// paths use it to skip building span tags nobody will read.
func (e *Engine) Recording() bool { return e.record }

// Submit schedules durUS of work on dev no earlier than earliestUS,
// after everything already queued on that device. It returns the
// span's start and end times. Safe for concurrent use; only
// submissions to the same device serialize.
func (e *Engine) Submit(dev *Device, earliestUS, durUS float64, tag string) (start, end float64) {
	if durUS < 0 {
		panic(fmt.Sprintf("hw: negative duration %f for %s", durUS, tag))
	}
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	if e.resetTick < 0 { // race-detector tripwire vs Reset; never true
		panic("hw: corrupted reset tick")
	}
	q := &e.devs[dev.ID]
	q.mu.Lock()
	defer q.mu.Unlock()
	start = earliestUS
	if q.busyUntil > start {
		start = q.busyUntil
	}
	end = start + durUS
	q.busyUntil = end
	q.busyTotal += durUS
	if e.record {
		q.timeline = append(q.timeline, Span{Device: dev.Name, Tag: tag, Start: start, End: end})
	}
	return start, end
}

// ReserveUM claims one unified-memory transfer of durUS starting no
// earlier than earliestUS, after every transfer already reserved — the
// shared-bus serialization every cross-device layer edge pays. It
// returns the transfer's start and end times.
func (e *Engine) ReserveUM(earliestUS, durUS float64) (start, end float64) {
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	e.umMu.Lock()
	defer e.umMu.Unlock()
	start = math.Max(earliestUS, e.umBusy)
	e.umBusy = start + durUS
	return start, e.umBusy
}

// UMBusyUntil returns when the unified-memory bus drains.
func (e *Engine) UMBusyUntil() float64 {
	e.umMu.Lock()
	defer e.umMu.Unlock()
	return e.umBusy
}

// BusyUntil returns when the device's queue drains.
func (e *Engine) BusyUntil(dev *Device) float64 {
	q := &e.devs[dev.ID]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.busyUntil
}

// Makespan returns the time the last queue drains.
func (e *Engine) Makespan() float64 {
	var m float64
	for i := range e.devs {
		q := &e.devs[i]
		q.mu.Lock()
		if q.busyUntil > m {
			m = q.busyUntil
		}
		q.mu.Unlock()
	}
	return m
}

// BusyTime returns the total busy microseconds of a device.
func (e *Engine) BusyTime(dev *Device) float64 {
	q := &e.devs[dev.ID]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.busyTotal
}

// Utilization returns busy/makespan for a device (0 if nothing ran).
func (e *Engine) Utilization(dev *Device) float64 {
	m := e.Makespan()
	if m == 0 {
		return 0
	}
	return e.BusyTime(dev) / m
}

// DeviceLoad is one device's load signal at an instant of virtual
// time: accumulated busy microseconds, the backlog still queued ahead
// of new work, and busy-over-elapsed utilization.
type DeviceLoad struct {
	Device      string
	BusyUS      float64
	BacklogUS   float64
	Utilization float64
}

// Loads snapshots every device's load at virtual time nowUS (typically
// the makespan or the serving clock) — the per-device telemetry the
// online control plane's remap planner consumes.
func (e *Engine) Loads(nowUS float64) []DeviceLoad {
	out := make([]DeviceLoad, len(e.p.Devices))
	for i, d := range e.p.Devices {
		q := &e.devs[i]
		q.mu.Lock()
		busyUntil, busyTotal := q.busyUntil, q.busyTotal
		q.mu.Unlock()
		l := DeviceLoad{Device: d.Name, BusyUS: busyTotal}
		if b := busyUntil - nowUS; b > 0 {
			l.BacklogUS = b
		}
		if nowUS > 0 {
			l.Utilization = busyTotal / nowUS
		}
		out[i] = l
	}
	return out
}

// EnergyJoules integrates device power over the horizon: active power
// while busy, idle power otherwise. If horizonUS is zero the makespan
// is used. This mirrors a Tegrastats busy-time integral.
func (e *Engine) EnergyJoules(horizonUS float64) float64 {
	if horizonUS <= 0 {
		horizonUS = e.Makespan()
	}
	var j float64
	for _, d := range e.p.Devices {
		busy := e.BusyTime(d)
		if busy > horizonUS {
			busy = horizonUS
		}
		j += d.ActiveWatts*busy*1e-6 + d.IdleWatts*(horizonUS-busy)*1e-6
	}
	return j
}

// Timeline returns the recorded spans sorted by start time.
func (e *Engine) Timeline() []Span {
	var out []Span
	for i := range e.devs {
		q := &e.devs[i]
		q.mu.Lock()
		out = append(out, q.timeline...)
		q.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// Reset clears all queues and accounting. It requires exclusive access
// (see the Engine concurrency contract) and panics when it observes a
// submission in flight; the unsynchronized resetTick write below makes
// the overlap race-detector-visible even when the panic misses it.
func (e *Engine) Reset() {
	if n := e.inFlight.Load(); n != 0 {
		panic(fmt.Sprintf("hw: Reset with %d submissions in flight (Engine.Reset requires exclusive access)", n))
	}
	e.resetTick++
	for i := range e.devs {
		q := &e.devs[i]
		q.mu.Lock()
		q.busyUntil = 0
		q.busyTotal = 0
		q.timeline = q.timeline[:0]
		q.mu.Unlock()
	}
	e.umMu.Lock()
	e.umBusy = 0
	e.umMu.Unlock()
	for i := range e.aux {
		e.aux[i].Store(0)
	}
}

// PowerSample is one instant of a synthetic Tegrastats trace.
type PowerSample struct {
	TimeUS float64
	Watts  float64
}

// PowerTrace samples total platform power every intervalUS from the
// recorded timeline (requires NewEngine(..., true)).
func (e *Engine) PowerTrace(intervalUS float64) []PowerSample {
	timeline := e.Timeline()
	if intervalUS <= 0 || len(timeline) == 0 {
		return nil
	}
	makespan := e.Makespan()
	var out []PowerSample
	for t := 0.0; t <= makespan; t += intervalUS {
		w := 0.0
		for _, d := range e.p.Devices {
			w += d.IdleWatts
		}
		for _, s := range timeline {
			if s.Start <= t && t < s.End {
				d, err := e.p.Device(s.Device)
				if err == nil {
					w += d.ActiveWatts - d.IdleWatts
				}
			}
		}
		out = append(out, PowerSample{TimeUS: t, Watts: w})
	}
	return out
}
