package hw

import (
	"fmt"
	"sort"
)

// Span is one executed interval on a device's queue.
type Span struct {
	Device string
	Tag    string
	Start  float64 // microseconds
	End    float64
}

// Engine is a discrete-event executor with one FIFO queue per device.
// Work is submitted with an earliest-start constraint (data
// dependencies) and begins at max(earliest, queue-free time) — exactly
// the End_T recurrence of the paper's Eq. 3.
type Engine struct {
	p         *Platform
	busyUntil []float64
	busyTotal []float64
	timeline  []Span
	record    bool
}

// NewEngine returns an idle engine over the platform. If record is
// true every span is kept for timeline inspection (power traces,
// Gantt-style dumps).
func NewEngine(p *Platform, record bool) *Engine {
	return &Engine{
		p:         p,
		busyUntil: make([]float64, len(p.Devices)),
		busyTotal: make([]float64, len(p.Devices)),
		record:    record,
	}
}

// Platform returns the engine's platform.
func (e *Engine) Platform() *Platform { return e.p }

// Submit schedules durUS of work on dev no earlier than earliestUS,
// after everything already queued on that device. It returns the
// span's start and end times.
func (e *Engine) Submit(dev *Device, earliestUS, durUS float64, tag string) (start, end float64) {
	if durUS < 0 {
		panic(fmt.Sprintf("hw: negative duration %f for %s", durUS, tag))
	}
	start = earliestUS
	if e.busyUntil[dev.ID] > start {
		start = e.busyUntil[dev.ID]
	}
	end = start + durUS
	e.busyUntil[dev.ID] = end
	e.busyTotal[dev.ID] += durUS
	if e.record {
		e.timeline = append(e.timeline, Span{Device: dev.Name, Tag: tag, Start: start, End: end})
	}
	return start, end
}

// BusyUntil returns when the device's queue drains.
func (e *Engine) BusyUntil(dev *Device) float64 { return e.busyUntil[dev.ID] }

// Makespan returns the time the last queue drains.
func (e *Engine) Makespan() float64 {
	var m float64
	for _, t := range e.busyUntil {
		if t > m {
			m = t
		}
	}
	return m
}

// BusyTime returns the total busy microseconds of a device.
func (e *Engine) BusyTime(dev *Device) float64 { return e.busyTotal[dev.ID] }

// Utilization returns busy/makespan for a device (0 if nothing ran).
func (e *Engine) Utilization(dev *Device) float64 {
	m := e.Makespan()
	if m == 0 {
		return 0
	}
	return e.busyTotal[dev.ID] / m
}

// DeviceLoad is one device's load signal at an instant of virtual
// time: accumulated busy microseconds, the backlog still queued ahead
// of new work, and busy-over-elapsed utilization.
type DeviceLoad struct {
	Device      string
	BusyUS      float64
	BacklogUS   float64
	Utilization float64
}

// Loads snapshots every device's load at virtual time nowUS (typically
// the makespan or the serving clock) — the per-device telemetry the
// online control plane's remap planner consumes.
func (e *Engine) Loads(nowUS float64) []DeviceLoad {
	out := make([]DeviceLoad, len(e.p.Devices))
	for i, d := range e.p.Devices {
		l := DeviceLoad{Device: d.Name, BusyUS: e.busyTotal[i]}
		if b := e.busyUntil[i] - nowUS; b > 0 {
			l.BacklogUS = b
		}
		if nowUS > 0 {
			l.Utilization = e.busyTotal[i] / nowUS
		}
		out[i] = l
	}
	return out
}

// EnergyJoules integrates device power over the horizon: active power
// while busy, idle power otherwise. If horizonUS is zero the makespan
// is used. This mirrors a Tegrastats busy-time integral.
func (e *Engine) EnergyJoules(horizonUS float64) float64 {
	if horizonUS <= 0 {
		horizonUS = e.Makespan()
	}
	var j float64
	for i, d := range e.p.Devices {
		busy := e.busyTotal[i]
		if busy > horizonUS {
			busy = horizonUS
		}
		j += d.ActiveWatts*busy*1e-6 + d.IdleWatts*(horizonUS-busy)*1e-6
	}
	return j
}

// Timeline returns the recorded spans sorted by start time.
func (e *Engine) Timeline() []Span {
	out := append([]Span(nil), e.timeline...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset clears all queues and accounting.
func (e *Engine) Reset() {
	for i := range e.busyUntil {
		e.busyUntil[i] = 0
		e.busyTotal[i] = 0
	}
	e.timeline = e.timeline[:0]
}

// PowerSample is one instant of a synthetic Tegrastats trace.
type PowerSample struct {
	TimeUS float64
	Watts  float64
}

// PowerTrace samples total platform power every intervalUS from the
// recorded timeline (requires NewEngine(..., true)).
func (e *Engine) PowerTrace(intervalUS float64) []PowerSample {
	if intervalUS <= 0 || len(e.timeline) == 0 {
		return nil
	}
	makespan := e.Makespan()
	var out []PowerSample
	for t := 0.0; t <= makespan; t += intervalUS {
		w := 0.0
		for _, d := range e.p.Devices {
			w += d.IdleWatts
		}
		for _, s := range e.timeline {
			if s.Start <= t && t < s.End {
				d, err := e.p.Device(s.Device)
				if err == nil {
					w += d.ActiveWatts - d.IdleWatts
				}
			}
		}
		out = append(out, PowerSample{TimeUS: t, Watts: w})
	}
	return out
}
