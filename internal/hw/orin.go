package hw

import (
	"fmt"
	"sort"
	"strings"

	"evedge/internal/nn"
)

// Orin returns a Jetson AGX Orin-like platform: an Ampere-class GPU
// roughly twice the Xavier GPU, two faster DLAs with INT8-heavy
// ratings, and a wider CPU. The paper evaluates on Xavier only; Orin
// exists here to demonstrate that Ev-Edge's optimizations port across
// commodity platforms (the paper's "commodity edge platforms" framing)
// and to feed the cross-platform ablation bench.
func Orin() *Platform {
	p := &Platform{
		Name: "jetson-agx-orin",
		Devices: []*Device{
			{
				ID: 0, Name: "CPU", Kind: CPU,
				PeakMACs: map[nn.Precision]float64{
					nn.FP32: 120e9, nn.FP16: 140e9, nn.INT8: 240e9,
				},
				SparseEff:          0.90,
				SparseOverheadFrac: 0.05,
				SaturationSites:    2e3,
				LaunchUS:           6,
				TimestepUS:         12,
				ActiveWatts:        14, IdleWatts: 2,
			},
			{
				ID: 1, Name: "GPU", Kind: GPU,
				PeakMACs: map[nn.Precision]float64{
					nn.FP32: 1700e9, nn.FP16: 3400e9, nn.INT8: 6800e9,
				},
				SparseEff:          0.50,
				SparseOverheadFrac: 0.30,
				SaturationSites:    2e5,
				LaunchUS:           10,
				TimestepUS:         20,
				ActiveWatts:        30, IdleWatts: 3.5,
			},
			{
				ID: 2, Name: "DLA0", Kind: DLA,
				PeakMACs: map[nn.Precision]float64{
					nn.FP16: 1700e9, nn.INT8: 3400e9,
				},
				SparseEff:          0.12,
				SparseOverheadFrac: 0.60,
				SaturationSites:    4e4,
				LaunchUS:           24,
				TimestepUS:         30,
				ActiveWatts:        8, IdleWatts: 0.8,
			},
			{
				ID: 3, Name: "DLA1", Kind: DLA,
				PeakMACs: map[nn.Precision]float64{
					nn.FP16: 1700e9, nn.INT8: 3400e9,
				},
				SparseEff:          0.12,
				SparseOverheadFrac: 0.60,
				SaturationSites:    4e4,
				LaunchUS:           24,
				TimestepUS:         30,
				ActiveWatts:        8, IdleWatts: 0.8,
			},
		},
		Link: Link{BandwidthBps: 204e9 * 0.85, LatencyUS: 4},
	}
	if err := p.Validate(); err != nil {
		panic(err) // construction bug, not runtime input
	}
	return p
}

// Platforms lists the built-in platform presets by name.
func Platforms() []string { return []string{"xavier", "orin"} }

// PlatformByName returns a built-in platform preset.
func PlatformByName(name string) (*Platform, error) {
	switch strings.ToLower(name) {
	case "xavier", "jetson-xavier-agx":
		return Xavier(), nil
	case "orin", "jetson-agx-orin":
		return Orin(), nil
	}
	return nil, fmt.Errorf("hw: unknown platform %q (have %v)", name, Platforms())
}

// Gantt renders a recorded timeline as a fixed-width text chart, one
// row per device plus the unified-memory row if commSpans are given.
// Each column covers makespan/width microseconds; a filled cell means
// the device was busy during that slice.
func Gantt(p *Platform, spans []Span, width int) string {
	if width <= 0 {
		width = 80
	}
	var makespan float64
	for _, s := range spans {
		if s.End > makespan {
			makespan = s.End
		}
	}
	if makespan == 0 {
		return "(empty timeline)\n"
	}
	names := make([]string, 0, len(p.Devices))
	for _, d := range p.Devices {
		names = append(names, d.Name)
	}
	// Include any span devices not in the platform list (e.g. "UM").
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	var extra []string
	for _, s := range spans {
		if !seen[s.Device] {
			seen[s.Device] = true
			extra = append(extra, s.Device)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.0f us, %.0f us/col\n", makespan, makespan/float64(width))
	for _, name := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.Device != name {
				continue
			}
			lo := int(s.Start / makespan * float64(width))
			hi := int(s.End / makespan * float64(width))
			if hi == lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-5s %s\n", name, row)
	}
	return b.String()
}
