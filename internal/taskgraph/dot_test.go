package taskgraph

import (
	"strings"
	"testing"

	"evedge/internal/nn"
)

func TestDOTAndMappingTable(t *testing.T) {
	db, m, nets := setup(t, nn.SpikeFlowNet, nn.DOTIE)
	asg := uniform(nets, 1, nn.FP16)
	// Split one layer off to force a transfer node.
	asg.Device[0][6] = 2
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{
		"digraph evedge",
		"cluster_0", "cluster_1",
		"SpikeFlowNet", "DOTIE",
		"shape=diamond", // the transfer node
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// One node statement per graph node.
	if got := strings.Count(dot, "n0 ->") + strings.Count(dot, "label="); got < len(g.Nodes) {
		t.Errorf("DOT seems incomplete: %d statements for %d nodes", got, len(g.Nodes))
	}

	table := g.MappingTable()
	if !strings.Contains(table, "SpikeFlowNet:") || !strings.Contains(table, "enc1") {
		t.Fatalf("mapping table incomplete:\n%s", table)
	}
	if !strings.Contains(table, "dev=2") {
		t.Fatal("mapping table missing the moved layer")
	}
}
