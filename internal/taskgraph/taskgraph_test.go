package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

func setup(t *testing.T, names ...string) (*perf.ProfileDB, *perf.Model, []*nn.Network) {
	t.Helper()
	platform := hw.Xavier()
	m := perf.NewModel(platform)
	nets := make([]*nn.Network, len(names))
	dens := make([]float64, len(names))
	for i, n := range names {
		nets[i] = nn.MustByName(n)
		dens[i] = 0.05
	}
	db, err := perf.BuildProfileDB(m, nets, true, dens)
	if err != nil {
		t.Fatal(err)
	}
	return db, m, nets
}

// uniform places every layer on one device at one precision.
func uniform(nets []*nn.Network, dev int, p nn.Precision) *Assignment {
	a := NewAssignment(nets)
	for t := range nets {
		for l := range nets[t].Layers {
			a.Device[t][l] = dev
			a.Prec[t][l] = p
		}
	}
	return a
}

func TestAssignmentValidate(t *testing.T) {
	db, _, nets := setup(t, nn.DOTIE)
	platform := db.Platform()
	good := uniform(nets, 1, nn.FP16) // GPU
	if err := good.Validate(nets, platform); err != nil {
		t.Fatal(err)
	}
	// DLA (2) does not support FP32.
	bad := uniform(nets, 2, nn.FP32)
	if err := bad.Validate(nets, platform); err == nil {
		t.Fatal("unsupported precision accepted")
	}
	// Unknown device.
	bad2 := uniform(nets, 9, nn.FP16)
	if err := bad2.Validate(nets, platform); err == nil {
		t.Fatal("unknown device accepted")
	}
	// Wrong shape.
	bad3 := &Assignment{Device: [][]int{{0}}, Prec: [][]nn.Precision{{nn.FP32}, {nn.FP32}}}
	if err := bad3.Validate(nets, platform); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Clone is deep.
	c := good.Clone()
	c.Device[0][0] = 0
	if good.Device[0][0] == 0 {
		t.Fatal("clone shares storage")
	}
}

func TestSingleDeviceChainSchedulesSerially(t *testing.T) {
	db, m, nets := setup(t, nn.SpikeFlowNet)
	asg := uniform(nets, 1, nn.FP16)
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Same-device edges need no comm nodes.
	if g.CommNodeCount() != 0 {
		t.Fatalf("comm nodes=%d want 0", g.CommNodeCount())
	}
	s, err := g.Run(db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	// Serial chain: makespan equals the sum of durations.
	var sum float64
	for _, node := range g.Nodes {
		sum += node.DurUS
	}
	if diff := s.MakespanUS - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("makespan %f != serial sum %f", s.MakespanUS, sum)
	}
	if s.TaskLatencyUS[0] != s.MakespanUS {
		t.Fatal("single task latency must equal makespan")
	}
	if s.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestCrossDeviceEdgesInsertCommNodes(t *testing.T) {
	db, m, nets := setup(t, nn.SpikeFlowNet)
	asg := uniform(nets, 1, nn.FP16)
	// Move the decoder (layers 6..11) to DLA0.
	for l := 6; l < 12; l++ {
		asg.Device[0][l] = 2
	}
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one cut edge: res2(5) -> dec1(6). The rest of the decoder
	// is DLA-internal.
	if g.CommNodeCount() != 1 {
		t.Fatalf("comm nodes=%d want 1", g.CommNodeCount())
	}
	s, err := g.Run(db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	if s.CommBusyUS <= 0 {
		t.Fatal("comm time not accounted")
	}
}

func TestDependenciesRespected(t *testing.T) {
	db, m, nets := setup(t, nn.FusionFlowNet)
	r := rand.New(rand.NewSource(3))
	asg := NewAssignment(nets)
	platform := db.Platform()
	for l := range nets[0].Layers {
		d := r.Intn(len(platform.Devices))
		asg.Device[0][l] = d
		ps := platform.Devices[d].Precisions()
		asg.Prec[0][l] = ps[r.Intn(len(ps))]
	}
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(platform)
	if err != nil {
		t.Fatal(err)
	}
	// Every node starts after all its parents end.
	for _, node := range g.Nodes {
		for _, p := range node.Preds {
			if s.NodeStart[node.ID] < s.NodeEnd[p]-1e-9 {
				t.Fatalf("node %d starts %f before parent %d ends %f",
					node.ID, s.NodeStart[node.ID], p, s.NodeEnd[p])
			}
		}
		if s.NodeEnd[node.ID] < s.NodeStart[node.ID] {
			t.Fatal("negative duration span")
		}
	}
}

// Property: scheduling respects dependencies and queue exclusivity for
// random assignments of a two-task workload.
func TestScheduleInvariantsProperty(t *testing.T) {
	db, m, nets := setup(t, nn.DOTIE, nn.EVFlowNet)
	platform := db.Platform()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		asg := NewAssignment(nets)
		for ti := range nets {
			for l := range nets[ti].Layers {
				d := r.Intn(len(platform.Devices))
				asg.Device[ti][l] = d
				ps := platform.Devices[d].Precisions()
				asg.Prec[ti][l] = ps[r.Intn(len(ps))]
			}
		}
		g, err := Build(db, m, asg)
		if err != nil {
			return false
		}
		s, err := g.Run(platform)
		if err != nil {
			return false
		}
		// Dependencies.
		for _, node := range g.Nodes {
			for _, p := range node.Preds {
				if s.NodeStart[node.ID] < s.NodeEnd[p]-1e-9 {
					return false
				}
			}
		}
		// Per-device exclusivity: spans on one device must not overlap.
		type span struct{ s, e float64 }
		byDev := map[int][]span{}
		for _, node := range g.Nodes {
			if node.Kind == ComputeNode {
				byDev[node.Dev] = append(byDev[node.Dev], span{s.NodeStart[node.ID], s.NodeEnd[node.ID]})
			}
		}
		for _, spans := range byDev {
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					a, b := spans[i], spans[j]
					if a.s < b.e-1e-9 && b.s < a.e-1e-9 && a.e-a.s > 0 && b.e-b.s > 0 {
						return false
					}
				}
			}
		}
		return s.MakespanUS > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTasksOverlapOnDifferentDevices(t *testing.T) {
	db, m, nets := setup(t, nn.DOTIE, nn.HidalgoDepth)
	// DOTIE on CPU, depth on GPU: they run concurrently, so the
	// makespan is far below the serial sum.
	asg := NewAssignment(nets)
	for l := range nets[0].Layers {
		asg.Device[0][l], asg.Prec[0][l] = 0, nn.FP32
	}
	for l := range nets[1].Layers {
		asg.Device[1][l], asg.Prec[1][l] = 1, nn.FP16
	}
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	serial := s.TaskLatencyUS[0] + s.TaskLatencyUS[1]
	if s.MakespanUS >= serial {
		t.Fatalf("no overlap: makespan %f vs serial %f", s.MakespanUS, serial)
	}
	// Both devices worked.
	if s.DeviceBusyUS["CPU"] <= 0 || s.DeviceBusyUS["GPU"] <= 0 {
		t.Fatalf("busy: %+v", s.DeviceBusyUS)
	}
}

func TestContentionSerializesSharedDevice(t *testing.T) {
	db, _, nets := setup(t, nn.DOTIE, nn.DOTIE)
	m := perf.NewModel(db.Platform())
	asg := uniform(nets, 1, nn.FP16)
	g, err := Build(db, m, asg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Run(db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	// Two identical single-layer tasks on one device: the second waits.
	if s.TaskLatencyUS[0] == s.TaskLatencyUS[1] {
		t.Fatalf("shared device should serialize: %v", s.TaskLatencyUS)
	}
}

func TestCriticalPath(t *testing.T) {
	db, m, nets := setup(t, nn.SpikeFlowNet)
	asg := uniform(nets, 1, nn.FP16)
	g, _ := Build(db, m, asg)
	s, err := g.Run(db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	path := g.CriticalPath(s)
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// Path ends at the latest-finishing node and starts at a source.
	last := path[len(path)-1]
	if s.NodeEnd[last] != s.MakespanUS {
		t.Fatalf("path ends at %f, makespan %f", s.NodeEnd[last], s.MakespanUS)
	}
	if len(g.Nodes[path[0]].Preds) != 0 {
		t.Fatal("path does not start at a source")
	}
	// Consecutive: each node is a pred of the next.
	for i := 1; i < len(path); i++ {
		found := false
		for _, p := range g.Nodes[path[i]].Preds {
			if p == path[i-1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path edge %d->%d is not a dependency", path[i-1], path[i])
		}
	}
}

func TestBuildRejectsBadAssignment(t *testing.T) {
	db, m, nets := setup(t, nn.DOTIE)
	bad := uniform(nets, 2, nn.FP32) // DLA has no FP32
	if _, err := Build(db, m, bad); err == nil {
		t.Fatal("bad assignment accepted")
	}
}
