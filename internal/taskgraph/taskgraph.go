// Package taskgraph builds the multi-task input graph of the paper's
// Network Mapper (Sec. 4.3, Fig. 7) and schedules it on the
// heterogeneous platform.
//
// Each node of the graph is one layer of one concurrently executing
// network; edges are data dependencies. Converting a graph into a
// candidate assigns every node a processing element and a precision,
// and inserts data-transfer nodes (executed on the unified-memory
// queue) wherever a producer and consumer land on different devices.
// Scheduling follows Eq. 3: per-device FIFO execution queues, a
// partial order from data dependencies, and
//
//	End_T(node) = max(End_T(parents), CurDeviceQ_T) + Exec_T(node)
//	CriticalPathLatency = max(End_T(*))
package taskgraph

import (
	"fmt"

	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

// Assignment maps every layer of every task to a device and precision
// — the paper's candidate encoding.
type Assignment struct {
	Device [][]int          // Device[t][l] = platform device ID
	Prec   [][]nn.Precision // Prec[t][l]
}

// NewAssignment allocates an assignment shaped like the workload.
func NewAssignment(nets []*nn.Network) *Assignment {
	a := &Assignment{
		Device: make([][]int, len(nets)),
		Prec:   make([][]nn.Precision, len(nets)),
	}
	for t, n := range nets {
		a.Device[t] = make([]int, len(n.Layers))
		a.Prec[t] = make([]nn.Precision, len(n.Layers))
	}
	return a
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	out := &Assignment{
		Device: make([][]int, len(a.Device)),
		Prec:   make([][]nn.Precision, len(a.Prec)),
	}
	for t := range a.Device {
		out.Device[t] = append([]int(nil), a.Device[t]...)
		out.Prec[t] = append([]nn.Precision(nil), a.Prec[t]...)
	}
	return out
}

// Validate checks shape agreement and device/precision support.
func (a *Assignment) Validate(nets []*nn.Network, p *hw.Platform) error {
	if len(a.Device) != len(nets) || len(a.Prec) != len(nets) {
		return fmt.Errorf("taskgraph: assignment covers %d tasks, workload has %d", len(a.Device), len(nets))
	}
	for t, n := range nets {
		if len(a.Device[t]) != len(n.Layers) || len(a.Prec[t]) != len(n.Layers) {
			return fmt.Errorf("taskgraph: task %d assignment covers %d layers, network has %d",
				t, len(a.Device[t]), len(n.Layers))
		}
		for l := range n.Layers {
			id := a.Device[t][l]
			if id < 0 || id >= len(p.Devices) {
				return fmt.Errorf("taskgraph: task %d layer %d mapped to unknown device %d", t, l, id)
			}
			if !p.Devices[id].Supports(a.Prec[t][l]) {
				return fmt.Errorf("taskgraph: task %d layer %d: %s does not support %v",
					t, l, p.Devices[id].Name, a.Prec[t][l])
			}
		}
	}
	return nil
}

// NodeKind distinguishes compute from data-transfer nodes.
type NodeKind int

// Node kinds.
const (
	ComputeNode NodeKind = iota
	CommNode
)

// Node is one schedulable unit.
type Node struct {
	ID    int
	Kind  NodeKind
	Ref   perf.LayerRef // valid for ComputeNode (and names CommNode's producer)
	Dev   int           // device ID for compute; -1 for comm (unified-memory queue)
	Prec  nn.Precision
	Preds []int
	DurUS float64
	Label string
}

// Graph is the mapped multi-task graph ready for scheduling.
type Graph struct {
	Nodes    []*Node
	Networks []*nn.Network
	// taskNodes[t] lists the compute node IDs of task t.
	taskNodes [][]int
}

// Build converts the workload plus an assignment into a concrete graph
// with durations from the profile DB (compute) and cost model (comm).
func Build(db *perf.ProfileDB, m *perf.Model, asg *Assignment) (*Graph, error) {
	nets := db.Networks()
	platform := db.Platform()
	if err := asg.Validate(nets, platform); err != nil {
		return nil, err
	}
	g := &Graph{Networks: nets, taskNodes: make([][]int, len(nets))}
	// computeID[t][l] = node ID of the layer's compute node.
	computeID := make([][]int, len(nets))
	add := func(n *Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	for t, net := range nets {
		computeID[t] = make([]int, len(net.Layers))
		for l, layer := range net.Layers {
			ref := perf.LayerRef{Task: t, Layer: l}
			dev := asg.Device[t][l]
			prec := asg.Prec[t][l]
			dur, ok := db.TimeUS(ref, dev, prec)
			if !ok {
				return nil, fmt.Errorf("taskgraph: no profile for task %d layer %d on device %d at %v",
					t, l, dev, prec)
			}
			node := &Node{
				Kind: ComputeNode, Ref: ref, Dev: dev, Prec: prec, DurUS: dur,
				Label: fmt.Sprintf("%s/%s@%s", net.Name, layer.Name, platform.Devices[dev].Name),
			}
			id := add(node)
			computeID[t][l] = id
			g.taskNodes[t] = append(g.taskNodes[t], id)
			for _, p := range net.Preds[l] {
				prodDev := asg.Device[t][p]
				prodPrec := asg.Prec[t][p]
				if prodDev == dev {
					node.Preds = append(node.Preds, computeID[t][p])
					continue
				}
				// Cross-device edge: insert a transfer node on the
				// unified-memory queue (paper Fig. 7a).
				comm := &Node{
					Kind: CommNode,
					Ref:  perf.LayerRef{Task: t, Layer: p},
					Dev:  -1, Prec: prodPrec,
					DurUS: m.CommUS(net.Layers[p], platform.Devices[prodDev], platform.Devices[dev], prodPrec),
					Preds: []int{computeID[t][p]},
					Label: fmt.Sprintf("%s/%s->%s", net.Name, net.Layers[p].Name, platform.Devices[dev].Name),
				}
				cid := add(comm)
				node.Preds = append(node.Preds, cid)
			}
		}
	}
	return g, nil
}

// Schedule is the result of list-scheduling a graph.
type Schedule struct {
	MakespanUS    float64
	TaskLatencyUS []float64
	NodeStart     []float64
	NodeEnd       []float64
	EnergyJ       float64
	DeviceBusyUS  map[string]float64
	CommBusyUS    float64
}

// Run list-schedules the graph on the platform (Eq. 3): nodes become
// ready when all parents finish; among ready nodes the one with the
// earliest feasible start (ties: smallest task, then layer) is
// committed to its queue next. Comm nodes share one unified-memory
// queue.
func (g *Graph) Run(platform *hw.Platform) (*Schedule, error) {
	n := len(g.Nodes)
	s := &Schedule{
		NodeStart:     make([]float64, n),
		NodeEnd:       make([]float64, n),
		TaskLatencyUS: make([]float64, len(g.Networks)),
		DeviceBusyUS:  make(map[string]float64, len(platform.Devices)),
	}
	engine := hw.NewEngine(platform, false)
	umBusy := 0.0 // unified-memory queue (Fig. 7b includes it)

	indeg := make([]int, n)
	succs := make([][]int, n)
	for _, node := range g.Nodes {
		indeg[node.ID] = len(node.Preds)
		for _, p := range node.Preds {
			succs[p] = append(succs[p], node.ID)
		}
	}
	readyAt := make([]float64, n) // max parent end
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	scheduled := 0
	for len(ready) > 0 {
		// Pick the ready node with the earliest feasible start.
		best, bestStart := -1, 0.0
		for _, id := range ready {
			node := g.Nodes[id]
			start := readyAt[id]
			var qFree float64
			if node.Kind == CommNode {
				qFree = umBusy
			} else {
				qFree = engine.BusyUntil(platform.Devices[node.Dev])
			}
			if qFree > start {
				start = qFree
			}
			if best == -1 || start < bestStart ||
				(start == bestStart && lessNode(g.Nodes[id], g.Nodes[best])) {
				best, bestStart = id, start
			}
		}
		// Commit it.
		node := g.Nodes[best]
		var start, end float64
		if node.Kind == CommNode {
			start = readyAt[best]
			if umBusy > start {
				start = umBusy
			}
			end = start + node.DurUS
			umBusy = end
			s.CommBusyUS += node.DurUS
		} else {
			start, end = engine.Submit(platform.Devices[node.Dev], readyAt[best], node.DurUS, node.Label)
		}
		s.NodeStart[best], s.NodeEnd[best] = start, end
		scheduled++
		// Remove from ready, release successors.
		for i, id := range ready {
			if id == best {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		for _, succ := range succs[best] {
			if end > readyAt[succ] {
				readyAt[succ] = end
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("taskgraph: cycle detected, scheduled %d of %d nodes", scheduled, n)
	}
	for t, ids := range g.taskNodes {
		for _, id := range ids {
			if s.NodeEnd[id] > s.TaskLatencyUS[t] {
				s.TaskLatencyUS[t] = s.NodeEnd[id]
			}
		}
		if s.TaskLatencyUS[t] > s.MakespanUS {
			s.MakespanUS = s.TaskLatencyUS[t]
		}
	}
	if umBusy > s.MakespanUS {
		s.MakespanUS = umBusy
	}
	for _, d := range platform.Devices {
		s.DeviceBusyUS[d.Name] = engine.BusyTime(d)
	}
	s.EnergyJ = engine.EnergyJoules(s.MakespanUS)
	return s, nil
}

func lessNode(a, b *Node) bool {
	if a.Ref.Task != b.Ref.Task {
		return a.Ref.Task < b.Ref.Task
	}
	if a.Ref.Layer != b.Ref.Layer {
		return a.Ref.Layer < b.Ref.Layer
	}
	return a.Kind < b.Kind
}

// CommNodeCount returns the number of inserted transfer nodes.
func (g *Graph) CommNodeCount() int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == CommNode {
			n++
		}
	}
	return n
}

// CriticalPath returns the node IDs of one longest end-time chain,
// from source to sink, after a schedule has been computed.
func (g *Graph) CriticalPath(s *Schedule) []int {
	// Find the sink with the max end.
	best := 0
	for i := range g.Nodes {
		if s.NodeEnd[i] > s.NodeEnd[best] {
			best = i
		}
	}
	var path []int
	cur := best
	for {
		path = append(path, cur)
		preds := g.Nodes[cur].Preds
		if len(preds) == 0 {
			break
		}
		next := preds[0]
		for _, p := range preds[1:] {
			if s.NodeEnd[p] > s.NodeEnd[next] {
				next = p
			}
		}
		cur = next
	}
	// Reverse to source-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
