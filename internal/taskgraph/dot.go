package taskgraph

import (
	"fmt"
	"strings"
)

// DOT renders the mapped multi-task graph in Graphviz format: compute
// nodes clustered per task and colored per device, transfer nodes as
// diamonds on the unified-memory queue. Feed to `dot -Tsvg` to get the
// paper's Fig. 7(a)-style picture of a candidate.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph evedge {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	colors := []string{"lightblue", "lightgreen", "khaki", "salmon", "plum", "lightgray"}
	// Cluster compute nodes per task.
	for t, net := range g.Networks {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", t, net.Name)
		for _, id := range g.taskNodes[t] {
			n := g.Nodes[id]
			color := colors[n.Dev%len(colors)]
			fmt.Fprintf(&b, "    n%d [label=\"%s\\n%v %.0fus\", style=filled, fillcolor=%s];\n",
				n.ID, net.Layers[n.Ref.Layer].Name, n.Prec, n.DurUS, color)
		}
		b.WriteString("  }\n")
	}
	// Transfer nodes and all edges.
	for _, n := range g.Nodes {
		if n.Kind == CommNode {
			fmt.Fprintf(&b, "  n%d [label=\"xfer %.0fus\", shape=diamond, style=filled, fillcolor=white];\n",
				n.ID, n.DurUS)
		}
		for _, p := range n.Preds {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// MappingTable renders a per-task assignment summary: one line per
// layer with device and precision, for tooling output.
func (g *Graph) MappingTable() string {
	var b strings.Builder
	for t, net := range g.Networks {
		fmt.Fprintf(&b, "%s:\n", net.Name)
		for _, id := range g.taskNodes[t] {
			n := g.Nodes[id]
			fmt.Fprintf(&b, "  %-14s dev=%d prec=%v %8.1fus\n",
				net.Layers[n.Ref.Layer].Name, n.Dev, n.Prec, n.DurUS)
		}
	}
	return b.String()
}
