package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"evedge/internal/events"
)

// The per-session event journal behind lossless failover and
// server-push result delivery. Every ingested chunk and every emitted
// result draws from one monotonic per-session sequence; chunk entries
// are acknowledged (retired) once every frame they produced has left
// the pipeline (completed or shed), and result entries are retained in
// a bounded ring for SSE catch-up (GET /v1/sessions/{id}/stream).
//
// The journal itself stores only chunk *marks* (sequence number plus
// the cumulative frame count at append) — the chunk payloads needed
// for failover replay live in a buddy node's replica store as encoded
// wire entries, so a dead node's own memory is never consulted.
// Results replicate there too (Config.OnResult): they carry the
// session's sequence watermark across a failover — the resumed
// journal seeds strictly past every seq the dead incarnation handed
// out, chunk or result — and they refill the resumed ring so SSE
// catch-up spans the kill. Both sides are bounded: marks retire at
// the ack watermark, the result ring overwrites its oldest entry,
// and replica logs trim chunk entries to the ack watermark and cap
// result entries at the ring size on every replicated append.

// ResultEvent is one completed inference batch pushed to stream
// subscribers: the raw frames that finished, their completion instant
// in session stream time, and the batch's mean per-raw latency. Seq
// orders it within the session's journal sequence.
type ResultEvent struct {
	Seq    uint64  `json:"seq"`
	DoneUS float64 `json:"done_us"`
	LatUS  float64 `json:"lat_us"`
	Frames int     `json:"frames"`
}

// journalResultCap bounds the retained result ring per session. A
// reconnecting client can catch up gaplessly as long as it resumes
// within this many results of the live edge.
const journalResultCap = 1024

// chunkMark is one unacknowledged ingest chunk: its sequence number
// and the session's cumulative frames_in right after it was ingested.
// The chunk retires when completed-or-shed frames reach framesCum.
type chunkMark struct {
	seq       uint64
	framesCum uint64
}

// JournalStats is one session journal's observable state.
type JournalStats struct {
	Seq      uint64 // last sequence number assigned
	AckSeq   uint64 // highest fully-retired chunk sequence
	Unacked  int    // chunk marks not yet retired
	Retained int    // result events in the catch-up ring
}

// journal is the per-session sequence state. It has its own leaf lock
// because stream subscribers read it from HTTP goroutines without the
// session lock; session-side writers already hold sess.mu, making the
// two-lock cost one uncontended acquisition.
type journal struct {
	mu      sync.Mutex
	seq     uint64
	ackSeq  uint64
	chunks  []chunkMark
	results []ResultEvent // ring, oldest at head
	head    int
	n       int
	closed  bool
	notify  chan struct{}
}

func newJournal() *journal {
	return &journal{notify: make(chan struct{})}
}

// appendChunk assigns the next sequence number to an ingested chunk
// and records its ack mark.
func (j *journal) appendChunk(framesCum uint64) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	j.chunks = append(j.chunks, chunkMark{seq: j.seq, framesCum: framesCum})
	return j.seq
}

// ack retires every chunk whose frames have all completed or been
// shed, returning the new ack watermark.
func (j *journal) ack(completed uint64) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := 0
	for i < len(j.chunks) && j.chunks[i].framesCum <= completed {
		j.ackSeq = j.chunks[i].seq
		i++
	}
	if i > 0 {
		rest := copy(j.chunks, j.chunks[i:])
		j.chunks = j.chunks[:rest]
	}
	return j.ackSeq
}

// appendResult assigns the next sequence number to a completed batch,
// retains it in the catch-up ring and wakes stream subscribers.
func (j *journal) appendResult(doneUS, latUS float64, frames int) uint64 {
	j.mu.Lock()
	j.seq++
	j.pushLocked(ResultEvent{Seq: j.seq, DoneUS: doneUS, LatUS: latUS, Frames: frames})
	seq := j.seq
	j.broadcastLocked()
	j.mu.Unlock()
	return seq
}

// restore re-inserts a result replicated before a failover, keeping
// its original sequence number, and raises the sequence counter past
// it so nothing appended later can recycle a seq a client already
// consumed. Callers feed entries in ascending seq order (the replica
// log is sorted) so the ring stays ordered for resultsSince.
func (j *journal) restore(ev ResultEvent) {
	j.mu.Lock()
	if ev.Seq > j.seq {
		j.seq = ev.Seq
	}
	j.pushLocked(ev)
	j.broadcastLocked()
	j.mu.Unlock()
}

// pushLocked retains one result in the catch-up ring; callers hold
// j.mu and have already fixed ev.Seq.
func (j *journal) pushLocked(ev ResultEvent) {
	if len(j.results) < journalResultCap {
		j.results = append(j.results, ev)
		j.n++
	} else {
		j.results[j.head] = ev
		j.head = (j.head + 1) % journalResultCap
	}
}

// resultsSince appends every retained result with Seq > after to dst,
// oldest first.
func (j *journal) resultsSince(after uint64, dst []ResultEvent) []ResultEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.results)
	for i := 0; i < n; i++ {
		ev := j.results[(j.head+i)%n]
		if ev.Seq > after {
			dst = append(dst, ev)
		}
	}
	return dst
}

// seed raises the sequence counter so entries appended after a
// failover replay sort strictly after everything the old incarnation
// emitted.
func (j *journal) seed(seq uint64) {
	j.mu.Lock()
	if seq > j.seq {
		j.seq = seq
	}
	j.mu.Unlock()
}

// wait returns a channel closed on the next append or close. Grab it
// before reading resultsSince to avoid a lost wakeup.
func (j *journal) wait() <-chan struct{} {
	j.mu.Lock()
	ch := j.notify
	j.mu.Unlock()
	return ch
}

// close marks the journal final (session closed) and wakes streams so
// they can drain and finish.
func (j *journal) close() {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		j.broadcastLocked()
	}
	j.mu.Unlock()
}

func (j *journal) isClosed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// broadcastLocked wakes every subscriber; callers hold j.mu.
func (j *journal) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *journal) stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Seq: j.seq, AckSeq: j.ackSeq, Unacked: len(j.chunks), Retained: j.n}
}

// --- journal wire codec ---
//
// One journal entry on the wire:
//
//	magic   [4]byte  "EVJL"
//	version uint16
//	kind    uint8    1 = chunk, 2 = result
//	seq     uint64
//	payload          chunk: EVAR binary stream; result: done_us
//	                 float64 bits, lat_us float64 bits, frames uint32
//
// All integers little-endian. The chunk payload inherits the EVAR
// reader's bounded preallocation (a hostile header count cannot force
// a huge upfront allocation), and the result payload is fixed-size,
// so decoding untrusted bytes stays memory-safe.

// Journal entry kinds.
const (
	JournalChunk  uint8 = 1
	JournalResult uint8 = 2
)

const (
	journalMagic       = "EVJL"
	journalWireVersion = 1
	journalHeaderSize  = 4 + 2 + 1 + 8
	journalResultSize  = 8 + 8 + 4
)

// JournalEntry is one decoded journal wire entry.
type JournalEntry struct {
	Seq  uint64
	Kind uint8
	// Chunk is the replayable event payload (Kind == JournalChunk).
	Chunk *events.Stream
	// Result is the emitted result (Kind == JournalResult).
	Result ResultEvent
}

// ReplicaEntry is one encoded journal entry held in a replica store,
// keyed by its sequence number and kind so trims never re-parse the
// payload.
type ReplicaEntry struct {
	Seq  uint64
	Kind uint8
	Data []byte
}

func journalHeader(kind uint8, seq uint64) []byte {
	b := make([]byte, journalHeaderSize)
	copy(b, journalMagic)
	binary.LittleEndian.PutUint16(b[4:], journalWireVersion)
	b[6] = kind
	binary.LittleEndian.PutUint64(b[7:], seq)
	return b
}

// EncodeJournalChunk serializes one ingest chunk as a journal wire
// entry — the replication payload the cluster ships to a buddy node.
func EncodeJournalChunk(seq uint64, chunk *events.Stream) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(journalHeader(JournalChunk, seq))
	if err := events.WriteBinary(&buf, chunk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeJournalResult serializes one result event as a journal wire
// entry.
func EncodeJournalResult(ev ResultEvent) ([]byte, error) {
	b := make([]byte, journalHeaderSize+journalResultSize)
	copy(b, journalHeader(JournalResult, ev.Seq))
	p := b[journalHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:], math.Float64bits(ev.DoneUS))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(ev.LatUS))
	if ev.Frames < 0 {
		return nil, fmt.Errorf("serve: journal result has negative frame count %d", ev.Frames)
	}
	binary.LittleEndian.PutUint32(p[16:], uint32(ev.Frames))
	return b, nil
}

// DecodeJournalEntry parses one journal wire entry. Untrusted input
// is safe: payload sizes are validated and the chunk reader caps its
// preallocation.
func DecodeJournalEntry(b []byte) (JournalEntry, error) {
	var ent JournalEntry
	if len(b) < journalHeaderSize {
		return ent, fmt.Errorf("serve: journal entry truncated at %d bytes", len(b))
	}
	if string(b[:4]) != journalMagic {
		return ent, fmt.Errorf("serve: bad journal magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != journalWireVersion {
		return ent, fmt.Errorf("serve: unsupported journal version %d", v)
	}
	ent.Kind = b[6]
	ent.Seq = binary.LittleEndian.Uint64(b[7:])
	payload := b[journalHeaderSize:]
	switch ent.Kind {
	case JournalChunk:
		chunk, err := events.ReadBinary(bytes.NewReader(payload))
		if err != nil {
			return JournalEntry{}, fmt.Errorf("serve: journal chunk payload: %w", err)
		}
		ent.Chunk = chunk
	case JournalResult:
		if len(payload) != journalResultSize {
			return JournalEntry{}, fmt.Errorf("serve: journal result payload is %d bytes, want %d",
				len(payload), journalResultSize)
		}
		ent.Result = ResultEvent{
			Seq:    ent.Seq,
			DoneUS: math.Float64frombits(binary.LittleEndian.Uint64(payload[0:])),
			LatUS:  math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
			Frames: int(binary.LittleEndian.Uint32(payload[16:])),
		}
	default:
		return JournalEntry{}, fmt.Errorf("serve: unknown journal entry kind %d", ent.Kind)
	}
	return ent, nil
}

// SeedJournal raises session id's journal sequence counter so entries
// appended after a failover replay sort strictly after everything the
// previous incarnation journaled — a client resuming its stream with
// since=<last seen> never collides with recycled sequence numbers.
func (s *Server) SeedJournal(id string, seq uint64) error {
	sess, ok := s.Session(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	if sess.journal == nil {
		return ErrJournalDisabled
	}
	sess.journal.seed(seq)
	return nil
}

// RestoreResult re-inserts a replicated result event into session id's
// journal during failover replay, preserving its original sequence
// number: a client that reconnects with since=<seq> catches up on
// results the dead node emitted but the client never saw, and the
// resumed sequence counter moves past it so freshly replayed work
// cannot recycle a seq the client has already consumed.
func (s *Server) RestoreResult(id string, ev ResultEvent) error {
	sess, ok := s.Session(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	if sess.journal == nil {
		return ErrJournalDisabled
	}
	sess.journal.restore(ev)
	return nil
}

// SessionJournalStats reports session id's journal state.
func (s *Server) SessionJournalStats(id string) (JournalStats, error) {
	sess, ok := s.Session(id)
	if !ok {
		return JournalStats{}, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	if sess.journal == nil {
		return JournalStats{}, ErrJournalDisabled
	}
	return sess.journal.stats(), nil
}

// --- replica store ---

// replicaStore holds other sessions' encoded journal entries on a
// buddy node, keyed by fleet-wide session ID. It lives on the buddy
// server (not the router) so a dead buddy genuinely loses its
// replicas — exactly the failure model a real fleet has.
type replicaStore struct {
	mu   sync.Mutex
	logs map[string][]ReplicaEntry
}

// ReplicaAppend stores one encoded journal entry for extID, inserted
// by sequence number (concurrent ingests can replicate out of order;
// failover replays the log front to back, so it must be sorted), and
// trims the log so it stays bounded: chunk entries retire at or below
// the ack watermark, result entries are capped at the catch-up ring
// size (they exist to re-seed the resumed journal's ring and seq
// counter, so they outlive their chunk's ack).
func (s *Server) ReplicaAppend(extID string, seq uint64, kind uint8, data []byte, ackSeq uint64) {
	rs := &s.replicas
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.logs == nil {
		rs.logs = map[string][]ReplicaEntry{}
	}
	log := rs.logs[extID]
	results := 0
	if kind == JournalResult {
		results++
	}
	keep := log[:0]
	for _, e := range log {
		if e.Kind == JournalChunk && e.Seq <= ackSeq {
			continue
		}
		if e.Kind == JournalResult {
			results++
		}
		keep = append(keep, e)
	}
	log = keep
	for results > journalResultCap {
		// Shed the oldest retained result; the log is sorted, so the
		// first result entry is the oldest.
		for i, e := range log {
			if e.Kind == JournalResult {
				log = append(log[:i], log[i+1:]...)
				break
			}
		}
		results--
	}
	// Sorted insert; appends land at the tail in the common in-order
	// case.
	at := len(log)
	for at > 0 && log[at-1].Seq > seq {
		at--
	}
	log = append(log, ReplicaEntry{})
	copy(log[at+1:], log[at:])
	log[at] = ReplicaEntry{Seq: seq, Kind: kind, Data: data}
	rs.logs[extID] = log
}

// ReplicaTake removes and returns extID's replica log in sequence
// order — the failover replay input.
func (s *Server) ReplicaTake(extID string) []ReplicaEntry {
	rs := &s.replicas
	rs.mu.Lock()
	defer rs.mu.Unlock()
	log := rs.logs[extID]
	delete(rs.logs, extID)
	return log
}

// ReplicaDrop discards extID's replica log (session closed).
func (s *Server) ReplicaDrop(extID string) {
	rs := &s.replicas
	rs.mu.Lock()
	delete(rs.logs, extID)
	rs.mu.Unlock()
}

// ReplicaStats reports how many sessions and entries the node holds
// replicas for.
func (s *Server) ReplicaStats() (sessions, entries int) {
	rs := &s.replicas
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, log := range rs.logs {
		sessions++
		entries += len(log)
	}
	return
}
