package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"evedge/internal/events"
)

// Client talks to an evserve instance. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:7733"). A nil http.Client uses a 30 s timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do issues one request and decodes the JSON response into out,
// surfacing the server's error payload on non-2xx statuses.
func (c *Client) do(method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession opens a session and returns its initial snapshot.
func (c *Client) CreateSession(cfg SessionConfig) (*SessionSnapshot, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var snap SessionSnapshot
	if err := c.do(http.MethodPost, "/v1/sessions", "application/json", bytes.NewReader(b), &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// SendEvents streams one chunk in the EVAR binary wire format.
func (c *Client) SendEvents(id string, chunk *events.Stream) (*IngestResult, error) {
	var buf bytes.Buffer
	if err := events.WriteBinary(&buf, chunk); err != nil {
		return nil, err
	}
	var res IngestResult
	if err := c.do(http.MethodPost, "/v1/sessions/"+id+"/events", "application/octet-stream", &buf, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SendEventsJSON streams one chunk in the JSON wire format.
func (c *Client) SendEventsJSON(id string, chunk *events.Stream) (*IngestResult, error) {
	b, err := json.Marshal(ChunkFromStream(chunk))
	if err != nil {
		return nil, err
	}
	var res IngestResult
	if err := c.do(http.MethodPost, "/v1/sessions/"+id+"/events", "application/json", bytes.NewReader(b), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Session fetches a session snapshot.
func (c *Client) Session(id string) (*SessionSnapshot, error) {
	var snap SessionSnapshot
	if err := c.do(http.MethodGet, "/v1/sessions/"+id, "", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Sessions lists all sessions.
func (c *Client) Sessions() ([]SessionSnapshot, error) {
	var snaps []SessionSnapshot
	if err := c.do(http.MethodGet, "/v1/sessions", "", nil, &snaps); err != nil {
		return nil, err
	}
	return snaps, nil
}

// CloseSession closes a session and returns its final snapshot.
func (c *Client) CloseSession(id string) (*SessionSnapshot, error) {
	var snap SessionSnapshot
	if err := c.do(http.MethodPost, "/v1/sessions/"+id+"/close", "", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// StreamResults subscribes to the session's server-push result stream
// (SSE on /v1/sessions/{id}/stream), invoking fn for every result
// event in journal sequence order. since is the last sequence number
// the caller has seen (0 from the beginning): the server first replays
// retained results after that watermark, then tails live — so a
// dropped connection resumes gaplessly by passing the last delivered
// Seq back in.
//
// The call blocks until the session closes (nil), the context is
// canceled (ctx.Err()), fn returns an error (that error), or the
// connection breaks. Use a context or an http.Client without a Timeout
// for long-lived streams — the default 30 s client deadline applies to
// the whole response.
func (c *Client) StreamResults(ctx context.Context, id string, since uint64, fn func(ResultEvent) error) error {
	url := fmt.Sprintf("%s/v1/sessions/%s/stream?since=%d", c.base, id, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: GET %s: %s (HTTP %d)", url, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: GET %s: HTTP %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var data string
	closing := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: close"):
			closing = true
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			// Blank line terminates one SSE event.
			if closing {
				return nil
			}
			if data != "" {
				var ev ResultEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return fmt.Errorf("serve: decoding stream event: %w", err)
				}
				data = ""
				if err := fn(ev); err != nil {
					return err
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return sc.Err()
}

// Health fetches /healthz.
func (c *Client) Health() (*Health, error) {
	var h Health
	if err := c.do(http.MethodGet, "/healthz", "", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(b), nil
}
