package serve

import (
	"fmt"
	"strings"
	"testing"

	"evedge/internal/obs"
)

// TestPromLabelsEscaping: label values must escape backslash, quote
// and newline exactly per the Prometheus text exposition format —
// nothing more (Go's %q would mangle other non-printables into syntax
// Prometheus rejects).
func TestPromLabelsEscaping(t *testing.T) {
	cases := []struct {
		name  string
		kv    []string
		want  string
		avoid string
	}{
		{"plain", []string{"session", "s1"}, `session="s1"`, ""},
		{"quote", []string{"id", `a"b`}, `id="a\"b"`, ""},
		{"backslash", []string{"id", `a\b`}, `id="a\\b"`, ""},
		{"newline", []string{"id", "a\nb"}, `id="a\nb"`, "\n"},
		{"combined", []string{"id", "\\\"\n"}, `id="\\\"\n"`, "\n"},
		{"tab passes through", []string{"id", "a\tb"}, "id=\"a\tb\"", `\t`},
		{"multi pair", []string{"a", "1", "b", `2"`}, `a="1",b="2\""`, ""},
		{"odd pair dropped", []string{"a", "1", "dangling"}, `a="1"`, ""},
		{"empty", nil, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PromLabels(tc.kv...)
			if got != tc.want {
				t.Errorf("PromLabels(%q) = %q, want %q", tc.kv, got, tc.want)
			}
			if tc.avoid != "" && strings.Contains(got, tc.avoid) {
				t.Errorf("PromLabels(%q) = %q contains forbidden %q", tc.kv, got, tc.avoid)
			}
		})
	}
}

// TestPromLabelsCannotBreakExposition: a hostile value injecting a
// closing quote plus a fake sample must stay inside one label value.
func TestPromLabelsCannotBreakExposition(t *testing.T) {
	evil := "x\"} 1\nevil_metric{a=\""
	pw := NewPromWriter()
	pw.Gauge("m", "help.", PromLabels("session", evil), 1)
	out := pw.String()
	if strings.Contains(out, "\nevil_metric") {
		t.Fatalf("label injection broke the exposition:\n%s", out)
	}
	// Exactly one sample line beyond the two header lines.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 2 {
		t.Fatalf("expected HELP+TYPE+1 sample, got:\n%s", out)
	}
}

// TestPromWriterHistogram checks the cumulative-bucket rendering.
func TestPromWriterHistogram(t *testing.T) {
	pw := NewPromWriter()
	bounds := []float64{100, 1000}
	counts := []uint64{2, 1, 1} // 2 <=100, 1 <=1000, 1 +Inf
	pw.Histogram("stage_us", "Stage latency.", `stage="queue"`, bounds, counts, 1234.5, 4)
	out := pw.String()
	for _, w := range []string{
		"# TYPE stage_us histogram",
		`stage_us_bucket{stage="queue",le="100"} 2`,
		`stage_us_bucket{stage="queue",le="1000"} 3`,
		`stage_us_bucket{stage="queue",le="+Inf"} 4`,
		`stage_us_sum{stage="queue"} 1234.5`,
		`stage_us_count{stage="queue"} 4`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("histogram output missing %q:\n%s", w, out)
		}
	}
	// A second labelled series must not repeat the HELP/TYPE header.
	pw.Histogram("stage_us", "Stage latency.", `stage="exec"`, bounds, counts, 1, 4)
	if strings.Count(pw.String(), "# TYPE stage_us") != 1 {
		t.Errorf("HELP/TYPE emitted more than once:\n%s", pw.String())
	}

	// Unlabelled histograms render bare sum/count names.
	pw2 := NewPromWriter()
	pw2.Histogram("h", "h.", "", bounds, counts, 2, 4)
	if !strings.Contains(pw2.String(), "\nh_sum 2\n") || !strings.Contains(pw2.String(), "\nh_count 4\n") {
		t.Errorf("unlabelled histogram malformed:\n%s", pw2.String())
	}
	if !strings.Contains(pw2.String(), `h_bucket{le="+Inf"} 4`) {
		t.Errorf("unlabelled +Inf bucket malformed:\n%s", pw2.String())
	}

	// The obs bucket bounds drive the real stage histograms: counts is
	// one longer than bounds by construction.
	if len(obs.BucketBoundsUS)+1 != len(obs.NewTracer(obs.Config{Enabled: true}).Hists()[0].Counts) {
		t.Fatal("obs bucket bounds and hist counts misaligned")
	}
}

// TestLatencyRecorderEmpty: quantiles of an empty recorder are zero,
// not a panic or NaN.
func TestLatencyRecorderEmpty(t *testing.T) {
	r := newLatencyRecorder()
	s := r.snapshot()
	if s.Count != 0 || s.MeanUS != 0 || s.P50US != 0 || s.P99US != 0 || s.MaxUS != 0 {
		t.Fatalf("empty recorder snapshot = %+v, want all zero", s)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile(nil) = %g, want 0", got)
	}
}

// TestLatencyRecorderExactWindow fills exactly latencyWindow samples:
// the window holds them all and quantiles read the full population.
func TestLatencyRecorderExactWindow(t *testing.T) {
	r := newLatencyRecorder()
	for i := 1; i <= latencyWindow; i++ {
		r.observe(float64(i))
	}
	s := r.snapshot()
	if s.Count != latencyWindow {
		t.Fatalf("count = %d, want %d", s.Count, latencyWindow)
	}
	if want := float64(latencyWindow+1) / 2; s.MeanUS != want {
		t.Fatalf("mean = %g, want %g", s.MeanUS, want)
	}
	if s.MaxUS != latencyWindow {
		t.Fatalf("max = %g, want %d", s.MaxUS, latencyWindow)
	}
	// quantile(sorted, q) indexes int(q*n): p50 of 1..4096 is the
	// 2048th index = 2049, p99 is index 4055 = 4056.
	n := float64(len(r.ring))
	if want := float64(int(0.5*n) + 1); s.P50US != want {
		t.Fatalf("p50 = %g, want %g", s.P50US, want)
	}
	if want := float64(int(0.99*n) + 1); s.P99US != want {
		t.Fatalf("p99 = %g, want %g", s.P99US, want)
	}
}

// TestLatencyRecorderWraparound pushes one sample past the window: the
// oldest falls out of the quantile window while lifetime count/sum/max
// keep counting.
func TestLatencyRecorderWraparound(t *testing.T) {
	r := newLatencyRecorder()
	for i := 1; i <= latencyWindow; i++ {
		r.observe(float64(i))
	}
	r.observe(float64(latencyWindow + 1)) // overwrites sample "1"
	s := r.snapshot()
	if s.Count != latencyWindow+1 {
		t.Fatalf("lifetime count = %d, want %d", s.Count, latencyWindow+1)
	}
	if s.MaxUS != latencyWindow+1 {
		t.Fatalf("max = %g, want %d", s.MaxUS, latencyWindow+1)
	}
	if len(r.ring) != latencyWindow {
		t.Fatalf("ring grew to %d, want %d", len(r.ring), latencyWindow)
	}
	// The window is now 2..4097: its minimum proves "1" was evicted.
	min := r.ring[0]
	for _, v := range r.ring {
		if v < min {
			min = v
		}
	}
	if min != 2 {
		t.Fatalf("window min = %g, want 2 (oldest sample must be evicted)", min)
	}
	// Quantiles shift with the window: p50 of 2..4097 is one above the
	// exact-window case.
	if want := float64(int(0.5*float64(len(r.ring))) + 2); s.P50US != want {
		t.Fatalf("p50 after wraparound = %g, want %g", s.P50US, want)
	}

	// Many windows later the lifetime stats still cover everything.
	for i := latencyWindow + 2; i <= 3*latencyWindow; i++ {
		r.observe(float64(i))
	}
	s = r.snapshot()
	if s.Count != 3*latencyWindow {
		t.Fatalf("lifetime count = %d, want %d", s.Count, 3*latencyWindow)
	}
	if want := float64(3*latencyWindow+1) / 2; s.MeanUS != want {
		t.Fatalf("lifetime mean = %g, want %g", s.MeanUS, want)
	}
}

func TestQuantileBounds(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := quantile(sorted, 1.0); got != 40 {
		t.Fatalf("q=1 clamps to last sample, got %g", got)
	}
	if got := quantile(sorted, 0); got != 10 {
		t.Fatalf("q=0 reads first sample, got %g", got)
	}
}

func ExamplePromLabels() {
	fmt.Println(PromLabels("session", "s1", "network", "DOTIE"))
	// Output: session="s1",network="DOTIE"
}
