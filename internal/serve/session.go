// Package serve is the multi-tenant streaming inference layer over the
// Ev-Edge pipeline: an HTTP server that accepts AER event streams into
// per-client sessions, converts them incrementally through E2SF,
// buffers them in bounded ingest queues with explicit load shedding,
// and multiplexes all sessions onto one shared heterogeneous platform
// through a worker pool and the Network Mapper's assignment (with
// round-robin fallback). It turns the paper's one-shot offline
// experiments into a long-lived serving path: how many event cameras
// can one Xavier sustain, and at what tail latency.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evedge/internal/control"
	"evedge/internal/e2sf"
	"evedge/internal/events"
	"evedge/internal/mem"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/pipeline"
	"evedge/internal/sparse"
)

// SessionConfig is the client-supplied session creation request.
type SessionConfig struct {
	// Network is the zoo network the session runs (see nn.AllNames).
	Network string `json:"network"`
	// Level is the cumulative optimization level 0-3.
	Level int `json:"level"`
	// QueueCap bounds the ingest queue in frames (0 = server default).
	QueueCap int `json:"queue_cap,omitempty"`
	// DropPolicy is "drop-oldest" (default, DSFA backlog semantics) or
	// "drop-newest".
	DropPolicy string `json:"drop_policy,omitempty"`
}

// IngestResult tells the client what one event chunk became.
type IngestResult struct {
	Events   int `json:"events"`
	Frames   int `json:"frames"`
	Dropped  int `json:"dropped"`
	QueueLen int `json:"queue_len"`
}

// SessionSnapshot is the observable state of a session.
type SessionSnapshot struct {
	ID string `json:"id"`
	// Node names the fleet node serving the session; the cluster router
	// sets it when proxying, a standalone server leaves it empty. The
	// two failover fields below are cluster-set too: how many times the
	// session was re-created on a new node, and how many queued frames
	// those moves shed (per-session counters restart on each move).
	Node               string    `json:"node,omitempty"`
	Failovers          int       `json:"failovers,omitempty"`
	FailoverShedFrames uint64    `json:"failover_shed_frames,omitempty"`
	Network            string    `json:"network"`
	Task               string    `json:"task"`
	Level              string    `json:"level"`
	State              string    `json:"state"`
	CreatedAt          time.Time `json:"created_at"`
	EventsIn           uint64    `json:"events_in"`
	FramesIn           uint64    `json:"frames_in"`
	FramesDropped      uint64    `json:"frames_dropped"`
	// FramesDroppedDSFA counts raw frames the aggregator's bounded
	// inference queue shed, on top of the ingest-queue drops above.
	FramesDroppedDSFA uint64 `json:"frames_dropped_dsfa"`
	// AggPending counts raw frames buffered inside the DSFA aggregator
	// (open buckets plus the merged queue) — with QueueLen, the
	// session's whole in-flight residual, so harnesses can check frame
	// conservation: FramesIn == RawFramesDone + FramesDropped +
	// FramesDroppedDSFA + QueueLen + AggPending at any quiescent point.
	AggPending    int            `json:"agg_pending,omitempty"`
	QueueLen      int            `json:"queue_len"`
	QueueCap      int            `json:"queue_cap"`
	DropPolicy    string         `json:"drop_policy"`
	Invocations   uint64         `json:"invocations"`
	BatchedUnits  uint64         `json:"batched_units"`
	RawFramesDone uint64         `json:"raw_frames_done"`
	MergeRatio    float64        `json:"merge_ratio"`
	StreamTimeUS  int64          `json:"stream_time_us"`
	ThroughputFPS float64        `json:"throughput_fps"`
	Latency       LatencySummary `json:"latency"`
	Devices       []string       `json:"devices"`
	// Retunes counts DSFA tuning changes the online controller applied
	// to this session; Remaps counts execution plans installed after
	// the first (placement rebalances plus adaptive NMP remaps).
	Retunes uint64 `json:"retunes,omitempty"`
	Remaps  uint64 `json:"remaps,omitempty"`
	// Migrations counts cluster-initiated moves to another node (set by
	// the fleet router, like Node and the failover fields).
	Migrations int `json:"migrations,omitempty"`
}

// Session is one client's stream bound to a network and an
// optimization level. The HTTP ingest path converts event chunks to
// sparse frames and pushes them into the bounded queue; workers drain
// the queue through the pipeline Stepper onto the shared engine.
type Session struct {
	ID    string
	Net   *nn.Network
	Level pipeline.Level

	queue *frameQueue
	lat   *latencyRecorder

	// scheduled marks the session as sitting in the worker run queue,
	// so concurrent ingests enqueue it at most once.
	scheduled atomic.Bool

	// plan is the swappable execution plan: rebalances and online
	// remaps install new mappings between invocations without touching
	// queued frames.
	plan *pipeline.PlanSlot

	// tracer is the owning server's frame-lifecycle tracer; nil when
	// tracing is off (set once at creation, before the first ingest).
	tracer *obs.Tracer
	// track is the session's trace lane name ("sess/"+ID), cached so
	// the per-frame hot paths never concatenate strings; trackH is the
	// lane's cached ring handle, so they never pay a map lookup either
	// (nil when tracing is off — the no-op handle).
	track  string
	trackH *obs.Track

	mu       sync.Mutex
	conv     *ingestConverter
	stepper  *pipeline.Stepper
	retuner  *control.Retuner // nil when adaptation is off or below LevelDSFA
	usedDevs map[int]bool     // devices invocations actually ran on
	// sigPlan/planSig cache the coalescing signature of the installed
	// plan so the submit hot path does not re-format the per-layer
	// slices on every invocation; a plan swap installs a new pointer,
	// invalidating the cache. Guarded by mu.
	sigPlan *pipeline.ExecPlan
	planSig string
	created time.Time
	closed  bool
	// tallied marks the final counters as folded into the server's
	// closed-session totals; an execute that finishes afterwards (a
	// worker holding frames drained before the close) contributes its
	// deltas to the totals directly so nothing is lost.
	tallied  bool
	eventsIn uint64
	framesIn uint64
	invocs   uint64
	batched  uint64
	rawDone  uint64
	// denSum/denN accumulate ingested-frame density for the controller's
	// scene-dynamics signal.
	denSum float64
	denN   int
	// epochUS maps session stream time onto the shared engine's
	// monotonic virtual time: a session created on a long-lived server
	// starts at the engine's current horizon, not at virtual zero
	// (which would queue its frames behind all history).
	epochUS float64
	// clockUS is the session's virtual hardware-available time: the
	// later of the last invocation's completion and the stream
	// watermark. DSFA staleness and dispatch decisions use it the same
	// way the offline executor uses its loop clock.
	clockUS float64
	// lastDSFADrops is the aggregator drop count already emitted as
	// trace instants, so each execute pass marks only the delta.
	lastDSFADrops uint64
}

// newSession builds a session. The arena and invocation pool wire the
// zero-allocation frame path: E2SF emits pooled frames, the stepper
// recycles invocation structs, and the ingest queue returns shed
// frames to the arena instead of leaking them to GC. Both may be nil
// (tests exercising unpooled behavior).
func newSession(id string, net *nn.Network, level pipeline.Level, queueCap int, policy DropPolicy, plan *pipeline.ExecPlan, retuner *control.Retuner, arena *mem.Arena, invPool *mem.Pool[pipeline.Invocation]) (*Session, error) {
	stepper, err := pipeline.NewStepper(level, pipeline.TunedDSFA(net))
	if err != nil {
		return nil, err
	}
	s := &Session{
		ID:       id,
		track:    "sess/" + id,
		Net:      net,
		Level:    level,
		queue:    newFrameQueue(queueCap, policy),
		lat:      newLatencyRecorder(),
		conv:     &ingestConverter{spec: net.Input},
		stepper:  stepper,
		retuner:  retuner,
		plan:     pipeline.NewPlanSlot(plan),
		usedDevs: map[int]bool{},
		created:  time.Now(),
	}
	if arena != nil {
		s.conv.pool = arena.Frames
		s.queue.recycle = arena.Frames.Put
		s.stepper.SetPools(invPool, arena.Frames)
	}
	return s, nil
}

// sampleLocked builds the controller's telemetry snapshot; callers
// hold s.mu.
func (s *Session) sampleLocked() control.SessionSample {
	_, qDropped := s.queue.stats()
	return control.SessionSample{
		StreamUS:      int64(s.clockUS),
		FramesIn:      s.framesIn,
		FramesDropped: qDropped + uint64(s.stepper.Stats().DroppedFrames),
		QueueLen:      s.queue.len(),
		QueueCap:      s.queue.cap,
		AggPending:    s.stepper.Pending(),
		AggQueued:     s.stepper.Queued(),
		DensitySum:    s.denSum,
		DensityN:      s.denN,
	}
}

// ingest converts one event chunk into frames and queues them,
// shedding per the drop policy. The chunk's events must be sorted and
// must not precede what the session has already consumed.
func (s *Session) ingest(chunk *events.Stream) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res IngestResult
	if s.closed {
		return res, fmt.Errorf("serve: session %s is closed", s.ID)
	}
	frames, err := s.conv.ingest(chunk)
	if err != nil {
		return res, err
	}
	if s.tracer != nil && len(frames) > 0 {
		// One ingest span per chunk that produced frames: the E2SF
		// conversion window, from the first emitted frame's start to the
		// chunk's watermark (stream time shifted into engine time).
		s.trackH.Span(obs.StageIngest, "ingest",
			float64(frames[0].T0)+s.epochUS, float64(chunk.TEnd())+s.epochUS, int64(len(frames)))
	}
	s.eventsIn += uint64(chunk.Len())
	s.framesIn += uint64(len(frames))
	for _, f := range frames {
		s.denSum += f.Density()
		s.denN++
	}
	if s.Level == pipeline.LevelBaseline && s.plan.FramingOps() == 0 && len(frames) > 0 {
		// Dense event-frame construction: full tensor stores per frame.
		s.plan.SetFramingOps(int64(2 * frames[0].H * frames[0].W))
	}
	if wm := chunk.TEnd(); float64(wm) > s.clockUS {
		s.clockUS = float64(wm)
	}
	res.Events = chunk.Len()
	res.Frames = len(frames)
	for _, f := range frames {
		res.Dropped += s.queue.push(f)
	}
	if s.tracer != nil && res.Dropped > 0 {
		// Ingest-queue shedding mark, carrying the shed count.
		s.trackH.Instant(obs.StageQueue, "shed",
			float64(chunk.TEnd())+s.epochUS, int64(res.Dropped))
	}
	res.QueueLen = s.queue.len()
	return res, nil
}

// snapshot captures the session's observable state.
func (s *Session) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is snapshot for callers already holding s.mu.
func (s *Session) snapshotLocked() SessionSnapshot {
	snap := SessionSnapshot{
		ID:            s.ID,
		Network:       s.Net.Name,
		Task:          s.Net.Task.String(),
		Level:         s.Level.String(),
		State:         "active",
		CreatedAt:     s.created,
		EventsIn:      s.eventsIn,
		FramesIn:      s.framesIn,
		QueueLen:      s.queue.len(),
		QueueCap:      s.queue.cap,
		DropPolicy:    s.queue.policy.String(),
		Invocations:   s.invocs,
		BatchedUnits:  s.batched,
		RawFramesDone: s.rawDone,
		StreamTimeUS:  s.conv.span(),
		Latency:       s.lat.snapshot(),
	}
	if s.closed {
		snap.State = "closed"
	}
	_, snap.FramesDropped = s.queue.stats()
	snap.FramesDroppedDSFA = uint64(s.stepper.Stats().DroppedFrames)
	snap.AggPending = s.stepper.Pending()
	snap.Remaps = s.plan.Swaps()
	if s.retuner != nil {
		snap.Retunes = s.retuner.Retunes()
	}
	if s.invocs > 0 {
		snap.MergeRatio = float64(s.rawDone) / float64(s.invocs)
	}
	if span := s.conv.span(); span > 0 {
		snap.ThroughputFPS = float64(s.rawDone) / (float64(span) * 1e-6)
	}
	snap.Devices = s.planDevicesLocked()
	return snap
}

// planDevicesLocked lists the distinct device IDs the session executed
// on (or, before the first invocation, the ones its plan would use).
func (s *Session) planDevicesLocked() []string {
	seen := s.usedDevs
	if len(seen) == 0 {
		seen = map[int]bool{}
		for _, d := range s.plan.Load().Device {
			seen[d] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for d := range seen {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	out := make([]string, len(ids))
	for i, d := range ids {
		out[i] = fmt.Sprintf("dev%d", d)
	}
	return out
}

// ingestConverter is the incremental Event2Sparse Frame state of one
// session: buffered not-yet-framed events plus the framing cursor.
// Time framing emits one grouped frame set per completed accumulation
// window; count framing emits a frame every N events, with N
// calibrated once from the first chunk's event rate (as a deployment
// tunes it on representative data). Conversion runs through the fused
// one-pass kernel (e2sf.Fused): each buffered chunk is traversed once,
// emitted frames come from the arena's frame pool, and the emit slice
// is reused across ingests — the steady-state ingest path allocates
// nothing.
type ingestConverter struct {
	spec      nn.InputSpec
	pool      *mem.FramePool // nil: frames are freshly allocated
	fz        *e2sf.Fused
	buf       *events.Stream
	run       events.Stream   // reusable window view (count framing)
	frames    []*sparse.Frame // per-ingest emit scratch, reused
	anchored  bool            // startTS/winStart initialized from the first events
	startTS   int64           // first timestamp seen (stream epoch)
	watermark int64           // latest timestamp consumed
	winStart  int64           // next window start (time framing)
	frStart   int64           // next frame start (count framing)
	count     int             // events per frame (count framing), 0 = uncalibrated
}

// span is the stream time the session has covered so far.
func (c *ingestConverter) span() int64 { return c.watermark - c.startTS }

func (c *ingestConverter) ingest(chunk *events.Stream) ([]*sparse.Frame, error) {
	if chunk.Width <= 0 || chunk.Height <= 0 {
		return nil, fmt.Errorf("serve: chunk has no sensor geometry")
	}
	if !chunk.Sorted() {
		return nil, fmt.Errorf("serve: chunk events are not time-sorted")
	}
	if c.fz == nil {
		fz, err := e2sf.NewFused(e2sf.Config{
			Width: chunk.Width, Height: chunk.Height, NumBins: c.spec.NumBins,
		}, c.pool)
		if err != nil {
			return nil, err
		}
		c.fz = fz
		c.buf = events.NewStream(chunk.Width, chunk.Height)
	}
	if chunk.Width != c.buf.Width || chunk.Height != c.buf.Height {
		return nil, fmt.Errorf("serve: chunk geometry %dx%d != session %dx%d",
			chunk.Width, chunk.Height, c.buf.Width, c.buf.Height)
	}
	if chunk.Len() > 0 && chunk.TStart() < c.watermark {
		return nil, fmt.Errorf("serve: chunk starts at %dus, before session watermark %dus",
			chunk.TStart(), c.watermark)
	}
	c.buf.Events = append(c.buf.Events, chunk.Events...)
	if chunk.Len() > 0 {
		if !c.anchored {
			c.anchored = true
			// First events: anchor windowing at the stream's own epoch
			// (aligned down to a window boundary) — client timestamps
			// need not start near zero, and walking windows up from 0
			// would loop per-window all the way to the first timestamp.
			c.startTS = chunk.TStart()
			if c.spec.WindowUS > 0 {
				c.winStart = c.startTS - c.startTS%c.spec.WindowUS
			}
		}
		c.watermark = chunk.TEnd()
	}
	if c.spec.Framing == nn.FrameByCount {
		return c.convertByCount(false)
	}
	return c.convertWindows()
}

// convertWindows frames every accumulation window fully covered by the
// watermark, exactly as the offline ConvertStream does. The fused
// kernel replaces the Convert→GroupBins pair with one pass over the
// window's events; the returned slice is converter-owned scratch,
// valid until the next ingest.
func (c *ingestConverter) convertWindows() ([]*sparse.Frame, error) {
	out := c.frames[:0]
	var err error
	for c.winStart+c.spec.WindowUS <= c.watermark {
		t1 := c.winStart + c.spec.WindowUS
		out, _, err = c.fz.ConvertGroupedAppend(out, c.buf, c.winStart, t1, c.spec.GroupK)
		if err != nil {
			return nil, err
		}
		c.winStart = t1
	}
	c.trim(c.winStart)
	c.frames = out
	return out, nil
}

// convertByCount frames every complete run of `count` buffered events;
// when flush is true the trailing partial frame is emitted too.
func (c *ingestConverter) convertByCount(flush bool) ([]*sparse.Frame, error) {
	if c.count == 0 {
		// Calibrate the event count per frame from the observed rate so
		// the mean framing period matches the spec's target. Wait for at
		// least one framing period of data first — a tiny or
		// zero-duration first chunk would lock in a wildly wrong count
		// for the session's whole lifetime.
		if !flush && (c.buf.Duration() < c.spec.FramePeriodUS || c.buf.Len() < 2) {
			return nil, nil
		}
		d := c.buf.Duration()
		if d > 0 {
			rate := float64(c.buf.Len()) / float64(d)
			c.count = int(rate * float64(c.spec.FramePeriodUS))
		} else {
			// Flushing a degenerate buffer: one frame takes everything.
			c.count = c.buf.Len()
		}
		if c.count < 1 {
			c.count = 1
		}
		c.frStart = c.buf.TStart()
	}
	out := c.frames[:0]
	emit := func(run *events.Stream) error {
		// Convert over the run's own span (duplicate timestamps at the
		// previous frame's boundary must not be sliced away), then chain
		// T0 to the previous frame's end.
		t1 := run.TEnd() + 1
		frames, _, err := c.fz.ConvertByCountAppend(out, run, run.TStart(), t1, run.Len())
		if err != nil {
			return err
		}
		for _, f := range frames[len(out):] {
			f.T0 = c.frStart
			c.frStart = f.T1
		}
		out = frames
		return nil
	}
	// Consume complete runs through a cursor and compact the tail back
	// to the front afterwards, so the buffer's backing array reaches a
	// steady capacity instead of leaking it to forward reslices.
	start := 0
	for c.buf.Len()-start >= c.count {
		c.run.Width, c.run.Height = c.buf.Width, c.buf.Height
		c.run.Events = c.buf.Events[start : start+c.count]
		if err := emit(&c.run); err != nil {
			return nil, err
		}
		start += c.count
	}
	if start > 0 {
		n := copy(c.buf.Events, c.buf.Events[start:])
		c.buf.Events = c.buf.Events[:n]
	}
	if flush && c.buf.Len() > 0 {
		if err := emit(c.buf); err != nil {
			return nil, err
		}
		c.buf.Events = c.buf.Events[:0]
	}
	c.frames = out
	return out, nil
}

// flush frames whatever a session close leaves buffered: count framing
// emits the trailing partial frame; time framing drops the incomplete
// window, matching the offline converter.
func (c *ingestConverter) flush() ([]*sparse.Frame, error) {
	if c.fz == nil {
		return nil, nil
	}
	if c.spec.Framing == nn.FrameByCount {
		return c.convertByCount(true)
	}
	return nil, nil
}

// trim discards consumed events (timestamps before t).
func (c *ingestConverter) trim(t int64) {
	keep := c.buf.Window(t, int64(1)<<62)
	n := copy(c.buf.Events, keep)
	c.buf.Events = c.buf.Events[:n]
}
