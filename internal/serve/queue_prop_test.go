package serve

import (
	"math/rand"
	"sync"
	"testing"

	"evedge/internal/sparse"
)

// TestFrameQueueProperty hammers the bounded ingest queue with
// randomized concurrent pushers and a concurrent drainer under both
// drop policies, then checks the queue's contracts:
//
//   - capacity is never exceeded (observed at every drain and at the
//     end);
//   - accounting conserves: pushed == dropped + drained + remaining;
//   - no frame is duplicated or invented: every frame that comes out
//     went in exactly once (frames carry unique T0 stamps).
func TestFrameQueueProperty(t *testing.T) {
	for _, policy := range []DropPolicy{DropOldest, DropNewest} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			const (
				pushers   = 4
				perPusher = 500
				capacity  = 17
			)
			rng := rand.New(rand.NewSource(42))
			seeds := make([]int64, pushers)
			for i := range seeds {
				seeds[i] = rng.Int63()
			}
			q := newFrameQueue(capacity, policy)

			var pushWG sync.WaitGroup
			for p := 0; p < pushers; p++ {
				pushWG.Add(1)
				go func(p int) {
					defer pushWG.Done()
					prng := rand.New(rand.NewSource(seeds[p]))
					for i := 0; i < perPusher; i++ {
						// Unique T0 identifies the frame across its lifetime.
						id := int64(p*perPusher + i)
						q.push(sparse.NewFrame(2, 2, id, id+1))
						if prng.Intn(8) == 0 {
							// Yield occasionally to vary the interleaving.
							for s := prng.Intn(64); s > 0; s-- {
								_ = s
							}
						}
					}
				}(p)
			}

			drained := make(map[int64]int) // T0 -> times seen out
			overCap := 0
			var drainWG sync.WaitGroup
			stop := make(chan struct{})
			drainWG.Add(1)
			go func() {
				defer drainWG.Done()
				drng := rand.New(rand.NewSource(7))
				for {
					out := q.drain(drng.Intn(5)) // 0 = drain all
					if len(out) > capacity {
						overCap++
					}
					for _, f := range out {
						drained[f.T0]++
					}
					select {
					case <-stop:
						if q.len() == 0 {
							return
						}
					default:
					}
				}
			}()
			pushWG.Wait()
			close(stop)
			drainWG.Wait()

			pushed, dropped := q.stats()
			if pushed != uint64(pushers*perPusher) {
				t.Fatalf("pushed = %d, want %d", pushed, pushers*perPusher)
			}
			if n := q.len(); n > capacity {
				t.Errorf("queue holds %d frames, capacity %d", n, capacity)
			}
			if overCap > 0 {
				t.Errorf("drainer observed over-capacity batches %d times", overCap)
			}
			var outN uint64
			for t0, n := range drained {
				if n != 1 {
					t.Errorf("frame T0=%d drained %d times", t0, n)
				}
				outN += uint64(n)
			}
			// The drainer exits only on an empty queue after the last
			// push, so nothing remains and every frame either drained
			// exactly once or was dropped.
			if rest := q.drain(0); len(rest) != 0 {
				t.Errorf("queue still holds %d frames after the drainer finished", len(rest))
			}
			if outN+dropped != pushed {
				t.Errorf("conservation: drained %d + dropped %d != pushed %d", outN, dropped, pushed)
			}
		})
	}
}
