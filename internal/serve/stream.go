package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Server-push result delivery: GET /v1/sessions/{id}/stream emits one
// SSE event per completed inference batch, in journal sequence order.
// A reconnecting client passes ?since=<seq> (the last sequence number
// it saw) and the handler first replays every retained result after
// that watermark from the journal's catch-up ring, then switches to
// live tailing — so a dropped connection resumes gaplessly as long as
// the client reconnects within the ring's retention window.

// ErrJournalDisabled reports a stream request against a session whose
// server runs without the journal (Config.Journal == false).
var ErrJournalDisabled = errors.New("serve: journaling disabled")

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.ServeStream(w, r, r.PathValue("id"))
}

// ServeStream streams session id's results over SSE until the session
// closes, the server stops, or the client goes away. It is exported so
// the cluster router can proxy streams to the owning node using the
// node-local session ID.
func (s *Server) ServeStream(w http.ResponseWriter, r *http.Request, id string) {
	sess, ok := s.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no session %q", id))
		return
	}
	j := sess.journal
	if j == nil {
		writeError(w, http.StatusConflict, ErrJournalDisabled)
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad since %q: %w", v, err))
			return
		}
		since = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := since
	var buf []ResultEvent
	for {
		// Grab the wake channel before reading so an append between
		// the read and the select still wakes this subscriber.
		wake := j.wait()
		buf = j.resultsSince(cursor, buf[:0])
		for _, ev := range buf {
			if err := writeSSEResult(w, ev); err != nil {
				return
			}
			cursor = ev.Seq
		}
		if len(buf) > 0 {
			fl.Flush()
		}
		if j.isClosed() {
			// Drain once more after the closed flag: close() broadcast
			// happens-after the final appendResult, so the read above
			// already saw every result.
			io.WriteString(w, "event: close\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.stopped:
			return
		}
	}
}

func writeSSEResult(w io.Writer, ev ResultEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data)
	return err
}
