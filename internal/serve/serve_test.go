package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/pipeline"
	"evedge/internal/scene"
	"evedge/internal/sparse"
)

// genStream renders a preset sequence at half scale.
func genStream(t *testing.T, p scene.Preset, seed, durUS int64) *events.Stream {
	t.Helper()
	seq, err := scene.NewSequence(p, scene.Half, seed)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	s, err := seq.Generate(durUS)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

// chunks splits a stream into consecutive chunkUS-long pieces.
func chunks(s *events.Stream, durUS, chunkUS int64) []*events.Stream {
	var out []*events.Stream
	for t0 := int64(0); t0 < durUS; t0 += chunkUS {
		out = append(out, s.Slice(t0, t0+chunkUS))
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	cl := NewClient(hs.URL, hs.Client())
	return srv, cl, func() {
		hs.Close()
		srv.Close()
	}
}

func TestFrameQueueDropOldest(t *testing.T) {
	q := newFrameQueue(2, DropOldest)
	f := func(id int64) *sparse.Frame { return sparse.NewFrame(4, 4, id, id+1) }
	if d := q.push(f(0)); d != 0 {
		t.Fatalf("push 0 dropped %d", d)
	}
	q.push(f(1))
	if d := q.push(f(2)); d != 1 {
		t.Fatalf("overflow push dropped %d, want 1", d)
	}
	got := q.drain(0)
	if len(got) != 2 || got[0].T0 != 1 || got[1].T0 != 2 {
		t.Fatalf("drop-oldest kept %v, want frames 1,2", []int64{got[0].T0, got[1].T0})
	}
	pushed, dropped := q.stats()
	if pushed != 3 || dropped != 1 {
		t.Fatalf("stats = %d pushed %d dropped, want 3/1", pushed, dropped)
	}
}

func TestFrameQueueDropNewest(t *testing.T) {
	q := newFrameQueue(2, DropNewest)
	f := func(id int64) *sparse.Frame { return sparse.NewFrame(4, 4, id, id+1) }
	q.push(f(0))
	q.push(f(1))
	if d := q.push(f(2)); d != 1 {
		t.Fatalf("overflow push dropped %d, want 1", d)
	}
	got := q.drain(0)
	if len(got) != 2 || got[0].T0 != 0 || got[1].T0 != 1 {
		t.Fatalf("drop-newest kept wrong frames")
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain")
	}
}

// TestFrameQueueConcurrent hammers one queue from concurrent pushers
// and drainers under both drop policies (run with -race): no frame may
// be both delivered and counted dropped, and none may vanish.
func TestFrameQueueConcurrent(t *testing.T) {
	for _, policy := range []DropPolicy{DropOldest, DropNewest} {
		t.Run(policy.String(), func(t *testing.T) {
			const (
				pushers   = 4
				perPusher = 500
			)
			q := newFrameQueue(8, policy)
			var wg sync.WaitGroup
			var drained atomic.Int64
			stopDrain := make(chan struct{})
			var drainWG sync.WaitGroup
			for d := 0; d < 2; d++ {
				drainWG.Add(1)
				go func() {
					defer drainWG.Done()
					for {
						n := len(q.drain(16))
						drained.Add(int64(n))
						if n == 0 {
							select {
							case <-stopDrain:
								return
							default:
							}
						}
					}
				}()
			}
			for p := 0; p < pushers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perPusher; i++ {
						q.push(sparse.NewFrame(4, 4, int64(p*perPusher+i), int64(p*perPusher+i)+1))
					}
				}(p)
			}
			wg.Wait()
			close(stopDrain)
			drainWG.Wait()
			drained.Add(int64(len(q.drain(0))))
			pushed, dropped := q.stats()
			if pushed != pushers*perPusher {
				t.Fatalf("pushed %d, want %d", pushed, pushers*perPusher)
			}
			if got := uint64(drained.Load()) + dropped; got != pushed {
				t.Fatalf("drained %d + dropped %d != pushed %d", drained.Load(), dropped, pushed)
			}
		})
	}
}

// TestParseDropPolicyErrors covers the parser's error and alias paths.
func TestParseDropPolicyErrors(t *testing.T) {
	for in, want := range map[string]DropPolicy{
		"": DropOldest, "oldest": DropOldest, "drop-oldest": DropOldest,
		"newest": DropNewest, "drop-newest": DropNewest,
	} {
		got, err := ParseDropPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseDropPolicy(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"drop", "latest", "DROP-OLDEST", "drop-oldest "} {
		if _, err := ParseDropPolicy(bad); err == nil {
			t.Fatalf("ParseDropPolicy(%q) accepted", bad)
		}
	}
	// A bad per-session policy is rejected at session create.
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	if _, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, DropPolicy: "sideways"}); err == nil {
		t.Fatal("bad session drop policy accepted")
	}
}

// TestMapperPolicyErrors covers server-config mapper parsing.
func TestMapperPolicyErrors(t *testing.T) {
	for _, bad := range []string{"evolutionary", "RR", "nm p"} {
		if _, err := New(Config{Mapper: MapperPolicy(bad)}); err == nil {
			t.Fatalf("New accepted mapper %q", bad)
		}
	}
	for _, good := range []MapperPolicy{"", MapperRR, MapperNMP} {
		srv, err := New(Config{Workers: 1, Mapper: good})
		if err != nil {
			t.Fatalf("New(%q): %v", good, err)
		}
		srv.Close()
	}
}

// TestIngestConverterMatchesOffline feeds a stream chunk-by-chunk and
// checks the incremental frames agree with the offline ConvertStream
// on every completed window (time framing).
func TestIngestConverterMatchesOffline(t *testing.T) {
	net := nn.MustByName(nn.DOTIE) // FrameByTime, 5 ms windows
	const dur = 200_000
	stream := genStream(t, net.Input.Preset, 3, dur)

	offline, _, err := pipeline.ConvertStream(net, stream, dur)
	if err != nil {
		t.Fatalf("ConvertStream: %v", err)
	}

	conv := &ingestConverter{spec: net.Input}
	var inc []*sparse.Frame
	for _, c := range chunks(stream, dur, 17_000) {
		fs, err := conv.ingest(c)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		inc = append(inc, fs...)
	}
	if len(inc) == 0 {
		t.Fatal("incremental conversion produced no frames")
	}
	if len(inc) > len(offline) {
		t.Fatalf("incremental produced %d frames, offline %d", len(inc), len(offline))
	}
	for i, f := range inc {
		o := offline[i]
		if f.T0 != o.T0 || f.T1 != o.T1 || f.NNZ() != o.NNZ() {
			t.Fatalf("frame %d: incremental {%d,%d,nnz=%d} != offline {%d,%d,nnz=%d}",
				i, f.T0, f.T1, f.NNZ(), o.T0, o.T1, o.NNZ())
		}
	}
	// The tail gap is at most the frames of one incomplete window.
	if len(offline)-len(inc) > net.Input.NumBins {
		t.Fatalf("incremental trails offline by %d frames", len(offline)-len(inc))
	}
}

// TestIngestConverterCountFraming checks count-based framing emits
// frames incrementally and the close flush emits the partial tail.
func TestIngestConverterCountFraming(t *testing.T) {
	net := nn.MustByName(nn.SpikeFlowNet) // FrameByCount
	const dur = 150_000
	stream := genStream(t, net.Input.Preset, 5, dur)

	conv := &ingestConverter{spec: net.Input}
	total := 0
	var frames []*sparse.Frame
	for _, c := range chunks(stream, dur, 25_000) {
		fs, err := conv.ingest(c)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		frames = append(frames, fs...)
		total += c.Len()
	}
	tail, err := conv.flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	frames = append(frames, tail...)
	if len(frames) < 2 {
		t.Fatalf("count framing produced %d frames", len(frames))
	}
	var evs float64
	for i, f := range frames {
		evs += f.EventCount()
		if i > 0 && f.T0 != frames[i-1].T1 {
			t.Fatalf("frame %d not contiguous: T0=%d, prev T1=%d", i, f.T0, frames[i-1].T1)
		}
	}
	if int(evs+0.5) != total {
		t.Fatalf("frames hold %.0f events, ingested %d", evs, total)
	}
}

// TestIngestConverterLargeEpoch feeds a stream whose timestamps start
// far from zero: windowing must anchor at the stream's own epoch
// instead of walking empty windows up from t=0.
func TestIngestConverterLargeEpoch(t *testing.T) {
	net := nn.MustByName(nn.DOTIE)
	const epoch = int64(1_700_000_000_000_000) // wall-clock-like microseconds
	conv := &ingestConverter{spec: net.Input}
	chunk := events.NewStream(64, 64)
	for i := int64(0); i < 200; i++ {
		chunk.Append(events.Event{X: uint16(i % 64), Y: uint16(i % 48), TS: epoch + i*60, Pol: events.On})
	}
	done := make(chan struct{})
	var frames []*sparse.Frame
	var err error
	go func() {
		frames, err = conv.ingest(chunk)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest of large-epoch stream did not return (unbounded window walk)")
	}
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// 200 events over ~12 ms cover two 5 ms windows -> 2*NumBins frames.
	if len(frames) != 2*net.Input.NumBins {
		t.Fatalf("got %d frames, want %d", len(frames), 2*net.Input.NumBins)
	}
	if frames[0].T0 < epoch-net.Input.WindowUS || frames[0].T0 > epoch {
		t.Fatalf("first frame T0=%d not anchored near epoch %d", frames[0].T0, epoch)
	}
	if got := conv.span(); got != 199*60 {
		t.Fatalf("span = %d, want %d", got, 199*60)
	}
}

// TestClosedSessionEviction bounds the retained closed-session set.
func TestClosedSessionEviction(t *testing.T) {
	srv, err := New(Config{Workers: 1, MaxClosed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, sess.ID)
		if _, err := srv.CloseSession(sess.ID); err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
	}
	if _, ok := srv.Session(ids[0]); ok {
		t.Fatalf("oldest closed session %s not evicted", ids[0])
	}
	if _, ok := srv.Session(ids[3]); !ok {
		t.Fatalf("recent closed session %s evicted", ids[3])
	}
	if _, err := srv.CloseSession(ids[0]); !errors.Is(err, ErrNoSession) {
		t.Fatalf("closing evicted session: got %v, want ErrNoSession", err)
	}
}

// TestSessionLifecycle covers create -> stream -> stats -> close over
// HTTP with the EVAR binary wire format.
func TestSessionLifecycle(t *testing.T) {
	_, cl, stop := newTestServer(t, Config{Workers: 2})
	defer stop()

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if snap.ID == "" || snap.State != "active" || snap.Network != nn.DOTIE {
		t.Fatalf("bad create snapshot: %+v", snap)
	}

	const dur = 200_000
	net := nn.MustByName(nn.DOTIE)
	stream := genStream(t, net.Input.Preset, 11, dur)
	var sent int
	for _, c := range chunks(stream, dur, 20_000) {
		res, err := cl.SendEvents(snap.ID, c)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		if res.Events != c.Len() {
			t.Fatalf("ingest ack %d events, sent %d", res.Events, c.Len())
		}
		sent += res.Events
	}

	mid, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if mid.EventsIn != uint64(sent) || mid.FramesIn == 0 {
		t.Fatalf("mid-stream snapshot: %+v", mid)
	}

	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.State != "closed" {
		t.Fatalf("final state %q", fin.State)
	}
	if fin.Invocations == 0 || fin.RawFramesDone == 0 {
		t.Fatalf("nothing executed: %+v", fin)
	}
	if fin.ThroughputFPS <= 0 || fin.Latency.Count == 0 || fin.Latency.P99US <= 0 {
		t.Fatalf("no latency/throughput: %+v", fin)
	}

	// Streaming into a closed session must fail.
	if _, err := cl.SendEvents(snap.ID, stream.Slice(0, 1000)); err == nil {
		t.Fatal("ingest into closed session succeeded")
	}
	// Closing again is idempotent and still returns the snapshot.
	again, err := cl.CloseSession(snap.ID)
	if err != nil || again.State != "closed" {
		t.Fatalf("re-close: %v, %+v", err, again)
	}
}

// TestBackpressureDrops floods a tiny ingest queue without letting
// workers drain it and checks the shed counters.
func TestBackpressureDrops(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1, QueueCap: 4})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	// Direct ingest never schedules a worker, so the queue cannot
	// drain: every frame past the cap must be shed.
	const dur = 200_000
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 7, dur)
	res, err := sess.ingest(stream)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Frames <= 4 {
		t.Fatalf("test needs more frames than the queue cap, got %d", res.Frames)
	}
	if res.Dropped != res.Frames-4 {
		t.Fatalf("dropped %d of %d frames, want %d", res.Dropped, res.Frames, res.Frames-4)
	}
	if res.QueueLen != 4 {
		t.Fatalf("queue len %d, want 4", res.QueueLen)
	}
	snap := sess.snapshot()
	if snap.FramesDropped != uint64(res.Dropped) {
		t.Fatalf("snapshot drops %d, want %d", snap.FramesDropped, res.Dropped)
	}
	// Drop-oldest: the queue holds the newest frames.
	kept := sess.queue.drain(0)
	last := kept[len(kept)-1]
	if last.T1 < dur/2 {
		t.Fatalf("drop-oldest kept stale frames (last T1=%d)", last.T1)
	}
}

// TestConcurrentSessionsSharedPlatform streams four sessions in
// parallel onto one platform and checks they all make progress and
// collectively spread over more than one device (RR placement).
func TestConcurrentSessionsSharedPlatform(t *testing.T) {
	srv, cl, stop := newTestServer(t, Config{Workers: 4})
	defer stop()

	nets := []string{nn.DOTIE, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth}
	const dur = 150_000
	ids := make([]string, len(nets))
	for i, name := range nets {
		snap, err := cl.CreateSession(SessionConfig{Network: name, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession %s: %v", name, err)
		}
		ids[i] = snap.ID
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(nets))
	for i, name := range nets {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			stream := genStream(t, nn.MustByName(name).Input.Preset, int64(20+i), dur)
			for _, c := range chunks(stream, dur, 25_000) {
				if _, err := cl.SendEvents(ids[i], c); err != nil {
					errs <- err
					return
				}
			}
		}(i, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("streaming: %v", err)
	}

	devices := map[string]bool{}
	for _, id := range ids {
		fin, err := cl.CloseSession(id)
		if err != nil {
			t.Fatalf("CloseSession %s: %v", id, err)
		}
		if fin.RawFramesDone == 0 || fin.ThroughputFPS <= 0 {
			t.Fatalf("session %s made no progress: %+v", id, fin)
		}
		for _, d := range fin.Devices {
			devices[d] = true
		}
	}
	if len(devices) < 2 {
		t.Fatalf("four RR sessions used %d device(s), want >= 2", len(devices))
	}

	// The shared engine saw cross-session work (the engine is
	// internally synchronized now — no server-side lock to take), and
	// every invocation went through the execution scheduler.
	busy := 0.0
	for _, d := range srv.cfg.Platform.Devices {
		busy += srv.engine.BusyTime(d)
	}
	if busy <= 0 {
		t.Fatal("shared engine recorded no busy time")
	}
	if st := srv.SchedStats(); st.Submitted == 0 || st.Dispatches == 0 {
		t.Fatalf("execution scheduler saw no work: %+v", st)
	}
}

// TestJSONIngestAndWireErrors covers the JSON wire format and the
// ingest error paths.
func TestJSONIngestAndWireErrors(t *testing.T) {
	_, cl, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 3})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	const dur = 60_000
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 9, dur)
	res, err := cl.SendEventsJSON(snap.ID, stream.Slice(0, 30_000))
	if err != nil {
		t.Fatalf("SendEventsJSON: %v", err)
	}
	if res.Events != stream.Slice(0, 30_000).Len() {
		t.Fatalf("JSON ingest ack %d events", res.Events)
	}

	// Out-of-order chunk (before the watermark) is rejected.
	if _, err := cl.SendEventsJSON(snap.ID, stream.Slice(0, 10_000)); err == nil {
		t.Fatal("out-of-order chunk accepted")
	}

	// Unknown session.
	if _, err := cl.SendEvents("nope", stream.Slice(30_000, 40_000)); err == nil {
		t.Fatal("ingest into unknown session succeeded")
	}

	// Garbage binary body.
	resp, err := http.Post(cl.base+"/v1/sessions/"+snap.ID+"/events",
		"application/octet-stream", bytes.NewReader([]byte("not EVAR at all")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown network at create.
	if _, err := cl.CreateSession(SessionConfig{Network: "NoSuchNet"}); err == nil {
		t.Fatal("unknown network accepted")
	}
}

// TestHealthAndMetrics checks the operational endpoints.
func TestHealthAndMetrics(t *testing.T) {
	_, cl, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	h, err := cl.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || h.Workers != 1 {
		t.Fatalf("health: %+v", h)
	}

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 13, 60_000)
	if _, err := cl.SendEvents(snap.ID, stream); err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}

	text, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"evserve_sessions_total 1",
		"evserve_session_events_total",
		"evserve_session_frames_dropped_total",
		"evserve_device_busy_us",
		`session="` + snap.ID + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMapperNMPPolicy runs the server under the evolutionary placement
// policy with a tiny search budget.
func TestMapperNMPPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("NMP search in -short mode")
	}
	cfg := Config{Workers: 1, Mapper: MapperNMP}
	cfg.NMP = serveNMPConfig()
	cfg.NMP.Population = 4
	cfg.NMP.Generations = 2
	_, cl, stop := newTestServer(t, cfg)
	defer stop()

	a, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 3})
	if err != nil {
		t.Fatalf("CreateSession under NMP: %v", err)
	}
	b, err := cl.CreateSession(SessionConfig{Network: nn.HALSIE, Level: 3})
	if err != nil {
		t.Fatalf("second CreateSession under NMP: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 17, 50_000)
	if _, err := cl.SendEvents(a.ID, stream); err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, err := cl.CloseSession(id); err != nil {
			t.Fatalf("CloseSession %s: %v", id, err)
		}
	}
}
