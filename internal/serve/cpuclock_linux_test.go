//go:build linux

package serve

import (
	"syscall"
	"unsafe"
)

// cpuSeconds reads CLOCK_PROCESS_CPUTIME_ID: CPU time this process has
// actually executed, at nanosecond resolution. On the small shared
// (often single-core) machines CI runs on, wall-clock windows of a few
// milliseconds are dominated by involuntary preemption and hypervisor
// steal time; the CPU clock excludes both, so it is the only stable
// base for asserting a few-percent overhead ratio.
func cpuSeconds() float64 {
	const clockProcessCPUTimeID = 2
	var ts syscall.Timespec
	syscall.Syscall(syscall.SYS_CLOCK_GETTIME, clockProcessCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	return float64(ts.Sec) + float64(ts.Nsec)*1e-9
}
