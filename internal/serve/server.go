package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"evedge/internal/control"
	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/mem"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/par"
	"evedge/internal/perf"
	"evedge/internal/pipeline"
	"evedge/internal/quant"
	"evedge/internal/sched"
	"evedge/internal/sparse"
	"evedge/internal/taskgraph"
)

// MapperPolicy selects how active sessions are placed on the platform.
type MapperPolicy string

// Placement policies: the Network Mapper's evolutionary search, or the
// coarse round-robin baseline (network i on accelerator i mod N).
const (
	MapperNMP MapperPolicy = "nmp"
	MapperRR  MapperPolicy = "rr"
)

// Config tunes the server.
type Config struct {
	// Platform is the shared heterogeneous platform model; nil uses the
	// Xavier AGX model.
	Platform *hw.Platform
	// Workers sizes the worker pool draining session queues (default 4).
	Workers int
	// QueueCap is the default per-session ingest queue bound in frames
	// (default 64).
	QueueCap int
	// DropPolicy is the default shedding policy for full queues.
	DropPolicy DropPolicy
	// Mapper places active sessions' layers on devices: MapperRR
	// (default) or MapperNMP. The policy re-runs on every session
	// create and close.
	Mapper MapperPolicy
	// NMP tunes the MapperNMP search; the zero value uses a reduced
	// population/generation count so session creation stays fast.
	NMP nmp.Config
	// DrainBatch caps frames a worker drains per pass so one flooding
	// session cannot monopolize a worker (default 32).
	DrainBatch int
	// BatchMax caps how many compatible invocations — same (device,
	// network, precision plan) — the execution scheduler coalesces into
	// one micro-batched inference (default sched.DefaultMaxBatch; 1
	// disables coalescing, the serialized baseline).
	BatchMax int
	// BatchWindow bounds how long a scheduler dispatcher holds work
	// open for more compatible arrivals before dispatching (wall-clock
	// servers only; 0 coalesces opportunistically without waiting).
	// Ignored under ManualDrain, where Pump boundaries are the window.
	BatchWindow time.Duration
	// MaxBodyBytes bounds one ingest request body (default 64 MiB).
	MaxBodyBytes int64
	// MaxClosed bounds how many closed sessions are retained for stats
	// and /metrics before the oldest are evicted (default 64), keeping
	// a long-lived server's memory and scrape size bounded.
	MaxClosed int
	// ManualDrain disables the background worker pool: sessions queue
	// work as usual, but nothing executes until the owner calls Pump.
	// A single-threaded driver (the scenario harness) uses it to drain
	// queues at deterministic points on a virtual clock; a production
	// server leaves it false.
	ManualDrain bool
	// Adapt wires the online adaptation plane (internal/control) into
	// the server; the zero value leaves both loops off, freezing the
	// DSFA tuning and the placement at session creation as before.
	Adapt AdaptConfig
	// Trace wires the frame-lifecycle tracing layer (internal/obs):
	// spans for ingest, queue wait, DSFA aggregation, batch-coalesce
	// wait, per-device execution, UM transfers and completion, exported
	// as Chrome trace-event JSON at GET /v1/trace and as per-stage
	// latency histograms in /metrics. Off by default — a disabled
	// server carries a nil tracer and pays one pointer check per path.
	Trace obs.Config
	// Journal enables the per-session event journal: every ingest chunk
	// and emitted result gets a monotonic sequence number, results are
	// retained for SSE catch-up (GET /v1/sessions/{id}/stream) and the
	// cluster replicates unacknowledged chunks to a buddy node for
	// lossless failover replay. Off by default — the steady-state frame
	// path stays allocation-free and sessions carry a nil journal.
	Journal bool
	// Parallel enables the node's shared kernel worker pool and the
	// per-session temporal-coherence rulebook cache: > 1 creates a
	// par.Pool of that width, routes numeric kernels through the tiled
	// (bit-identical) variants, and maintains one rulebook per session
	// delta-revalidated frame to frame. 0 or 1 keeps everything serial
	// — the default, and the byte-identical replay baseline (tiled
	// kernels are bit-identical anyway; the knob only changes host
	// wall-clock work, never virtual time).
	Parallel int
	// OnResult, when set alongside Journal, observes every journaled
	// result right after it is appended: the session's local ID, the
	// event (with its assigned sequence number) and the journal's
	// chunk-ack watermark at that instant. The cluster router uses it
	// to replicate results to the session's buddy node so a failover
	// can re-seed the resumed journal's sequence counter and catch-up
	// ring. Called outside the session lock; must not block on the
	// session's own serving path.
	OnResult func(sessionID string, ev ResultEvent, ackSeq uint64)
}

// AdaptConfig enables the per-node control loop.
type AdaptConfig struct {
	// Retune lets the per-session controller swap DSFA tunings
	// mid-stream (sessions at LevelDSFA and above).
	Retune bool
	// Remap lets the node run warm-started incremental NMP searches
	// and install better plans mid-stream. Requires MapperNMP.
	Remap bool
	// DSFA tunes the retune controller; zero fields take
	// control.DefaultDSFAConfig.
	DSFA control.DSFAConfig
	// Planner tunes the remap gate; zero fields take
	// control.DefaultRemapConfig.
	Planner control.RemapConfig
}

// ErrNoSession reports an unknown session ID.
var ErrNoSession = errors.New("serve: no such session")

// ErrDraining reports a session create refused by a draining node.
var ErrDraining = errors.New("serve: node is draining")

// ErrServerClosed reports an ingest or create against a server whose
// Close already ran. A killed node must refuse new work: accepting a
// chunk onto a corpse would silently strand its frames in a queue
// nothing will ever drain — and recycle them into the dead node's own
// arena while failover re-creates the session elsewhere.
var ErrServerClosed = errors.New("serve: server is closed")

// DefaultConfig returns the server defaults.
func DefaultConfig() Config {
	return Config{
		Workers:    4,
		QueueCap:   64,
		Mapper:     MapperRR,
		DrainBatch: 32,
	}
}

// serveNMPConfig is the reduced search used when MapperNMP is selected
// without explicit settings: small enough to run at session-create
// latency, large enough to beat round-robin placements.
func serveNMPConfig() nmp.Config {
	cfg := nmp.DefaultConfig()
	cfg.Population = 12
	cfg.Generations = 8
	return cfg
}

// Health is the /healthz payload.
type Health struct {
	Status         string  `json:"status"`
	UptimeS        float64 `json:"uptime_s"`
	SessionsActive int     `json:"sessions_active"`
	SessionsTotal  int     `json:"sessions_total"`
	Workers        int     `json:"workers"`
	Platform       string  `json:"platform"`
	Mapper         string  `json:"mapper"`
}

// NodeLoad is the server's load signal: what a fleet router needs to
// place sessions across heterogeneous nodes. Cost is the sum of the
// active sessions' per-inference dense MACs; Capacity is the
// platform's aggregate peak MAC rate at each device's best precision,
// so Utilization compares fairly across e.g. a Xavier and an Orin
// (the same session set loads the bigger platform less).
type NodeLoad struct {
	SessionsActive int     `json:"sessions_active"`
	QueuedFrames   int     `json:"queued_frames"`
	CostMACs       float64 `json:"cost_macs"`
	CapacityMACs   float64 `json:"capacity_macs"`
	Utilization    float64 `json:"utilization"`
	// PendingInvocations counts invocations sitting in the execution
	// scheduler's run queues right now — the live queue-depth signal
	// the fleet rebalancer consumes on top of the capacity-weighted
	// utilization. BacklogUS is the cumulative drain-time spread
	// between the node's busiest and idlest device (virtual us): it
	// grows over the node's lifetime and never decays, so it is an
	// operator-facing imbalance gauge, not a live backlog — the
	// migration gate must not compare it against time thresholds.
	PendingInvocations int     `json:"pending_invocations"`
	BacklogUS          float64 `json:"backlog_us"`
}

// SessionTotals is the monotonic roll-up of session counters: active
// sessions summed live plus the final counters of every session ever
// closed, whether or not its snapshot is still retained. Fleet-level
// scrapers aggregate these instead of per-session series so totals do
// not depend on scrape timing or closed-session eviction.
type SessionTotals struct {
	Sessions          uint64  `json:"sessions"`
	EventsIn          uint64  `json:"events_in"`
	FramesIn          uint64  `json:"frames_in"`
	FramesDropped     uint64  `json:"frames_dropped"`
	FramesDroppedDSFA uint64  `json:"frames_dropped_dsfa"`
	Invocations       uint64  `json:"invocations"`
	RawFramesDone     uint64  `json:"raw_frames_done"`
	Retunes           uint64  `json:"retunes"`
	Remaps            uint64  `json:"remaps"`
	LatencySumUS      float64 `json:"latency_sum_us"`
	LatencyCount      uint64  `json:"latency_count"`
}

// add folds one session's counters into the totals.
func (t *SessionTotals) add(s SessionSnapshot) {
	t.Sessions++
	t.EventsIn += s.EventsIn
	t.FramesIn += s.FramesIn
	t.FramesDropped += s.FramesDropped
	t.FramesDroppedDSFA += s.FramesDroppedDSFA
	t.Invocations += s.Invocations
	t.RawFramesDone += s.RawFramesDone
	t.Retunes += s.Retunes
	t.Remaps += s.Remaps
	t.LatencySumUS += s.Latency.MeanUS * float64(s.Latency.Count)
	t.LatencyCount += s.Latency.Count
}

// Merge folds another roll-up into the totals: a late-execute delta on
// the close path, or a whole node incarnation's totals when a fleet
// aggregates across revives.
func (t *SessionTotals) Merge(d SessionTotals) {
	t.Sessions += d.Sessions
	t.EventsIn += d.EventsIn
	t.FramesIn += d.FramesIn
	t.FramesDropped += d.FramesDropped
	t.FramesDroppedDSFA += d.FramesDroppedDSFA
	t.Invocations += d.Invocations
	t.RawFramesDone += d.RawFramesDone
	t.Retunes += d.Retunes
	t.Remaps += d.Remaps
	t.LatencySumUS += d.LatencySumUS
	t.LatencyCount += d.LatencyCount
}

// Server multiplexes client sessions onto one shared platform. The
// ingest path (HTTP) converts events to frames and enqueues them; the
// worker pool drains queues through each session's Stepper, which
// submits invocations to the shared execution scheduler
// (internal/sched). The scheduler owns per-device run queues,
// coalesces compatible cross-session invocations into micro-batches,
// and dispatches them on the internally-synchronized engine — the
// serving analogue of the paper's multi-task runs, without the old
// global engine lock.
type Server struct {
	cfg   Config
	model *perf.Model
	mux   *http.ServeMux
	start time.Time

	// engine is the shared discrete-event executor; it synchronizes
	// internally per device, so no server-side lock guards it. All
	// execution flows through sched, never by submitting directly.
	engine *hw.Engine
	sched  *sched.Scheduler

	// arena pools the objects the steady-state frame path churns
	// through: sparse frames flow ingest→DSFA→dispatch→release and are
	// recycled by the scheduler's Release hook; invocation and request
	// structs cycle through invPool/pendPool the same way. Sessions
	// share the arena, so frames released by one session's completions
	// feed another's ingest.
	arena    *mem.Arena
	invPool  *mem.Pool[pipeline.Invocation]
	pendPool *mem.Pool[pendingInv]
	// drainBufs recycles the worker-side frame slices; dispatchScr the
	// per-dispatch merge scratch; pendLists the per-execute submission
	// lists. All three are sync.Pools because workers and dispatchers
	// run concurrently.
	drainBufs   sync.Pool
	dispatchScr sync.Pool
	pendLists   sync.Pool

	// tracer records frame-lifecycle spans; nil when tracing is off
	// (every obs method is a no-op on nil). devTracks caches the
	// per-device lane names ("dev/GPU") so exec spans never
	// concatenate strings in the dispatch hot path, and the obs.Track
	// handles cache the ring resolution for the fixed lanes so the
	// dispatch path never pays a map lookup either.
	tracer     *obs.Tracer
	devTracks  []string
	devTrackH  []*obs.Track
	umTrack    *obs.Track
	schedTrack *obs.Track
	ctlTrack   *obs.Track

	// sessMu guards the session table and placement bookkeeping. The
	// placement search itself runs outside it (see rebalance).
	sessMu      sync.Mutex
	sessions    map[string]*Session
	order       []string // active sessions in creation order (placement)
	closedOrder []string // retained closed sessions, oldest first
	// placeGen increments whenever the active set changes; rebalance
	// uses it to detect that a concurrently computed placement is stale.
	placeGen uint64
	// lastAsg is the multi-task assignment behind the installed plans,
	// in order-index task positions — the warm-start seed for online
	// remaps. nil until the first successful rebalance.
	lastAsg *taskgraph.Assignment
	// closedUnscraped holds final snapshots not yet emitted to /metrics
	// — each is exposed exactly once. Guarded by sessMu.
	closedUnscraped []SessionSnapshot

	// totalsMu guards closedTotals, which accumulates final counters of
	// every closed session (including ones later evicted) so totals
	// never depend on scrape timing. It is a leaf lock: execute folds
	// late deltas under sess.mu, the close path and readers take it
	// after sessMu — never the other way around.
	totalsMu     sync.Mutex
	closedTotals SessionTotals

	// planner gates online remaps (nil when Adapt.Remap is off).
	planner *control.RemapPlanner

	runq    chan *Session
	stopped chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	nextID  atomic.Uint64

	// draining refuses new sessions while existing ones keep running —
	// the fleet router flips it before migrating sessions off a node.
	draining atomic.Bool

	// replicas holds other nodes' replicated journal entries when this
	// server acts as a buddy; zero-value ready, keyed by fleet session
	// ID (see journal.go).
	replicas replicaStore

	// capacityMACs caches the platform's aggregate peak MAC rate.
	capacityMACs float64

	// kernels is the node's shared worker pool for tiled numeric
	// kernels; nil when Config.Parallel <= 1 (the serial default).
	// Sessions record its width in their plans (PlanSlot.SetParallel)
	// and the rulebook caches borrow ActiveSet buffers from the arena.
	kernels *par.Pool
}

// New validates cfg, starts the worker pool and returns the server.
// Call Close to stop the workers.
func New(cfg Config) (*Server, error) {
	def := DefaultConfig()
	if cfg.Platform == nil {
		cfg.Platform = hw.Xavier()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = def.QueueCap
	}
	if cfg.DrainBatch <= 0 {
		cfg.DrainBatch = def.DrainBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MaxClosed <= 0 {
		cfg.MaxClosed = 64
	}
	switch cfg.Mapper {
	case "":
		cfg.Mapper = MapperRR
	case MapperRR, MapperNMP:
	default:
		return nil, fmt.Errorf("serve: unknown mapper policy %q", cfg.Mapper)
	}
	if cfg.Platform.GPUDevice() == nil {
		return nil, fmt.Errorf("serve: platform %q has no GPU", cfg.Platform.Name)
	}
	s := &Server{
		cfg:      cfg,
		model:    perf.NewModel(cfg.Platform),
		engine:   hw.NewEngine(cfg.Platform, false),
		tracer:   obs.NewTracer(cfg.Trace),
		arena:    mem.NewArena(),
		invPool:  pipeline.NewInvocationPool(),
		sessions: map[string]*Session{},
		runq:     make(chan *Session, 1024),
		stopped:  make(chan struct{}),
		start:    time.Now(),
	}
	if cfg.Parallel > 1 {
		s.kernels = par.New(cfg.Parallel)
	}
	s.pendPool = mem.NewPool(func(p *pendingInv) {
		p.sess = nil
		p.req.Session = ""
		p.req.Key = sched.Key{}
		p.req.Units = 0
		p.payload.inv = nil
		p.payload.net = nil
		p.payload.plan = pipeline.ExecPlan{}
		p.payload.track = ""
		p.payload.trackH = nil
	})
	s.drainBufs.New = func() any {
		b := make([]*sparse.Frame, 0, cfg.DrainBatch)
		return &b
	}
	s.dispatchScr.New = func() any { return &dispatchScratch{} }
	s.pendLists.New = func() any {
		l := make([]*pendingInv, 0, 16)
		return &l
	}
	schedCfg := sched.Config{
		Dispatch: s.dispatchBatch,
		MaxBatch: cfg.BatchMax,
		Window:   cfg.BatchWindow,
		Virtual:  cfg.ManualDrain,
		Release:  s.releaseRequest,
	}
	if s.tracer != nil {
		schedCfg.Observe = s.observeDispatch
		s.devTracks = make([]string, len(cfg.Platform.Devices))
		s.devTrackH = make([]*obs.Track, len(cfg.Platform.Devices))
		for i := range s.devTracks {
			s.devTracks[i] = "dev/" + cfg.Platform.DeviceName(i)
			s.devTrackH[i] = s.tracer.Track(s.devTracks[i])
		}
		s.umTrack = s.tracer.Track("um")
		s.schedTrack = s.tracer.Track("sched")
		s.ctlTrack = s.tracer.Track("ctl")
	}
	scheduler, err := sched.New(schedCfg)
	if err != nil {
		return nil, err
	}
	s.sched = scheduler
	for _, d := range cfg.Platform.Devices {
		s.capacityMACs += d.PeakMACs[d.BestPrecision()]
	}
	if cfg.Adapt.Remap {
		if cfg.Mapper != MapperNMP {
			return nil, fmt.Errorf("serve: adaptive remap requires the %q mapper, have %q", MapperNMP, cfg.Mapper)
		}
		s.planner = control.NewRemapPlanner(cfg.Adapt.Planner)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleIngest)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/sessions/{id}/close", s.handleClose)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	if !cfg.ManualDrain {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s, nil
}

// Handler returns the HTTP handler (mountable under httptest or a
// real listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool and the execution scheduler. In-flight
// work finishes; queued frames of never-closed sessions are abandoned
// in place — a closed server rejects further ingest (ErrServerClosed),
// so its arena-owned frames stay frozen in their queues and are never
// recycled across arenas by a concurrent failover.
func (s *Server) Close() {
	s.stop.Do(func() { close(s.stopped) })
	s.wg.Wait()
	s.sched.Close()
	// Recycle trace ring storage (export traces before Close).
	s.tracer.Close()
	// Stop the kernel worker pool last: in-flight dispatches finish
	// first, and Run after Close degrades to inline execution.
	s.kernels.Close()
}

// KernelPool returns the node's shared tiled-kernel worker pool (nil
// when Config.Parallel <= 1). Benchmarks and the numeric runtime wire
// it into nn.Runtime.SetParallel.
func (s *Server) KernelPool() *par.Pool { return s.kernels }

// stoppedNow reports whether Close has run.
func (s *Server) stoppedNow() bool {
	select {
	case <-s.stopped:
		return true
	default:
		return false
	}
}

// worker drains scheduled sessions until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopped:
			return
		case sess := <-s.runq:
			s.drainSession(sess)
		}
	}
}

// Pump synchronously drains every session currently scheduled on the
// run queue, dispatches the scheduler's pending micro-batches, and
// loops until both are quiescent. Only meaningful under
// Config.ManualDrain, where no background goroutines exist: the
// caller owns execution order — run-queue FIFO, then scheduler
// submission order — deterministic for a single-threaded driver.
// Completion callbacks can re-schedule sessions (the virtual clock
// advanced, making more DSFA buckets dispatchable), hence the loop.
func (s *Server) Pump() {
	for {
		worked := false
	drainq:
		for {
			select {
			case sess := <-s.runq:
				s.drainSession(sess)
				worked = true
			default:
				break drainq
			}
		}
		if s.sched.Pump() {
			worked = true
		}
		if !worked {
			return
		}
	}
}

// schedule puts the session on the run queue at most once.
func (s *Server) schedule(sess *Session) {
	if !sess.scheduled.CompareAndSwap(false, true) {
		return
	}
	select {
	case s.runq <- sess:
	case <-s.stopped:
	}
}

// drainSession drains the session's ingest queue in bounded batches.
// Clearing the scheduled flag before draining guarantees no lost
// wakeup: a push that lands after the flag clears re-enqueues the
// session. An empty pass still runs execute once — a completion
// callback re-schedules the session exactly so that newly-dispatchable
// DSFA buckets (the virtual clock advanced) reach the scheduler.
func (s *Server) drainSession(sess *Session) {
	sess.scheduled.Store(false)
	bufp := s.drainBufs.Get().(*[]*sparse.Frame)
	buf := *bufp
	for {
		buf = sess.queue.drainInto(buf[:0], s.cfg.DrainBatch)
		s.execute(sess, buf, false)
		if len(buf) == 0 {
			break
		}
	}
	for i := range buf {
		buf[i] = nil
	}
	*bufp = buf[:0]
	s.drainBufs.Put(bufp)
	s.maybeRemap()
}

// invPayload is what a session submission carries through the
// scheduler to dispatch: the invocation (ready time already shifted
// into engine virtual time) and a snapshot of the plan it priced
// under.
type invPayload struct {
	inv  *pipeline.Invocation
	net  *nn.Network
	plan pipeline.ExecPlan
	// track is the submitting session's cached trace lane ("" when
	// tracing is off) and trackH its cached ring handle (nil no-op).
	track  string
	trackH *obs.Track
	// pend points back at the pooled submission this payload is part
	// of, so the scheduler's Release hook can recycle the whole unit.
	pend *pendingInv
}

// pendingInv is one pooled scheduler submission: the request, its
// payload and the completion closure live in a single recycled struct,
// so the steady-state execute path allocates none of them. The Done
// closure is bound once, at the struct's first use, and captures only
// the struct pointer; resets preserve it.
type pendingInv struct {
	srv     *Server
	sess    *Session
	req     sched.Request
	payload invPayload
}

// newPending borrows a submission unit and ensures its one-time
// self-referential bindings are in place.
func (s *Server) newPending() *pendingInv {
	p := s.pendPool.Get()
	if p.req.Done == nil {
		p.srv = s
		p.payload.pend = p
		p.req.Payload = &p.payload
		p.req.Done = func(end float64) {
			p.srv.complete(p.sess, p.payload.inv.PerRaw, end)
		}
	}
	return p
}

// releaseRequest is the scheduler's Release hook: after a request's
// batch dispatched and every callback ran, its frames go back to the
// arena, the invocation to the invocation pool, and the submission
// unit to the pending pool. This is the single point where the frame
// path's ownership chain ends.
func (s *Server) releaseRequest(r *sched.Request) {
	p := r.Payload.(*invPayload)
	inv := p.inv
	for _, f := range inv.Frames {
		s.arena.Frames.Put(f)
	}
	s.invPool.Put(inv)
	s.pendPool.Put(p.pend)
}

// dispatchScratch is the per-dispatch merge state (pooled: wall-clock
// dispatchers run one per device, concurrently).
type dispatchScratch struct {
	inv  pipeline.Invocation
	invs []*pipeline.Invocation
	ids  []string
}

// planSig fingerprints a plan's pricing-relevant identity — device and
// precision per layer, sparse path, framing overhead — so the
// scheduler coalesces only invocations that cost identically.
func planSig(p *pipeline.ExecPlan) string {
	return fmt.Sprintf("%v|%v|%v|%d", p.Device, p.Prec, p.Sparse, p.FramingOps)
}

// aggSpan buffers one DSFA bucket-residency span during an execute
// pass until the bulk SpansFunc flush.
type aggSpan struct {
	start, dur float64
	count      int64
}

// execute pushes frames through the session's stepper and submits
// every ready invocation to the execution scheduler. flush drains open
// aggregator buckets too (session close). Execution is asynchronous:
// completion lands in complete, which records latencies, advances the
// session clock and re-schedules the session. Invocation-side counters
// (invocs, rawDone, batched) advance at submission — the frames have
// irrevocably left the stepper — so frame conservation holds at every
// scheduler-quiescent point.
func (s *Server) execute(sess *Session, frames []*sparse.Frame, flush bool) {
	pendp := s.pendLists.Get().(*[]*pendingInv)
	pends := (*pendp)[:0]
	traced := s.tracer != nil
	// Aggregation spans buffer on the stack until one bulk flush after
	// the invocation loop; a pass rarely releases more than a handful
	// of invocations, so the spill append stays cold.
	var aggArr [32]aggSpan
	aggs := aggArr[:0]
	sess.mu.Lock()
	// A worker can lose the race with CloseSession: it drained frames
	// before the close but acquires the session lock after the final
	// flush ran. Serving those frames in flush mode keeps them from
	// being stranded in open aggregator buckets forever — and if the
	// close already folded the session's finals into the server totals,
	// this call's deltas are folded directly so no counter is lost.
	if sess.closed {
		flush = true
	}
	tallied := sess.tallied
	var preInvocs, preRaw, preDrops, preRetunes uint64
	if tallied {
		preInvocs, preRaw = sess.invocs, sess.rawDone
		preDrops = uint64(sess.stepper.Stats().DroppedFrames)
		if sess.retuner != nil {
			preRetunes = sess.retuner.Retunes()
		}
	}
	if traced {
		// Queue-wait spans: a frame became available at its window end
		// (T1) and leaves the ingest queue at the session's virtual now.
		// Bulk direct-write API: per-frame volume is the hot spot.
		sess.trackH.SpansFunc(obs.StageQueue, "queue", len(frames),
			func(i int) (float64, float64, int64) {
				t1 := float64(frames[i].T1)
				return t1 + sess.epochUS, sess.clockUS - t1, 1
			})
	}
	if sess.rulebook != nil && !sess.closed {
		// Maintain the session's rulebook frame by frame: the active-site
		// structure the submanifold layers share is delta-revalidated
		// against the previous frame (hit) or rebuilt (miss). This is
		// host-side work accounted on the engine's aux counters only —
		// virtual time and the replay stream are untouched.
		for _, f := range frames {
			as, hit := sess.rulebook.Observe(f)
			if hit {
				s.engine.AddAux(hw.AuxRulebookHits, 1)
			} else {
				s.engine.AddAux(hw.AuxRulebookMisses, 1)
			}
			// Per eligible layer, the rulebook replaces a dense per-pixel
			// activity rescan with the cached site list.
			saved := uint64(sess.subLayers) * uint64(f.H*f.W-as.Sites())
			sess.rbSaved += saved
			s.engine.AddAux(hw.AuxRulebookSavedScans, saved)
		}
	}
	for _, f := range frames {
		sess.stepper.Push(f)
	}
	for {
		// The control plane swaps plans and DSFA tunings only at this
		// boundary: queued frames are never dropped by an adaptation,
		// they simply execute under the new decision.
		s.adaptLocked(sess)
		inv := sess.stepper.Next(sess.clockUS)
		if inv == nil {
			if !flush {
				break
			}
			inv = sess.stepper.Flush()
			if inv == nil {
				break
			}
		}
		plan := sess.plan.Load()
		if traced && len(inv.PerRaw) > 0 {
			// DSFA bucket residency: earliest member frame ready to the
			// invocation's release.
			first := inv.PerRaw[0].ReadyUS
			for _, rr := range inv.PerRaw {
				if rr.ReadyUS < first {
					first = rr.ReadyUS
				}
			}
			aggs = append(aggs, aggSpan{start: first + sess.epochUS,
				dur: inv.ReadyUS - first, count: int64(inv.Raw)})
		}
		// Shift the invocation into the engine's virtual timeline; the
		// completion path attributes latencies back in stream time
		// (PerRaw keeps unshifted ready times). The stepper handed the
		// invocation over, so the shift mutates in place — no copy. The
		// plan is snapshotted by value so a later SetFramingOps cannot
		// race the dispatcher pricing this invocation.
		inv.ReadyUS += sess.epochUS
		for _, d := range plan.Device {
			sess.usedDevs[d] = true
		}
		sess.invocs++
		sess.batched += uint64(len(inv.Frames))
		sess.rawDone += uint64(inv.Raw)
		if sess.sigPlan != plan {
			// Plan swaps install a new pointer; FramingOps is fixed before
			// the first invocation, so pointer identity keys the cache.
			sess.sigPlan, sess.planSig = plan, planSig(plan)
		}
		p := s.newPending()
		p.sess = sess
		p.payload.inv = inv
		p.payload.net = sess.Net
		p.payload.plan = *plan
		p.payload.track = sess.track
		p.payload.trackH = sess.trackH
		p.req.Session = sess.ID
		p.req.Key = sched.Key{Device: plan.Device[0], Net: sess.Net.Name, Sig: sess.planSig}
		p.req.Units = inv.Raw
		pends = append(pends, p)
	}
	if traced {
		sess.trackH.SpansFunc(obs.StageAgg, "agg", len(aggs),
			func(i int) (float64, float64, int64) {
				a := &aggs[i]
				return a.start, a.dur, a.count
			})
		// DSFA shed marks: the aggregator's bounded inference queue
		// dropped raw frames since the last pass.
		if drops := uint64(sess.stepper.Stats().DroppedFrames); drops > sess.lastDSFADrops {
			sess.trackH.Instant(obs.StageAgg, "dsfa-drop",
				sess.clockUS+sess.epochUS, int64(drops-sess.lastDSFADrops))
			sess.lastDSFADrops = drops
		}
	}
	if tallied {
		// The session's finals were already folded into the closed
		// roll-up; contribute this pass's submission-side deltas directly
		// (completion-side latency deltas fold in complete).
		d := SessionTotals{
			Invocations:       sess.invocs - preInvocs,
			RawFramesDone:     sess.rawDone - preRaw,
			FramesDroppedDSFA: uint64(sess.stepper.Stats().DroppedFrames) - preDrops,
		}
		if sess.retuner != nil {
			d.Retunes = sess.retuner.Retunes() - preRetunes
		}
		if d != (SessionTotals{}) {
			s.totalsMu.Lock()
			s.closedTotals.Merge(d)
			s.totalsMu.Unlock()
		}
	}
	sess.mu.Unlock()
	// Submit outside sess.mu: a wall-clock dispatcher may complete a
	// request inline-fast, and complete re-acquires the session lock.
	// The pending structs themselves are NOT returned here — the
	// scheduler's Release hook recycles each one after its batch
	// completes; only the list scratch goes back.
	for _, p := range pends {
		s.sched.Submit(&p.req)
	}
	for i := range pends {
		pends[i] = nil
	}
	*pendp = pends[:0]
	s.pendLists.Put(pendp)
}

// dispatchBatch executes one scheduler micro-batch: compatible
// invocations (same network, identical plan) merge into a single
// batched inference priced once on the shared engine. All members
// complete at the batch end — early members pay the coalescing delay,
// which is exactly the latency/throughput trade the batch window
// bounds.
func (s *Server) dispatchBatch(batch []*sched.Request) float64 {
	first := batch[0].Payload.(*invPayload)
	inv := first.inv
	// Span tags only matter when someone records them; with tracing and
	// engine recording both off the join would be a per-dispatch
	// allocation nobody reads.
	named := s.tracer != nil || s.engine.Recording()
	tag := batch[0].Session
	var scr *dispatchScratch
	if len(batch) > 1 {
		scr = s.dispatchScr.Get().(*dispatchScratch)
		scr.invs = scr.invs[:0]
		for _, r := range batch {
			scr.invs = append(scr.invs, r.Payload.(*invPayload).inv)
		}
		for i := range scr.inv.Frames {
			scr.inv.Frames[i] = nil
		}
		scr.inv.Frames = scr.inv.Frames[:0]
		scr.inv.PerRaw = scr.inv.PerRaw[:0]
		scr.inv.Raw, scr.inv.ReadyUS = 0, 0
		inv = pipeline.MergeInvocationsInto(&scr.inv, scr.invs)
		if named {
			scr.ids = scr.ids[:0]
			for _, r := range batch {
				scr.ids = append(scr.ids, r.Session)
			}
			tag = strings.Join(scr.ids, "+")
		}
		defer func() {
			for i := range scr.invs {
				scr.invs[i] = nil
			}
			s.dispatchScr.Put(scr)
		}()
	}
	if s.tracer == nil {
		return pipeline.ScheduleOnEngine(s.engine, s.model, first.net, &first.plan, inv, tag)
	}
	// Traced dispatch: the execution observer folds the per-layer
	// callbacks into one busy span per device (first layer start to
	// last layer end on that device, Count = layers) plus the UM-bus
	// transfers; afterwards each batch member gets a coalesce-wait
	// span from its own readiness to the batch's first engine start
	// (early members pay the coalescing delay — exactly the
	// latency/throughput trade the batch window bounds).
	devs := make([]devExtent, len(s.devTracks))
	execStart := -1.0
	end := pipeline.ScheduleOnEngineObs(s.engine, s.model, first.net, &first.plan, inv, tag,
		func(dev int, name string, startUS, endUS float64, um bool) {
			if um {
				s.umTrack.Span(obs.StageComms, name, startUS, endUS, 0)
				return
			}
			if execStart < 0 || startUS < execStart {
				execStart = startUS
			}
			d := &devs[dev]
			if d.layers == 0 || startUS < d.start {
				d.start = startUS
			}
			if endUS > d.end {
				d.end = endUS
			}
			d.layers++
		})
	if execStart >= 0 {
		name := "batch:" + tag
		for i := range devs {
			if devs[i].layers > 0 {
				s.devTrackH[i].Span(obs.StageExec, name, devs[i].start, devs[i].end, devs[i].layers)
			}
		}
		for _, r := range batch {
			p := r.Payload.(*invPayload)
			p.trackH.Span(obs.StageBatch, name, p.inv.ReadyUS, execStart, int64(r.Units))
		}
	}
	return end
}

// devExtent accumulates one device's busy extent across a dispatch's
// per-layer execution callbacks.
type devExtent struct {
	start, end float64
	layers     int64
}

// observeDispatch is the scheduler's post-dispatch hook under tracing:
// one instant per micro-batch on the scheduler track, carrying the
// member count in its name and the raw-frame units in Count — the
// occupancy signal, span-aligned with the exec spans it produced.
func (s *Server) observeDispatch(batch []*sched.Request, endUS float64) {
	var units int64
	for _, r := range batch {
		units += int64(r.Units)
	}
	s.schedTrack.Instant(obs.StageCtl, dispatchName(len(batch)), endUS, units)
}

// dispatchNames caches the scheduler-instant labels for common batch
// sizes so observeDispatch never formats in the dispatch path.
var dispatchNames = [...]string{
	"dispatch[0]", "dispatch[1]", "dispatch[2]", "dispatch[3]",
	"dispatch[4]", "dispatch[5]", "dispatch[6]", "dispatch[7]",
	"dispatch[8]", "dispatch[9]", "dispatch[10]", "dispatch[11]",
	"dispatch[12]", "dispatch[13]", "dispatch[14]", "dispatch[15]",
	"dispatch[16]",
}

func dispatchName(n int) string {
	if n >= 0 && n < len(dispatchNames) {
		return dispatchNames[n]
	}
	return "dispatch[" + strconv.Itoa(n) + "]"
}

// complete is the scheduler's completion callback for one session
// submission: attribute per-raw-frame latencies in stream time,
// advance the session's virtual hardware-available clock, and
// re-schedule the session so DSFA buckets that became stale under the
// new clock get drained. A session already handed off to the closed
// roll-up folds its latency deltas into the server totals directly.
func (s *Server) complete(sess *Session, perRaw []pipeline.RawRef, engEnd float64) {
	sess.mu.Lock()
	end := engEnd - sess.epochUS
	var dCount uint64
	var dSum float64
	for _, rr := range perRaw {
		lat := end - rr.ReadyUS
		for k := 0; k < rr.N; k++ {
			sess.lat.observe(lat)
		}
		dCount += uint64(rr.N)
		dSum += lat * float64(rr.N)
	}
	if s.tracer != nil {
		// End-to-end frame spans: stream readiness to completion, in
		// engine time so they nest under the session's other lanes.
		sess.trackH.SpansFunc(obs.StageFrame, "frame", len(perRaw),
			func(i int) (float64, float64, int64) {
				rr := perRaw[i]
				return rr.ReadyUS + sess.epochUS, end - rr.ReadyUS, int64(rr.N)
			})
	}
	advanced := false
	if end > sess.clockUS {
		sess.clockUS = end
		advanced = true
	}
	var resultEv ResultEvent
	var resultAck uint64
	if sess.journal != nil && dCount > 0 {
		// One journaled result per completed batch: completion instant in
		// stream time, mean per-raw latency, raw frames served. The
		// append wakes SSE subscribers; the ack sweep keeps the chunk
		// watermark fresh for replica trimming.
		resultEv = ResultEvent{DoneUS: end, LatUS: dSum / float64(dCount), Frames: int(dCount)}
		resultEv.Seq = sess.journal.appendResult(resultEv.DoneUS, resultEv.LatUS, resultEv.Frames)
		resultAck = sess.journal.ack(sess.completedLocked())
	}
	tallied := sess.tallied
	sess.mu.Unlock()
	if resultEv.Seq > 0 && s.cfg.OnResult != nil {
		// Outside sess.mu: the hook takes cluster-side locks to ship the
		// result to the buddy node.
		s.cfg.OnResult(sess.ID, resultEv, resultAck)
	}
	if tallied && dCount > 0 {
		s.totalsMu.Lock()
		s.closedTotals.Merge(SessionTotals{LatencyCount: dCount, LatencySumUS: dSum})
		s.totalsMu.Unlock()
	}
	if advanced {
		s.schedule(sess)
	}
}

// adaptLocked runs one retune decision for the session; callers hold
// sess.mu. Decisions are rate-limited by the controller itself
// (DecideEveryUS of stream time), so calling per invocation is cheap.
func (s *Server) adaptLocked(sess *Session) {
	if sess.retuner == nil {
		return
	}
	if cfg, ok := sess.retuner.Observe(sess.sampleLocked()); ok {
		// The derived tuning is valid by construction; a failed retune
		// would leave the old tuning in place, which is safe.
		if sess.stepper.Retune(cfg) == nil {
			s.ctlTrack.Instant(obs.StageCtl, "retune:"+sess.ID, sess.clockUS+sess.epochUS, 1)
		}
	}
}

// CreateSession registers a session programmatically (the HTTP create
// handler goes through here too) and rebalances placement.
func (s *Server) CreateSession(cfg SessionConfig) (*Session, error) {
	if s.stoppedNow() {
		return nil, ErrServerClosed
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	net, err := nn.ByName(cfg.Network)
	if err != nil {
		return nil, err
	}
	if cfg.Level < 0 || cfg.Level > int(pipeline.LevelNMP) {
		return nil, fmt.Errorf("serve: level %d outside 0-%d", cfg.Level, int(pipeline.LevelNMP))
	}
	policy, err := ParseDropPolicy(cfg.DropPolicy)
	if err != nil {
		return nil, err
	}
	if cfg.DropPolicy == "" {
		policy = s.cfg.DropPolicy
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = s.cfg.QueueCap
	}
	level := pipeline.Level(cfg.Level)
	plan, err := pipeline.DefaultPlan(net, s.cfg.Platform, level >= pipeline.LevelE2SF)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("s%d", s.nextID.Add(1))
	var retuner *control.Retuner
	if s.cfg.Adapt.Retune && level >= pipeline.LevelDSFA {
		retuner = control.NewRetuner(s.cfg.Adapt.DSFA, pipeline.TunedDSFA(net))
	}
	sess, err := newSession(id, net, level, queueCap, policy, plan, retuner, s.arena, s.invPool)
	if err != nil {
		return nil, err
	}
	sess.epochUS = s.engine.Makespan()
	sess.tracer = s.tracer
	sess.trackH = s.tracer.Track(sess.track)
	if s.cfg.Journal {
		sess.journal = newJournal()
	}
	if s.kernels != nil {
		// Record the kernel-pool width in the plan (execution state that
		// survives remaps) and stand up the session's rulebook cache,
		// buffer-backed by the shared arena.
		sess.plan.SetParallel(s.kernels.Size())
		sess.rulebook = sparse.NewRulebookCache(0, 0)
		sess.rulebook.Borrow = s.arena.ActiveSets.Get
		sess.rulebook.Release = s.arena.ActiveSets.Put
		sess.subLayers = countSubmanifoldEligible(net)
	}
	s.sessMu.Lock()
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.placeGen++
	s.sessMu.Unlock()
	if err := s.rebalance(); err != nil {
		// Placement failure must not leak a half-created session.
		s.sessMu.Lock()
		delete(s.sessions, id)
		s.removeFromOrderLocked(id)
		s.placeGen++
		s.sessMu.Unlock()
		return nil, err
	}
	return sess, nil
}

// countSubmanifoldEligible counts the network's layers whose geometry
// admits the rulebook-driven submanifold kernel (stride 1, odd K, same
// padding) — the layers a cached ActiveSet saves a dense activity
// rescan for on every frame.
func countSubmanifoldEligible(net *nn.Network) int {
	n := 0
	for _, l := range net.Layers {
		if l.Kind == nn.Conv && l.Stride == 1 && l.K%2 == 1 && l.Pad == l.K/2 {
			n++
		}
	}
	return n
}

// removeFromOrderLocked drops one ID from the active placement order.
func (s *Server) removeFromOrderLocked(id string) {
	for i := range s.order {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// CloseSession flushes and closes a session, rebalances the remaining
// ones, and returns the final snapshot.
func (s *Server) CloseSession(id string) (*SessionSnapshot, error) {
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.sessMu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	sess.mu.Lock()
	alreadyClosed := sess.closed
	sess.closed = true
	var tail []*sparse.Frame
	var err error
	if !alreadyClosed {
		tail, err = sess.conv.flush()
		// Flushed partial frames are E2SF output like any other: count
		// them, or frame conservation (frames_in == done + dropped +
		// in-flight) breaks by one per count-framed close.
		sess.framesIn += uint64(len(tail))
	}
	sess.mu.Unlock()
	s.sessMu.Unlock()
	if !alreadyClosed {
		// Drain whatever ingest left behind, then flush the aggregator —
		// even when the converter flush or the rebalance fails, so a
		// failed close never strands queued frames behind a session that
		// now rejects ingest.
		tail = append(sess.queue.drain(0), tail...)
		s.execute(sess, tail, true)
		// Settle the session's scheduler backlog before taking finals:
		// the flush submissions must complete (latencies observed, clock
		// advanced) so the terminal snapshot is whole. Under ManualDrain
		// this pumps inline; on a live server it hurries the dispatchers.
		s.sched.Wait(sess.ID)
		// Hand the session from the active roll-up to the closed one in
		// a single sessMu critical section (sessMu -> sess.mu, the same
		// order the create/close paths use): the tallied flag and the
		// final snapshot are taken under sess.mu, so a worker execute is
		// either serialized before them (its counters are in the
		// snapshot) or sees tallied and folds its own deltas into
		// closedTotals after the session has already left s.order.
		// Concurrent Totals()/scrapes block on sessMu through the
		// handoff and so can never see the session in neither roll-up
		// (a counter dip) or in both (a double count).
		s.sessMu.Lock()
		sess.mu.Lock()
		sess.tallied = true
		final := sess.snapshotLocked()
		sess.mu.Unlock()
		s.removeFromOrderLocked(id)
		s.placeGen++
		// Retain a bounded closed-session history for stats; evict the
		// oldest so a long-lived server's memory and /metrics stay flat.
		s.closedOrder = append(s.closedOrder, id)
		for len(s.closedOrder) > s.cfg.MaxClosed {
			delete(s.sessions, s.closedOrder[0])
			s.closedOrder = s.closedOrder[1:]
		}
		s.totalsMu.Lock()
		s.closedTotals.add(final)
		s.totalsMu.Unlock()
		// The emit-once queue is bounded like the retained history: on a
		// server nobody scrapes, only the newest MaxClosed finals are
		// kept (their counters live on in closedTotals regardless).
		s.closedUnscraped = append(s.closedUnscraped, final)
		if len(s.closedUnscraped) > s.cfg.MaxClosed {
			s.closedUnscraped = s.closedUnscraped[len(s.closedUnscraped)-s.cfg.MaxClosed:]
		}
		s.sessMu.Unlock()
		if sess.journal != nil {
			// Final results are journaled (sched.Wait above); mark the
			// stream complete so SSE subscribers drain and finish.
			sess.journal.close()
		}
		if sess.rulebook != nil {
			// Hand the rulebook's ActiveSet buffers back to the arena.
			// Late executes observe sess.closed under sess.mu and skip the
			// cache, so nothing borrows after this.
			sess.rulebook.Close()
		}
		if rerr := s.rebalance(); rerr != nil && err == nil {
			err = rerr
		}
	}
	if err != nil {
		return nil, err
	}
	snap := sess.snapshot()
	return &snap, nil
}

// Session returns a session by ID.
func (s *Server) Session(id string) (*Session, bool) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Ingest pushes one event chunk into a session and wakes a worker —
// the programmatic twin of the HTTP ingest endpoint, used by the
// cluster router to proxy without a loopback connection.
func (s *Server) Ingest(id string, chunk *events.Stream) (IngestResult, error) {
	if s.stoppedNow() {
		// A closed server's queues will never drain again; rejecting here
		// (instead of queueing onto the corpse) is what lets the cluster
		// retry the chunk against the failed-over session.
		return IngestResult{}, ErrServerClosed
	}
	sess, ok := s.Session(id)
	if !ok {
		return IngestResult{}, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	res, err := sess.ingest(chunk)
	if err != nil {
		return res, err
	}
	if res.Frames > 0 {
		s.schedule(sess)
	}
	return res, nil
}

// Snapshot returns a session's observable state by ID.
func (s *Server) Snapshot(id string) (SessionSnapshot, error) {
	sess, ok := s.Session(id)
	if !ok {
		return SessionSnapshot{}, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return sess.snapshot(), nil
}

// Snapshots returns every retained session (active and closed) in
// creation order.
func (s *Server) Snapshots() []SessionSnapshot {
	s.sessMu.Lock()
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.sessMu.Unlock()
	snaps := make([]SessionSnapshot, len(all))
	for i, sess := range all {
		snaps[i] = sess.snapshot()
	}
	// Creation order: IDs are "s<counter>", so shorter IDs come first
	// and equal lengths compare lexicographically (s2 before s10).
	sort.Slice(snaps, func(i, j int) bool {
		a, b := snaps[i].ID, snaps[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return snaps
}

// activeSessionsLocked returns the active sessions in creation order;
// callers hold sessMu.
func (s *Server) activeSessionsLocked() []*Session {
	active := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		active = append(active, s.sessions[id])
	}
	return active
}

// activeSessions is the unlocked convenience wrapper.
func (s *Server) activeSessions() []*Session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.activeSessionsLocked()
}

// Totals returns the monotonic roll-up of session counters: every
// closed session's final numbers (eviction-independent) plus the
// active sessions' live ones. Fleet routers aggregate this instead of
// per-session snapshots.
func (s *Server) Totals() SessionTotals {
	s.sessMu.Lock()
	s.totalsMu.Lock()
	t := s.closedTotals
	s.totalsMu.Unlock()
	active := s.activeSessionsLocked()
	s.sessMu.Unlock()
	for _, sess := range active {
		t.add(sess.snapshot())
	}
	return t
}

// Signals returns the node's full telemetry snapshot — every active
// session's sample plus every device's load signal — the control
// plane's inputs, exposed for operators and the fleet router.
func (s *Server) Signals() control.Signals {
	devs, _ := s.deviceSignals()
	sig := control.Signals{Devices: devs}
	for _, sess := range s.activeSessions() {
		sess.mu.Lock()
		sig.Sessions = append(sig.Sessions, sess.sampleLocked())
		sess.mu.Unlock()
	}
	return sig
}

// deviceSignals snapshots per-device utilization, engine backlog and
// scheduler queue depth — the control plane's per-PE input, sourced
// from the execution scheduler's signals instead of ad-hoc engine
// reads. Backlog is measured relative to the least-backlogged device:
// at the makespan every absolute backlog is zero by definition, but
// the spread between device drain times is exactly the queue imbalance
// the remap gate wants to see. Queued adds the not-yet-dispatched
// invocations sitting in the scheduler's run queues.
func (s *Server) deviceSignals() ([]control.DeviceSignals, float64) {
	now := s.engine.Makespan()
	loads := s.engine.Loads(now)
	depths := s.sched.QueueDepths()
	busyUntil := make([]float64, len(s.cfg.Platform.Devices))
	minFree := 0.0
	for i, d := range s.cfg.Platform.Devices {
		busyUntil[i] = s.engine.BusyUntil(d)
		if i == 0 || busyUntil[i] < minFree {
			minFree = busyUntil[i]
		}
	}
	devs := make([]control.DeviceSignals, len(loads))
	for i, l := range loads {
		devs[i] = control.DeviceSignals{
			Device:      l.Device,
			Utilization: l.Utilization,
			BacklogUS:   busyUntil[i] - minFree,
			Queued:      depths[s.cfg.Platform.Devices[i].ID],
		}
	}
	return devs, now
}

// SchedStats exposes the execution scheduler's counters (dispatches,
// coalesced members, occupancy) for metrics and fleet aggregation.
func (s *Server) SchedStats() sched.Stats { return s.sched.Stats() }

// SetDraining toggles drain mode: a draining server refuses new
// sessions (ErrDraining) while existing sessions keep ingesting and
// executing. The cluster router drains a node before migrating its
// sessions away.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing new sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// Health returns the /healthz payload.
func (s *Server) Health() Health {
	s.sessMu.Lock()
	active := len(s.order)
	s.sessMu.Unlock()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	return Health{
		Status:         status,
		UptimeS:        time.Since(s.start).Seconds(),
		SessionsActive: active,
		SessionsTotal:  int(s.nextID.Load()),
		Workers:        s.cfg.Workers,
		Platform:       s.cfg.Platform.Name,
		Mapper:         string(s.cfg.Mapper),
	}
}

// Load returns the node-load signal a fleet router places against:
// active-session inference cost weighted by the platform's capacity.
func (s *Server) Load() NodeLoad {
	active := s.activeSessions()
	l := NodeLoad{SessionsActive: len(active), CapacityMACs: s.capacityMACs}
	for _, sess := range active {
		l.CostMACs += float64(sess.Net.TotalMACs())
		l.QueuedFrames += sess.queue.len()
	}
	if l.CapacityMACs > 0 {
		l.Utilization = l.CostMACs / l.CapacityMACs
	}
	for _, n := range s.sched.QueueDepths() {
		l.PendingInvocations += n
	}
	var minBusy, maxBusy float64
	for i, d := range s.cfg.Platform.Devices {
		b := s.engine.BusyUntil(d)
		if i == 0 || b < minBusy {
			minBusy = b
		}
		if b > maxBusy {
			maxBusy = b
		}
	}
	l.BacklogUS = maxBusy - minBusy
	return l
}

// Platform returns the platform model the server executes on.
func (s *Server) Platform() *hw.Platform { return s.cfg.Platform }

// ArenaStats snapshots the server's pool counters (frames, tensors,
// mats, CSRs) — the alloc-regression harness and /metrics read it.
func (s *Server) ArenaStats() mem.ArenaStats { return s.arena.Stats() }

// rebalance recomputes the placement of all active sessions under the
// configured policy and installs the per-session plans. The placement
// computation (which for MapperNMP is an evolutionary search taking
// real time) runs outside sessMu so ingest, stats and health traffic
// are never stalled behind it; a generation check detects a
// concurrently changed session set and retries.
func (s *Server) rebalance() error {
	for {
		s.sessMu.Lock()
		gen := s.placeGen
		active := s.activeSessionsLocked()
		s.sessMu.Unlock()
		if len(active) == 0 {
			return nil
		}
		nets := make([]*nn.Network, len(active))
		for i, sess := range active {
			nets[i] = sess.Net
		}
		var asg *taskgraph.Assignment
		var err error
		if s.cfg.Mapper == MapperNMP {
			asg, err = s.searchAssignment(nets)
		} else {
			asg, err = nmp.RRNetwork(nets, s.cfg.Platform)
		}
		if err != nil {
			return err
		}
		s.sessMu.Lock()
		if gen != s.placeGen {
			// The active set changed while we searched; recompute.
			s.sessMu.Unlock()
			continue
		}
		if err := s.installLocked(active, asg); err != nil {
			s.sessMu.Unlock()
			return err
		}
		s.sessMu.Unlock()
		return nil
	}
}

// installLocked installs a multi-task assignment over the active
// sessions' plan slots and records it as the warm-start seed. No-op
// plans (same mapping as installed) are skipped so they do not count
// as remaps. Callers hold sessMu with the generation verified.
func (s *Server) installLocked(active []*Session, asg *taskgraph.Assignment) error {
	for i, sess := range active {
		plan, err := pipeline.PlanFromAssignment(asg, i, sess.Level >= pipeline.LevelE2SF)
		if err != nil {
			return err
		}
		if plan.Equal(sess.plan.Load()) {
			continue
		}
		sess.plan.Swap(plan)
	}
	s.lastAsg = asg
	return nil
}

// maybeRemap runs one pass of the online remap loop: if device load
// signals show enough imbalance and the cooldown has expired, a
// warm-started incremental search (nmp.SearchFrom) runs from the live
// assignment, and its result is installed only when it predicts enough
// improvement. Called from workers after a drain pass; the planner's
// in-flight claim keeps it single-threaded.
func (s *Server) maybeRemap() {
	if s.planner == nil {
		return
	}
	// Cheap gate first: maybeRemap runs on every drain completion, and
	// during cooldown (or with a search in flight) the full signals
	// snapshot would be discarded anyway.
	clock := s.engine.Makespan()
	if !s.planner.Ready(clock) {
		return
	}
	devs, now := s.deviceSignals()
	if !s.planner.ShouldRemap(now, devs) {
		return
	}

	s.sessMu.Lock()
	gen := s.placeGen
	active := s.activeSessionsLocked()
	cur := s.lastAsg
	s.sessMu.Unlock()
	if cur == nil || len(active) == 0 || len(cur.Device) != len(active) {
		// No installed assignment to warm-start from (rebalance pending
		// or racing); release the claim and let the cooldown pace retry.
		s.planner.Done(now)
		return
	}

	nets := make([]*nn.Network, len(active))
	for i, sess := range active {
		nets[i] = sess.Net
	}
	mapper, err := s.buildMapper(nets)
	if err != nil {
		s.planner.Done(now)
		return
	}
	curLat, _, err := mapper.Predict(cur)
	if err != nil {
		s.planner.Done(now)
		return
	}
	res, err := mapper.SearchFrom(cur, s.planner.Budget())
	if err != nil {
		s.planner.Done(now)
		return
	}
	gain := 0.0
	if curLat > 0 {
		gain = (curLat - res.LatencyUS) / curLat
	}
	if !s.planner.Accept(curLat, res.LatencyUS) {
		s.planner.Done(now)
		return
	}

	s.sessMu.Lock()
	if gen != s.placeGen {
		// Session churn while searching: its rebalance installed a fresh
		// placement; drop this stale candidate.
		s.sessMu.Unlock()
		s.planner.Done(now)
		return
	}
	err = s.installLocked(active, res.Assignment)
	s.sessMu.Unlock()
	if err != nil {
		s.planner.Done(now)
		return
	}
	s.planner.Committed(now, gain)
	s.ctlTrack.Instant(obs.StageCtl, "remap", now, int64(len(active)))
}

// buildMapper profiles the workload and configures the Network Mapper
// with per-task Table 2 accuracy budgets — shared by the create/close
// rebalance (full search) and the online remap (warm-started search).
func (s *Server) buildMapper(nets []*nn.Network) (*nmp.Mapper, error) {
	db, err := perf.BuildProfileDB(s.model, nets, true, nil)
	if err != nil {
		return nil, err
	}
	ncfg := s.cfg.NMP
	if ncfg.Population == 0 {
		ncfg = serveNMPConfig()
	}
	mapper, err := nmp.NewMapper(db, s.model, ncfg)
	if err != nil {
		return nil, err
	}
	budgets := make([]float64, len(nets))
	for i, net := range nets {
		budgets[i] = quant.Table2Delta(net.Name)
	}
	if err := mapper.SetBudgets(budgets); err != nil {
		return nil, err
	}
	return mapper, nil
}

// searchAssignment runs the full Network Mapper search over the active
// workload.
func (s *Server) searchAssignment(nets []*nn.Network) (*taskgraph.Assignment, error) {
	mapper, err := s.buildMapper(nets)
	if err != nil {
		return nil, err
	}
	res, err := mapper.Search()
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding session config: %w", err))
		return
	}
	sess, err := s.CreateSession(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshots())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sess.snapshot())
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	snap, err := s.CloseSession(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoSession) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	chunk, err := DecodeChunk(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Ingest(r.PathValue("id"), chunk)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, ErrNoSession) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// Tracer returns the server's frame-lifecycle tracer, nil when
// tracing is off. Callers (cluster trace merging, the harness) treat
// nil as "no lanes to contribute".
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// StageHists snapshots the per-stage latency histograms; nil when
// tracing is off.
func (s *Server) StageHists() []obs.HistSnapshot {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Hists()
}

// WriteTrace renders the retained spans as Chrome trace-event JSON.
func (s *Server) WriteTrace(w io.Writer) error {
	if s.tracer == nil {
		return fmt.Errorf("serve: tracing disabled")
	}
	return obs.WriteChrome(w, s.tracer)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: tracing disabled (set Config.Trace.Enabled)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.WriteTrace(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pw := NewPromWriter()
	s.WriteMetrics(pw, "evserve", "")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(pw.String()))
}

// WriteMetrics renders the server's metrics into pw under the given
// metric namespace; extraLabels (pre-rendered `k="v",...`) are
// prepended to every labelled sample so a cluster can scope each
// node's series with a node label.
func (s *Server) WriteMetrics(pw *PromWriter, ns, extraLabels string) {
	lbls := func(kv ...string) string {
		l := PromLabels(kv...)
		switch {
		case extraLabels == "":
			return l
		case l == "":
			return extraLabels
		}
		return extraLabels + "," + l
	}
	s.sessMu.Lock()
	active := len(s.order)
	s.sessMu.Unlock()
	pw.Gauge(ns+"_uptime_seconds", "Server uptime.", lbls(), time.Since(s.start).Seconds())
	pw.Gauge(ns+"_sessions_active", "Sessions currently accepting events.", lbls(), float64(active))
	pw.Gauge(ns+"_sessions_total", "Sessions created since start.", lbls(), float64(s.nextID.Load()))
	makespan := s.engine.Makespan()
	pw.Gauge(ns+"_engine_makespan_us", "Virtual time the last device queue drains.", lbls(), makespan)
	depths := s.sched.QueueDepths()
	for _, d := range s.cfg.Platform.Devices {
		pw.Counter(ns+"_device_busy_us", "Accumulated busy time per device.",
			lbls("device", d.Name), s.engine.BusyTime(d))
		pw.Gauge(ns+"_sched_queue_depth", "Invocations waiting in the device's scheduler run queue.",
			lbls("device", d.Name), float64(depths[d.ID]))
	}
	st := s.sched.Stats()
	pw.Counter(ns+"_sched_submitted_total", "Invocations submitted to the execution scheduler.", lbls(), float64(st.Submitted))
	pw.Counter(ns+"_sched_dispatches_total", "Micro-batches dispatched on the engine.", lbls(), float64(st.Dispatches))
	pw.Counter(ns+"_sched_coalesced_total", "Invocations that rode a multi-member micro-batch.", lbls(), float64(st.Coalesced))
	pw.Gauge(ns+"_sched_batch_occupancy", "Mean invocations per dispatch (1 = serialized).", lbls(), st.Occupancy())
	pw.Gauge(ns+"_sched_batch_max_len", "Largest micro-batch dispatched so far.", lbls(), float64(st.MaxBatchLen))

	// Arena traffic: misses (Gets that allocated) should stay flat once
	// the pools warm up — a climbing miss counter under steady load is
	// the leak/regression signal the alloc gate watches.
	ast := s.arena.Stats()
	for _, p := range [...]struct {
		name string
		st   mem.PoolStats
	}{
		{"frames", ast.Frames}, {"tensors", ast.Tensors},
		{"mats", ast.Mats}, {"csrs", ast.CSRs},
		{"active_sets", ast.ActiveSets},
		{"invocations", s.invPool.Stats()}, {"requests", s.pendPool.Stats()},
	} {
		pw.Counter(ns+"_pool_gets_total", "Objects borrowed from the arena pool.", lbls("pool", p.name), float64(p.st.Gets))
		pw.Counter(ns+"_pool_misses_total", "Borrows that allocated because the free list was empty.", lbls("pool", p.name), float64(p.st.News))
		pw.Gauge(ns+"_pool_live", "Objects currently borrowed from the pool.", lbls("pool", p.name), float64(p.st.Live()))
	}

	if s.kernels != nil {
		// Parallel-path telemetry: pool dispatch traffic plus the
		// engine's out-of-band rulebook counters. All host-side cost —
		// none of it appears in virtual time.
		disp, inline := s.kernels.Stats()
		pw.Gauge(ns+"_kernel_pool_width", "Worker-pool width for tiled numeric kernels.", lbls(), float64(s.kernels.Size()))
		pw.Counter(ns+"_kernel_dispatches_total", "Sharded kernel dispatches run on the worker pool.", lbls(), float64(disp))
		pw.Counter(ns+"_kernel_inline_runs_total", "Kernel runs that executed inline on the caller.", lbls(), float64(inline))
		pw.Counter(ns+"_rulebook_hits_total", "Rulebook cache delta-revalidations across all sessions.", lbls(), float64(s.engine.Aux(hw.AuxRulebookHits)))
		pw.Counter(ns+"_rulebook_misses_total", "Rulebook cache full rebuilds across all sessions.", lbls(), float64(s.engine.Aux(hw.AuxRulebookMisses)))
		pw.Counter(ns+"_rulebook_saved_scan_elems_total", "Dense activity-scan elements avoided via cached rulebooks.", lbls(), float64(s.engine.Aux(hw.AuxRulebookSavedScans)))
	}

	if s.tracer != nil {
		// Per-stage latency histograms from the frame-lifecycle tracer:
		// one series per lifecycle stage that has observed anything.
		for _, h := range s.tracer.Hists() {
			if h.Count == 0 {
				continue
			}
			pw.Histogram(ns+"_stage_latency_us", "Frame-lifecycle stage latency (virtual us).",
				lbls("stage", h.Stage), obs.BucketBoundsUS, h.Counts, h.SumUS, h.Count)
		}
		pw.Counter(ns+"_trace_events_total", "Trace events recorded since start.", lbls(), float64(s.tracer.Recorded()))
		pw.Counter(ns+"_trace_events_dropped_total", "Trace events overwritten in full ring buffers.", lbls(), float64(s.tracer.Dropped()))
	}

	// One snapshot pass feeds both the totals and the per-session
	// series. Reading closedTotals and the active set under one lock
	// acquisition keeps the roll-up consistent with the close path's
	// atomic active->closed handoff.
	s.sessMu.Lock()
	s.totalsMu.Lock()
	totals := s.closedTotals
	s.totalsMu.Unlock()
	activeSessions := s.activeSessionsLocked()
	finals := s.closedUnscraped
	s.closedUnscraped = nil
	s.sessMu.Unlock()
	activeSnaps := make([]SessionSnapshot, len(activeSessions))
	for i, sess := range activeSessions {
		activeSnaps[i] = sess.snapshot()
		totals.add(activeSnaps[i])
	}

	// Monotonic server-wide totals: closed sessions are folded in at
	// close time, so these do not depend on retention or scrape timing.
	pw.Counter(ns+"_events_total", "Events ingested across all sessions ever.", lbls(), float64(totals.EventsIn))
	pw.Counter(ns+"_frames_total", "Sparse frames produced across all sessions ever.", lbls(), float64(totals.FramesIn))
	pw.Counter(ns+"_frames_dropped_total", "Frames shed by ingest queues across all sessions ever.", lbls(), float64(totals.FramesDropped))
	pw.Counter(ns+"_frames_dropped_dsfa_total", "Raw frames shed by DSFA queues across all sessions ever.", lbls(), float64(totals.FramesDroppedDSFA))
	pw.Counter(ns+"_invocations_total", "Inference launches across all sessions ever.", lbls(), float64(totals.Invocations))
	pw.Counter(ns+"_raw_frames_done_total", "Raw frames completed across all sessions ever.", lbls(), float64(totals.RawFramesDone))
	pw.Counter(ns+"_retunes_total", "DSFA retunes applied by the online controller.", lbls(), float64(totals.Retunes))
	pw.Counter(ns+"_remaps_total", "Execution plans installed after the first, all sessions ever.", lbls(), float64(totals.Remaps))

	if s.cfg.Journal {
		// Journal gauges: the live replication/catch-up state. Unacked
		// chunks bound how much a failover replay re-ingests; replica
		// counts show what this node holds on behalf of its buddies.
		var unacked, retained int
		var maxSeq uint64
		for _, sess := range activeSessions {
			if sess.journal == nil {
				continue
			}
			jst := sess.journal.stats()
			unacked += jst.Unacked
			retained += jst.Retained
			if jst.Seq > maxSeq {
				maxSeq = jst.Seq
			}
		}
		pw.Gauge(ns+"_journal_unacked_chunks", "Journal chunk entries not yet retired by the ack watermark.", lbls(), float64(unacked))
		pw.Gauge(ns+"_journal_results_retained", "Result events retained for SSE catch-up across active sessions.", lbls(), float64(retained))
		pw.Gauge(ns+"_journal_max_seq", "Highest journal sequence number assigned across active sessions.", lbls(), float64(maxSeq))
		rsess, rent := s.ReplicaStats()
		pw.Gauge(ns+"_journal_replica_sessions", "Sessions this node holds journal replicas for as a buddy.", lbls(), float64(rsess))
		pw.Gauge(ns+"_journal_replica_entries", "Replicated journal entries held for buddy sessions.", lbls(), float64(rent))
	}

	if s.planner != nil {
		searches, committed, lastGain := s.planner.Stats()
		pw.Counter(ns+"_control_remap_searches_total", "Warm-started NMP searches triggered by load imbalance.", lbls(), float64(searches))
		pw.Counter(ns+"_control_remaps_total", "Warm-started remaps that predicted enough gain to install.", lbls(), float64(committed))
		pw.Gauge(ns+"_control_remap_last_gain", "Fractional predicted-latency gain of the last installed remap.", lbls(), lastGain)
		pw.Gauge(ns+"_control_remap_cooldown_us", "Virtual time until the next remap is allowed.", lbls(), s.planner.CooldownRemainingUS(makespan))
	}

	// Per-session series: active sessions every scrape; a closed
	// session's final counters exactly once, on the first scrape after
	// its close (its contribution lives on in the *_total rollups).
	for _, snap := range append(activeSnaps, finals...) {
		lbl := lbls("session", snap.ID, "network", snap.Network)
		pw.Counter(ns+"_session_events_total", "Events ingested.", lbl, float64(snap.EventsIn))
		pw.Counter(ns+"_session_frames_total", "Sparse frames produced by E2SF.", lbl, float64(snap.FramesIn))
		pw.Counter(ns+"_session_frames_dropped_total", "Frames shed by the bounded ingest queue.", lbl, float64(snap.FramesDropped))
		pw.Counter(ns+"_session_frames_dropped_dsfa_total", "Raw frames shed by the DSFA inference queue.", lbl, float64(snap.FramesDroppedDSFA))
		pw.Counter(ns+"_session_invocations_total", "Inference launches after DSFA merging.", lbl, float64(snap.Invocations))
		pw.Counter(ns+"_session_raw_frames_done_total", "Raw frames whose inference completed.", lbl, float64(snap.RawFramesDone))
		pw.Counter(ns+"_session_retunes_total", "DSFA retunes applied to the session.", lbl, float64(snap.Retunes))
		pw.Counter(ns+"_session_remaps_total", "Plans installed for the session after the first.", lbl, float64(snap.Remaps))
		pw.Gauge(ns+"_session_queue_len", "Frames waiting in the ingest queue.", lbl, float64(snap.QueueLen))
		pw.Gauge(ns+"_session_throughput_fps", "Raw frames served per stream-second.", lbl, snap.ThroughputFPS)
		for q, v := range map[string]float64{"0.5": snap.Latency.P50US, "0.99": snap.Latency.P99US} {
			pw.Gauge(ns+"_session_latency_us", "Per-raw-frame latency (virtual us).",
				lbls("session", snap.ID, "network", snap.Network, "quantile", q), v)
		}
	}
}

// DecodeChunk parses an ingest body: JSON when the media type says
// so (parameters like charset are tolerated), EVAR binary otherwise.
// Exported so the cluster router can decode once and proxy the parsed
// stream to the owning node.
func DecodeChunk(contentType string, body io.Reader) (*events.Stream, error) {
	mt, _, err := mime.ParseMediaType(contentType)
	if err != nil {
		mt = ""
	}
	if mt == "application/json" {
		var c ChunkJSON
		if err := json.NewDecoder(body).Decode(&c); err != nil {
			return nil, fmt.Errorf("decoding JSON chunk: %w", err)
		}
		return c.Stream()
	}
	return events.ReadBinary(body)
}

// EventJSON is one AER event on the JSON wire format: p is 1 (ON) or
// -1/0 (OFF), matching the text codec's convention.
type EventJSON struct {
	X  uint16 `json:"x"`
	Y  uint16 `json:"y"`
	TS int64  `json:"ts"`
	P  int8   `json:"p"`
}

// ChunkJSON is the JSON ingest payload.
type ChunkJSON struct {
	Width  int         `json:"width"`
	Height int         `json:"height"`
	Events []EventJSON `json:"events"`
}

// Stream converts the JSON chunk to an event stream.
func (c *ChunkJSON) Stream() (*events.Stream, error) {
	if c.Width <= 0 || c.Height <= 0 {
		return nil, fmt.Errorf("serve: JSON chunk has no sensor geometry")
	}
	s := events.NewStream(c.Width, c.Height)
	s.Events = make([]events.Event, len(c.Events))
	for i, e := range c.Events {
		pol := events.Off
		if e.P == 1 {
			pol = events.On
		}
		s.Events[i] = events.Event{X: e.X, Y: e.Y, TS: e.TS, Pol: pol}
	}
	return s, nil
}

// ChunkFromStream converts an event stream to the JSON wire format.
func ChunkFromStream(s *events.Stream) *ChunkJSON {
	c := &ChunkJSON{Width: s.Width, Height: s.Height, Events: make([]EventJSON, len(s.Events))}
	for i, e := range s.Events {
		p := int8(-1)
		if e.Pol == events.On {
			p = 1
		}
		c.Events[i] = EventJSON{X: e.X, Y: e.Y, TS: e.TS, P: p}
	}
	return c
}
