package serve

import (
	"bytes"
	"mime"
	"testing"

	"evedge/internal/events"
)

// FuzzDecodeChunk hammers the ingest-body decoder — the first code
// that touches untrusted client bytes on a serving node — across both
// wire formats (content-type selects JSON vs EVAR binary). It must
// never panic; accepted JSON chunks must carry positive geometry
// (DecodeChunk's contract with the session converter).
func FuzzDecodeChunk(f *testing.F) {
	s := events.NewStream(8, 6)
	s.Append(events.Event{X: 1, Y: 2, TS: 100, Pol: events.On})
	var bin bytes.Buffer
	if err := events.WriteBinary(&bin, s); err != nil {
		f.Fatal(err)
	}
	f.Add("application/octet-stream", bin.Bytes())
	f.Add("", bin.Bytes()[:7])
	f.Add("application/json", []byte(`{"width":8,"height":6,"events":[{"x":1,"y":2,"ts":100,"p":1}]}`))
	f.Add("application/json", []byte(`{"width":-1,"height":6,"events":[]}`))
	f.Add("application/json; charset=utf-8", []byte(`{"width":8,"height":6}`))
	f.Add("application/json", []byte(`{`))
	f.Add("text/plain;;;", []byte("garbage"))

	f.Fuzz(func(t *testing.T, contentType string, body []byte) {
		s, err := DecodeChunk(contentType, bytes.NewReader(body))
		if err != nil {
			return
		}
		if mt, _, merr := mime.ParseMediaType(contentType); merr == nil && mt == "application/json" {
			if s.Width <= 0 || s.Height <= 0 {
				t.Fatalf("accepted JSON chunk with geometry %dx%d", s.Width, s.Height)
			}
		}
	})
}
