package serve

import (
	"bytes"
	"math"
	"mime"
	"testing"

	"evedge/internal/events"
)

// FuzzDecodeChunk hammers the ingest-body decoder — the first code
// that touches untrusted client bytes on a serving node — across both
// wire formats (content-type selects JSON vs EVAR binary). It must
// never panic; accepted JSON chunks must carry positive geometry
// (DecodeChunk's contract with the session converter).
func FuzzDecodeChunk(f *testing.F) {
	s := events.NewStream(8, 6)
	s.Append(events.Event{X: 1, Y: 2, TS: 100, Pol: events.On})
	var bin bytes.Buffer
	if err := events.WriteBinary(&bin, s); err != nil {
		f.Fatal(err)
	}
	f.Add("application/octet-stream", bin.Bytes())
	f.Add("", bin.Bytes()[:7])
	f.Add("application/json", []byte(`{"width":8,"height":6,"events":[{"x":1,"y":2,"ts":100,"p":1}]}`))
	f.Add("application/json", []byte(`{"width":-1,"height":6,"events":[]}`))
	f.Add("application/json; charset=utf-8", []byte(`{"width":8,"height":6}`))
	f.Add("application/json", []byte(`{`))
	f.Add("text/plain;;;", []byte("garbage"))

	f.Fuzz(func(t *testing.T, contentType string, body []byte) {
		s, err := DecodeChunk(contentType, bytes.NewReader(body))
		if err != nil {
			return
		}
		if mt, _, merr := mime.ParseMediaType(contentType); merr == nil && mt == "application/json" {
			if s.Width <= 0 || s.Height <= 0 {
				t.Fatalf("accepted JSON chunk with geometry %dx%d", s.Width, s.Height)
			}
		}
	})
}

// FuzzDecodeJournalEntry hammers the journal replication codec — the
// bytes a buddy node stores and replays at failover. It must never
// panic on hostile input (the chunk payload inherits the EVAR reader's
// bounded preallocation), and every accepted entry must survive a
// re-encode/re-decode round trip unchanged: replayed sessions are only
// as good as the codec's fidelity.
func FuzzDecodeJournalEntry(f *testing.F) {
	s := events.NewStream(8, 6)
	s.Append(events.Event{X: 1, Y: 2, TS: 100, Pol: events.On})
	if enc, err := EncodeJournalChunk(3, s); err == nil {
		f.Add(enc)
		f.Add(enc[:journalHeaderSize+2])
	}
	if enc, err := EncodeJournalResult(ResultEvent{Seq: 9, DoneUS: 1500, LatUS: 42.5, Frames: 4}); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)-1])
	}
	f.Add([]byte(journalMagic))
	f.Add([]byte("XXXXgarbage that is not a journal entry"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := DecodeJournalEntry(data)
		if err != nil {
			return
		}
		var reenc []byte
		switch ent.Kind {
		case JournalChunk:
			reenc, err = EncodeJournalChunk(ent.Seq, ent.Chunk)
		case JournalResult:
			reenc, err = EncodeJournalResult(ent.Result)
		default:
			t.Fatalf("decoder accepted unknown kind %d", ent.Kind)
		}
		if err != nil {
			t.Fatalf("accepted entry failed to re-encode: %v", err)
		}
		ent2, err := DecodeJournalEntry(reenc)
		if err != nil {
			t.Fatalf("re-encoded entry rejected: %v", err)
		}
		if ent2.Kind != ent.Kind || ent2.Seq != ent.Seq {
			t.Fatalf("round trip changed header: %+v vs %+v", ent, ent2)
		}
		switch ent.Kind {
		case JournalChunk:
			a, b := ent.Chunk, ent2.Chunk
			if a.Width != b.Width || a.Height != b.Height || len(a.Events) != len(b.Events) {
				t.Fatalf("round trip changed chunk shape: %dx%d/%d vs %dx%d/%d",
					a.Width, a.Height, len(a.Events), b.Width, b.Height, len(b.Events))
			}
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					t.Fatalf("round trip changed event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
				}
			}
		case JournalResult:
			// Bit-level float comparison so NaN payloads still round-trip.
			a, b := ent.Result, ent2.Result
			if a.Seq != b.Seq || a.Frames != b.Frames ||
				math.Float64bits(a.DoneUS) != math.Float64bits(b.DoneUS) ||
				math.Float64bits(a.LatUS) != math.Float64bits(b.LatUS) {
				t.Fatalf("round trip changed result: %+v vs %+v", a, b)
			}
		}
	})
}
