//go:build !linux

package serve

import "time"

// cpuSeconds falls back to the wall clock where the POSIX process CPU
// clock is not available; overhead ratios are then best-effort.
func cpuSeconds() float64 { return float64(time.Now().UnixNano()) * 1e-9 }
