//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so the zero-alloc bound only holds
// without it.
const raceEnabled = false
