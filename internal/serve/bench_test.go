package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/scene"
)

// benchWorkload is the fixed multi-session shape both sides of the
// serialized-vs-batched comparison run: N same-network sessions (their
// round-robin plans collide pairwise on the platform's devices, so
// compatible invocations exist every drain round) streaming
// deterministic synthetic event chunks through a ManualDrain server.
type benchWorkload struct {
	Sessions int    `json:"sessions"`
	DurUS    int64  `json:"dur_us"`
	ChunkUS  int64  `json:"chunk_us"`
	Network  string `json:"network"`
}

func defaultBenchWorkload() benchWorkload {
	return benchWorkload{Sessions: 9, DurUS: 400_000, ChunkUS: 20_000, Network: nn.SpikeFlowNet}
}

// benchOutcome is one side of the comparison. The headline metric is
// virtual throughput — raw frames completed per second of simulated
// hardware time: micro-batching pays the per-launch overhead once per
// batch and fills narrow kernels, so the same workload occupies the
// accelerators for less virtual time. Wall time (the scheduling code
// itself) rides along as a sanity column.
type benchOutcome struct {
	BatchMax       int     `json:"batch_max"`
	WallSeconds    float64 `json:"wall_seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	RawFramesDone  uint64  `json:"raw_frames_done"`
	FramesPerSec   float64 `json:"frames_per_wall_sec"`
	MakespanUS     float64 `json:"engine_makespan_us"`
	VirtualFPS     float64 `json:"frames_per_virtual_sec"`
	P50US          float64 `json:"sim_p50_us"`
	P99US          float64 `json:"sim_p99_us"`
	Occupancy      float64 `json:"batch_occupancy"`
	Dispatches     uint64  `json:"dispatches"`
}

// runBenchWorkload streams the workload through a fresh server with
// the given micro-batch cap and returns the outcome. ManualDrain keeps
// it deterministic (and single-threaded, so wall time measures the
// scheduling/pricing work itself, not goroutine luck).
func runBenchWorkload(tb testing.TB, w benchWorkload, batchMax int) benchOutcome {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.BatchMax = batchMax
	srv, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	defer srv.Close()

	net := nn.MustByName(w.Network)
	ids := make([]string, w.Sessions)
	var all [][]*events.Stream
	for i := 0; i < w.Sessions; i++ {
		sess, err := srv.CreateSession(SessionConfig{Network: w.Network, Level: 2})
		if err != nil {
			tb.Fatalf("CreateSession: %v", err)
		}
		ids[i] = sess.ID
		seq, err := scene.NewSequence(net.Input.Preset, scene.Half, int64(100+i))
		if err != nil {
			tb.Fatalf("NewSequence: %v", err)
		}
		stream, err := seq.Generate(w.DurUS)
		if err != nil {
			tb.Fatalf("Generate: %v", err)
		}
		all = append(all, chunks(stream, w.DurUS, w.ChunkUS))
	}

	// Time only the execution path — queue drain, scheduling, dispatch,
	// completion — not the E2SF event conversion in Ingest, which is
	// identical on both sides of the comparison and would otherwise
	// drown the dispatch cost it exists to measure.
	var execT time.Duration
	rounds := len(all[0])
	for r := 0; r < rounds; r++ {
		for i, id := range ids {
			if all[i][r].Len() == 0 {
				continue
			}
			if _, err := srv.Ingest(id, all[i][r]); err != nil {
				tb.Fatalf("Ingest: %v", err)
			}
		}
		t0 := time.Now()
		srv.Pump()
		execT += time.Since(t0)
	}
	out := benchOutcome{BatchMax: batchMax}
	t0 := time.Now()
	for _, id := range ids {
		fin, err := srv.CloseSession(id)
		if err != nil {
			tb.Fatalf("CloseSession: %v", err)
		}
		out.RawFramesDone += fin.RawFramesDone
		out.P50US += fin.Latency.P50US / float64(len(ids))
		if fin.Latency.P99US > out.P99US {
			out.P99US = fin.Latency.P99US
		}
	}
	execT += time.Since(t0)
	out.WallSeconds = execT.Seconds()
	out.MakespanUS = srv.engine.Makespan()
	st := srv.SchedStats()
	out.Occupancy = st.Occupancy()
	out.Dispatches = st.Dispatches
	if out.WallSeconds > 0 {
		out.FramesPerSec = float64(out.RawFramesDone) / out.WallSeconds
		out.SessionsPerSec = float64(w.Sessions) / out.WallSeconds
	}
	if out.MakespanUS > 0 {
		out.VirtualFPS = float64(out.RawFramesDone) / (out.MakespanUS * 1e-6)
	}
	return out
}

// BenchmarkMultiSessionSerialized is the BatchMax=1 baseline: every
// invocation dispatches alone (the old lock-the-engine behaviour,
// minus the lock).
func BenchmarkMultiSessionSerialized(b *testing.B) {
	w := defaultBenchWorkload()
	for i := 0; i < b.N; i++ {
		out := runBenchWorkload(b, w, 1)
		b.ReportMetric(out.VirtualFPS, "vframes/s")
	}
}

// BenchmarkMultiSessionBatched coalesces compatible cross-session
// invocations into micro-batches (BatchMax=8).
func BenchmarkMultiSessionBatched(b *testing.B) {
	w := defaultBenchWorkload()
	for i := 0; i < b.N; i++ {
		out := runBenchWorkload(b, w, 8)
		b.ReportMetric(out.VirtualFPS, "vframes/s")
		b.ReportMetric(out.Occupancy, "occupancy")
	}
}

// serveBenchReport is the BENCH_serve.json schema: the perf trajectory
// artifact `make bench-json` emits and CI uploads.
type serveBenchReport struct {
	Workload   benchWorkload `json:"workload"`
	Serialized benchOutcome  `json:"serialized"`
	Batched    benchOutcome  `json:"batched"`
	// Speedup is the batched-over-serialized virtual-throughput ratio
	// (equivalently, the makespan reduction for the same workload) —
	// deterministic, unlike wall time.
	Speedup float64 `json:"speedup"`
}

// TestServeBenchJSON runs the serialized-vs-batched comparison and
// writes BENCH_serve.json to the path in the BENCH_JSON environment
// variable (skipped when unset — `make bench-json` is the entry
// point). Occupancy assertions are deterministic; the wall-clock
// speedup is recorded, not asserted, so a noisy CI box cannot flake
// the suite.
func TestServeBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; run via `make bench-json`")
	}
	w := defaultBenchWorkload()
	rep := serveBenchReport{Workload: w}
	rep.Serialized = runBenchWorkload(t, w, 1)
	rep.Batched = runBenchWorkload(t, w, 8)
	if rep.Serialized.VirtualFPS > 0 {
		rep.Speedup = rep.Batched.VirtualFPS / rep.Serialized.VirtualFPS
	}
	if rep.Speedup <= 1 {
		t.Errorf("batched virtual throughput %.0f <= serialized %.0f (speedup %.3f): micro-batching must amortize launch overhead",
			rep.Batched.VirtualFPS, rep.Serialized.VirtualFPS, rep.Speedup)
	}
	if rep.Serialized.Occupancy != 1 {
		t.Errorf("serialized occupancy %f, want exactly 1", rep.Serialized.Occupancy)
	}
	if rep.Batched.Occupancy <= 1 {
		t.Errorf("batched occupancy %f, want > 1 (no coalescing happened)", rep.Batched.Occupancy)
	}
	// Under saturation the serialized side backs up more and its DSFA
	// queues shed more; batching must never complete *less* work.
	if rep.Batched.RawFramesDone < rep.Serialized.RawFramesDone {
		t.Errorf("batched completed %d raw frames, serialized %d — batching must not lose work",
			rep.Batched.RawFramesDone, rep.Serialized.RawFramesDone)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-json: serialized %.0f vframes/s, batched %.0f vframes/s (%.2fx), p99 %.0f -> %.0f us, occupancy %.2f -> %s\n",
		rep.Serialized.VirtualFPS, rep.Batched.VirtualFPS, rep.Speedup,
		rep.Serialized.P99US, rep.Batched.P99US, rep.Batched.Occupancy, path)
}
