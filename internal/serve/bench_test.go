package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/scene"
)

// benchWorkload is the fixed multi-session shape both sides of the
// serialized-vs-batched comparison run: N same-network sessions (their
// round-robin plans collide pairwise on the platform's devices, so
// compatible invocations exist every drain round) streaming
// deterministic synthetic event chunks through a ManualDrain server.
type benchWorkload struct {
	Sessions int    `json:"sessions"`
	DurUS    int64  `json:"dur_us"`
	ChunkUS  int64  `json:"chunk_us"`
	Network  string `json:"network"`
}

func defaultBenchWorkload() benchWorkload {
	return benchWorkload{Sessions: 9, DurUS: 400_000, ChunkUS: 20_000, Network: nn.SpikeFlowNet}
}

// benchOutcome is one side of the comparison. The headline metric is
// virtual throughput — raw frames completed per second of simulated
// hardware time: micro-batching pays the per-launch overhead once per
// batch and fills narrow kernels, so the same workload occupies the
// accelerators for less virtual time. Wall time (the scheduling code
// itself) rides along as a sanity column.
type benchOutcome struct {
	BatchMax    int     `json:"batch_max"`
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the execution path's process CPU time (see
	// cpuSeconds): the preemption-immune base for overhead ratios.
	CPUSeconds     float64 `json:"cpu_seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	RawFramesDone  uint64  `json:"raw_frames_done"`
	FramesPerSec   float64 `json:"frames_per_wall_sec"`
	MakespanUS     float64 `json:"engine_makespan_us"`
	VirtualFPS     float64 `json:"frames_per_virtual_sec"`
	P50US          float64 `json:"sim_p50_us"`
	P99US          float64 `json:"sim_p99_us"`
	Occupancy      float64 `json:"batch_occupancy"`
	Dispatches     uint64  `json:"dispatches"`
}

// runBenchWorkload streams the workload through a fresh server with
// the given micro-batch cap and returns the outcome. ManualDrain keeps
// it deterministic (and single-threaded, so wall time measures the
// scheduling/pricing work itself, not goroutine luck).
func runBenchWorkload(tb testing.TB, w benchWorkload, batchMax int) benchOutcome {
	tb.Helper()
	return runBenchWorkloadTraced(tb, w, batchMax, false)
}

// benchStreams generates the workload's per-session chunked event
// streams once; rounds of the overhead guard replay the same streams,
// because scene generation costs ~1000x the serving path it feeds.
func benchStreams(tb testing.TB, w benchWorkload) [][]*events.Stream {
	tb.Helper()
	net := nn.MustByName(w.Network)
	var all [][]*events.Stream
	for i := 0; i < w.Sessions; i++ {
		seq, err := scene.NewSequence(net.Input.Preset, scene.Half, int64(100+i))
		if err != nil {
			tb.Fatalf("NewSequence: %v", err)
		}
		stream, err := seq.Generate(w.DurUS)
		if err != nil {
			tb.Fatalf("Generate: %v", err)
		}
		all = append(all, chunks(stream, w.DurUS, w.ChunkUS))
	}
	return all
}

// runBenchWorkloadTraced is runBenchWorkload with the frame-lifecycle
// tracer optionally enabled — the two sides of the tracing-overhead
// guard (TestObsBenchJSON) and the behavior-neutrality check.
func runBenchWorkloadTraced(tb testing.TB, w benchWorkload, batchMax int, trace bool) benchOutcome {
	tb.Helper()
	return runBenchStreams(tb, w, batchMax, trace, benchStreams(tb, w))
}

// runBenchStreams streams pre-generated chunks through a fresh server.
func runBenchStreams(tb testing.TB, w benchWorkload, batchMax int, trace bool, all [][]*events.Stream) benchOutcome {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.BatchMax = batchMax
	if trace {
		// The default trace config — exactly what `evserve -trace` users
		// get, including the default 1-in-4 per-frame span sampling.
		cfg.Trace = obs.Config{Enabled: true, Node: "bench"}
	}
	srv, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	defer srv.Close()

	ids := make([]string, w.Sessions)
	for i := 0; i < w.Sessions; i++ {
		sess, err := srv.CreateSession(SessionConfig{Network: w.Network, Level: 2})
		if err != nil {
			tb.Fatalf("CreateSession: %v", err)
		}
		ids[i] = sess.ID
	}

	// Time only the execution path — queue drain, scheduling, dispatch,
	// completion — not the E2SF event conversion in Ingest, which is
	// identical on both sides of the comparison and would otherwise
	// drown the dispatch cost it exists to measure.
	// Ingest allocates heavily (E2SF conversion), so a collection cycle
	// it provoked can land inside a timed Pump window by luck — on a
	// single-core box the "concurrent" mark runs on the measured CPU.
	// Start from a collected heap and hold GC off during each window
	// (the debt is paid between windows, identically on both sides),
	// so the wall times compare scheduling work, not GC placement —
	// essential for the few-percent tracing-overhead ratio.
	runtime.GC()
	var execT time.Duration
	var cpuT float64
	rounds := len(all[0])
	for r := 0; r < rounds; r++ {
		for i, id := range ids {
			if all[i][r].Len() == 0 {
				continue
			}
			if _, err := srv.Ingest(id, all[i][r]); err != nil {
				tb.Fatalf("Ingest: %v", err)
			}
		}
		gcPct := debug.SetGCPercent(-1)
		t0, c0 := time.Now(), cpuSeconds()
		srv.Pump()
		execT += time.Since(t0)
		cpuT += cpuSeconds() - c0
		debug.SetGCPercent(gcPct)
	}
	out := benchOutcome{BatchMax: batchMax}
	gcPct := debug.SetGCPercent(-1)
	t0, c0 := time.Now(), cpuSeconds()
	for _, id := range ids {
		fin, err := srv.CloseSession(id)
		if err != nil {
			tb.Fatalf("CloseSession: %v", err)
		}
		out.RawFramesDone += fin.RawFramesDone
		out.P50US += fin.Latency.P50US / float64(len(ids))
		if fin.Latency.P99US > out.P99US {
			out.P99US = fin.Latency.P99US
		}
	}
	execT += time.Since(t0)
	cpuT += cpuSeconds() - c0
	debug.SetGCPercent(gcPct)
	out.WallSeconds = execT.Seconds()
	out.CPUSeconds = cpuT
	out.MakespanUS = srv.engine.Makespan()
	st := srv.SchedStats()
	out.Occupancy = st.Occupancy()
	out.Dispatches = st.Dispatches
	if out.WallSeconds > 0 {
		out.FramesPerSec = float64(out.RawFramesDone) / out.WallSeconds
		out.SessionsPerSec = float64(w.Sessions) / out.WallSeconds
	}
	if out.MakespanUS > 0 {
		out.VirtualFPS = float64(out.RawFramesDone) / (out.MakespanUS * 1e-6)
	}
	return out
}

// BenchmarkMultiSessionSerialized is the BatchMax=1 baseline: every
// invocation dispatches alone (the old lock-the-engine behaviour,
// minus the lock).
func BenchmarkMultiSessionSerialized(b *testing.B) {
	w := defaultBenchWorkload()
	for i := 0; i < b.N; i++ {
		out := runBenchWorkload(b, w, 1)
		b.ReportMetric(out.VirtualFPS, "vframes/s")
	}
}

// BenchmarkMultiSessionBatched coalesces compatible cross-session
// invocations into micro-batches (BatchMax=8).
func BenchmarkMultiSessionBatched(b *testing.B) {
	w := defaultBenchWorkload()
	for i := 0; i < b.N; i++ {
		out := runBenchWorkload(b, w, 8)
		b.ReportMetric(out.VirtualFPS, "vframes/s")
		b.ReportMetric(out.Occupancy, "occupancy")
	}
}

// serveBenchReport is the BENCH_serve.json schema: the perf trajectory
// artifact `make bench-json` emits and CI uploads.
type serveBenchReport struct {
	Workload   benchWorkload `json:"workload"`
	Serialized benchOutcome  `json:"serialized"`
	Batched    benchOutcome  `json:"batched"`
	// Speedup is the batched-over-serialized virtual-throughput ratio
	// (equivalently, the makespan reduction for the same workload) —
	// deterministic, unlike wall time.
	Speedup float64 `json:"speedup"`
}

// TestServeBenchJSON runs the serialized-vs-batched comparison and
// writes BENCH_serve.json to the path in the BENCH_JSON environment
// variable (skipped when unset — `make bench-json` is the entry
// point). Occupancy assertions are deterministic; the wall-clock
// speedup is recorded, not asserted, so a noisy CI box cannot flake
// the suite.
func TestServeBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; run via `make bench-json`")
	}
	w := defaultBenchWorkload()
	rep := serveBenchReport{Workload: w}
	rep.Serialized = runBenchWorkload(t, w, 1)
	rep.Batched = runBenchWorkload(t, w, 8)
	if rep.Serialized.VirtualFPS > 0 {
		rep.Speedup = rep.Batched.VirtualFPS / rep.Serialized.VirtualFPS
	}
	if rep.Speedup <= 1 {
		t.Errorf("batched virtual throughput %.0f <= serialized %.0f (speedup %.3f): micro-batching must amortize launch overhead",
			rep.Batched.VirtualFPS, rep.Serialized.VirtualFPS, rep.Speedup)
	}
	if rep.Serialized.Occupancy != 1 {
		t.Errorf("serialized occupancy %f, want exactly 1", rep.Serialized.Occupancy)
	}
	if rep.Batched.Occupancy <= 1 {
		t.Errorf("batched occupancy %f, want > 1 (no coalescing happened)", rep.Batched.Occupancy)
	}
	// Under saturation the serialized side backs up more and its DSFA
	// queues shed more; batching must never complete *less* work.
	if rep.Batched.RawFramesDone < rep.Serialized.RawFramesDone {
		t.Errorf("batched completed %d raw frames, serialized %d — batching must not lose work",
			rep.Batched.RawFramesDone, rep.Serialized.RawFramesDone)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-json: serialized %.0f vframes/s, batched %.0f vframes/s (%.2fx), p99 %.0f -> %.0f us, occupancy %.2f -> %s\n",
		rep.Serialized.VirtualFPS, rep.Batched.VirtualFPS, rep.Speedup,
		rep.Serialized.P99US, rep.Batched.P99US, rep.Batched.Occupancy, path)
}

// obsBenchReport is the BENCH_obs.json schema: the tracing-overhead
// guard artifact `make bench-json` emits and CI uploads.
type obsBenchReport struct {
	Workload benchWorkload `json:"workload"`
	// Rounds is the paired repetition count: each round runs the plain
	// and traced sides back to back, so machine drift (thermal, cache,
	// background load) hits both sides of a pair roughly equally.
	Rounds int `json:"rounds"`
	// Reps is how many full workload executions each round sums per
	// side. One execution's timed section is only a few milliseconds
	// of CPU — the same order as a single scheduler preemption — so a
	// round's delta is meaningful only once several executions
	// amortize that noise.
	Reps int `json:"reps"`
	// Plain/Traced carry each side's best-wall-time outcome (the
	// virtual results are identical across rounds by determinism).
	Plain  benchOutcome `json:"plain"`
	Traced benchOutcome `json:"traced"`
	// OverheadPct is the tracing CPU-time overhead in percent: the
	// median over rounds of the paired per-round delta
	// 100 * (traced - plain) / plain. The paired median is robust to
	// the +-20% noise a shared CI box shows, where comparing each
	// side's best-of-N would amplify it: the minimum of a noisy
	// distribution is an extreme-value statistic, and the two sides'
	// lucky extremes do not cancel.
	OverheadPct float64 `json:"overhead_pct"`
}

// TestObsBenchJSON is the tracing-overhead guard: the same batched
// workload with the frame-lifecycle tracer off and on must produce
// identical virtual results (tracing is observation-only) and cost
// less than 5% of wall time. Writes BENCH_obs.json to the path in the
// BENCH_OBS_JSON environment variable (skipped when unset —
// `make bench-json` is the entry point).
func TestObsBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_OBS_JSON")
	if path == "" {
		t.Skip("BENCH_OBS_JSON not set; run via `make bench-json`")
	}
	w := defaultBenchWorkload()
	rep := obsBenchReport{Workload: w, Rounds: 21, Reps: 5}
	all := benchStreams(t, w)
	deltas := make([]float64, 0, rep.Rounds)
	for i := 0; i < rep.Rounds; i++ {
		var plainCPU, tracedCPU float64
		for r := 0; r < rep.Reps; r++ {
			// Alternate which side runs first so any cost of being
			// second in a pair (pool warmth, heap shape) cancels.
			var plain, traced benchOutcome
			if (i+r)%2 == 0 {
				plain = runBenchStreams(t, w, 8, false, all)
				traced = runBenchStreams(t, w, 8, true, all)
			} else {
				traced = runBenchStreams(t, w, 8, true, all)
				plain = runBenchStreams(t, w, 8, false, all)
			}
			plainCPU += plain.CPUSeconds
			tracedCPU += traced.CPUSeconds
			if (i == 0 && r == 0) || plain.WallSeconds < rep.Plain.WallSeconds {
				rep.Plain = plain
			}
			if (i == 0 && r == 0) || traced.WallSeconds < rep.Traced.WallSeconds {
				rep.Traced = traced
			}
		}
		deltas = append(deltas, 100*(tracedCPU-plainCPU)/plainCPU)
	}
	sort.Float64s(deltas)
	rep.OverheadPct = deltas[len(deltas)/2]

	// Behavior neutrality: the virtual outcome must be bit-identical.
	if rep.Traced.RawFramesDone != rep.Plain.RawFramesDone {
		t.Errorf("tracing changed completed work: %d raw frames traced vs %d plain",
			rep.Traced.RawFramesDone, rep.Plain.RawFramesDone)
	}
	if rep.Traced.MakespanUS != rep.Plain.MakespanUS {
		t.Errorf("tracing changed the engine makespan: %.3f traced vs %.3f plain",
			rep.Traced.MakespanUS, rep.Plain.MakespanUS)
	}
	if rep.Traced.P99US != rep.Plain.P99US {
		t.Errorf("tracing changed p99 latency: %.3f traced vs %.3f plain",
			rep.Traced.P99US, rep.Plain.P99US)
	}
	if rep.OverheadPct >= 5 {
		t.Errorf("tracing overhead %.2f%% >= 5%% budget (paired median of %d rounds; best plain %.4fs, best traced %.4fs)",
			rep.OverheadPct, rep.Rounds, rep.Plain.WallSeconds, rep.Traced.WallSeconds)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-obs: plain %.4fs, traced %.4fs, overhead %.2f%% (paired median of %d) -> %s\n",
		rep.Plain.WallSeconds, rep.Traced.WallSeconds, rep.OverheadPct, rep.Rounds, path)
}
