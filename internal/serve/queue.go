package serve

import (
	"fmt"
	"sync"

	"evedge/internal/sparse"
)

// DropPolicy selects what a full ingest queue discards.
type DropPolicy int

// Drop policies. DropOldest mirrors DSFA's backlog semantics (the
// inference queue "discards the earliest entries on overflow"): stale
// frames are worth less than fresh ones to a perception pipeline.
// DropNewest refuses new work instead, the classic load-shedding
// answer when completed work must never be wasted.
const (
	DropOldest DropPolicy = iota
	DropNewest
)

// String names the policy.
func (p DropPolicy) String() string {
	if p == DropNewest {
		return "drop-newest"
	}
	return "drop-oldest"
}

// ParseDropPolicy parses a policy name.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "", "drop-oldest", "oldest":
		return DropOldest, nil
	case "drop-newest", "newest":
		return DropNewest, nil
	}
	return 0, fmt.Errorf("serve: unknown drop policy %q", s)
}

// frameQueue is the bounded per-session ingest queue sitting between
// the HTTP ingest path and the worker pool. It is the session's
// explicit backpressure point: pushes never block, overflow drops per
// the policy, and every drop is counted so clients can observe the
// shedding in /metrics and ingest responses.
type frameQueue struct {
	mu      sync.Mutex
	buf     []*sparse.Frame
	cap     int
	policy  DropPolicy
	pushed  uint64
	dropped uint64
	// recycle, if non-nil, receives every frame the queue sheds so the
	// arena reclaims it immediately instead of waiting for GC. Called
	// under mu; the hook must not call back into the queue.
	recycle func(*sparse.Frame)
}

func newFrameQueue(capacity int, policy DropPolicy) *frameQueue {
	if capacity <= 0 {
		capacity = 64
	}
	return &frameQueue{cap: capacity, policy: policy}
}

// push enqueues a frame, shedding per the policy when full. It returns
// how many frames were dropped by this push (0 or 1).
func (q *frameQueue) push(f *sparse.Frame) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pushed++
	if len(q.buf) >= q.cap {
		q.dropped++
		if q.policy == DropNewest {
			if q.recycle != nil {
				q.recycle(f)
			}
			return 1
		}
		// Drop-oldest: evict the head to admit the fresh frame.
		head := q.buf[0]
		copy(q.buf, q.buf[1:])
		q.buf = q.buf[:len(q.buf)-1]
		q.buf = append(q.buf, f)
		if q.recycle != nil {
			q.recycle(head)
		}
		return 1
	}
	q.buf = append(q.buf, f)
	return 0
}

// drain removes and returns up to max frames (all when max <= 0).
func (q *frameQueue) drain(max int) []*sparse.Frame {
	return q.drainInto(nil, max)
}

// drainInto is drain appending into a caller-owned scratch slice — the
// worker hot path's zero-allocation variant.
func (q *frameQueue) drainInto(dst []*sparse.Frame, max int) []*sparse.Frame {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.buf)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return dst
	}
	dst = append(dst, q.buf[:n]...)
	rest := copy(q.buf, q.buf[n:])
	for i := rest; i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:rest]
	return dst
}

// len returns the queued frame count.
func (q *frameQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// stats returns total pushed and dropped frame counts.
func (q *frameQueue) stats() (pushed, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed, q.dropped
}
