package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/scene"
)

// runTracedWorkload streams a small deterministic multi-session
// workload through a ManualDrain server with tracing on and returns
// the server (sessions closed, ready for export).
func runTracedWorkload(t *testing.T, seed int64) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.BatchMax = 8
	cfg.Trace = obs.Config{Enabled: true, Node: "test"}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)

	const network = nn.SpikeFlowNet
	net := nn.MustByName(network)
	const durUS, chunkUS = 100_000, 20_000
	var ids []string
	var all [][]*events.Stream
	for i := 0; i < 3; i++ {
		sess, err := srv.CreateSession(SessionConfig{Network: network, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, sess.ID)
		seq, err := scene.NewSequence(net.Input.Preset, scene.Half, seed+int64(i))
		if err != nil {
			t.Fatalf("NewSequence: %v", err)
		}
		stream, err := seq.Generate(durUS)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		all = append(all, chunks(stream, durUS, chunkUS))
	}
	for r := 0; r < len(all[0]); r++ {
		for i, id := range ids {
			if all[i][r].Len() == 0 {
				continue
			}
			if _, err := srv.Ingest(id, all[i][r]); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
		srv.Pump()
	}
	for _, id := range ids {
		if _, err := srv.CloseSession(id); err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
	}
	return srv
}

// TestTraceDeterministicAndValid runs the same workload twice: the
// exported Chrome trace must be byte-identical (the tracer records
// only virtual timestamps) and valid trace-event JSON with the
// expected lanes.
func TestTraceDeterministicAndValid(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		srv := runTracedWorkload(t, 42)
		if err := srv.WriteTrace(&bufs[i]); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same workload, different trace bytes — tracing leaked wall-clock state")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(bufs[0].Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	// Every lifecycle lane the workload exercises must appear: session
	// lanes, at least one device lane, and the scheduler track.
	lanes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					lanes[n] = true
				}
			}
		}
	}
	for _, want := range []string{"sess/s1", "sess/s2", "sess/s3", "sched"} {
		if !lanes[want] {
			t.Errorf("trace missing lane %q (have %v)", want, lanes)
		}
	}
	devLane := false
	for n := range lanes {
		if strings.HasPrefix(n, "dev/") {
			devLane = true
		}
	}
	if !devLane {
		t.Errorf("trace has no device lane (have %v)", lanes)
	}
}

// TestTraceEndpointAndMetrics checks the HTTP surface: /v1/trace
// serves the JSON under tracing, 404s without it, and /metrics carries
// the per-stage latency histograms.
func TestTraceEndpointAndMetrics(t *testing.T) {
	srv := runTracedWorkload(t, 7)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/trace = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("endpoint trace not valid JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, stage := range []string{"queue", "agg", "exec", "frame"} {
		if !strings.Contains(body, `evserve_stage_latency_us_bucket{stage="`+stage+`"`) {
			t.Errorf("/metrics missing stage histogram %q", stage)
		}
	}
	for _, want := range []string{
		"# TYPE evserve_stage_latency_us histogram",
		"evserve_trace_events_total",
		"evserve_trace_events_dropped_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Tracing off: no tracer, no endpoint, no histogram series.
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	off, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.Tracer() != nil || off.StageHists() != nil {
		t.Fatal("disabled tracing still built a tracer")
	}
	rec = httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /v1/trace with tracing off = %d, want 404", rec.Code)
	}
}

// TestTraceBehaviorNeutral pins the zero-interference contract: the
// same workload with tracing on and off completes identical work in
// identical virtual time.
func TestTraceBehaviorNeutral(t *testing.T) {
	w := benchWorkload{Sessions: 3, DurUS: 100_000, ChunkUS: 20_000, Network: nn.SpikeFlowNet}
	plain := runBenchWorkload(t, w, 8)
	traced := runBenchWorkloadTraced(t, w, 8, true)
	if plain.RawFramesDone != traced.RawFramesDone {
		t.Errorf("tracing changed completed work: %d vs %d", plain.RawFramesDone, traced.RawFramesDone)
	}
	if plain.MakespanUS != traced.MakespanUS {
		t.Errorf("tracing changed the makespan: %g vs %g", plain.MakespanUS, traced.MakespanUS)
	}
	if plain.P99US != traced.P99US {
		t.Errorf("tracing changed p99: %g vs %g", plain.P99US, traced.P99US)
	}
}
