package serve

import (
	"fmt"
	"strings"
	"testing"

	"evedge/internal/control"
	"evedge/internal/nn"
)

// scrape renders the server's metrics once.
func scrape(s *Server) string {
	pw := NewPromWriter()
	s.WriteMetrics(pw, "evserve", "")
	return pw.String()
}

// metricValue extracts the value of an unlabelled sample.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return ""
}

// TestMetricsClosedSessionFinalOnce is the regression test for the
// closed-session retention bug: a closed session's final counters are
// exposed at most once (newest MaxClosed finals when scrapes lag), and
// the server-wide totals must not change with scrape timing or
// closed-session eviction.
func TestMetricsClosedSessionFinalOnce(t *testing.T) {
	srv, err := New(Config{Workers: 1, MaxClosed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 21, 80_000)
	var ids []string
	for i := 0; i < 2; i++ {
		sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, sess.ID)
		if _, err := srv.Ingest(sess.ID, stream); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		if _, err := srv.CloseSession(sess.ID); err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
	}
	// MaxClosed=1 already evicted the first session's snapshot — its
	// counters must still be in the totals.
	if _, ok := srv.Session(ids[0]); ok {
		t.Fatalf("session %s not evicted (test premise)", ids[0])
	}

	// Both sessions closed before any scrape and MaxClosed=1, so the
	// emit-once queue kept only the newest final — the older one's
	// counters survive solely in the totals.
	first := scrape(srv)
	if strings.Contains(first, `session="`+ids[0]+`"`) {
		t.Fatalf("first scrape exposed an unretained final beyond the MaxClosed bound")
	}
	if !strings.Contains(first, `session="`+ids[1]+`"`) {
		t.Fatalf("first scrape missing closed session %s final counters", ids[1])
	}
	eventsTotal := metricValue(t, first, "evserve_events_total")
	total := srv.Totals()
	if want := fmt.Sprintf("%d", total.EventsIn); eventsTotal != want {
		t.Fatalf("evserve_events_total = %s, want %s", eventsTotal, want)
	}
	if total.Sessions != 2 || total.EventsIn != 2*uint64(stream.Len()) {
		t.Fatalf("totals wrong: %+v (stream has %d events)", total, stream.Len())
	}

	// Second scrape: the final per-session series are gone, the totals
	// are unchanged.
	second := scrape(srv)
	for _, id := range ids {
		if strings.Contains(second, `session="`+id+`"`) {
			t.Fatalf("second scrape re-emitted closed session %s", id)
		}
	}
	if got := metricValue(t, second, "evserve_events_total"); got != eventsTotal {
		t.Fatalf("totals changed across scrapes: %s -> %s", eventsTotal, got)
	}
}

// TestAdaptiveRetuneFires drives a backlogged session through the
// serving execute path with the controller enabled and checks retunes
// are applied and surfaced in snapshots and metrics. The session is
// driven directly (no worker goroutines), so the run is deterministic.
func TestAdaptiveRetuneFires(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.Adapt.Retune = true
	cfg.Adapt.DSFA = control.DSFAConfig{DecideEveryUS: 1, Patience: 1}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2, QueueCap: 8})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.retuner == nil {
		t.Fatal("adaptive server created session without a retuner")
	}

	// Two overload rounds: each ingest floods the tiny queue (counting
	// drops), then the drained backlog executes; the controller sees
	// fresh drops between decisions and widens.
	const dur = 200_000
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 23, dur)
	for _, c := range chunks(stream, dur, 100_000) {
		if _, err := sess.ingest(c); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		srv.execute(sess, sess.queue.drain(0), false)
		srv.sched.Drain()
	}
	snap := sess.snapshot()
	if snap.FramesDropped == 0 {
		t.Fatalf("test premise broken: no backlog pressure (snapshot %+v)", snap)
	}
	if snap.Retunes == 0 {
		t.Fatal("controller never retuned under sustained drops")
	}
	agg, ok := sess.stepper.AggConfig()
	if !ok {
		t.Fatal("no aggregator at LevelDSFA")
	}
	if anchor := sess.retuner.Config(); agg != anchor {
		t.Fatalf("live aggregator config %+v does not match controller's %+v", agg, anchor)
	}
	text := scrape(srv)
	if !strings.Contains(text, "evserve_retunes_total") {
		t.Fatal("metrics missing evserve_retunes_total")
	}

	// The telemetry plane exposes what the controllers consumed: one
	// sample per active session, one load signal per device.
	sig := srv.Signals()
	if len(sig.Sessions) != 1 || sig.Sessions[0].FramesIn == 0 {
		t.Fatalf("Signals sessions wrong: %+v", sig.Sessions)
	}
	if len(sig.Devices) != len(srv.cfg.Platform.Devices) {
		t.Fatalf("Signals covers %d devices, platform has %d", len(sig.Devices), len(srv.cfg.Platform.Devices))
	}

	// A sub-DSFA session must not get a controller.
	plain, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession level 1: %v", err)
	}
	if plain.retuner != nil {
		t.Fatal("level-1 session got a retuner")
	}
}

// TestAdaptiveRemapSearches exercises the warm-remap path end to end:
// imbalanced load triggers a SearchFrom, the planner accounts for it,
// and the control series land in /metrics.
func TestAdaptiveRemapSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("NMP search in -short mode")
	}
	cfg := Config{Workers: 1, Mapper: MapperNMP}
	cfg.NMP = serveNMPConfig()
	cfg.NMP.Population = 4
	cfg.NMP.Generations = 2
	cfg.Adapt.Retune = true
	cfg.Adapt.Remap = true
	cfg.Adapt.Planner = control.RemapConfig{ImbalanceTh: 1e-9, CooldownUS: 1, MinGain: 0, Budget: 2}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	for _, name := range []string{nn.DOTIE, nn.HALSIE} {
		sess, err := srv.CreateSession(SessionConfig{Network: name, Level: 3})
		if err != nil {
			t.Fatalf("CreateSession %s: %v", name, err)
		}
		stream := genStream(t, nn.MustByName(name).Input.Preset, 29, 60_000)
		if _, err := sess.ingest(stream); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		srv.execute(sess, sess.queue.drain(0), false)
		srv.sched.Drain()
	}
	srv.maybeRemap()
	searches, _, _ := srv.planner.Stats()
	if searches == 0 {
		t.Fatal("imbalanced engine load did not trigger a warm remap search")
	}
	text := scrape(srv)
	for _, want := range []string{
		"evserve_control_remap_searches_total",
		"evserve_control_remaps_total",
		"evserve_control_remap_cooldown_us",
		"evserve_remaps_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestAdaptRemapRequiresNMP rejects the remap loop under round-robin
// placement, where there is no assignment to warm-start.
func TestAdaptRemapRequiresNMP(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.Adapt.Remap = true
	if _, err := New(cfg); err == nil {
		t.Fatal("adaptive remap accepted without the NMP mapper")
	}
}
