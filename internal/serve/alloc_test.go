package serve

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"evedge/internal/e2sf"
	"evedge/internal/events"
	"evedge/internal/mem"
	"evedge/internal/nn"
	"evedge/internal/par"
	"evedge/internal/scene"
	"evedge/internal/sparse"
)

// allocHarness is the steady-state serving loop the zero-alloc gate
// measures: one DSFA-level session on a ManualDrain server, fed the
// same pre-generated event chunk over and over with its timestamps
// shifted forward in place each cycle. After warm-up every buffer in
// the chain — fused E2SF grids, pooled frames, invocation structs,
// sched request scratch, dispatch merge scratch — has reached its
// steady capacity, so one more cycle should allocate nothing.
type allocHarness struct {
	srv   *Server
	id    string
	chunk *events.Stream
	// span is the chunk's duration; each cycle advances every event
	// timestamp by span so stream time stays monotonic.
	span int64
}

func newAllocHarness(tb testing.TB) *allocHarness {
	tb.Helper()
	return newAllocHarnessParallel(tb, 0)
}

// newAllocHarnessParallel is newAllocHarness with the kernel worker
// pool and per-session rulebook cache enabled, so the zero-alloc gate
// also covers the parallel path's per-frame work (rulebook Observe,
// ActiveSet pool traffic).
func newAllocHarnessParallel(tb testing.TB, parallel int) *allocHarness {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.Parallel = parallel
	srv, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	sess, err := srv.CreateSession(SessionConfig{Network: nn.SpikeFlowNet, Level: 2})
	if err != nil {
		tb.Fatalf("CreateSession: %v", err)
	}
	net := nn.MustByName(nn.SpikeFlowNet)
	seq, err := scene.NewSequence(net.Input.Preset, scene.Half, 11)
	if err != nil {
		tb.Fatalf("NewSequence: %v", err)
	}
	const span = 20_000
	chunk, err := seq.Generate(span)
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	if chunk.Len() == 0 {
		tb.Fatal("empty template chunk")
	}
	return &allocHarness{srv: srv, id: sess.ID, chunk: chunk, span: span}
}

// cycle is one steady-state serving iteration: advance the template
// chunk one span and run it through ingest → convert → schedule →
// dispatch → complete → release.
func (h *allocHarness) cycle(tb testing.TB) {
	for i := range h.chunk.Events {
		h.chunk.Events[i].TS += h.span
	}
	if _, err := h.srv.Ingest(h.id, h.chunk); err != nil {
		tb.Fatalf("Ingest: %v", err)
	}
	h.srv.Pump()
}

// TestAllocRegression is the CI gate for hot-path allocation creep:
// after warm-up, a full ingest→execute→dispatch→release cycle must
// not allocate at all. Anything nonzero means a pooled buffer leaked
// back to the garbage collector — find it with
// `go test -run '^$' -bench BenchmarkServeCycle -benchmem ./internal/serve`
// and a memory profile before loosening this bound.
func TestAllocRegression(t *testing.T) {
	h := newAllocHarness(t)
	defer h.srv.Close()
	for i := 0; i < 12; i++ {
		h.cycle(t)
	}
	avg := testing.AllocsPerRun(50, func() { h.cycle(t) })
	if raceEnabled {
		// The race detector's instrumentation allocates on its own;
		// under -race this test still drives the full pooled cycle (so
		// the detector sees every arena handoff) but the zero bound is
		// only meaningful in a plain build.
		t.Logf("race build: measured %.2f allocs/op (bound not enforced)", avg)
		return
	}
	if avg != 0 {
		t.Fatalf("steady-state serve cycle allocates: got %.2f allocs/op, want 0", avg)
	}
}

// TestAllocRegressionParallel is the same gate over a parallel server:
// once the ActiveSet pool and the rulebook cache's double buffers reach
// steady capacity, per-frame rulebook upkeep (coverage probe, delta
// merge, saved-scan accounting) must be allocation-free too.
func TestAllocRegressionParallel(t *testing.T) {
	h := newAllocHarnessParallel(t, 4)
	defer h.srv.Close()
	for i := 0; i < 12; i++ {
		h.cycle(t)
	}
	avg := testing.AllocsPerRun(50, func() { h.cycle(t) })
	if raceEnabled {
		t.Logf("race build: measured %.2f allocs/op (bound not enforced)", avg)
		return
	}
	if avg != 0 {
		t.Fatalf("steady-state parallel serve cycle allocates: got %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkServeCycle is the -benchmem view of the same loop, for
// debugging when TestAllocRegression trips.
func BenchmarkServeCycle(b *testing.B) {
	h := newAllocHarness(b)
	defer h.srv.Close()
	for i := 0; i < 12; i++ {
		h.cycle(b)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.cycle(b)
	}
}

// allocStage is one row of BENCH_alloc.json.
type allocStage struct {
	Stage       string  `json:"stage"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func benchStage(name string, f func(b *testing.B)) allocStage {
	r := testing.Benchmark(f)
	return allocStage{
		Stage:       name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// allocDenseInput mirrors the sparse package's benchmark input: a
// tensor with ~density fraction of active sites.
func allocDenseInput(c, h, w int, density float64) *sparse.Tensor {
	rng := rand.New(rand.NewSource(42))
	in := sparse.NewTensor(c, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if rng.Float64() < density {
				for ch := 0; ch < c; ch++ {
					in.Set(ch, y, x, rng.Float32())
				}
			}
		}
	}
	return in
}

func allocFilter(outC, inC, k int) *sparse.Filter {
	rng := rand.New(rand.NewSource(7))
	f := sparse.NewFilter(outC, inC, k, 1, k/2)
	for i := range f.Weights {
		f.Weights[i] = rng.Float32() - 0.5
	}
	return f
}

// collectAllocStages measures every hot-path stage, unfused-vs-fused
// and fresh-vs-pooled side by side. Shared by the artifact emitter
// (TestAllocBenchJSON) and the regression gate (TestAllocSmoke).
func collectAllocStages(t *testing.T) []allocStage {
	// E2SF conversion: the legacy per-frame Convert loop vs the fused
	// one-pass pooled kernel, over the same synthetic chunk.
	const span = 100_000
	seq, err := scene.NewSequence(scene.IndoorFlying2, scene.Half, 3)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	stream, err := seq.Generate(span)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := e2sf.Config{Width: stream.Width, Height: stream.Height, NumBins: 5}
	conv, err := e2sf.New(cfg)
	if err != nil {
		t.Fatalf("e2sf.New: %v", err)
	}
	stages := []allocStage{
		benchStage("e2sf_convert_unfused", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := conv.Convert(stream, 0, span); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("e2sf_convert_fused_pooled", func(b *testing.B) {
			pool := mem.NewFramePool()
			fz, err := e2sf.NewFused(cfg, pool)
			if err != nil {
				b.Fatal(err)
			}
			var frames []*sparse.Frame
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frames, _, err = fz.ConvertGroupedAppend(frames[:0], stream, 0, span, 1)
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range frames {
					pool.Put(f)
				}
			}
		}),
	}

	// Sparse conv + SpMM: fresh-allocation entry points vs the Into
	// variants writing into preallocated outputs.
	in := allocDenseInput(2, 64, 64, 0.05)
	f := allocFilter(8, 2, 3)
	oh, ow := f.OutShape(in.H, in.W)
	stages = append(stages,
		benchStage("sparse_conv2d", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.SparseConv2D(in, f); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("sparse_conv2d_into", func(b *testing.B) {
			out := sparse.NewTensor(f.OutC, oh, ow)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sparse.SparseConv2DInto(out, in, f); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("submanifold_conv2d", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.SubmanifoldConv2D(in, f); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("submanifold_conv2d_into", func(b *testing.B) {
			out := sparse.NewTensor(f.OutC, in.H, in.W)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sparse.SubmanifoldConv2DInto(out, in, f); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// Tiled variants on a warm worker pool: after the first dispatch
	// the pool's free-listed dispatch records and sync.Pool'd task
	// structs are at steady capacity, so sharded runs must allocate
	// exactly as much as their serial counterparts — nothing.
	pool := par.New(4)
	t.Cleanup(pool.Close)
	stages = append(stages,
		benchStage("sparse_conv2d_tiled", func(b *testing.B) {
			out := sparse.NewTensor(f.OutC, oh, ow)
			if err := sparse.SparseConv2DTiledInto(out, in, f, pool, 8); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sparse.SparseConv2DTiledInto(out, in, f, pool, 8); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("submanifold_conv2d_tiled", func(b *testing.B) {
			out := sparse.NewTensor(f.OutC, in.H, in.W)
			if err := sparse.SubmanifoldConv2DTiledInto(out, in, f, pool, 8); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sparse.SubmanifoldConv2DTiledInto(out, in, f, pool, 8); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("submanifold_sites", func(b *testing.B) {
			out := sparse.NewTensor(f.OutC, in.H, in.W)
			as := sparse.NewActiveSet(in.H, in.W, f.K)
			as.BuildFromTensor(in, f.K)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sparse.SubmanifoldConv2DSites(out, in, f, as); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("rulebook_observe", func(b *testing.B) {
			// Two drifted frames alternating: every Observe after warm-up
			// takes the delta path with buffers at steady capacity.
			fa, fb := sparse.NewFrame(64, 64, 0, 1), sparse.NewFrame(64, 64, 0, 1)
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 200; i++ {
				y, x := int32(rng.Intn(64)), int32(rng.Intn(63))
				fa.Set(y, x, 1, 0)
				fb.Set(y, x+1, 0, 1)
			}
			c := sparse.NewRulebookCache(3, 0)
			c.Observe(fa)
			c.Observe(fb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					c.Observe(fa)
				} else {
					c.Observe(fb)
				}
			}
		}),
	)

	// CSR SpMM over a synthetic 5% dense 512x256 matrix.
	rng := rand.New(rand.NewSource(9))
	var entries []sparse.COOEntry
	const rows, cols, dcols = 512, 256, 16
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.05 {
				entries = append(entries, sparse.COOEntry{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	csr, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	dmat := sparse.NewMat(cols, dcols)
	for i := range dmat.Data {
		dmat.Data[i] = rng.Float32()
	}
	stages = append(stages,
		benchStage("csr_spmm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := csr.SpMM(dmat); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("csr_spmm_into", func(b *testing.B) {
			out := sparse.NewMat(rows, dcols)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := csr.SpMMInto(out, dmat); err != nil {
					b.Fatal(err)
				}
			}
		}),
		benchStage("csr_spmm_tiled", func(b *testing.B) {
			out := sparse.NewMat(rows, dcols)
			if err := csr.SpMMTiledInto(out, dmat, pool, 8); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := csr.SpMMTiledInto(out, dmat, pool, 8); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// The end-to-end serving cycle — the number TestAllocRegression
	// pins to zero.
	stages = append(stages, benchStage("serve_ingest_pump", func(b *testing.B) {
		h := newAllocHarness(b)
		defer h.srv.Close()
		for i := 0; i < 12; i++ {
			h.cycle(b)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.cycle(b)
		}
	}))

	// The same cycle on a parallel server: adds per-frame rulebook
	// upkeep and ActiveSet pool traffic to the loop.
	stages = append(stages, benchStage("serve_ingest_pump_parallel", func(b *testing.B) {
		h := newAllocHarnessParallel(b, 4)
		defer h.srv.Close()
		for i := 0; i < 12; i++ {
			h.cycle(b)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.cycle(b)
		}
	}))
	return stages
}

// allocDoc is the BENCH_alloc.json schema.
type allocDoc struct {
	Stages []allocStage `json:"stages"`
}

// TestAllocBenchJSON emits BENCH_alloc.json: allocs/op, bytes/op and
// ns/op for each hot-path stage. Run via `make bench-json`.
func TestAllocBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ALLOC_JSON")
	if path == "" {
		t.Skip("set BENCH_ALLOC_JSON=<path> to emit the alloc benchmark artifact")
	}
	doc := allocDoc{Stages: collectAllocStages(t)}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s (%d stages)", path, len(doc.Stages))
}

// TestAllocSmoke is the bench-smoke regression gate: re-measure every
// stage and fail if any stage's allocs/op regressed more than 10%
// against the committed BENCH_alloc.json baseline (zero-baseline
// stages must stay at zero — 10% of nothing is nothing). Run it
// BEFORE bench-json in CI, while the baseline file is still the
// committed one. Run via `make bench-smoke`.
func TestAllocSmoke(t *testing.T) {
	path := os.Getenv("BENCH_ALLOC_BASELINE")
	if path == "" {
		t.Skip("set BENCH_ALLOC_BASELINE=<committed BENCH_alloc.json> to run the alloc regression gate")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base allocDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	baseline := make(map[string]allocStage, len(base.Stages))
	for _, s := range base.Stages {
		baseline[s.Stage] = s
	}
	for _, got := range collectAllocStages(t) {
		want, ok := baseline[got.Stage]
		if !ok {
			t.Logf("%s: no baseline (new stage), measured %d allocs/op", got.Stage, got.AllocsPerOp)
			continue
		}
		// Integer ceiling of 1.1x: a 0-alloc baseline admits 0, a
		// 124-alloc baseline admits 136.
		limit := want.AllocsPerOp + want.AllocsPerOp/10
		if got.AllocsPerOp > limit {
			t.Errorf("%s: allocs/op regressed %d -> %d (limit %d, +10%%)",
				got.Stage, want.AllocsPerOp, got.AllocsPerOp, limit)
			continue
		}
		t.Logf("%s: %d allocs/op (baseline %d, limit %d)", got.Stage, got.AllocsPerOp, want.AllocsPerOp, limit)
	}
}
