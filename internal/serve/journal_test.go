package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"evedge/internal/events"
	"evedge/internal/nn"
)

// TestJournalAckWatermark exercises the chunk-mark lifecycle: marks
// retire in order once the completed count reaches their cumulative
// frame watermark, and the ack sequence never regresses.
func TestJournalAckWatermark(t *testing.T) {
	j := newJournal()
	if seq := j.appendChunk(10); seq != 1 {
		t.Fatalf("first chunk seq = %d", seq)
	}
	if seq := j.appendChunk(25); seq != 2 {
		t.Fatalf("second chunk seq = %d", seq)
	}
	j.appendChunk(40)
	if ack := j.ack(9); ack != 0 {
		t.Fatalf("ack below first watermark = %d", ack)
	}
	if ack := j.ack(25); ack != 2 {
		t.Fatalf("ack at second watermark = %d", ack)
	}
	st := j.stats()
	if st.Unacked != 1 || st.AckSeq != 2 || st.Seq != 3 {
		t.Fatalf("stats after partial ack: %+v", st)
	}
	// Acks are monotonic: a stale (lower) completed count is a no-op.
	if ack := j.ack(10); ack != 2 {
		t.Fatalf("ack regressed to %d", ack)
	}
	if ack := j.ack(40); ack != 3 {
		t.Fatalf("final ack = %d", ack)
	}
	if st := j.stats(); st.Unacked != 0 {
		t.Fatalf("marks not drained: %+v", st)
	}
}

// TestJournalResultRing checks the catch-up ring: interleaved chunk and
// result entries share one sequence, resultsSince honors the cursor,
// and the ring overwrites oldest-first at capacity.
func TestJournalResultRing(t *testing.T) {
	j := newJournal()
	j.appendChunk(5) // seq 1
	for i := 0; i < 3; i++ {
		j.appendResult(float64(i), 1, 1) // seq 2,3,4
	}
	got := j.resultsSince(0, nil)
	if len(got) != 3 || got[0].Seq != 2 || got[2].Seq != 4 {
		t.Fatalf("resultsSince(0) = %+v", got)
	}
	if got := j.resultsSince(3, nil); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("resultsSince(3) = %+v", got)
	}

	// Fill past capacity: the ring keeps the newest journalResultCap.
	full := newJournal()
	for i := 0; i < journalResultCap+10; i++ {
		full.appendResult(float64(i), 1, 1)
	}
	got = full.resultsSince(0, nil)
	if len(got) != journalResultCap {
		t.Fatalf("ring retained %d, want %d", len(got), journalResultCap)
	}
	if got[0].Seq != 11 || got[len(got)-1].Seq != journalResultCap+10 {
		t.Fatalf("ring window [%d, %d], want [11, %d]",
			got[0].Seq, got[len(got)-1].Seq, journalResultCap+10)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("ring out of order at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}

// TestJournalSeed checks the failover seed only raises the counter.
func TestJournalSeed(t *testing.T) {
	j := newJournal()
	j.seed(7)
	if seq := j.appendChunk(1); seq != 8 {
		t.Fatalf("seq after seed(7) = %d", seq)
	}
	j.seed(3) // lower seed is a no-op
	if seq := j.appendChunk(2); seq != 9 {
		t.Fatalf("seq after stale seed = %d", seq)
	}
}

// TestJournalCodecRoundTrip round-trips chunk and result entries
// through the wire codec and rejects malformed headers.
func TestJournalCodecRoundTrip(t *testing.T) {
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 21, 20_000)
	b, err := EncodeJournalChunk(42, stream)
	if err != nil {
		t.Fatalf("EncodeJournalChunk: %v", err)
	}
	ent, err := DecodeJournalEntry(b)
	if err != nil {
		t.Fatalf("DecodeJournalEntry(chunk): %v", err)
	}
	if ent.Kind != JournalChunk || ent.Seq != 42 || ent.Chunk == nil {
		t.Fatalf("decoded chunk entry: %+v", ent)
	}
	var orig, rt bytes.Buffer
	if err := events.WriteBinary(&orig, stream); err != nil {
		t.Fatalf("WriteBinary(orig): %v", err)
	}
	if err := events.WriteBinary(&rt, ent.Chunk); err != nil {
		t.Fatalf("WriteBinary(roundtrip): %v", err)
	}
	if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
		t.Fatal("chunk payload not byte-identical after round trip")
	}

	res := ResultEvent{Seq: 7, DoneUS: 123.5, LatUS: 4.25, Frames: 9}
	b, err = EncodeJournalResult(res)
	if err != nil {
		t.Fatalf("EncodeJournalResult: %v", err)
	}
	ent, err = DecodeJournalEntry(b)
	if err != nil {
		t.Fatalf("DecodeJournalEntry(result): %v", err)
	}
	if ent.Kind != JournalResult || ent.Result != res {
		t.Fatalf("decoded result entry: %+v", ent)
	}

	for name, mut := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:journalHeaderSize-1] },
		"bad magic":   func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version": func(b []byte) []byte { b[4] = 99; return b },
		"bad kind":    func(b []byte) []byte { b[6] = 77; return b },
		"short result": func(b []byte) []byte {
			return b[:len(b)-1]
		},
	} {
		bad, _ := EncodeJournalResult(res)
		if _, err := DecodeJournalEntry(mut(bad)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestIngestJournalSequencing checks the server-side wiring: journaled
// ingests carry sequence numbers and the ack watermark advances once
// frames drain.
func TestIngestJournalSequencing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.Journal = true
	cfg.QueueCap = 4096
	srv, cl, stop := newTestServer(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 5, 90_000)
	var lastSeq uint64
	for _, ch := range chunks(stream, 90_000, 30_000) {
		res, err := cl.SendEvents(snap.ID, ch)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		if res.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", res.Seq, lastSeq)
		}
		lastSeq = res.Seq
	}
	st, err := srv.SessionJournalStats(snap.ID)
	if err != nil {
		t.Fatalf("SessionJournalStats: %v", err)
	}
	if st.Unacked == 0 {
		t.Fatal("no unacked chunks with a queued backlog")
	}
	srv.Pump()
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	st, err = srv.SessionJournalStats(snap.ID)
	if err != nil {
		t.Fatalf("SessionJournalStats after close: %v", err)
	}
	if st.Retained == 0 {
		t.Fatal("no results retained after a full drain")
	}
}

// TestStreamResultsCatchUp is the SSE contract: a client that
// disconnects mid-stream and reconnects with since=<last seq> sees
// exactly the remaining events — the union of the two passes equals a
// full from-zero read with no gaps and no duplicates.
func TestStreamResultsCatchUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.Journal = true
	cfg.QueueCap = 4096
	srv, cl, stop := newTestServer(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 8, 120_000)
	for _, ch := range chunks(stream, 120_000, 20_000) {
		if _, err := cl.SendEvents(snap.ID, ch); err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
	}
	srv.Pump()
	st, err := srv.SessionJournalStats(snap.ID)
	if err != nil {
		t.Fatalf("SessionJournalStats: %v", err)
	}
	if st.Retained < 2 {
		t.Fatalf("need >= 2 retained results for a split stream, got %d", st.Retained)
	}

	// Pass 1: read roughly half, then drop the connection mid-stream.
	errStop := errors.New("drop connection")
	var first []ResultEvent
	half := st.Retained / 2
	err = cl.StreamResults(context.Background(), snap.ID, 0, func(ev ResultEvent) error {
		first = append(first, ev)
		if len(first) == half {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("pass 1 err = %v, want errStop", err)
	}

	// The session closes; the resumed stream must drain the remainder
	// and then terminate on the close event.
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	var second []ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, first[len(first)-1].Seq, func(ev ResultEvent) error {
		second = append(second, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("pass 2: %v", err)
	}

	var full []ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, 0, func(ev ResultEvent) error {
		full = append(full, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("full read: %v", err)
	}

	union := append(append([]ResultEvent{}, first...), second...)
	if len(union) != len(full) {
		t.Fatalf("union has %d events, full read %d", len(union), len(full))
	}
	for i := range full {
		if union[i] != full[i] {
			t.Fatalf("event %d differs: resumed %+v vs full %+v", i, union[i], full[i])
		}
		if i > 0 && union[i].Seq <= union[i-1].Seq {
			t.Fatalf("sequence not strictly increasing at %d: %d after %d",
				i, union[i].Seq, union[i-1].Seq)
		}
	}
}

// TestStreamResultsErrors pins the stream endpoint's failure statuses.
func TestStreamResultsErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	srv, cl, stop := newTestServer(t, cfg)
	defer stop()

	nop := func(ResultEvent) error { return nil }
	if err := cl.StreamResults(context.Background(), "nope", 0, nop); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown session stream err = %v, want 404", err)
	}
	// Journal off: streaming is a 409, not a hang.
	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if err := cl.StreamResults(context.Background(), snap.ID, 0, nop); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Fatalf("disabled journal stream err = %v, want 409", err)
	}
	if _, err := srv.SessionJournalStats(snap.ID); !errors.Is(err, ErrJournalDisabled) {
		t.Fatalf("journal stats err = %v, want ErrJournalDisabled", err)
	}
}

// TestJournalRestore checks the failover ring-refill path: restored
// results keep their original sequence numbers, raise the counter past
// themselves, and interleave correctly with freshly appended results.
func TestJournalRestore(t *testing.T) {
	j := newJournal()
	j.restore(ResultEvent{Seq: 4, Frames: 2})
	j.restore(ResultEvent{Seq: 6, Frames: 3})
	if st := j.stats(); st.Seq != 6 {
		t.Fatalf("seq after restore = %d, want 6", st.Seq)
	}
	// A fresh append continues strictly after the restored watermark.
	if seq := j.appendResult(1, 1, 1); seq != 7 {
		t.Fatalf("appended seq = %d, want 7", seq)
	}
	got := j.resultsSince(0, nil)
	if len(got) != 3 || got[0].Seq != 4 || got[1].Seq != 6 || got[2].Seq != 7 {
		t.Fatalf("ring after restore+append: %+v", got)
	}
	// A catch-up cursor between restored seqs sees only the newer tail.
	if got := j.resultsSince(4, nil); len(got) != 2 || got[0].Seq != 6 {
		t.Fatalf("resultsSince(4) = %+v", got)
	}
}

// TestReplicaAppendSortedAndKindAware pins the replica-store ordering
// and trim contract: out-of-order appends (concurrent ingests can
// interleave replication) land in sequence order, the ack watermark
// retires only chunk entries, and result entries are capped at the
// catch-up ring size.
func TestReplicaAppendSortedAndKindAware(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	srv, _, stop := newTestServer(t, cfg)
	defer stop()

	// Out-of-order appends sort by seq.
	srv.ReplicaAppend("s", 5, JournalChunk, []byte{5}, 0)
	srv.ReplicaAppend("s", 3, JournalChunk, []byte{3}, 0)
	srv.ReplicaAppend("s", 4, JournalResult, []byte{4}, 0)
	log := srv.ReplicaTake("s")
	if len(log) != 3 || log[0].Seq != 3 || log[1].Seq != 4 || log[2].Seq != 5 {
		t.Fatalf("log not seq-sorted: %+v", log)
	}
	if log[1].Kind != JournalResult || log[2].Kind != JournalChunk {
		t.Fatalf("kinds lost on insert: %+v", log)
	}

	// The ack watermark retires chunks but keeps results: they carry
	// the sequence watermark and the catch-up ring across a failover.
	srv.ReplicaAppend("s", 1, JournalChunk, nil, 0)
	srv.ReplicaAppend("s", 2, JournalResult, nil, 0)
	srv.ReplicaAppend("s", 3, JournalChunk, nil, 2)
	log = srv.ReplicaTake("s")
	if len(log) != 2 || log[0].Seq != 2 || log[0].Kind != JournalResult || log[1].Seq != 3 {
		t.Fatalf("ack trim wrong: %+v", log)
	}

	// Result entries are bounded by the ring cap, oldest shed first.
	for i := 0; i < journalResultCap+10; i++ {
		srv.ReplicaAppend("s", uint64(i+1), JournalResult, nil, 0)
	}
	log = srv.ReplicaTake("s")
	if len(log) != journalResultCap {
		t.Fatalf("replica retained %d results, want %d", len(log), journalResultCap)
	}
	if log[0].Seq != 11 || log[len(log)-1].Seq != journalResultCap+10 {
		t.Fatalf("replica result window [%d, %d], want [11, %d]",
			log[0].Seq, log[len(log)-1].Seq, journalResultCap+10)
	}
}

// TestOnResultHook checks the replication hook fires once per
// journaled result, outside the session lock, with the event's
// assigned sequence and the live ack watermark.
func TestOnResultHook(t *testing.T) {
	var mu sync.Mutex
	type call struct {
		id  string
		ev  ResultEvent
		ack uint64
	}
	var calls []call
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	cfg.Journal = true
	cfg.QueueCap = 4096
	cfg.OnResult = func(id string, ev ResultEvent, ack uint64) {
		mu.Lock()
		calls = append(calls, call{id, ev, ack})
		mu.Unlock()
	}
	srv, cl, stop := newTestServer(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 11, 60_000)
	if _, err := cl.SendEvents(snap.ID, stream); err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	srv.Pump()

	mu.Lock()
	defer mu.Unlock()
	if len(calls) == 0 {
		t.Fatal("OnResult never fired across a full drain")
	}
	ring := mustJournalResults(t, srv, snap.ID)
	if len(calls) != len(ring) {
		t.Fatalf("hook fired %d times, ring retained %d", len(calls), len(ring))
	}
	for i, c := range calls {
		if c.id != snap.ID {
			t.Fatalf("call %d session = %q, want %q", i, c.id, snap.ID)
		}
		if c.ev != ring[i] {
			t.Fatalf("call %d event %+v != ring %+v", i, c.ev, ring[i])
		}
	}
}

// mustJournalResults reads session id's full catch-up ring.
func mustJournalResults(t *testing.T, srv *Server, id string) []ResultEvent {
	t.Helper()
	sess, ok := srv.Session(id)
	if !ok {
		t.Fatalf("no session %q", id)
	}
	return sess.journal.resultsSince(0, nil)
}

// TestClosedServerRejectsWork pins the kill-path ownership rule: a
// closed server refuses new sessions and new frames instead of
// queueing work nobody will drain.
func TestClosedServerRejectsWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ManualDrain = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	srv.Close()
	if _, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("CreateSession on closed server: %v, want ErrServerClosed", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 2, 20_000)
	if _, err := srv.Ingest(sess.ID, stream); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Ingest on closed server: %v, want ErrServerClosed", err)
	}
}
