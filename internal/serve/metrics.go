package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// latencyRecorder keeps bounded-memory latency statistics: exact
// count/sum/max over the session lifetime plus a sliding window of
// recent observations for quantiles. 4096 samples bound the memory of
// a long-lived session while keeping p99 meaningful (≈41 samples past
// the 99th percentile).
type latencyRecorder struct {
	mu    sync.Mutex
	ring  []float64
	next  int
	count uint64
	sum   float64
	max   float64
}

const latencyWindow = 4096

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{ring: make([]float64, 0, latencyWindow)}
}

func (r *latencyRecorder) observe(v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += v
	if v > r.max {
		r.max = v
	}
	if len(r.ring) < latencyWindow {
		r.ring = append(r.ring, v)
	} else {
		r.ring[r.next] = v
		r.next = (r.next + 1) % latencyWindow
	}
}

// LatencySummary is a snapshot of the recorder. Quantiles come from
// the retained window; Count/Mean/Max cover the whole lifetime.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

func (r *latencyRecorder) snapshot() LatencySummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := LatencySummary{Count: r.count, MaxUS: r.max}
	if r.count > 0 {
		s.MeanUS = r.sum / float64(r.count)
	}
	if len(r.ring) == 0 {
		return s
	}
	win := append([]float64(nil), r.ring...)
	sort.Float64s(win)
	s.P50US = quantile(win, 0.50)
	s.P99US = quantile(win, 0.99)
	return s
}

// quantile reads the q-quantile from a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// PromWriter accumulates Prometheus text-exposition output with
// per-metric HELP/TYPE headers emitted once. Exported so the cluster
// layer can merge per-node and fleet-level series into one scrape.
type PromWriter struct {
	b      strings.Builder
	headed map[string]bool
}

// NewPromWriter returns an empty exposition buffer.
func NewPromWriter() *PromWriter {
	return &PromWriter{headed: map[string]bool{}}
}

// Counter and Gauge emit one sample; labels is a pre-rendered
// `name="value",...` string (empty for unlabelled metrics).
func (w *PromWriter) Counter(name, help, labels string, v float64) {
	w.sample(name, "counter", help, labels, v)
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name, help, labels string, v float64) {
	w.sample(name, "gauge", help, labels, v)
}

func (w *PromWriter) sample(name, typ, help, labels string, v float64) {
	if !w.headed[name] {
		w.headed[name] = true
		fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	if labels != "" {
		fmt.Fprintf(&w.b, "%s{%s} %g\n", name, labels, v)
	} else {
		fmt.Fprintf(&w.b, "%s %g\n", name, v)
	}
}

// Histogram emits one cumulative histogram: `name_bucket{le=...}`
// per bound plus +Inf, then `name_sum` and `name_count`. bounds and
// counts are index-aligned, with counts one longer (the +Inf bucket).
// labels is a pre-rendered `k="v",...` string merged before the le
// label.
func (w *PromWriter) Histogram(name, help, labels string, bounds []float64, counts []uint64, sum float64, count uint64) {
	if !w.headed[name] {
		w.headed[name] = true
		fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, "histogram")
	}
	join := func(le string) string {
		if labels == "" {
			return le
		}
		return labels + "," + le
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = fmt.Sprintf("%g", bounds[i])
		}
		fmt.Fprintf(&w.b, "%s_bucket{%s} %d\n", name, join(fmt.Sprintf("le=%q", le)), cum)
	}
	if labels != "" {
		fmt.Fprintf(&w.b, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, sum, name, labels, count)
	} else {
		fmt.Fprintf(&w.b, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
	}
}

// String returns the accumulated exposition text.
func (w *PromWriter) String() string { return w.b.String() }

// promLabelEscaper escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline only. %q is
// NOT equivalent — it emits Go syntax (\t, \xNN, ሴ) for other
// non-printables, which Prometheus parsers reject.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// PromLabels renders label pairs in the given order, escaping
// quotes/backslashes/newlines in values so a hostile session ID or
// network name cannot corrupt the exposition format.
func PromLabels(kv ...string) string {
	var parts []string
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, kv[i]+`="`+promLabelEscaper.Replace(kv[i+1])+`"`)
	}
	return strings.Join(parts, ",")
}
