package serve

import (
	"strings"
	"testing"

	"evedge/internal/nn"
)

// TestParallelServerRulebookHitRate drives steady scene traffic
// through a parallel server and checks the temporal-coherence cache
// actually pays: consecutive frames of a steady sequence overlap, so
// the delta-revalidation path should dominate full rebuilds.
func TestParallelServerRulebookHitRate(t *testing.T) {
	srv, cl, stop := newTestServer(t, Config{Workers: 2, Parallel: 4})
	defer stop()

	if srv.KernelPool() == nil || srv.KernelPool().Size() != 4 {
		t.Fatalf("Config.Parallel=4 did not build a width-4 kernel pool")
	}

	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	const dur = 300_000
	net := nn.MustByName(nn.DOTIE)
	stream := genStream(t, net.Input.Preset, 17, dur)
	for _, c := range chunks(stream, dur, 20_000) {
		if _, err := cl.SendEvents(snap.ID, c); err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
	}
	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	rb := fin.Rulebook
	if rb == nil {
		t.Fatal("parallel session final snapshot has no rulebook stats")
	}
	if rb.Frames == 0 || rb.Hits+rb.Misses != rb.Frames {
		t.Fatalf("rulebook accounting broken: %+v", rb)
	}
	if rb.HitRate < 0.5 {
		t.Fatalf("steady-traffic rulebook hit rate %.2f, want >= 0.5 (%+v)", rb.HitRate, rb)
	}
	if rb.SitesCarried == 0 {
		t.Fatalf("no sites carried across frames despite %d hits", rb.Hits)
	}
	if rb.SavedScanElems == 0 {
		t.Fatal("rulebook reuse saved zero scan elements")
	}

	pw := NewPromWriter()
	srv.WriteMetrics(pw, "test", "")
	text := pw.String()
	for _, want := range []string{
		"test_kernel_pool_width 4",
		"test_rulebook_hits_total",
		"test_rulebook_saved_scan_elems_total",
		`test_pool_gets_total{pool="active_sets"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestSerialServerHasNoRulebook pins the default: without
// Config.Parallel the rulebook cache is never built and the snapshot
// omits the section entirely.
func TestSerialServerHasNoRulebook(t *testing.T) {
	srv, cl, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	if srv.KernelPool() != nil {
		t.Fatal("serial config built a kernel pool")
	}
	snap, err := cl.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	const dur = 100_000
	net := nn.MustByName(nn.DOTIE)
	stream := genStream(t, net.Input.Preset, 17, dur)
	for _, c := range chunks(stream, dur, 20_000) {
		if _, err := cl.SendEvents(snap.ID, c); err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
	}
	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.Rulebook != nil {
		t.Fatalf("serial session reported rulebook stats: %+v", fin.Rulebook)
	}
}

// TestParallelServerVirtualTimeIdentity replays the same traffic on a
// serial and a parallel server: every virtual-time figure in the final
// snapshot must match exactly, because tiled kernels are bit-identical
// and rulebook upkeep only touches aux counters.
func TestParallelServerVirtualTimeIdentity(t *testing.T) {
	run := func(parallel int) *SessionSnapshot {
		cfg := DefaultConfig()
		cfg.ManualDrain = true
		cfg.Parallel = parallel
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer srv.Close()
		sess, err := srv.CreateSession(SessionConfig{Network: nn.DOTIE, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		const dur = 200_000
		net := nn.MustByName(nn.DOTIE)
		stream := genStream(t, net.Input.Preset, 23, dur)
		for _, c := range chunks(stream, dur, 20_000) {
			if _, err := srv.Ingest(sess.ID, c); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
			srv.Pump()
		}
		fin, err := srv.CloseSession(sess.ID)
		if err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
		return fin
	}

	serial := run(0)
	tiled := run(8)
	if serial.Invocations != tiled.Invocations ||
		serial.RawFramesDone != tiled.RawFramesDone ||
		serial.FramesIn != tiled.FramesIn ||
		serial.Latency.P99US != tiled.Latency.P99US ||
		serial.Latency.MeanUS != tiled.Latency.MeanUS ||
		serial.ThroughputFPS != tiled.ThroughputFPS {
		t.Fatalf("parallel run moved virtual time:\nserial: inv=%d raw=%d in=%d p99=%.6f mean=%.6f fps=%.6f\ntiled:  inv=%d raw=%d in=%d p99=%.6f mean=%.6f fps=%.6f",
			serial.Invocations, serial.RawFramesDone, serial.FramesIn,
			serial.Latency.P99US, serial.Latency.MeanUS, serial.ThroughputFPS,
			tiled.Invocations, tiled.RawFramesDone, tiled.FramesIn,
			tiled.Latency.P99US, tiled.Latency.MeanUS, tiled.ThroughputFPS)
	}
	if tiled.Rulebook == nil || serial.Rulebook != nil {
		t.Fatalf("rulebook presence wrong: serial=%v tiled=%v", serial.Rulebook, tiled.Rulebook)
	}
}
