// Package control is the online adaptation plane that closes Ev-Edge's
// runtime loop for long-lived serving. The paper's headline result
// depends on *runtime* adaptation — DSFA tracks scene dynamics and
// hardware backlog, the NMP remaps networks across heterogeneous PEs
// as load shifts — but a serving deployment freezes both at session
// creation. This package supplies the two controllers that un-freeze
// them:
//
//   - Retuner: a per-session hysteresis controller that widens the
//     DSFA aggregation window (larger buckets, looser delay/density
//     thresholds, harder combine modes) while the session is backed
//     up, and narrows it back toward the create-time tuning when the
//     backlog clears. Scene dynamics modulate the hysteresis: merging
//     a static scene costs little accuracy, so widening is eager;
//     a dynamic scene narrows eagerly to recover temporal fidelity.
//
//   - RemapPlanner: a per-node cooldown gate that watches device-level
//     load signals (utilization spread, queue backlog) and decides
//     when a warm-started incremental NMP search (nmp.SearchFrom) is
//     worth running, and whether its result is enough of an
//     improvement to install.
//
// Both controllers are pure decision logic over telemetry snapshots:
// the serve layer feeds them SessionSample/DeviceSignals and applies
// their outputs (dsfa retunes, plan swaps); the cluster router feeds
// the same DeviceSignals shape with node-level loads to decide session
// migration. Keeping the decisions here, free of HTTP and engine
// state, makes them deterministic and unit-testable.
package control

import (
	"sync"

	"evedge/internal/dsfa"
)

// SessionSample is one session's cumulative telemetry snapshot. The
// Retuner diffs successive samples itself, so producers only report
// running totals — no windowing state leaks into the serving layer.
type SessionSample struct {
	// StreamUS is the session's stream-time watermark (virtual us).
	StreamUS int64
	// FramesIn counts raw frames ingested (before any shedding).
	FramesIn uint64
	// FramesDropped counts frames shed anywhere: ingest queue plus the
	// DSFA inference queue.
	FramesDropped uint64
	// QueueLen/QueueCap describe the bounded ingest queue.
	QueueLen, QueueCap int
	// AggPending is raw frames buffered inside the aggregator (open
	// buckets plus merged queue); AggQueued is merged buckets awaiting
	// dispatch.
	AggPending, AggQueued int
	// DensitySum/DensityN accumulate the spatial density of ingested
	// frames; the controller reads scene dynamics from window means.
	DensitySum float64
	DensityN   int
}

// DeviceSignals is one processing element's (or, at the fleet level,
// one node's) load signal.
type DeviceSignals struct {
	// Device names the PE or node.
	Device string
	// Utilization is busy time over elapsed time (PE) or
	// capacity-weighted session cost (node).
	Utilization float64
	// BacklogUS is queued-but-unexecuted work in virtual microseconds,
	// measured relative to the least-backlogged peer. Producers that
	// cannot express backlog in time units leave it 0; the remap gate
	// then decides on utilization alone.
	BacklogUS float64
	// Queued counts invocations waiting in the execution scheduler's
	// run queue for this PE (0 when the producer has no scheduler) —
	// the queue-depth signal internal/sched exposes. The remap gate
	// treats a queued-invocation spread past RemapConfig.QueueTh as a
	// third trigger.
	Queued int
}

// Signals is a whole-node telemetry snapshot: every active session's
// sample plus every device's load — the control plane's full input
// set, returned by serve.Server.Signals for operators and tooling.
type Signals struct {
	Sessions []SessionSample
	Devices  []DeviceSignals
}

// DSFAConfig tunes the per-session retune controller.
type DSFAConfig struct {
	// DecideEveryUS is the minimum stream time between decisions.
	DecideEveryUS int64
	// Patience is how many consecutive pressured (or calm) decisions
	// must accumulate before the controller widens (or narrows) —
	// the hysteresis that keeps it from chattering on noise.
	Patience int
	// HighWater and LowWater are ingest-queue fill fractions: above
	// HighWater counts as backlog pressure, below LowWater as calm.
	HighWater, LowWater float64
	// MaxWiden caps the widening exponent: thresholds scale by up to
	// 2^MaxWiden over the create-time anchor tuning.
	MaxWiden int
	// DynamicsTh is the relative change in window-mean frame density
	// that counts as a scene shift.
	DynamicsTh float64
}

// DefaultDSFAConfig returns the controller defaults: decide at most
// every 50 ms of stream time, two-step hysteresis, widen up to 8x.
func DefaultDSFAConfig() DSFAConfig {
	return DSFAConfig{
		DecideEveryUS: 50_000,
		Patience:      2,
		HighWater:     0.75,
		LowWater:      0.25,
		MaxWiden:      3,
		DynamicsTh:    0.35,
	}
}

// normalized fills zero fields with defaults.
func (c DSFAConfig) normalized() DSFAConfig {
	def := DefaultDSFAConfig()
	if c.DecideEveryUS <= 0 {
		c.DecideEveryUS = def.DecideEveryUS
	}
	if c.Patience <= 0 {
		c.Patience = def.Patience
	}
	if c.HighWater <= 0 {
		c.HighWater = def.HighWater
	}
	if c.LowWater <= 0 {
		c.LowWater = def.LowWater
	}
	if c.MaxWiden <= 0 {
		c.MaxWiden = def.MaxWiden
	}
	if c.DynamicsTh <= 0 {
		c.DynamicsTh = def.DynamicsTh
	}
	return c
}

// Retuner is the per-session DSFA controller. It anchors at the
// session's create-time tuning (the narrow end, chosen per task for
// accuracy) and tracks a widening exponent: each widening step doubles
// the merge-bucket size and the delay/density admission thresholds and
// — past the first step — forces the cAdd combine mode, trading
// temporal granularity for backlog clearance exactly as the paper's
// Sec. 4.2 trades them under load. Narrowing walks back toward the
// anchor when the queue drains.
type Retuner struct {
	cfg    DSFAConfig
	anchor dsfa.Config

	widen    int
	pressure int
	calm     int

	sampled      bool
	last         SessionSample
	lastDecideUS int64
	prevWinDen   float64
	hasPrevDen   bool
	dynamic      bool

	retunes uint64
}

// NewRetuner builds a controller anchored at the session's create-time
// aggregator tuning.
func NewRetuner(cfg DSFAConfig, anchor dsfa.Config) *Retuner {
	return &Retuner{cfg: cfg.normalized(), anchor: anchor}
}

// Config derives the aggregator tuning for the current widening level.
func (r *Retuner) Config() dsfa.Config {
	cfg := r.anchor
	if r.widen == 0 {
		return cfg
	}
	factor := 1 << r.widen
	cfg.MBSize = r.anchor.MBSize * factor
	cfg.MtThUS = r.anchor.MtThUS * int64(factor)
	cfg.MdTh = r.anchor.MdTh * float64(factor)
	if cfg.EBufSize < cfg.MBSize {
		cfg.EBufSize = cfg.MBSize
	}
	// cBatch does not merge at all; the first widening step must start
	// merging, and deep widening merges hard regardless of anchor mode.
	if r.anchor.Mode == dsfa.CBatch || r.widen >= 2 {
		cfg.Mode = dsfa.CAdd
	}
	return cfg
}

// Level returns the current widening exponent (0 = anchor tuning).
func (r *Retuner) Level() int { return r.widen }

// Retunes returns how many tuning changes the controller has emitted.
func (r *Retuner) Retunes() uint64 { return r.retunes }

// Observe folds one telemetry sample and returns (cfg, true) when the
// controller decides the aggregator should be retuned to cfg. Samples
// arriving faster than DecideEveryUS of stream time are absorbed
// without a decision.
func (r *Retuner) Observe(s SessionSample) (dsfa.Config, bool) {
	if !r.sampled {
		r.sampled = true
		r.last = s
		r.lastDecideUS = s.StreamUS
		return dsfa.Config{}, false
	}
	if s.StreamUS-r.lastDecideUS < r.cfg.DecideEveryUS {
		return dsfa.Config{}, false
	}

	// Window deltas since the previous decision.
	dDrop := s.FramesDropped - r.last.FramesDropped
	fill := 0.0
	if s.QueueCap > 0 {
		fill = float64(s.QueueLen) / float64(s.QueueCap)
	}
	// Scene dynamics: relative change of the window-mean density.
	if dn := s.DensityN - r.last.DensityN; dn > 0 {
		winDen := (s.DensitySum - r.last.DensitySum) / float64(dn)
		if r.hasPrevDen && r.prevWinDen > 0 {
			rel := (winDen - r.prevWinDen) / r.prevWinDen
			if rel < 0 {
				rel = -rel
			}
			r.dynamic = rel > r.cfg.DynamicsTh
		}
		r.prevWinDen = winDen
		r.hasPrevDen = true
	}
	r.last = s
	r.lastDecideUS = s.StreamUS

	pressured := fill >= r.cfg.HighWater || dDrop > 0 ||
		s.AggQueued >= r.anchor.QueueCap
	calm := fill <= r.cfg.LowWater && dDrop == 0 && s.AggQueued == 0

	// Dynamics modulate the hysteresis: a static scene widens eagerly
	// (merging it costs little accuracy), a dynamic scene narrows
	// eagerly (temporal fidelity is worth more).
	widenPatience, narrowPatience := r.cfg.Patience, r.cfg.Patience
	if !r.dynamic {
		widenPatience = 1
	} else {
		narrowPatience = 1
	}

	switch {
	case pressured:
		r.calm = 0
		r.pressure++
		if r.pressure >= widenPatience && r.widen < r.cfg.MaxWiden {
			r.pressure = 0
			r.widen++
			r.retunes++
			return r.Config(), true
		}
	case calm:
		r.pressure = 0
		r.calm++
		if r.calm >= narrowPatience && r.widen > 0 {
			r.calm = 0
			r.widen--
			r.retunes++
			return r.Config(), true
		}
	default:
		r.pressure = 0
		r.calm = 0
	}
	return dsfa.Config{}, false
}

// RemapConfig tunes the per-node remap planner.
type RemapConfig struct {
	// CooldownUS is the minimum virtual time between installed remaps
	// (wall-clock us at the fleet level); it bounds search cost and
	// stops plan thrash.
	CooldownUS float64
	// ImbalanceTh is the device-utilization spread (max - min) that
	// justifies searching for a better mapping.
	ImbalanceTh float64
	// MinGain is the fractional predicted-latency improvement a
	// candidate plan must deliver to be installed. Negative means
	// "install any non-regression"; zero takes the default.
	MinGain float64
	// Budget caps the warm-started search's generations so a remap
	// completes at control-loop latency.
	Budget int
	// QueueTh is the scheduler queue-depth spread (max - min queued
	// invocations across PEs) that justifies a remap search on its own.
	// 0 disables the trigger (the default): utilization and backlog
	// spreads keep gating as before.
	QueueTh int
}

// DefaultRemapConfig returns the planner defaults.
func DefaultRemapConfig() RemapConfig {
	return RemapConfig{
		CooldownUS:  250_000,
		ImbalanceTh: 0.25,
		MinGain:     0.05,
		Budget:      6,
	}
}

// normalized fills zero fields with defaults. A negative MinGain is
// kept as zero — the explicit "install any non-regression" spelling.
func (c RemapConfig) normalized() RemapConfig {
	def := DefaultRemapConfig()
	if c.CooldownUS <= 0 {
		c.CooldownUS = def.CooldownUS
	}
	if c.Budget <= 0 {
		c.Budget = def.Budget
	}
	if c.ImbalanceTh <= 0 {
		c.ImbalanceTh = def.ImbalanceTh
	}
	switch {
	case c.MinGain < 0:
		c.MinGain = 0
	case c.MinGain == 0:
		c.MinGain = def.MinGain
	}
	return c
}

// RemapPlanner gates warm-started NMP remaps behind load imbalance and
// a cooldown. It is shared state across worker goroutines (serve) or
// probe passes (cluster), so it locks internally.
type RemapPlanner struct {
	mu        sync.Mutex
	cfg       RemapConfig
	lastUS    float64
	hasRemap  bool
	searches  uint64
	committed uint64
	lastGain  float64
	inFlight  bool
}

// NewRemapPlanner builds a planner; the first trigger is allowed
// immediately (no cooldown before any remap happened).
func NewRemapPlanner(cfg RemapConfig) *RemapPlanner {
	return &RemapPlanner{cfg: cfg.normalized()}
}

// Imbalance is the utilization spread across devices (max - min).
func Imbalance(devs []DeviceSignals) float64 {
	if len(devs) == 0 {
		return 0
	}
	min, max := devs[0].Utilization, devs[0].Utilization
	for _, d := range devs[1:] {
		if d.Utilization < min {
			min = d.Utilization
		}
		if d.Utilization > max {
			max = d.Utilization
		}
	}
	return max - min
}

// BacklogSpread is the queue-depth spread across devices (max - min of
// BacklogUS).
func BacklogSpread(devs []DeviceSignals) float64 {
	if len(devs) == 0 {
		return 0
	}
	min, max := devs[0].BacklogUS, devs[0].BacklogUS
	for _, d := range devs[1:] {
		if d.BacklogUS < min {
			min = d.BacklogUS
		}
		if d.BacklogUS > max {
			max = d.BacklogUS
		}
	}
	return max - min
}

// QueuedSpread is the scheduler queue-depth spread across devices
// (max - min of Queued invocations).
func QueuedSpread(devs []DeviceSignals) int {
	if len(devs) == 0 {
		return 0
	}
	min, max := devs[0].Queued, devs[0].Queued
	for _, d := range devs[1:] {
		if d.Queued < min {
			min = d.Queued
		}
		if d.Queued > max {
			max = d.Queued
		}
	}
	return max - min
}

// Ready reports whether a remap attempt could be claimed at nowUS —
// the cheap pre-gate (no signals needed) callers on hot paths check
// before paying for a telemetry snapshot. It claims nothing.
func (p *RemapPlanner) Ready(nowUS float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inFlight {
		return false
	}
	return !p.hasRemap || nowUS-p.lastUS >= p.cfg.CooldownUS
}

// ShouldRemap reports whether the device signals at virtual time nowUS
// justify starting a warm remap search, and claims the attempt (a
// second caller gets false until Done/Committed releases it). Two
// signals trigger: lifetime-utilization spread past ImbalanceTh,
// instantaneous queue-depth spread worth more than one cooldown of
// work (one device drowning while another idles), or — when QueueTh
// is configured — a scheduler queued-invocation spread past it.
func (p *RemapPlanner) ShouldRemap(nowUS float64, devs []DeviceSignals) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inFlight {
		return false
	}
	if p.hasRemap && nowUS-p.lastUS < p.cfg.CooldownUS {
		return false
	}
	queuedHot := p.cfg.QueueTh > 0 && QueuedSpread(devs) >= p.cfg.QueueTh
	if Imbalance(devs) < p.cfg.ImbalanceTh && BacklogSpread(devs) < p.cfg.CooldownUS && !queuedHot {
		return false
	}
	p.inFlight = true
	p.searches++
	return true
}

// Accept decides whether a candidate plan with predicted latency
// newLatencyUS should replace the current plan at curLatencyUS.
func (p *RemapPlanner) Accept(curLatencyUS, newLatencyUS float64) bool {
	if curLatencyUS <= 0 {
		return false
	}
	return (curLatencyUS-newLatencyUS)/curLatencyUS >= p.cfg.MinGain
}

// Committed records an installed remap at virtual time nowUS and
// releases the in-flight claim.
func (p *RemapPlanner) Committed(nowUS float64, gain float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastUS = nowUS
	p.hasRemap = true
	p.committed++
	p.lastGain = gain
	p.inFlight = false
}

// Done releases the in-flight claim after a search that did not
// install (still starts the cooldown, so a fruitless search is not
// retried immediately).
func (p *RemapPlanner) Done(nowUS float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastUS = nowUS
	p.hasRemap = true
	p.inFlight = false
}

// Budget returns the warm-start generation budget.
func (p *RemapPlanner) Budget() int { return p.cfg.Budget }

// CooldownRemainingUS reports the virtual time left before the next
// remap is allowed (0 when ready) — exposed in /metrics.
func (p *RemapPlanner) CooldownRemainingUS(nowUS float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasRemap {
		return 0
	}
	if rem := p.cfg.CooldownUS - (nowUS - p.lastUS); rem > 0 {
		return rem
	}
	return 0
}

// Stats reports (searches started, remaps installed, last installed
// fractional gain).
func (p *RemapPlanner) Stats() (searches, committed uint64, lastGain float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.searches, p.committed, p.lastGain
}
