package control_test

import (
	"math"
	"sort"
	"testing"

	"evedge/internal/control"
	"evedge/internal/dsfa"
	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/pipeline"
	"evedge/internal/sparse"
)

// mkFrame builds a synthetic sparse frame with roughly the requested
// spatial density.
func mkFrame(t0, t1 int64, density float64) *sparse.Frame {
	const h, w = 64, 64
	f := sparse.NewFrame(h, w, t0, t1)
	n := int(density * h * w)
	for i := 0; i < n; i++ {
		f.Set(int32((i*7)%h), int32((i*13)%w), 1, 0)
	}
	return f
}

// shiftScenario builds a stream whose dynamics shift mid-run: a calm
// phase well under the hardware rate, a sustained burst at 4x the
// hardware rate with a density jump (a scene change), then calm again.
func shiftScenario(baseUS float64) []*sparse.Frame {
	var frames []*sparse.Frame
	t := int64(0)
	add := func(n int, spacingUS int64, den float64) {
		for i := 0; i < n; i++ {
			frames = append(frames, mkFrame(t, t+spacingUS, den))
			t += spacingUS
		}
	}
	calmGap := int64(3 * baseUS)
	burstGap := int64(baseUS / 4)
	if burstGap < 1 {
		burstGap = 1
	}
	add(40, calmGap, 0.03)
	add(600, burstGap, 0.12)
	add(40, calmGap, 0.03)
	return frames
}

type simResult struct {
	p99US, meanUS float64
	drops         int
	invocations   int
	retunes       uint64
	mergeRatio    float64
}

// simulate replays the frame stream through a bounded ingest queue,
// the Stepper and the Eq. 3 cost model in virtual time — the same
// drain loop the serving layer runs, minus HTTP and goroutines, so the
// frozen-vs-adaptive comparison is exactly reproducible. When rt is
// non-nil the controller observes telemetry after every invocation and
// its retunes are applied mid-stream.
func simulate(t testing.TB, net *nn.Network, frames []*sparse.Frame, anchor dsfa.Config, rt *control.Retuner) simResult {
	t.Helper()
	model := perf.NewModel(hw.Xavier())
	plan, err := pipeline.DefaultPlan(net, hw.Xavier(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.NewStepper(pipeline.LevelDSFA, anchor)
	if err != nil {
		t.Fatal(err)
	}

	const queueCap, drainBatch = 64, 32
	var (
		queue      []*sparse.Frame
		queueDrops int
		framesIn   uint64
		denSum     float64
		denN       int
		clock      float64
		latencies  []float64
		res        simResult
	)
	idx := 0
	deliver := func() {
		for idx < len(frames) && float64(frames[idx].T1) <= clock {
			f := frames[idx]
			idx++
			framesIn++
			denSum += f.Density()
			denN++
			if len(queue) >= queueCap {
				queue = queue[1:] // drop-oldest, like the serving queue
				queueDrops++
			}
			queue = append(queue, f)
		}
	}
	for {
		deliver()
		n := len(queue)
		if n > drainBatch {
			n = drainBatch
		}
		for _, f := range queue[:n] {
			st.Push(f)
		}
		queue = queue[n:]

		inv := st.Next(clock)
		if inv == nil {
			if idx >= len(frames) && len(queue) == 0 {
				inv = st.Flush()
				if inv == nil {
					break
				}
			} else if len(queue) > 0 {
				// Backlogged frames are already formed; feed them now.
				continue
			} else {
				clock = math.Max(clock, float64(frames[idx].T1))
				continue
			}
		}
		start := math.Max(clock, inv.ReadyUS)
		dur, _ := pipeline.InvocationCost(model, net, plan, inv)
		end := start + dur
		for _, rr := range inv.PerRaw {
			for k := 0; k < rr.N; k++ {
				latencies = append(latencies, end-rr.ReadyUS)
			}
		}
		res.invocations++
		clock = end

		if rt != nil {
			sample := control.SessionSample{
				StreamUS:      int64(clock),
				FramesIn:      framesIn,
				FramesDropped: uint64(queueDrops + st.Stats().DroppedFrames),
				QueueLen:      len(queue),
				QueueCap:      queueCap,
				AggPending:    st.Pending(),
				AggQueued:     st.Queued(),
				DensitySum:    denSum,
				DensityN:      denN,
			}
			if cfg, ok := rt.Observe(sample); ok {
				if err := st.Retune(cfg); err != nil {
					t.Fatalf("Retune: %v", err)
				}
			}
			res.retunes = rt.Retunes()
		}
	}
	stats := st.Stats()
	res.drops = queueDrops + stats.DroppedFrames
	res.mergeRatio = stats.MergeRatio()
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.meanUS = sum / float64(len(latencies))
		res.p99US = latencies[int(float64(len(latencies))*0.99)]
	}
	return res
}

// baseCost prices one single-frame invocation so the scenario can be
// calibrated to the hardware model instead of magic timings.
func baseCost(t testing.TB, net *nn.Network) float64 {
	t.Helper()
	model := perf.NewModel(hw.Xavier())
	plan, err := pipeline.DefaultPlan(net, hw.Xavier(), true)
	if err != nil {
		t.Fatal(err)
	}
	f := mkFrame(0, 1000, 0.05)
	dur, _ := pipeline.InvocationCost(model, net, plan, &pipeline.Invocation{
		Frames: []*sparse.Frame{f}, Raw: 1, ReadyUS: 0,
		PerRaw: []pipeline.RawRef{{ReadyUS: 0, N: 1}},
	})
	if dur <= 0 {
		t.Fatal("zero invocation cost")
	}
	return dur
}

// TestAdaptiveBeatsFrozenUnderShift is the acceptance comparison: the
// same mid-run dynamics shift served with the create-time DSFA tuning
// frozen vs. with the online controller retuning. The adaptive run
// must deliver lower p99 latency, or match it while shedding fewer
// frames.
func TestAdaptiveBeatsFrozenUnderShift(t *testing.T) {
	net := nn.MustByName(nn.HALSIE) // segmentation: tightest anchor tuning
	anchor := pipeline.TunedDSFA(net)
	base := baseCost(t, net)
	frames := shiftScenario(base)

	frozen := simulate(t, net, frames, anchor, nil)

	ccfg := control.DefaultDSFAConfig()
	ccfg.DecideEveryUS = int64(base)
	rt := control.NewRetuner(ccfg, anchor)
	adaptive := simulate(t, net, frames, anchor, rt)

	t.Logf("frozen:   p99=%.0fus mean=%.0fus drops=%d invocations=%d merge=%.2f",
		frozen.p99US, frozen.meanUS, frozen.drops, frozen.invocations, frozen.mergeRatio)
	t.Logf("adaptive: p99=%.0fus mean=%.0fus drops=%d invocations=%d merge=%.2f retunes=%d",
		adaptive.p99US, adaptive.meanUS, adaptive.drops, adaptive.invocations, adaptive.mergeRatio, adaptive.retunes)

	if adaptive.retunes == 0 {
		t.Fatal("controller never fired under a 3x overload burst")
	}
	better := adaptive.p99US < frozen.p99US
	equalButCleaner := adaptive.p99US <= frozen.p99US*1.02 && adaptive.drops < frozen.drops
	if !better && !equalButCleaner {
		t.Fatalf("adaptive run is not better: p99 %.0f vs %.0f us, drops %d vs %d",
			adaptive.p99US, frozen.p99US, adaptive.drops, frozen.drops)
	}
}

// TestRetunerHysteresis walks the controller through pressure and calm
// and checks the widen/narrow transitions and their patience gates.
func TestRetunerHysteresis(t *testing.T) {
	anchor := dsfa.DefaultConfig()
	cfg := control.DSFAConfig{DecideEveryUS: 10, Patience: 2, HighWater: 0.75, LowWater: 0.25, MaxWiden: 2, DynamicsTh: 0.5}
	rt := control.NewRetuner(cfg, anchor)

	mk := func(i int, qlen int, drops uint64) control.SessionSample {
		return control.SessionSample{
			StreamUS: int64(i * 20), FramesIn: uint64(10 * i), FramesDropped: drops,
			QueueLen: qlen, QueueCap: 10,
			// Constant density: a static scene, so widening is eager
			// (patience 1) and narrowing needs full patience.
			DensitySum: float64(i), DensityN: i,
		}
	}
	// First sample only primes the window.
	if _, ok := rt.Observe(mk(1, 9, 0)); ok {
		t.Fatal("decision on the priming sample")
	}
	// Static scene + pressure: widens on the next decision.
	got, ok := rt.Observe(mk(2, 9, 0))
	if !ok || rt.Level() != 1 {
		t.Fatalf("pressured static scene did not widen: ok=%v level=%d", ok, rt.Level())
	}
	if got.MBSize != anchor.MBSize*2 || got.MtThUS != anchor.MtThUS*2 {
		t.Fatalf("widened config not doubled: %+v", got)
	}
	// Calm now: narrowing needs Patience=2 consecutive calm decisions.
	if _, ok := rt.Observe(mk(3, 0, 0)); ok {
		t.Fatal("narrowed after one calm decision (patience violated)")
	}
	got, ok = rt.Observe(mk(4, 0, 0))
	if !ok || rt.Level() != 0 {
		t.Fatalf("did not narrow back to anchor: ok=%v level=%d", ok, rt.Level())
	}
	if got != anchor {
		t.Fatalf("narrowed config != anchor: %+v", got)
	}
	if rt.Retunes() != 2 {
		t.Fatalf("retunes = %d, want 2", rt.Retunes())
	}
}

// TestRetunerWidenedConfigAlwaysValid drives each per-task anchor to
// the maximum widening level and requires every derived config to
// validate — the controller must never hand the aggregator a rejected
// tuning.
func TestRetunerWidenedConfigAlwaysValid(t *testing.T) {
	for _, name := range nn.AllNames() {
		net := nn.MustByName(name)
		anchor := pipeline.TunedDSFA(net)
		cfg := control.DefaultDSFAConfig()
		cfg.MaxWiden = 6
		rt := control.NewRetuner(cfg, anchor)
		check := func() {
			derived := rt.Config()
			if err := derived.Validate(); err != nil {
				t.Fatalf("%s widen=%d: %v", name, rt.Level(), err)
			}
			if derived.MBSize > derived.EBufSize {
				t.Fatalf("%s widen=%d: MBSize %d > EBufSize %d", name, rt.Level(), derived.MBSize, derived.EBufSize)
			}
		}
		check()
		var ts int64
		var drops uint64
		rt.Observe(control.SessionSample{QueueCap: 10}) // prime
		for step := 0; rt.Level() < cfg.MaxWiden && step < 100; step++ {
			ts += cfg.DecideEveryUS + 1
			drops += 5
			if _, ok := rt.Observe(control.SessionSample{
				StreamUS: ts, QueueLen: 10, QueueCap: 10, FramesDropped: drops,
			}); ok {
				check()
			}
		}
		if rt.Level() != cfg.MaxWiden {
			t.Fatalf("%s: sustained pressure only reached widen=%d of %d", name, rt.Level(), cfg.MaxWiden)
		}
	}
}

// TestRemapPlannerGating covers the imbalance trigger, the in-flight
// claim, the cooldown, and the accept threshold.
func TestRemapPlannerGating(t *testing.T) {
	cfg := control.RemapConfig{CooldownUS: 1000, ImbalanceTh: 0.3, MinGain: 0.1, Budget: 4}
	p := control.NewRemapPlanner(cfg)
	balanced := []control.DeviceSignals{{Device: "gpu", Utilization: 0.5}, {Device: "dla", Utilization: 0.45}}
	skewed := []control.DeviceSignals{{Device: "gpu", Utilization: 0.9}, {Device: "dla", Utilization: 0.1}}

	if p.ShouldRemap(0, balanced) {
		t.Fatal("balanced load triggered a remap")
	}
	if !p.ShouldRemap(0, skewed) {
		t.Fatal("skewed load did not trigger a remap")
	}
	// The claim is exclusive until released.
	if p.ShouldRemap(0, skewed) {
		t.Fatal("second caller won the in-flight claim")
	}
	if !p.Accept(100, 80) || p.Accept(100, 95) || p.Accept(0, 0) {
		t.Fatal("Accept threshold wrong")
	}
	p.Committed(0, 0.2)
	if p.ShouldRemap(500, skewed) {
		t.Fatal("remap allowed inside the cooldown")
	}
	if rem := p.CooldownRemainingUS(500); rem != 500 {
		t.Fatalf("cooldown remaining = %v, want 500", rem)
	}
	if !p.ShouldRemap(1500, skewed) {
		t.Fatal("remap not allowed after the cooldown")
	}
	p.Done(1500)
	searches, committed, gain := p.Stats()
	if searches != 2 || committed != 1 || gain != 0.2 {
		t.Fatalf("stats = %d searches, %d committed, gain %v", searches, committed, gain)
	}
}

// TestShouldRemapQueueTrigger pins the third remap trigger: a live
// scheduler queue-depth spread past QueueTh justifies a search on its
// own, while QueueTh = 0 (the default) leaves the trigger disabled.
func TestShouldRemapQueueTrigger(t *testing.T) {
	calm := []control.DeviceSignals{{Device: "GPU", Queued: 5}, {Device: "DLA0", Queued: 2}}
	hot := []control.DeviceSignals{{Device: "GPU", Queued: 9}, {Device: "DLA0", Queued: 2}}
	if got := control.QueuedSpread(hot); got != 7 {
		t.Fatalf("control.QueuedSpread = %d, want 7", got)
	}

	// Enabled: spread >= QueueTh triggers with zero utilization
	// imbalance and zero backlog.
	p := control.NewRemapPlanner(control.RemapConfig{ImbalanceTh: 0.9, CooldownUS: 1, QueueTh: 5})
	if p.ShouldRemap(0, calm) {
		t.Fatal("spread 3 < QueueTh 5 triggered a remap")
	}
	if !p.ShouldRemap(10, hot) {
		t.Fatal("spread 7 >= QueueTh 5 did not trigger a remap")
	}
	p.Done(10)

	// Disabled (QueueTh 0): the same spread must not trigger.
	q := control.NewRemapPlanner(control.RemapConfig{ImbalanceTh: 0.9, CooldownUS: 1})
	if q.ShouldRemap(0, hot) {
		t.Fatal("QueueTh 0 (disabled) still triggered on queue spread")
	}
}
