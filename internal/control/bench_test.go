package control_test

import (
	"testing"

	"evedge/internal/control"
	"evedge/internal/nn"
	"evedge/internal/pipeline"
)

// BenchmarkAdaptiveVsFrozen replays the mid-run dynamics shift under
// the frozen create-time DSFA tuning and under the online controller,
// reporting both tails so the adaptation win is visible in CI bench
// output:
//
//	frozen-p99-us / adaptive-p99-us
//	frozen-drops  / adaptive-drops
func BenchmarkAdaptiveVsFrozen(b *testing.B) {
	net := nn.MustByName(nn.HALSIE)
	anchor := pipeline.TunedDSFA(net)
	base := baseCost(b, net)
	frames := shiftScenario(base)

	var frozen, adaptive simResult
	for i := 0; i < b.N; i++ {
		frozen = simulate(b, net, frames, anchor, nil)
		ccfg := control.DefaultDSFAConfig()
		ccfg.DecideEveryUS = int64(base)
		adaptive = simulate(b, net, frames, anchor, control.NewRetuner(ccfg, anchor))
	}
	b.ReportMetric(frozen.p99US, "frozen-p99-us")
	b.ReportMetric(adaptive.p99US, "adaptive-p99-us")
	b.ReportMetric(float64(frozen.drops), "frozen-drops")
	b.ReportMetric(float64(adaptive.drops), "adaptive-drops")
	b.ReportMetric(float64(adaptive.retunes), "retunes")
}
