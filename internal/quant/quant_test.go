package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"evedge/internal/nn"
)

func randData(seed int64, n int) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = r.Float32()*4 - 2
	}
	return out
}

func TestINT8RoundTrip(t *testing.T) {
	data := randData(1, 1000)
	q, scale := QuantizeINT8(data)
	back := DequantizeINT8(q, scale)
	if len(back) != len(data) {
		t.Fatal("length mismatch")
	}
	// Max error is half a quantization step.
	step := float64(scale)
	for i := range data {
		if math.Abs(float64(data[i]-back[i])) > step/2+1e-6 {
			t.Fatalf("error at %d: %f vs %f (step %f)", i, data[i], back[i], step)
		}
	}
}

func TestINT8Zeros(t *testing.T) {
	q, scale := QuantizeINT8(make([]float32, 10))
	if scale != 1 {
		t.Fatalf("scale=%f", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero data quantized nonzero")
		}
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{1, 1},
		{-2, -2},
		{0.5, 0.5},
		{65504, 65504},   // max half
		{100000, 100000}, // overflows to +inf; fromFP16(inf)=+inf
	}
	for _, c := range cases[:5] {
		got := fromFP16(toFP16(c.in))
		if got != c.want {
			t.Fatalf("fp16(%f)=%f want %f", c.in, got, c.want)
		}
	}
	if !math.IsInf(float64(fromFP16(toFP16(100000))), 1) {
		t.Fatal("overflow should produce +inf")
	}
	// Subnormals survive.
	small := float32(3.0e-7)
	got := fromFP16(toFP16(small))
	if got == 0 || math.Abs(float64(got-small))/float64(small) > 0.1 {
		t.Fatalf("subnormal %g -> %g", small, got)
	}
	// NaN stays NaN.
	nan := math.Float32frombits(0x7fc00000)
	if !math.IsNaN(float64(fromFP16(toFP16(nan)))) {
		t.Fatal("nan lost")
	}
}

// Property: FP16 rounding error is within half a ULP of the binary16
// representation for normal-range values.
func TestFP16Property(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := float32(r.NormFloat64())
		got := fromFP16(toFP16(v))
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel < 1.0/1024 // 2^-10 mantissa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyOrdering(t *testing.T) {
	data := randData(3, 4096)
	fp32 := Apply(data, nn.FP32)
	fp16 := Apply(data, nn.FP16)
	int8v := Apply(data, nn.INT8)
	if MSE(data, fp32) != 0 {
		t.Fatal("FP32 not lossless")
	}
	e16, e8 := MSE(data, fp16), MSE(data, int8v)
	if !(e16 < e8) {
		t.Fatalf("FP16 error %g should be below INT8 error %g", e16, e8)
	}
	if SQNR(data, fp16) <= SQNR(data, int8v) {
		t.Fatal("SQNR ordering wrong")
	}
	if !math.IsInf(SQNR(data, fp32), 1) {
		t.Fatal("lossless SQNR should be +inf")
	}
}

func TestPenaltyMonotone(t *testing.T) {
	if !(Penalty(nn.FP32) < Penalty(nn.FP16) && Penalty(nn.FP16) < Penalty(nn.INT8)) {
		t.Fatal("penalty not monotone in bit-width")
	}
}

func TestModelDelta(t *testing.T) {
	net := nn.MustByName(nn.SpikeFlowNet)
	m := NewModel(net)
	all := func(p nn.Precision) []nn.Precision {
		out := make([]nn.Precision, len(net.Layers))
		for i := range out {
			out[i] = p
		}
		return out
	}
	d32, err := m.Delta(all(nn.FP32))
	if err != nil {
		t.Fatal(err)
	}
	if d32 != 0 {
		t.Fatalf("FP32 delta=%f", d32)
	}
	d16, _ := m.Delta(all(nn.FP16))
	d8, _ := m.Delta(all(nn.INT8))
	if !(d16 < d8) {
		t.Fatalf("delta ordering wrong: fp16=%f int8=%f", d16, d8)
	}
	// Calibration: all-INT8 overshoots the Table 2 budget by the
	// configured factor, so the search must mix precisions.
	budget := Table2Delta(net.Name)
	if math.Abs(d8-calOvershoot*budget)/budget > 1e-9 {
		t.Fatalf("all-INT8 delta %f, want %f", d8, calOvershoot*budget)
	}
	// Mixed precision lands strictly between.
	mixed := all(nn.INT8)
	for i := 0; i < len(mixed); i += 2 {
		mixed[i] = nn.FP16
	}
	dm, _ := m.Delta(mixed)
	if !(dm > d16 && dm < d8) {
		t.Fatalf("mixed delta %f outside (%f, %f)", dm, d16, d8)
	}
	// Length check.
	if _, err := m.Delta([]nn.Precision{nn.FP32}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestModelSampledNoise(t *testing.T) {
	net := nn.MustByName(nn.HidalgoDepth)
	m := NewModel(net)
	precs := make([]nn.Precision, len(net.Layers))
	for i := range precs {
		precs[i] = nn.INT8
	}
	exact, _ := m.Delta(precs)
	// Full-set evaluation has no noise.
	d, err := m.DeltaSampled(precs, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d != exact {
		t.Fatalf("full sample %f != exact %f", d, exact)
	}
	// Subset evaluation is noisy but unbiased-ish and deterministic per seed.
	a, _ := m.DeltaSampled(precs, 0.1, 7)
	b, _ := m.DeltaSampled(precs, 0.1, 7)
	if a != b {
		t.Fatal("sampled delta not deterministic per seed")
	}
	c, _ := m.DeltaSampled(precs, 0.1, 8)
	if a == c {
		t.Fatal("different seeds give identical noise")
	}
	if _, err := m.DeltaSampled(precs, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	// Noise never makes delta negative.
	for seed := int64(0); seed < 50; seed++ {
		v, _ := m.DeltaSampled(precs, 0.05, seed)
		if v < 0 {
			t.Fatalf("negative delta %f", v)
		}
	}
}

func TestTable2Deltas(t *testing.T) {
	// The budgets encode Table 2 exactly.
	cases := map[string]float64{
		nn.SpikeFlowNet:     0.03,
		nn.FusionFlowNet:    0.07,
		nn.AdaptiveSpikeNet: 0.09,
		nn.HALSIE:           2.13,
		nn.HidalgoDepth:     0.02,
		nn.DOTIE:            0.04,
	}
	for name, want := range cases {
		if got := Table2Delta(name); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: %f want %f", name, got, want)
		}
	}
	if Table2Delta("unknown") <= 0 {
		t.Fatal("unknown network needs a positive default budget")
	}
}

func TestMergePenalty(t *testing.T) {
	flow := nn.MustByName(nn.SpikeFlowNet)
	seg := nn.MustByName(nn.HALSIE)
	if MergePenalty(flow, 1.0) != 0 {
		t.Fatal("no merging must cost nothing")
	}
	pf := MergePenalty(flow, 2.0)
	ps := MergePenalty(seg, 2.0)
	if pf <= 0 || ps <= 0 {
		t.Fatal("merging should cost accuracy")
	}
	// Segmentation pays proportionally more of its budget.
	if ps/Table2Delta(seg.Name) <= pf/Table2Delta(flow.Name) {
		t.Fatal("segmentation should be more merge-sensitive")
	}
	// Penalty saturates.
	if MergePenalty(flow, 100) > 0.5*Table2Delta(flow.Name)+1e-12 {
		t.Fatal("penalty must saturate at half the budget")
	}
}

func TestEvEdgeAccuracy(t *testing.T) {
	flow := nn.MustByName(nn.SpikeFlowNet) // AEE: lower better
	if got := EvEdgeAccuracy(flow, 0.03); math.Abs(got-0.96) > 1e-9 {
		t.Fatalf("AEE %f want 0.96", got)
	}
	seg := nn.MustByName(nn.HALSIE) // mIOU: higher better
	if got := EvEdgeAccuracy(seg, 2.13); math.Abs(got-64.18) > 1e-9 {
		t.Fatalf("mIOU %f want 64.18", got)
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MSE([]float32{1}, []float32{1, 2})
}
