// Package quant provides the numeric quantization substrate and the
// accuracy-degradation model used by the Network Mapper's constraint
// (paper Eq. 2: ΔA_n = ||Accuracy_base - Accuracy_search|| <= ΔA).
//
// Two layers:
//
//   - Real numerics: symmetric linear INT8 quantization and IEEE 754
//     half-precision rounding, with reconstruction-error metrics, used
//     by tests and the candidate-evaluation path ("the pretrained
//     network is quantized linearly based on the layer bit-widths").
//   - A per-network accuracy response: a calibrated additive model in
//     which each layer contributes sensitivity x parameter-share x
//     precision-penalty. The calibration constant is chosen so an NMP
//     search that saturates its ΔA budget lands on the paper's
//     Table 2 deltas.
//
// Because the real checkpoints and validation sets are proprietary to
// the paper's setup, the response model substitutes for "evaluate on a
// validation subset" while preserving the mechanics the search relies
// on: monotonicity in bit-width, per-layer heterogeneity, and noisy
// subset evaluation (with a seeded sampler).
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"evedge/internal/nn"
)

// QuantizeINT8 quantizes data symmetrically to signed 8-bit with a
// single scale (scale = maxAbs / 127). It returns the quantized values
// and the scale.
func QuantizeINT8(data []float32) ([]int8, float32) {
	var maxAbs float32
	for _, v := range data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return make([]int8, len(data)), 1
	}
	scale := maxAbs / 127
	q := make([]int8, len(data))
	for i, v := range data {
		r := v / scale
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		q[i] = int8(math.RoundToEven(float64(r)))
	}
	return q, scale
}

// DequantizeINT8 reconstructs float values from INT8 and a scale.
func DequantizeINT8(q []int8, scale float32) []float32 {
	out := make([]float32, len(q))
	for i, v := range q {
		out[i] = float32(v) * scale
	}
	return out
}

// RoundFP16 rounds each value to IEEE 754 binary16 and back,
// reproducing half-precision storage error.
func RoundFP16(data []float32) []float32 {
	out := make([]float32, len(data))
	for i, v := range data {
		out[i] = fromFP16(toFP16(v))
	}
	return out
}

// toFP16 converts a float32 to IEEE 754 half-precision bits with
// round-to-nearest-even.
func toFP16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff
	switch {
	case exp >= 31: // overflow or inf/nan
		if int32(b>>23&0xff) == 255 && mant != 0 {
			return sign | 0x7e00 // nan
		}
		return sign | 0x7c00 // inf
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		v := mant >> shift
		if mant&(half) != 0 && (mant&(half-1) != 0 || v&1 != 0) {
			v++
		}
		return sign | uint16(v)
	default:
		v := uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && v&1 != 0) {
			v++
		}
		return sign | v
	}
}

// fromFP16 expands half-precision bits to float32.
func fromFP16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// Apply returns data stored at precision p: identity for FP32, rounded
// for FP16, quantize-dequantize for INT8.
func Apply(data []float32, p nn.Precision) []float32 {
	switch p {
	case nn.FP32:
		return append([]float32(nil), data...)
	case nn.FP16:
		return RoundFP16(data)
	case nn.INT8:
		q, s := QuantizeINT8(data)
		return DequantizeINT8(q, s)
	}
	return append([]float32(nil), data...)
}

// MSE returns the mean squared reconstruction error.
func MSE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("quant: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return s / float64(len(a))
}

// SQNR returns the signal-to-quantization-noise ratio in dB.
func SQNR(signal, reconstructed []float32) float64 {
	var sig, noise float64
	for i := range signal {
		sig += float64(signal[i]) * float64(signal[i])
		d := float64(signal[i] - reconstructed[i])
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// Penalty maps a precision to its relative accuracy-degradation
// weight: FP32 is lossless, FP16 nearly so, INT8 carries the bulk.
func Penalty(p nn.Precision) float64 {
	switch p {
	case nn.FP32:
		return 0
	case nn.FP16:
		return 0.08
	case nn.INT8:
		return 1.0
	}
	return 1.0
}

// Table2Delta returns the paper's Table 2 accuracy delta (|base -
// Ev-Edge|) for a network, which doubles as the per-task ΔA budget the
// Network Mapper enforces. Networks outside Table 2 get a generic
// budget proportional to their metric scale.
func Table2Delta(name string) float64 {
	switch name {
	case nn.SpikeFlowNet:
		return 0.03 // AEE 0.93 -> 0.96
	case nn.FusionFlowNet:
		return 0.07 // AEE 0.72 -> 0.79
	case nn.AdaptiveSpikeNet:
		return 0.09 // AEE 1.27 -> 1.36
	case nn.HALSIE:
		return 2.13 // mIOU 66.31 -> 64.18
	case nn.HidalgoDepth:
		return 0.02 // Avg Error 0.61 -> 0.63
	case nn.DOTIE:
		return 0.04 // mIOU 0.86 -> 0.82
	case nn.EVFlowNet:
		return 0.05 // not in Table 2; AEE-scale budget
	}
	return 0.05
}

// Model is the calibrated accuracy-response model for one network.
type Model struct {
	net *nn.Network
	// weight[i] = sensitivity_i * paramShare_i, normalized so that
	// sum(weight) == 1.
	weight []float64
	// scale converts the unit response into metric units. Calibrated
	// so that quantizing everything to INT8 overshoots the Table 2
	// budget by calOvershoot (the search must therefore mix precisions
	// to stay feasible, as in the paper).
	scale float64
}

const calOvershoot = 2.0

// NewModel calibrates a response model for the network.
func NewModel(net *nn.Network) *Model {
	m := &Model{net: net, weight: make([]float64, len(net.Layers))}
	var totalParams float64
	for _, l := range net.Layers {
		totalParams += float64(l.ParamCount())
	}
	var sum float64
	for i, l := range net.Layers {
		share := float64(l.ParamCount()) / totalParams
		if totalParams == 0 {
			share = 1 / float64(len(net.Layers))
		}
		m.weight[i] = l.Sensitivity * (share + 1.0/float64(len(net.Layers))) / 2
		sum += m.weight[i]
	}
	for i := range m.weight {
		m.weight[i] /= sum
	}
	// All-INT8 unit response is sum(weight) * Penalty(INT8) == 1.
	m.scale = calOvershoot * Table2Delta(net.Name)
	return m
}

// Delta returns the deterministic accuracy degradation (in metric
// units, always >= 0) for a per-layer precision assignment.
func (m *Model) Delta(precs []nn.Precision) (float64, error) {
	if len(precs) != len(m.net.Layers) {
		return 0, fmt.Errorf("quant: %d precisions for %d layers", len(precs), len(m.net.Layers))
	}
	var u float64
	for i, p := range precs {
		u += m.weight[i] * Penalty(p)
	}
	return u * m.scale, nil
}

// DeltaSampled simulates evaluating the quantized network on a random
// validation subset: the deterministic response plus zero-mean noise
// shrinking with the subset fraction (the paper evaluates candidates
// on "a randomly sampled subset of the validation set" for speed).
func (m *Model) DeltaSampled(precs []nn.Precision, sampleFrac float64, seed int64) (float64, error) {
	d, err := m.Delta(precs)
	if err != nil {
		return 0, err
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		return 0, fmt.Errorf("quant: sample fraction %f outside (0,1]", sampleFrac)
	}
	r := rand.New(rand.NewSource(seed))
	sigma := 0.05 * m.scale * math.Sqrt((1-sampleFrac)/sampleFrac)
	d += r.NormFloat64() * sigma
	if d < 0 {
		d = 0
	}
	return d, nil
}

// MergePenalty returns the extra accuracy degradation caused by DSFA
// merging mergeRatio frames on average (1 = no merging). Pixel-precise
// tasks (segmentation) are hit hardest, which is why the paper limits
// DSFA aggressiveness for HALSIE.
func MergePenalty(net *nn.Network, mergeRatio float64) float64 {
	if mergeRatio <= 1 {
		return 0
	}
	frac := 0.04 * (mergeRatio - 1) // fraction of the Table 2 budget per extra merged frame
	if net.Task == nn.SemanticSegmentation {
		frac *= 3
	}
	if frac > 0.5 {
		frac = 0.5
	}
	return frac * Table2Delta(net.Name)
}

// EvEdgeAccuracy converts a degradation into the reported metric value
// (error metrics worsen upward, score metrics downward).
func EvEdgeAccuracy(net *nn.Network, delta float64) float64 {
	if net.Metric.LowerBetter {
		return net.BaselineAccuracy + delta
	}
	return net.BaselineAccuracy - delta
}
