package harness

import (
	"fmt"
	"sort"
)

// Violation is one failed invariant, anchored at the timeline instant
// that exposed it.
type Violation struct {
	TUS       int64  `json:"t_us"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%dus %s: %s", v.TUS, v.Invariant, v.Detail)
}

// Check verifies the system-wide invariants on a recorded run and
// returns every violation found (empty = pass):
//
//   - conservation: at every recorded instant, fleet-wide
//     frames_in == raw_frames_done + frames_dropped +
//     frames_dropped_dsfa + Σ node residuals (ingest queues + DSFA
//     aggregators, dead incarnations included). Nothing appears or
//     vanishes unaccounted — kills shed into counted residuals, drains
//     and migrations execute what they moved.
//   - monotonic: every *_total counter and the chaos counters never
//     decrease across the timeline, failovers and revives included.
//   - no-loss-on-drain: no scenario may lose a session while any node
//     survives; a scenario that never kills a node must also shed zero
//     frames (drains are lossless by contract).
//   - cooldown: consecutive load-driven migrations are at least the
//     configured rebalance cooldown of virtual time apart (quantized
//     by the sampling tick).
//   - terminal: after teardown every live node's residual is zero and
//     every recorded session final is closed.
func Check(res *Result) []Violation {
	var out []Violation
	entries := append(append([]Entry(nil), res.Timeline...), res.Final)

	// conservation, at every recorded instant.
	for _, e := range entries {
		var rq, ra uint64
		for _, n := range e.Nodes {
			rq += uint64(n.ResidualQueued) + uint64(n.RetiredQueued)
			ra += uint64(n.ResidualAgg) + uint64(n.RetiredAgg)
		}
		accounted := e.Totals.RawFramesDone + e.Totals.FramesDropped + e.Totals.FramesDroppedDSFA + rq + ra
		if e.Totals.FramesIn != accounted {
			out = append(out, Violation{e.TUS, "conservation",
				fmt.Sprintf("frames_in=%d but done+dropped+residual=%d (done=%d qdrop=%d dsfadrop=%d residual=%d+%d)",
					e.Totals.FramesIn, accounted, e.Totals.RawFramesDone,
					e.Totals.FramesDropped, e.Totals.FramesDroppedDSFA, rq, ra)})
		}
	}

	// monotonic counters.
	type counter struct {
		name string
		get  func(Entry) uint64
	}
	counters := []counter{
		{"sessions_total", func(e Entry) uint64 { return e.Totals.Sessions }},
		{"events_total", func(e Entry) uint64 { return e.Totals.EventsIn }},
		{"frames_total", func(e Entry) uint64 { return e.Totals.FramesIn }},
		{"frames_dropped_total", func(e Entry) uint64 { return e.Totals.FramesDropped }},
		{"frames_dropped_dsfa_total", func(e Entry) uint64 { return e.Totals.FramesDroppedDSFA }},
		{"invocations_total", func(e Entry) uint64 { return e.Totals.Invocations }},
		{"raw_frames_done_total", func(e Entry) uint64 { return e.Totals.RawFramesDone }},
		{"retunes_total", func(e Entry) uint64 { return e.Totals.Retunes }},
		{"remaps_total", func(e Entry) uint64 { return e.Totals.Remaps }},
		{"latency_count", func(e Entry) uint64 { return e.Totals.LatencyCount }},
		{"failover_sessions_total", func(e Entry) uint64 { return e.Failovers }},
		{"failover_shed_frames_total", func(e Entry) uint64 { return e.ShedFrames }},
		{"failover_recovered_frames_total", func(e Entry) uint64 { return e.Recovered }},
		{"sessions_lost_total", func(e Entry) uint64 { return e.Lost }},
		{"rebalance_migrations_total", func(e Entry) uint64 { return e.Migrations }},
		{"sched_submitted_total", func(e Entry) uint64 { return e.SchedSubmitted }},
		{"sched_dispatched_total", func(e Entry) uint64 { return e.SchedDispatched }},
		{"sched_dispatches_total", func(e Entry) uint64 { return e.SchedDispatches }},
	}
	for _, c := range counters {
		prev := uint64(0)
		for i, e := range entries {
			v := c.get(e)
			if v < prev {
				out = append(out, Violation{e.TUS, "monotonic",
					fmt.Sprintf("%s fell %d -> %d at entry %d", c.name, prev, v, i)})
			}
			prev = v
		}
	}

	// no-loss-on-drain.
	if res.Final.Lost != 0 {
		out = append(out, Violation{res.Final.TUS, "no-loss-on-drain",
			fmt.Sprintf("%d sessions lost with survivors in the fleet", res.Final.Lost)})
	}
	if res.NoKills && res.Final.ShedFrames != 0 {
		out = append(out, Violation{res.Final.TUS, "no-loss-on-drain",
			fmt.Sprintf("scenario kills no node but shed %d frames (drains must be lossless)", res.Final.ShedFrames)})
	}

	// cooldown: the spacing between observed migration-count increments
	// is at least the cooldown, minus one observation quantum (an
	// increment becomes visible only at the next recorded entry, up to
	// SampleEvery ticks after it happened).
	if res.CooldownUS > 0 {
		slack := res.SampleUS
		if slack <= 0 {
			slack = res.TickUS
		}
		lastT := int64(-1)
		prev := uint64(0)
		for _, e := range entries {
			if e.Migrations > prev {
				// Two increments inside one observation interval are only
				// legal when the cooldown is shorter than the interval.
				if e.Migrations-prev > 1 && res.CooldownUS >= slack {
					out = append(out, Violation{e.TUS, "cooldown",
						fmt.Sprintf("migrations jumped %d -> %d inside one sampling interval", prev, e.Migrations)})
				}
				if lastT >= 0 && e.TUS-lastT < res.CooldownUS-slack {
					out = append(out, Violation{e.TUS, "cooldown",
						fmt.Sprintf("migrations %dus apart, cooldown %dus", e.TUS-lastT, res.CooldownUS)})
				}
				lastT = e.TUS
				prev = e.Migrations
			}
		}
	}

	// terminal state: live nodes drained dry, every session closed.
	for _, n := range res.Final.Nodes {
		if n.State == "dead" {
			continue
		}
		if n.ResidualQueued != 0 || n.ResidualAgg != 0 {
			out = append(out, Violation{res.Final.TUS, "terminal",
				fmt.Sprintf("node %s still holds %d queued + %d aggregated frames after teardown",
					n.Name, n.ResidualQueued, n.ResidualAgg)})
		}
	}
	for _, s := range res.Sessions {
		if s.State != "closed" {
			out = append(out, Violation{res.Final.TUS, "terminal",
				fmt.Sprintf("session %s ended %q, want closed", s.ID, s.State)})
		}
	}
	return out
}

// CheckExpect verifies the scenario's own outcome contract on top of
// the generic invariants.
func CheckExpect(sc Script, res *Result) []Violation {
	var out []Violation
	t := res.Final.TUS
	if res.Final.Totals.Retunes < sc.Expect.MinRetunes {
		out = append(out, Violation{t, "expect",
			fmt.Sprintf("retunes %d < expected %d", res.Final.Totals.Retunes, sc.Expect.MinRetunes)})
	}
	if res.Final.Migrations < sc.Expect.MinMigrations {
		out = append(out, Violation{t, "expect",
			fmt.Sprintf("migrations %d < expected %d", res.Final.Migrations, sc.Expect.MinMigrations)})
	}
	if res.Final.Failovers < sc.Expect.MinFailovers {
		out = append(out, Violation{t, "expect",
			fmt.Sprintf("failovers %d < expected %d", res.Final.Failovers, sc.Expect.MinFailovers)})
	}
	if res.Final.Recovered < sc.Expect.MinRecovered {
		out = append(out, Violation{t, "expect",
			fmt.Sprintf("recovered frames %d < expected %d", res.Final.Recovered, sc.Expect.MinRecovered)})
	}
	if sc.Expect.ZeroShed && res.Final.ShedFrames != 0 {
		out = append(out, Violation{t, "expect",
			fmt.Sprintf("shed %d frames, journaled scenario must shed none", res.Final.ShedFrames)})
	}
	if sc.Expect.Drops {
		if res.Final.Totals.FramesDropped+res.Final.Totals.FramesDroppedDSFA+res.Final.ShedFrames == 0 {
			out = append(out, Violation{t, "expect", "expected load shedding, saw none"})
		}
	}
	if sc.Expect.MinBatchOccupancy > 0 {
		// Same formula as sched.Stats.Occupancy: dispatched members per
		// dispatch, so pending (not yet executed) submissions can never
		// inflate the contract.
		occ := 0.0
		if res.Final.SchedDispatches > 0 {
			occ = float64(res.Final.SchedDispatched) / float64(res.Final.SchedDispatches)
		}
		if occ < sc.Expect.MinBatchOccupancy {
			out = append(out, Violation{t, "expect",
				fmt.Sprintf("micro-batch occupancy %.3f (%d dispatched / %d dispatches) < expected %.3f",
					occ, res.Final.SchedDispatched, res.Final.SchedDispatches, sc.Expect.MinBatchOccupancy)})
		}
	}
	if len(sc.Expect.MaxStageP99US) > 0 {
		byStage := map[string]float64{}
		counts := map[string]uint64{}
		for _, s := range res.Stages {
			byStage[s.Stage] = s.P99US
			counts[s.Stage] = s.Count
		}
		stages := make([]string, 0, len(sc.Expect.MaxStageP99US))
		for stage := range sc.Expect.MaxStageP99US {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			bound := sc.Expect.MaxStageP99US[stage]
			if counts[stage] == 0 {
				out = append(out, Violation{t, "expect",
					fmt.Sprintf("stage %q has a p99 bound but recorded no samples (is Trace on?)", stage)})
				continue
			}
			if p99 := byStage[stage]; p99 > bound {
				out = append(out, Violation{t, "expect",
					fmt.Sprintf("stage %q p99 %.0fus > bound %.0fus", stage, p99, bound)})
			}
		}
	}
	return out
}
