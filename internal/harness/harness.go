package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"evedge/internal/cluster"
	"evedge/internal/events"
	"evedge/internal/obs"
	"evedge/internal/sched"
	"evedge/internal/serve"
)

// driver abstracts the system under test: the sharded fleet or a
// single node. Everything runs synchronously on the caller's
// goroutine.
type driver interface {
	create(cfg serve.SessionConfig) (serve.SessionSnapshot, error)
	ingest(id string, chunk *events.Stream) error
	closeSession(id string) (serve.SessionSnapshot, error)
	pump()
	probe()
	chaos(kind int, name string) error
	totals() serve.SessionTotals
	counters() (failovers, shed, recovered, lost, migrations uint64)
	schedStats() sched.Stats
	nodes() []NodeSample
	stages() []obs.StageSummary
	writeTrace(w io.Writer) error
	close()
}

// clusterDriver runs the scenario against an embedded fleet.
type clusterDriver struct{ c *cluster.Cluster }

func (d *clusterDriver) create(cfg serve.SessionConfig) (serve.SessionSnapshot, error) {
	return d.c.CreateSession(cfg)
}
func (d *clusterDriver) ingest(id string, chunk *events.Stream) error {
	_, err := d.c.Ingest(id, chunk)
	return err
}
func (d *clusterDriver) closeSession(id string) (serve.SessionSnapshot, error) {
	return d.c.CloseSession(id)
}
func (d *clusterDriver) pump()  { d.c.Pump() }
func (d *clusterDriver) probe() { d.c.ProbeNow() }
func (d *clusterDriver) chaos(kind int, name string) error {
	switch kind {
	case actKill:
		return d.c.KillNode(name)
	case actDrain:
		return d.c.DrainNode(name)
	case actRevive:
		return d.c.ReviveNode(name)
	case actUndrain:
		return d.c.UndrainNode(name)
	}
	return fmt.Errorf("harness: unknown chaos kind %d", kind)
}
func (d *clusterDriver) totals() serve.SessionTotals { return d.c.FleetTotals() }
func (d *clusterDriver) schedStats() sched.Stats     { return d.c.SchedTotals() }
func (d *clusterDriver) counters() (uint64, uint64, uint64, uint64, uint64) {
	h := d.c.Health()
	return h.FailoverSessions, h.FailoverShedFrames, h.FailoverRecoveredFrames, h.LostSessions, h.RebalanceMigrations
}
func (d *clusterDriver) nodes() []NodeSample {
	stats := d.c.NodeStats()
	h := d.c.Health()
	out := make([]NodeSample, len(stats))
	for i, st := range stats {
		out[i] = NodeSample{
			Name:           st.Name,
			Platform:       st.Platform,
			State:          st.State,
			Sessions:       h.Nodes[i].SessionsActive,
			Utilization:    h.Nodes[i].Load.Utilization,
			ResidualQueued: st.ResidualQueued,
			ResidualAgg:    st.ResidualAgg,
			RetiredQueued:  st.RetiredQueued,
			RetiredAgg:     st.RetiredAgg,
		}
	}
	return out
}
func (d *clusterDriver) stages() []obs.StageSummary {
	return obs.Summaries(d.c.StageHists())
}
func (d *clusterDriver) writeTrace(w io.Writer) error { return d.c.WriteTrace(w) }
func (d *clusterDriver) close()                       { d.c.Close() }

// serveDriver runs the scenario against one embedded server — the
// same engine exercising the single-node path with no router between.
type serveDriver struct{ s *serve.Server }

func (d *serveDriver) create(cfg serve.SessionConfig) (serve.SessionSnapshot, error) {
	sess, err := d.s.CreateSession(cfg)
	if err != nil {
		return serve.SessionSnapshot{}, err
	}
	return d.s.Snapshot(sess.ID)
}
func (d *serveDriver) ingest(id string, chunk *events.Stream) error {
	_, err := d.s.Ingest(id, chunk)
	return err
}
func (d *serveDriver) closeSession(id string) (serve.SessionSnapshot, error) {
	snap, err := d.s.CloseSession(id)
	if err != nil {
		return serve.SessionSnapshot{}, err
	}
	return *snap, nil
}
func (d *serveDriver) pump()  { d.s.Pump() }
func (d *serveDriver) probe() {}
func (d *serveDriver) chaos(kind int, name string) error {
	return fmt.Errorf("harness: node action on a single-server scenario")
}
func (d *serveDriver) totals() serve.SessionTotals { return d.s.Totals() }
func (d *serveDriver) schedStats() sched.Stats     { return d.s.SchedStats() }
func (d *serveDriver) counters() (uint64, uint64, uint64, uint64, uint64) {
	return 0, 0, 0, 0, 0
}
func (d *serveDriver) nodes() []NodeSample {
	ns := NodeSample{
		Name:        "server",
		Platform:    d.s.Platform().Name,
		State:       "up",
		Utilization: d.s.Load().Utilization,
	}
	for _, snap := range d.s.Snapshots() {
		if snap.State == "active" {
			ns.Sessions++
			ns.ResidualQueued += snap.QueueLen
			ns.ResidualAgg += snap.AggPending
		}
	}
	return []NodeSample{ns}
}
func (d *serveDriver) stages() []obs.StageSummary {
	return obs.Summaries(d.s.StageHists())
}
func (d *serveDriver) writeTrace(w io.Writer) error { return d.s.WriteTrace(w) }
func (d *serveDriver) close()                       { d.s.Close() }

// hsess is one scripted client stream: its fleet session ID plus the
// seeded generator state producing its event chunks.
type hsess struct {
	id   string
	spec SessionSpec
	rng  *rand.Rand
	w, h int
}

// chunk generates the session's events for [t0, t1) at the given rate
// gain: uniformly spread, time-sorted, seeded per session.
func (hs *hsess) chunk(t0, t1 int64, gain float64) *events.Stream {
	s := events.NewStream(hs.w, hs.h)
	n := int(hs.spec.RateHz * gain * float64(t1-t0) / 1e6)
	if n <= 0 {
		return s
	}
	span := t1 - t0
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = t0 + hs.rng.Int63n(span)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for _, t := range ts {
		pol := events.On
		if hs.rng.Intn(2) == 0 {
			pol = events.Off
		}
		s.Append(events.Event{
			X: uint16(hs.rng.Intn(hs.w)), Y: uint16(hs.rng.Intn(hs.h)),
			TS: t, Pol: pol,
		})
	}
	return s
}

// runner is one scenario execution.
type runner struct {
	sc     Script
	seed   int64
	drv    driver
	plan   *plan
	nowUS  int64 // virtual clock, microseconds since start
	open   []*hsess
	nextID int64 // arrival ordinal, seeds each session's RNG
	res    *Result
}

// Run executes the script with the seed and returns the recorded
// timeline. The run is fully deterministic: same (script, seed) pair,
// byte-identical Encode output.
func Run(sc Script, seed int64) (*Result, error) {
	return RunTraced(sc, seed, nil)
}

// RunTraced is Run with an optional Chrome trace sink: when traceW is
// non-nil (and the script enables tracing), the merged trace-event
// JSON is written there after teardown, before the system under test
// shuts down. Under the virtual clock the trace bytes are as
// deterministic as the timeline: same (script, seed), same bytes.
func RunTraced(sc Script, seed int64, traceW io.Writer) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.normalized()
	r := &runner{sc: sc, seed: seed, plan: compile(sc)}
	r.res = &Result{
		Scenario:   sc.Name,
		Seed:       seed,
		TickUS:     sc.TickUS,
		Ticks:      sc.TotalTicks(),
		CooldownUS: sc.RebalanceCooldownUS,
		SampleUS:   int64(sc.SampleEvery) * sc.TickUS,
		NoKills:    true,
	}
	for _, ph := range sc.Phases {
		if len(ph.Kill) > 0 {
			r.res.NoKills = false
		}
	}

	nodeCfg := serve.DefaultConfig()
	nodeCfg.ManualDrain = true
	nodeCfg.Mapper = serve.MapperPolicy(sc.Mapper)
	nodeCfg.BatchMax = sc.BatchMax
	if sc.Adapt {
		nodeCfg.Adapt = serve.AdaptConfig{Retune: true}
	}
	if sc.Trace {
		nodeCfg.Trace = obs.Config{Enabled: true, Node: "server"}
	}
	nodeCfg.Journal = sc.Journal
	nodeCfg.Parallel = sc.Parallel
	if sc.Nodes == "" {
		srv, err := serve.New(nodeCfg)
		if err != nil {
			return nil, err
		}
		r.drv = &serveDriver{s: srv}
	} else {
		specs, err := cluster.ParseNodeSpecs(sc.Nodes)
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(cluster.Config{
			Nodes:             specs,
			Policy:            cluster.PlacementPolicy(sc.Policy),
			ProbeInterval:     -1, // the runner probes explicitly
			RebalanceGap:      sc.RebalanceGap,
			RebalanceCooldown: time.Duration(sc.RebalanceCooldownUS) * time.Microsecond,
			Elapsed:           func() time.Duration { return time.Duration(r.nowUS) * time.Microsecond },
			Node:              nodeCfg,
		})
		if err != nil {
			return nil, err
		}
		r.drv = &clusterDriver{c: c}
	}
	defer r.drv.close()

	if err := r.loop(); err != nil {
		return nil, err
	}
	if sc.Trace {
		r.res.Stages = r.drv.stages()
		if traceW != nil {
			if err := r.drv.writeTrace(traceW); err != nil {
				return nil, fmt.Errorf("harness: writing trace: %w", err)
			}
		}
	}
	return r.res, nil
}

// loop is the tick engine: actions, traffic, pump, probe, sample.
func (r *runner) loop() error {
	total := r.sc.TotalTicks()
	for tick := 0; tick < total; tick++ {
		r.nowUS = int64(tick) * r.sc.TickUS
		for _, a := range r.plan.at(tick) {
			if err := r.apply(a); err != nil {
				return err
			}
		}
		gain := r.plan.gains[tick]
		for _, hs := range r.open {
			chunk := hs.chunk(r.nowUS, r.nowUS+r.sc.TickUS, gain)
			if chunk.Len() == 0 {
				continue
			}
			if err := r.drv.ingest(hs.id, chunk); err != nil {
				return fmt.Errorf("harness: tick %d ingest %s: %w", tick, hs.id, err)
			}
		}
		if (tick+1)%r.sc.PumpEvery == 0 {
			r.drv.pump()
		}
		r.drv.probe()
		if (tick+1)%r.sc.SampleEvery == 0 {
			r.record("sample", "")
		}
	}
	// Teardown: close every open session (flushes aggregators), pump
	// the stragglers, take the terminal observation.
	r.nowUS = int64(total) * r.sc.TickUS
	for len(r.open) > 0 {
		if err := r.depart(1); err != nil {
			return err
		}
	}
	r.drv.pump()
	r.res.Final = r.entry("final", "")
	return nil
}

// apply executes one plan action and records it.
func (r *runner) apply(a action) error {
	switch a.kind {
	case actPhase:
		r.record("phase", "phase "+a.arg)
	case actKill, actDrain, actRevive, actUndrain:
		if err := r.drv.chaos(a.kind, a.arg); err != nil {
			return err
		}
		// Chaos takes effect via the probe pass, immediately — the
		// scripted operator wants the consequence on this tick's record.
		r.drv.probe()
		r.record("action", [...]string{actKill: "kill ", actDrain: "drain ", actRevive: "revive ", actUndrain: "undrain "}[a.kind]+a.arg)
	case actDepart:
		if err := r.depart(a.n); err != nil {
			return err
		}
	case actArrive:
		for i := 0; i < a.n; i++ {
			if err := r.arrive(); err != nil {
				return err
			}
		}
	}
	return nil
}

// arrive creates the next session from the mix.
func (r *runner) arrive() error {
	spec := r.sc.Mix[int(r.nextID)%len(r.sc.Mix)]
	snap, err := r.drv.create(serve.SessionConfig{
		Network:    spec.Network,
		Level:      spec.Level,
		QueueCap:   spec.QueueCap,
		DropPolicy: spec.DropPolicy,
	})
	if err != nil {
		return fmt.Errorf("harness: creating session (%s): %w", spec.Network, err)
	}
	hs := &hsess{
		id:   snap.ID,
		spec: spec,
		rng:  rand.New(rand.NewSource(r.seed ^ (r.nextID+1)*0x1E3779B97F4A7C15)),
		w:    r.sc.SensorW,
		h:    r.sc.SensorH,
	}
	r.nextID++
	r.open = append(r.open, hs)
	node := ""
	if snap.Node != "" {
		node = " -> " + snap.Node
	}
	r.record("action", fmt.Sprintf("create %s (%s/%d)%s", snap.ID, spec.Network, spec.Level, node))
	return nil
}

// depart closes the n oldest open sessions and records their finals.
func (r *runner) depart(n int) error {
	for i := 0; i < n && len(r.open) > 0; i++ {
		hs := r.open[0]
		r.open = r.open[1:]
		snap, err := r.drv.closeSession(hs.id)
		if err != nil {
			return fmt.Errorf("harness: closing session %s: %w", hs.id, err)
		}
		r.res.Rulebook.add(snap.Rulebook)
		r.res.Sessions = append(r.res.Sessions, SessionFinal{
			ID:              snap.ID,
			Network:         snap.Network,
			Level:           snap.Level,
			State:           snap.State,
			Node:            snap.Node,
			EventsIn:        snap.EventsIn,
			FramesIn:        snap.FramesIn,
			FramesDropped:   snap.FramesDropped,
			RawFramesDone:   snap.RawFramesDone,
			Failovers:       snap.Failovers,
			Migrations:      snap.Migrations,
			ShedFrames:      snap.FailoverShedFrames,
			RecoveredFrames: snap.FailoverRecoveredFrames,
			Retunes:         snap.Retunes,
			Remaps:          snap.Remaps,
			MeanLatencyUS:   snap.Latency.MeanUS,
			P99LatencyUS:    snap.Latency.P99US,
		})
		r.record("action", "close "+hs.id)
	}
	return nil
}

// entry builds one timeline record from the current fleet observation.
func (r *runner) entry(kind, note string) Entry {
	fo, shed, rec, lost, mig := r.drv.counters()
	st := r.drv.schedStats()
	return Entry{
		TUS:             r.nowUS,
		Kind:            kind,
		Note:            note,
		Sessions:        len(r.open),
		Totals:          totalsSample(r.drv.totals()),
		Failovers:       fo,
		ShedFrames:      shed,
		Recovered:       rec,
		Lost:            lost,
		Migrations:      mig,
		SchedSubmitted:  st.Submitted,
		SchedDispatched: st.Dispatched,
		SchedDispatches: st.Dispatches,
		Nodes:           r.drv.nodes(),
	}
}

func (r *runner) record(kind, note string) {
	r.res.Timeline = append(r.res.Timeline, r.entry(kind, note))
}
