package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScenarioTraceDeterministic replays batched-burst with tracing on
// and requires byte-identical Chrome trace output AND byte-identical
// timelines (now including the per-stage roll-up) per (scenario, seed).
func TestScenarioTraceDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		var trace bytes.Buffer
		res, err := RunScenarioTraced("batched-burst", 7, &trace)
		if err != nil {
			t.Fatalf("RunScenarioTraced: %v", err)
		}
		enc, err := res.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), enc
	}
	traceA, encA := run()
	traceB, encB := run()
	if !bytes.Equal(traceA, traceB) {
		t.Error("same (scenario, seed), different trace bytes")
	}
	if !bytes.Equal(encA, encB) {
		t.Error("same (scenario, seed), different timelines with tracing on")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceA, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestScenarioTraceStages checks the per-stage roll-up a traced run
// records: the frame-lifecycle stages the batched-burst contract
// bounds (queue, agg, batch, exec) plus end-to-end frame latency all
// saw samples, and the roll-up feeds CheckExpect's MaxStageP99US.
func TestScenarioTraceStages(t *testing.T) {
	sc, err := Get("batched-burst")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trace = true
	res, err := Run(sc, 7)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byStage := map[string]uint64{}
	for _, s := range res.Stages {
		byStage[s.Stage] = s.Count
		t.Logf("stage %-6s count=%-6d mean=%8.0fus p50=%8.0fus p99=%8.0fus max=%8.0fus",
			s.Stage, s.Count, s.MeanUS, s.P50US, s.P99US, s.MaxUS)
	}
	for _, stage := range []string{"queue", "agg", "batch", "exec", "frame"} {
		if byStage[stage] == 0 {
			t.Errorf("stage %q recorded no samples", stage)
		}
	}

	// MaxStageP99US enforcement: a generous bound passes, a 1us bound
	// fails, and a bound on an unrecorded stage is itself a violation.
	sc.Expect.MaxStageP99US = map[string]float64{"exec": 1e12}
	if v := CheckExpect(sc, res); len(v) != 0 {
		t.Errorf("generous stage bound violated: %v", v)
	}
	sc.Expect.MaxStageP99US = map[string]float64{"exec": 1}
	if v := CheckExpect(sc, res); len(v) == 0 {
		t.Error("1us exec p99 bound not flagged")
	}
	sc.Expect.MaxStageP99US = map[string]float64{"nosuch": 1e12}
	if v := CheckExpect(sc, res); len(v) == 0 {
		t.Error("bound on unrecorded stage not flagged")
	}

	// An untraced run records no stages; a stage bound then reports the
	// missing data instead of silently passing.
	sc.Trace = false
	plain, err := Run(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stages) != 0 {
		t.Errorf("untraced run recorded %d stage summaries, want 0", len(plain.Stages))
	}
	sc.Expect.MaxStageP99US = map[string]float64{"exec": 1e12}
	if v := CheckExpect(sc, plain); len(v) == 0 {
		t.Error("stage bound against untraced run not flagged")
	}
}

// TestScenarioTraceNeutral pins behavior neutrality at the scenario
// level: tracing must not change what the system does, only record it.
// The timelines of a traced and an untraced batched-burst run must be
// identical except for the traced run's stage roll-up.
func TestScenarioTraceNeutral(t *testing.T) {
	sc, err := Get("batched-burst")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trace = false
	plain, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	sc.Trace = true
	traced, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	traced.Stages = nil
	ja, _ := plain.Encode()
	jb, _ := traced.Encode()
	if !bytes.Equal(ja, jb) {
		t.Error("tracing changed the recorded timeline (must be observation-only)")
	}
}
