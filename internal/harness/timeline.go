package harness

import (
	"encoding/json"

	"evedge/internal/obs"
	"evedge/internal/serve"
)

// TotalsSample is the JSON-friendly projection of the fleet's
// monotonic counter roll-up recorded in every timeline entry.
type TotalsSample struct {
	Sessions          uint64 `json:"sessions"`
	EventsIn          uint64 `json:"events_in"`
	FramesIn          uint64 `json:"frames_in"`
	FramesDropped     uint64 `json:"frames_dropped"`
	FramesDroppedDSFA uint64 `json:"frames_dropped_dsfa"`
	Invocations       uint64 `json:"invocations"`
	RawFramesDone     uint64 `json:"raw_frames_done"`
	Retunes           uint64 `json:"retunes"`
	Remaps            uint64 `json:"remaps"`
	LatencyCount      uint64 `json:"latency_count"`
}

func totalsSample(t serve.SessionTotals) TotalsSample {
	return TotalsSample{
		Sessions:          t.Sessions,
		EventsIn:          t.EventsIn,
		FramesIn:          t.FramesIn,
		FramesDropped:     t.FramesDropped,
		FramesDroppedDSFA: t.FramesDroppedDSFA,
		Invocations:       t.Invocations,
		RawFramesDone:     t.RawFramesDone,
		Retunes:           t.Retunes,
		Remaps:            t.Remaps,
		LatencyCount:      t.LatencyCount,
	}
}

// NodeSample is one node's state in a timeline entry. Residuals count
// frames sitting in the node's local active sessions (ingest queues
// and DSFA aggregators, every incarnation) — the term that closes
// fleet-wide frame conservation.
type NodeSample struct {
	Name        string  `json:"name"`
	Platform    string  `json:"platform,omitempty"`
	State       string  `json:"state"`
	Sessions    int     `json:"sessions"`
	Utilization float64 `json:"utilization"`
	// Residual* count the current incarnation's in-flight frames;
	// Retired* the frames stranded in killed incarnations (a dead
	// node's own residual moves here when it is revived).
	ResidualQueued int `json:"residual_queued"`
	ResidualAgg    int `json:"residual_agg"`
	RetiredQueued  int `json:"retired_queued,omitempty"`
	RetiredAgg     int `json:"retired_agg,omitempty"`
}

// Entry is one timeline record: a phase marker, an executed action, or
// a periodic sample. Every entry carries the full fleet observation at
// that virtual instant, so invariants can be checked across all of
// them.
type Entry struct {
	TUS  int64  `json:"t_us"`
	Kind string `json:"kind"` // "phase" | "action" | "sample" | "final"
	// Note narrates the entry: "phase flash-crowd", "kill xavier0",
	// "create c3 (DOTIE/2) -> xavier1", "close c1".
	Note string `json:"note,omitempty"`

	Sessions   int          `json:"sessions"` // open fleet sessions
	Totals     TotalsSample `json:"totals"`
	Failovers  uint64       `json:"failovers"`
	ShedFrames uint64       `json:"shed_frames"`
	Lost       uint64       `json:"lost"`
	Migrations uint64       `json:"migrations"`
	// SchedSubmitted/SchedDispatched/SchedDispatches roll up the
	// execution schedulers' counters fleet-wide; dispatched members
	// over dispatches is the micro-batch occupancy the batched-burst
	// contract checks (submitted minus dispatched is the in-flight
	// backlog at the instant of the entry).
	SchedSubmitted  uint64       `json:"sched_submitted"`
	SchedDispatched uint64       `json:"sched_dispatched"`
	SchedDispatches uint64       `json:"sched_dispatches"`
	Nodes           []NodeSample `json:"nodes"`
}

// SessionFinal is one fleet session's terminal record.
type SessionFinal struct {
	ID            string  `json:"id"`
	Network       string  `json:"network"`
	Level         string  `json:"level"`
	State         string  `json:"state"`
	Node          string  `json:"node,omitempty"`
	EventsIn      uint64  `json:"events_in"`
	FramesIn      uint64  `json:"frames_in"`
	FramesDropped uint64  `json:"frames_dropped"`
	RawFramesDone uint64  `json:"raw_frames_done"`
	Failovers     int     `json:"failovers,omitempty"`
	Migrations    int     `json:"migrations,omitempty"`
	ShedFrames    uint64  `json:"shed_frames,omitempty"`
	Retunes       uint64  `json:"retunes,omitempty"`
	Remaps        uint64  `json:"remaps,omitempty"`
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
}

// Result is one scenario run: the full timeline plus the terminal
// state. Encoded with Encode it is byte-identical across runs of the
// same (scenario, seed) pair.
type Result struct {
	Scenario   string         `json:"scenario"`
	Seed       int64          `json:"seed"`
	TickUS     int64          `json:"tick_us"`
	Ticks      int            `json:"ticks"`
	Timeline   []Entry        `json:"timeline"`
	Final      Entry          `json:"final"`
	Sessions   []SessionFinal `json:"session_finals"`
	CooldownUS int64          `json:"rebalance_cooldown_us,omitempty"`
	// SampleUS is the sampling period (SampleEvery ticks of virtual
	// time) — the observation quantum the cooldown check must tolerate:
	// a migration becomes visible only at the next recorded entry.
	SampleUS int64 `json:"sample_us"`
	// NoKills is true when the script never kills a node — the
	// invariant checker then requires zero lost sessions AND zero shed
	// frames (drains must be lossless).
	NoKills bool `json:"no_kills"`
	// Stages is the per-stage frame-lifecycle latency roll-up (merged
	// across nodes), present only when the script enables Trace. A
	// slice of structs, not a map, so Encode stays byte-deterministic.
	Stages []obs.StageSummary `json:"stages,omitempty"`
}

// Encode renders the result as deterministic, indented JSON. Only
// structs and slices are marshalled (no maps), so field order — and
// therefore the byte stream — is fixed for a given run.
func (r *Result) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
