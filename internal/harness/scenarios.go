package harness

import (
	"fmt"
	"io"
	"sort"

	"evedge/internal/nn"
)

// stdMix is the default heterogeneous session palette: a tiny
// windowed tracker, two count-framed flow networks whose frame rate
// follows the event rate, and a slow windowed depth network — four
// tasks, three framing behaviours, two optimization levels.
func stdMix() []SessionSpec {
	return []SessionSpec{
		{Network: nn.DOTIE, Level: 2, QueueCap: 48, RateHz: 60_000},
		{Network: nn.SpikeFlowNet, Level: 2, QueueCap: 32, RateHz: 80_000},
		{Network: nn.EVFlowNet, Level: 1, QueueCap: 32, RateHz: 60_000},
		{Network: nn.HidalgoDepth, Level: 2, QueueCap: 32, RateHz: 50_000},
	}
}

// tightMix is stdMix with small queue bounds — the palette for
// overload scenarios that must shed.
func tightMix() []SessionSpec {
	mix := stdMix()
	for i := range mix {
		mix[i].QueueCap = 12
	}
	return mix
}

// scenarios is the named library. Keep scripts deterministic-friendly:
// every knob that matters is in the script, nothing reads the
// environment.
func scenarios() []Script {
	return []Script{
		{
			Name:  "steady",
			Notes: "Single node, constant load with slow churn: the no-chaos baseline every other scenario is diffed against.",
			Mix:   stdMix(),
			Phases: []Phase{
				{Name: "warmup", Ticks: 10, Arrive: 3},
				{Name: "cruise", Ticks: 40, ArriveEvery: 10, Depart: 1},
				{Name: "cooldown", Ticks: 15, Depart: 2},
			},
		},
		{
			Name:      "flash-crowd",
			Notes:     "A quiet fleet hit by a sudden session wave plus a 6x traffic burst; bounded queues must shed, nothing may leak.",
			Nodes:     "xavier:2",
			Mix:       tightMix(),
			PumpEvery: 2,
			Phases: []Phase{
				{Name: "calm", Ticks: 15, Arrive: 2},
				{Name: "crowd", Ticks: 30, Arrive: 6, Burst: &Burst{FromTick: 5, Ticks: 12, Gain: 6}},
				{Name: "decay", Ticks: 20, Depart: 4},
			},
			Expect: Expect{Drops: true},
		},
		{
			Name: "rolling-kill",
			Notes: "Kill each node in turn, reviving the previous one, with the session journal on: every kill lands on an " +
				"un-pumped backlog, yet failovers replay the replicated journal instead of shedding — the lossless-failover contract.",
			Nodes:     "xavier:3",
			Mix:       stdMix(),
			PumpEvery: 2,
			Journal:   true,
			// Odd phase boundaries put every kill one tick after a skipped
			// pump, so the victim always holds queued frames the journal
			// must recover.
			Phases: []Phase{
				{Name: "warm", Ticks: 9, Arrive: 5},
				{Name: "kill-0", Ticks: 20, Kill: []string{"xavier0"}},
				{Name: "kill-1", Ticks: 20, Revive: []string{"xavier0"}, Kill: []string{"xavier1"}},
				{Name: "kill-2", Ticks: 20, Revive: []string{"xavier1"}, Kill: []string{"xavier2"}},
				{Name: "recover", Ticks: 16, Revive: []string{"xavier2"}},
			},
			Expect: Expect{MinFailovers: 3, ZeroShed: true, MinRecovered: 1},
		},
		{
			Name: "journal-catchup",
			Notes: "One node of a journaled pair dies mid-burst with a deep queued backlog; the buddy replays the replicated " +
				"journal, sheds nothing, and the revived node rejoins for the wind-down.",
			Nodes:     "xavier:2",
			Mix:       stdMix(),
			PumpEvery: 2,
			Journal:   true,
			Phases: []Phase{
				{Name: "warm", Ticks: 9, Arrive: 4, Burst: &Burst{FromTick: 4, Ticks: 5, Gain: 3}},
				{Name: "outage", Ticks: 20, Kill: []string{"xavier0"}},
				{Name: "recover", Ticks: 15, Revive: []string{"xavier0"}, Depart: 1},
			},
			Expect: Expect{MinFailovers: 1, ZeroShed: true, MinRecovered: 1},
		},
		{
			Name:  "drain-rebalance",
			Notes: "Gracefully drain a node and return it: every session survives, zero frames shed — the lossless-maintenance contract.",
			Nodes: "xavier:2,orin:1",
			Mix:   stdMix(),
			Phases: []Phase{
				{Name: "warm", Ticks: 10, Arrive: 6},
				{Name: "drain", Ticks: 25, Drain: []string{"xavier0"}},
				{Name: "return", Ticks: 25, Undrain: []string{"xavier0"}, ArriveEvery: 8},
				{Name: "wind-down", Ticks: 10, Depart: 3},
			},
			Expect: Expect{MinFailovers: 1},
		},
		{
			Name:      "dynamics-flip",
			Notes:     "Scene dynamics flip 1x -> 5x -> 1x on a single adaptive node: the DSFA controller must widen under the storm and narrow after.",
			Adapt:     true,
			Mix:       tightMix(),
			PumpEvery: 2,
			Phases: []Phase{
				{Name: "calm", Ticks: 25, Arrive: 4},
				{Name: "storm", Ticks: 30, RateGain: 5},
				{Name: "calm-again", Ticks: 25, RateGain: 1},
			},
			Expect: Expect{MinRetunes: 1, Drops: true},
		},
		{
			Name:   "hot-node-migration",
			Notes:  "Hash placement skews load across two equal nodes; the rebalancer must migrate sessions off the hot node, one per cooldown.",
			Nodes:  "xavier:2",
			Policy: "hash",
			Mix:    stdMix(),
			// The capacity-weighted utilization of a handful of sessions
			// is ~1e-3, so the gap threshold sits at that scale.
			RebalanceGap:        0.0008,
			RebalanceCooldownUS: 200_000,
			Phases: []Phase{
				{Name: "warm", Ticks: 10, Arrive: 6},
				{Name: "hot", Ticks: 45},
				{Name: "cool", Ticks: 10, Depart: 2},
			},
			Expect: Expect{MinMigrations: 1},
		},
		{
			Name: "batched-burst",
			Notes: "Six same-network sessions on one node under a flash-crowd burst: the execution scheduler must coalesce " +
				"compatible invocations into cross-session micro-batches (occupancy > 1) while conservation holds exactly.",
			Mix:       []SessionSpec{{Network: nn.DOTIE, Level: 2, QueueCap: 64, RateHz: 80_000}},
			PumpEvery: 2,
			Trace:     true,
			Phases: []Phase{
				{Name: "fill", Ticks: 10, Arrive: 6},
				{Name: "crowd", Ticks: 30, Burst: &Burst{FromTick: 5, Ticks: 15, Gain: 4}},
				{Name: "drain", Ticks: 15, Depart: 3},
			},
			// Stage p99 bounds sit ~2x above the measured seed-7 values
			// (queue 43.6ms, exec 1.1ms, frame 14.0ms): loose enough to
			// absorb seed-to-seed variation, tight enough that a stage
			// regression (queue runaway, slow kernels, latency creep)
			// trips the contract.
			Expect: Expect{
				MinBatchOccupancy: 1.5,
				MaxStageP99US:     map[string]float64{"queue": 90_000, "exec": 2_500, "frame": 30_000},
			},
		},
		{
			Name:  "mixed-platform",
			Notes: "Heterogeneous Xavier+Orin fleet under least-loaded placement with churn and one maintenance drain.",
			Nodes: "xavier:2,orin:2",
			Mix:   stdMix(),
			Phases: []Phase{
				{Name: "warm", Ticks: 10, Arrive: 8},
				{Name: "churn", Ticks: 30, ArriveEvery: 6, Depart: 2},
				{Name: "maintain", Ticks: 15, Drain: []string{"xavier0"}},
				{Name: "finish", Ticks: 15, Undrain: []string{"xavier0"}, Depart: 3},
			},
			Expect: Expect{MinFailovers: 1},
		},
		{
			Name:        "soak",
			Notes:       "Long mixed-chaos run: churn, a burst, a drain/undrain cycle and a kill/revive cycle back to back — the regression soak.",
			Nodes:       "xavier:2,orin:1",
			Mix:         stdMix(),
			PumpEvery:   2,
			SampleEvery: 5,
			Phases: []Phase{
				{Name: "warm", Ticks: 20, Arrive: 4},
				{Name: "churn-1", Ticks: 50, ArriveEvery: 10, Depart: 2, Burst: &Burst{FromTick: 20, Ticks: 10, Gain: 3}},
				{Name: "maintain", Ticks: 30, Drain: []string{"orin2"}},
				{Name: "churn-2", Ticks: 50, Undrain: []string{"orin2"}, ArriveEvery: 12, Depart: 2},
				{Name: "outage", Ticks: 30, Kill: []string{"xavier1"}},
				{Name: "recover", Ticks: 40, Revive: []string{"xavier1"}, ArriveEvery: 10},
				{Name: "wind-down", Ticks: 20, Depart: 4},
			},
			Expect: Expect{MinFailovers: 1},
		},
	}
}

// Names lists the scenario library in display order.
func Names() []string {
	all := scenarios()
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}

// Get returns a library scenario by name.
func Get(name string) (Script, error) {
	for _, sc := range scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Script{}, fmt.Errorf("harness: unknown scenario %q (have %v)", name, Names())
}

// RunScenario runs a library scenario by name under the seed.
func RunScenario(name string, seed int64) (*Result, error) {
	sc, err := Get(name)
	if err != nil {
		return nil, err
	}
	return Run(sc, seed)
}

// RunScenarioTraced runs a library scenario by name with tracing
// forced on, writing the Chrome trace-event JSON to w. Byte-identical
// per (scenario, seed).
func RunScenarioTraced(name string, seed int64, w io.Writer) (*Result, error) {
	sc, err := Get(name)
	if err != nil {
		return nil, err
	}
	sc.Trace = true
	return RunTraced(sc, seed, w)
}
