package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestScenarioLibrary runs every library scenario and checks the
// generic invariants plus each scenario's own outcome contract.
func TestScenarioLibrary(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("scenario library has %d entries, want >= 8: %v", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			sc, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, 7)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range Check(res) {
				t.Errorf("invariant: %s", v)
			}
			for _, v := range CheckExpect(sc, res) {
				t.Errorf("expectation: %s", v)
			}
			if res.Final.Totals.FramesIn == 0 {
				t.Error("scenario produced no frames; the script drives nothing")
			}
		})
	}
}

// TestScenarioDeterminism replays every scenario under the same seed
// and requires byte-identical JSON timelines; a different seed must
// still satisfy the invariants (and, being a different event stream,
// should not produce the identical timeline).
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := RunScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			ja, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				i := 0
				for i < len(ja) && i < len(jb) && ja[i] == jb[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("same seed, different timelines; first divergence at byte %d:\n...%s\nvs\n...%s",
					i, ja[lo:min(i+80, len(ja))], jb[lo:min(i+80, len(jb))])
			}
			c, err := RunScenario(name, 43)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range Check(c) {
				t.Errorf("invariant (seed 43): %s", v)
			}
		})
	}
}

// TestScenarioParallelByteIdentical replays scenarios with the kernel
// worker pool enabled and requires the timeline to be byte-identical
// to the serial run: tiled kernels are bit-identical to their serial
// counterparts and rulebook upkeep never touches virtual time, so
// parallelism may only change host wall-clock, never the result.
func TestScenarioParallelByteIdentical(t *testing.T) {
	for _, name := range []string{"steady", "dynamics-flip"} {
		t.Run(name, func(t *testing.T) {
			serial, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			tiled := serial
			tiled.Parallel = 8
			a, err := Run(serial, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(tiled, 42)
			if err != nil {
				t.Fatal(err)
			}
			ja, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				i := 0
				for i < len(ja) && i < len(jb) && ja[i] == jb[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("parallel run diverged from serial; first divergence at byte %d:\n...%s\nvs\n...%s",
					i, ja[lo:min(i+80, len(ja))], jb[lo:min(i+80, len(jb))])
			}
		})
	}
}

// TestScriptValidate covers the script compiler's error paths.
func TestScriptValidate(t *testing.T) {
	base := func() Script {
		return Script{
			Name:   "t",
			Mix:    []SessionSpec{{Network: "DOTIE", Level: 2, RateHz: 1000}},
			Phases: []Phase{{Name: "p", Ticks: 5}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Script)
		want string
	}{
		{"no name", func(s *Script) { s.Name = "" }, "no name"},
		{"no phases", func(s *Script) { s.Phases = nil }, "no phases"},
		{"no mix", func(s *Script) { s.Mix = nil }, "no session mix"},
		{"bad network", func(s *Script) { s.Mix[0].Network = "NoSuchNet" }, "NoSuchNet"},
		{"bad drop policy", func(s *Script) { s.Mix[0].DropPolicy = "drop-random" }, "drop-random"},
		{"zero rate", func(s *Script) { s.Mix[0].RateHz = 0 }, "rate must be positive"},
		{"bad nodes", func(s *Script) { s.Nodes = "tpu:2" }, "tpu"},
		{"bad policy", func(s *Script) { s.Nodes = "xavier:2"; s.Policy = "round-robin" }, "placement policy"},
		{"zero ticks", func(s *Script) { s.Phases[0].Ticks = 0 }, "ticks must be >= 1"},
		{"chaos without cluster", func(s *Script) { s.Phases[0].Kill = []string{"xavier0"} }, "needs a cluster"},
		{"unknown node", func(s *Script) { s.Nodes = "xavier:2"; s.Phases[0].Kill = []string{"orin7"} }, "unknown node"},
		{"burst outside phase", func(s *Script) { s.Phases[0].Burst = &Burst{FromTick: 4, Ticks: 3, Gain: 2} }, "outside phase"},
		{"bad burst gain", func(s *Script) { s.Phases[0].Burst = &Burst{FromTick: 0, Ticks: 2, Gain: 0} }, "gain must be positive"},
		{"rebalance without cluster", func(s *Script) { s.RebalanceGap = 0.1 }, "needs a cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken script")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
}

// TestCompile pins the plan shape: action ordering inside a tick and
// the per-tick gain series.
func TestCompile(t *testing.T) {
	sc := Script{
		Name: "t",
		Mix:  []SessionSpec{{Network: "DOTIE", Level: 2, RateHz: 1000}},
		Phases: []Phase{
			{Name: "a", Ticks: 4, Arrive: 2, Burst: &Burst{FromTick: 1, Ticks: 2, Gain: 3}},
			{Name: "b", Ticks: 3, Depart: 1, ArriveEvery: 2, RateGain: 2},
		},
	}.normalized()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	p := compile(sc)
	wantGains := []float64{1, 3, 3, 1, 2, 2, 2}
	if len(p.gains) != len(wantGains) {
		t.Fatalf("gains len = %d, want %d", len(p.gains), len(wantGains))
	}
	for i, g := range wantGains {
		if p.gains[i] != g {
			t.Errorf("gain[%d] = %g, want %g", i, p.gains[i], g)
		}
	}
	var kinds []string
	for _, a := range p.actions {
		kinds = append(kinds, fmt.Sprintf("%d:%d", a.tick, a.kind))
	}
	// Tick 4 is phase b's start: phase marker, then depart, then the
	// spread arrival lands at tick 6.
	want := []string{"0:0", "0:6", "4:0", "4:5", "6:6"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("plan = %v, want %v", kinds, want)
	}
}
