package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/par"
	"evedge/internal/scene"
	"evedge/internal/serve"
	"evedge/internal/sparse"
)

// BENCH_par.json: the core-scaling artifact for the tiled kernels and
// the rulebook cache. Wall-clock numbers are measured on whatever CI
// box runs this (host_cpus records how many cores it really had);
// speedups at core counts the host does not have are explicit
// work-span projections, never presented as measurements. Virtual-time
// figures are deterministic and asserted exactly.

// parTile is one (cpus) column of a kernel's scaling row.
type parTile struct {
	CPUs   int `json:"cpus"`
	Shards int `json:"shards"`
	// MeasuredNsPerOp is the tiled kernel's wall time on THIS host —
	// on a host with fewer cores than CPUs it measures dispatch
	// overhead on top of serialized shard execution, not speedup.
	MeasuredNsPerOp float64 `json:"measured_wall_ns_per_op"`
	// ProjectedNsPerOp = max(work/cpus, span) + dispatch overhead,
	// where work is the measured serial kernel time, span the largest
	// shard's share of it, and the overhead is the measured cost of an
	// empty dispatch on a pool of this width.
	ProjectedNsPerOp float64 `json:"projected_ns_per_op"`
	ProjectedSpeedup float64 `json:"projected_speedup"`
}

// parKernelRow is one kernel's serial baseline plus its scaling tiles.
type parKernelRow struct {
	Kernel        string    `json:"kernel"`
	Shape         string    `json:"shape"`
	Units         int       `json:"units"` // shardable work units (elements/sites/rows)
	SerialNsPerOp float64   `json:"serial_ns_per_op"`
	Tiles         []parTile `json:"tiles"`
}

// parServingRow is the serial-vs-parallel serving comparison on real
// scene traffic: virtual time must not move at all.
type parServingRow struct {
	Network            string  `json:"network"`
	SerialVirtualFPS   float64 `json:"serial_frames_per_virtual_sec"`
	ParallelVirtualFPS float64 `json:"parallel_frames_per_virtual_sec"`
	VirtualIdentical   bool    `json:"virtual_identical"`
	RawFramesDone      uint64  `json:"raw_frames_done"`
	RulebookHitRate    float64 `json:"rulebook_hit_rate"`
	SavedScanElems     uint64  `json:"rulebook_saved_scan_elems"`
}

// parRulebookRow is one workload's rulebook-cache traffic.
type parRulebookRow struct {
	Workload       string  `json:"workload"`
	Frames         uint64  `json:"frames"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	HitRate        float64 `json:"hit_rate"`
	SitesCarried   uint64  `json:"sites_carried"`
	SitesNew       uint64  `json:"sites_new"`
	SavedScanElems uint64  `json:"saved_scan_elems"`
}

type parBenchDoc struct {
	HostCPUs        int              `json:"host_cpus"`
	ProjectionModel string           `json:"projection_model"`
	Kernels         []parKernelRow   `json:"kernels"`
	Serving         []parServingRow  `json:"serving"`
	Rulebook        []parRulebookRow `json:"rulebook"`
	// ScenariosByteIdentical records that the steady scenario timeline
	// with Parallel=8 matched the serial run byte for byte (the same
	// property TestScenarioParallelByteIdentical gates in CI).
	ScenariosByteIdentical bool `json:"scenarios_byte_identical"`
}

// noopTask measures the pure cost of a pool dispatch.
type noopTask struct{}

func (noopTask) RunShard(int, int, *par.Scratch) {}

func benchNs(f func(b *testing.B)) float64 {
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// parBenchInput builds the dense-tensor workload shared by the conv
// kernels: ~density of 128x128 sites active across 2 channels.
func parBenchInput() (*sparse.Tensor, *sparse.Filter) {
	rng := rand.New(rand.NewSource(42))
	in := sparse.NewTensor(2, 128, 128)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			if rng.Float64() < 0.05 {
				for c := 0; c < in.C; c++ {
					in.Set(c, y, x, rng.Float32())
				}
			}
		}
	}
	f := sparse.NewFilter(8, 2, 3, 1, 1)
	for i := range f.Weights {
		f.Weights[i] = rng.Float32() - 0.5
	}
	return in, f
}

// projectTile computes the work-span projection for c cores: shards
// split units with the same splitRange arithmetic the kernels use, the
// largest shard bounds the span, and the measured empty-dispatch cost
// is added on top.
func projectTile(serialNs float64, units, cpus, shards int, overheadNs float64) float64 {
	maxShard := 0
	for s := 0; s < shards; s++ {
		lo, hi := s*units/shards, (s+1)*units/shards
		if hi-lo > maxShard {
			maxShard = hi - lo
		}
	}
	span := serialNs * float64(maxShard) / float64(units)
	ideal := serialNs / float64(cpus)
	if span > ideal {
		ideal = span
	}
	return ideal + overheadNs
}

var parBenchCPUs = []int{1, 2, 4, 8}

// kernelScaling measures one kernel's serial baseline and tiled runs,
// then fills in the projections.
func kernelScaling(t *testing.T, name, shape string, units int, serial func(b *testing.B), tiled func(pool *par.Pool, shards int) func(b *testing.B)) parKernelRow {
	t.Helper()
	row := parKernelRow{Kernel: name, Shape: shape, Units: units}
	row.SerialNsPerOp = benchNs(serial)
	for _, c := range parBenchCPUs {
		pool := par.New(c)
		shards := 2 * c
		overhead := 0.0
		if c > 1 {
			overhead = benchNs(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pool.Run(shards, noopTask{})
				}
			})
		}
		tile := parTile{
			CPUs:             c,
			Shards:           shards,
			MeasuredNsPerOp:  benchNs(tiled(pool, shards)),
			ProjectedNsPerOp: projectTile(row.SerialNsPerOp, units, c, shards, overhead),
		}
		tile.ProjectedSpeedup = row.SerialNsPerOp / tile.ProjectedNsPerOp
		row.Tiles = append(row.Tiles, tile)
		pool.Close()
	}
	return row
}

// sceneWorkload streams preset scene traffic through a ManualDrain
// server and returns the final session snapshot.
func sceneWorkload(t *testing.T, network string, parallel int) *serve.SessionSnapshot {
	t.Helper()
	cfg := serve.DefaultConfig()
	cfg.ManualDrain = true
	cfg.Parallel = parallel
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	sess, err := srv.CreateSession(serve.SessionConfig{Network: network, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	net := nn.MustByName(network)
	seq, err := scene.NewSequence(net.Input.Preset, scene.Half, 17)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	const dur, chunk = 400_000, 20_000
	stream, err := seq.Generate(dur)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for t0 := int64(0); t0 < dur; t0 += chunk {
		var c *events.Stream = stream.Slice(t0, t0+chunk)
		if c.Len() == 0 {
			continue
		}
		if _, err := srv.Ingest(sess.ID, c); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		srv.Pump()
	}
	fin, err := srv.CloseSession(sess.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	return fin
}

// TestParBenchJSON emits BENCH_par.json (skipped unless BENCH_PAR_JSON
// is set — `make bench-json` is the entry point) and asserts the
// tentpole contracts: >= 2x projected kernel speedup at 4 cores,
// virtual throughput unchanged to the decimal under -parallel, and a
// >= 50% rulebook hit rate on steady coherent scene traffic.
func TestParBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_PAR_JSON")
	if path == "" {
		t.Skip("set BENCH_PAR_JSON=<path> to emit the core-scaling benchmark artifact")
	}
	doc := parBenchDoc{
		HostCPUs: runtime.NumCPU(),
		ProjectionModel: "projected_ns = max(serial_ns/cpus, serial_ns*max_shard_fraction) + measured_empty_dispatch_ns; " +
			"measured_wall_ns is real wall time on this host and shows speedup only when host_cpus >= cpus",
	}

	// --- Kernel scaling ---
	in, f := parBenchInput()
	oh, ow := f.OutShape(in.H, in.W)
	outSub := sparse.NewTensor(f.OutC, in.H, in.W)
	outConv := sparse.NewTensor(f.OutC, oh, ow)
	doc.Kernels = append(doc.Kernels,
		kernelScaling(t, "submanifold_conv2d", "8x2x128x128 k=3 d=5%", in.H*in.W,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := sparse.SubmanifoldConv2DInto(outSub, in, f); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(pool *par.Pool, shards int) func(b *testing.B) {
				return func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := sparse.SubmanifoldConv2DTiledInto(outSub, in, f, pool, shards); err != nil {
							b.Fatal(err)
						}
					}
				}
			}),
		kernelScaling(t, "sparse_conv2d", "8x2x128x128 k=3 d=5%", oh,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := sparse.SparseConv2DInto(outConv, in, f); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(pool *par.Pool, shards int) func(b *testing.B) {
				return func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := sparse.SparseConv2DTiledInto(outConv, in, f, pool, shards); err != nil {
							b.Fatal(err)
						}
					}
				}
			}),
		kernelScaling(t, "conv2d", "8x2x128x128 k=3", f.OutC*oh*ow,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := sparse.Conv2DInto(outConv, in, f); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(pool *par.Pool, shards int) func(b *testing.B) {
				return func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := sparse.Conv2DTiledInto(outConv, in, f, pool, shards); err != nil {
							b.Fatal(err)
						}
					}
				}
			}),
	)

	rng := rand.New(rand.NewSource(9))
	var entries []sparse.COOEntry
	const rows, cols, dcols = 512, 256, 16
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.05 {
				entries = append(entries, sparse.COOEntry{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	csr, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	dmat := sparse.NewMat(cols, dcols)
	for i := range dmat.Data {
		dmat.Data[i] = rng.Float32()
	}
	outMat := sparse.NewMat(rows, dcols)
	doc.Kernels = append(doc.Kernels,
		kernelScaling(t, "csr_spmm", "512x256 d=5% x 256x16", rows,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := csr.SpMMInto(outMat, dmat); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(pool *par.Pool, shards int) func(b *testing.B) {
				return func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := csr.SpMMTiledInto(outMat, dmat, pool, shards); err != nil {
							b.Fatal(err)
						}
					}
				}
			}),
	)

	for _, k := range doc.Kernels {
		for _, tile := range k.Tiles {
			if tile.CPUs == 4 && tile.ProjectedSpeedup < 2 {
				t.Errorf("%s: projected speedup at 4 cores %.2fx < 2x (serial %.0fns, projected %.0fns)",
					k.Kernel, tile.ProjectedSpeedup, k.SerialNsPerOp, tile.ProjectedNsPerOp)
			}
		}
	}

	// --- Serving: virtual time must not move ---
	for _, network := range []string{nn.DOTIE, nn.SpikeFlowNet} {
		serial := sceneWorkload(t, network, 0)
		tiled := sceneWorkload(t, network, 8)
		row := parServingRow{
			Network:            network,
			SerialVirtualFPS:   serial.ThroughputFPS,
			ParallelVirtualFPS: tiled.ThroughputFPS,
			VirtualIdentical:   serial.ThroughputFPS == tiled.ThroughputFPS && serial.RawFramesDone == tiled.RawFramesDone,
			RawFramesDone:      tiled.RawFramesDone,
		}
		if rb := tiled.Rulebook; rb != nil {
			row.RulebookHitRate = rb.HitRate
			row.SavedScanElems = rb.SavedScanElems
			doc.Rulebook = append(doc.Rulebook, parRulebookRow{
				Workload: "scene/" + network, Frames: rb.Frames, Hits: rb.Hits, Misses: rb.Misses,
				HitRate: rb.HitRate, SitesCarried: rb.SitesCarried, SitesNew: rb.SitesNew,
				SavedScanElems: rb.SavedScanElems,
			})
		}
		if !row.VirtualIdentical {
			t.Errorf("%s: parallel serving moved virtual throughput %.6f -> %.6f",
				network, serial.ThroughputFPS, tiled.ThroughputFPS)
		}
		doc.Serving = append(doc.Serving, row)
	}
	// Steady coherent scene traffic (DOTIE tracks a spinning target at
	// 1ms bins) must ride the delta path at least half the time.
	if doc.Rulebook[0].HitRate < 0.5 {
		t.Errorf("steady scene rulebook hit rate %.2f < 0.5: %+v", doc.Rulebook[0].HitRate, doc.Rulebook[0])
	}

	// --- Scenario traffic (uniform-random synthetic events: the
	// worst case for temporal coherence — every frame looks like a
	// scene cut, so the cache degrades to rebuild-per-frame without
	// ever corrupting results) plus the byte-identity check. ---
	for _, name := range []string{"steady", "dynamics-flip"} {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Parallel = 8
		res, err := Run(sc, 42)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		rb := res.Rulebook
		doc.Rulebook = append(doc.Rulebook, parRulebookRow{
			Workload: "scenario/" + name, Frames: rb.Frames, Hits: rb.Hits, Misses: rb.Misses,
			HitRate: rb.HitRate(), SitesCarried: rb.SitesCarried, SitesNew: rb.SitesNew,
			SavedScanElems: rb.SavedScanElems,
		})
		if name == "steady" {
			serialSc, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := Run(serialSc, 42)
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := sres.Encode()
			jb, _ := res.Encode()
			doc.ScenariosByteIdentical = bytes.Equal(ja, jb)
			if !doc.ScenariosByteIdentical {
				t.Error("steady scenario timeline diverged under Parallel=8")
			}
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-par: host_cpus=%d, %s serial %.0fns, projected 4-core speedup %.2fx, steady scene hit rate %.2f -> %s\n",
		doc.HostCPUs, doc.Kernels[0].Kernel, doc.Kernels[0].SerialNsPerOp,
		doc.Kernels[0].Tiles[2].ProjectedSpeedup, doc.Rulebook[0].HitRate, path)
}
