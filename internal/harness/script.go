// Package harness is the deterministic scenario engine for the
// Ev-Edge serving stack. A declarative Script — phases of session
// arrivals and departures over a heterogeneous task mix, traffic
// bursts, scene-dynamics shifts, node kill/drain/revive/undrain — is
// compiled into a timed action plan and executed against an embedded
// cluster.Cluster (or a single serve.Server) on a virtual clock with a
// seeded RNG. Every tick the runner generates each session's event
// chunk, ingests it through the real routing/serving path, pumps the
// manual-drain worker queues, runs one health-probe pass, and records
// a structured timeline entry (fleet totals, per-node residuals,
// failover/migration counters).
//
// Determinism is the point: nothing in the loop reads the wall clock
// or runs on a background goroutine (serve.Config.ManualDrain,
// cluster.Config.Elapsed, negative ProbeInterval), so the same
// (scenario, seed) pair replays to a byte-identical JSON timeline —
// the regression bed every scaling PR runs against. The invariant
// checker in invariants.go then verifies system-wide properties on the
// recorded timeline: fleet-wide frame conservation, monotonic totals,
// no session lost on drain, migration-cooldown respect.
package harness

import (
	"fmt"

	"evedge/internal/cluster"
	"evedge/internal/nn"
	"evedge/internal/serve"
)

// SessionSpec describes one kind of client stream the scenario
// creates: the network it runs, the optimization level, its queue
// bound and shedding policy, and its base event rate.
type SessionSpec struct {
	// Network is a zoo network name (nn.AllNames).
	Network string `json:"network"`
	// Level is the cumulative optimization level 0-3.
	Level int `json:"level"`
	// QueueCap bounds the ingest queue (0 = server default).
	QueueCap int `json:"queue_cap,omitempty"`
	// DropPolicy is "drop-oldest" (default) or "drop-newest".
	DropPolicy string `json:"drop_policy,omitempty"`
	// RateHz is the base event rate in events per stream-second,
	// before phase gains and bursts.
	RateHz float64 `json:"rate_hz"`
}

// Burst is a traffic spike inside a phase: between FromTick and
// FromTick+Ticks (phase-relative), every session's event rate is
// multiplied by Gain on top of the phase gain.
type Burst struct {
	FromTick int     `json:"from_tick"`
	Ticks    int     `json:"ticks"`
	Gain     float64 `json:"gain"`
}

// Phase is one stage of a scenario. All actions fire at the phase
// start tick, in the field order below; arrivals spread over the phase
// when ArriveEvery is set.
type Phase struct {
	Name string `json:"name"`
	// Ticks is the phase duration in scenario ticks (>= 1).
	Ticks int `json:"ticks"`
	// Arrive creates this many sessions at phase start, round-robin
	// over the scenario Mix.
	Arrive int `json:"arrive,omitempty"`
	// ArriveEvery additionally creates one session every N ticks
	// through the phase (0 = off).
	ArriveEvery int `json:"arrive_every,omitempty"`
	// Depart closes the oldest open sessions at phase start.
	Depart int `json:"depart,omitempty"`
	// RateGain scales every session's event rate for the phase
	// (0 = 1.0). Changing it across phases is the scenario's
	// scene-dynamics shift: frame density follows the event rate, and
	// the adaptive controllers see exactly that signal.
	RateGain float64 `json:"rate_gain,omitempty"`
	// Burst is an optional traffic spike inside the phase.
	Burst *Burst `json:"burst,omitempty"`
	// Node chaos at phase start, by node name (e.g. "xavier0").
	Kill    []string `json:"kill,omitempty"`
	Drain   []string `json:"drain,omitempty"`
	Revive  []string `json:"revive,omitempty"`
	Undrain []string `json:"undrain,omitempty"`
}

// Expect is the scenario's own outcome contract, checked by the test
// suite and evscenario on top of the generic invariants.
type Expect struct {
	// MinRetunes is the minimum fleet-wide DSFA retunes.
	MinRetunes uint64 `json:"min_retunes,omitempty"`
	// MinMigrations is the minimum load-driven session migrations.
	MinMigrations uint64 `json:"min_migrations,omitempty"`
	// MinFailovers is the minimum kill/drain session failovers.
	MinFailovers uint64 `json:"min_failovers,omitempty"`
	// MinRecovered is the minimum journal-replayed frames fleet-wide
	// (requires Journal on the script).
	MinRecovered uint64 `json:"min_recovered,omitempty"`
	// ZeroShed requires the run to end with zero failover-shed frames —
	// the lossless-failover contract for journaled scenarios.
	ZeroShed bool `json:"zero_shed,omitempty"`
	// Drops requires at least one shed frame somewhere (ingest queue,
	// DSFA queue, or failover shed).
	Drops bool `json:"drops,omitempty"`
	// MinBatchOccupancy requires the final fleet-wide micro-batch
	// occupancy (scheduler submissions per dispatch) to reach at least
	// this value — > 1 proves cross-invocation coalescing happened.
	MinBatchOccupancy float64 `json:"min_batch_occupancy,omitempty"`
	// MaxStageP99US bounds the p99 of per-stage frame-lifecycle
	// latency (virtual us) by stage name ("queue", "exec", ...).
	// Requires Trace on the script; a named stage that recorded no
	// samples is itself a violation. Checked against Result.Stages.
	MaxStageP99US map[string]float64 `json:"max_stage_p99_us,omitempty"`
}

// Script is a declarative scenario. The zero values of most fields
// take defaults in normalized(); Validate reports structural errors
// before anything runs.
type Script struct {
	Name  string `json:"name"`
	Notes string `json:"notes,omitempty"`

	// Nodes is the fleet spec ("xavier:2,orin:1"); empty runs the
	// scenario against a single embedded serve.Server instead of a
	// cluster (chaos actions are then invalid).
	Nodes string `json:"nodes,omitempty"`
	// Policy is the placement policy (cluster only; "" = least-loaded).
	Policy string `json:"policy,omitempty"`
	// Mapper is the per-node session placement ("" = rr).
	Mapper string `json:"mapper,omitempty"`
	// BatchMax caps the execution scheduler's micro-batches on every
	// node (0 = serve default; 1 = serialized, no coalescing).
	BatchMax int `json:"batch_max,omitempty"`
	// Adapt enables the online control plane (DSFA retuning) on every
	// node for the whole run.
	Adapt bool `json:"adapt,omitempty"`
	// Trace enables frame-lifecycle tracing on every node: the run
	// records per-stage latency histograms into Result.Stages and can
	// emit a Chrome trace via RunTraced. Deterministic under the
	// virtual clock — same (scenario, seed), same trace bytes.
	Trace bool `json:"trace,omitempty"`
	// Journal enables the per-session event journal on every node:
	// ingested chunks replicate to a buddy node and a kill resumes the
	// dead node's sessions by replaying the journal instead of shedding
	// their queued frames.
	Journal bool `json:"journal,omitempty"`
	// Parallel sets every node's kernel worker-pool width (> 1 enables
	// the tiled kernels and the per-session rulebook cache). Tiled
	// kernels are bit-identical to serial ones and rulebook upkeep
	// never touches virtual time, so the timeline is byte-identical to
	// a serial run — asserted by the harness tests.
	Parallel int `json:"parallel,omitempty"`
	// RebalanceGap > 0 enables load-driven session migration between
	// nodes (cluster only), gated by RebalanceCooldownUS of virtual
	// time.
	RebalanceGap        float64 `json:"rebalance_gap,omitempty"`
	RebalanceCooldownUS int64   `json:"rebalance_cooldown_us,omitempty"`

	// TickUS is the virtual tick length (default 20ms).
	TickUS int64 `json:"tick_us,omitempty"`
	// PumpEvery drains the worker queues every N ticks (default 1);
	// larger values let ingest backlog build between drains.
	PumpEvery int `json:"pump_every,omitempty"`
	// SampleEvery records a timeline sample every N ticks (default 1).
	SampleEvery int `json:"sample_every,omitempty"`
	// SensorW/SensorH is the synthetic camera geometry (default
	// 173x130, the half-scale DAVIS346).
	SensorW, SensorH int `json:"-"`

	// Mix is the heterogeneous session palette arrivals cycle through.
	Mix []SessionSpec `json:"mix"`
	// Phases run back to back; total ticks is their sum.
	Phases []Phase `json:"phases"`

	Expect Expect `json:"expect,omitempty"`
}

// Defaults.
const (
	defaultTickUS  = 20_000
	defaultSensorW = 173
	defaultSensorH = 130
)

// normalized fills zero fields with defaults.
func (sc Script) normalized() Script {
	if sc.TickUS <= 0 {
		sc.TickUS = defaultTickUS
	}
	if sc.PumpEvery <= 0 {
		sc.PumpEvery = 1
	}
	if sc.SampleEvery <= 0 {
		sc.SampleEvery = 1
	}
	if sc.SensorW <= 0 {
		sc.SensorW = defaultSensorW
	}
	if sc.SensorH <= 0 {
		sc.SensorH = defaultSensorH
	}
	if sc.RebalanceGap > 0 && sc.RebalanceCooldownUS <= 0 {
		sc.RebalanceCooldownUS = 10 * sc.TickUS
	}
	return sc
}

// Validate reports structural script errors: empty phases or mix,
// unknown networks, chaos actions against a single-server scenario or
// unknown node names, bursts outside their phase.
func (sc Script) Validate() error {
	sc = sc.normalized()
	if sc.Name == "" {
		return fmt.Errorf("harness: script has no name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("harness: script %q has no phases", sc.Name)
	}
	if len(sc.Mix) == 0 {
		return fmt.Errorf("harness: script %q has no session mix", sc.Name)
	}
	for i, m := range sc.Mix {
		if _, err := nn.ByName(m.Network); err != nil {
			return fmt.Errorf("harness: script %q mix[%d]: %w", sc.Name, i, err)
		}
		if _, err := serve.ParseDropPolicy(m.DropPolicy); err != nil {
			return fmt.Errorf("harness: script %q mix[%d]: %w", sc.Name, i, err)
		}
		if m.RateHz <= 0 {
			return fmt.Errorf("harness: script %q mix[%d] (%s): rate must be positive, got %g",
				sc.Name, i, m.Network, m.RateHz)
		}
	}
	nodeNames := map[string]bool{}
	if sc.Nodes != "" {
		specs, err := cluster.ParseNodeSpecs(sc.Nodes)
		if err != nil {
			return fmt.Errorf("harness: script %q: %w", sc.Name, err)
		}
		if _, err := cluster.ParsePlacementPolicy(sc.Policy); err != nil {
			return fmt.Errorf("harness: script %q: %w", sc.Name, err)
		}
		for i, spec := range specs {
			nodeNames[cluster.DefaultNodeName(spec, i)] = true
		}
	}
	for pi, ph := range sc.Phases {
		if ph.Ticks < 1 {
			return fmt.Errorf("harness: script %q phase %d (%s): ticks must be >= 1", sc.Name, pi, ph.Name)
		}
		if ph.Burst != nil {
			b := ph.Burst
			if b.FromTick < 0 || b.Ticks < 1 || b.FromTick+b.Ticks > ph.Ticks {
				return fmt.Errorf("harness: script %q phase %d (%s): burst [%d,%d) outside phase of %d ticks",
					sc.Name, pi, ph.Name, b.FromTick, b.FromTick+b.Ticks, ph.Ticks)
			}
			if b.Gain <= 0 {
				return fmt.Errorf("harness: script %q phase %d (%s): burst gain must be positive", sc.Name, pi, ph.Name)
			}
		}
		for _, group := range [][]string{ph.Kill, ph.Drain, ph.Revive, ph.Undrain} {
			for _, name := range group {
				if sc.Nodes == "" {
					return fmt.Errorf("harness: script %q phase %d (%s): node action %q needs a cluster (Nodes is empty)",
						sc.Name, pi, ph.Name, name)
				}
				if !nodeNames[name] {
					return fmt.Errorf("harness: script %q phase %d (%s): unknown node %q", sc.Name, pi, ph.Name, name)
				}
			}
		}
	}
	if sc.Nodes == "" && sc.RebalanceGap > 0 {
		return fmt.Errorf("harness: script %q: rebalance gap needs a cluster (Nodes is empty)", sc.Name)
	}
	return nil
}

// TotalTicks is the scenario length in ticks.
func (sc Script) TotalTicks() int {
	n := 0
	for _, ph := range sc.Phases {
		n += ph.Ticks
	}
	return n
}

// action kinds, in per-tick execution order.
const (
	actPhase = iota
	actKill
	actDrain
	actRevive
	actUndrain
	actDepart
	actArrive
)

// action is one compiled plan step.
type action struct {
	tick int
	kind int
	arg  string // node name (chaos) or phase name (actPhase)
	n    int    // count (arrive/depart)
}

// plan is the compiled script: actions sorted by (tick, kind) plus the
// per-tick rate gain.
type plan struct {
	actions []action
	gains   []float64 // per tick
}

// compile flattens the phases into absolute-tick actions and gains.
// The script must already be normalized and validated.
func compile(sc Script) *plan {
	p := &plan{gains: make([]float64, sc.TotalTicks())}
	start := 0
	for _, ph := range sc.Phases {
		p.actions = append(p.actions, action{tick: start, kind: actPhase, arg: ph.Name})
		for _, name := range ph.Kill {
			p.actions = append(p.actions, action{tick: start, kind: actKill, arg: name})
		}
		for _, name := range ph.Drain {
			p.actions = append(p.actions, action{tick: start, kind: actDrain, arg: name})
		}
		for _, name := range ph.Revive {
			p.actions = append(p.actions, action{tick: start, kind: actRevive, arg: name})
		}
		for _, name := range ph.Undrain {
			p.actions = append(p.actions, action{tick: start, kind: actUndrain, arg: name})
		}
		if ph.Depart > 0 {
			p.actions = append(p.actions, action{tick: start, kind: actDepart, n: ph.Depart})
		}
		if ph.Arrive > 0 {
			p.actions = append(p.actions, action{tick: start, kind: actArrive, n: ph.Arrive})
		}
		if ph.ArriveEvery > 0 {
			for t := ph.ArriveEvery; t < ph.Ticks; t += ph.ArriveEvery {
				p.actions = append(p.actions, action{tick: start + t, kind: actArrive, n: 1})
			}
		}
		gain := ph.RateGain
		if gain <= 0 {
			gain = 1
		}
		for t := 0; t < ph.Ticks; t++ {
			g := gain
			if b := ph.Burst; b != nil && t >= b.FromTick && t < b.FromTick+b.Ticks {
				g *= b.Gain
			}
			p.gains[start+t] = g
		}
		start += ph.Ticks
	}
	// Stable order inside a tick: phase marker, chaos, departs,
	// arrivals — already appended in that order per phase, and phases
	// are appended in tick order, so a stable sort by tick suffices.
	sortActions(p.actions)
	return p
}

// sortActions orders by tick, preserving per-tick insertion order
// (insertion sort keeps it stable and the slices are small).
func sortActions(a []action) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].tick < a[j-1].tick; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// at returns the actions scheduled for one tick (plan actions are
// sorted by tick).
func (p *plan) at(tick int) []action {
	lo := 0
	for lo < len(p.actions) && p.actions[lo].tick < tick {
		lo++
	}
	hi := lo
	for hi < len(p.actions) && p.actions[hi].tick == tick {
		hi++
	}
	return p.actions[lo:hi]
}
