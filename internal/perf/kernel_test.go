package perf

import (
	"testing"

	"evedge/internal/hw"
	"evedge/internal/nn"
)

// TestProfileDBBestKernel verifies the TensorRT-style tactic
// selection: every best-kernel profile entry equals the minimum of the
// dense and sparse kernel times at the profiled density.
func TestProfileDBBestKernel(t *testing.T) {
	platform := hw.Xavier()
	m := NewModel(platform)
	net := nn.MustByName(nn.SpikeFlowNet)
	db, err := BuildProfileDB(m, []*nn.Network{net}, true, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range net.Layers {
		ref := LayerRef{Task: 0, Layer: li}
		den := db.Density(ref)
		for _, dev := range platform.Devices {
			for _, p := range dev.Precisions() {
				got, ok := db.TimeUS(ref, dev.ID, p)
				if !ok {
					t.Fatalf("missing entry %s/%s/%v", l.Name, dev.Name, p)
				}
				dense, err := m.LayerTimeUS(l, dev, p, ExecOpts{})
				if err != nil {
					t.Fatal(err)
				}
				sp, err := m.LayerTimeUS(l, dev, p, ExecOpts{Sparse: true, InputDensity: den})
				if err != nil {
					t.Fatal(err)
				}
				want := dense
				if sp < want {
					want = sp
				}
				if got != want {
					t.Fatalf("%s/%s/%v: profiled %f, min(dense %f, sparse %f)",
						l.Name, dev.Name, p, got, dense, sp)
				}
			}
		}
	}
	// Dense-only profiling never picks the sparse kernel.
	dbDense, err := BuildProfileDB(m, []*nn.Network{net}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	gpu := platform.MustDevice("GPU")
	for li, l := range net.Layers {
		got, _ := dbDense.TimeUS(LayerRef{Task: 0, Layer: li}, gpu.ID, nn.FP16)
		dense, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{})
		if got != dense {
			t.Fatalf("%s: dense profile %f != dense kernel %f", l.Name, got, dense)
		}
	}
}

// TestSparseWinsWhereExpected pins the kernel-selection boundary: at
// event densities the sparse kernel wins on the GPU, at ANN activation
// densities the dense kernel wins, and on the DLA dense always wins.
func TestSparseWinsWhereExpected(t *testing.T) {
	platform := hw.Xavier()
	m := NewModel(platform)
	gpu := platform.MustDevice("GPU")
	dla := platform.MustDevice("DLA0")
	l := &nn.Layer{
		Name: "conv", Kind: nn.Conv, Domain: nn.ANN,
		InC: 32, InH: 128, InW: 128, OutC: 64, OutH: 128, OutW: 128,
		K: 3, Stride: 1, Pad: 1, Timesteps: 1, ActDensity: 0.5,
	}
	timeAt := func(dev *hw.Device, sparse bool, den float64) float64 {
		v, err := m.LayerTimeUS(l, dev, nn.FP16, ExecOpts{Sparse: sparse, InputDensity: den})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(timeAt(gpu, true, 0.02) < timeAt(gpu, false, 0)) {
		t.Fatal("sparse should win at 2% density on GPU")
	}
	if !(timeAt(gpu, true, 0.5) > timeAt(gpu, false, 0)) {
		t.Fatal("dense should win at 50% density on GPU")
	}
	// The DLA's huge sparse overhead makes dense win at SNN activation
	// densities (>= ~5%), which is what keeps spiking layers off the
	// DLAs in the searched mappings.
	if !(timeAt(dla, true, 0.10) > timeAt(dla, false, 0)) {
		t.Fatal("DLA should prefer dense at SNN activation density")
	}
	// The GPU's break-even sits far higher than the DLA's.
	if !(timeAt(gpu, true, 0.10) < timeAt(gpu, false, 0)) {
		t.Fatal("GPU should still prefer sparse at 10% density")
	}
}
