package perf

import (
	"fmt"
	"sort"

	"evedge/internal/hw"
	"evedge/internal/nn"
)

// LayerRef identifies one layer of one task in a multi-task workload.
type LayerRef struct {
	Task  int // index of the network in the workload
	Layer int // layer ID within the network
}

// ProfileKey addresses one measured configuration.
type ProfileKey struct {
	Ref       LayerRef
	Device    int // device ID
	Precision nn.Precision
}

// ProfileDB holds pre-measured layer execution times — the offline
// profiling step the paper performs with TensorRT before the
// evolutionary search. Lookups during the search are O(1) map reads,
// keeping candidate evaluation fast.
type ProfileDB struct {
	platform *hw.Platform
	networks []*nn.Network
	times    map[ProfileKey]float64
	// densities records the input activation density each layer was
	// profiled at.
	densities map[LayerRef]float64
	sparse    bool
}

// BuildProfileDB profiles every (layer, device, precision) combination
// for the given networks. If sparseExec is true the networks run the
// E2SF path with the given per-task input event densities (density of
// the event frames feeding each network's first layers) and each entry
// records the *faster* of the dense and sparse kernels — the tactic
// selection a TensorRT-style runtime performs, and what the streaming
// executor actually runs. Pass nil densities to profile fully dense.
func BuildProfileDB(m *Model, networks []*nn.Network, sparseExec bool, inputDensity []float64) (*ProfileDB, error) {
	db := &ProfileDB{
		platform:  m.Platform(),
		networks:  networks,
		times:     make(map[ProfileKey]float64),
		densities: make(map[LayerRef]float64),
		sparse:    sparseExec,
	}
	for ti, net := range networks {
		den := 1.0
		if inputDensity != nil {
			if len(inputDensity) != len(networks) {
				return nil, fmt.Errorf("perf: %d densities for %d networks", len(inputDensity), len(networks))
			}
			den = inputDensity[ti]
		}
		for li, l := range net.Layers {
			ref := LayerRef{Task: ti, Layer: li}
			d := den
			if len(net.Preds[li]) > 0 {
				d = producerDensity(net, li)
			}
			db.densities[ref] = d
			for _, dev := range m.Platform().Devices {
				for _, p := range dev.Precisions() {
					t, err := m.LayerTimeUS(l, dev, p, ExecOpts{})
					if err != nil {
						return nil, err
					}
					if sparseExec {
						sp, err := m.LayerTimeUS(l, dev, p, ExecOpts{
							Sparse:       true,
							InputDensity: d,
						})
						if err != nil {
							return nil, err
						}
						if sp < t {
							t = sp
						}
					}
					db.times[ProfileKey{Ref: ref, Device: dev.ID, Precision: p}] = t
				}
			}
		}
	}
	return db, nil
}

// TimeUS looks up a profiled time.
func (db *ProfileDB) TimeUS(ref LayerRef, deviceID int, p nn.Precision) (float64, bool) {
	t, ok := db.times[ProfileKey{Ref: ref, Device: deviceID, Precision: p}]
	return t, ok
}

// Density returns the input density a layer was profiled at.
func (db *ProfileDB) Density(ref LayerRef) float64 { return db.densities[ref] }

// Networks returns the profiled workload.
func (db *ProfileDB) Networks() []*nn.Network { return db.networks }

// Platform returns the profiled platform.
func (db *ProfileDB) Platform() *hw.Platform { return db.platform }

// Sparse reports whether the DB was profiled on the sparse path.
func (db *ProfileDB) Sparse() bool { return db.sparse }

// Len returns the number of profiled entries.
func (db *ProfileDB) Len() int { return len(db.times) }

// Row is one line of a profile dump.
type Row struct {
	Network   string
	Layer     string
	Device    string
	Precision nn.Precision
	TimeUS    float64
}

// Rows returns the full profile sorted by (task, layer, device,
// precision) for reporting (cmd/evprof).
func (db *ProfileDB) Rows() []Row {
	keys := make([]ProfileKey, 0, len(db.times))
	for k := range db.times {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Ref.Task != b.Ref.Task {
			return a.Ref.Task < b.Ref.Task
		}
		if a.Ref.Layer != b.Ref.Layer {
			return a.Ref.Layer < b.Ref.Layer
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Precision < b.Precision
	})
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		net := db.networks[k.Ref.Task]
		out = append(out, Row{
			Network:   net.Name,
			Layer:     net.Layers[k.Ref.Layer].Name,
			Device:    db.platform.Devices[k.Device].Name,
			Precision: k.Precision,
			TimeUS:    db.times[k],
		})
	}
	return out
}
