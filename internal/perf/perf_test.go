package perf

import (
	"testing"

	"evedge/internal/hw"
	"evedge/internal/nn"
)

func model() *Model { return NewModel(hw.Xavier()) }

func bigConv() *nn.Layer {
	return &nn.Layer{
		Name: "conv", Kind: nn.Conv, Domain: nn.ANN,
		InC: 64, InH: 64, InW: 64, OutC: 128, OutH: 64, OutW: 64,
		K: 3, Stride: 1, Pad: 1, Timesteps: 1, ActDensity: 0.5,
	}
}

func snnConv() *nn.Layer {
	l := bigConv()
	l.Domain = nn.SNN
	l.Timesteps = 4
	return l
}

func TestUnsupportedPrecisionRejected(t *testing.T) {
	m := model()
	dla := m.Platform().MustDevice("DLA0")
	if _, err := m.LayerTimeUS(bigConv(), dla, nn.FP32, ExecOpts{}); err == nil {
		t.Fatal("DLA FP32 accepted")
	}
}

func TestDenseTimeOrderings(t *testing.T) {
	m := model()
	l := bigConv()
	gpu := m.Platform().MustDevice("GPU")
	cpu := m.Platform().MustDevice("CPU")

	tGPU32, err := m.LayerTimeUS(l, gpu, nn.FP32, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tGPU8, _ := m.LayerTimeUS(l, gpu, nn.INT8, ExecOpts{})
	tCPU32, _ := m.LayerTimeUS(l, cpu, nn.FP32, ExecOpts{})

	if !(tGPU8 < tGPU32) {
		t.Fatalf("INT8 (%f) should beat FP32 (%f) on GPU", tGPU8, tGPU32)
	}
	if !(tGPU32 < tCPU32) {
		t.Fatalf("GPU (%f) should beat CPU (%f) on a large conv", tGPU32, tCPU32)
	}
}

func TestSparsePathWins_WhenSparseEnough(t *testing.T) {
	m := model()
	l := bigConv()
	gpu := m.Platform().MustDevice("GPU")
	dense, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{})
	sparse5, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{Sparse: true, InputDensity: 0.05})
	sparse90, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{Sparse: true, InputDensity: 0.90})
	if !(sparse5 < dense) {
		t.Fatalf("5%% density sparse (%f) should beat dense (%f)", sparse5, dense)
	}
	// Near-dense input: the derated sparse path loses, which is why
	// the encode/decode detour is unattractive without E2SF.
	if !(sparse90 > dense) {
		t.Fatalf("90%% density sparse (%f) should lose to dense (%f)", sparse90, dense)
	}
}

func TestSNNTimestepPenalty(t *testing.T) {
	m := model()
	gpu := m.Platform().MustDevice("GPU")
	ann, _ := m.LayerTimeUS(bigConv(), gpu, nn.FP16, ExecOpts{})
	snn, _ := m.LayerTimeUS(snnConv(), gpu, nn.FP16, ExecOpts{})
	// Same dense MACs per step but 4 steps plus per-step overheads and
	// lower per-step utilization: clearly slower than 4x … wait, the
	// SNN layer has 4x the MACs (4 steps), so it must be > 4x slower
	// than the ANN layer due to serialization overheads.
	if snn < 4*ann {
		t.Fatalf("SNN 4-step conv (%f) should exceed 4x ANN conv (%f)", snn, 4*ann)
	}
}

func TestBatchingImprovesPerFrameTime(t *testing.T) {
	m := model()
	gpu := m.Platform().MustDevice("GPU")
	// A small sparse kernel underutilizes the GPU; batching 8 frames
	// amortizes launch overhead and lifts utilization.
	small := &nn.Layer{
		Name: "small", Kind: nn.Conv, Domain: nn.ANN,
		InC: 2, InH: 256, InW: 256, OutC: 16, OutH: 128, OutW: 128,
		K: 3, Stride: 2, Pad: 1, Timesteps: 1, ActDensity: 0.5,
	}
	one, _ := m.LayerTimeUS(small, gpu, nn.FP16, ExecOpts{Sparse: true, InputDensity: 0.03})
	eight, _ := m.LayerTimeUS(small, gpu, nn.FP16, ExecOpts{Sparse: true, InputDensity: 0.03, Batch: 8})
	perFrameBatched := eight / 8
	if !(perFrameBatched < one) {
		t.Fatalf("batched per-frame %f should beat single %f", perFrameBatched, one)
	}
}

func TestFramingOverheadCharges(t *testing.T) {
	m := model()
	gpu := m.Platform().MustDevice("GPU")
	l := bigConv()
	plain, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{})
	withFraming, _ := m.LayerTimeUS(l, gpu, nn.FP16, ExecOpts{FramingOverheadOps: 2 * 346 * 260})
	if !(withFraming > plain) {
		t.Fatal("framing overhead not charged")
	}
}

func TestCommModel(t *testing.T) {
	m := model()
	gpu := m.Platform().MustDevice("GPU")
	dla := m.Platform().MustDevice("DLA0")
	l := bigConv()
	if m.CommUS(l, gpu, gpu, nn.FP16) != 0 {
		t.Fatal("same-device comm should be free")
	}
	c16 := m.CommUS(l, gpu, dla, nn.FP16)
	c32 := m.CommUS(l, gpu, dla, nn.FP32)
	if !(c16 < c32) {
		t.Fatal("FP16 transfers should be cheaper than FP32")
	}
	if c16 <= m.Platform().Link.LatencyUS {
		t.Fatal("transfer must include volume term")
	}
	// Sparse input frames ship fewer bytes at low density.
	inSparse := m.InputCommUS(l, true, 0.02, nn.FP16)
	inDense := m.InputCommUS(l, false, 0.02, nn.FP16)
	if !(inSparse < inDense) {
		t.Fatalf("sparse input comm %f should beat dense %f", inSparse, inDense)
	}
}

func TestNetworkTimeAndSNNGainShape(t *testing.T) {
	m := model()
	gpu := m.Platform().MustDevice("GPU")
	// Dense baseline vs sparse path, per network: the sparse gain for
	// the all-SNN network should exceed the all-ANN network's (the
	// paper's "SNNs achieve the highest performance improvements").
	gain := func(name string, density float64) float64 {
		net := nn.MustByName(name)
		dense, err := m.NetworkTimeUS(net, gpu, nn.FP32, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := m.NetworkTimeUS(net, gpu, nn.FP32, ExecOpts{Sparse: true, InputDensity: density})
		if err != nil {
			t.Fatal(err)
		}
		return dense / sp
	}
	snnGain := gain(nn.AdaptiveSpikeNet, 0.01)
	annGain := gain(nn.HidalgoDepth, 0.10)
	if snnGain <= annGain {
		t.Fatalf("SNN sparse gain %f should exceed ANN gain %f", snnGain, annGain)
	}
	if snnGain < 1.1 {
		t.Fatalf("SNN sparse gain %f implausibly low", snnGain)
	}
}

func TestBuildProfileDB(t *testing.T) {
	m := model()
	nets := []*nn.Network{nn.MustByName(nn.DOTIE), nn.MustByName(nn.SpikeFlowNet)}
	db, err := BuildProfileDB(m, nets, true, []float64{0.02, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// DOTIE(1 layer) + SpikeFlowNet(12): layers x supported (dev,prec)
	// combos: CPU 3 + GPU 3 + DLA 2 + DLA 2 = 10 per layer.
	if want := (1 + 12) * 10; db.Len() != want {
		t.Fatalf("entries=%d want %d", db.Len(), want)
	}
	// Lookup works and respects support.
	if _, ok := db.TimeUS(LayerRef{Task: 0, Layer: 0}, 2, nn.FP32); ok {
		t.Fatal("DLA FP32 entry exists")
	}
	tm, ok := db.TimeUS(LayerRef{Task: 1, Layer: 3}, 1, nn.INT8)
	if !ok || tm <= 0 {
		t.Fatalf("missing GPU INT8 time (%f, %v)", tm, ok)
	}
	// First layers profiled at the event density, later at producer
	// activation density.
	if d := db.Density(LayerRef{Task: 1, Layer: 0}); d != 0.05 {
		t.Fatalf("first-layer density %f", d)
	}
	if d := db.Density(LayerRef{Task: 1, Layer: 5}); d != 0.5 {
		t.Fatalf("mid-layer density %f", d)
	}
	rows := db.Rows()
	if len(rows) != db.Len() {
		t.Fatal("rows incomplete")
	}
	if rows[0].Network != "DOTIE" {
		t.Fatalf("rows not sorted: %+v", rows[0])
	}
	// Density list length mismatch rejected.
	if _, err := BuildProfileDB(m, nets, true, []float64{0.5}); err == nil {
		t.Fatal("bad density list accepted")
	}
	if !db.Sparse() || len(db.Networks()) != 2 || db.Platform() == nil {
		t.Fatal("accessors wrong")
	}
}
