// Package perf is the analytical cost model that substitutes for
// on-device TensorRT profiling. Given a layer, a processing element, a
// precision and execution options (dense vs sparse path, input
// activation density, batch size), it predicts execution time in
// microseconds; given producer/consumer placements it predicts
// communication time over unified memory.
//
// The paper measures per-layer times on the Jetson before the search
// ("the individual execution time for each layer and the communication
// time between layers are measured on the hardware platform and
// recorded before the search process begins"); ProfileDB plays that
// role here, built once from the cost model and then treated as a
// lookup table by the Network Mapper.
package perf

import (
	"fmt"

	"evedge/internal/hw"
	"evedge/internal/nn"
)

// ExecOpts selects the execution path for a layer invocation.
type ExecOpts struct {
	// Sparse enables the event-proportional gather-scatter path (the
	// E2SF-enabled mode); dense is the baseline event-frame mode.
	Sparse bool
	// InputDensity is the fraction of active input sites (event-frame
	// spatial density for the first layer, producer activation density
	// downstream). Only used on the sparse path.
	InputDensity float64
	// Batch is the number of frames processed in one invocation (DSFA
	// cBatch merging); 0 means 1.
	Batch int
	// FramingOverheadOps charges extra element operations (dense
	// event-frame construction, sparse encode/decode) to this
	// invocation.
	FramingOverheadOps int64
}

func (o ExecOpts) batch() int {
	if o.Batch < 1 {
		return 1
	}
	return o.Batch
}

// Model predicts execution and communication times for a platform.
type Model struct {
	p *hw.Platform
}

// NewModel builds a cost model over the platform.
func NewModel(p *hw.Platform) *Model {
	return &Model{p: p}
}

// Platform returns the model's platform.
func (m *Model) Platform() *hw.Platform { return m.p }

// LayerTimeUS predicts the execution time of one layer invocation.
// Unsupported (device, precision) pairs return an error.
//
// The model separates arithmetic from occupancy:
//
//   - Utilization follows the output-element parallelism of the kernel
//     (scaled by batch): util = sites / (sites + SaturationSites). A
//     narrow kernel cannot fill the GPU no matter how many MACs each
//     output needs, and DSFA's batching raises exactly this term.
//   - Dense work is the full MAC volume; sparse work is
//     density·MACs/SparseEff plus a dense-proportional overhead
//     fraction (rulebook + output scatter), which caps the best-case
//     sparse gain and makes the sparse path *lose* on near-dense
//     inputs — the encode/decode trap E2SF sidesteps by never building
//     dense frames in the first place.
//   - SNN layers serialize Timesteps dependent steps, each paying the
//     per-step overhead with only a single step's parallelism — the
//     reason SNNs run longest on GPUs (paper Sec. 6).
func (m *Model) LayerTimeUS(l *nn.Layer, d *hw.Device, p nn.Precision, o ExecOpts) (float64, error) {
	peak, ok := d.PeakMACs[p]
	if !ok {
		return 0, fmt.Errorf("perf: %s does not support %v", d.Name, p)
	}
	b := float64(o.batch())

	// Occupancy from output parallelism.
	sites := float64(l.OutC) * float64(l.OutH) * float64(l.OutW) * b
	util := sites / (sites + d.SaturationSites)
	if util <= 0 {
		util = 1e-9
	}

	// Work per timestep (SNN layers serialize their timesteps; ANN
	// layers have Timesteps == 1).
	T := float64(l.Timesteps)
	denseStep := float64(l.MACs()) / T
	var workPerStep float64
	if o.Sparse {
		density := o.InputDensity
		if density < 0 {
			density = 0
		}
		if density > 1 {
			density = 1
		}
		workPerStep = density*denseStep/d.SparseEff + d.SparseOverheadFrac*denseStep
	} else {
		workPerStep = denseStep
	}
	workPerStep *= b

	stepTime := workPerStep / (peak * util) * 1e6 // seconds -> us

	total := d.LaunchUS + T*stepTime
	if T > 1 {
		total += (T - 1) * d.TimestepUS
	}
	if o.FramingOverheadOps > 0 {
		// Element-wise framing ops run at memory speed; approximate with
		// peak/8 scalar throughput.
		total += float64(o.FramingOverheadOps) / (peak / 8) * 1e6
	}
	return total, nil
}

// CommUS predicts the unified-memory transfer time for moving the
// producer's output activations when producer and consumer sit on
// different devices. Same-device edges are free.
func (m *Model) CommUS(l *nn.Layer, from, to *hw.Device, p nn.Precision) float64 {
	if from.ID == to.ID {
		return 0
	}
	bytes := l.OutBytes(p) * int64(l.Timesteps)
	return m.p.Link.TransferUS(bytes)
}

// InputCommUS predicts the cost of delivering an input frame (2
// channels at the layer's input geometry) to the device that runs the
// first layer. Sparse frames ship only active sites (two coordinates
// plus two polarity channels per site).
func (m *Model) InputCommUS(l *nn.Layer, sparseFrames bool, density float64, p nn.Precision) float64 {
	var bytes int64
	if sparseFrames {
		sites := int64(density * float64(l.InH*l.InW))
		bytes = sites * int64(2*4+2*p.Bytes())
	} else {
		bytes = int64(l.InC) * int64(l.InH) * int64(l.InW) * int64(p.Bytes())
	}
	return m.p.Link.TransferUS(bytes)
}

// NetworkTimeUS predicts the end-to-end single-device time of a whole
// network executed layer by layer (chain approximation: inter-layer
// transfers are free on one device).
func (m *Model) NetworkTimeUS(net *nn.Network, d *hw.Device, p nn.Precision, o ExecOpts) (float64, error) {
	var total float64
	for i, l := range net.Layers {
		opts := o
		if i > 0 {
			// Downstream layers see producer activation density, not the
			// event-frame density.
			opts.InputDensity = producerDensity(net, i)
			opts.FramingOverheadOps = 0
		}
		t, err := m.LayerTimeUS(l, d, p, opts)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// producerDensity returns the activation density feeding layer i: the
// max over its predecessors' ActDensity (conservative for concat).
func producerDensity(net *nn.Network, i int) float64 {
	preds := net.Preds[i]
	if len(preds) == 0 {
		return 1
	}
	d := 0.0
	for _, p := range preds {
		if net.Layers[p].ActDensity > d {
			d = net.Layers[p].ActDensity
		}
	}
	return d
}

// InputDensityOrDefault picks the runtime event density if positive,
// else 1 (fully dense).
func InputDensityOrDefault(density float64) float64 {
	if density > 0 {
		return density
	}
	return 1
}
