package dsfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evedge/internal/sparse"
)

// frame builds a sparse frame with the given density and time bounds
// on a 20x20 sensor.
func frame(t0, t1 int64, density float64, seed int64) *sparse.Frame {
	r := rand.New(rand.NewSource(seed))
	f := sparse.NewFrame(20, 20, t0, t1)
	n := int(density * 400)
	for i := 0; i < n; i++ {
		y, x := int32(r.Intn(20)), int32(r.Intn(20))
		if p, ng := f.Get(y, x); p == 0 && ng == 0 {
			f.Set(y, x, 1, 0)
		}
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{EBufSize: 0, MBSize: 1, MtThUS: 1, MdTh: 1, QueueCap: 1},
		{EBufSize: 4, MBSize: 0, MtThUS: 1, MdTh: 1, QueueCap: 1},
		{EBufSize: 4, MBSize: 8, MtThUS: 1, MdTh: 1, QueueCap: 1}, // MBSize > EBufSize
		{EBufSize: 4, MBSize: 2, MtThUS: 0, MdTh: 1, QueueCap: 1},
		{EBufSize: 4, MBSize: 2, MtThUS: 1, MdTh: 0, QueueCap: 1},
		{EBufSize: 4, MBSize: 2, MtThUS: 1, MdTh: 1, QueueCap: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Fatal("New accepted bad config")
	}
}

func TestCModeStrings(t *testing.T) {
	if CAdd.String() != "cAdd" || CAverage.String() != "cAverage" || CBatch.String() != "cBatch" {
		t.Fatal("mode strings wrong")
	}
	if CMode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func TestCAddMergesWithinThresholds(t *testing.T) {
	cfg := Config{EBufSize: 4, MBSize: 4, MtThUS: 100_000, MdTh: 10, Mode: CAdd, QueueCap: 8}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four similar frames arrive within the delay threshold: they all
	// join one bucket; the fourth fills the buffer and flushes.
	for i := int64(0); i < 4; i++ {
		a.Push(frame(i*1000, (i+1)*1000, 0.10, i))
	}
	b := a.Dispatch()
	if b == nil {
		t.Fatal("nothing dispatched")
	}
	if len(b.Merged) != 1 {
		t.Fatalf("buckets=%d want 1", len(b.Merged))
	}
	m := b.Merged[0]
	if m.NumMerged != 4 || len(m.Frames) != 1 {
		t.Fatalf("merged=%d frames=%d", m.NumMerged, len(m.Frames))
	}
	// cAdd conserves events.
	var want float64
	for i := int64(0); i < 4; i++ {
		want += frame(i*1000, (i+1)*1000, 0.10, i).EventCount()
	}
	if got := m.Frames[0].EventCount(); got != want {
		t.Fatalf("events=%f want %f", got, want)
	}
	st := a.Stats()
	if st.MergeRatio() != 4 {
		t.Fatalf("merge ratio=%f", st.MergeRatio())
	}
}

func TestMtThSplitsBuckets(t *testing.T) {
	cfg := Config{EBufSize: 8, MBSize: 8, MtThUS: 5_000, MdTh: 10, Mode: CAdd, QueueCap: 8}
	a, _ := New(cfg)
	a.Push(frame(0, 1000, 0.10, 1))
	a.Push(frame(1000, 2000, 0.10, 2))
	// 50 ms later: violates MtTh, must open a new bucket.
	a.Push(frame(50_000, 51_000, 0.10, 3))
	b := a.Dispatch()
	if len(b.Merged) != 2 {
		t.Fatalf("buckets=%d want 2 (MtTh split)", len(b.Merged))
	}
	if b.Merged[0].NumMerged != 2 || b.Merged[1].NumMerged != 1 {
		t.Fatalf("split wrong: %d/%d", b.Merged[0].NumMerged, b.Merged[1].NumMerged)
	}
}

func TestMdThSplitsBuckets(t *testing.T) {
	cfg := Config{EBufSize: 8, MBSize: 8, MtThUS: 1_000_000, MdTh: 0.3, Mode: CAdd, QueueCap: 8}
	a, _ := New(cfg)
	a.Push(frame(0, 1000, 0.10, 1))
	// Density jumps 3x: relative change 2.0 > 0.3 -> new bucket.
	a.Push(frame(1000, 2000, 0.30, 2))
	b := a.Dispatch()
	if len(b.Merged) != 2 {
		t.Fatalf("buckets=%d want 2 (MdTh split)", len(b.Merged))
	}
}

func TestMBSizeCapsBucket(t *testing.T) {
	cfg := Config{EBufSize: 8, MBSize: 2, MtThUS: 1_000_000, MdTh: 10, Mode: CAdd, QueueCap: 8}
	a, _ := New(cfg)
	for i := int64(0); i < 6; i++ {
		a.Push(frame(i*1000, (i+1)*1000, 0.10, i))
	}
	// 6 frames / bucket cap 2 -> 3 buckets.
	b := a.Dispatch()
	if len(b.Merged) != 3 {
		t.Fatalf("buckets=%d want 3", len(b.Merged))
	}
	for _, m := range b.Merged {
		if m.NumMerged != 2 {
			t.Fatalf("bucket size %d want 2", m.NumMerged)
		}
	}
}

func TestCAverage(t *testing.T) {
	cfg := Config{EBufSize: 2, MBSize: 2, MtThUS: 1_000_000, MdTh: 10, Mode: CAverage, QueueCap: 4}
	a, _ := New(cfg)
	f1 := sparse.NewFrame(20, 20, 0, 10)
	f1.Set(1, 1, 4, 0)
	f2 := sparse.NewFrame(20, 20, 10, 20)
	f2.Set(1, 1, 2, 0)
	a.Push(f1)
	a.Push(f2)
	b := a.Dispatch()
	if b == nil || len(b.Merged) != 1 {
		t.Fatal("expected one merged bucket")
	}
	p, _ := b.Merged[0].Frames[0].Get(1, 1)
	if p != 3 {
		t.Fatalf("average=%f want 3", p)
	}
}

func TestCBatchKeepsFramesSeparate(t *testing.T) {
	cfg := Config{EBufSize: 4, MBSize: 4, MtThUS: 1_000_000, MdTh: 10, Mode: CBatch, QueueCap: 8}
	a, _ := New(cfg)
	for i := int64(0); i < 4; i++ {
		a.Push(frame(i*1000, (i+1)*1000, 0.05, i))
	}
	b := a.Dispatch()
	// Every frame in its own bucket, frames not combined.
	if len(b.Merged) != 4 {
		t.Fatalf("buckets=%d want 4", len(b.Merged))
	}
	if b.FrameCount() != 4 || b.RawFrames() != 4 {
		t.Fatalf("frame counts %d/%d", b.FrameCount(), b.RawFrames())
	}
}

func TestQueueOverflowDropsEarliest(t *testing.T) {
	cfg := Config{EBufSize: 1, MBSize: 1, MtThUS: 1_000_000, MdTh: 10, Mode: CAdd, QueueCap: 2}
	a, _ := New(cfg)
	// Every push flushes one bucket into the queue (EBufSize 1); cap 2
	// means the 5 pushes drop 3 earliest buckets.
	for i := int64(0); i < 5; i++ {
		a.Push(frame(i*1000, (i+1)*1000, 0.10, i))
	}
	st := a.Stats()
	if st.DroppedBuckets != 3 {
		t.Fatalf("dropped=%d want 3", st.DroppedBuckets)
	}
	b := a.Dispatch()
	if len(b.Merged) != 2 {
		t.Fatalf("queued=%d want 2", len(b.Merged))
	}
	// The survivors are the latest frames.
	if b.Merged[0].T0 != 3000 || b.Merged[1].T0 != 4000 {
		t.Fatalf("kept wrong buckets: %d, %d", b.Merged[0].T0, b.Merged[1].T0)
	}
}

func TestEarlyDispatchOnHardwareAvailable(t *testing.T) {
	cfg := Config{EBufSize: 8, MBSize: 4, MtThUS: 1_000_000, MdTh: 10, Mode: CAdd, QueueCap: 8}
	a, _ := New(cfg)
	a.Push(frame(0, 1000, 0.10, 1))
	a.Push(frame(1000, 2000, 0.10, 2))
	// Buffer not full, but hardware is free: dispatch what exists.
	b := a.Dispatch()
	if b == nil || b.RawFrames() != 2 {
		t.Fatal("early dispatch failed")
	}
	if a.Stats().EarlyDispatches != 1 {
		t.Fatalf("early dispatches=%d", a.Stats().EarlyDispatches)
	}
	// Nothing left.
	if a.Dispatch() != nil {
		t.Fatal("dispatch of empty aggregator returned a batch")
	}
}

// Property: no silent loss — every pushed frame is either dispatched,
// dropped (counted), or still pending.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			EBufSize: 1 + r.Intn(8),
			MtThUS:   int64(1 + r.Intn(20_000)),
			MdTh:     0.1 + r.Float64(),
			Mode:     CMode(r.Intn(3)),
			QueueCap: 1 + r.Intn(4),
		}
		cfg.MBSize = 1 + r.Intn(cfg.EBufSize)
		a, err := New(cfg)
		if err != nil {
			return false
		}
		n := 5 + r.Intn(40)
		dispatched := 0
		for i := 0; i < n; i++ {
			t0 := int64(i) * int64(1+r.Intn(10_000))
			a.Push(frame(t0, t0+1000, 0.02+r.Float64()*0.3, r.Int63()))
			if r.Intn(4) == 0 {
				if b := a.Dispatch(); b != nil {
					dispatched += b.RawFrames()
				}
			}
		}
		if b := a.Dispatch(); b != nil {
			dispatched += b.RawFrames()
		}
		st := a.Stats()
		return st.FramesIn == dispatched+st.DroppedFrames+a.PendingFrames() &&
			st.FramesIn == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged frames never interleave time ranges within a
// bucket and bucket members respect MBSize.
func TestBucketInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{EBufSize: 8, MBSize: 1 + r.Intn(8), MtThUS: 10_000, MdTh: 0.5, Mode: CAdd, QueueCap: 16}
		a, err := New(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			t0 := int64(i * 3000)
			a.Push(frame(t0, t0+3000, 0.05+r.Float64()*0.1, r.Int63()))
		}
		b := a.Dispatch()
		if b == nil {
			return true
		}
		for _, m := range b.Merged {
			if m.NumMerged > cfg.MBSize {
				return false
			}
			if m.T1 < m.T0 {
				return false
			}
			if m.Events <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHighActivityMergesMore(t *testing.T) {
	// During a burst (frames arriving densely in time), cAdd with a
	// generous MtTh merges many frames per bucket; in quiet periods
	// buckets stay small. This is the mechanism that clears backlog.
	cfg := Config{EBufSize: 16, MBSize: 8, MtThUS: 8_000, MdTh: 5, Mode: CAdd, QueueCap: 32}
	a, _ := New(cfg)
	// Burst: 8 frames 1 ms apart.
	for i := int64(0); i < 8; i++ {
		a.Push(frame(i*1000, (i+1)*1000, 0.2, i))
	}
	burst := a.Dispatch()
	a2, _ := New(cfg)
	// Quiet: 8 frames 20 ms apart (each exceeds MtTh of the last).
	for i := int64(0); i < 8; i++ {
		a2.Push(frame(i*20_000, i*20_000+1000, 0.2, i))
	}
	quiet := a2.Dispatch()
	if len(burst.Merged) >= len(quiet.Merged) {
		t.Fatalf("burst buckets=%d should be fewer than quiet buckets=%d",
			len(burst.Merged), len(quiet.Merged))
	}
}
