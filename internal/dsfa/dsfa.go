// Package dsfa implements the Dynamic Sparse Frame Aggregator (paper
// Sec. 4.2). Sparse frames produced by E2SF enter an event buffer that
// is partitioned into merge buckets; frames are placed greedily into
// the earliest available bucket subject to a time-delay threshold
// (MtTh) and a spatial-density-change threshold (MdTh). When the
// buffer exceeds its capacity — or earlier, whenever the hardware
// becomes available — buckets are combined according to the merge mode
// (cAdd, cAverage, cBatch), forwarded to a bounded inference queue
// (oldest entries are discarded on overflow), and dispatched as one
// batched input, trading the temporal granularity of events against
// computational demand to track both input dynamics and hardware
// processing capability.
package dsfa

import (
	"fmt"

	"evedge/internal/mem"
	"evedge/internal/sparse"
)

// CMode is the bucket combine mode.
type CMode int

// Combine modes (paper: cAdd, cAverage, cBatch).
const (
	// CAdd sums member frames pixelwise — event counts are conserved.
	CAdd CMode = iota
	// CAverage averages member frames pixelwise.
	CAverage
	// CBatch keeps frames separate; every frame opens its own bucket
	// and batching happens only at dispatch (for high-speed scenes
	// where temporal precision matters).
	CBatch
)

// String names the mode.
func (m CMode) String() string {
	switch m {
	case CAdd:
		return "cAdd"
	case CAverage:
		return "cAverage"
	case CBatch:
		return "cBatch"
	}
	return fmt.Sprintf("CMode(%d)", int(m))
}

// Config tunes the aggregator. Per the paper, MtTh and MdTh need
// per-task tuning (segmentation keeps them tight, which is why DSFA
// helps HALSIE least).
type Config struct {
	// EBufSize is the event-buffer capacity in frames; exceeding it
	// triggers a flush of all buckets to the inference queue.
	EBufSize int
	// MBSize is the per-bucket frame capacity.
	MBSize int
	// MtThUS is the maximum delay between a new frame and the earliest
	// frame of the bucket it joins.
	MtThUS int64
	// MdTh is the maximum relative spatial-density change between the
	// new frame and the bucket's merged density.
	MdTh float64
	// Mode is the combine mode.
	Mode CMode
	// QueueCap bounds the inference queue (merged buckets awaiting
	// dispatch); the earliest entry is discarded on overflow.
	QueueCap int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EBufSize <= 0 {
		return fmt.Errorf("dsfa: EBufSize must be positive, got %d", c.EBufSize)
	}
	if c.MBSize <= 0 || c.MBSize > c.EBufSize {
		return fmt.Errorf("dsfa: MBSize %d outside [1, EBufSize=%d]", c.MBSize, c.EBufSize)
	}
	if c.MtThUS <= 0 {
		return fmt.Errorf("dsfa: MtThUS must be positive, got %d", c.MtThUS)
	}
	if c.MdTh <= 0 {
		return fmt.Errorf("dsfa: MdTh must be positive, got %f", c.MdTh)
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("dsfa: QueueCap must be positive, got %d", c.QueueCap)
	}
	return nil
}

// DefaultConfig returns a moderate tuning: buffer of 8 frames, buckets
// of 4, 20 ms delay tolerance, 50% density change tolerance, cAdd.
func DefaultConfig() Config {
	return Config{EBufSize: 8, MBSize: 4, MtThUS: 20_000, MdTh: 0.5, Mode: CAdd, QueueCap: 4}
}

// bucketStatus is the paper's AVL / FULL flag.
type bucketStatus int

const (
	avl bucketStatus = iota
	full
)

type bucket struct {
	frames   []*sparse.Frame
	earliest int64 // Time(Evf_1)
	meanDen  float64
	status   bucketStatus
	// mode is the combine mode the bucket was opened under; a live
	// Retune must not re-merge frames admitted under different rules.
	mode CMode
}

func (b *bucket) add(f *sparse.Frame) {
	if len(b.frames) == 0 {
		b.earliest = f.T0
	}
	n := float64(len(b.frames))
	b.meanDen = (b.meanDen*n + f.Density()) / (n + 1)
	b.frames = append(b.frames, f)
}

// Merged is one combined bucket forwarded to an inference queue.
type Merged struct {
	// Frames holds one merged frame for cAdd/cAverage, or the member
	// frames for cBatch.
	Frames []*sparse.Frame
	// NumMerged is how many raw sparse frames went in.
	NumMerged int
	// Events is the raw event count that entered the bucket.
	Events float64
	T0, T1 int64
}

// Batch is a dispatch unit: the concatenation of queued merged buckets
// presented to the network as one batched input.
type Batch struct {
	Merged []Merged
}

// FrameCount returns the number of model invocations the batch
// represents (merged frames across buckets).
func (b *Batch) FrameCount() int {
	n := 0
	for _, m := range b.Merged {
		n += len(m.Frames)
	}
	return n
}

// RawFrames returns the number of raw sparse frames that were
// aggregated into the batch.
func (b *Batch) RawFrames() int {
	n := 0
	for _, m := range b.Merged {
		n += m.NumMerged
	}
	return n
}

// Stats tracks aggregator behaviour for the experiments.
type Stats struct {
	FramesIn        int
	EventsIn        float64
	BucketsClosed   int
	FramesDispatch  int     // raw frames inside dispatched batches
	EventsDispatch  float64 // raw events inside dispatched batches
	MergedDispatch  int     // merged buckets dispatched
	DroppedBuckets  int     // buckets discarded on queue overflow
	DroppedFrames   int
	DroppedEvents   float64
	FlushesOnFull   int // flushes triggered by buffer occupancy
	EarlyDispatches int // dispatches triggered by hardware availability
	Retunes         int // live configuration swaps applied
}

// MergeRatio returns mean raw frames per dispatched merged bucket.
func (s Stats) MergeRatio() float64 {
	if s.MergedDispatch == 0 {
		return 0
	}
	return float64(s.FramesDispatch) / float64(s.MergedDispatch)
}

// Aggregator is the DSFA runtime state.
type Aggregator struct {
	cfg     Config
	buckets []*bucket
	queue   []Merged
	stats   Stats

	// pool, when set (SetPool), switches the aggregator to pooled
	// operation: member frames entering cAdd/cAverage buckets are
	// released back to the pool after merging, dropped queue entries
	// release their frames instead of leaking them, bucket structs and
	// queue storage are recycled, and dispatches reuse one Batch whose
	// contents are only valid until the next dispatch. The serving hot
	// path runs pooled; offline callers leave pool nil and keep the
	// allocate-per-dispatch semantics.
	pool        *mem.FramePool
	freeBuckets []*bucket
	spare       []Merged
	batch       Batch
}

// New validates cfg and returns an empty aggregator.
func New(cfg Config) (*Aggregator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{cfg: cfg}, nil
}

// Config returns the aggregator's configuration.
func (a *Aggregator) Config() Config { return a.cfg }

// SetPool enables pooled operation: frames the aggregator consumes
// (members merged under cAdd/cAverage, dropped queue entries) are
// returned to p, merged output frames are borrowed from p, and
// internal bucket/queue/batch storage is recycled. In pooled mode a
// dispatched Batch and its Merged entries are valid only until the
// next dispatch — consume them immediately (the pipeline Stepper
// does). Set it before the first Push; frames pushed afterwards must
// be owned by the same pool.
func (a *Aggregator) SetPool(p *mem.FramePool) { a.pool = p }

// newBucket takes a bucket from the freelist or allocates one.
func (a *Aggregator) newBucket(mode CMode) *bucket {
	if n := len(a.freeBuckets); n > 0 {
		b := a.freeBuckets[n-1]
		a.freeBuckets[n-1] = nil
		a.freeBuckets = a.freeBuckets[:n-1]
		for i := range b.frames {
			b.frames[i] = nil
		}
		b.frames = b.frames[:0]
		b.earliest, b.meanDen, b.status, b.mode = 0, 0, avl, mode
		return b
	}
	return &bucket{mode: mode}
}

// recycleBucket returns a closed bucket's struct to the freelist.
func (a *Aggregator) recycleBucket(b *bucket) {
	a.freeBuckets = append(a.freeBuckets, b)
}

// enqueue appends one zeroed Merged slot to the inference queue,
// reusing spare capacity (and the slot's Frames storage) when present.
func (a *Aggregator) enqueue() *Merged {
	if len(a.queue) < cap(a.queue) {
		a.queue = a.queue[:len(a.queue)+1]
		m := &a.queue[len(a.queue)-1]
		m.Frames = m.Frames[:0]
		m.NumMerged, m.Events, m.T0, m.T1 = 0, 0, 0, 0
		return m
	}
	a.queue = append(a.queue, Merged{})
	return &a.queue[len(a.queue)-1]
}

// dropEarliest sheds the head of the inference queue, releasing its
// frames in pooled mode, and counts the drop.
func (a *Aggregator) dropEarliest() {
	drop := &a.queue[0]
	if a.pool != nil {
		for _, f := range drop.Frames {
			a.pool.Put(f)
		}
	}
	a.stats.DroppedBuckets++
	a.stats.DroppedFrames += drop.NumMerged
	a.stats.DroppedEvents += drop.Events
	a.queue = a.queue[1:]
}

// takeBatch hands the queued merged buckets out as one dispatch unit
// and counts them. In pooled mode the returned Batch and the queue
// storage are recycled on the next dispatch.
func (a *Aggregator) takeBatch() *Batch {
	if len(a.queue) == 0 {
		return nil
	}
	var batch *Batch
	if a.pool != nil {
		a.batch.Merged = a.queue
		a.queue = a.spare[:0]
		a.spare = a.batch.Merged
		batch = &a.batch
	} else {
		batch = &Batch{Merged: a.queue}
		a.queue = nil
	}
	for _, m := range batch.Merged {
		a.stats.MergedDispatch++
		a.stats.FramesDispatch += m.NumMerged
		a.stats.EventsDispatch += m.Events
	}
	return batch
}

// Stats returns a snapshot of the counters.
func (a *Aggregator) Stats() Stats { return a.stats }

// Retune swaps the aggregator's configuration while the stream is live
// — the control plane's hook for tracking scene dynamics and hardware
// backlog after session creation. The swap applies at bucket
// boundaries and conserves frame accounting (raw frames in == merged +
// dropped + pending always holds):
//
//   - Open buckets keep the frames they already admitted; none are
//     re-split or re-placed. A bucket at or over the new MBSize is
//     marked FULL so it dispatches on the next opportunity.
//   - A combine-mode change closes every open bucket (they were formed
//     under the old mode's admission rules) rather than re-merging
//     them; new frames bucket under the new mode.
//   - A tightened QueueCap sheds the earliest queued merged buckets
//     immediately, counted as drops exactly like an overflow.
//
// The new thresholds (MtThUS, MdTh) govern all subsequent placements
// and staleness checks, including for buckets still open.
func (a *Aggregator) Retune(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg == a.cfg {
		return nil
	}
	if cfg.Mode != a.cfg.Mode {
		for _, b := range a.buckets {
			b.status = full
		}
	} else {
		for _, b := range a.buckets {
			if len(b.frames) >= cfg.MBSize {
				b.status = full
			}
		}
	}
	a.cfg = cfg
	for len(a.queue) > a.cfg.QueueCap {
		a.dropEarliest()
	}
	a.stats.Retunes++
	return nil
}

// occupancy is the number of frames currently buffered in buckets.
func (a *Aggregator) occupancy() int {
	n := 0
	for _, b := range a.buckets {
		n += len(b.frames)
	}
	return n
}

// QueueLen returns the number of merged buckets awaiting dispatch.
func (a *Aggregator) QueueLen() int { return len(a.queue) }

// Push inserts a sparse frame produced by E2SF. If the event buffer
// exceeds EBufSize the buckets are flushed to the inference queue.
func (a *Aggregator) Push(f *sparse.Frame) {
	a.stats.FramesIn++
	a.stats.EventsIn += f.EventCount()
	a.place(f)
	if a.occupancy() >= a.cfg.EBufSize {
		a.stats.FlushesOnFull++
		a.flushBuckets()
	}
}

// place implements the greedy earliest-available-bucket policy with
// the MtTh and MdTh admission conditions.
func (a *Aggregator) place(f *sparse.Frame) {
	if a.cfg.Mode == CBatch {
		// cBatch: every frame opens a fresh bucket.
		b := a.newBucket(CBatch)
		b.add(f)
		b.status = full
		a.buckets = append(a.buckets, b)
		return
	}
	for _, b := range a.buckets {
		if b.status != avl {
			continue
		}
		if len(b.frames) >= a.cfg.MBSize {
			b.status = full
			continue
		}
		// Condition (i): delay between the new frame and the bucket's
		// earliest entry within MtTh.
		if f.T0-b.earliest > a.cfg.MtThUS {
			b.status = full
			continue
		}
		// Condition (ii): relative density change within MdTh.
		ref := b.meanDen
		if ref <= 0 {
			ref = 1e-9
		}
		change := (f.Density() - ref) / ref
		if change < 0 {
			change = -change
		}
		if change > a.cfg.MdTh {
			b.status = full
			continue
		}
		b.add(f)
		return
	}
	nb := a.newBucket(a.cfg.Mode)
	nb.add(f)
	a.buckets = append(a.buckets, nb)
}

// flushBuckets combines every bucket per the merge mode and forwards
// the results to the inference queue, discarding the earliest queued
// entries on overflow.
func (a *Aggregator) flushBuckets() {
	for _, b := range a.buckets {
		if len(b.frames) > 0 {
			a.combineInto(b, a.enqueue())
			a.stats.BucketsClosed++
		}
		a.recycleBucket(b)
	}
	a.buckets = a.buckets[:0]
	for len(a.queue) > a.cfg.QueueCap {
		a.dropEarliest()
	}
}

// combineInto merges one bucket into a queue slot. In pooled mode the
// merged output frame is borrowed from the pool and the member frames
// (now dead for cAdd/cAverage) are released back to it.
func (a *Aggregator) combineInto(b *bucket, m *Merged) {
	m.NumMerged = len(b.frames)
	m.T0 = b.frames[0].T0
	m.T1 = b.frames[len(b.frames)-1].T1
	for _, f := range b.frames {
		m.Events += f.EventCount()
	}
	switch b.mode {
	case CAdd, CAverage:
		var merged *sparse.Frame
		if a.pool != nil {
			f0 := b.frames[0]
			merged = a.pool.Get(f0.H, f0.W, f0.T0, f0.T1)
		} else {
			merged = &sparse.Frame{}
		}
		if b.mode == CAdd {
			sparse.MergeAddInto(merged, b.frames...)
		} else {
			sparse.MergeAverageInto(merged, b.frames...)
		}
		m.Frames = append(m.Frames, merged)
		if a.pool != nil {
			for _, f := range b.frames {
				a.pool.Put(f)
			}
		}
	case CBatch:
		m.Frames = append(m.Frames, b.frames...)
	}
}

// MarkStale flips buckets whose earliest member is older than MtTh to
// FULL, so they dispatch on the next opportunity instead of waiting
// for more frames that may never come.
func (a *Aggregator) MarkStale(nowUS int64) {
	for _, b := range a.buckets {
		if b.status == avl && len(b.frames) > 0 && nowUS-b.earliest > a.cfg.MtThUS {
			b.status = full
		}
	}
}

// DispatchReady is the hardware-became-available path ("if the
// hardware platform becomes available before the event buffer reaches
// full capacity, we dispatch the available merge buckets"): buckets
// that are FULL — at capacity, threshold-closed, or stale per MtTh —
// are combined and drained along with anything already queued. Open
// buckets keep filling, preserving the merge opportunity. Returns nil
// when nothing is ready.
func (a *Aggregator) DispatchReady(nowUS int64) *Batch {
	a.MarkStale(nowUS)
	kept := a.buckets[:0]
	for _, b := range a.buckets {
		if b.status == full || len(b.frames) >= a.cfg.MBSize {
			a.stats.BucketsClosed++
			a.combineInto(b, a.enqueue())
			a.recycleBucket(b)
			continue
		}
		kept = append(kept, b)
	}
	a.buckets = kept
	for len(a.queue) > a.cfg.QueueCap {
		a.dropEarliest()
	}
	return a.takeBatch()
}

// Dispatch flushes everything — open buckets included — and drains the
// inference queue into one batched input. It returns nil when nothing
// is pending. Use at end of stream or when temporal granularity must
// be preserved at any cost.
func (a *Aggregator) Dispatch() *Batch {
	if a.occupancy() > 0 {
		a.stats.EarlyDispatches++
		a.flushBuckets()
	}
	return a.takeBatch()
}

// PendingFrames returns buffered-but-undispatched raw frames (buckets
// plus queue) — used by conservation checks.
func (a *Aggregator) PendingFrames() int {
	n := a.occupancy()
	for _, m := range a.queue {
		n += m.NumMerged
	}
	return n
}
