package dsfa

import (
	"math/rand"
	"testing"

	"evedge/internal/sparse"
)

// randConfig draws a valid aggregator tuning.
func randConfig(r *rand.Rand) Config {
	ebuf := 2 + r.Intn(14)
	return Config{
		EBufSize: ebuf,
		MBSize:   1 + r.Intn(ebuf),
		MtThUS:   int64(1+r.Intn(50)) * 1000,
		MdTh:     0.05 + r.Float64(),
		Mode:     CMode(r.Intn(3)),
		QueueCap: 1 + r.Intn(6),
	}
}

// randFrame draws a frame with a few random events so densities vary.
func randFrame(r *rand.Rand, t int64) *sparse.Frame {
	f := sparse.NewFrame(16, 16, t, t+1000)
	for k, n := 0, 1+r.Intn(24); k < n; k++ {
		f.Set(int32(r.Intn(16)), int32(r.Intn(16)), 1, 0)
	}
	return f
}

// checkConservation asserts the aggregator's core accounting
// invariant: every raw frame that entered is either inside a
// dispatched batch, counted dropped, or still pending.
func checkConservation(t *testing.T, a *Aggregator, step int) {
	t.Helper()
	s := a.Stats()
	got := s.FramesDispatch + s.DroppedFrames + a.PendingFrames()
	if got != s.FramesIn {
		t.Fatalf("step %d: dispatched %d + dropped %d + pending %d = %d, want FramesIn %d",
			step, s.FramesDispatch, s.DroppedFrames, a.PendingFrames(), got, s.FramesIn)
	}
}

// TestRetuneConservesAccounting drives randomized interleavings of
// Push, Retune, DispatchReady and Dispatch and checks after every
// operation that raw frames in == merged-dispatched + dropped +
// pending. This is the safety contract Retune must uphold for the
// online controller to be allowed to fire mid-stream.
func TestRetuneConservesAccounting(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		agg, err := New(randConfig(r))
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		now := int64(0)
		var dispatched, retunes int
		for step := 0; step < 400; step++ {
			switch op := r.Intn(10); {
			case op < 6: // push: the common case
				now += int64(r.Intn(3000))
				agg.Push(randFrame(r, now))
			case op < 8: // retune to a fresh random tuning
				if err := agg.Retune(randConfig(r)); err != nil {
					t.Fatalf("seed %d step %d: Retune: %v", seed, step, err)
				}
				retunes++
			case op < 9: // hardware became available
				if b := agg.DispatchReady(now); b != nil {
					dispatched += b.RawFrames()
				}
			default: // full flush
				if b := agg.Dispatch(); b != nil {
					dispatched += b.RawFrames()
				}
			}
			checkConservation(t, agg, step)
		}
		// Final flush: everything unaccounted must drain.
		if b := agg.Dispatch(); b != nil {
			dispatched += b.RawFrames()
		}
		checkConservation(t, agg, 400)
		if agg.PendingFrames() != 0 {
			t.Fatalf("seed %d: %d frames pending after final flush", seed, agg.PendingFrames())
		}
		s := agg.Stats()
		if dispatched != s.FramesDispatch {
			t.Fatalf("seed %d: batches carried %d raw frames, stats say %d", seed, dispatched, s.FramesDispatch)
		}
		if s.Retunes != retunes {
			t.Fatalf("seed %d: %d retunes applied, stats say %d", seed, retunes, s.Retunes)
		}
	}
}

// TestRetuneValidates rejects invalid tunings and leaves state intact.
func TestRetuneValidates(t *testing.T) {
	agg, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	agg.Push(randFrame(rand.New(rand.NewSource(1)), 0))
	bad := DefaultConfig()
	bad.MBSize = bad.EBufSize + 1
	if err := agg.Retune(bad); err == nil {
		t.Fatal("Retune accepted MBSize > EBufSize")
	}
	if agg.Config() != DefaultConfig() {
		t.Fatalf("failed Retune mutated config: %+v", agg.Config())
	}
	if agg.Stats().Retunes != 0 {
		t.Fatal("failed Retune counted")
	}
}

// TestRetuneQueueCapSheds tightens QueueCap mid-stream and checks the
// shed buckets are counted as drops.
func TestRetuneQueueCapSheds(t *testing.T) {
	cfg := Config{EBufSize: 2, MBSize: 1, MtThUS: 1000, MdTh: 0.5, Mode: CAdd, QueueCap: 8}
	agg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := int64(0); i < 6; i++ {
		agg.Push(randFrame(r, i*10_000)) // each flushes straight to the queue
	}
	if agg.QueueLen() < 4 {
		t.Fatalf("setup queued %d buckets, want >= 4", agg.QueueLen())
	}
	tight := cfg
	tight.QueueCap = 2
	if err := agg.Retune(tight); err != nil {
		t.Fatalf("Retune: %v", err)
	}
	if agg.QueueLen() != 2 {
		t.Fatalf("queue len %d after tightening, want 2", agg.QueueLen())
	}
	s := agg.Stats()
	if s.DroppedFrames == 0 || s.DroppedBuckets == 0 {
		t.Fatalf("tightened QueueCap shed nothing: %+v", s)
	}
	if s.FramesDispatch+s.DroppedFrames+agg.PendingFrames() != s.FramesIn {
		t.Fatal("conservation violated after QueueCap tightening")
	}
}

// TestRetuneModeChangeClosesBuckets verifies a combine-mode swap closes
// open buckets instead of re-merging them under the new mode.
func TestRetuneModeChangeClosesBuckets(t *testing.T) {
	cfg := DefaultConfig() // cAdd, MBSize 4
	agg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	agg.Push(randFrame(r, 0))
	agg.Push(randFrame(r, 100)) // same bucket, still open
	next := cfg
	next.Mode = CBatch
	if err := agg.Retune(next); err != nil {
		t.Fatalf("Retune: %v", err)
	}
	// The closed bucket dispatches immediately even though it is not
	// stale and not at capacity.
	b := agg.DispatchReady(200)
	if b == nil || b.RawFrames() != 2 {
		t.Fatalf("mode change did not close the open bucket: %+v", b)
	}
	// The old-mode bucket still merged under cAdd (one combined frame).
	if got := b.FrameCount(); got != 1 {
		t.Fatalf("pre-swap bucket produced %d frames, want 1 merged", got)
	}
}
