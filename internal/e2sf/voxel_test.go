package e2sf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"evedge/internal/events"
	"evedge/internal/scene"
)

func TestConvertVoxelBilinear(t *testing.T) {
	c, err := New(Config{Width: 4, Height: 4, NumBins: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Window [0,100), nB=3: t* = 2*t/100.
	s := mkStream(4, 4,
		events.Event{X: 1, Y: 1, TS: 0, Pol: events.On},   // t*=0: all in bin 0
		events.Event{X: 2, Y: 2, TS: 50, Pol: events.On},  // t*=1: all in bin 1
		events.Event{X: 3, Y: 3, TS: 75, Pol: events.Off}, // t*=1.5: -0.5 in bins 1 and 2
		events.Event{X: 1, Y: 1, TS: 100, Pol: events.On}, // outside window
	)
	g, err := c.ConvertVoxel(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Bins) != 3 {
		t.Fatalf("bins=%d", len(g.Bins))
	}
	if p, _ := g.Bins[0].Get(1, 1); p != 1 {
		t.Fatalf("bin0 (1,1)=%f", p)
	}
	if p, _ := g.Bins[1].Get(2, 2); p != 1 {
		t.Fatalf("bin1 (2,2)=%f", p)
	}
	p1, _ := g.Bins[1].Get(3, 3)
	p2, _ := g.Bins[2].Get(3, 3)
	if p1 != -0.5 || p2 != -0.5 {
		t.Fatalf("split weights (%f, %f)", p1, p2)
	}
	// Mass: 1 + 1 + 1 (absolute) = 3.
	if m := g.Mass(); math.Abs(m-3) > 1e-6 {
		t.Fatalf("mass=%f", m)
	}
}

func TestConvertVoxelErrors(t *testing.T) {
	c, _ := New(Config{Width: 4, Height: 4, NumBins: 1})
	s := mkStream(4, 4)
	if _, err := c.ConvertVoxel(s, 0, 100); err == nil {
		t.Fatal("single-bin voxel accepted")
	}
	c2, _ := New(Config{Width: 4, Height: 4, NumBins: 4})
	if _, err := c2.ConvertVoxel(s, 5, 5); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := c2.ConvertVoxel(mkStream(8, 8), 0, 10); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// Property: voxel mass equals the event count when all events share
// one polarity (no cancellation), and bins stay sorted/valid.
func TestVoxelMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nB := 2 + r.Intn(8)
		s := scene.GenerateUniform(16, 16, 20_000, 50_000, seed)
		// Force single polarity to prevent cancellation.
		for i := range s.Events {
			s.Events[i].Pol = events.On
		}
		c, err := New(Config{Width: 16, Height: 16, NumBins: nB})
		if err != nil {
			return false
		}
		g, err := c.ConvertVoxel(s, 0, 50_000)
		if err != nil {
			return false
		}
		for _, f := range g.Bins {
			// entries sorted by (y,x)
			if !sort.SliceIsSorted(f.Ys, func(i, j int) bool {
				if f.Ys[i] != f.Ys[j] {
					return f.Ys[i] < f.Ys[j]
				}
				return f.Xs[i] < f.Xs[j]
			}) {
				return false
			}
		}
		return math.Abs(g.Mass()-float64(s.Len())) < 1e-3*float64(s.Len())+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuicksortInt64(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 100, 1000} {
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(50)) // duplicates on purpose
		}
		sortInt64s(a)
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
			t.Fatalf("n=%d not sorted", n)
		}
	}
}
