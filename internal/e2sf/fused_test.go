package e2sf

import (
	"math/rand"
	"testing"

	"evedge/internal/events"
	"evedge/internal/mem"
	"evedge/internal/sparse"
)

// randStream builds a sorted random stream over [t0, t1).
func randStream(rng *rand.Rand, w, h, n int, t0, t1 int64) *events.Stream {
	s := events.NewStream(w, h)
	if n == 0 {
		return s
	}
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = t0 + rng.Int63n(t1-t0)
	}
	sortInt64s(ts)
	for _, t := range ts {
		pol := events.On
		if rng.Intn(2) == 0 {
			pol = events.Off
		}
		s.Events = append(s.Events, events.Event{
			TS: t, X: uint16(rng.Intn(w)), Y: uint16(rng.Intn(h)), Pol: pol,
		})
	}
	return s
}

// framesEqual compares the observable frame state (geometry, bounds,
// entries) without caring about nil-vs-empty slice representation.
func framesEqual(t *testing.T, ctx string, got, want *sparse.Frame) {
	t.Helper()
	if got.H != want.H || got.W != want.W || got.T0 != want.T0 || got.T1 != want.T1 {
		t.Fatalf("%s: frame geometry/bounds = %dx%d [%d,%d), want %dx%d [%d,%d)",
			ctx, got.H, got.W, got.T0, got.T1, want.H, want.W, want.T0, want.T1)
	}
	if got.NNZ() != want.NNZ() {
		t.Fatalf("%s: NNZ = %d, want %d", ctx, got.NNZ(), want.NNZ())
	}
	for i := range want.Ys {
		if got.Ys[i] != want.Ys[i] || got.Xs[i] != want.Xs[i] ||
			got.Pos[i] != want.Pos[i] || got.Neg[i] != want.Neg[i] {
			t.Fatalf("%s: entry %d = (%d,%d,%v,%v), want (%d,%d,%v,%v)", ctx, i,
				got.Ys[i], got.Xs[i], got.Pos[i], got.Neg[i],
				want.Ys[i], want.Xs[i], want.Pos[i], want.Neg[i])
		}
	}
}

// TestFusedConvertGroupedParity checks the fused kernel against
// Convert+GroupBins across random streams, group sizes, and bin counts
// — including group sizes larger than the bin count and empty streams.
func TestFusedConvertGroupedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		w, h := 4+rng.Intn(12), 4+rng.Intn(12)
		nB := 1 + rng.Intn(8)
		groupK := 1 + rng.Intn(10) // may exceed nB
		cfg := Config{Width: w, Height: h, NumBins: nB}
		conv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := NewFused(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		t0 := rng.Int63n(1000)
		t1 := t0 + 1 + rng.Int63n(997) // deliberately not a multiple of nB
		s := randStream(rng, w, h, rng.Intn(400), t0, t1)

		frames, uSt, err := conv.Convert(s, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GroupBins(frames, groupK)
		if err != nil {
			t.Fatal(err)
		}
		got, fSt, err := fused.ConvertGrouped(s, t0, t1, groupK)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fused emitted %d frames, unfused %d", trial, len(got), len(want))
		}
		for i := range want {
			framesEqual(t, "grouped", got[i], want[i])
		}
		if fSt.EventsIn != uSt.EventsIn {
			t.Fatalf("trial %d: EventsIn %d != %d", trial, fSt.EventsIn, uSt.EventsIn)
		}
		if fSt.Frames != len(want) {
			t.Fatalf("trial %d: Stats.Frames = %d, want %d", trial, fSt.Frames, len(want))
		}
	}
}

// TestFusedConvertByCountParity checks the fused count-framing kernel
// against ConvertByCount, including zero-event windows.
func TestFusedConvertByCountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 120; trial++ {
		w, h := 4+rng.Intn(12), 4+rng.Intn(12)
		cfg := Config{Width: w, Height: h, NumBins: 1 + rng.Intn(4)}
		conv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := NewFused(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		t0 := rng.Int63n(1000)
		t1 := t0 + 1 + rng.Int63n(997)
		s := randStream(rng, w, h, rng.Intn(300), t0, t1)
		cpf := 1 + rng.Intn(50)

		want, uSt, err := conv.ConvertByCount(s, t0, t1, cpf)
		if err != nil {
			t.Fatal(err)
		}
		got, fSt, err := fused.ConvertByCount(s, t0, t1, cpf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fused emitted %d frames, unfused %d", trial, len(got), len(want))
		}
		for i := range want {
			framesEqual(t, "bycount", got[i], want[i])
		}
		if fSt.EventsIn != uSt.EventsIn || fSt.Frames != uSt.Frames || fSt.TotalNNZ != uSt.TotalNNZ {
			t.Fatalf("trial %d: stats %+v != %+v", trial, fSt, uSt)
		}
	}
}

// TestFusedConvertVoxelParity checks the voxel scratch path against the
// map-based ConvertVoxel, reusing one kernel across chunks to exercise
// the epoch stamping.
func TestFusedConvertVoxelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := Config{Width: 16, Height: 12, NumBins: 5}
	conv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := NewFused(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		t0 := rng.Int63n(1000)
		t1 := t0 + 1 + rng.Int63n(997)
		s := randStream(rng, cfg.Width, cfg.Height, rng.Intn(500), t0, t1)
		want, err := conv.ConvertVoxel(s, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fused.ConvertVoxel(s, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		if got.T0 != want.T0 || got.T1 != want.T1 || len(got.Bins) != len(want.Bins) {
			t.Fatalf("trial %d: grid shape mismatch", trial)
		}
		for b := range want.Bins {
			framesEqual(t, "voxel", got.Bins[b], want.Bins[b])
		}
		if got.Mass() != want.Mass() {
			t.Fatalf("trial %d: mass %v != %v", trial, got.Mass(), want.Mass())
		}
	}
}

// TestFusedScratchReuseAcrossChunks runs many conversions through one
// kernel and checks each against a fresh unfused conversion — stale
// scratch from a previous chunk must never leak into the next.
func TestFusedScratchReuseAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	cfg := Config{Width: 10, Height: 10, NumBins: 4}
	conv, _ := New(cfg)
	fused, _ := NewFused(cfg, nil)
	for chunk := 0; chunk < 50; chunk++ {
		t0 := int64(chunk * 1000)
		t1 := t0 + 1000
		s := randStream(rng, 10, 10, rng.Intn(200), t0, t1)
		frames, _, err := conv.Convert(s, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := GroupBins(frames, 2)
		got, _, err := fused.ConvertGrouped(s, t0, t1, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			framesEqual(t, "reuse", got[i], want[i])
		}
	}
}

// TestFusedPooledZeroAlloc is the kernel's hot-path contract: with a
// warm FramePool and warm scratch, converting a chunk and releasing the
// frames performs zero heap allocations.
func TestFusedPooledZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	cfg := Config{Width: 32, Height: 32, NumBins: 4}
	pool := mem.NewFramePool()
	fused, err := NewFused(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	s := randStream(rng, 32, 32, 512, 0, 1000)
	out := make([]*sparse.Frame, 0, 8)
	cycle := func() {
		out = out[:0]
		var err error
		out, _, err = fused.ConvertGroupedAppend(out, s, 0, 1000, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range out {
			pool.Put(f)
		}
	}
	cycle() // warm pool, scratch, and output capacities
	cycle()
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("warm fused convert allocates %.1f allocs/op, want 0", n)
	}
}

func TestFusedValidation(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, NumBins: 2}
	fused, err := NewFused(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := events.NewStream(8, 8)
	if _, _, err := fused.ConvertGrouped(s, 10, 10, 1); err == nil {
		t.Fatal("empty interval accepted")
	}
	if _, _, err := fused.ConvertGrouped(s, 0, 10, 0); err == nil {
		t.Fatal("zero group size accepted")
	}
	if _, _, err := fused.ConvertGrouped(events.NewStream(4, 4), 0, 10, 1); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, _, err := fused.ConvertByCount(s, 0, 10, 0); err == nil {
		t.Fatal("zero countPerFrame accepted")
	}
	if _, err := NewFused(Config{Width: 0, Height: 1, NumBins: 1}, nil); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// BenchmarkE2SFConvert compares the unfused Convert+GroupBins path
// against the fused kernel, pooled and unpooled.
func BenchmarkE2SFConvert(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{Width: 128, Height: 128, NumBins: 8}
	s := randStream(rng, 128, 128, 8192, 0, 10000)
	b.Run("unfused", func(b *testing.B) {
		conv, _ := New(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frames, _, err := conv.Convert(s, 0, 10000)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := GroupBins(frames, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		fused, _ := NewFused(cfg, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fused.ConvertGrouped(s, 0, 10000, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused-pooled", func(b *testing.B) {
		pool := mem.NewFramePool()
		fused, _ := NewFused(cfg, pool)
		out := make([]*sparse.Frame, 0, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = out[:0]
			var err error
			out, _, err = fused.ConvertGroupedAppend(out, s, 0, 10000, 2)
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range out {
				pool.Put(f)
			}
		}
	})
}
