package e2sf

import (
	"fmt"
	"math"

	"evedge/internal/events"
	"evedge/internal/mem"
	"evedge/internal/sparse"
)

// Fused is the one-pass E2SF kernel for the serving hot path. The
// unfused path (Convert → GroupBins, or ConvertByCount) materializes a
// FrameBuilder map per bin and intermediate per-bin frames that are
// immediately merged and thrown away; Fused traverses the event chunk
// once, accumulating polarities into a dense scratch grid that is
// epoch-stamped so it never needs clearing between frames, and emits
// each output frame with a single key sort. Frames come from the
// optional FramePool, so a warm kernel converts a chunk with zero heap
// allocations.
//
// Outputs are bit-identical to the unfused path: per-pixel values are
// integer event counts (exact in float32 far beyond any realistic
// per-frame count), entries are emitted in the same key order, and
// frame time bounds use the same float64 bin arithmetic.
//
// A Fused kernel is NOT safe for concurrent use — it is per-session
// state, like the ingestConverter that owns it.
type Fused struct {
	cfg  Config
	pool *mem.FramePool

	// Dense per-pixel scratch: pos/neg are only valid where stamp
	// matches the current epoch, so starting a new frame is one counter
	// increment instead of an O(H*W) clear.
	pos, neg []float32
	stamp    []uint32
	epoch    uint32
	touched  []int32

	// Voxel scratch: signed per-(bin, pixel) accumulation with its own
	// stamping, sized NumBins*H*W on first voxel conversion.
	vox        []float32
	voxStamp   []uint32
	voxEpoch   uint32
	voxTouched [][]int32
}

// NewFused validates the config and returns a fused kernel drawing
// output frames from pool (nil to allocate fresh frames).
func NewFused(cfg Config, pool *mem.FramePool) (*Fused, error) {
	if _, err := New(cfg); err != nil {
		return nil, err
	}
	if int64(cfg.Width)*int64(cfg.Height) > math.MaxInt32 {
		return nil, fmt.Errorf("e2sf: fused kernel geometry %dx%d overflows int32 keys", cfg.Width, cfg.Height)
	}
	return &Fused{cfg: cfg, pool: pool}, nil
}

// Config returns the kernel's configuration.
func (k *Fused) Config() Config { return k.cfg }

func (k *Fused) ensureScratch() {
	if k.pos == nil {
		n := k.cfg.Width * k.cfg.Height
		k.pos = make([]float32, n)
		k.neg = make([]float32, n)
		k.stamp = make([]uint32, n)
	}
	k.epoch++
	if k.epoch == 0 { // uint32 wraparound: stale stamps could collide
		for i := range k.stamp {
			k.stamp[i] = 0
		}
		k.epoch = 1
	}
	k.touched = k.touched[:0]
}

// add accumulates one event into the current frame's scratch.
func (k *Fused) add(e events.Event) {
	key := int32(e.Y)*int32(k.cfg.Width) + int32(e.X)
	if k.stamp[key] != k.epoch {
		k.stamp[key] = k.epoch
		k.pos[key] = 0
		k.neg[key] = 0
		k.touched = append(k.touched, key)
	}
	if e.Pol == events.On {
		k.pos[key]++
	} else {
		k.neg[key]++
	}
}

// frame borrows or allocates an output frame.
func (k *Fused) frame(t0, t1 int64) *sparse.Frame {
	if k.pool != nil {
		return k.pool.Get(k.cfg.Height, k.cfg.Width, t0, t1)
	}
	return sparse.NewFrame(k.cfg.Height, k.cfg.Width, t0, t1)
}

// emitFrame sorts the touched keys, gathers the scratch into a frame
// spanning [t0, t1), and resets the scratch for the next frame.
func (k *Fused) emitFrame(t0, t1 int64) *sparse.Frame {
	sortInt32s(k.touched)
	f := k.frame(t0, t1)
	w := int32(k.cfg.Width)
	for _, key := range k.touched {
		f.Ys = append(f.Ys, key/w)
		f.Xs = append(f.Xs, key%w)
		f.Pos = append(f.Pos, k.pos[key])
		f.Neg = append(f.Neg, k.neg[key])
	}
	k.epoch++
	if k.epoch == 0 {
		for i := range k.stamp {
			k.stamp[i] = 0
		}
		k.epoch = 1
	}
	k.touched = k.touched[:0]
	return f
}

// ConvertGrouped is the fused equivalent of Convert followed by
// GroupBins: one frame per group of groupK consecutive bins (the last
// group may cover fewer bins; empty groups still yield empty frames,
// preserving temporal alignment). Stats are reported over the emitted
// group frames, matching what the serving path observes.
func (k *Fused) ConvertGrouped(s *events.Stream, tStart, tEnd int64, groupK int) ([]*sparse.Frame, Stats, error) {
	return k.ConvertGroupedAppend(nil, s, tStart, tEnd, groupK)
}

// ConvertGroupedAppend is ConvertGrouped appending into dst, so a
// caller-owned output slice is reused across chunks.
func (k *Fused) ConvertGroupedAppend(dst []*sparse.Frame, s *events.Stream, tStart, tEnd int64, groupK int) ([]*sparse.Frame, Stats, error) {
	var st Stats
	if tEnd <= tStart {
		return dst, st, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if groupK <= 0 {
		return dst, st, fmt.Errorf("e2sf: group size must be positive, got %d", groupK)
	}
	if s.Width != k.cfg.Width || s.Height != k.cfg.Height {
		return dst, st, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, k.cfg.Width, k.cfg.Height)
	}
	nB := k.cfg.NumBins
	biS := float64(tEnd-tStart) / float64(nB)
	nG := (nB + groupK - 1) / groupK
	k.ensureScratch()
	g := 0
	emit := func() {
		a := g * groupK
		b := a + groupK
		if b > nB {
			b = nB
		}
		// Same float64 bin-boundary arithmetic as Convert, so group
		// bounds equal the MergeAdd union of the member bins' bounds.
		t0 := tStart + int64(float64(a)*biS)
		t1 := tStart + int64(float64(b)*biS)
		f := k.emitFrame(t0, t1)
		dst = append(dst, f)
		st.TotalNNZ += f.NNZ()
		st.MeanDensity += f.Density()
	}
	for _, e := range s.Window(tStart, tEnd) {
		bi := int(float64(e.TS-tStart) / biS)
		if bi >= nB { // tk == tEnd-epsilon rounding; clamp to last bin
			bi = nB - 1
		}
		for eg := bi / groupK; g < eg; g++ {
			emit()
		}
		k.add(e)
		st.EventsIn++
	}
	for ; g < nG; g++ {
		emit()
	}
	st.Frames = nG
	if nG > 0 {
		st.MeanDensity /= float64(nG)
	}
	return dst, st, nil
}

// ConvertByCount is the fused equivalent of Converter.ConvertByCount:
// a frame every countPerFrame events with T1 just past the closing
// event, plus a trailing partial frame ending at tEnd.
func (k *Fused) ConvertByCount(s *events.Stream, tStart, tEnd int64, countPerFrame int) ([]*sparse.Frame, Stats, error) {
	return k.ConvertByCountAppend(nil, s, tStart, tEnd, countPerFrame)
}

// ConvertByCountAppend is ConvertByCount appending into dst.
func (k *Fused) ConvertByCountAppend(dst []*sparse.Frame, s *events.Stream, tStart, tEnd int64, countPerFrame int) ([]*sparse.Frame, Stats, error) {
	var st Stats
	if tEnd <= tStart {
		return dst, st, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if countPerFrame <= 0 {
		return dst, st, fmt.Errorf("e2sf: countPerFrame must be positive, got %d", countPerFrame)
	}
	if s.Width != k.cfg.Width || s.Height != k.cfg.Height {
		return dst, st, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, k.cfg.Width, k.cfg.Height)
	}
	k.ensureScratch()
	frameStart := tStart
	n := 0
	emit := func(t1 int64) {
		f := k.emitFrame(frameStart, t1)
		dst = append(dst, f)
		st.TotalNNZ += f.NNZ()
		st.MeanDensity += f.Density()
		st.Frames++
		frameStart = t1
		n = 0
	}
	for _, e := range s.Window(tStart, tEnd) {
		k.add(e)
		st.EventsIn++
		n++
		if n >= countPerFrame {
			emit(e.TS + 1)
		}
	}
	if n > 0 {
		emit(tEnd)
	}
	if st.Frames > 0 {
		st.MeanDensity /= float64(st.Frames)
	}
	return dst, st, nil
}

// ConvertVoxel is the fused equivalent of Converter.ConvertVoxel,
// reusing the kernel's voxel scratch across chunks instead of building
// per-bin accumulation maps. Bilinear weights are applied in the same
// event order, so bin values are bit-identical.
func (k *Fused) ConvertVoxel(s *events.Stream, tStart, tEnd int64) (*VoxelGrid, error) {
	if tEnd <= tStart {
		return nil, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if s.Width != k.cfg.Width || s.Height != k.cfg.Height {
		return nil, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, k.cfg.Width, k.cfg.Height)
	}
	nB := k.cfg.NumBins
	if nB < 2 {
		return nil, fmt.Errorf("e2sf: voxel grid needs at least 2 bins, got %d", nB)
	}
	hw := k.cfg.Width * k.cfg.Height
	if k.vox == nil || len(k.vox) < nB*hw {
		k.vox = make([]float32, nB*hw)
		k.voxStamp = make([]uint32, nB*hw)
		k.voxTouched = make([][]int32, nB)
	}
	k.voxEpoch++
	if k.voxEpoch == 0 {
		for i := range k.voxStamp {
			k.voxStamp[i] = 0
		}
		k.voxEpoch = 1
	}
	for b := 0; b < nB; b++ {
		k.voxTouched[b] = k.voxTouched[b][:0]
	}
	acc := func(b int, key int32, v float32) {
		i := b*hw + int(key)
		if k.voxStamp[i] != k.voxEpoch {
			k.voxStamp[i] = k.voxEpoch
			k.vox[i] = 0
			k.voxTouched[b] = append(k.voxTouched[b], key)
		}
		k.vox[i] += v
	}
	span := float64(tEnd - tStart)
	for _, e := range s.Window(tStart, tEnd) {
		tStar := float64(nB-1) * float64(e.TS-tStart) / span
		b0 := int(tStar)
		frac := tStar - float64(b0)
		pol := float32(1)
		if e.Pol == events.Off {
			pol = -1
		}
		key := int32(e.Y)*int32(k.cfg.Width) + int32(e.X)
		acc(b0, key, pol*float32(1-frac))
		if b0+1 < nB && frac > 0 {
			acc(b0+1, key, pol*float32(frac))
		}
	}
	g := &VoxelGrid{T0: tStart, T1: tEnd}
	biS := span / float64(nB)
	w := int32(k.cfg.Width)
	for b := 0; b < nB; b++ {
		f := k.frame(tStart+int64(float64(b)*biS), tStart+int64(float64(b+1)*biS))
		sortInt32s(k.voxTouched[b])
		for _, key := range k.voxTouched[b] {
			v := k.vox[b*hw+int(key)]
			if v == 0 {
				continue // positive and negative contributions cancelled
			}
			f.Ys = append(f.Ys, key/w)
			f.Xs = append(f.Xs, key%w)
			f.Pos = append(f.Pos, v)
			f.Neg = append(f.Neg, 0)
		}
		g.Bins = append(g.Bins, f)
	}
	return g, nil
}

func sortInt32s(a []int32) {
	if len(a) < 2 {
		return
	}
	quicksortInt32(a, 0, len(a)-1)
}

func quicksortInt32(a []int32, lo, hi int) {
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			quicksortInt32(a, lo, j)
			lo = i
		} else {
			quicksortInt32(a, i, hi)
			hi = j
		}
	}
}
