package e2sf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evedge/internal/events"
	"evedge/internal/scene"
)

func mkStream(w, h int, evs ...events.Event) *events.Stream {
	s := events.NewStream(w, h)
	s.Events = append(s.Events, evs...)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 10, NumBins: 1}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(Config{Width: 10, Height: 10, NumBins: 0}); err == nil {
		t.Fatal("zero bins accepted")
	}
	c, err := New(Config{Width: 10, Height: 10, NumBins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().NumBins != 4 {
		t.Fatal("config not retained")
	}
}

func TestConvertBinAssignment(t *testing.T) {
	// Window [0, 100) with 4 bins of 25us each.
	s := mkStream(4, 4,
		events.Event{X: 0, Y: 0, TS: 0, Pol: events.On},    // bin 0
		events.Event{X: 1, Y: 0, TS: 24, Pol: events.Off},  // bin 0
		events.Event{X: 2, Y: 0, TS: 25, Pol: events.On},   // bin 1
		events.Event{X: 3, Y: 0, TS: 74, Pol: events.On},   // bin 2
		events.Event{X: 0, Y: 1, TS: 75, Pol: events.Off},  // bin 3
		events.Event{X: 1, Y: 1, TS: 99, Pol: events.On},   // bin 3
		events.Event{X: 2, Y: 1, TS: 100, Pol: events.On},  // outside
		events.Event{X: 3, Y: 1, TS: 2000, Pol: events.On}, // outside
	)
	c, err := New(Config{Width: 4, Height: 4, NumBins: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames, st, err := c.Convert(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("frames=%d", len(frames))
	}
	if st.EventsIn != 6 {
		t.Fatalf("eventsIn=%d", st.EventsIn)
	}
	wantNNZ := []int{2, 1, 1, 2}
	for i, f := range frames {
		if f.NNZ() != wantNNZ[i] {
			t.Fatalf("bin %d nnz=%d want %d", i, f.NNZ(), wantNNZ[i])
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("bin %d: %v", i, err)
		}
	}
	// Bin time bounds follow Eq. 1.
	if frames[1].T0 != 25 || frames[1].T1 != 50 {
		t.Fatalf("bin 1 bounds [%d,%d)", frames[1].T0, frames[1].T1)
	}
	// Polarity separation.
	p, n := frames[0].Get(0, 1)
	if p != 0 || n != 1 {
		t.Fatalf("bin 0 (0,1)=(%f,%f)", p, n)
	}
}

func TestConvertPolarityAccumulation(t *testing.T) {
	s := mkStream(2, 2,
		events.Event{X: 0, Y: 0, TS: 1, Pol: events.On},
		events.Event{X: 0, Y: 0, TS: 2, Pol: events.On},
		events.Event{X: 0, Y: 0, TS: 3, Pol: events.Off},
	)
	c, _ := New(Config{Width: 2, Height: 2, NumBins: 1})
	frames, _, err := c.Convert(s, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, n := frames[0].Get(0, 0)
	if p != 2 || n != 1 {
		t.Fatalf("accumulation (%f,%f)", p, n)
	}
}

func TestConvertErrors(t *testing.T) {
	c, _ := New(Config{Width: 4, Height: 4, NumBins: 2})
	s := mkStream(4, 4)
	if _, _, err := c.Convert(s, 10, 10); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := c.Convert(mkStream(8, 8), 0, 10); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestLastBinClamp(t *testing.T) {
	// An event exactly at the final microsecond before tEnd lands in
	// the last bin even with floating point rounding.
	s := mkStream(2, 2, events.Event{X: 0, Y: 0, TS: 99, Pol: events.On})
	c, _ := New(Config{Width: 2, Height: 2, NumBins: 3})
	frames, _, err := c.Convert(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if frames[2].NNZ() != 1 {
		t.Fatal("event at window edge lost")
	}
}

// Property: E2SF conserves events — the sum of accumulated polarity
// counts across frames equals the number of in-window events.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nbRaw uint8) bool {
		nB := int(nbRaw)%16 + 1
		s := scene.GenerateUniform(32, 24, 50_000, 100_000, seed)
		c, err := New(Config{Width: 32, Height: 24, NumBins: nB})
		if err != nil {
			return false
		}
		frames, st, err := c.Convert(s, 0, 100_000)
		if err != nil {
			return false
		}
		var total float64
		for _, fr := range frames {
			if fr.Validate() != nil {
				return false
			}
			total += fr.EventCount()
		}
		return int(total) == st.EventsIn && st.EventsIn == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every event's bin index satisfies Eq. 1 bounds.
func TestBinBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nB := 1 + r.Intn(12)
		tEnd := int64(1000 + r.Intn(100_000))
		s := scene.GenerateUniform(16, 16, 20_000, tEnd, seed)
		c, err := New(Config{Width: 16, Height: 16, NumBins: nB})
		if err != nil {
			return false
		}
		frames, _, err := c.Convert(s, 0, tEnd)
		if err != nil {
			return false
		}
		if len(frames) != nB {
			return false
		}
		for k, fr := range frames {
			if fr.T0 > fr.T1 {
				return false
			}
			if k > 0 && frames[k-1].T1 != fr.T0 {
				return false // bins must tile the window
			}
		}
		return frames[0].T0 == 0 && frames[nB-1].T1 >= tEnd-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertDense(t *testing.T) {
	s := mkStream(4, 4,
		events.Event{X: 1, Y: 2, TS: 5, Pol: events.On},
		events.Event{X: 3, Y: 0, TS: 15, Pol: events.Off},
	)
	c, _ := New(Config{Width: 4, Height: 4, NumBins: 2})
	dense, ops, err := c.ConvertDense(s, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != 2 {
		t.Fatalf("frames=%d", len(dense))
	}
	if dense[0].At(0, 2, 1) != 1 {
		t.Fatal("dense pos channel wrong")
	}
	if dense[1].At(1, 0, 3) != 1 {
		t.Fatal("dense neg channel wrong")
	}
	// 2 frames * 2*4*4 stores + 2 event accumulates
	if ops != 2*32+2 {
		t.Fatalf("ops=%d", ops)
	}
	if c.EncodeDecodeOps() != 32 {
		t.Fatalf("encode ops=%d", c.EncodeDecodeOps())
	}
}

func TestCountTimestamp(t *testing.T) {
	s := mkStream(4, 4,
		events.Event{X: 1, Y: 1, TS: 10, Pol: events.On},
		events.Event{X: 1, Y: 1, TS: 90, Pol: events.On}, // later: overwrites ts
		events.Event{X: 2, Y: 2, TS: 50, Pol: events.Off},
	)
	c, _ := New(Config{Width: 4, Height: 4, NumBins: 8})
	ct, err := c.ConvertCountTimestamp(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Counts.NNZ() != 2 {
		t.Fatalf("nnz=%d", ct.Counts.NNZ())
	}
	p, _ := ct.Counts.Get(1, 1)
	if p != 2 {
		t.Fatalf("count=%f", p)
	}
	// Entry order is sorted by (y, x): (1,1) first, then (2,2).
	if ct.LastPosTS[0] != 0.9 {
		t.Fatalf("last pos ts=%f want 0.9", ct.LastPosTS[0])
	}
	if ct.LastNegTS[1] != 0.5 {
		t.Fatalf("last neg ts=%f want 0.5", ct.LastNegTS[1])
	}
	if ct.LastNegTS[0] != 0 {
		t.Fatalf("pixel without neg events has ts=%f", ct.LastNegTS[0])
	}
	if _, err := c.ConvertCountTimestamp(s, 5, 5); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestGroupBins(t *testing.T) {
	c, _ := New(Config{Width: 8, Height: 8, NumBins: 5})
	s := scene.GenerateUniform(8, 8, 100_000, 50_000, 3)
	frames, _, err := c.Convert(s, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := GroupBins(frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 { // 2+2+1
		t.Fatalf("groups=%d", len(groups))
	}
	var inCount, outCount float64
	for _, f := range frames {
		inCount += f.EventCount()
	}
	for _, g := range groups {
		outCount += g.EventCount()
	}
	if inCount != outCount {
		t.Fatalf("grouping loses events: %f != %f", inCount, outCount)
	}
	if _, err := GroupBins(frames, 0); err == nil {
		t.Fatal("zero group size accepted")
	}
}

func TestDensityTracksBinCount(t *testing.T) {
	// More bins -> fewer events per bin -> lower per-frame density.
	s := scene.GenerateUniform(32, 32, 200_000, 100_000, 5)
	density := func(nB int) float64 {
		c, _ := New(Config{Width: 32, Height: 32, NumBins: nB})
		_, st, err := c.Convert(s, 0, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanDensity
	}
	if d1, d10 := density(1), density(10); d10 >= d1 {
		t.Fatalf("density should fall with bins: nB=1 %f, nB=10 %f", d1, d10)
	}
}
