package e2sf

import (
	"testing"

	"evedge/internal/events"
	"evedge/internal/sparse"
)

// Edge-case coverage for GroupBins and ConvertByCount that the fused
// kernel must also satisfy: empty streams, group sizes exceeding the
// frame count, and zero-event (or zero-count) chunks.

func TestGroupBinsEmptyInput(t *testing.T) {
	out, err := GroupBins(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("GroupBins(nil) emitted %d frames", len(out))
	}
	out, err = GroupBins([]*sparse.Frame{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("GroupBins(empty) emitted %d frames", len(out))
	}
}

func TestGroupBinsKLargerThanFrames(t *testing.T) {
	frames := []*sparse.Frame{
		sparse.NewFrame(4, 4, 0, 10),
		sparse.NewFrame(4, 4, 10, 20),
	}
	frames[0].Set(1, 1, 2, 0)
	frames[1].Set(1, 1, 1, 3)
	out, err := GroupBins(frames, 5) // k > len(frames): one partial group
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("GroupBins k>len emitted %d frames, want 1", len(out))
	}
	if out[0].T0 != 0 || out[0].T1 != 20 {
		t.Fatalf("partial group bounds [%d,%d), want [0,20)", out[0].T0, out[0].T1)
	}
	if p, n := out[0].Get(1, 1); p != 3 || n != 3 {
		t.Fatalf("partial group merge = (%v,%v), want (3,3)", p, n)
	}

	// Fused equivalent: groupK larger than NumBins yields one frame
	// spanning the whole window.
	cfg := Config{Width: 4, Height: 4, NumBins: 2}
	fused, err := NewFused(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := mkStream(4, 4,
		events.Event{TS: 1, X: 1, Y: 1, Pol: events.On},
		events.Event{TS: 15, X: 1, Y: 1, Pol: events.Off},
	)
	got, _, err := fused.ConvertGrouped(s, 0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].T0 != 0 || got[0].T1 != 20 {
		t.Fatalf("fused k>nB: %d frames, bounds [%d,%d)", len(got), got[0].T0, got[0].T1)
	}
}

func TestGroupBinsInvalidK(t *testing.T) {
	if _, err := GroupBins(nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := GroupBins(nil, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestConvertByCountEmptyStream(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, NumBins: 2}
	conv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := NewFused(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := events.NewStream(8, 8)
	out, st, err := conv.ConvertByCount(s, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.Frames != 0 || st.EventsIn != 0 {
		t.Fatalf("unfused empty stream: frames=%d stats=%+v", len(out), st)
	}
	fout, fst, err := fused.ConvertByCount(s, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fout) != 0 || fst.Frames != 0 || fst.EventsIn != 0 {
		t.Fatalf("fused empty stream: frames=%d stats=%+v", len(fout), fst)
	}
}

func TestConvertEmptyStreamEmitsEmptyBins(t *testing.T) {
	// Time framing with no events still emits one (empty) frame per bin
	// to preserve temporal alignment — and the fused path per group.
	cfg := Config{Width: 8, Height: 8, NumBins: 4}
	conv, _ := New(cfg)
	fused, _ := NewFused(cfg, nil)
	s := events.NewStream(8, 8)
	frames, _, err := conv.Convert(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("Convert empty stream emitted %d frames, want 4", len(frames))
	}
	got, _, err := fused.ConvertGrouped(s, 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("fused empty stream emitted %d groups, want 2", len(got))
	}
	for i, f := range got {
		if f.NNZ() != 0 {
			t.Fatalf("group %d not empty", i)
		}
	}
	if got[0].T0 != 0 || got[0].T1 != 50 || got[1].T0 != 50 || got[1].T1 != 100 {
		t.Fatalf("empty group bounds: [%d,%d) [%d,%d)", got[0].T0, got[0].T1, got[1].T0, got[1].T1)
	}
}

func TestConvertByCountZeroCountChunk(t *testing.T) {
	// A window whose slice contains no events (all events fall outside
	// [tStart, tEnd)) must emit nothing and not disturb converter state.
	cfg := Config{Width: 8, Height: 8, NumBins: 2}
	conv, _ := New(cfg)
	fused, _ := NewFused(cfg, nil)
	s := mkStream(8, 8,
		events.Event{TS: 500, X: 1, Y: 1, Pol: events.On},
	)
	out, st, err := conv.ConvertByCount(s, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.EventsIn != 0 {
		t.Fatalf("unfused zero-count chunk: frames=%d events=%d", len(out), st.EventsIn)
	}
	fout, fst, err := fused.ConvertByCount(s, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fout) != 0 || fst.EventsIn != 0 {
		t.Fatalf("fused zero-count chunk: frames=%d events=%d", len(fout), fst.EventsIn)
	}
	// The event outside the first window is still convertible after.
	fout, fst, err = fused.ConvertByCount(s, 400, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fout) != 1 || fst.EventsIn != 1 {
		t.Fatalf("follow-up window: frames=%d events=%d", len(fout), fst.EventsIn)
	}
	if fout[0].T0 != 400 || fout[0].T1 != 501 {
		t.Fatalf("follow-up frame bounds [%d,%d), want [400,501)", fout[0].T0, fout[0].T1)
	}
}

func TestConvertByCountTrailingPartial(t *testing.T) {
	// countPerFrame larger than the event count: one trailing partial
	// frame ending at tEnd, identical in both paths.
	cfg := Config{Width: 8, Height: 8, NumBins: 2}
	conv, _ := New(cfg)
	fused, _ := NewFused(cfg, nil)
	s := mkStream(8, 8,
		events.Event{TS: 10, X: 2, Y: 3, Pol: events.On},
		events.Event{TS: 20, X: 2, Y: 3, Pol: events.Off},
	)
	want, _, err := conv.ConvertByCount(s, 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := fused.ConvertByCount(s, 0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("partial frame counts: unfused=%d fused=%d, want 1", len(want), len(got))
	}
	if want[0].T1 != 100 || got[0].T1 != 100 {
		t.Fatalf("partial frame T1: unfused=%d fused=%d, want 100", want[0].T1, got[0].T1)
	}
	framesEqual(t, "trailing-partial", got[0], want[0])
}
