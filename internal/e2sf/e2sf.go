// Package e2sf implements the Event2Sparse Frame converter (paper
// Sec. 4.1). It transforms a raw AER event stream directly into
// two-channel sparse frames, one per event bin, without materializing
// the dense intermediate event frames that the baseline pipelines
// build:
//
//	biS = (Tend - Tstart) / nB            (bin duration)
//	EBk = floor((tk - Tstart) / biS)      (bin index of event k)
//
// Positive and negative polarities are accumulated separately per
// pixel within each bin, and each bin becomes a sparse COO-style frame
// (row indices, column indices, polarity channels), so downstream
// compute is proportional to the number of generated events.
//
// The package also provides the alternative input representations of
// the paper's Fig. 2 (full accumulation with most-recent timestamps,
// and grouping of bins into SNN timesteps) and the dense event-frame
// path used by the all-GPU baseline, with encode/decode operation
// accounting so the perf model can charge the baseline for the
// conversion overheads E2SF avoids.
package e2sf

import (
	"fmt"

	"evedge/internal/events"
	"evedge/internal/sparse"
)

// Config controls a conversion.
type Config struct {
	Width, Height int
	// NumBins is nB in Eq. 1: the number of event bins between Tstart
	// and Tend, i.e. the temporal resolution of the representation.
	NumBins int
}

// Converter maps event streams to sparse frames.
type Converter struct {
	cfg Config
}

// New validates the config and returns a Converter.
func New(cfg Config) (*Converter, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("e2sf: invalid geometry %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.NumBins <= 0 {
		return nil, fmt.Errorf("e2sf: NumBins must be positive, got %d", cfg.NumBins)
	}
	return &Converter{cfg: cfg}, nil
}

// Config returns the converter's configuration.
func (c *Converter) Config() Config { return c.cfg }

// Stats reports what a conversion did.
type Stats struct {
	EventsIn    int     // events consumed
	Frames      int     // sparse frames emitted (== NumBins)
	TotalNNZ    int     // active pixels across all frames
	MeanDensity float64 // mean fraction of active pixels per frame
}

// Convert bins the events of s that fall in [tStart, tEnd) per Eq. 1
// and returns one sparse frame per bin (empty bins yield empty
// frames, preserving temporal alignment). The stream must be sorted.
func (c *Converter) Convert(s *events.Stream, tStart, tEnd int64) ([]*sparse.Frame, Stats, error) {
	var st Stats
	if tEnd <= tStart {
		return nil, st, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if s.Width != c.cfg.Width || s.Height != c.cfg.Height {
		return nil, st, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, c.cfg.Width, c.cfg.Height)
	}
	nB := c.cfg.NumBins
	// Eq. 1: bin duration. Integer microseconds; use float64 for the
	// division to avoid bias when the window is not a multiple of nB.
	biS := float64(tEnd-tStart) / float64(nB)
	builders := make([]*sparse.FrameBuilder, nB)
	for k := 0; k < nB; k++ {
		t0 := tStart + int64(float64(k)*biS)
		t1 := tStart + int64(float64(k+1)*biS)
		builders[k] = sparse.NewFrameBuilder(c.cfg.Height, c.cfg.Width, t0, t1)
	}
	window := s.Slice(tStart, tEnd)
	for _, e := range window.Events {
		k := int(float64(e.TS-tStart) / biS)
		if k >= nB { // tk == tEnd-epsilon rounding; clamp to last bin
			k = nB - 1
		}
		builders[k].AddEvent(int32(e.Y), int32(e.X), e.Pol == events.On)
		st.EventsIn++
	}
	frames := make([]*sparse.Frame, nB)
	for k, b := range builders {
		frames[k] = b.Build()
		st.TotalNNZ += frames[k].NNZ()
		st.MeanDensity += frames[k].Density()
	}
	st.Frames = nB
	st.MeanDensity /= float64(nB)
	return frames, st, nil
}

// ConvertByCount implements the count-based framing of prior works
// ([7] SpikeFlowNet, [8] Fusion-FlowNet: "construct event frames by
// statically counting the number of events"): a new sparse frame is
// emitted every countPerFrame events, so the frame rate tracks scene
// activity — the behaviour that creates frame backlog during bursts
// and motivates DSFA. A trailing partial frame is emitted if the
// window ends mid-count.
func (c *Converter) ConvertByCount(s *events.Stream, tStart, tEnd int64, countPerFrame int) ([]*sparse.Frame, Stats, error) {
	var st Stats
	if tEnd <= tStart {
		return nil, st, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if countPerFrame <= 0 {
		return nil, st, fmt.Errorf("e2sf: countPerFrame must be positive, got %d", countPerFrame)
	}
	if s.Width != c.cfg.Width || s.Height != c.cfg.Height {
		return nil, st, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, c.cfg.Width, c.cfg.Height)
	}
	window := s.Slice(tStart, tEnd)
	var out []*sparse.Frame
	frameStart := tStart
	b := sparse.NewFrameBuilder(c.cfg.Height, c.cfg.Width, frameStart, frameStart)
	n := 0
	emit := func(t1 int64) {
		f := b.Build()
		f.T0, f.T1 = frameStart, t1
		out = append(out, f)
		st.TotalNNZ += f.NNZ()
		st.MeanDensity += f.Density()
		frameStart = t1
		n = 0
	}
	for _, e := range window.Events {
		b.AddEvent(int32(e.Y), int32(e.X), e.Pol == events.On)
		st.EventsIn++
		n++
		if n >= countPerFrame {
			emit(e.TS + 1)
		}
	}
	if n > 0 {
		emit(tEnd)
	}
	st.Frames = len(out)
	if st.Frames > 0 {
		st.MeanDensity /= float64(st.Frames)
	}
	return out, st, nil
}

// ConvertDense builds the dense event-frame representation the
// baseline uses: one 2 x H x W tensor per bin. Returned alongside is
// the number of per-element store operations performed (H*W*2 writes
// per frame plus one accumulate per event), which the perf model
// charges as framing overhead.
func (c *Converter) ConvertDense(s *events.Stream, tStart, tEnd int64) ([]*sparse.Tensor, int64, error) {
	frames, _, err := c.Convert(s, tStart, tEnd)
	if err != nil {
		return nil, 0, err
	}
	out := make([]*sparse.Tensor, len(frames))
	var ops int64
	for i, f := range frames {
		out[i] = f.Dense()
		ops += int64(2*c.cfg.Width*c.cfg.Height) + int64(f.NNZ())
	}
	return out, ops, nil
}

// EncodeDecodeOps returns the operation count of converting a dense
// 2 x H x W event frame into sparse form after the fact (a full scan),
// i.e. the encoding overhead that makes "dense frames + sparse
// library" unattractive and that E2SF eliminates (paper Sec. 4.1).
func (c *Converter) EncodeDecodeOps() int64 {
	return int64(2 * c.cfg.Width * c.cfg.Height)
}

// CountTimestamp is the full-accumulation representation of Fig. 2
// (EV-FlowNet style): per-pixel event counts per polarity plus the
// most recent event timestamp per polarity, normalized to [0, 1] over
// the window.
type CountTimestamp struct {
	Counts *sparse.Frame
	// LastPosTS and LastNegTS are aligned with Counts' entries and
	// hold the normalized most-recent timestamp per polarity (0 when
	// the pixel saw no event of that polarity).
	LastPosTS []float32
	LastNegTS []float32
}

// ConvertCountTimestamp accumulates the whole [tStart, tEnd) window
// into a single CountTimestamp representation.
func (c *Converter) ConvertCountTimestamp(s *events.Stream, tStart, tEnd int64) (*CountTimestamp, error) {
	if tEnd <= tStart {
		return nil, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	one := Converter{cfg: Config{Width: c.cfg.Width, Height: c.cfg.Height, NumBins: 1}}
	frames, _, err := one.Convert(s, tStart, tEnd)
	if err != nil {
		return nil, err
	}
	f := frames[0]
	ct := &CountTimestamp{
		Counts:    f,
		LastPosTS: make([]float32, f.NNZ()),
		LastNegTS: make([]float32, f.NNZ()),
	}
	// Second pass for most-recent timestamps; the stream is sorted so
	// later events overwrite earlier ones.
	idx := make(map[int64]int, f.NNZ())
	for i := range f.Ys {
		idx[int64(f.Ys[i])*int64(c.cfg.Width)+int64(f.Xs[i])] = i
	}
	span := float64(tEnd - tStart)
	for _, e := range s.Slice(tStart, tEnd).Events {
		i, ok := idx[int64(e.Y)*int64(c.cfg.Width)+int64(e.X)]
		if !ok {
			continue // unreachable: every event created its pixel
		}
		norm := float32(float64(e.TS-tStart) / span)
		if e.Pol == events.On {
			ct.LastPosTS[i] = norm
		} else {
			ct.LastNegTS[i] = norm
		}
	}
	return ct, nil
}

// GroupBins concatenates consecutive sparse frames into groups of k —
// the paper's "presented sequentially over B/k timesteps" input mode
// for SNNs. Each group is merged with cAdd semantics so event counts
// are conserved. The final group may be smaller if len(frames) is not
// a multiple of k.
func GroupBins(frames []*sparse.Frame, k int) ([]*sparse.Frame, error) {
	if k <= 0 {
		return nil, fmt.Errorf("e2sf: group size must be positive, got %d", k)
	}
	var out []*sparse.Frame
	for i := 0; i < len(frames); i += k {
		j := i + k
		if j > len(frames) {
			j = len(frames)
		}
		out = append(out, sparse.MergeAdd(frames[i:j]...))
	}
	return out, nil
}
