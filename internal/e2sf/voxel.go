package e2sf

import (
	"fmt"

	"evedge/internal/events"
	"evedge/internal/sparse"
)

// VoxelGrid is the discretized event-volume representation used by
// several event networks (and the remaining input scheme of the
// paper's Fig. 2): each event distributes its polarity across the two
// nearest temporal bins with bilinear weights, preserving sub-bin
// timing information that plain counting destroys:
//
//	t* = (nB - 1) * (t - Tstart) / (Tend - Tstart)
//	V[b] += p * max(0, 1 - |b - t*|)
type VoxelGrid struct {
	Bins   []*sparse.Frame // signed accumulation: Pos holds the value
	T0, T1 int64
}

// ConvertVoxel builds an nB-bin voxel grid over [tStart, tEnd). Unlike
// Convert, polarity is signed into a single channel per bin (stored in
// the frame's Pos channel; Neg is unused), matching the voxel-grid
// convention of EV-FlowNet's successors.
func (c *Converter) ConvertVoxel(s *events.Stream, tStart, tEnd int64) (*VoxelGrid, error) {
	if tEnd <= tStart {
		return nil, fmt.Errorf("e2sf: empty interval [%d, %d)", tStart, tEnd)
	}
	if s.Width != c.cfg.Width || s.Height != c.cfg.Height {
		return nil, fmt.Errorf("e2sf: stream geometry %dx%d != converter %dx%d",
			s.Width, s.Height, c.cfg.Width, c.cfg.Height)
	}
	nB := c.cfg.NumBins
	if nB < 2 {
		return nil, fmt.Errorf("e2sf: voxel grid needs at least 2 bins, got %d", nB)
	}
	// Accumulate into dense maps keyed by pixel, then emit sorted
	// frames; bilinear weights make values fractional so FrameBuilder's
	// integer counting does not apply.
	acc := make([]map[int64]float32, nB)
	for b := range acc {
		acc[b] = make(map[int64]float32)
	}
	span := float64(tEnd - tStart)
	for _, e := range s.Slice(tStart, tEnd).Events {
		tStar := float64(nB-1) * float64(e.TS-tStart) / span
		b0 := int(tStar)
		frac := tStar - float64(b0)
		pol := float32(1)
		if e.Pol == events.Off {
			pol = -1
		}
		key := int64(e.Y)*int64(c.cfg.Width) + int64(e.X)
		acc[b0][key] += pol * float32(1-frac)
		if b0+1 < nB && frac > 0 {
			acc[b0+1][key] += pol * float32(frac)
		}
	}
	g := &VoxelGrid{T0: tStart, T1: tEnd}
	biS := span / float64(nB)
	for b := 0; b < nB; b++ {
		f := sparse.NewFrame(c.cfg.Height, c.cfg.Width,
			tStart+int64(float64(b)*biS), tStart+int64(float64(b+1)*biS))
		keys := make([]int64, 0, len(acc[b]))
		for k := range acc[b] {
			keys = append(keys, k)
		}
		sortInt64s(keys)
		for _, k := range keys {
			v := acc[b][k]
			if v == 0 {
				continue // positive and negative contributions cancelled
			}
			f.Ys = append(f.Ys, int32(k/int64(c.cfg.Width)))
			f.Xs = append(f.Xs, int32(k%int64(c.cfg.Width)))
			f.Pos = append(f.Pos, v)
			f.Neg = append(f.Neg, 0)
		}
		g.Bins = append(g.Bins, f)
	}
	return g, nil
}

// Mass returns the total absolute accumulated polarity across bins —
// conserved (equal to the in-window event count) when no positive and
// negative contributions cancel on the same voxel.
func (g *VoxelGrid) Mass() float64 {
	var m float64
	for _, f := range g.Bins {
		for _, v := range f.Pos {
			if v < 0 {
				m -= float64(v)
			} else {
				m += float64(v)
			}
		}
	}
	return m
}

func sortInt64s(a []int64) {
	// Small helper to avoid pulling sort.Slice allocations into the hot
	// loop; keys per bin are typically few thousand.
	if len(a) < 2 {
		return
	}
	quicksortInt64(a, 0, len(a)-1)
}

func quicksortInt64(a []int64, lo, hi int) {
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			quicksortInt64(a, lo, j)
			lo = i
		} else {
			quicksortInt64(a, i, hi)
			hi = j
		}
	}
}
