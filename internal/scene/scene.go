// Package scene is a procedural Dynamic Vision Sensor simulator. It
// substitutes for the DAVIS346 camera and the MVSEC / DENSE recordings
// used by the paper, which are not available offline.
//
// The simulator renders a procedural luminance field (a textured
// background under ego-motion plus moving foreground blobs), tracks
// per-pixel log-intensity memory, and emits an event whenever the log
// intensity change since the pixel's last event crosses the contrast
// threshold — the standard ESIM-style event camera model:
//
//	||log(I(t+1)) - log(I(t))|| >= theta  =>  event{x, y, t, p}
//
// Presets shaped after the paper's sequences (IndoorFlying1/2/3,
// OutdoorDay1, DENSE Town10) reproduce the spatio-temporal statistics
// Ev-Edge depends on: per-frame spatial density between ~0.1% and ~30%
// (paper Figs. 1 and 3) and strongly bursty temporal density (Fig. 5).
package scene

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"evedge/internal/events"
)

// Config sets the sensor model parameters.
type Config struct {
	Width, Height int
	// Theta is the log-intensity contrast threshold; typical DVS
	// values are 0.1-0.3.
	Theta float64
	// RefractoryUS suppresses events from a pixel for this long after
	// it fires.
	RefractoryUS int64
	// NoiseHz is the per-pixel background-activity event rate.
	NoiseHz float64
	// StepUS is the simulation step; luminance is sampled at this
	// granularity and event timestamps interpolated inside the step.
	StepUS int64
	// MaxEventsPerStep bounds events emitted by one pixel in one step
	// (sensor readout saturation).
	MaxEventsPerStep int
	Seed             int64
}

// DefaultConfig returns a DAVIS346-like sensor: 346 x 260, theta 0.18,
// 1 ms refractory, 0.05 Hz noise, 1 ms steps.
func DefaultConfig() Config {
	return Config{
		Width: 346, Height: 260,
		Theta:            0.18,
		RefractoryUS:     300,
		NoiseHz:          0.05,
		StepUS:           1000,
		MaxEventsPerStep: 6,
		Seed:             1,
	}
}

// Renderer produces the scene luminance (values in (0, 1]) for every
// pixel at an absolute time.
type Renderer interface {
	// Render fills dst (len w*h, row-major) with luminance at time t.
	Render(dst []float32, w, h int, tUS int64)
}

// Camera simulates a DVS over a Renderer.
type Camera struct {
	cfg Config
	r   Renderer
	rng *rand.Rand

	mem         []float64 // per-pixel log intensity at last event
	refrUntil   []int64   // per-pixel refractory end
	frame       []float32 // scratch luminance buffer
	initialized bool
}

// NewCamera validates the config and builds a camera over the renderer.
func NewCamera(cfg Config, r Renderer) (*Camera, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("scene: invalid sensor %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.Theta <= 0 {
		return nil, fmt.Errorf("scene: threshold must be positive, got %g", cfg.Theta)
	}
	if cfg.StepUS <= 0 {
		return nil, fmt.Errorf("scene: step must be positive, got %d", cfg.StepUS)
	}
	if cfg.MaxEventsPerStep <= 0 {
		cfg.MaxEventsPerStep = 4
	}
	n := cfg.Width * cfg.Height
	return &Camera{
		cfg:       cfg,
		r:         r,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		mem:       make([]float64, n),
		refrUntil: make([]int64, n),
		frame:     make([]float32, n),
	}, nil
}

const lumFloor = 1e-3 // avoid log(0) for dark pixels

func logLum(v float32) float64 {
	f := float64(v)
	if f < lumFloor {
		f = lumFloor
	}
	return math.Log(f)
}

// Run simulates [t0, t1) and returns the sorted event stream.
func (c *Camera) Run(t0, t1 int64) (*events.Stream, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("scene: empty interval [%d, %d)", t0, t1)
	}
	w, h := c.cfg.Width, c.cfg.Height
	out := events.NewStream(w, h)

	// Initialize memory from the first frame so startup does not flood
	// events.
	if !c.initialized {
		c.r.Render(c.frame, w, h, t0)
		for i, v := range c.frame {
			c.mem[i] = logLum(v)
		}
		c.initialized = true
	}

	prevT := t0
	for t := t0 + c.cfg.StepUS; prevT < t1; t += c.cfg.StepUS {
		if t > t1 {
			t = t1
		}
		c.r.Render(c.frame, w, h, t)
		dt := t - prevT
		for i, v := range c.frame {
			cur := logLum(v)
			delta := cur - c.mem[i]
			if delta < c.cfg.Theta && delta > -c.cfg.Theta {
				continue
			}
			if c.refrUntil[i] > t {
				continue
			}
			pol := events.On
			sign := 1.0
			if delta < 0 {
				pol = events.Off
				sign = -1.0
			}
			n := int(math.Abs(delta) / c.cfg.Theta)
			if n > c.cfg.MaxEventsPerStep {
				n = c.cfg.MaxEventsPerStep
			}
			x, y := uint16(i%w), uint16(i/w)
			for k := 1; k <= n; k++ {
				// Linear interpolation of the crossing time inside the step.
				frac := float64(k) / float64(n+1)
				ts := prevT + int64(frac*float64(dt))
				out.Append(events.Event{X: x, Y: y, TS: ts, Pol: pol})
			}
			c.mem[i] += sign * float64(n) * c.cfg.Theta
			c.refrUntil[i] = prevT + c.cfg.RefractoryUS
		}
		// Background noise: global Poisson thinned over pixels.
		if c.cfg.NoiseHz > 0 {
			lambda := c.cfg.NoiseHz * float64(w*h) * float64(dt) * 1e-6
			for nn := poisson(c.rng, lambda); nn > 0; nn-- {
				i := c.rng.Intn(w * h)
				pol := events.On
				if c.rng.Intn(2) == 0 {
					pol = events.Off
				}
				out.Append(events.Event{
					X: uint16(i % w), Y: uint16(i / w),
					TS: prevT + c.rng.Int63n(dt), Pol: pol,
				})
			}
		}
		prevT = t
	}
	out.Sort()
	return out, nil
}

// poisson draws from a Poisson distribution (Knuth for small lambda,
// normal approximation above 30).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateUniform returns a uniform Poisson event stream: rateHz events
// per second spread uniformly over the sensor — a cheap deterministic
// source for unit tests in other packages.
func GenerateUniform(w, h int, rateHz float64, durUS int64, seed int64) *events.Stream {
	rng := rand.New(rand.NewSource(seed))
	s := events.NewStream(w, h)
	n := int(rateHz * float64(durUS) * 1e-6)
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = rng.Int63n(durUS)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for _, t := range ts {
		pol := events.On
		if rng.Intn(2) == 0 {
			pol = events.Off
		}
		s.Append(events.Event{
			X: uint16(rng.Intn(w)), Y: uint16(rng.Intn(h)), TS: t, Pol: pol,
		})
	}
	return s
}
