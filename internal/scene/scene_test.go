package scene

import (
	"math"
	"math/rand"
	"testing"

	"evedge/internal/events"
)

// rampRenderer brightens the whole frame linearly with time.
type rampRenderer struct{ rate float64 } // luminance per second

func (r *rampRenderer) Render(dst []float32, w, h int, tUS int64) {
	v := float32(0.2 + r.rate*float64(tUS)*1e-6)
	if v > 1 {
		v = 1
	}
	for i := range dst {
		dst[i] = v
	}
}

func testConfig(w, h int) Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.NoiseHz = 0
	cfg.RefractoryUS = 0
	return cfg
}

func TestCameraValidation(t *testing.T) {
	if _, err := NewCamera(Config{Width: 0, Height: 1, Theta: 0.1, StepUS: 1}, &rampRenderer{}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewCamera(Config{Width: 1, Height: 1, Theta: 0, StepUS: 1}, &rampRenderer{}); err == nil {
		t.Fatal("zero theta accepted")
	}
	if _, err := NewCamera(Config{Width: 1, Height: 1, Theta: 0.1, StepUS: 0}, &rampRenderer{}); err == nil {
		t.Fatal("zero step accepted")
	}
	cam, err := NewCamera(testConfig(4, 4), &rampRenderer{rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cam.Run(10, 10); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestBrighteningEmitsOnEvents(t *testing.T) {
	cfg := testConfig(8, 8)
	cam, err := NewCamera(cfg, &rampRenderer{rate: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cam.Run(0, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("no events from a brightening scene")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	on, off := s.CountByPolarity()
	if off != 0 {
		t.Fatalf("brightening scene produced %d OFF events", off)
	}
	if on < 8*8 {
		t.Fatalf("expected every pixel to fire, got %d events", on)
	}
}

func TestDimmingEmitsOffEvents(t *testing.T) {
	cfg := testConfig(8, 8)
	cam, err := NewCamera(cfg, &rampRenderer{rate: -1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Start bright: the ramp renderer at negative rate dims from 0.2
	// downward immediately, so use a custom start offset via a wrapper.
	s, err := cam.Run(0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	on, _ := s.CountByPolarity()
	if on != 0 {
		t.Fatalf("dimming scene produced %d ON events", on)
	}
}

func TestStaticSceneIsQuiet(t *testing.T) {
	cfg := testConfig(16, 16)
	cam, err := NewCamera(cfg, &rampRenderer{rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cam.Run(0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("static noiseless scene produced %d events", s.Len())
	}
}

func TestNoiseOnlyRateIsPlausible(t *testing.T) {
	cfg := testConfig(32, 32)
	cfg.NoiseHz = 10 // 10 Hz per pixel
	cam, err := NewCamera(cfg, &rampRenderer{rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cam.Run(0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 * 32 * 32 // expected events in 1 s
	got := float64(s.Len())
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("noise events=%v want about %v", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEventCountScalesWithContrast(t *testing.T) {
	run := func(rate float64) int {
		cfg := testConfig(8, 8)
		cam, err := NewCamera(cfg, &rampRenderer{rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		s, err := cam.Run(0, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		return s.Len()
	}
	slow, fast := run(0.5), run(1.5)
	if fast <= slow {
		t.Fatalf("faster brightening should emit more events: %d vs %d", fast, slow)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{0, 0.5, 3, 50} {
		n := 2000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(r, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.1 {
			t.Fatalf("lambda=%v mean=%v", lambda, mean)
		}
	}
}

func TestTextureSample(t *testing.T) {
	tex := NewTexture(32, 32, 0.5, 9)
	for _, v := range tex.Data {
		if v < 0.02 || v > 1 {
			t.Fatalf("texture value %f out of range", v)
		}
	}
	// Wraparound: sampling at x and x+W must agree.
	a := tex.Sample(5.3, 7.9)
	b := tex.Sample(5.3+32, 7.9-32)
	if math.Abs(float64(a-b)) > 1e-6 {
		t.Fatalf("wraparound broken: %f vs %f", a, b)
	}
	// Integer sampling returns the exact texel.
	if tex.Sample(3, 4) != tex.Data[4*32+3] {
		t.Fatal("integer sample not exact")
	}
}

func TestSmoothPathBurstsContinuity(t *testing.T) {
	p := &SmoothPath{VX: 10, Bursts: []Burst{{T0: 1_000_000, T1: 2_000_000, Gain: 5}}}
	// Position is continuous across the burst boundary.
	before := p.At(999_999).TX
	at := p.At(1_000_001).TX
	if math.Abs(at-before) > 0.01 {
		t.Fatalf("discontinuity at burst start: %f -> %f", before, at)
	}
	// Velocity during the burst is higher.
	v1 := p.At(1_500_000).TX - p.At(1_400_000).TX
	v0 := p.At(500_000).TX - p.At(400_000).TX
	if v1 < 4*v0 {
		t.Fatalf("burst velocity gain too small: %f vs %f", v1, v0)
	}
	// After the burst the motion keeps the accumulated offset.
	after := p.At(3_000_000).TX
	if after <= p.At(2_000_000).TX {
		t.Fatal("no forward motion after burst")
	}
}

func TestBlobOrbit(t *testing.T) {
	b := Blob{CX: 50, CY: 50, OrbitR: 10, OrbitHz: 1}
	x0, y0 := b.center(0)
	x1, y1 := b.center(500_000) // half period: opposite side
	if math.Abs(x0-60) > 1e-6 || math.Abs(y0-50) > 1e-6 {
		t.Fatalf("orbit start (%f,%f)", x0, y0)
	}
	if math.Abs(x1-40) > 1e-6 || math.Abs(y1-50) > 1e-6 {
		t.Fatalf("orbit half (%f,%f)", x1, y1)
	}
}

func TestPresetsGenerate(t *testing.T) {
	for _, p := range AllPresets() {
		seq, err := NewSequence(p, Half, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		s, err := seq.Generate(200_000) // 200 ms
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if s.Len() == 0 {
			t.Fatalf("%s: produced no events", p)
		}
	}
	if _, err := NewSequence(Preset("nope"), Half, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetDensityOrdering(t *testing.T) {
	density := func(p Preset) float64 {
		seq, err := NewSequence(p, Half, 7)
		if err != nil {
			t.Fatal(err)
		}
		s, err := seq.Generate(300_000)
		if err != nil {
			t.Fatal(err)
		}
		// Mean spatial density over 5 ms frames, the paper's metric.
		var sum float64
		ws := s.Windows(5000)
		for _, w := range ws {
			sum += w.Stream.SpatialDensity()
		}
		return sum / float64(len(ws))
	}
	hover := density(IndoorFlying3)
	drive := density(OutdoorDay1)
	if drive <= hover {
		t.Fatalf("driving (%f) should be denser than hovering (%f)", drive, hover)
	}
	if drive < 0.01 {
		t.Fatalf("driving density %f implausibly low", drive)
	}
	if hover > 0.2 {
		t.Fatalf("hover density %f implausibly high", hover)
	}
}

func TestIndoorFlying2HasBursts(t *testing.T) {
	seq, err := NewSequence(IndoorFlying2, Half, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := seq.Generate(3_200_000)
	if err != nil {
		t.Fatal(err)
	}
	series := s.DensitySeries(50_000) // 50 ms buckets
	var peak, base float64
	n := 0
	for i, c := range series {
		tMid := int64(i)*50_000 + 25_000
		inBurst := (tMid > 800_000 && tMid < 1_300_000) || (tMid > 2_400_000 && tMid < 2_900_000)
		if inBurst {
			if float64(c) > peak {
				peak = float64(c)
			}
		} else {
			base += float64(c)
			n++
		}
	}
	base /= float64(n)
	if peak < 2*base {
		t.Fatalf("burst peak %f not clearly above base %f", peak, base)
	}
}

func TestGenerateUniform(t *testing.T) {
	s := GenerateUniform(64, 48, 10000, 1_000_000, 9)
	if s.Len() != 10000 {
		t.Fatalf("len=%d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism under the same seed.
	s2 := GenerateUniform(64, 48, 10000, 1_000_000, 9)
	if s2.Len() != s.Len() || s2.Events[500] != s.Events[500] {
		t.Fatal("GenerateUniform not deterministic")
	}
}

func TestSequenceDeterminism(t *testing.T) {
	gen := func() *events.Stream {
		seq, err := NewSequence(IndoorFlying1, Half, 11)
		if err != nil {
			t.Fatal(err)
		}
		s, err := seq.Generate(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := gen(), gen()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
