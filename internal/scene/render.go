package scene

import (
	"math"
	"math/rand"
)

// Texture is a tileable procedural luminance image sampled bilinearly
// with wraparound, used as the static world the camera moves over.
type Texture struct {
	W, H int
	Data []float32
}

// NewTexture synthesizes a w x h texture as a sum of value-noise
// octaves; contrast in (0, 1] scales the luminance variation around
// 0.5. High-contrast textures produce dense event fields under motion.
func NewTexture(w, h int, contrast float64, seed int64) *Texture {
	rng := rand.New(rand.NewSource(seed))
	t := &Texture{W: w, H: h, Data: make([]float32, w*h)}
	// Base octaves: random grids upsampled bilinearly.
	octaves := []int{4, 8, 16, 32}
	weights := []float64{0.45, 0.3, 0.15, 0.1}
	for o, cells := range octaves {
		grid := make([]float64, (cells+1)*(cells+1))
		for i := range grid {
			grid[i] = rng.Float64()
		}
		for y := 0; y < h; y++ {
			gy := float64(y) / float64(h) * float64(cells)
			y0 := int(gy)
			fy := gy - float64(y0)
			for x := 0; x < w; x++ {
				gx := float64(x) / float64(w) * float64(cells)
				x0 := int(gx)
				fx := gx - float64(x0)
				v00 := grid[y0*(cells+1)+x0]
				v01 := grid[y0*(cells+1)+x0+1]
				v10 := grid[(y0+1)*(cells+1)+x0]
				v11 := grid[(y0+1)*(cells+1)+x0+1]
				v := v00*(1-fx)*(1-fy) + v01*fx*(1-fy) + v10*(1-fx)*fy + v11*fx*fy
				t.Data[y*w+x] += float32(v * weights[o])
			}
		}
	}
	// Normalize to mean 0.5 with the requested contrast.
	var mean float64
	for _, v := range t.Data {
		mean += float64(v)
	}
	mean /= float64(len(t.Data))
	for i, v := range t.Data {
		t.Data[i] = float32(0.5 + (float64(v)-mean)*contrast*2)
		if t.Data[i] < 0.02 {
			t.Data[i] = 0.02
		}
		if t.Data[i] > 1 {
			t.Data[i] = 1
		}
	}
	return t
}

// Sample returns the bilinear wraparound sample at (u, v) in pixels.
func (t *Texture) Sample(u, v float64) float32 {
	u = math.Mod(u, float64(t.W))
	if u < 0 {
		u += float64(t.W)
	}
	v = math.Mod(v, float64(t.H))
	if v < 0 {
		v += float64(t.H)
	}
	x0, y0 := int(u), int(v)
	fx, fy := u-float64(x0), v-float64(y0)
	x1, y1 := (x0+1)%t.W, (y0+1)%t.H
	v00 := float64(t.Data[y0*t.W+x0])
	v01 := float64(t.Data[y0*t.W+x1])
	v10 := float64(t.Data[y1*t.W+x0])
	v11 := float64(t.Data[y1*t.W+x1])
	return float32(v00*(1-fx)*(1-fy) + v01*fx*(1-fy) + v10*(1-fx)*fy + v11*fx*fy)
}

// MotionSample is one instant of the ego-motion path.
type MotionSample struct {
	TX, TY float64 // translation in pixels
	Angle  float64 // rotation in radians
	Zoom   float64 // scale factor (1 = none)
}

// MotionPath yields the camera pose at a given time.
type MotionPath interface {
	At(tUS int64) MotionSample
}

// Burst is a high-activity segment of a motion profile: between T0 and
// T1 the base translational speed is multiplied by Gain (an aggressive
// maneuver in the IndoorFlying sequences, a passing car in OutdoorDay).
type Burst struct {
	T0, T1 int64
	Gain   float64
}

// SmoothPath is a sum-of-sinusoids ego-motion with optional bursts —
// enough to model hovering (small amplitudes), forward driving (large
// linear velocity) and aggressive flight (bursts).
type SmoothPath struct {
	VX, VY     float64 // linear velocity, pixels/second
	AmpX, AmpY float64 // oscillation amplitude, pixels
	FreqX      float64 // oscillation frequency, Hz
	FreqY      float64
	RotAmp     float64 // rotation amplitude, radians
	RotFreq    float64
	Bursts     []Burst
}

// At evaluates the pose. Bursts scale the linear-velocity contribution
// by integrating gain over elapsed burst time so position is continuous.
func (p *SmoothPath) At(tUS int64) MotionSample {
	t := float64(tUS) * 1e-6
	// Effective elapsed "motion time" accounting for bursts.
	mt := t
	for _, b := range p.Bursts {
		t0 := float64(b.T0) * 1e-6
		t1 := float64(b.T1) * 1e-6
		if t <= t0 {
			continue
		}
		end := math.Min(t, t1)
		mt += (end - t0) * (b.Gain - 1)
	}
	s := MotionSample{Zoom: 1}
	s.TX = p.VX*mt + p.AmpX*math.Sin(2*math.Pi*p.FreqX*t)
	s.TY = p.VY*mt + p.AmpY*math.Sin(2*math.Pi*p.FreqY*t)
	s.Angle = p.RotAmp * math.Sin(2*math.Pi*p.RotFreq*t)
	return s
}

// Blob is a moving Gaussian foreground object (a tracked drone, a
// pedestrian, the DOTIE high-speed target).
type Blob struct {
	CX, CY   float64 // initial center
	VX, VY   float64 // velocity, pixels/second
	OrbitR   float64 // optional circular orbit radius
	OrbitHz  float64 // orbit frequency
	Radius   float64 // Gaussian sigma
	Contrast float64 // luminance delta (may be negative = dark object)
}

func (b *Blob) center(tUS int64) (float64, float64) {
	t := float64(tUS) * 1e-6
	cx := b.CX + b.VX*t
	cy := b.CY + b.VY*t
	if b.OrbitR > 0 {
		cx += b.OrbitR * math.Cos(2*math.Pi*b.OrbitHz*t)
		cy += b.OrbitR * math.Sin(2*math.Pi*b.OrbitHz*t)
	}
	return cx, cy
}

// World is the composite renderer: a texture under ego-motion plus
// foreground blobs. It implements Renderer.
type World struct {
	Texture *Texture
	Path    MotionPath
	Blobs   []Blob
	// TextureGain in [0,1] dims the background (lower gain = fewer
	// background events, isolating foreground objects).
	TextureGain float64
}

// Render fills dst with the scene luminance at time t.
func (wd *World) Render(dst []float32, w, h int, tUS int64) {
	pose := MotionSample{Zoom: 1}
	if wd.Path != nil {
		pose = wd.Path.At(tUS)
	}
	gain := wd.TextureGain
	if gain == 0 {
		gain = 1
	}
	cx, cy := float64(w)/2, float64(h)/2
	cosA, sinA := math.Cos(pose.Angle), math.Sin(pose.Angle)
	zoom := pose.Zoom
	if zoom == 0 {
		zoom = 1
	}
	if wd.Texture != nil {
		for y := 0; y < h; y++ {
			dy := (float64(y) - cy) * zoom
			for x := 0; x < w; x++ {
				dx := (float64(x) - cx) * zoom
				u := cosA*dx + sinA*dy + cx + pose.TX
				v := -sinA*dx + cosA*dy + cy + pose.TY
				lum := float64(wd.Texture.Sample(u, v))
				dst[y*w+x] = float32(0.5 + (lum-0.5)*gain)
			}
		}
	} else {
		for i := range dst {
			dst[i] = 0.5
		}
	}
	// Blobs composite additively within a 3-sigma bounding box.
	for i := range wd.Blobs {
		b := &wd.Blobs[i]
		bx, by := b.center(tUS)
		r := 3 * b.Radius
		x0, x1 := int(math.Floor(bx-r)), int(math.Ceil(bx+r))
		y0, y1 := int(math.Floor(by-r)), int(math.Ceil(by+r))
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > w-1 {
			x1 = w - 1
		}
		if y1 > h-1 {
			y1 = h - 1
		}
		inv2s2 := 1 / (2 * b.Radius * b.Radius)
		for y := y0; y <= y1; y++ {
			dy := float64(y) - by
			for x := x0; x <= x1; x++ {
				dx := float64(x) - bx
				g := math.Exp(-(dx*dx + dy*dy) * inv2s2)
				v := float64(dst[y*w+x]) + b.Contrast*g
				if v < 0.02 {
					v = 0.02
				}
				if v > 1 {
					v = 1
				}
				dst[y*w+x] = float32(v)
			}
		}
	}
}
