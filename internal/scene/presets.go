package scene

import (
	"fmt"

	"evedge/internal/events"
)

// Preset identifies one of the dataset-like synthetic sequences.
type Preset string

// Presets shaped after the paper's evaluation sequences.
const (
	// IndoorFlying1: gentle indoor drone flight (MVSEC). Sparse frames,
	// low-to-moderate density. Used by Fig. 1 (Adaptive-SpikeNet).
	IndoorFlying1 Preset = "indoorflying1"
	// IndoorFlying2: flight with two aggressive maneuvers producing the
	// strong temporal-density variance of the paper's Fig. 5.
	IndoorFlying2 Preset = "indoorflying2"
	// IndoorFlying3: slow hover, very sparse.
	IndoorFlying3 Preset = "indoorflying3"
	// OutdoorDay1: daytime driving (MVSEC), fast lateral texture motion,
	// densest frames.
	OutdoorDay1 Preset = "outdoorday1"
	// Town10: DENSE synthetic town sequence (depth estimation).
	Town10 Preset = "town10"
	// HighSpeedSpin: a single fast orbiting object on a dim background,
	// the DOTIE object-tracking workload.
	HighSpeedSpin Preset = "highspeedspin"
)

// AllPresets lists every named preset.
func AllPresets() []Preset {
	return []Preset{IndoorFlying1, IndoorFlying2, IndoorFlying3, OutdoorDay1, Town10, HighSpeedSpin}
}

// Sequence couples a camera and world ready to generate a stream.
type Sequence struct {
	Name   Preset
	Camera *Camera
}

// Generate runs the sequence for durUS microseconds starting at t=0.
func (s *Sequence) Generate(durUS int64) (*events.Stream, error) {
	return s.Camera.Run(0, durUS)
}

// Scale selects the simulation resolution. Full is DAVIS346; Half is
// used by unit tests to keep them fast. Density statistics are nearly
// resolution-independent.
type Scale int

// Scale values.
const (
	Full Scale = iota
	Half
)

func dims(sc Scale) (int, int) {
	if sc == Half {
		return 173, 130
	}
	return 346, 260
}

// NewSequence builds a preset sequence at the given scale with a seed
// controlling all stochastic elements.
func NewSequence(p Preset, sc Scale, seed int64) (*Sequence, error) {
	w, h := dims(sc)
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	cfg.Seed = seed
	var world *World
	switch p {
	case IndoorFlying1:
		world = &World{
			Texture: NewTexture(w, h, 0.55, seed+100),
			Path: &SmoothPath{
				VX: 18, VY: 6,
				AmpX: 8, AmpY: 5, FreqX: 0.4, FreqY: 0.3,
				RotAmp: 0.02, RotFreq: 0.25,
				// Moderate maneuvers; IndoorFlying2 is the aggressive
				// sequence.
				Bursts: []Burst{
					{T0: 700_000, T1: 850_000, Gain: 3},
					{T0: 1_300_000, T1: 1_480_000, Gain: 4},
				},
			},
			Blobs: []Blob{
				{CX: float64(w) * 0.3, CY: float64(h) * 0.4, VX: 12, VY: 4, Radius: 7, Contrast: -0.35},
			},
			TextureGain: 0.55,
		}
	case IndoorFlying2:
		world = &World{
			Texture: NewTexture(w, h, 0.6, seed+200),
			Path: &SmoothPath{
				VX: 14, VY: 8,
				AmpX: 10, AmpY: 6, FreqX: 0.5, FreqY: 0.35,
				RotAmp: 0.03, RotFreq: 0.3,
				// Several aggressive maneuvers -> the Fig. 5 bursts.
				Bursts: []Burst{
					{T0: 450_000, T1: 650_000, Gain: 4},
					{T0: 900_000, T1: 1_150_000, Gain: 6},
					{T0: 1_400_000, T1: 1_600_000, Gain: 5},
					{T0: 2_300_000, T1: 2_550_000, Gain: 6},
					{T0: 2_750_000, T1: 2_950_000, Gain: 4},
				},
			},
			Blobs: []Blob{
				{CX: float64(w) * 0.6, CY: float64(h) * 0.5, VX: -15, VY: 6, Radius: 8, Contrast: -0.3},
			},
			TextureGain: 0.6,
		}
	case IndoorFlying3:
		world = &World{
			Texture: NewTexture(w, h, 0.4, seed+300),
			Path: &SmoothPath{
				VX: 4, VY: 2,
				AmpX: 4, AmpY: 3, FreqX: 0.3, FreqY: 0.2,
			},
			TextureGain: 0.4,
		}
	case OutdoorDay1:
		world = &World{
			Texture: NewTexture(w, h, 0.8, seed+400),
			Path: &SmoothPath{
				VX: 160, VY: 4, // fast forward driving
				AmpX: 3, AmpY: 6, FreqX: 1.2, FreqY: 0.8,
				RotAmp: 0.01, RotFreq: 0.5,
				// A fast turn mid-sequence.
				Bursts: []Burst{{T0: 1_000_000, T1: 1_350_000, Gain: 3}},
			},
			Blobs: []Blob{
				{CX: float64(w) * 0.8, CY: float64(h) * 0.55, VX: -90, VY: 0, Radius: 10, Contrast: -0.4},
				{CX: float64(w) * 0.1, CY: float64(h) * 0.6, VX: 70, VY: -2, Radius: 9, Contrast: 0.35},
			},
			TextureGain: 0.85,
		}
	case Town10:
		world = &World{
			Texture: NewTexture(w, h, 0.65, seed+500),
			Path: &SmoothPath{
				VX: 55, VY: 2,
				AmpX: 5, AmpY: 4, FreqX: 0.6, FreqY: 0.4,
				RotAmp: 0.015, RotFreq: 0.35,
				Bursts: []Burst{{T0: 1_400_000, T1: 1_700_000, Gain: 3}},
			},
			Blobs: []Blob{
				{CX: float64(w) * 0.5, CY: float64(h) * 0.5, VX: -30, VY: 3, Radius: 8, Contrast: -0.3},
			},
			TextureGain: 0.7,
		}
	case HighSpeedSpin:
		world = &World{
			Texture: NewTexture(w, h, 0.2, seed+600),
			Path:    &SmoothPath{}, // static camera
			Blobs: []Blob{
				{
					CX: float64(w) / 2, CY: float64(h) / 2,
					OrbitR: float64(h) * 0.3, OrbitHz: 6,
					Radius: 6, Contrast: 0.45,
				},
			},
			TextureGain: 0.15,
		}
	default:
		return nil, fmt.Errorf("scene: unknown preset %q", p)
	}
	cam, err := NewCamera(cfg, world)
	if err != nil {
		return nil, err
	}
	return &Sequence{Name: p, Camera: cam}, nil
}

// DatasetOf maps a preset to the dataset it stands in for.
func DatasetOf(p Preset) string {
	switch p {
	case Town10:
		return "DENSE"
	default:
		return "MVSEC"
	}
}
