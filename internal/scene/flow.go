package scene

import "math"

// Ground-truth apparent motion. Because the world is procedural, the
// simulator knows the true optical flow at every pixel — what MVSEC
// provides via LiDAR/IMU post-processing. The flow evaluator
// (internal/flow) consumes these fields to compute the AEE metric the
// optical-flow networks report.

// FlowField is a dense per-pixel motion field in pixels per dtUS.
type FlowField struct {
	W, H int
	U, V []float32 // x- and y-displacement per pixel
}

// NewFlowField allocates a zero field.
func NewFlowField(w, h int) *FlowField {
	return &FlowField{W: w, H: h, U: make([]float32, w*h), V: make([]float32, w*h)}
}

// At returns the flow vector at (x, y).
func (f *FlowField) At(x, y int) (u, v float32) {
	return f.U[y*f.W+x], f.V[y*f.W+x]
}

// GroundTruthFlow computes the apparent motion of the world between
// tUS and tUS+dtUS for every pixel: the background moves with the
// inverse of the ego-motion warp, and pixels dominated by a foreground
// blob move with the blob. dtUS must be positive.
func (wd *World) GroundTruthFlow(w, h int, tUS, dtUS int64) *FlowField {
	f := NewFlowField(w, h)
	if dtUS <= 0 {
		return f
	}
	pose0 := MotionSample{Zoom: 1}
	pose1 := MotionSample{Zoom: 1}
	if wd.Path != nil {
		pose0 = wd.Path.At(tUS)
		pose1 = wd.Path.At(tUS + dtUS)
	}
	cx, cy := float64(w)/2, float64(h)/2
	// A scene point that projects to pixel p at time t projects at
	// time t+dt to the pixel whose *texture* coordinate matches:
	// warp(p, t) == warp(p', t+dt). Solve p' = warp^{-1}(warp(p, t), t+dt).
	cos0, sin0 := math.Cos(pose0.Angle), math.Sin(pose0.Angle)
	cos1, sin1 := math.Cos(pose1.Angle), math.Sin(pose1.Angle)
	z0, z1 := pose0.Zoom, pose1.Zoom
	if z0 == 0 {
		z0 = 1
	}
	if z1 == 0 {
		z1 = 1
	}
	for y := 0; y < h; y++ {
		dy := (float64(y) - cy) * z0
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) * z0
			// Texture coordinate under pose0.
			u := cos0*dx + sin0*dy + cx + pose0.TX
			v := -sin0*dx + cos0*dy + cy + pose0.TY
			// Invert pose1: first remove translation, then rotation/zoom.
			du := u - cx - pose1.TX
			dv := v - cy - pose1.TY
			ix := (cos1*du - sin1*dv) / z1
			iy := (sin1*du + cos1*dv) / z1
			f.U[y*w+x] = float32(ix + cx - float64(x))
			f.V[y*w+x] = float32(iy + cy - float64(y))
		}
	}
	// Foreground blobs override the background within 2 sigma.
	dt := float64(dtUS)
	for i := range wd.Blobs {
		b := &wd.Blobs[i]
		bx0, by0 := b.center(tUS)
		bx1, by1 := b.center(tUS + dtUS)
		vx, vy := float32(bx1-bx0), float32(by1-by0)
		r := 2 * b.Radius
		x0, x1 := int(math.Floor(bx0-r)), int(math.Ceil(bx0+r))
		y0, y1 := int(math.Floor(by0-r)), int(math.Ceil(by0+r))
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > w-1 {
			x1 = w - 1
		}
		if y1 > h-1 {
			y1 = h - 1
		}
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				ddx, ddy := float64(x)-bx0, float64(y)-by0
				if ddx*ddx+ddy*ddy <= r*r {
					f.U[y*w+x] = vx
					f.V[y*w+x] = vy
				}
			}
		}
	}
	_ = dt
	return f
}

// MeanMagnitude returns the average flow magnitude in pixels.
func (f *FlowField) MeanMagnitude() float64 {
	var s float64
	for i := range f.U {
		s += math.Hypot(float64(f.U[i]), float64(f.V[i]))
	}
	return s / float64(len(f.U))
}
