package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing / Perfetto "JSON trace"). Field order is fixed by
// the struct, and args maps marshal with sorted keys, so the export
// is byte-deterministic for a deterministic event set.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args any     `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome exports the tracers' events as Chrome trace-event JSON.
// Each tracer's node becomes one process lane (pid) and each track one
// named thread lane (tid); lanes are assigned in sorted order and
// events sort by (ts, pid, tid, name), so the same event set always
// serializes to the same bytes. Nil tracers are skipped; with nothing
// to export the result is a valid empty trace.
func WriteChrome(w io.Writer, tracers ...*Tracer) error {
	type lane struct{ node, track string }
	var (
		nodes  []string
		seen   = map[string]bool{}
		lanes  []lane
		events = map[lane][]Event{}
	)
	for _, t := range tracers {
		if t == nil {
			continue
		}
		node := t.Node()
		if node == "" {
			node = "evserve"
		}
		if !seen[node] {
			seen[node] = true
			nodes = append(nodes, node)
		}
		for _, e := range t.Events() {
			l := lane{node, e.Track}
			if _, ok := events[l]; !ok {
				lanes = append(lanes, l)
			}
			events[l] = append(events[l], e)
		}
	}
	sort.Strings(nodes)
	pid := make(map[string]int, len(nodes))
	for i, n := range nodes {
		pid[n] = i + 1
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].node != lanes[j].node {
			return lanes[i].node < lanes[j].node
		}
		return lanes[i].track < lanes[j].track
	})
	tid := make(map[lane]int, len(lanes))
	next := map[string]int{}
	for _, l := range lanes {
		next[l.node]++
		tid[l] = next[l.node]
	}

	var out []chromeEvent
	for _, n := range nodes {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, l := range lanes {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid[l.node], TID: tid[l],
			Args: map[string]string{"name": l.track},
		})
	}
	var body []chromeEvent
	for _, l := range lanes {
		for _, e := range events[l] {
			ce := chromeEvent{
				Name: e.Name,
				Cat:  e.Stage.String(),
				TS:   e.StartUS,
				PID:  pid[l.node],
				TID:  tid[l],
			}
			if e.Instant {
				ce.Ph, ce.S = "i", "t"
			} else {
				ce.Ph, ce.Dur = "X", e.DurUS
			}
			if e.Count > 0 {
				ce.Args = map[string]int64{"count": e.Count}
			}
			body = append(body, ce)
		}
	}
	sort.SliceStable(body, func(i, j int) bool {
		a, b := body[i], body[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	out = append(out, body...)
	if out == nil {
		out = []chromeEvent{}
	}

	data, err := json.MarshalIndent(chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     out,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
