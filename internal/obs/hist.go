package obs

import "math"

// BucketBoundsUS are the per-stage latency histogram bucket upper
// bounds in virtual microseconds: exponential-ish from 50 us (a fast
// layer on an accelerator) to 2.5 s (a saturated soak tail), with an
// implicit +Inf bucket above the last bound. Shared by every stage so
// fleet-level merges are index-aligned.
var BucketBoundsUS = []float64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000,
	25_000, 50_000, 100_000, 250_000,
	500_000, 1_000_000, 2_500_000,
}

// numBuckets is len(BucketBoundsUS)+1 (the +Inf bucket); a test
// asserts the two stay in sync.
const numBuckets = 16

// bucketBounds pads BucketBoundsUS to numBuckets (a power of two)
// with +Inf so Observe can locate a bucket with a fixed four-step
// branch-light search instead of a linear scan — Observe runs once
// per span including every sampled-away one, so it sits on the
// per-frame hot path the tracing-overhead budget is written against.
var bucketBounds [numBuckets]float64

func init() {
	copy(bucketBounds[:], BucketBoundsUS)
	bucketBounds[numBuckets-1] = math.Inf(1)
}

// Histogram is a fixed-bucket latency accumulator. The zero value is
// ready to use.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    float64
	max    float64
}

// Observe folds one latency (virtual us) into the histogram.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	// Four-step lower bound over the padded bounds: i ends at the first
	// bucket whose bound is >= v (the +Inf pad catches the overflow
	// bucket, and a NaN fails every comparison into bucket 0, as the
	// linear scan it replaces did).
	i := 0
	if bucketBounds[i+7] < v {
		i += 8
	}
	if bucketBounds[i+3] < v {
		i += 4
	}
	if bucketBounds[i+1] < v {
		i += 2
	}
	if bucketBounds[i] < v {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Counts: make([]uint64, numBuckets),
		Count:  h.count,
		SumUS:  h.sum,
		MaxUS:  h.max,
	}
	copy(s.Counts, h.counts[:numBuckets])
	return s
}

// HistSnapshot is a point-in-time copy of one stage's histogram,
// mergeable across nodes and incarnations for fleet roll-ups.
type HistSnapshot struct {
	// Stage is the stage's exposition name.
	Stage string `json:"stage"`
	// Counts holds per-bucket observation counts, index-aligned with
	// BucketBoundsUS plus a final +Inf bucket.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	SumUS  float64  `json:"sum_us"`
	MaxUS  float64  `json:"max_us"`
}

// Merge folds another snapshot of the same stage into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) < len(o.Counts) {
		c := make([]uint64, len(o.Counts))
		copy(c, s.Counts)
		s.Counts = c
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
	s.Count += o.Count
	s.SumUS += o.SumUS
	if o.MaxUS > s.MaxUS {
		s.MaxUS = o.MaxUS
	}
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the containing bucket, clamped to the observed maximum so a
// sparse +Inf bucket cannot report a latency nothing reached. Exact
// at the granularity of the bucket bounds — and deterministic, which
// is what lets scenario contracts assert on it.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = BucketBoundsUS[i-1]
			}
			hi := s.MaxUS
			if i < len(BucketBoundsUS) && BucketBoundsUS[i] < hi {
				hi = BucketBoundsUS[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			v := lo + frac*(hi-lo)
			if v > s.MaxUS {
				v = s.MaxUS
			}
			return v
		}
		cum = next
	}
	return s.MaxUS
}

// StageSummary is one stage's human-facing latency digest — what the
// scenario harness records in Result.Stages and what
// Expect.MaxStageP99US asserts against.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summaries digests histogram snapshots into per-stage summaries,
// keeping only stages that observed anything, in lifecycle order.
func Summaries(hists []HistSnapshot) []StageSummary {
	var out []StageSummary
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage:  h.Stage,
			Count:  h.Count,
			MeanUS: h.SumUS / float64(h.Count),
			P50US:  h.Quantile(0.50),
			P99US:  h.Quantile(0.99),
			MaxUS:  h.MaxUS,
		})
	}
	return out
}

// MergeHists merges per-stage snapshot slices (index-aligned, as
// returned by Tracer.Hists) across tracers/nodes into one roll-up.
func MergeHists(all ...[]HistSnapshot) []HistSnapshot {
	out := make([]HistSnapshot, NumStages)
	for i := range out {
		out[i].Stage = Stage(i).String()
		out[i].Counts = make([]uint64, numBuckets)
	}
	for _, hs := range all {
		for i := range hs {
			if i < len(out) {
				out[i].Merge(hs[i])
			}
		}
	}
	return out
}
