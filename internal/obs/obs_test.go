package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestBucketBoundsMatchNumBuckets(t *testing.T) {
	if len(BucketBoundsUS)+1 != numBuckets {
		t.Fatalf("numBuckets = %d, want len(BucketBoundsUS)+1 = %d", numBuckets, len(BucketBoundsUS)+1)
	}
	for i := 1; i < len(BucketBoundsUS); i++ {
		if BucketBoundsUS[i] <= BucketBoundsUS[i-1] {
			t.Fatalf("bucket bounds not increasing at %d: %v", i, BucketBoundsUS)
		}
	}
}

// TestNilTracerIsNoOp: the nil Tracer is the disabled tracer — every
// method must be callable without panicking.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Span("sess/s1", StageFrame, "frame", 0, 10, 1)
	tr.Instant("ctl", StageCtl, "retune", 5, 1)
	tr.Batch([]Event{{Track: "x", Name: "y"}})
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v, want nil", got)
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer has counts")
	}
	hists := tr.Hists()
	if len(hists) != NumStages {
		t.Fatalf("nil tracer hists = %d entries, want %d", len(hists), NumStages)
	}
	if NewTracer(Config{}) != nil {
		t.Fatal("NewTracer with Enabled=false must return nil")
	}
}

func TestRingBoundsAndOverwrite(t *testing.T) {
	// SampleEvery 1: this test exercises ring overwrite, so every span
	// must reach the ring (the default thins queue/frame spans 1-in-4).
	tr := NewTracer(Config{Enabled: true, RingCap: 4, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		tr.Span("sess/s1", StageQueue, "queue", float64(i), float64(i)+1, 1)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	// Oldest overwritten: the survivors are the last four spans.
	if evs[0].StartUS != 6 || evs[3].StartUS != 9 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// The histogram still saw all ten.
	if h := tr.Hists()[StageQueue]; h.Count != 10 {
		t.Fatalf("queue hist count = %d, want 10", h.Count)
	}
}

func TestTrackCap(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, MaxTracks: 2})
	tr.Span("a", StageExec, "x", 0, 1, 0)
	tr.Span("b", StageExec, "x", 0, 1, 0)
	tr.Span("c", StageExec, "x", 0, 1, 0)
	if got := len(tr.Tracks()); got != 2 {
		t.Fatalf("tracks = %d, want 2", got)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
}

// TestSampling: SampleEvery thins the per-frame rings but never the
// histograms.
func TestSampling(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		tr.Span("sess/s1", StageFrame, "frame", float64(i), float64(i)+2, 1)
	}
	// Exec spans are never sampled away.
	tr.Span("dev/GPU", StageExec, "conv", 0, 5, 0)
	if got := len(tr.Events()); got != 4+1 {
		t.Fatalf("sampled events = %d, want 5", got)
	}
	if h := tr.Hists()[StageFrame]; h.Count != 16 {
		t.Fatalf("frame hist count = %d, want 16 (sampling must not thin histograms)", h.Count)
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTracer(Config{Enabled: true})
	tr.Span("sess/s1", StageQueue, "queue", 10, 5, 1)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].DurUS != 0 {
		t.Fatalf("negative span not clamped: %+v", evs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 10) // 0..990 us
	}
	s := h.Snapshot()
	if s.Count != 100 || s.MaxUS != 990 {
		t.Fatalf("snapshot = %+v", s)
	}
	p50 := s.Quantile(0.50)
	if p50 < 250 || p50 > 750 {
		t.Fatalf("p50 = %g, want within the containing bucket of ~500", p50)
	}
	if p99 := s.Quantile(0.99); p99 > s.MaxUS {
		t.Fatalf("p99 %g exceeds observed max %g", p99, s.MaxUS)
	}
	if q := s.Quantile(1); q != s.MaxUS && q > s.MaxUS {
		t.Fatalf("q1 = %g > max %g", q, s.MaxUS)
	}
	// A single huge value lands in +Inf but quantiles stay clamped.
	h.Observe(1e9)
	if q := h.Snapshot().Quantile(0.999); q > 1e9 || math.IsInf(q, 1) {
		t.Fatalf("+Inf bucket leaked into quantile: %g", q)
	}
}

func TestHistMergeAndSummaries(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Observe(200)
	b.Observe(400)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.SumUS != 700 || sa.MaxUS != 400 {
		t.Fatalf("merged = %+v", sa)
	}

	tr := NewTracer(Config{Enabled: true})
	tr.Span("sess/s1", StageQueue, "queue", 0, 100, 1)
	tr.Span("dev/GPU", StageExec, "conv", 0, 50, 0)
	sums := Summaries(tr.Hists())
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v, want queue and exec only", sums)
	}
	if sums[0].Stage != "queue" || sums[1].Stage != "exec" {
		t.Fatalf("summaries out of lifecycle order: %+v", sums)
	}
	if sums[0].MeanUS != 100 {
		t.Fatalf("queue mean = %g, want 100", sums[0].MeanUS)
	}

	merged := MergeHists(tr.Hists(), tr.Hists())
	if merged[StageQueue].Count != 2 {
		t.Fatalf("MergeHists queue count = %d, want 2", merged[StageQueue].Count)
	}
}

// fillTracer records a fixed event set spanning spans, instants and
// two tracks.
func fillTracer(node string) *Tracer {
	tr := NewTracer(Config{Enabled: true, Node: node})
	tr.Span("sess/s1", StageIngest, "ingest", 0, 1000, 3)
	tr.Span("sess/s1", StageQueue, "queue", 1000, 1400, 1)
	tr.Span("dev/GPU", StageExec, "s1/conv1", 1400, 2200, 0)
	tr.Span("um", StageComms, "s1/edge", 2200, 2300, 0)
	tr.Instant("sched", StageCtl, "dispatch", 1400, 2)
	tr.Span("sess/s1", StageFrame, "frame", 1000, 2300, 1)
	return tr
}

// TestWriteChromeValidAndDeterministic: the export must parse as
// Chrome trace-event JSON (traceEvents array, required fields) and two
// identical event sets must serialize byte-identically.
func TestWriteChromeValidAndDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, fillTracer("node0")); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, fillTracer("node0")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical tracers exported different bytes")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			meta++
		case "X":
			spans++
			if _, ok := e["dur"]; !ok {
				// A zero-duration complete event omits dur; tolerated.
				continue
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q in %v", ph, e)
		}
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
	}
	if meta < 2 || spans != 5 || instants != 1 {
		t.Fatalf("meta=%d spans=%d instants=%d, want >=2/5/1", meta, spans, instants)
	}
}

// TestWriteChromeMultiNode: two node tracers merge into one trace with
// distinct process lanes.
func TestWriteChromeMultiNode(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChrome(&b, fillTracer("node1"), fillTracer("node0"), nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.PID], _ = e.Args["name"].(string)
		}
	}
	if len(procs) != 2 || procs[1] != "node0" || procs[2] != "node1" {
		t.Fatalf("process lanes = %v, want sorted node0/node1", procs)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents must be an array, not null")
	}
}

// TestTrackHandle: a cached handle records like the name-keyed API,
// shares sampling state with it, stays valid across Close, and the
// nil handle (from a nil tracer) is a no-op.
func TestTrackHandle(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, SampleEvery: 1})
	h := tr.Track("sess/s1")
	h.Span(StageQueue, "queue", 0, 10, 1)
	h.Instant(StageAgg, "dsfa-drop", 5, 2)
	h.SpansFunc(StageFrame, "frame", 2, func(i int) (float64, float64, int64) {
		return float64(i), 1, 1
	})
	tr.Span("sess/s1", StageQueue, "queue", 10, 30, 1)
	if got := len(tr.Events()); got != 5 {
		t.Fatalf("events = %d, want 5 (handle and name-keyed API must share the ring)", got)
	}
	if got := len(tr.Tracks()); got != 1 {
		t.Fatalf("tracks = %d, want 1", got)
	}
	tr.Close()
	if got := len(tr.Events()); got != 0 {
		t.Fatalf("events after Close = %d, want 0", got)
	}
	// The handle still points at the (now empty) ring.
	h.Span(StageQueue, "queue", 0, 4, 1)
	if got := len(tr.Events()); got != 1 {
		t.Fatalf("events after post-Close record = %d, want 1", got)
	}
	if h := tr.Hists()[StageQueue]; h.Count != 3 {
		t.Fatalf("queue hist count = %d, want 3 (histograms survive Close)", h.Count)
	}

	var nilTracer *Tracer
	nh := nilTracer.Track("x")
	nh.Span(StageQueue, "queue", 0, 1, 1) // must not panic
	nh.Instant(StageCtl, "mark", 0, 0)
	nh.SpansFunc(StageFrame, "frame", 1, func(int) (float64, float64, int64) { return 0, 0, 0 })
}

// TestTrackHandleSampling: sampling state lives in the ring, so a
// handle and the name-keyed API thin one shared sequence.
func TestTrackHandleSampling(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, SampleEvery: 4})
	h := tr.Track("sess/s1")
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			h.Span(StageFrame, "frame", float64(i), float64(i)+1, 1)
		} else {
			tr.Span("sess/s1", StageFrame, "frame", float64(i), float64(i)+1, 1)
		}
	}
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("sampled events = %d, want 2 (8 spans, 1-in-4)", got)
	}
	if hs := tr.Hists()[StageFrame]; hs.Count != 8 {
		t.Fatalf("frame hist count = %d, want 8", hs.Count)
	}
}
