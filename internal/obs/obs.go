// Package obs is the frame-lifecycle tracing layer: it follows every
// frame through ingest, queue wait, DSFA aggregation, scheduler
// batch-coalesce wait, per-device execution, unified-memory transfer
// and completion as structured spans with session/node/batch identity.
//
// Spans land in bounded per-track ring buffers (value storage, so the
// steady state allocates nothing) and fold into per-stage latency
// histograms; the whole trace exports as Chrome/Perfetto trace-event
// JSON (WriteChrome). Every recorded timestamp is virtual — stream or
// engine microseconds, never the wall clock — so a run under the
// scenario harness's virtual clock produces a byte-identical trace per
// (scenario, seed): the trace is a replayable test artifact, not just
// a debugging aid.
package obs

import (
	"sort"
	"sync"
)

// Stage identifies where in the frame lifecycle a span was measured.
type Stage uint8

// The lifecycle stages, in pipeline order. StageCtl tags control-plane
// instants (retune/remap/failover annotations) that mark decisions
// rather than measure a latency; it never feeds a histogram.
const (
	// StageIngest covers E2SF conversion of one event chunk.
	StageIngest Stage = iota
	// StageQueue is a frame's wait in the bounded ingest queue.
	StageQueue
	// StageAgg is raw-frame residency inside a DSFA bucket.
	StageAgg
	// StageBatch is the run-queue plus micro-batch coalesce wait
	// between invocation readiness and engine start.
	StageBatch
	// StageExec is one layer's execution on a device.
	StageExec
	// StageComms is a unified-memory bus transfer.
	StageComms
	// StageFrame is the end-to-end per-raw-frame span (ready to
	// completion) — the latency the serving SLO is written against.
	StageFrame
	// StageCtl tags control/fleet instants (no histogram).
	StageCtl

	// NumStages sizes per-stage arrays.
	NumStages = int(StageCtl) + 1
)

var stageNames = [NumStages]string{
	"ingest", "queue", "agg", "batch", "exec", "comms", "frame", "ctl",
}

// String returns the stage's exposition name (the `stage` label value
// in /metrics and the `cat` field of the Chrome export).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Event is one recorded span or instant. All times are virtual
// microseconds on the shared engine timeline.
type Event struct {
	// Track names the horizontal lane the event renders on: a session
	// ("sess/s3"), a device ("dev/GPU"), the UM bus ("um"), the
	// scheduler ("sched"), the control plane ("ctl") or the fleet
	// router ("fleet").
	Track string
	// Stage classifies the event for histograms and the trace `cat`.
	Stage Stage
	// Name is the human-readable event label (e.g. "frame", or the
	// batch tag "s1+s2/conv1" on exec spans).
	Name string
	// StartUS/DurUS locate the span; an Instant has DurUS 0 and
	// renders as a vertical mark.
	StartUS float64
	DurUS   float64
	Instant bool
	// Count carries multiplicity: raw frames in an agg span, batch
	// members in a dispatch instant, frames shed by a drop instant.
	Count int64
}

// Config tunes a Tracer.
type Config struct {
	// Enabled turns tracing on; NewTracer returns a nil (no-op) Tracer
	// when false, so the hot path pays one nil check when off.
	Enabled bool
	// Node names the process lane in multi-node exports (the Chrome
	// pid); empty means a standalone server.
	Node string
	// RingCap bounds each track's event ring (default 4096); the
	// oldest events are overwritten, counted in Dropped.
	RingCap int
	// SampleEvery thins per-frame span recording: only every Nth
	// queue/frame span per track reaches the ring (default
	// DefaultSampleEvery; set 1 to retain every span). Histograms
	// always observe every span, so sampling bounds trace size and
	// recording cost without biasing the latency aggregates — the
	// /metrics stage histograms and scenario stage-latency contracts
	// are exact regardless of the sampling rate. Sampling is a
	// deterministic per-(track, stage) counter, so sampled traces stay
	// byte-identical per (scenario, seed).
	SampleEvery int
	// MaxTracks bounds how many distinct track rings are kept (default
	// 64); events on later tracks are dropped, counted in Dropped.
	MaxTracks int
}

// DefaultRingCap bounds one track's ring when Config.RingCap is 0.
const DefaultRingCap = 4096

// DefaultMaxTracks bounds distinct tracks when Config.MaxTracks is 0.
const DefaultMaxTracks = 64

// DefaultSampleEvery is the per-frame (queue/frame) span retention
// rate when Config.SampleEvery is 0: keep 1-in-4. Per-frame spans are
// the bulk of trace volume on a busy server, and thinning their ring
// retention is what holds steady-state tracing overhead inside the
// <5% budget (TestObsBenchJSON) while histograms still observe every
// span. Full-fidelity traces are an explicit opt-in (SampleEvery: 1).
const DefaultSampleEvery = 4

// blockEvents sizes one ring block (~20 KB of Event storage): big
// enough that block management is rare, small enough that a sparse
// track wastes little.
const blockEvents = 256

// blockFree recycles full-size ring blocks across tracers. Recording
// into recycled storage costs a fraction of recording into fresh heap
// (no zeroing, and the pages are resident and cache-warm), which is
// what keeps short-lived traced servers — every scenario run, every
// bench round — inside the tracing overhead budget. A plain bounded
// free list, not a sync.Pool: the blocks must survive GC cycles to
// stay warm.
var blockFree struct {
	mu     sync.Mutex
	blocks [][]Event
}

// blockFreeMax bounds the free list (64 blocks ~= 1.3 MB).
const blockFreeMax = 64

func getBlock(n int) []Event {
	if n == blockEvents {
		blockFree.mu.Lock()
		if l := len(blockFree.blocks); l > 0 {
			b := blockFree.blocks[l-1]
			blockFree.blocks = blockFree.blocks[:l-1]
			blockFree.mu.Unlock()
			return b
		}
		blockFree.mu.Unlock()
	}
	return make([]Event, n)
}

func putBlocks(blocks [][]Event) {
	blockFree.mu.Lock()
	for _, b := range blocks {
		if len(b) == blockEvents && len(blockFree.blocks) < blockFreeMax {
			// Drop the event payloads so pooled blocks don't pin the
			// recorded strings past Tracer.Close.
			for i := range b {
				b[i] = Event{}
			}
			blockFree.blocks = append(blockFree.blocks, b)
		}
	}
	blockFree.mu.Unlock()
}

// ring is one track's bounded event buffer: value storage in chained
// fixed-size blocks, growing block-by-block up to cap (a short-lived
// track never allocates the full capacity, and growth never copies),
// then overwriting oldest. Blocks come from the package free list.
type ring struct {
	blocks [][]Event
	cap    int // bound on stored events
	len    int // events stored, <= cap
	next   int // oldest entry once len == cap
	// sample counts observed queue/frame spans for SampleEvery
	// thinning, indexed by stage — per-ring state so the hot paths
	// never touch a map.
	sample [NumStages]uint64
}

// at returns the entry at storage index i < r.len. All blocks are
// blockEvents long except possibly the last (when cap isn't a
// multiple), so the index math stays a shift and a mask.
func (r *ring) at(i int) *Event {
	return &r.blocks[i/blockEvents][i%blockEvents]
}

// slot returns the next entry to fill, growing up to cap then
// overwriting oldest (dropped true).
func (r *ring) slot() (e *Event, dropped bool) {
	if r.len < r.cap {
		if r.len/blockEvents == len(r.blocks) {
			n := r.cap - len(r.blocks)*blockEvents
			if n > blockEvents {
				n = blockEvents
			}
			r.blocks = append(r.blocks, getBlock(n))
		}
		e = r.at(r.len)
		r.len++
		return e, false
	}
	e = r.at(r.next)
	r.next++
	if r.next == r.len {
		r.next = 0
	}
	return e, true
}

func (r *ring) push(e Event) (dropped bool) {
	s, dropped := r.slot()
	*s = e
	return dropped
}

// events appends the ring's contents in recording order.
func (r *ring) events(out []Event) []Event {
	for i := 0; i < r.len; i++ {
		idx := i
		if r.len == r.cap {
			idx = r.next + i
			if idx >= r.len {
				idx -= r.len
			}
		}
		out = append(out, *r.at(idx))
	}
	return out
}

// Tracer records frame-lifecycle events. All methods are safe on a nil
// receiver (no-ops), so instrumented code guards with a single nil
// check and a disabled server pays nothing else.
type Tracer struct {
	cfg Config

	mu     sync.Mutex
	rings  map[string]*ring
	order  []string // track creation order
	hists  [NumStages]Histogram
	events uint64 // recorded (ring-accepted) events
	drops  uint64 // overwritten or track-capped events
}

// NewTracer returns a tracer for cfg, or nil when cfg.Enabled is
// false — the nil Tracer is the disabled tracer.
func NewTracer(cfg Config) *Tracer {
	if !cfg.Enabled {
		return nil
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultRingCap
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.MaxTracks <= 0 {
		cfg.MaxTracks = DefaultMaxTracks
	}
	return &Tracer{
		cfg:   cfg,
		rings: map[string]*ring{},
	}
}

// ringLocked resolves or creates track's ring under t.mu; nil once
// MaxTracks is reached (the track's events then only feed histograms
// and the drop counter).
func (t *Tracer) ringLocked(track string) *ring {
	r, ok := t.rings[track]
	if !ok {
		if len(t.rings) >= t.cfg.MaxTracks {
			return nil
		}
		r = &ring{cap: t.cfg.RingCap}
		t.rings[track] = r
		t.order = append(t.order, track)
	}
	return r
}

// spanLocked records one span/instant into r under t.mu — the shared
// core of every recording path. r nil (track cap) still observes the
// histogram and counts the drop.
func (t *Tracer) spanLocked(r *ring, track string, st Stage, name string, startUS, durUS float64, instant bool, count int64) {
	if durUS < 0 {
		durUS = 0
	}
	if !instant && st != StageCtl {
		t.hists[st].Observe(durUS)
	}
	if r == nil {
		t.drops++
		return
	}
	if !instant && t.cfg.SampleEvery > 1 && (st == StageQueue || st == StageFrame) {
		n := r.sample[st]
		r.sample[st] = n + 1
		if n%uint64(t.cfg.SampleEvery) != 0 {
			return
		}
	}
	e, dropped := r.slot()
	e.Track, e.Stage, e.Name = track, st, name
	e.StartUS, e.DurUS, e.Instant = startUS, durUS, instant
	e.Count = count
	if dropped {
		t.drops++
	}
	t.events++
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Node returns the configured node name ("" standalone).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.cfg.Node
}

// Span records one completed stage span. Negative durations (a frame
// that never waited) clamp to zero so histograms stay well-formed.
func (t *Tracer) Span(track string, st Stage, name string, startUS, endUS float64, count int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spanLocked(t.ringLocked(track), track, st, name, startUS, endUS-startUS, false, count)
	t.mu.Unlock()
}

// Instant records one zero-duration mark (a drop, a retune, a
// failover annotation).
func (t *Tracer) Instant(track string, st Stage, name string, tsUS float64, count int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spanLocked(t.ringLocked(track), track, st, name, tsUS, 0, true, count)
	t.mu.Unlock()
}

// Track returns a cached recording endpoint for one track: hot paths
// resolve the track name once (session create, server construction)
// and then record without the per-call map lookup the name-keyed
// methods pay. The handle stays valid across Close (the ring object
// persists; only its storage is released). A nil Tracer returns a nil
// Track, which is the no-op handle.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	return &Track{t: t, name: name}
}

// Track is a cached handle to one track's ring. All methods are safe
// on a nil receiver (no-ops). The ring resolves lazily on first
// record, so merely holding a handle never materializes an empty
// track in exports.
type Track struct {
	t        *Tracer
	name     string
	r        *ring
	resolved bool
}

// ringLocked resolves the handle's ring under t.mu, caching the
// result (nil once the tracer's track cap was hit — permanent, since
// tracks are never removed).
func (tk *Track) ringLocked() *ring {
	if !tk.resolved {
		tk.r = tk.t.ringLocked(tk.name)
		tk.resolved = true
	}
	return tk.r
}

// Span records one completed stage span on the track.
func (tk *Track) Span(st Stage, name string, startUS, endUS float64, count int64) {
	if tk == nil {
		return
	}
	tk.t.mu.Lock()
	tk.t.spanLocked(tk.ringLocked(), tk.name, st, name, startUS, endUS-startUS, false, count)
	tk.t.mu.Unlock()
}

// Instant records one zero-duration mark on the track.
func (tk *Track) Instant(st Stage, name string, tsUS float64, count int64) {
	if tk == nil {
		return
	}
	tk.t.mu.Lock()
	tk.t.spanLocked(tk.ringLocked(), tk.name, st, name, tsUS, 0, true, count)
	tk.t.mu.Unlock()
}

// SpansFunc records n same-(stage, name) spans on the track under one
// lock acquisition — the bulk API for the per-frame hot paths. See
// Tracer.SpansFunc.
func (tk *Track) SpansFunc(st Stage, name string, n int, at func(i int) (startUS, durUS float64, count int64)) {
	if tk == nil || n == 0 {
		return
	}
	tk.t.mu.Lock()
	tk.t.spansLocked(tk.ringLocked(), tk.name, st, name, n, at)
	tk.t.mu.Unlock()
}

// SpansFunc records n same-(track, stage, name) spans under one lock
// acquisition, writing each span directly into the track's ring — the
// bulk API for the per-frame hot paths (queue waits, frame
// latencies), where building an intermediate Event slice doubles the
// memory traffic. at returns the i'th span; it must be pure
// arithmetic (the tracer lock is held across the calls). Histograms
// observe every span; ring entries honor SampleEvery, as in Batch.
func (t *Tracer) SpansFunc(track string, st Stage, name string, n int, at func(i int) (startUS, durUS float64, count int64)) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.spansLocked(t.ringLocked(track), track, st, name, n, at)
	t.mu.Unlock()
}

// spansLocked is SpansFunc's locked core, shared with Track handles.
func (t *Tracer) spansLocked(r *ring, track string, st Stage, name string, n int, at func(i int) (startUS, durUS float64, count int64)) {
	if r == nil {
		for i := 0; i < n; i++ {
			_, dur, _ := at(i)
			if dur < 0 {
				dur = 0
			}
			if st != StageCtl {
				t.hists[st].Observe(dur)
			}
		}
		t.drops += uint64(n)
		return
	}
	h := &t.hists[st]
	observe := st != StageCtl
	sampled := t.cfg.SampleEvery > 1 && (st == StageQueue || st == StageFrame)
	sampleN := r.sample[st]
	for i := 0; i < n; i++ {
		start, dur, count := at(i)
		if dur < 0 {
			dur = 0
		}
		if observe {
			h.Observe(dur)
		}
		if sampled {
			keep := sampleN%uint64(t.cfg.SampleEvery) == 0
			sampleN++
			if !keep {
				continue
			}
		}
		e, dropped := r.slot()
		e.Track, e.Stage, e.Name = track, st, name
		e.StartUS, e.DurUS, e.Instant = start, dur, false
		e.Count = count
		if dropped {
			t.drops++
		}
		t.events++
	}
	if sampled {
		r.sample[st] = sampleN
	}
}

// Batch records a slice of events under one lock acquisition — the
// hot-path API: execute/dispatch/complete passes buffer their events
// locally and flush once. The slice is copied; callers may reuse it.
func (t *Tracer) Batch(evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Hot-path passes emit long runs of events on one track (all of a
	// session's queue spans, all of a device's exec spans), so caching
	// the last ring avoids a map lookup per event.
	var lastTrack string
	var lastRing *ring
	for _, e := range evs {
		r := lastRing
		if r == nil || e.Track != lastTrack {
			r = t.ringLocked(e.Track)
			lastTrack, lastRing = e.Track, r
		}
		t.spanLocked(r, e.Track, e.Stage, e.Name, e.StartUS, e.DurUS, e.Instant, e.Count)
	}
}

// Events returns a snapshot of every retained event, ordered by
// (StartUS, Track, Name) so equal runs snapshot identically.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Event
	for _, track := range t.order {
		out = t.rings[track].events(out)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Tracks returns the track names in creation order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Hists snapshots the per-stage latency histograms (one entry per
// lifecycle stage; StageCtl stays empty).
func (t *Tracer) Hists() []HistSnapshot {
	out := make([]HistSnapshot, NumStages)
	for i := range out {
		out[i].Stage = Stage(i).String()
		out[i].Counts = make([]uint64, len(BucketBoundsUS)+1)
	}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.hists {
		snap := t.hists[i].Snapshot()
		snap.Stage = Stage(i).String()
		out[i] = snap
	}
	return out
}

// Recorded returns how many events reached a ring; Dropped counts
// events lost to ring overwrites or the track cap.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Dropped counts events lost to ring overwrites or the track cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Close releases the tracer's ring storage back to the package block
// pool and empties every ring; histograms, counters and the track set
// survive (so cached Track handles stay valid). Call it when the
// traced server shuts down, after any final WriteChrome — snapshots
// taken earlier (Events copies values out) stay valid, but events
// recorded and not yet exported are gone. Safe on nil; later
// recording re-grows fresh storage.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, track := range t.order {
		r := t.rings[track]
		putBlocks(r.blocks)
		r.blocks, r.len, r.next = nil, 0, 0
		r.sample = [NumStages]uint64{}
	}
}
