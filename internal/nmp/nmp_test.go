package nmp

import (
	"testing"

	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

// workload profiles a set of networks on Xavier with sparse execution.
func workload(t testing.TB, names ...string) (*perf.ProfileDB, *perf.Model) {
	t.Helper()
	platform := hw.Xavier()
	m := perf.NewModel(platform)
	nets := make([]*nn.Network, len(names))
	dens := make([]float64, len(names))
	for i, n := range names {
		nets[i] = nn.MustByName(n)
		dens[i] = 0.05
	}
	db, err := perf.BuildProfileDB(m, nets, true, dens)
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

func quickCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Population = 10
	cfg.Generations = 12
	cfg.Seed = seed
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Population: 1, Generations: 1, SampleFrac: 0.5},
		{Population: 4, Generations: 0, SampleFrac: 0.5},
		{Population: 4, Generations: 1, SampleFrac: 0},
		{Population: 4, Generations: 1, SampleFrac: 1.5},
		{Population: 4, Generations: 1, SampleFrac: 0.5, MutationLayers: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBaselinePolicies(t *testing.T) {
	db, _ := workload(t, nn.DOTIE, nn.HidalgoDepth, nn.EVFlowNet)
	nets := db.Networks()
	platform := db.Platform()

	gpuAsg, err := AllGPU(nets, platform, nn.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpuAsg.Validate(nets, platform); err != nil {
		t.Fatal(err)
	}
	for t2 := range nets {
		for _, d := range gpuAsg.Device[t2] {
			if d != platform.GPUDevice().ID {
				t.Fatal("AllGPU strayed off the GPU")
			}
		}
	}
	if _, err := AllGPU(nets, platform, nn.Precision(9)); err == nil {
		t.Fatal("bad precision accepted")
	}

	rrn, err := RRNetwork(nets, platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrn.Validate(nets, platform); err != nil {
		t.Fatal(err)
	}
	// Each network is on exactly one device; devices differ across the
	// first three tasks (GPU, DLA0, DLA1 cycle).
	devOf := func(t2 int) int {
		d := rrn.Device[t2][0]
		for _, x := range rrn.Device[t2] {
			if x != d {
				t.Fatalf("RR-Network split task %d across devices", t2)
			}
		}
		return d
	}
	if devOf(0) == devOf(1) || devOf(1) == devOf(2) || devOf(0) == devOf(2) {
		t.Fatal("RR-Network did not cycle devices")
	}

	rrl, err := RRLayer(nets, platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrl.Validate(nets, platform); err != nil {
		t.Fatal(err)
	}
	// Layers cycle: within Hidalgo (15 layers), all three accelerators
	// appear.
	seen := map[int]bool{}
	for _, d := range rrl.Device[1] {
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Fatalf("RR-Layer used %d devices in task 1", len(seen))
	}
}

func TestEvaluateRespectsBudgets(t *testing.T) {
	db, m := workload(t, nn.SpikeFlowNet)
	mp, err := NewMapper(db, m, quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	nets := db.Networks()
	platform := db.Platform()

	// Full precision everywhere: zero accuracy delta, feasible.
	fp, _ := AllGPU(nets, platform, nn.FP32)
	r1, err := mp.EvaluatePolicy(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Feasible || r1.Deltas[0] != 0 {
		t.Fatalf("FP32 policy should be trivially feasible: %+v", r1)
	}

	// All-INT8 overshoots the Table 2 budget by construction: the
	// candidate must be marked infeasible and its fitness inflated.
	int8asg, _ := AllGPU(nets, platform, nn.INT8)
	r2, err := mp.EvaluatePolicy(int8asg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Feasible {
		t.Fatal("all-INT8 should violate the accuracy budget")
	}
	// INT8 is faster in raw latency...
	if r2.LatencyUS >= r1.LatencyUS {
		t.Fatal("INT8 should be faster than FP32")
	}
	ev1, _ := mp.Evaluate(fp)
	ev2, _ := mp.Evaluate(int8asg)
	// ...but the fitness penalty must make it lose.
	if ev2.fitness <= ev1.fitness {
		t.Fatalf("penalty too weak: int8 fitness %f vs fp32 %f", ev2.fitness, ev1.fitness)
	}
}

func TestSearchBeatsBaselinesAndStaysFeasible(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.AdaptiveSpikeNet)
	mp, err := NewMapper(db, m, quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	nets := db.Networks()
	platform := db.Platform()

	res, err := mp.Search()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("search result violates accuracy budgets: %v vs %v", res.Deltas, mp.Budgets())
	}
	if len(res.FitnessHistory) != mp.cfg.Generations {
		t.Fatalf("history length %d", len(res.FitnessHistory))
	}
	// Convergence: best fitness never worsens across generations.
	for i := 1; i < len(res.FitnessHistory); i++ {
		if res.FitnessHistory[i] > res.FitnessHistory[i-1]+1e-9 {
			t.Fatalf("fitness regressed at generation %d", i)
		}
	}

	rrn, _ := RRNetwork(nets, platform)
	rrnRes, err := mp.EvaluatePolicy(rrn)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyUS >= rrnRes.LatencyUS {
		t.Fatalf("search (%f us) should beat RR-Network (%f us)", res.LatencyUS, rrnRes.LatencyUS)
	}
	if res.CacheHits == 0 {
		t.Fatal("fitness cache never hit — crossover should revisit candidates")
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.EVFlowNet)
	run := func(seed int64) float64 {
		mp, err := NewMapper(db, m, quickCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := mp.Search()
		if err != nil {
			t.Fatal(err)
		}
		return res.LatencyUS
	}
	if run(3) != run(3) {
		t.Fatal("search not deterministic under a fixed seed")
	}
}

func TestRandomSearchLosesToEvolutionary(t *testing.T) {
	// The paper's Fig. 10b: with the same evaluation budget, random
	// search lands on a worse configuration (1.42x there).
	db, m := workload(t, nn.FusionFlowNet, nn.HALSIE)
	cfg := quickCfg(11)
	mp, err := NewMapper(db, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evo, err := mp.Search()
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := mp.RandomSearch()
	if err != nil {
		t.Fatal(err)
	}
	if evo.LatencyUS >= rnd.LatencyUS {
		t.Fatalf("evolutionary (%f) should beat random (%f)", evo.LatencyUS, rnd.LatencyUS)
	}
	if rnd.Evaluations != cfg.Population*cfg.Generations {
		t.Fatalf("random search evaluations=%d", rnd.Evaluations)
	}
}

func TestNMPFPVariant(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.HidalgoDepth)
	cfg := quickCfg(5)
	cfg.FullPrecisionOnly = true
	mp, err := NewMapper(db, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mp.Search()
	if err != nil {
		t.Fatal(err)
	}
	// FP-only candidates never use INT8 and are always feasible (no
	// accuracy loss from FP16 weight storage beyond its tiny penalty,
	// which stays within every budget).
	for t2 := range res.Assignment.Prec {
		for _, p := range res.Assignment.Prec[t2] {
			if p == nn.INT8 {
				t.Fatal("NMP-FP candidate used INT8")
			}
		}
	}
	// The unconstrained search should be at least as fast.
	cfg2 := quickCfg(5)
	mp2, _ := NewMapper(db, m, cfg2)
	full, err := mp2.Search()
	if err != nil {
		t.Fatal(err)
	}
	if full.LatencyUS > res.LatencyUS*1.001 {
		t.Fatalf("mixed-precision search (%f) slower than FP-only (%f)", full.LatencyUS, res.LatencyUS)
	}
}

func TestCacheAblation(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.SpikeFlowNet)
	withCache := quickCfg(9)
	noCache := quickCfg(9)
	noCache.DisableCache = true
	mpC, _ := NewMapper(db, m, withCache)
	mpN, _ := NewMapper(db, m, noCache)
	rc, err := mpC.Search()
	if err != nil {
		t.Fatal(err)
	}
	rn, err := mpN.Search()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Evaluations >= rn.Evaluations {
		t.Fatalf("cache should cut evaluations: %d vs %d", rc.Evaluations, rn.Evaluations)
	}
	if rn.CacheHits != 0 {
		t.Fatal("disabled cache reported hits")
	}
}
