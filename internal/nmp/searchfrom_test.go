package nmp

import (
	"reflect"
	"testing"

	"evedge/internal/nn"
)

// TestSearchFromDeterministicPerSeed runs the warm-started search
// twice from the same assignment and seed and expects identical
// results; a different seed is allowed to (and here does) explore
// differently.
func TestSearchFromDeterministicPerSeed(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.SpikeFlowNet)
	mp, err := NewMapper(db, m, quickCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := RRNetwork(db.Networks(), db.Platform())
	if err != nil {
		t.Fatal(err)
	}
	a, err := mp.SearchFrom(cur, 6)
	if err != nil {
		t.Fatalf("SearchFrom: %v", err)
	}
	b, err := mp.SearchFrom(cur, 6)
	if err != nil {
		t.Fatalf("SearchFrom repeat: %v", err)
	}
	if !reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Fatal("SearchFrom is not deterministic for a fixed (seed, current) pair")
	}
	if a.LatencyUS != b.LatencyUS || a.Evaluations != b.Evaluations {
		t.Fatalf("SearchFrom metrics differ across identical runs: %v vs %v us", a.LatencyUS, b.LatencyUS)
	}
}

// TestSearchFromFeasibleAndNoWorseThanSeed checks the two contracts
// the online remap relies on: the returned assignment always validates
// and is accuracy-feasible, and when the seed itself is feasible the
// warm-started result never regresses its latency (the seed is in the
// initial population).
func TestSearchFromFeasibleAndNoWorseThanSeed(t *testing.T) {
	db, m := workload(t, nn.DOTIE, nn.SpikeFlowNet)
	mp, err := NewMapper(db, m, quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := AllGPU(db.Networks(), db.Platform(), nn.FP16)
	if err != nil {
		t.Fatal(err)
	}
	seedEv, err := mp.Evaluate(cur)
	if err != nil {
		t.Fatal(err)
	}
	if !seedEv.feasible {
		t.Fatal("test premise broken: all-GPU/FP16 seed should be feasible")
	}
	res, err := mp.SearchFrom(cur, 8)
	if err != nil {
		t.Fatalf("SearchFrom: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("SearchFrom returned an infeasible assignment: deltas %v", res.Deltas)
	}
	if err := res.Assignment.Validate(db.Networks(), db.Platform()); err != nil {
		t.Fatalf("SearchFrom assignment does not validate: %v", err)
	}
	if res.LatencyUS > seedEv.latency {
		t.Fatalf("warm-started result (%.1f us) is worse than its feasible seed (%.1f us)",
			res.LatencyUS, seedEv.latency)
	}
}

// TestSearchFromErrors covers the argument checks and the
// budget-impossible path.
func TestSearchFromErrors(t *testing.T) {
	db, m := workload(t, nn.DOTIE)
	mp, err := NewMapper(db, m, quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.SearchFrom(nil, 4); err == nil {
		t.Fatal("nil current accepted")
	}
	cur, err := AllGPU(db.Networks(), db.Platform(), nn.FP16)
	if err != nil {
		t.Fatal(err)
	}
	// A zero/negative budget still runs one generation.
	res, err := mp.SearchFrom(cur, 0)
	if err != nil {
		t.Fatalf("SearchFrom with zero budget: %v", err)
	}
	if len(res.FitnessHistory) != 1 {
		t.Fatalf("zero budget ran %d generations, want 1", len(res.FitnessHistory))
	}
	// A mis-shapen assignment is rejected.
	bad := cur.Clone()
	bad.Device = bad.Device[:0]
	if _, err := mp.SearchFrom(bad, 4); err == nil {
		t.Fatal("mis-shapen current accepted")
	}
}
