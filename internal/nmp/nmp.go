// Package nmp implements the Network Mapper (paper Sec. 4.3): an
// offline evolutionary search that assigns every layer of one or more
// concurrently executing networks to a processing element *and* a
// precision, minimizing the maximum task latency subject to per-task
// accuracy-degradation bounds (Eq. 2):
//
//	min max_i Latency(T_i)  s.t.  ΔA_1..ΔA_n <= ΔA
//
// Candidate fitness uses the Eq. 3 list scheduler over profiled layer
// times plus the quantization accuracy model evaluated on a sampled
// validation subset; fitness values are cached per candidate, and new
// generations form by neighbor-pair crossover and random layer
// mutation, exactly following the paper's search description.
//
// The package also provides the comparison policies of the evaluation:
// the all-GPU baseline, coarse round-robin over networks (RR-Network),
// fine round-robin over layers (RR-Layer), the full-precision-only
// search variant (Ev-Edge-NMP-FP), and generation-matched random
// search (Fig. 10b).
package nmp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/quant"
	"evedge/internal/taskgraph"
)

// Objective selects what the search minimizes.
type Objective int

// Objectives ("this procedure can be repeated to optimize for other
// objectives such as energy as well").
const (
	MinLatency Objective = iota
	MinEnergy
)

// Config tunes the evolutionary search.
type Config struct {
	Population  int
	Generations int
	// MutationLayers is the number of layers per task whose mapping is
	// randomized in each child ("a specified number of layers in each
	// task is replaced with a random mapping resource and precision").
	MutationLayers int
	// SampleFrac is the validation-subset fraction used for accuracy
	// evaluation (the paper's first search optimization).
	SampleFrac float64
	Seed       int64
	Objective  Objective
	// FullPrecisionOnly excludes quantized (INT8) execution — the
	// Ev-Edge-NMP-FP variant, which "exclusively maps to full precision
	// cores to prevent any accuracy degradation". FP32 and FP16 both
	// count as full precision on Jetson-class accelerators.
	FullPrecisionOnly bool
	// DisableCache turns off fitness caching (ablation).
	DisableCache bool
}

// DefaultConfig returns the search settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Population:     24,
		Generations:    40,
		MutationLayers: 2,
		SampleFrac:     0.25,
		Seed:           1,
		Objective:      MinLatency,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Population < 2 {
		return fmt.Errorf("nmp: population must be >= 2, got %d", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("nmp: generations must be >= 1, got %d", c.Generations)
	}
	if c.MutationLayers < 0 {
		return fmt.Errorf("nmp: mutation layers must be >= 0, got %d", c.MutationLayers)
	}
	if c.SampleFrac <= 0 || c.SampleFrac > 1 {
		return fmt.Errorf("nmp: sample fraction %f outside (0,1]", c.SampleFrac)
	}
	return nil
}

// Result is the outcome of a search or baseline policy.
type Result struct {
	Assignment *taskgraph.Assignment
	Schedule   *taskgraph.Schedule
	// LatencyUS is max task latency (the Eq. 2 objective).
	LatencyUS float64
	EnergyJ   float64
	// Deltas holds each task's achieved accuracy degradation.
	Deltas []float64
	// Feasible reports whether all deltas are within budget.
	Feasible bool
	// FitnessHistory records the best fitness per generation (Fig 10a).
	FitnessHistory []float64
	Evaluations    int
	CacheHits      int
}

// Mapper runs searches over one profiled workload.
type Mapper struct {
	db     *perf.ProfileDB
	model  *perf.Model
	acc    []*quant.Model
	budget []float64
	cfg    Config
	seeds  []*taskgraph.Assignment
}

// AddSeed injects an extra candidate into the initial population —
// e.g. warm-starting the full search with the NMP-FP result so the
// superset search never converges below it.
func (mp *Mapper) AddSeed(asg *taskgraph.Assignment) {
	mp.seeds = append(mp.seeds, asg.Clone())
}

// NewMapper builds a mapper. Accuracy budgets default to each
// network's Table 2 delta.
func NewMapper(db *perf.ProfileDB, m *perf.Model, cfg Config) (*Mapper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nets := db.Networks()
	mp := &Mapper{db: db, model: m, cfg: cfg}
	for _, net := range nets {
		mp.acc = append(mp.acc, quant.NewModel(net))
		mp.budget = append(mp.budget, quant.Table2Delta(net.Name))
	}
	return mp, nil
}

// Budgets returns the per-task accuracy-degradation bounds.
func (mp *Mapper) Budgets() []float64 { return append([]float64(nil), mp.budget...) }

// SetBudgets overrides the per-task accuracy bounds (the pipeline
// shrinks them by the accuracy already spent on DSFA merging).
func (mp *Mapper) SetBudgets(b []float64) error {
	if len(b) != len(mp.budget) {
		return fmt.Errorf("nmp: %d budgets for %d tasks", len(b), len(mp.budget))
	}
	for i, v := range b {
		if v <= 0 {
			return fmt.Errorf("nmp: budget %d must be positive, got %f", i, v)
		}
	}
	mp.budget = append([]float64(nil), b...)
	return nil
}

// evaluation is a cached fitness record.
type evaluation struct {
	fitness  float64
	latency  float64
	energy   float64
	deltas   []float64
	feasible bool
	sched    *taskgraph.Schedule
}

// Evaluate computes a candidate's fitness: the objective value scaled
// up steeply when any task violates its accuracy budget.
func (mp *Mapper) Evaluate(asg *taskgraph.Assignment) (*evaluation, error) {
	g, err := taskgraph.Build(mp.db, mp.model, asg)
	if err != nil {
		return nil, err
	}
	sched, err := g.Run(mp.db.Platform())
	if err != nil {
		return nil, err
	}
	nets := mp.db.Networks()
	ev := &evaluation{
		latency:  sched.MakespanUS,
		energy:   sched.EnergyJ,
		feasible: true,
		sched:    sched,
	}
	// Deterministic per-candidate sampling seed keeps the cache
	// consistent ("fitness scores are cached for each new candidate and
	// reused if the same candidate emerges from different parents").
	h := hashAssignment(asg)
	for t := range nets {
		d, err := mp.acc[t].DeltaSampled(asg.Prec[t], mp.cfg.SampleFrac, mp.cfg.Seed^int64(h)+int64(t))
		if err != nil {
			return nil, err
		}
		ev.deltas = append(ev.deltas, d)
		if d > mp.budget[t] {
			ev.feasible = false
		}
	}
	obj := ev.latency
	if mp.cfg.Objective == MinEnergy {
		obj = ev.energy * 1e6 // joules -> comparable magnitude
	}
	penalty := 0.0
	for t, d := range ev.deltas {
		if d > mp.budget[t] {
			penalty += (d - mp.budget[t]) / mp.budget[t]
		}
	}
	ev.fitness = obj * (1 + 10*penalty)
	return ev, nil
}

// Predict prices an assignment without searching: the Eq. 3 makespan
// and whether every task stays inside its accuracy budget. The online
// remap planner uses it to compare a live assignment against a
// warm-started candidate.
func (mp *Mapper) Predict(asg *taskgraph.Assignment) (latencyUS float64, feasible bool, err error) {
	ev, err := mp.Evaluate(asg)
	if err != nil {
		return 0, false, err
	}
	return ev.latency, ev.feasible, nil
}

func hashAssignment(a *taskgraph.Assignment) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 2)
	for t := range a.Device {
		for l := range a.Device[t] {
			buf[0] = byte(a.Device[t][l])
			buf[1] = byte(a.Prec[t][l])
			h.Write(buf)
		}
	}
	return h.Sum64()
}

// randomCandidate draws a uniformly random feasible-by-construction
// assignment (device support respected; accuracy feasibility is the
// search's job).
func (mp *Mapper) randomCandidate(r *rand.Rand) *taskgraph.Assignment {
	nets := mp.db.Networks()
	platform := mp.db.Platform()
	asg := taskgraph.NewAssignment(nets)
	for t := range nets {
		for l := range nets[t].Layers {
			d := platform.Devices[r.Intn(len(platform.Devices))]
			asg.Device[t][l] = d.ID
			asg.Prec[t][l] = mp.randomPrecision(r, d.ID)
		}
	}
	return asg
}

func (mp *Mapper) randomPrecision(r *rand.Rand, devID int) nn.Precision {
	d := mp.db.Platform().Devices[devID]
	ps := d.Precisions()
	if mp.cfg.FullPrecisionOnly {
		full := ps[:0:0]
		for _, p := range ps {
			if p != nn.INT8 {
				full = append(full, p)
			}
		}
		if len(full) > 0 {
			ps = full
		}
	}
	return ps[r.Intn(len(ps))]
}

// mutate replaces cfg.MutationLayers random layers in each task with a
// random device and precision.
func (mp *Mapper) mutate(r *rand.Rand, asg *taskgraph.Assignment) {
	platform := mp.db.Platform()
	for t := range asg.Device {
		for k := 0; k < mp.cfg.MutationLayers; k++ {
			l := r.Intn(len(asg.Device[t]))
			d := platform.Devices[r.Intn(len(platform.Devices))]
			asg.Device[t][l] = d.ID
			asg.Prec[t][l] = mp.randomPrecision(r, d.ID)
		}
	}
}

// member pairs a candidate with its evaluation.
type member struct {
	asg *taskgraph.Assignment
	ev  *evaluation
}

// evolve runs the generational loop over an initial population and
// returns the best member overall plus the best feasible one (nil
// asg when no feasible candidate emerged). res accumulates evaluation
// and cache counters plus the fitness history.
func (mp *Mapper) evolve(r *rand.Rand, pop []*taskgraph.Assignment, generations int, res *Result) (best, bestFeasible member, err error) {
	cache := make(map[uint64]*evaluation)
	evalCached := func(asg *taskgraph.Assignment) (*evaluation, error) {
		if !mp.cfg.DisableCache {
			if ev, ok := cache[hashAssignment(asg)]; ok {
				res.CacheHits++
				return ev, nil
			}
		}
		ev, err := mp.Evaluate(asg)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		if !mp.cfg.DisableCache {
			cache[hashAssignment(asg)] = ev
		}
		return ev, nil
	}

	for gen := 0; gen < generations; gen++ {
		// Evaluate the whole generation; candidates inherited from the
		// previous generation (and duplicates emerging from different
		// parents) resolve through the fitness cache.
		members := make([]member, len(pop))
		for i, asg := range pop {
			ev, err := evalCached(asg)
			if err != nil {
				return best, bestFeasible, err
			}
			members[i] = member{asg, ev}
		}
		sort.SliceStable(members, func(i, j int) bool { return members[i].ev.fitness < members[j].ev.fitness })
		if best.asg == nil || members[0].ev.fitness < best.ev.fitness {
			best = member{members[0].asg.Clone(), members[0].ev}
		}
		for _, m := range members {
			if m.ev.feasible && (bestFeasible.asg == nil || m.ev.fitness < bestFeasible.ev.fitness) {
				bestFeasible = member{m.asg.Clone(), m.ev}
			}
		}
		res.FitnessHistory = append(res.FitnessHistory, best.ev.fitness)
		if gen == generations-1 {
			break
		}

		// Parents: fitter half. Children: for each neighboring parent
		// pair, clone one of the two with equal likelihood, then mutate.
		parents := members[:len(pop)/2]
		next := make([]*taskgraph.Assignment, 0, len(pop))
		for _, p := range parents {
			next = append(next, p.asg)
		}
		for len(next) < len(pop) {
			i := (len(next) - len(parents)) % len(parents)
			j := (i + 1) % len(parents)
			src := parents[i].asg
			if r.Intn(2) == 1 {
				src = parents[j].asg
			}
			child := src.Clone()
			mp.mutate(r, child)
			next = append(next, child)
		}
		pop = next
	}
	return best, bestFeasible, nil
}

// Search runs the evolutionary loop and returns the best feasible
// candidate found (or the best overall if none was feasible).
func (mp *Mapper) Search() (*Result, error) {
	r := rand.New(rand.NewSource(mp.cfg.Seed))
	res := &Result{}

	pop := make([]*taskgraph.Assignment, mp.cfg.Population)
	for i := range pop {
		pop[i] = mp.randomCandidate(r)
	}
	// Seed a few trivial mappings alongside the random candidates so
	// the search never converges below the obvious baselines (the
	// all-GPU deployment and the round-robin policies).
	platform := mp.db.Platform()
	nets := mp.db.Networks()
	if g, err := AllGPU(nets, platform, nn.FP16); err == nil && len(pop) > 0 {
		pop[0] = g
	}
	if rr, err := RRNetwork(nets, platform); err == nil && len(pop) > 1 {
		pop[1] = rr
	}
	if rr, err := RRLayer(nets, platform); err == nil && len(pop) > 2 {
		pop[2] = rr
	}
	for i, s := range mp.seeds {
		if 3+i < len(pop) {
			pop[3+i] = s.Clone()
		}
	}

	best, _, err := mp.evolve(r, pop, mp.cfg.Generations, res)
	if err != nil {
		return nil, err
	}
	return mp.finish(res, best.asg, best.ev), nil
}

// SearchFrom runs a warm-started incremental search seeded from the
// live assignment — the control plane's online remap. Instead of the
// full offline population, the initial generation is the current
// assignment, the always-feasible all-GPU/FP16 fallback, and mutated
// neighbors of the current assignment; budget caps the generations so
// the remap completes at control-loop latency. The result is
// deterministic for a given (cfg.Seed, current) pair, always validates
// against the workload, and is never accuracy-infeasible: if no
// feasible candidate emerges, the FP32 all-GPU mapping (zero
// quantization delta) is returned, and if even that violates the
// budgets, SearchFrom errors rather than handing the executor an
// infeasible plan.
func (mp *Mapper) SearchFrom(current *taskgraph.Assignment, budget int) (*Result, error) {
	nets := mp.db.Networks()
	platform := mp.db.Platform()
	if current == nil {
		return nil, fmt.Errorf("nmp: SearchFrom needs a current assignment")
	}
	if err := current.Validate(nets, platform); err != nil {
		return nil, err
	}
	if budget < 1 {
		budget = 1
	}
	// Mixing the seed with the warm-start point keeps repeated remaps
	// deterministic per input while decorrelating successive searches.
	r := rand.New(rand.NewSource(mp.cfg.Seed ^ int64(hashAssignment(current))))
	res := &Result{}

	// The FP32 all-GPU mapping has (near-)zero quantization delta, so it
	// is the feasibility anchor; the FP16 variant usually matches it on
	// accuracy at much better latency, so seed it too when there is room.
	fallback, err := AllGPU(nets, platform, nn.FP32)
	if err != nil {
		return nil, err
	}
	pop := make([]*taskgraph.Assignment, mp.cfg.Population)
	pop[0] = current.Clone()
	pop[1] = fallback
	next := 2
	if next < len(pop) {
		if g, err := AllGPU(nets, platform, nn.FP16); err == nil {
			pop[next] = g
			next++
		}
	}
	for i := next; i < len(pop); i++ {
		child := current.Clone()
		mp.mutate(r, child)
		pop[i] = child
	}

	_, bestFeasible, err := mp.evolve(r, pop, budget, res)
	if err != nil {
		return nil, err
	}
	if bestFeasible.asg == nil {
		// Not even the all-GPU/FP16 fallback fits the accuracy budgets;
		// no assignment this mapper can produce would be feasible.
		return nil, fmt.Errorf("nmp: no feasible assignment within accuracy budgets %v", mp.budget)
	}
	return mp.finish(res, bestFeasible.asg, bestFeasible.ev), nil
}

// RandomSearch draws the same number of candidates as the evolutionary
// run (population x generations) independently at random and keeps the
// best — the Fig. 10b comparison.
func (mp *Mapper) RandomSearch() (*Result, error) {
	r := rand.New(rand.NewSource(mp.cfg.Seed))
	res := &Result{}
	var bestAsg *taskgraph.Assignment
	var bestEv *evaluation
	total := mp.cfg.Population * mp.cfg.Generations
	for i := 0; i < total; i++ {
		asg := mp.randomCandidate(r)
		ev, err := mp.Evaluate(asg)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		if bestEv == nil || ev.fitness < bestEv.fitness {
			bestAsg, bestEv = asg, ev
		}
		if (i+1)%mp.cfg.Population == 0 {
			res.FitnessHistory = append(res.FitnessHistory, bestEv.fitness)
		}
	}
	return mp.finish(res, bestAsg, bestEv), nil
}

func (mp *Mapper) finish(res *Result, asg *taskgraph.Assignment, ev *evaluation) *Result {
	res.Assignment = asg
	res.Schedule = ev.sched
	res.LatencyUS = ev.latency
	res.EnergyJ = ev.energy
	res.Deltas = append([]float64(nil), ev.deltas...)
	res.Feasible = ev.feasible
	return res
}
