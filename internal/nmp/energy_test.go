package nmp

import (
	"testing"

	"evedge/internal/nn"
)

// TestEnergyObjective exercises the paper's "this procedure can be
// repeated to optimize for other objectives such as energy as well":
// an energy-objective search should find a configuration that uses
// less energy than the latency-objective search (typically by leaning
// on the DLAs), at equal or worse latency.
func TestEnergyObjective(t *testing.T) {
	db, m := workload(t, nn.HidalgoDepth, nn.EVFlowNet)

	latCfg := quickCfg(21)
	latCfg.Generations = 20
	mpLat, err := NewMapper(db, m, latCfg)
	if err != nil {
		t.Fatal(err)
	}
	latRes, err := mpLat.Search()
	if err != nil {
		t.Fatal(err)
	}

	enCfg := quickCfg(21)
	enCfg.Generations = 20
	enCfg.Objective = MinEnergy
	mpEn, err := NewMapper(db, m, enCfg)
	if err != nil {
		t.Fatal(err)
	}
	enRes, err := mpEn.Search()
	if err != nil {
		t.Fatal(err)
	}

	if enRes.EnergyJ > latRes.EnergyJ*1.001 {
		t.Fatalf("energy objective found worse energy: %f J vs %f J",
			enRes.EnergyJ, latRes.EnergyJ)
	}
	if !enRes.Feasible {
		t.Fatal("energy-objective result violates accuracy budgets")
	}
	// The energy optimum should not be the latency optimum's mirror:
	// it trades latency for energy.
	if enRes.LatencyUS < latRes.LatencyUS*0.99 {
		t.Fatalf("energy search should not also dominate latency (%.0f vs %.0f)",
			enRes.LatencyUS, latRes.LatencyUS)
	}
}

// TestSeedInjection checks AddSeed wires extra candidates into the
// initial population.
func TestSeedInjection(t *testing.T) {
	db, m := workload(t, nn.DOTIE)
	cfg := quickCfg(5)
	cfg.Generations = 1
	cfg.MutationLayers = 0 // freeze mutation so seeds survive verbatim
	mp, err := NewMapper(db, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed with the best known single-layer mapping: CPU FP32 (cheap
	// launch for a tiny SNN layer).
	seed, err := AllGPU(db.Networks(), db.Platform(), nn.FP16)
	if err != nil {
		t.Fatal(err)
	}
	seed.Device[0][0] = 0
	seed.Prec[0][0] = nn.FP32
	mp.AddSeed(seed)
	res, err := mp.Search()
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyUS <= 0 {
		t.Fatal("degenerate result")
	}
	// The seeded candidate (or something at least as good) must win.
	seedEv, err := mp.Evaluate(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyUS > seedEv.latency*1.0001 {
		t.Fatalf("search (%f) lost to its own seed (%f)", res.LatencyUS, seedEv.latency)
	}
}
