package nmp

import (
	"fmt"

	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/taskgraph"
)

// Baseline scheduling policies the paper compares against. Round-robin
// policies cycle over the neural accelerators (GPU and the two DLAs);
// the CPU is left to the runtime, as is conventional for inference
// serving on Jetson-class boards. The baselines deploy at FP16 — the
// same precision as the all-GPU implementation — since they are
// *scheduling* baselines and do not search precision.

// accelerators returns GPU and DLA devices in platform order.
func accelerators(p *hw.Platform) []*hw.Device {
	var out []*hw.Device
	for _, d := range p.Devices {
		if d.Kind == hw.GPU || d.Kind == hw.DLA {
			out = append(out, d)
		}
	}
	return out
}

// AllGPU maps every layer of every task to the GPU at the given
// precision — the paper's single-task baseline implementation.
func AllGPU(nets []*nn.Network, p *hw.Platform, prec nn.Precision) (*taskgraph.Assignment, error) {
	gpu := p.GPUDevice()
	if gpu == nil {
		return nil, fmt.Errorf("nmp: platform %q has no GPU", p.Name)
	}
	if !gpu.Supports(prec) {
		return nil, fmt.Errorf("nmp: GPU does not support %v", prec)
	}
	asg := taskgraph.NewAssignment(nets)
	for t := range nets {
		for l := range nets[t].Layers {
			asg.Device[t][l] = gpu.ID
			asg.Prec[t][l] = prec
		}
	}
	return asg, nil
}

// RRNetwork is the coarse-grained round-robin policy: network t is
// assigned wholesale to accelerator t mod N ("each network is assigned
// to a processing element and the rest of the networks are distributed
// in a cyclic manner").
func RRNetwork(nets []*nn.Network, p *hw.Platform) (*taskgraph.Assignment, error) {
	accs := accelerators(p)
	if len(accs) == 0 {
		return nil, fmt.Errorf("nmp: platform %q has no accelerators", p.Name)
	}
	asg := taskgraph.NewAssignment(nets)
	for t := range nets {
		d := accs[t%len(accs)]
		for l := range nets[t].Layers {
			asg.Device[t][l] = d.ID
			asg.Prec[t][l] = deployPrec(d)
		}
	}
	return asg, nil
}

// deployPrec is the non-quantized deployment precision: FP16 where
// supported (all Xavier accelerators), else the most precise type.
func deployPrec(d *hw.Device) nn.Precision {
	if d.Supports(nn.FP16) {
		return nn.FP16
	}
	return d.FullPrecision()
}

// RRLayer is the fine-grained round-robin policy: consecutive layers
// cycle over the accelerators ("each layer is assigned to a processing
// element").
func RRLayer(nets []*nn.Network, p *hw.Platform) (*taskgraph.Assignment, error) {
	accs := accelerators(p)
	if len(accs) == 0 {
		return nil, fmt.Errorf("nmp: platform %q has no accelerators", p.Name)
	}
	asg := taskgraph.NewAssignment(nets)
	i := 0
	for t := range nets {
		for l := range nets[t].Layers {
			d := accs[i%len(accs)]
			asg.Device[t][l] = d.ID
			asg.Prec[t][l] = deployPrec(d)
			i++
		}
	}
	return asg, nil
}

// EvaluatePolicy runs a fixed assignment through the same fitness
// machinery as the search, so baselines report comparable numbers.
func (mp *Mapper) EvaluatePolicy(asg *taskgraph.Assignment) (*Result, error) {
	ev, err := mp.Evaluate(asg)
	if err != nil {
		return nil, err
	}
	res := &Result{Evaluations: 1}
	return mp.finish(res, asg, ev), nil
}
