package pipeline

import (
	"fmt"
	"math"
	"sync"

	"evedge/internal/dsfa"
	"evedge/internal/hw"
	"evedge/internal/mem"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/sparse"
	"evedge/internal/taskgraph"
)

// ExecPlan is the resolved per-layer execution decision for one
// network: device and precision per layer, whether the sparse kernel
// path is enabled, and any framing overhead charged to the first
// layer. Run builds one per streaming run; the serving layer builds
// one per session from the shared mapper assignment.
type ExecPlan struct {
	Device []int
	Prec   []nn.Precision
	Sparse bool
	// FramingOps charges the baseline's dense event-frame construction
	// (element stores per frame) to the first layer of every invocation.
	FramingOps int64
	// Parallel is the worker-pool width the numeric kernels may use
	// (<= 1 means serial). Like FramingOps it is execution state, not a
	// mapping decision: tiled kernels are bit-identical to serial ones,
	// so the analytic pricing and the replay stream are unaffected.
	Parallel int
}

// Equal reports whether two plans map every layer to the same device
// and precision (framing overhead, the sparse flag, and the parallel
// width excluded — they are representation/execution state, not
// mapping decisions). The control plane uses it to skip counting
// no-op plan installs as remaps.
func (p *ExecPlan) Equal(o *ExecPlan) bool {
	if p == nil || o == nil {
		return p == o
	}
	if len(p.Device) != len(o.Device) || len(p.Prec) != len(o.Prec) {
		return false
	}
	for i := range p.Device {
		if p.Device[i] != o.Device[i] || p.Prec[i] != o.Prec[i] {
			return false
		}
	}
	return true
}

// DefaultPlan maps every layer to the GPU at FP16 — the all-GPU
// deployment every optimization level starts from.
func DefaultPlan(net *nn.Network, p *hw.Platform, sparse bool) (*ExecPlan, error) {
	gpu := p.GPUDevice()
	if gpu == nil {
		return nil, fmt.Errorf("pipeline: platform has no GPU")
	}
	plan := &ExecPlan{
		Device: make([]int, len(net.Layers)),
		Prec:   make([]nn.Precision, len(net.Layers)),
		Sparse: sparse,
	}
	for i := range net.Layers {
		plan.Device[i] = gpu.ID
		plan.Prec[i] = nn.FP16
	}
	return plan, nil
}

// PlanSlot is the swappable execution-plan holder shared between the
// executor and the control plane. The executor reads the current plan
// at each invocation boundary (Load); a rebalance or an online remap
// installs a new plan between invocations (Swap) without touching
// frames already queued — they simply execute under the new mapping
// when their invocation forms. FramingOps, which the ingest path
// discovers from the first frame's geometry, survives swaps.
type PlanSlot struct {
	mu    sync.Mutex
	plan  *ExecPlan
	swaps uint64
}

// NewPlanSlot wraps the initial plan.
func NewPlanSlot(p *ExecPlan) *PlanSlot { return &PlanSlot{plan: p} }

// Load returns the current plan. Callers must treat it as immutable;
// a swap replaces the pointer rather than mutating the plan in place,
// so an in-flight invocation keeps pricing under the plan it started
// with.
func (s *PlanSlot) Load() *ExecPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Swap installs a new plan, carrying the framing overhead and
// parallel width over from the old one, and counts the remap.
func (s *PlanSlot) Swap(p *ExecPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.FramingOps = s.plan.FramingOps
	p.Parallel = s.plan.Parallel
	s.plan = p
	s.swaps++
}

// Swaps returns how many plans have been installed after the first.
func (s *PlanSlot) Swaps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swaps
}

// SetFramingOps records the per-invocation framing overhead once the
// ingest path learns the frame geometry.
func (s *PlanSlot) SetFramingOps(ops int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan.FramingOps = ops
}

// FramingOps reads the current framing overhead.
func (s *PlanSlot) FramingOps() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan.FramingOps
}

// SetParallel records the kernel worker-pool width the serving layer
// granted this session; it survives remaps like FramingOps does.
func (s *PlanSlot) SetParallel(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan.Parallel = n
}

// Parallel reads the current worker-pool width.
func (s *PlanSlot) Parallel() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan.Parallel
}

// PlanFromAssignment extracts task t's slice of a multi-task mapper
// assignment as a single-network execution plan.
func PlanFromAssignment(asg *taskgraph.Assignment, task int, sparse bool) (*ExecPlan, error) {
	if asg == nil || task < 0 || task >= len(asg.Device) {
		return nil, fmt.Errorf("pipeline: assignment has no task %d", task)
	}
	return &ExecPlan{
		Device: append([]int(nil), asg.Device[task]...),
		Prec:   append([]nn.Precision(nil), asg.Prec[task]...),
		Sparse: sparse,
	}, nil
}

// RawRef attributes a batch member back to the raw frames it
// represents: ReadyUS is when those frames finished forming, N how
// many of them there are.
type RawRef struct {
	ReadyUS float64
	N       int
}

// Invocation is one batched inference input flowing through the
// executor: the batch members, when the newest one finished forming,
// and the per-raw-frame latency attribution.
type Invocation struct {
	Frames  []*sparse.Frame
	ReadyUS float64
	Raw     int
	PerRaw  []RawRef
}

// NewInvocationPool returns a free list for Invocations; recycled
// invocations keep their Frames/PerRaw capacity but start empty.
func NewInvocationPool() *mem.Pool[Invocation] {
	return mem.NewPool(func(inv *Invocation) {
		for i := range inv.Frames {
			inv.Frames[i] = nil
		}
		inv.Frames = inv.Frames[:0]
		inv.ReadyUS = 0
		inv.Raw = 0
		inv.PerRaw = inv.PerRaw[:0]
	})
}

// fillInvFromBatch loads a DSFA dispatch batch into an (empty)
// invocation.
func fillInvFromBatch(inv *Invocation, b *dsfa.Batch) *Invocation {
	for _, m := range b.Merged {
		inv.Frames = append(inv.Frames, m.Frames...)
		inv.Raw += m.NumMerged
		inv.PerRaw = append(inv.PerRaw, RawRef{float64(m.T1), m.NumMerged})
		if float64(m.T1) > inv.ReadyUS {
			inv.ReadyUS = float64(m.T1)
		}
	}
	return inv
}

// fillSingleFrameInv loads one raw frame into an (empty) invocation
// (the below-LevelDSFA path: one inference per frame).
func fillSingleFrameInv(inv *Invocation, f *sparse.Frame) *Invocation {
	inv.Frames = append(inv.Frames, f)
	inv.ReadyUS = float64(f.T1)
	inv.Raw = 1
	inv.PerRaw = append(inv.PerRaw, RawRef{float64(f.T1), 1})
	return inv
}

// Stepper turns a stream of sparse frames into inference invocations
// one step at a time — the per-frame execution unit factored out of
// Run so a long-lived server can drive the pipeline incrementally
// instead of batch-only. Below LevelDSFA every pushed frame becomes
// one FIFO invocation; at LevelDSFA and above frames enter the
// Dynamic Sparse Frame Aggregator and invocations are formed whenever
// the hardware reports itself available (Next) or the stream ends
// (Flush).
type Stepper struct {
	level Level
	agg   *dsfa.Aggregator // nil below LevelDSFA
	// fifo is a head-indexed ring-ish queue: Next consumes from head,
	// and when it empties the slice rewinds to the front, so a stepper
	// that keeps up never re-allocates.
	fifo []*sparse.Frame
	head int
	// invPool, when set, supplies recycled Invocation structs; the
	// serving layer returns them on completion.
	invPool *mem.Pool[Invocation]
}

// NewStepper builds a stepper for the level. The DSFA config is only
// consulted at LevelDSFA and above; pass the zero value otherwise.
func NewStepper(level Level, cfg dsfa.Config) (*Stepper, error) {
	s := &Stepper{level: level}
	if level >= LevelDSFA {
		agg, err := dsfa.New(cfg)
		if err != nil {
			return nil, err
		}
		s.agg = agg
	}
	return s, nil
}

// SetPools switches the stepper to pooled operation: invocations come
// from invs, and (at LevelDSFA and above) the aggregator runs pooled
// over frames — see dsfa.Aggregator.SetPool for the ownership rules.
// Call before the first Push.
func (s *Stepper) SetPools(invs *mem.Pool[Invocation], frames *mem.FramePool) {
	s.invPool = invs
	if s.agg != nil && frames != nil {
		s.agg.SetPool(frames)
	}
}

// newInv returns an empty invocation, pooled when a pool is set.
func (s *Stepper) newInv() *Invocation {
	if s.invPool != nil {
		return s.invPool.Get()
	}
	return &Invocation{}
}

// Push inserts a raw sparse frame produced by E2SF.
func (s *Stepper) Push(f *sparse.Frame) {
	if s.agg == nil {
		s.fifo = append(s.fifo, f)
		return
	}
	s.agg.Push(f)
}

// popFifo removes and returns the oldest FIFO frame; callers have
// checked non-emptiness.
func (s *Stepper) popFifo() *sparse.Frame {
	f := s.fifo[s.head]
	s.fifo[s.head] = nil
	s.head++
	if s.head == len(s.fifo) {
		s.fifo = s.fifo[:0]
		s.head = 0
	}
	return f
}

// fifoLen returns the number of frames waiting in the FIFO.
func (s *Stepper) fifoLen() int { return len(s.fifo) - s.head }

// Next returns the next invocation ready at hardware-available time
// nowUS, or nil when nothing is ready yet. At LevelDSFA and above this
// is the paper's hardware-became-available dispatch: full or stale
// buckets drain, open buckets keep filling.
func (s *Stepper) Next(nowUS float64) *Invocation {
	if s.agg == nil {
		if s.fifoLen() == 0 {
			return nil
		}
		return fillSingleFrameInv(s.newInv(), s.popFifo())
	}
	b := s.agg.DispatchReady(int64(nowUS))
	if b == nil {
		return nil
	}
	return fillInvFromBatch(s.newInv(), b)
}

// Flush drains everything still buffered — open buckets included — as
// one final invocation, or nil if nothing is pending. Use at end of
// stream or session close.
func (s *Stepper) Flush() *Invocation {
	if s.agg == nil {
		if s.fifoLen() == 0 {
			return nil
		}
		return fillSingleFrameInv(s.newInv(), s.popFifo())
	}
	b := s.agg.Dispatch()
	if b == nil {
		return nil
	}
	return fillInvFromBatch(s.newInv(), b)
}

// Pending returns raw frames buffered but not yet dispatched.
func (s *Stepper) Pending() int {
	if s.agg == nil {
		return s.fifoLen()
	}
	return s.agg.PendingFrames()
}

// Queued returns merged buckets awaiting dispatch (0 below LevelDSFA).
func (s *Stepper) Queued() int {
	if s.agg == nil {
		return 0
	}
	return s.agg.QueueLen()
}

// Retune swaps the aggregator tuning mid-stream — the control plane's
// hook. The swap applies at bucket boundaries and conserves frame
// accounting (see dsfa.Aggregator.Retune). Below LevelDSFA there is no
// aggregator to tune and the call is a validated no-op.
func (s *Stepper) Retune(cfg dsfa.Config) error {
	if s.agg == nil {
		return cfg.Validate()
	}
	return s.agg.Retune(cfg)
}

// AggConfig returns the live aggregator tuning; ok is false below
// LevelDSFA.
func (s *Stepper) AggConfig() (dsfa.Config, bool) {
	if s.agg == nil {
		return dsfa.Config{}, false
	}
	return s.agg.Config(), true
}

// Stats returns the aggregator counters (zero below LevelDSFA).
func (s *Stepper) Stats() dsfa.Stats {
	if s.agg == nil {
		return dsfa.Stats{}
	}
	return s.agg.Stats()
}

// batchDensity is the mean spatial density across the batch members.
func batchDensity(inv *Invocation) float64 {
	if len(inv.Frames) == 0 {
		return 0
	}
	var d float64
	for _, f := range inv.Frames {
		d += f.Density()
	}
	return d / float64(len(inv.Frames))
}

// layerDur prices one layer of an invocation under the plan: the
// dense kernel, or the faster of dense and sparse when the plan
// enables the sparse path.
func layerDur(model *perf.Model, net *nn.Network, p *ExecPlan, i int, dev *hw.Device, batch int, density float64) float64 {
	l := net.Layers[i]
	inDen := density
	if len(net.Preds[i]) > 0 {
		inDen = 0
		for _, pr := range net.Preds[i] {
			if d := net.Layers[pr].ActDensity; d > inDen {
				inDen = d
			}
		}
	}
	opts := perf.ExecOpts{Batch: batch, InputDensity: inDen}
	if len(net.Preds[i]) == 0 {
		opts.FramingOverheadOps = p.FramingOps * int64(batch)
	}
	dur, err := model.LayerTimeUS(l, dev, p.Prec[i], opts)
	if err != nil {
		// Planned mappings are validated; treat as infinite cost.
		dur = math.Inf(1)
	}
	if p.Sparse {
		sOpts := opts
		sOpts.Sparse = true
		if sp, err := model.LayerTimeUS(l, dev, p.Prec[i], sOpts); err == nil && sp < dur {
			dur = sp
		}
	}
	return dur
}

// InvocationCost prices one batched inference by list-scheduling the
// single-task layer graph on otherwise-idle devices (Eq. 3 semantics,
// same as the Network Mapper's estimator): per-layer times at the
// planned device and precision with runtime kernel selection, transfer
// nodes on device changes, and parallel branches overlapping across
// devices. It returns the invocation makespan and per-device busy
// time.
func InvocationCost(model *perf.Model, net *nn.Network, p *ExecPlan, inv *Invocation) (float64, map[int]float64) {
	batch := len(inv.Frames)
	if batch == 0 {
		return 0, nil
	}
	density := batchDensity(inv)

	busy := map[int]float64{}
	platform := model.Platform()
	devFree := make([]float64, len(platform.Devices))
	umFree := 0.0
	end := make([]float64, len(net.Layers))
	var makespan float64
	for i := range net.Layers {
		dev := platform.Devices[p.Device[i]]
		dur := layerDur(model, net, p, i, dev, batch, density)
		// Ready when all producers (plus their transfers) complete.
		ready := 0.0
		for _, pr := range net.Preds[i] {
			pready := end[pr]
			if p.Device[pr] != p.Device[i] {
				c := model.CommUS(net.Layers[pr], platform.Devices[p.Device[pr]], dev, p.Prec[pr])
				cs := math.Max(pready, umFree)
				umFree = cs + c
				pready = umFree
			}
			if pready > ready {
				ready = pready
			}
		}
		start := math.Max(ready, devFree[p.Device[i]])
		end[i] = start + dur
		devFree[p.Device[i]] = end[i]
		busy[dev.ID] += dur
		if end[i] > makespan {
			makespan = end[i]
		}
	}
	return makespan, busy
}

// ScheduleOnEngine pushes one batched inference through the shared
// per-device FIFO queues of a live engine — Eq. 3 semantics with
// cross-task contention: layers start no earlier than their producers
// (plus unified-memory transfers, serialized through the engine's
// shared bus) and queue behind whatever other tasks occupy their
// device. It returns the invocation completion time. The engine is
// internally synchronized, so scheduler dispatchers for different
// devices call this concurrently; the execution scheduler
// (internal/sched) is the path everything routes through.
func ScheduleOnEngine(engine *hw.Engine, model *perf.Model, net *nn.Network, p *ExecPlan, inv *Invocation, tag string) float64 {
	return ScheduleOnEngineObs(engine, model, net, p, inv, tag, nil)
}

// ExecObserver receives every engine reservation ScheduleOnEngine
// makes: one call per layer execution (um=false, dev is the platform
// device index) and one per unified-memory transfer between devices
// (um=true, dev is the *consuming* device). Times are engine-virtual
// microseconds as granted by the engine, including queueing behind
// other tasks — exactly what a frame-lifecycle trace wants to see.
type ExecObserver func(dev int, name string, startUS, endUS float64, um bool)

// endScratch recycles the per-invocation layer-completion slices so
// the submit hot path stays allocation-free regardless of network
// depth.
var endScratch = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

// ScheduleOnEngineObs is ScheduleOnEngine with an execution observer;
// obs may be nil (the untraced path pays one nil check per layer).
func ScheduleOnEngineObs(engine *hw.Engine, model *perf.Model, net *nn.Network, p *ExecPlan, inv *Invocation, tag string, obs ExecObserver) float64 {
	batch := len(inv.Frames)
	if batch == 0 {
		return 0
	}
	density := batchDensity(inv)
	platform := engine.Platform()
	endp := endScratch.Get().(*[]float64)
	end := *endp
	if cap(end) < len(net.Layers) {
		end = make([]float64, len(net.Layers))
	} else {
		end = end[:len(net.Layers)]
		for i := range end {
			end[i] = 0
		}
	}
	// Span tags only exist for an observer or a recording engine; the
	// steady-state serving path has neither and skips the concats.
	named := obs != nil || engine.Recording()
	var last float64
	for i, l := range net.Layers {
		dev := platform.Devices[p.Device[i]]
		dur := layerDur(model, net, p, i, dev, batch, density)
		ready := inv.ReadyUS
		for _, pr := range net.Preds[i] {
			pready := end[pr]
			if p.Device[pr] != p.Device[i] {
				c := model.CommUS(net.Layers[pr], platform.Devices[p.Device[pr]], dev, p.Prec[pr])
				var cstart float64
				cstart, pready = engine.ReserveUM(pready, c)
				if obs != nil {
					obs(p.Device[i], tag+"/"+net.Layers[pr].Name+">"+l.Name, cstart, pready, true)
				}
			}
			if pready > ready {
				ready = pready
			}
		}
		var name string
		if named {
			name = tag + "/" + l.Name
		}
		s, e := engine.Submit(dev, ready, dur, name)
		if obs != nil {
			obs(p.Device[i], name, s, e, false)
		}
		end[i] = e
		if e > last {
			last = e
		}
	}
	*endp = end[:0]
	endScratch.Put(endp)
	return last
}

// MergeInvocations coalesces several invocations of the same network
// under the same plan into one micro-batched inference: the members'
// frames ride one launch, the batch becomes ready when its newest
// member is, and the per-raw-frame attribution is concatenated so each
// submitter can still account its own latencies against the shared
// completion time. The execution scheduler calls this when compatible
// cross-session work lands inside one coalescing window.
func MergeInvocations(invs []*Invocation) *Invocation {
	if len(invs) == 1 {
		return invs[0]
	}
	return MergeInvocationsInto(&Invocation{}, invs)
}

// MergeInvocationsInto is MergeInvocations writing into a caller-owned
// (empty, typically pooled) invocation. Unlike MergeInvocations it
// copies even a single member, so out never aliases an input.
func MergeInvocationsInto(out *Invocation, invs []*Invocation) *Invocation {
	for _, inv := range invs {
		out.Frames = append(out.Frames, inv.Frames...)
		out.Raw += inv.Raw
		out.PerRaw = append(out.PerRaw, inv.PerRaw...)
		if inv.ReadyUS > out.ReadyUS {
			out.ReadyUS = inv.ReadyUS
		}
	}
	return out
}
