// Package pipeline is the end-to-end Ev-Edge inference runtime: event
// camera -> E2SF -> DSFA -> mapped execution on the heterogeneous
// platform (paper Fig. 4). It simulates the streaming behaviour the
// paper evaluates — frames arrive at sensor rate, the executor drains
// them at hardware rate, backlog builds during bursts — under four
// cumulative optimization levels:
//
//	LevelBaseline : dense event frames, all layers on the GPU at FP32,
//	                static framing, one inference per frame.
//	LevelE2SF     : sparse frames from the Event2Sparse Frame
//	                converter; each layer picks the faster of the
//	                dense and sparse kernels.
//	LevelDSFA     : + the Dynamic Sparse Frame Aggregator merging
//	                frames by input dynamics and hardware availability.
//	LevelNMP      : + the Network Mapper's searched per-layer device
//	                and precision assignment.
package pipeline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"evedge/internal/dsfa"
	"evedge/internal/e2sf"
	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/quant"
	"evedge/internal/scene"
	"evedge/internal/sparse"
)

// Level is a cumulative optimization level.
type Level int

// Optimization levels (each includes the previous).
const (
	LevelBaseline Level = iota
	LevelE2SF
	LevelDSFA
	LevelNMP
)

// String names the level as in Fig. 8.
func (l Level) String() string {
	switch l {
	case LevelBaseline:
		return "all-GPU"
	case LevelE2SF:
		return "+E2SF"
	case LevelDSFA:
		return "+E2SF+DSFA"
	case LevelNMP:
		return "Ev-Edge (all)"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses an optimization-level name or number. Accepted
// spellings per level: 0|baseline|all-gpu, 1|e2sf, 2|dsfa, 3|nmp|all|
// ev-edge (case-insensitive). Anything else is an error naming the
// valid levels — never a silent fallback.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "0", "baseline", "all-gpu", "allgpu":
		return LevelBaseline, nil
	case "1", "e2sf", "+e2sf":
		return LevelE2SF, nil
	case "2", "dsfa", "+e2sf+dsfa":
		return LevelDSFA, nil
	case "3", "nmp", "all", "ev-edge", "evedge":
		return LevelNMP, nil
	}
	return 0, fmt.Errorf("pipeline: unknown optimization level %q (valid: 0|all-gpu, 1|e2sf, 2|dsfa, 3|nmp)", s)
}

// Config describes one streaming run.
type Config struct {
	Net      *nn.Network
	Platform *hw.Platform
	Level    Level
	// DSFA holds the aggregator tuning; zero value uses TunedDSFA.
	DSFA dsfa.Config
	// NMP holds the search settings for LevelNMP; zero Population uses
	// nmp.DefaultConfig.
	NMP nmp.Config
	// Scale selects the camera resolution (scene.Full for experiments,
	// scene.Half for fast tests).
	Scale scene.Scale
	// DurUS is the simulated stream duration.
	DurUS int64
	Seed  int64
	// Stream overrides the scene generator when non-nil (tests).
	Stream *events.Stream
}

// Report summarizes a streaming run.
type Report struct {
	Level        Level
	Network      string
	RawFrames    int // sparse frames produced by E2SF
	Invocations  int // inference launches (after DSFA merging)
	BatchedUnits int // frames inside those launches

	MeanLatencyUS float64 // per raw frame: completion - readiness
	P99LatencyUS  float64
	MakespanUS    float64
	EnergyJ       float64
	ThroughputFPS float64 // raw frames per second of makespan

	MeanDensity   float64 // mean spatial density of raw frames
	MergeRatio    float64 // raw frames per merged bucket (1 = no merge)
	DroppedFrames int

	// AccuracyDelta = quantization + merge degradation; Accuracy is
	// the resulting metric value (Table 2's Ev-Edge column).
	AccuracyDelta float64
	Accuracy      float64
	// Assignment records the NMP mapping at LevelNMP (nil otherwise).
	Assignment *nmp.Result
}

// TunedDSFA returns the per-task aggregator tuning ("both MtTh and
// MdTh need to be tuned for each task individually"). Segmentation
// keeps merging conservative because of its pixel-wise accuracy
// requirements; high-speed tracking uses cBatch to preserve temporal
// precision.
func TunedDSFA(net *nn.Network) dsfa.Config {
	cfg := dsfa.DefaultConfig()
	switch net.Task {
	case nn.SemanticSegmentation:
		cfg.MBSize = 2
		cfg.MdTh = 0.08
		cfg.MtThUS = 6_000
		cfg.Mode = dsfa.CAdd
	case nn.ObjectTracking:
		cfg.Mode = dsfa.CBatch
		cfg.EBufSize = 12
		cfg.QueueCap = 6
	default:
		cfg.MBSize = 4
		cfg.MdTh = 0.6
		cfg.MtThUS = 30_000
		cfg.Mode = dsfa.CAdd
	}
	return cfg
}

// Run executes the streaming simulation and returns the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("pipeline: no network")
	}
	if cfg.Platform == nil {
		cfg.Platform = hw.Xavier()
	}
	if cfg.DurUS <= 0 {
		cfg.DurUS = 1_000_000
	}
	stream := cfg.Stream
	if stream == nil {
		seq, err := scene.NewSequence(cfg.Net.Input.Preset, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		stream, err = seq.Generate(cfg.DurUS)
		if err != nil {
			return nil, err
		}
	} else if !stream.Sorted() {
		// E2SF's window slicing assumes timestamp order; reject early
		// rather than silently mis-binning user-provided streams.
		return nil, fmt.Errorf("pipeline: input stream is not time-sorted")
	}

	frames, stats, err := ConvertStream(cfg.Net, stream, cfg.DurUS)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Level:       cfg.Level,
		Network:     cfg.Net.Name,
		RawFrames:   len(frames),
		MeanDensity: stats.meanDensity,
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("pipeline: stream produced no frames")
	}

	model := perf.NewModel(cfg.Platform)
	plan, nmpRes, mergePenalty, err := buildPlan(cfg, model, frames)
	if err != nil {
		return nil, err
	}
	rep.Assignment = nmpRes

	// Accuracy: quantization delta (NMP level) plus merging penalty
	// (DSFA levels).
	quantDelta := 0.0
	if nmpRes != nil {
		quantDelta = nmpRes.Deltas[0]
	}
	rep.AccuracyDelta = quantDelta + mergePenalty
	rep.Accuracy = quant.EvEdgeAccuracy(cfg.Net, rep.AccuracyDelta)

	// Streaming execution.
	exec := runExecutor(model, cfg, plan, frames)
	busyPerDev := exec.busyPerDev
	latencies := exec.latencies
	rep.Invocations = exec.invocations
	rep.BatchedUnits = exec.batchedUnits
	rep.MergeRatio = exec.mergeRatio
	rep.DroppedFrames = exec.dropped

	horizon := math.Max(exec.makespan, float64(cfg.DurUS))
	rep.MakespanUS = exec.makespan
	rep.ThroughputFPS = float64(rep.RawFrames) / (horizon * 1e-6)
	var energy float64
	for _, d := range cfg.Platform.Devices {
		busy := busyPerDev[d.ID]
		if busy > horizon {
			busy = horizon
		}
		energy += d.ActiveWatts*busy*1e-6 + d.IdleWatts*(horizon-busy)*1e-6
	}
	rep.EnergyJ = energy

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		rep.MeanLatencyUS = sum / float64(len(latencies))
		rep.P99LatencyUS = latencies[int(float64(len(latencies))*0.99)]
	}
	return rep, nil
}

type convStats struct {
	meanDensity float64
}

// ConvertStream runs E2SF per the network's input spec: count-based
// framing emits a frame every N events (N chosen so the *median-rate*
// framing period matches FramePeriodUS — so bursts raise the realized
// rate); time framing bins each accumulation window and groups bins
// into inference inputs.
func ConvertStream(net *nn.Network, stream *events.Stream, durUS int64) ([]*sparse.Frame, convStats, error) {
	var st convStats
	conv, err := e2sf.New(e2sf.Config{
		Width: stream.Width, Height: stream.Height, NumBins: net.Input.NumBins,
	})
	if err != nil {
		return nil, st, err
	}
	var out []*sparse.Frame
	if net.Input.Framing == nn.FrameByCount {
		// Calibrate the event count per frame on the *typical* (median)
		// activity, as a deployment would tune N on representative
		// data; bursts then raise the realized frame rate above
		// 1/FramePeriodUS — the backlog source DSFA absorbs.
		count := int(medianRatePerUS(stream, durUS) * float64(net.Input.FramePeriodUS))
		if count < 1 {
			count = 1
		}
		frames, _, err := conv.ConvertByCount(stream, 0, durUS, count)
		if err != nil {
			return nil, st, err
		}
		out = frames
	} else {
		for t0 := int64(0); t0+net.Input.WindowUS <= durUS; t0 += net.Input.WindowUS {
			frames, _, err := conv.Convert(stream, t0, t0+net.Input.WindowUS)
			if err != nil {
				return nil, st, err
			}
			grouped, err := e2sf.GroupBins(frames, net.Input.GroupK)
			if err != nil {
				return nil, st, err
			}
			out = append(out, grouped...)
		}
	}
	var denSum float64
	for _, f := range out {
		denSum += f.Density()
	}
	if len(out) > 0 {
		st.meanDensity = denSum / float64(len(out))
	}
	return out, st, nil
}

// medianRatePerUS returns the median per-microsecond event rate over
// 50 ms windows — robust to activity bursts.
func medianRatePerUS(stream *events.Stream, durUS int64) float64 {
	const win = 50_000
	var counts []int
	for t0 := int64(0); t0 < durUS; t0 += win {
		counts = append(counts, stream.Slice(t0, t0+win).Len())
	}
	if len(counts) == 0 {
		return 0
	}
	sort.Ints(counts)
	return float64(counts[len(counts)/2]) / win
}

// buildPlan decides mapping, precision and representation per level,
// returning the NMP result (LevelNMP) and the DSFA merge accuracy
// penalty (LevelDSFA and up).
func buildPlan(cfg Config, model *perf.Model, frames []*sparse.Frame) (*ExecPlan, *nmp.Result, float64, error) {
	net := cfg.Net
	// The all-GPU implementation deploys at half precision, TensorRT's
	// best practice on Xavier; Ev-Edge's precision gains come from
	// INT8, not from beating an artificially slow FP32 baseline.
	p, err := DefaultPlan(net, cfg.Platform, cfg.Level >= LevelE2SF)
	if err != nil {
		return nil, nil, 0, err
	}
	if cfg.Level == LevelBaseline {
		// Dense event-frame construction: full tensor stores per frame.
		p.FramingOps = int64(2 * frames[0].H * frames[0].W)
	}

	mergePenalty := 0.0
	if cfg.Level >= LevelDSFA {
		// Estimate the merge ratio by dry-running the aggregator with
		// every frame pushed and a single dispatch (upper bound on
		// merging, hence a conservative accuracy estimate).
		agg, err := dsfa.New(dsfaConfig(cfg))
		if err != nil {
			return nil, nil, 0, err
		}
		for _, f := range frames {
			agg.Push(f)
		}
		agg.Dispatch()
		mergePenalty = quant.MergePenalty(net, agg.Stats().MergeRatio())
	}

	if cfg.Level < LevelNMP {
		return p, nil, mergePenalty, nil
	}

	// LevelNMP: search device + precision for the single task.
	density := 0.0
	for _, f := range frames {
		density += f.Density()
	}
	density /= float64(len(frames))
	db, err := perf.BuildProfileDB(model, []*nn.Network{net}, true, []float64{density})
	if err != nil {
		return nil, nil, 0, err
	}
	ncfg := cfg.NMP
	if ncfg.Population == 0 {
		ncfg = nmp.DefaultConfig()
		ncfg.Seed = cfg.Seed + 1
	}
	mapper, err := nmp.NewMapper(db, model, ncfg)
	if err != nil {
		return nil, nil, 0, err
	}
	// The merge penalty spends part of the Table 2 budget; the
	// quantization search gets the remainder.
	budget := quant.Table2Delta(net.Name) - mergePenalty
	if budget <= 0 {
		budget = 0.05 * quant.Table2Delta(net.Name)
	}
	if err := mapper.SetBudgets([]float64{budget}); err != nil {
		return nil, nil, 0, err
	}
	res, err := mapper.Search()
	if err != nil {
		return nil, nil, 0, err
	}
	copy(p.Device, res.Assignment.Device[0])
	copy(p.Prec, res.Assignment.Prec[0])
	return p, res, mergePenalty, nil
}

// dsfaConfig resolves the aggregator tuning for a run.
func dsfaConfig(cfg Config) dsfa.Config {
	if cfg.DSFA.EBufSize != 0 {
		return cfg.DSFA
	}
	return TunedDSFA(cfg.Net)
}

// execResult aggregates the executor loop's accounting.
type execResult struct {
	latencies    []float64
	busyPerDev   map[int]float64
	invocations  int
	batchedUnits int
	makespan     float64
	mergeRatio   float64
	dropped      int
}

// runExecutor simulates the streaming executor by driving the Stepper
// the same way a live server would. Below LevelDSFA every frame is one
// invocation served FIFO. At LevelDSFA and above, frames enter the
// aggregator as they are produced and a batch is dispatched whenever
// the hardware becomes available — so during bursts (or on slow
// mappings) frames accumulate and merge, which is exactly the
// backlog-clearing behaviour of the paper's Sec. 4.2.
func runExecutor(model *perf.Model, cfg Config, p *ExecPlan, frames []*sparse.Frame) *execResult {
	res := &execResult{busyPerDev: map[int]float64{}, mergeRatio: 1}
	serve := func(inv *Invocation, startAfter float64) float64 {
		start := math.Max(startAfter, inv.ReadyUS)
		dur, busy := InvocationCost(model, cfg.Net, p, inv)
		end := start + dur
		for dev, b := range busy {
			res.busyPerDev[dev] += b
		}
		for _, rr := range inv.PerRaw {
			for k := 0; k < rr.N; k++ {
				res.latencies = append(res.latencies, end-rr.ReadyUS)
			}
		}
		res.invocations++
		res.batchedUnits += len(inv.Frames)
		return end
	}

	st, err := NewStepper(cfg.Level, dsfaConfig(cfg))
	if err != nil {
		// dsfaConfig only returns validated tunings; fail loud.
		panic(err)
	}

	if cfg.Level < LevelDSFA {
		var t float64
		for _, f := range frames {
			st.Push(f)
			t = serve(st.Next(t), t)
		}
		res.makespan = t
		return res
	}

	var t float64
	idx := 0
	for {
		// Deliver frames that have formed by the time the hardware
		// frees up.
		for idx < len(frames) && float64(frames[idx].T1) <= t {
			st.Push(frames[idx])
			idx++
		}
		// The hardware is available: dispatch ready (full or stale)
		// buckets; open buckets keep filling to preserve merging.
		inv := st.Next(t)
		if inv == nil {
			if idx >= len(frames) {
				// End of stream: flush whatever remains.
				inv = st.Flush()
				if inv == nil {
					break
				}
			} else {
				// Idle until the next frame forms.
				t = math.Max(t, float64(frames[idx].T1))
				continue
			}
		}
		t = serve(inv, t)
	}
	stats := st.Stats()
	res.mergeRatio = stats.MergeRatio()
	res.dropped = stats.DroppedFrames
	res.makespan = t
	return res
}
