package pipeline

import (
	"testing"

	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/scene"
	"evedge/internal/taskgraph"
)

func multiNets(names ...string) []*nn.Network {
	nets := make([]*nn.Network, len(names))
	for i, n := range names {
		nets[i] = nn.MustByName(n)
	}
	return nets
}

func multiAssignment(t *testing.T, nets []*nn.Network, platform *hw.Platform, policy string) *taskgraph.Assignment {
	t.Helper()
	var asg *taskgraph.Assignment
	var err error
	switch policy {
	case "gpu":
		asg, err = nmp.AllGPU(nets, platform, nn.FP16)
	case "rrn":
		asg, err = nmp.RRNetwork(nets, platform)
	case "nmp":
		model := perf.NewModel(platform)
		db, err2 := perf.BuildProfileDB(model, nets, true, nil)
		if err2 != nil {
			t.Fatal(err2)
		}
		cfg := nmp.DefaultConfig()
		cfg.Population = 10
		cfg.Generations = 10
		cfg.Seed = 13
		mp, err2 := nmp.NewMapper(db, model, cfg)
		if err2 != nil {
			t.Fatal(err2)
		}
		res, err2 := mp.Search()
		if err2 != nil {
			t.Fatal(err2)
		}
		return res.Assignment
	default:
		t.Fatalf("unknown policy %q", policy)
	}
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

func TestRunMultiTaskValidation(t *testing.T) {
	if _, err := RunMultiTask(MultiTaskConfig{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	nets := multiNets(nn.DOTIE)
	if _, err := RunMultiTask(MultiTaskConfig{Nets: nets}); err == nil {
		t.Fatal("missing assignment accepted")
	}
	platform := hw.Xavier()
	asg := multiAssignment(t, nets, platform, "gpu")
	// Mismatched stream count rejected.
	if _, err := RunMultiTask(MultiTaskConfig{
		Nets: nets, Platform: platform, Assignment: asg,
		Streams: make([]*events.Stream, 3),
		Scale:   scene.Half, DurUS: 200_000, Seed: 1,
	}); err == nil {
		t.Fatal("stream count mismatch accepted")
	}
	// Valid config runs.
	if _, err := RunMultiTask(MultiTaskConfig{
		Nets: nets, Platform: platform, Assignment: asg,
		Scale: scene.Half, DurUS: 200_000, Seed: 1,
	}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRunMultiTaskSharedContention(t *testing.T) {
	platform := hw.Xavier()
	nets := multiNets(nn.DOTIE, nn.HidalgoDepth)
	gpuOnly := multiAssignment(t, nets, platform, "gpu")
	rep, err := RunMultiTask(MultiTaskConfig{
		Nets: nets, Platform: platform, Assignment: gpuOnly,
		Scale: scene.Half, DurUS: 500_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 2 {
		t.Fatalf("tasks=%d", len(rep.Tasks))
	}
	for _, tr := range rep.Tasks {
		if tr.RawFrames == 0 || tr.MeanLatencyUS <= 0 {
			t.Fatalf("degenerate task report %+v", tr)
		}
		if tr.P99LatencyUS < tr.MeanLatencyUS {
			t.Fatalf("%s: p99 %f below mean %f", tr.Network, tr.P99LatencyUS, tr.MeanLatencyUS)
		}
	}
	if rep.EnergyJ <= 0 || rep.MakespanUS <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	// Everything on the GPU: only the GPU accumulates busy time.
	if rep.DeviceBusyUS["GPU"] <= 0 {
		t.Fatal("GPU idle under all-GPU mapping")
	}
	if rep.DeviceBusyUS["DLA0"] != 0 || rep.DeviceBusyUS["CPU"] != 0 {
		t.Fatalf("non-GPU devices busy under all-GPU mapping: %+v", rep.DeviceBusyUS)
	}

	// Contention sanity: DOTIE alone on the GPU must be faster than
	// DOTIE sharing the GPU with the depth network.
	solo, err := RunMultiTask(MultiTaskConfig{
		Nets:       multiNets(nn.DOTIE),
		Platform:   hw.Xavier(),
		Assignment: multiAssignment(t, multiNets(nn.DOTIE), platform, "gpu"),
		Scale:      scene.Half, DurUS: 500_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Tasks[0].MeanLatencyUS > rep.Tasks[0].MeanLatencyUS {
		t.Fatalf("contention should not speed DOTIE up: solo %f vs shared %f",
			solo.Tasks[0].MeanLatencyUS, rep.Tasks[0].MeanLatencyUS)
	}
}

func TestRunMultiTaskSpreadBeatsPileup(t *testing.T) {
	platform := hw.Xavier()
	nets := multiNets(nn.EVFlowNet, nn.HidalgoDepth)
	gpuOnly := multiAssignment(t, nets, platform, "gpu")
	spread := multiAssignment(t, nets, platform, "rrn")

	run := func(asg *taskgraph.Assignment) *MultiTaskReport {
		rep, err := RunMultiTask(MultiTaskConfig{
			Nets: nets, Platform: platform, Assignment: asg,
			Scale: scene.Half, DurUS: 600_000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	piled := run(gpuOnly)
	balanced := run(spread)
	// Spreading the two networks across accelerators must reduce the
	// worst task's latency versus piling both on the GPU... unless the
	// GPU is so fast that queueing never occurs; require no regression
	// beyond noise and that multiple devices actually worked.
	if balanced.MaxMeanLatencyUS > piled.MaxMeanLatencyUS*1.5 {
		t.Fatalf("spreading regressed badly: %f vs %f",
			balanced.MaxMeanLatencyUS, piled.MaxMeanLatencyUS)
	}
	busy := 0
	for _, b := range balanced.DeviceBusyUS {
		if b > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("RR-Network used %d devices", busy)
	}
}

func TestRunMultiTaskNMPAssignment(t *testing.T) {
	platform := hw.Xavier()
	nets := multiNets(nn.DOTIE, nn.EVFlowNet)
	asg := multiAssignment(t, nets, platform, "nmp")
	rep, err := RunMultiTask(MultiTaskConfig{
		Nets: nets, Platform: platform, Assignment: asg,
		Scale: scene.Half, DurUS: 500_000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxMeanLatencyUS <= 0 {
		t.Fatal("degenerate NMP multitask run")
	}
}

func TestRunMultiTaskDeterminism(t *testing.T) {
	platform := hw.Xavier()
	nets := multiNets(nn.DOTIE, nn.DOTIE)
	asg := multiAssignment(t, nets, platform, "rrn")
	run := func() float64 {
		rep, err := RunMultiTask(MultiTaskConfig{
			Nets: nets, Platform: platform, Assignment: asg,
			Scale: scene.Half, DurUS: 300_000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxMeanLatencyUS
	}
	if run() != run() {
		t.Fatal("multi-task run not deterministic")
	}
}
