package pipeline

import (
	"testing"

	"evedge/internal/dsfa"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/quant"
	"evedge/internal/scene"
)

// quickRun executes a short Half-scale run with a small search budget.
func quickRun(t *testing.T, name string, lvl Level) *Report {
	t.Helper()
	ncfg := nmp.DefaultConfig()
	ncfg.Population = 10
	ncfg.Generations = 10
	ncfg.Seed = 3
	rep, err := Run(Config{
		Net:   nn.MustByName(name),
		Level: lvl,
		NMP:   ncfg,
		Scale: scene.Half,
		DurUS: 800_000,
		Seed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPlanSlotCarriesExecutionState: Swap must carry FramingOps and
// Parallel (execution state) into the new plan, and Equal must ignore
// both so no-op remaps aren't counted.
func TestPlanSlotCarriesExecutionState(t *testing.T) {
	a := &ExecPlan{Device: []int{0, 1}, Prec: []nn.Precision{nn.FP16, nn.FP16}}
	s := NewPlanSlot(a)
	s.SetFramingOps(77)
	s.SetParallel(4)
	b := &ExecPlan{Device: []int{1, 0}, Prec: []nn.Precision{nn.FP32, nn.FP16}}
	s.Swap(b)
	if got := s.Load(); got.FramingOps != 77 || got.Parallel != 4 {
		t.Fatalf("swap dropped execution state: framing=%d parallel=%d", got.FramingOps, got.Parallel)
	}
	if s.Parallel() != 4 {
		t.Fatalf("Parallel() = %d, want 4", s.Parallel())
	}
	x := &ExecPlan{Device: []int{0}, Prec: []nn.Precision{nn.FP16}, Parallel: 8, FramingOps: 1}
	y := &ExecPlan{Device: []int{0}, Prec: []nn.Precision{nn.FP16}}
	if !x.Equal(y) {
		t.Fatal("Equal must ignore Parallel and FramingOps")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestLevelStrings(t *testing.T) {
	for _, l := range []Level{LevelBaseline, LevelE2SF, LevelDSFA, LevelNMP} {
		if l.String() == "" {
			t.Fatal("empty level string")
		}
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level string empty")
	}
}

func TestBaselineReportSanity(t *testing.T) {
	rep := quickRun(t, nn.SpikeFlowNet, LevelBaseline)
	if rep.RawFrames == 0 || rep.Invocations != rep.RawFrames {
		t.Fatalf("baseline must run one inference per frame: %d/%d", rep.Invocations, rep.RawFrames)
	}
	if rep.MeanLatencyUS <= 0 || rep.EnergyJ <= 0 || rep.ThroughputFPS <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.MergeRatio != 1 {
		t.Fatalf("baseline merge ratio %f", rep.MergeRatio)
	}
	if rep.AccuracyDelta != 0 {
		t.Fatalf("baseline accuracy delta %f", rep.AccuracyDelta)
	}
	if rep.Accuracy != nn.MustByName(nn.SpikeFlowNet).BaselineAccuracy {
		t.Fatal("baseline accuracy must equal the network baseline")
	}
	if rep.Assignment != nil {
		t.Fatal("baseline must not carry an NMP result")
	}
	if rep.P99LatencyUS < rep.MeanLatencyUS {
		t.Fatal("p99 below mean")
	}
}

func TestE2SFNotSlowerThanBaseline(t *testing.T) {
	base := quickRun(t, nn.SpikeFlowNet, LevelBaseline)
	e2 := quickRun(t, nn.SpikeFlowNet, LevelE2SF)
	if e2.MeanLatencyUS > base.MeanLatencyUS*1.02 {
		t.Fatalf("E2SF (%f) slower than baseline (%f)", e2.MeanLatencyUS, base.MeanLatencyUS)
	}
}

func TestDSFAMergesForFlowAndConservesAccounting(t *testing.T) {
	rep := quickRun(t, nn.SpikeFlowNet, LevelDSFA)
	if rep.MergeRatio < 1 {
		t.Fatalf("merge ratio %f below 1", rep.MergeRatio)
	}
	// Merged execution means fewer invocations than raw frames.
	if rep.MergeRatio > 1.05 && rep.Invocations >= rep.RawFrames {
		t.Fatalf("merging reported (%f) but invocations=%d rawFrames=%d",
			rep.MergeRatio, rep.Invocations, rep.RawFrames)
	}
	// Merging costs accuracy per the quant model.
	if rep.MergeRatio > 1.1 && rep.AccuracyDelta <= 0 {
		t.Fatal("merging must cost accuracy")
	}
}

func TestSegmentationMergingStaysConservative(t *testing.T) {
	rep := quickRun(t, nn.HALSIE, LevelDSFA)
	if rep.MergeRatio > 2.1 {
		t.Fatalf("HALSIE merge ratio %f violates pixel-accuracy tuning", rep.MergeRatio)
	}
}

func TestNMPLevelRespectsAccuracyBudget(t *testing.T) {
	rep := quickRun(t, nn.HidalgoDepth, LevelNMP)
	if rep.Assignment == nil {
		t.Fatal("NMP level must carry the search result")
	}
	budget := quant.Table2Delta(nn.HidalgoDepth)
	if rep.AccuracyDelta > budget*1.05 {
		t.Fatalf("accuracy delta %f exceeds Table 2 budget %f", rep.AccuracyDelta, budget)
	}
	// Error metric: Ev-Edge accuracy must not be better than baseline.
	if rep.Accuracy < nn.MustByName(nn.HidalgoDepth).BaselineAccuracy {
		t.Fatal("quantized accuracy cannot beat the baseline")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := quickRun(t, nn.DOTIE, LevelDSFA)
	b := quickRun(t, nn.DOTIE, LevelDSFA)
	if a.MeanLatencyUS != b.MeanLatencyUS || a.EnergyJ != b.EnergyJ || a.RawFrames != b.RawFrames {
		t.Fatal("pipeline not deterministic under a fixed seed")
	}
}

func TestTunedDSFAPerTask(t *testing.T) {
	seg := TunedDSFA(nn.MustByName(nn.HALSIE))
	if seg.MdTh > 0.1 || seg.MBSize > 2 {
		t.Fatal("segmentation tuning not conservative")
	}
	track := TunedDSFA(nn.MustByName(nn.DOTIE))
	if track.Mode != dsfa.CBatch {
		t.Fatal("tracking should use cBatch")
	}
	flow := TunedDSFA(nn.MustByName(nn.SpikeFlowNet))
	if flow.Mode != dsfa.CAdd || flow.MBSize < 2 {
		t.Fatal("flow tuning wrong")
	}
	for _, cfg := range []dsfa.Config{seg, track, flow} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConvertStreamModes(t *testing.T) {
	// Count framing: frame count tracks activity, not wall time.
	countNet := nn.MustByName(nn.SpikeFlowNet)
	seq, err := scene.NewSequence(scene.IndoorFlying2, scene.Half, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := seq.Generate(600_000)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := ConvertStream(countNet, stream, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	// Count-framed frames hold roughly constant event counts.
	var first, mid float64
	first = frames[0].EventCount()
	mid = frames[len(frames)/2].EventCount()
	ratio := first / mid
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("count framing not stabilizing event counts: %f vs %f", first, mid)
	}

	// Time framing: frame count fixed by window/bins regardless of
	// activity.
	timeNet := nn.MustByName(nn.HALSIE)
	stream2, err := seq.Camera.Run(600_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = stream2
	tframes, _, err := ConvertStream(timeNet, stream, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	// 600ms / 50ms windows x (8 bins / group 2) = 12 x 4 = 48 frames.
	if len(tframes) != 48 {
		t.Fatalf("time framing frames=%d want 48", len(tframes))
	}
}

func TestMedianRate(t *testing.T) {
	seq, err := scene.NewSequence(scene.IndoorFlying3, scene.Half, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := seq.Generate(400_000)
	if err != nil {
		t.Fatal(err)
	}
	r := medianRatePerUS(stream, 400_000)
	if r <= 0 {
		t.Fatalf("median rate %f", r)
	}
	// Roughly consistent with the overall mean for a quiet sequence.
	mean := float64(stream.Len()) / 400_000
	if r > mean*3 || r < mean/3 {
		t.Fatalf("median %f far from mean %f on a quiet stream", r, mean)
	}
}

func TestCustomDSFAConfigHonored(t *testing.T) {
	cfg := dsfa.DefaultConfig()
	cfg.MBSize = 1 // merging disabled
	cfg.EBufSize = 1
	rep, err := Run(Config{
		Net: nn.MustByName(nn.SpikeFlowNet), Level: LevelDSFA,
		DSFA:  cfg,
		Scale: scene.Half, DurUS: 500_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MergeRatio != 1 {
		t.Fatalf("MBSize=1 must disable merging, got %f", rep.MergeRatio)
	}
}
