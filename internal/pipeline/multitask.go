package pipeline

import (
	"fmt"
	"math"
	"sort"

	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/scene"
	"evedge/internal/sched"
	"evedge/internal/sparse"
	"evedge/internal/taskgraph"
)

// MultiTaskConfig describes a streaming run of several concurrently
// executing networks sharing one platform — the deployment scenario of
// the paper's Sec. 6 multi-task evaluation, but with live frame
// streams instead of a single static schedule.
type MultiTaskConfig struct {
	Nets     []*nn.Network
	Platform *hw.Platform
	// Assignment maps every layer to a device and precision (from the
	// Network Mapper or a round-robin baseline).
	Assignment *taskgraph.Assignment
	Scale      scene.Scale
	DurUS      int64
	Seed       int64
	// Streams optionally overrides the per-task scene generation.
	Streams []*events.Stream
}

// TaskReport summarizes one task of a multi-task run.
type TaskReport struct {
	Network       string
	RawFrames     int
	MeanLatencyUS float64
	P99LatencyUS  float64
}

// MultiTaskReport summarizes a streaming multi-task run.
type MultiTaskReport struct {
	Tasks      []TaskReport
	MakespanUS float64
	EnergyJ    float64
	// MaxMeanLatencyUS is the slowest task's mean latency — the
	// streaming analogue of the Eq. 2 objective.
	MaxMeanLatencyUS float64
	// DeviceBusyUS records per-device busy time.
	DeviceBusyUS map[string]float64
}

// invocationJob is one task's inference becoming ready at a known time.
type invocationJob struct {
	task    int
	frame   *sparse.Frame
	readyUS float64
}

// RunMultiTask streams every task's frames through the shared platform
// under the given assignment. Each frame triggers one inference whose
// layers execute on their assigned devices through per-device FIFO
// queues (Eq. 3 semantics, now with cross-task contention): tasks
// interleave wherever their layers land on different devices and queue
// behind each other wherever they collide.
func RunMultiTask(cfg MultiTaskConfig) (*MultiTaskReport, error) {
	if len(cfg.Nets) == 0 {
		return nil, fmt.Errorf("pipeline: no networks")
	}
	if cfg.Platform == nil {
		cfg.Platform = hw.Xavier()
	}
	if cfg.DurUS <= 0 {
		cfg.DurUS = 1_000_000
	}
	if cfg.Assignment == nil {
		return nil, fmt.Errorf("pipeline: no assignment")
	}
	if err := cfg.Assignment.Validate(cfg.Nets, cfg.Platform); err != nil {
		return nil, err
	}
	if cfg.Streams != nil && len(cfg.Streams) != len(cfg.Nets) {
		return nil, fmt.Errorf("pipeline: %d streams for %d networks", len(cfg.Streams), len(cfg.Nets))
	}

	model := perf.NewModel(cfg.Platform)
	// Convert every task's stream into timed frames.
	var jobs []invocationJob
	rep := &MultiTaskReport{
		Tasks:        make([]TaskReport, len(cfg.Nets)),
		DeviceBusyUS: map[string]float64{},
	}
	for t, net := range cfg.Nets {
		stream := (*events.Stream)(nil)
		if cfg.Streams != nil {
			stream = cfg.Streams[t]
		}
		if stream == nil {
			seq, err := scene.NewSequence(net.Input.Preset, cfg.Scale, cfg.Seed+int64(t))
			if err != nil {
				return nil, err
			}
			stream, err = seq.Generate(cfg.DurUS)
			if err != nil {
				return nil, err
			}
		}
		frames, _, err := ConvertStream(net, stream, cfg.DurUS)
		if err != nil {
			return nil, fmt.Errorf("pipeline: task %d (%s): %w", t, net.Name, err)
		}
		rep.Tasks[t].Network = net.Name
		rep.Tasks[t].RawFrames = len(frames)
		for _, f := range frames {
			jobs = append(jobs, invocationJob{task: t, frame: f, readyUS: float64(f.T1)})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].readyUS < jobs[j].readyUS })

	engine := hw.NewEngine(cfg.Platform, false)
	plans := make([]*ExecPlan, len(cfg.Nets))
	for t := range cfg.Nets {
		p, err := PlanFromAssignment(cfg.Assignment, t, true)
		if err != nil {
			return nil, err
		}
		plans[t] = p
	}
	// The offline runner routes through the execution scheduler like
	// every other engine consumer, in virtual mode with MaxBatch 1:
	// dispatch order is exactly submission order (ready-time sorted), so
	// the report matches the paper's one-inference-per-frame schedule
	// while the lock-the-engine path stays dead.
	latencies := make([][]float64, len(cfg.Nets))
	runner, err := sched.New(sched.Config{
		Virtual:  true,
		MaxBatch: 1,
		Dispatch: func(batch []*sched.Request) float64 {
			job := batch[0].Payload.(invocationJob)
			net := cfg.Nets[job.task]
			inv := &Invocation{
				Frames:  []*sparse.Frame{job.frame},
				ReadyUS: job.readyUS,
				Raw:     1,
				PerRaw:  []RawRef{{job.readyUS, 1}},
			}
			return ScheduleOnEngine(engine, model, net, plans[job.task], inv, net.Name)
		},
	})
	if err != nil {
		return nil, err
	}
	for _, job := range jobs {
		job := job
		runner.Submit(&sched.Request{
			Session: cfg.Nets[job.task].Name,
			Key:     sched.Key{Device: plans[job.task].Device[0], Net: cfg.Nets[job.task].Name},
			Units:   1,
			Payload: job,
			Done: func(end float64) {
				latencies[job.task] = append(latencies[job.task], end-job.readyUS)
			},
		})
	}
	runner.Drain()

	var makespan float64
	for t := range cfg.Nets {
		ls := latencies[t]
		sort.Float64s(ls)
		var sum float64
		for _, l := range ls {
			sum += l
		}
		if len(ls) > 0 {
			rep.Tasks[t].MeanLatencyUS = sum / float64(len(ls))
			rep.Tasks[t].P99LatencyUS = ls[int(float64(len(ls))*0.99)]
		}
		if rep.Tasks[t].MeanLatencyUS > rep.MaxMeanLatencyUS {
			rep.MaxMeanLatencyUS = rep.Tasks[t].MeanLatencyUS
		}
	}
	makespan = engine.Makespan()
	if um := engine.UMBusyUntil(); um > makespan {
		makespan = um
	}
	horizon := math.Max(makespan, float64(cfg.DurUS))
	rep.MakespanUS = makespan
	rep.EnergyJ = engine.EnergyJoules(horizon)
	for _, d := range cfg.Platform.Devices {
		rep.DeviceBusyUS[d.Name] = engine.BusyTime(d)
	}
	return rep, nil
}
