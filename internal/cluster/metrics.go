package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"evedge/internal/serve"
)

// NodeHealth is one fleet member's view in /healthz.
type NodeHealth struct {
	Name           string         `json:"name"`
	Platform       string         `json:"platform"`
	State          string         `json:"state"` // up | draining | dead
	SessionsActive int            `json:"sessions_active"`
	SessionsTotal  int            `json:"sessions_total"`
	Workers        int            `json:"workers"`
	Load           serve.NodeLoad `json:"load"`
}

// Health is the cluster /healthz payload. Its top-level fields mirror
// the single-node serve.Health JSON (status, uptime_s, sessions_*,
// workers, platform, mapper) so single-node clients keep decoding it;
// the fleet detail rides alongside.
type Health struct {
	Status         string  `json:"status"` // ok | degraded | down
	UptimeS        float64 `json:"uptime_s"`
	SessionsActive int     `json:"sessions_active"`
	SessionsTotal  int     `json:"sessions_total"`
	Workers        int     `json:"workers"`
	Platform       string  `json:"platform"`
	Mapper         string  `json:"mapper"`

	Policy             string `json:"policy"`
	NodesUp            int    `json:"nodes_up"`
	NodesTotal         int    `json:"nodes_total"`
	FailoverSessions   uint64 `json:"failover_sessions"`
	FailoverShedFrames uint64 `json:"failover_shed_frames"`
	LostSessions       uint64 `json:"lost_sessions"`
	// RebalanceMigrations counts load-driven session moves (the
	// signal-triggered migrations, not kill/drain failovers).
	RebalanceMigrations uint64       `json:"rebalance_migrations"`
	Nodes               []NodeHealth `json:"nodes"`
}

// Health reports fleet and per-node state.
func (c *Cluster) Health() Health {
	h := Health{
		UptimeS:    time.Since(c.start).Seconds(),
		Platform:   c.fleetName(),
		Mapper:     string(c.cfg.Node.Mapper),
		Policy:     string(c.cfg.Policy),
		NodesTotal: len(c.nodes),

		SessionsTotal:       int(c.nextID.Load()),
		FailoverSessions:    c.failoverSessions.Load(),
		FailoverShedFrames:  c.failoverShed.Load(),
		LostSessions:        c.lostSessions.Load(),
		RebalanceMigrations: c.migrations.Load(),
	}
	if h.Mapper == "" {
		h.Mapper = string(serve.MapperRR)
	}
	perNode := c.sessionsOn()
	for _, n := range c.nodes {
		nh := NodeHealth{
			Name:           n.name,
			Platform:       n.platform,
			State:          n.stateName(),
			SessionsActive: perNode[n.name],
		}
		sh := n.server().Health()
		nh.SessionsTotal = sh.SessionsTotal
		nh.Workers = sh.Workers
		nh.Load = n.server().Load()
		if n.alive() {
			h.NodesUp++
			h.Workers += nh.Workers
			h.SessionsActive += nh.SessionsActive
		}
		h.Nodes = append(h.Nodes, nh)
	}
	switch {
	case h.NodesUp == 0:
		h.Status = "down"
	case h.NodesUp < len(c.nodes):
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// fleetName summarizes the fleet composition, e.g.
// "fleet(xavier x2, orin x2)".
func (c *Cluster) fleetName() string {
	counts := map[string]int{}
	var order []string
	for _, n := range c.nodes {
		if counts[n.platform] == 0 {
			order = append(order, n.platform)
		}
		counts[n.platform]++
	}
	parts := make([]string, len(order))
	for i, p := range order {
		parts[i] = fmt.Sprintf("%s x%d", p, counts[p])
	}
	return "fleet(" + strings.Join(parts, ", ") + ")"
}

// handleMetrics renders fleet totals, per-node gauges, and every
// node's own series (scoped by a node label) in one scrape.
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pw := serve.NewPromWriter()
	h := c.Health()
	pw.Gauge("evcluster_uptime_seconds", "Cluster router uptime.", "", h.UptimeS)
	pw.Gauge("evcluster_nodes", "Configured fleet size.", "", float64(h.NodesTotal))
	pw.Gauge("evcluster_nodes_up", "Nodes accepting sessions.", "", float64(h.NodesUp))
	pw.Gauge("evcluster_sessions_active", "Open sessions routed across the fleet.", "", float64(h.SessionsActive))
	pw.Gauge("evcluster_sessions_total", "Sessions created since start (fleet-wide IDs).", "", float64(h.SessionsTotal))
	pw.Counter("evcluster_failover_sessions_total", "Sessions re-created on a surviving node.", "", float64(h.FailoverSessions))
	pw.Counter("evcluster_failover_shed_frames_total", "Queued frames lost to node failures.", "", float64(h.FailoverShedFrames))
	pw.Counter("evcluster_sessions_lost_total", "Sessions lost because no node survived.", "", float64(h.LostSessions))
	pw.Counter("evcluster_rebalance_migrations_total", "Load-driven session migrations.", "", float64(h.RebalanceMigrations))

	// Fleet totals from every node's monotonic roll-up, dead nodes and
	// retired incarnations included: closed sessions are folded in at
	// close time, so the counters do not depend on closed-session
	// retention, the in-process corpse of a killed node carries exactly
	// the last-seen totals a real router would have cached before
	// losing the scrape, and a revive retires that corpse instead of
	// zeroing its contribution.
	var events, frames, dropped, invocs, rawDone, retunes, remaps float64
	for i, n := range c.nodes {
		nh := h.Nodes[i]
		lbl := serve.PromLabels("node", n.name, "platform", n.platform)
		up := 0.0
		if n.alive() {
			up = 1
		}
		pw.Gauge("evcluster_node_up", "1 when the node accepts sessions.", lbl, up)
		pw.Gauge("evcluster_node_sessions_active", "Open routed sessions on the node.", lbl, float64(nh.SessionsActive))
		pw.Gauge("evcluster_node_utilization", "Capacity-weighted active-session cost.", lbl, nh.Load.Utilization)
		pw.Gauge("evcluster_node_queued_frames", "Frames waiting in the node's ingest queues.", lbl, float64(nh.Load.QueuedFrames))
		pw.Gauge("evcluster_node_capacity_macs", "Aggregate peak MAC rate of the node.", lbl, nh.Load.CapacityMACs)
		pw.Gauge("evcluster_node_pending_invocations", "Invocations waiting in the node's scheduler run queues.", lbl, float64(nh.Load.PendingInvocations))
		pw.Gauge("evcluster_node_backlog_us", "Deepest device queue relative to the idlest on the node (virtual us).", lbl, nh.Load.BacklogUS)
		var nt serve.SessionTotals
		for _, srv := range n.incarnations() {
			nt.Merge(srv.Totals())
		}
		events += float64(nt.EventsIn)
		frames += float64(nt.FramesIn)
		dropped += float64(nt.FramesDropped)
		invocs += float64(nt.Invocations)
		rawDone += float64(nt.RawFramesDone)
		retunes += float64(nt.Retunes)
		remaps += float64(nt.Remaps)
	}
	pw.Counter("evcluster_events_total", "Events ingested across the fleet.", "", events)
	pw.Counter("evcluster_frames_total", "Sparse frames produced across the fleet.", "", frames)
	pw.Counter("evcluster_frames_dropped_total", "Frames shed by ingest queues across the fleet.", "", dropped)
	pw.Counter("evcluster_invocations_total", "Inference launches across the fleet.", "", invocs)
	pw.Counter("evcluster_raw_frames_done_total", "Raw frames completed across the fleet.", "", rawDone)
	pw.Counter("evcluster_retunes_total", "DSFA retunes applied across the fleet.", "", retunes)
	pw.Counter("evcluster_remaps_total", "Execution plans installed after the first across the fleet.", "", remaps)

	// Fleet-wide execution-scheduler roll-up: how much cross-session
	// work the per-node schedulers coalesced into micro-batches.
	st := c.SchedTotals()
	pw.Counter("evcluster_sched_submitted_total", "Invocations submitted to node schedulers across the fleet.", "", float64(st.Submitted))
	pw.Counter("evcluster_sched_dispatches_total", "Micro-batches dispatched across the fleet.", "", float64(st.Dispatches))
	pw.Counter("evcluster_sched_coalesced_total", "Invocations that rode multi-member micro-batches across the fleet.", "", float64(st.Coalesced))
	pw.Gauge("evcluster_sched_batch_occupancy", "Mean invocations per dispatch across the fleet (1 = serialized).", "", st.Occupancy())

	// Every alive node's own series, scoped by node.
	for _, n := range c.nodes {
		if n.state.Load() == stateDead {
			continue
		}
		n.server().WriteMetrics(pw, "evserve", serve.PromLabels("node", n.name))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(pw.String()))
}
