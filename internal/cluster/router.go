package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"evedge/internal/serve"
)

// Handler returns the router's HTTP handler. It speaks the exact
// session API of a single serve node (so serve.Client and evload work
// unchanged) plus fleet-admin endpoints:
//
//	POST   /v1/sessions               create (placed by policy)
//	GET    /v1/sessions[/{id}]        fleet-wide session listing/state
//	POST   /v1/sessions/{id}/events   proxied ingest
//	GET    /v1/sessions/{id}/stream   proxied SSE result stream
//	POST   /v1/sessions/{id}/close    proxied close (DELETE too)
//	GET    /healthz                   fleet + per-node health
//	GET    /metrics                   fleet + per-node Prometheus text
//	GET    /v1/nodes                  node health list
//	POST   /v1/nodes/{name}/kill      simulate a node failure
//	POST   /v1/nodes/{name}/drain     graceful drain + migration
//	POST   /v1/nodes/{name}/revive    restart a killed node (fresh server)
//	POST   /v1/nodes/{name}/undrain   return a draining node to service
func (c *Cluster) Handler() http.Handler {
	c.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/sessions", c.handleCreate)
		mux.HandleFunc("GET /v1/sessions", c.handleList)
		mux.HandleFunc("GET /v1/sessions/{id}", c.handleGet)
		mux.HandleFunc("POST /v1/sessions/{id}/events", c.handleIngest)
		mux.HandleFunc("GET /v1/sessions/{id}/stream", c.handleStream)
		mux.HandleFunc("POST /v1/sessions/{id}/close", c.handleClose)
		mux.HandleFunc("DELETE /v1/sessions/{id}", c.handleClose)
		mux.HandleFunc("GET /healthz", c.handleHealth)
		mux.HandleFunc("GET /metrics", c.handleMetrics)
		mux.HandleFunc("GET /v1/trace", c.handleTrace)
		mux.HandleFunc("GET /v1/nodes", c.handleNodes)
		mux.HandleFunc("POST /v1/nodes/{name}/kill", c.handleKill)
		mux.HandleFunc("POST /v1/nodes/{name}/drain", c.handleDrain)
		mux.HandleFunc("POST /v1/nodes/{name}/revive", c.handleRevive)
		mux.HandleFunc("POST /v1/nodes/{name}/undrain", c.handleUndrain)
		c.mux = mux
	})
	return c.mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps proxy errors onto the same statuses a single node
// uses: unknown session 404, everything else a conflict.
func errStatus(err error) int {
	if errors.Is(err, serve.ErrNoSession) {
		return http.StatusNotFound
	}
	return http.StatusConflict
}

func (c *Cluster) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg serve.SessionConfig
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding session config: %w", err))
		return
	}
	snap, err := c.CreateSession(cfg)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, serve.ErrDraining) || errors.Is(err, ErrNoNodes) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, snap)
}

func (c *Cluster) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Snapshots())
}

func (c *Cluster) handleGet(w http.ResponseWriter, r *http.Request) {
	snap, err := c.Snapshot(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (c *Cluster) handleIngest(w http.ResponseWriter, r *http.Request) {
	maxBody := c.cfg.Node.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	body := http.MaxBytesReader(w, r.Body, maxBody)
	chunk, err := serve.DecodeChunk(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := c.Ingest(r.PathValue("id"), chunk)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleStream proxies the SSE result stream to the session's current
// owner. A failover mid-stream drops the connection; the client
// reconnects with since=<last seq> and the resumed session's journal
// (re-seeded from the replicated log) serves the catch-up.
func (c *Cluster) handleStream(w http.ResponseWriter, r *http.Request) {
	n, localID, _, err := c.endpoint(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	n.server().ServeStream(w, r, localID)
}

func (c *Cluster) handleClose(w http.ResponseWriter, r *http.Request) {
	snap, err := c.CloseSession(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (c *Cluster) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

// handleTrace serves the fleet's merged Chrome trace: every node
// incarnation's lifecycle lanes plus the router's fleet track, one
// process group per node.
func (c *Cluster) handleTrace(w http.ResponseWriter, r *http.Request) {
	if c.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: tracing disabled (set Node.Trace.Enabled)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = c.WriteTrace(w)
}

func (c *Cluster) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health().Nodes)
}

func (c *Cluster) handleKill(w http.ResponseWriter, r *http.Request) {
	if err := c.KillNode(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// Fail the sessions over right away rather than waiting one probe
	// interval — the admin asked for the failure, make it observable.
	c.ProbeNow()
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Cluster) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := c.DrainNode(r.PathValue("name")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Cluster) handleRevive(w http.ResponseWriter, r *http.Request) {
	if err := c.ReviveNode(r.PathValue("name")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Cluster) handleUndrain(w http.ResponseWriter, r *http.Request) {
	if err := c.UndrainNode(r.PathValue("name")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Health())
}
