package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/scene"
	"evedge/internal/serve"
)

// genStream renders a preset sequence at half scale.
func genStream(t *testing.T, p scene.Preset, seed, durUS int64) *events.Stream {
	t.Helper()
	seq, err := scene.NewSequence(p, scene.Half, seed)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	s, err := seq.Generate(durUS)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

// chunks splits a stream into consecutive chunkUS-long pieces.
func chunks(s *events.Stream, durUS, chunkUS int64) []*events.Stream {
	var out []*events.Stream
	for t0 := int64(0); t0 < durUS; t0 += chunkUS {
		out = append(out, s.Slice(t0, t0+chunkUS))
	}
	return out
}

// testCluster bundles the in-process fleet, a single-node client
// pointed at the router, and the listener base URL.
type testCluster struct {
	c    *Cluster
	cl   *serve.Client
	base string
}

// newTestCluster builds a cluster with the probe loop disabled (tests
// drive ProbeNow explicitly) behind an httptest server + serve client.
func newTestCluster(t *testing.T, cfg Config) (*Cluster, *serve.Client, func()) {
	t.Helper()
	tc, stop := newTestClusterURL(t, cfg)
	return tc.c, tc.cl, stop
}

func newTestClusterURL(t *testing.T, cfg Config) (testCluster, func()) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(c.Handler())
	cl := serve.NewClient(hs.URL, hs.Client())
	return testCluster{c: c, cl: cl, base: hs.URL}, func() {
		hs.Close()
		c.Close()
	}
}

func specs(t *testing.T, s string) []NodeSpec {
	t.Helper()
	out, err := ParseNodeSpecs(s)
	if err != nil {
		t.Fatalf("ParseNodeSpecs(%q): %v", s, err)
	}
	return out
}

func TestParseNodeSpecs(t *testing.T) {
	got := specs(t, "xavier:2,orin:1")
	if len(got) != 3 || got[0].Platform != "xavier" || got[2].Platform != "orin" {
		t.Fatalf("specs = %+v", got)
	}
	if one := specs(t, "orin"); len(one) != 1 || one[0].Platform != "orin" {
		t.Fatalf("single spec = %+v", one)
	}
	for _, bad := range []string{"", "xavier:0", "xavier:-1", "xavier:x", "tpu:2", ", ,"} {
		if _, err := ParseNodeSpecs(bad); err == nil {
			t.Fatalf("ParseNodeSpecs(%q) accepted", bad)
		}
	}
}

func TestParsePlacementPolicy(t *testing.T) {
	for in, want := range map[string]PlacementPolicy{
		"": PolicyLeastLoaded, "least-loaded": PolicyLeastLoaded, "ll": PolicyLeastLoaded,
		"hash": PolicyHash,
	} {
		got, err := ParsePlacementPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePlacementPolicy(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParsePlacementPolicy("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestHashPlacementDeterministic checks the hash policy maps the same
// session IDs to the same nodes on two identical fleets.
func TestHashPlacementDeterministic(t *testing.T) {
	build := func() map[string]string {
		c, _, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:3"), Policy: PolicyHash})
		defer stop()
		placed := map[string]string{}
		for i := 0; i < 6; i++ {
			snap, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
			if err != nil {
				t.Fatalf("CreateSession: %v", err)
			}
			placed[snap.ID] = snap.Node
		}
		return placed
	}
	a, b := build(), build()
	for id, node := range a {
		if b[id] != node {
			t.Fatalf("hash placement differs for %s: %s vs %s", id, node, b[id])
		}
	}
}

// TestLeastLoadedSpreads checks equal-cost sessions split evenly over
// identical nodes, and that a higher-capacity Orin absorbs at least as
// many sessions as a Xavier.
func TestLeastLoadedSpreads(t *testing.T) {
	c, _, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()
	for i := 0; i < 4; i++ {
		if _, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
	}
	per := c.sessionsOn()
	if per["xavier0"] != 2 || per["xavier1"] != 2 {
		t.Fatalf("least-loaded split = %v, want 2/2", per)
	}

	mixed, _, stop2 := newTestCluster(t, Config{Nodes: specs(t, "xavier:1,orin:1")})
	defer stop2()
	for i := 0; i < 6; i++ {
		if _, err := mixed.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
	}
	per = mixed.sessionsOn()
	if per["orin1"] < per["xavier0"] {
		t.Fatalf("orin (bigger) got %d sessions, xavier %d", per["orin1"], per["xavier0"])
	}
	if per["xavier0"] == 0 {
		t.Fatalf("least-loaded starved the xavier node: %v", per)
	}
}

// TestClusterLifecycleHTTP drives the full session lifecycle through
// the router with the unchanged single-node serve.Client.
func TestClusterLifecycleHTTP(t *testing.T) {
	_, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()

	h, err := cl.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if !strings.HasPrefix(snap.ID, "c") || snap.Node == "" {
		t.Fatalf("create snapshot lacks fleet ID/node: %+v", snap)
	}

	const dur = 150_000
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 11, dur)
	sent := 0
	for _, ch := range chunks(stream, dur, 25_000) {
		res, err := cl.SendEvents(snap.ID, ch)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		sent += res.Events
	}

	mid, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if mid.EventsIn != uint64(sent) || mid.Node != snap.Node || mid.ID != snap.ID {
		t.Fatalf("mid snapshot: %+v", mid)
	}

	list, err := cl.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(list) != 1 || list[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}

	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.State != "closed" || fin.RawFramesDone == 0 || fin.Latency.P99US <= 0 {
		t.Fatalf("final snapshot: %+v", fin)
	}
	// Ingest into a closed session fails; unknown sessions 404.
	if _, err := cl.SendEvents(snap.ID, stream.Slice(0, 1000)); err == nil {
		t.Fatal("ingest into closed session succeeded")
	}
	if _, err := cl.Session("c999"); err == nil {
		t.Fatal("unknown session found")
	}
}

// metricValue extracts the first value of an unlabelled metric sample.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// sumLabelled sums all samples of a labelled metric.
func sumLabelled(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} ([0-9.e+-]+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s value %q: %v", name, m[1], err)
		}
		sum += v
	}
	return sum
}

// TestClusterFailover is the acceptance scenario: a mixed xavier+orin
// fleet under load from 8 sessions loses a node mid-stream; the
// surviving nodes adopt its sessions, streaming completes, and the
// fleet metrics stay consistent.
func TestClusterFailover(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2,orin:1")})
	defer stop()

	const nSessions = 8
	const dur = 160_000
	nets := []string{nn.DOTIE, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth}
	ids := make([]string, nSessions)
	streams := make([]*events.Stream, nSessions)
	for i := 0; i < nSessions; i++ {
		name := nets[i%len(nets)]
		snap, err := cl.CreateSession(serve.SessionConfig{Network: name, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession %d: %v", i, err)
		}
		ids[i] = snap.ID
		streams[i] = genStream(t, nn.MustByName(name).Input.Preset, int64(30+i), dur)
	}
	per := c.sessionsOn()
	if len(per) < 2 {
		t.Fatalf("sessions all landed on one node: %v", per)
	}

	// Stream the first half everywhere.
	all := make([][]*events.Stream, nSessions)
	for i := range ids {
		all[i] = chunks(streams[i], dur, 20_000)
	}
	half := len(all[0]) / 2
	stream := func(i int, from, to int) error {
		for _, ch := range all[i][from:to] {
			if _, err := cl.SendEvents(ids[i], ch); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- stream(i, 0, half)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("first half: %v", err)
		}
	}

	// Counter baseline before the kill: fleet totals must never step
	// backwards across a failover.
	preText, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics before kill: %v", err)
	}
	preEvents := metricValue(t, preText, "evcluster_events_total")

	// Kill a node that owns sessions, mid-load.
	victim := ""
	for name, n := range c.sessionsOn() {
		if n > 0 {
			victim = name
			break
		}
	}
	victimSessions := c.sessionsOn()[victim]
	if err := c.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	// Every session must now live on a surviving node.
	for _, id := range ids {
		snap, err := cl.Session(id)
		if err != nil {
			t.Fatalf("Session %s after failover: %v", id, err)
		}
		if snap.Node == victim {
			t.Fatalf("session %s still routed to dead node %s", id, victim)
		}
		if snap.State != "active" {
			t.Fatalf("session %s not active after failover: %+v", id, snap)
		}
	}
	h := c.Health()
	if h.Status != "degraded" || h.NodesUp != 2 {
		t.Fatalf("health after kill: %+v", h)
	}
	if h.FailoverSessions != uint64(victimSessions) {
		t.Fatalf("failover count %d, want %d", h.FailoverSessions, victimSessions)
	}

	// Second half streams against the survivors; failed-over sessions
	// restart their converters, so chunks keep flowing under the same
	// fleet-wide IDs.
	errs = make(chan error, nSessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- stream(i, half, len(all[i]))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("second half: %v", err)
		}
	}

	for _, id := range ids {
		fin, err := cl.CloseSession(id)
		if err != nil {
			t.Fatalf("CloseSession %s: %v", id, err)
		}
		if fin.State != "closed" {
			t.Fatalf("session %s final state %q", id, fin.State)
		}
	}

	// Fleet metrics consistency: router session gauges agree with the
	// per-node breakdown, and failover counters surfaced.
	text, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if got := metricValue(t, text, "evcluster_sessions_active"); got != 0 {
		t.Fatalf("sessions_active = %v after closing all", got)
	}
	if got := metricValue(t, text, "evcluster_sessions_total"); got != nSessions {
		t.Fatalf("sessions_total = %v, want %d", got, nSessions)
	}
	if got := metricValue(t, text, "evcluster_failover_sessions_total"); got != float64(victimSessions) {
		t.Fatalf("failover_sessions_total = %v, want %d", got, victimSessions)
	}
	if got, fleet := sumLabelled(t, text, "evcluster_node_sessions_active"),
		metricValue(t, text, "evcluster_sessions_active"); got != fleet {
		t.Fatalf("node sessions sum %v != fleet %v", got, fleet)
	}
	// Counters stay monotonic across the failover: the dead node's
	// last-seen totals remain in the fleet sum.
	if got := metricValue(t, text, "evcluster_events_total"); got < preEvents {
		t.Fatalf("events_total went backwards: %v < %v", got, preEvents)
	}
	if up := metricValue(t, text, "evcluster_nodes_up"); up != 2 {
		t.Fatalf("nodes_up = %v", up)
	}
}

// TestDrainMigratesGracefully drains a node and checks its sessions
// move without shedding queued frames, while new sessions avoid it.
func TestDrainMigratesGracefully(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()

	var ids []string
	for i := 0; i < 4; i++ {
		snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, snap.ID)
	}
	if err := c.DrainNode("xavier0"); err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if err := c.DrainNode("xavier0"); err == nil {
		t.Fatal("double drain accepted")
	}
	h := c.Health()
	if h.FailoverShedFrames != 0 {
		t.Fatalf("graceful drain shed %d frames", h.FailoverShedFrames)
	}
	for _, id := range ids {
		snap, err := cl.Session(id)
		if err != nil {
			t.Fatalf("Session %s: %v", id, err)
		}
		if snap.Node != "xavier1" {
			t.Fatalf("session %s on %s after drain", id, snap.Node)
		}
	}
	// New sessions skip the draining node.
	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession after drain: %v", err)
	}
	if snap.Node != "xavier1" {
		t.Fatalf("new session placed on draining node %s", snap.Node)
	}
}

// TestFailoverShedsQueuedFrames checks the un-journaled kill path
// counts queued frames as shed, and that the corpse itself refuses
// work: a dead server rejects ingest (ErrServerClosed) instead of
// black-holing frames nobody will ever drain, and its scheduler
// backlog drains to empty before the failover runs.
func TestFailoverShedsQueuedFrames(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 1024
	cfg.Node.ManualDrain = true // nothing drains: ingest stays queued
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner, localID := rt.node, rt.localID
	c.mu.Unlock()

	// Queue a burst before the kill; under ManualDrain it stays queued.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 3, 100_000)
	res, err := cl.SendEvents(snap.ID, stream)
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if res.QueueLen == 0 {
		t.Fatal("nothing queued; test needs a burst that frames")
	}
	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// Kill-path ownership fix: the corpse rejects ingest — the window
	// where a request lands between the kill and the probe surfaces an
	// error the router can retry, instead of vanishing frames.
	if _, err := owner.server().Ingest(localID, stream.Slice(0, 10_000)); !errors.Is(err, serve.ErrServerClosed) {
		t.Fatalf("ingest onto dead node: err = %v, want ErrServerClosed", err)
	}
	// Close waited out the workers, so the corpse's in-flight set is
	// empty: no scheduler backlog survives node death.
	st := owner.server().SchedStats()
	if st.Submitted != st.Dispatched {
		t.Fatalf("dead node still has %d in-flight invocations", st.Submitted-st.Dispatched)
	}
	if pend := owner.server().Load().PendingInvocations; pend != 0 {
		t.Fatalf("dead node still has %d pending invocations", pend)
	}

	c.ProbeNow()
	h := c.Health()
	if h.FailoverSessions != 1 {
		t.Fatalf("failover sessions = %d", h.FailoverSessions)
	}
	if h.FailoverShedFrames < uint64(res.QueueLen) {
		t.Fatalf("shed %d frames, want >= %d", h.FailoverShedFrames, res.QueueLen)
	}
	if h.FailoverRecoveredFrames != 0 {
		t.Fatalf("recovered %d frames with journaling off", h.FailoverRecoveredFrames)
	}
	// The fleet-wide ID keeps working on the survivor.
	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session after failover: %v", err)
	}
	if got.Node == owner.name || got.State != "active" {
		t.Fatalf("session after failover: %+v", got)
	}
	// Per-session failover accounting rides on the snapshot.
	if got.Failovers != 1 || got.FailoverShedFrames < uint64(res.QueueLen) {
		t.Fatalf("per-session failover accounting: %+v", got)
	}
	if _, err := cl.SendEvents(snap.ID, stream.Slice(0, 50_000)); err != nil {
		t.Fatalf("SendEvents after failover: %v", err)
	}
}

// TestJournalFailoverRecoversQueuedFrames is the tentpole contract:
// with journaling on, every ingested chunk is replicated to the
// owner's buddy, so a kill with a queued backlog resumes the session
// by replaying the journal — zero shed, queued frames recovered.
func TestJournalFailoverRecoversQueuedFrames(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	owner := c.routes[snap.ID].node
	c.mu.Unlock()

	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 7, 150_000)
	var queued uint64
	for _, ch := range chunks(stream.Slice(0, 120_000), 120_000, 30_000) {
		res, err := cl.SendEvents(snap.ID, ch)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		if res.Seq == 0 {
			t.Fatalf("journaled ingest returned seq 0: %+v", res)
		}
		queued = uint64(res.QueueLen)
	}
	if queued == 0 {
		t.Fatal("nothing queued before the kill")
	}
	// The buddy holds a replica log for the session.
	if sessions, entries := c.buddyFor(owner).server().ReplicaStats(); sessions != 1 || entries == 0 {
		t.Fatalf("buddy replica store: %d sessions, %d entries", sessions, entries)
	}

	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	h := c.Health()
	if h.FailoverSessions != 1 {
		t.Fatalf("failover sessions = %d", h.FailoverSessions)
	}
	if h.FailoverShedFrames != 0 {
		t.Fatalf("journaled failover shed %d frames, want 0", h.FailoverShedFrames)
	}
	if h.FailoverRecoveredFrames < queued {
		t.Fatalf("recovered %d frames, want >= %d queued", h.FailoverRecoveredFrames, queued)
	}
	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session after failover: %v", err)
	}
	if got.Node == owner.name || got.State != "active" {
		t.Fatalf("session after failover: %+v", got)
	}
	if got.FailoverShedFrames != 0 || got.FailoverRecoveredFrames < queued {
		t.Fatalf("per-session recovery accounting: %+v", got)
	}

	// The resumed session keeps working: drain it and close cleanly.
	if _, err := cl.SendEvents(snap.ID, stream.Slice(120_000, 150_000)); err != nil {
		t.Fatalf("SendEvents after failover: %v", err)
	}
	c.Pump()
	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.State != "closed" || fin.RawFramesDone == 0 {
		t.Fatalf("final snapshot: %+v", fin)
	}
}

// TestFailoverCountersSurviveClose pins the counter-fold fix: closing
// a failed-over session must not drop its failover/shed/recovered
// contribution from the fleet totals — evcluster_failover_*_total
// stays monotonic across session close.
func TestFailoverCountersSurviveClose(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 1024
	cfg.Node.ManualDrain = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 9, 80_000)
	if _, err := cl.SendEvents(snap.ID, stream); err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	c.mu.Lock()
	owner := c.routes[snap.ID].node
	c.mu.Unlock()
	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	pre, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	preSessions := metricValue(t, pre, "evcluster_failover_sessions_total")
	preShed := metricValue(t, pre, "evcluster_failover_shed_frames_total")
	if preSessions != 1 || preShed == 0 {
		t.Fatalf("pre-close failover counters: sessions=%v shed=%v", preSessions, preShed)
	}

	c.Pump()
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}

	post, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics after close: %v", err)
	}
	if got := metricValue(t, post, "evcluster_failover_sessions_total"); got != preSessions {
		t.Fatalf("failover_sessions_total moved across close: %v -> %v", preSessions, got)
	}
	if got := metricValue(t, post, "evcluster_failover_shed_frames_total"); got != preShed {
		t.Fatalf("failover_shed_frames_total moved across close: %v -> %v", preShed, got)
	}
	if got := metricValue(t, post, "evcluster_failover_recovered_frames_total"); got != 0 {
		t.Fatalf("recovered counter nonzero with journaling off: %v", got)
	}
}

// TestJournalReplayNoCrossArenaRelease regression-tests the frame
// ownership rule across failover: the corpse's frozen queue frames
// belong to the dead arena and must never be recycled by the new
// owner. Replay re-ingests fresh copies on the survivor; pumping and
// closing everything must leave both arenas' pools balanced.
func TestJournalReplayNoCrossArenaRelease(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	owner := c.routes[snap.ID].node
	c.mu.Unlock()
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 13, 100_000)
	res, err := cl.SendEvents(snap.ID, stream)
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	if res.QueueLen == 0 {
		t.Fatal("nothing queued before the kill")
	}

	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	deadLive := owner.server().ArenaStats().Total.Live()
	c.ProbeNow() // replay onto the survivor

	// Drain the resumed session on the survivor; the corpse's arena must
	// not see any of those releases (its live count is frozen).
	c.Pump()
	if got := owner.server().ArenaStats().Total.Live(); got != deadLive {
		t.Fatalf("dead arena live count moved across replay: %d -> %d", deadLive, got)
	}
	if err := c.ReviveNode(owner.name); err != nil {
		t.Fatalf("ReviveNode: %v", err)
	}
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	// Survivor's arena is balanced after close: every frame it ingested
	// (including replayed ones) went back to its own pools.
	for _, n := range c.nodes {
		if n.name == owner.name {
			continue
		}
		if live := n.server().ArenaStats().Frames.Live(); live != 0 {
			t.Fatalf("node %s leaks %d live frames after close", n.name, live)
		}
	}
}

// TestStreamResumesAcrossFailover kills a node mid-SSE-stream and
// checks the client resumes gaplessly through the router: the second
// connection (since=<last seq>) picks up strictly after the first and
// delivers the killed node's queued work once the journal replays.
func TestStreamResumesAcrossFailover(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner, localID := rt.node, rt.localID
	c.mu.Unlock()

	// Phase A drains to completion: its results are streamable.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 17, 160_000)
	for _, ch := range chunks(stream.Slice(0, 80_000), 80_000, 20_000) {
		if _, err := cl.SendEvents(snap.ID, ch); err != nil {
			t.Fatalf("SendEvents (phase A): %v", err)
		}
	}
	c.Pump()
	st, err := owner.server().SessionJournalStats(localID)
	if err != nil {
		t.Fatalf("SessionJournalStats: %v", err)
	}
	if st.Retained == 0 {
		t.Fatal("phase A produced no streamable results")
	}

	// Pass 1 reads everything phase A emitted, then drops the stream —
	// the client's view of the world right before the node dies.
	errStop := errors.New("drop connection")
	var first []serve.ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, 0, func(ev serve.ResultEvent) error {
		first = append(first, ev)
		if len(first) == st.Retained {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("pass 1 err = %v, want errStop", err)
	}

	// Phase B queues without draining, then the owner dies: only the
	// replicated journal can get those frames back.
	res, err := cl.SendEvents(snap.ID, stream.Slice(80_000, 160_000))
	if err != nil {
		t.Fatalf("SendEvents (phase B): %v", err)
	}
	if res.QueueLen == 0 {
		t.Fatal("phase B queued nothing")
	}
	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()
	c.Pump() // drain the replayed frames on the survivor
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}

	// Pass 2 resumes through the router against the new owner.
	var second []serve.ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, first[len(first)-1].Seq, func(ev serve.ResultEvent) error {
		second = append(second, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("pass 2: %v", err)
	}
	if len(second) == 0 {
		t.Fatal("resumed stream delivered nothing after the failover")
	}
	union := append(append([]serve.ResultEvent{}, first...), second...)
	var frames int
	for i, ev := range union {
		if i > 0 && ev.Seq <= union[i-1].Seq {
			t.Fatalf("sequence not strictly increasing at %d: %d after %d", i, ev.Seq, union[i-1].Seq)
		}
		frames += ev.Frames
	}
	if frames == 0 {
		t.Fatal("no frames delivered across the resumed stream")
	}
	h := c.Health()
	if h.FailoverShedFrames != 0 || h.FailoverRecoveredFrames == 0 {
		t.Fatalf("failover accounting: %+v", h)
	}
}

// TestResultReplicationSeedsResumedJournal is the seq-recycling
// regression: results share the chunk sequence counter, so a session
// whose chunks are all acked at kill time (replica log holds only
// result entries) must still resume with its sequence counter past
// every seq the dead node handed out, and with the catch-up ring
// restored. Without result replication the resumed journal restarts
// at zero and re-assigns seqs at or below a streaming client's
// since=<seq> cursor — the client's filter then silently swallows
// every post-failover result.
func TestResultReplicationSeedsResumedJournal(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner, localID := rt.node, rt.localID
	c.mu.Unlock()

	// Phase A drains fully: every chunk acks, so only replicated
	// results keep the sequence watermark alive on the buddy.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 29, 120_000)
	for _, ch := range chunks(stream.Slice(0, 60_000), 60_000, 20_000) {
		if _, err := cl.SendEvents(snap.ID, ch); err != nil {
			t.Fatalf("SendEvents (phase A): %v", err)
		}
	}
	c.Pump()
	st, err := owner.server().SessionJournalStats(localID)
	if err != nil {
		t.Fatalf("SessionJournalStats: %v", err)
	}
	if st.Unacked != 0 || st.Retained == 0 {
		t.Fatalf("phase A not fully acked with results: %+v", st)
	}
	if _, entries := c.buddyFor(owner).server().ReplicaStats(); entries == 0 {
		t.Fatal("acked session left no replica entries — results are not replicated")
	}

	// The client consumes everything phase A emitted; its cursor now
	// sits at the dead incarnation's sequence watermark.
	errStop := errors.New("drop connection")
	var first []serve.ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, 0, func(ev serve.ResultEvent) error {
		first = append(first, ev)
		if len(first) == st.Retained {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("pass 1 err = %v, want errStop", err)
	}
	cursor := first[len(first)-1].Seq
	if cursor < st.Seq {
		t.Fatalf("cursor %d below journal watermark %d", cursor, st.Seq)
	}

	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	// The resumed journal must start past the dead incarnation's
	// watermark, not at zero.
	c.mu.Lock()
	newNode, newLocal := rt.node, rt.localID
	c.mu.Unlock()
	nst, err := newNode.server().SessionJournalStats(newLocal)
	if err != nil {
		t.Fatalf("SessionJournalStats after failover: %v", err)
	}
	if nst.Seq < st.Seq {
		t.Fatalf("resumed journal seq %d below dead watermark %d — seqs will recycle", nst.Seq, st.Seq)
	}
	if nst.Retained != st.Retained {
		t.Fatalf("resumed ring retained %d results, dead node had %d", nst.Retained, st.Retained)
	}

	// Post-failover work must reach the client's existing cursor
	// gaplessly: every new result sorts strictly after it.
	if _, err := cl.SendEvents(snap.ID, stream.Slice(60_000, 120_000)); err != nil {
		t.Fatalf("SendEvents after failover: %v", err)
	}
	c.Pump()
	if _, err := cl.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	var second []serve.ResultEvent
	err = cl.StreamResults(context.Background(), snap.ID, cursor, func(ev serve.ResultEvent) error {
		second = append(second, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("pass 2: %v", err)
	}
	if len(second) == 0 {
		t.Fatal("post-failover results invisible to the resumed cursor — sequence numbers were recycled")
	}
	for i, ev := range second {
		if ev.Seq <= cursor {
			t.Fatalf("result %d seq %d not after cursor %d", i, ev.Seq, cursor)
		}
		if i > 0 && ev.Seq <= second[i-1].Seq {
			t.Fatalf("sequence not strictly increasing at %d", i)
		}
	}
	// A from-zero reader sees the restored pre-kill results too.
	var full []serve.ResultEvent
	if err := cl.StreamResults(context.Background(), snap.ID, 0, func(ev serve.ResultEvent) error {
		full = append(full, ev)
		return nil
	}); err != nil {
		t.Fatalf("full read: %v", err)
	}
	if len(full) != len(first)+len(second) {
		t.Fatalf("full read %d events, want restored %d + new %d", len(full), len(first), len(second))
	}
}

// TestFailoverFallsBackWhenBuddyDraining pins the buddy-unavailable
// path: when the node holding the replicas cannot host the resumed
// session (it is draining), failover must take the replicas anyway and
// replay them on a placed survivor instead of shedding the frames or
// losing the session.
func TestFailoverFallsBackWhenBuddyDraining(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:3")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 31, 100_000)
	var queued uint64
	for _, ch := range chunks(stream, 100_000, 25_000) {
		res, err := cl.SendEvents(snap.ID, ch)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		queued = uint64(res.QueueLen)
	}
	if queued == 0 {
		t.Fatal("nothing queued before the kill")
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner, buddy := rt.node, rt.buddy
	c.mu.Unlock()
	if buddy == nil {
		t.Fatal("no buddy after journaled ingest")
	}

	// The buddy drains (its replica store survives — only its sessions
	// move), then the owner dies: a concurrent drain+kill.
	if err := c.DrainNode(buddy.name); err != nil {
		t.Fatalf("DrainNode(buddy): %v", err)
	}
	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode(owner): %v", err)
	}
	c.ProbeNow()

	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session after failover: %v", err)
	}
	if got.State != "active" {
		t.Fatalf("session lost despite a surviving replica: %+v", got)
	}
	if got.Node == owner.name || got.Node == buddy.name {
		t.Fatalf("session landed on %s, want the third node", got.Node)
	}
	h := c.Health()
	if h.FailoverShedFrames != 0 {
		t.Fatalf("shed %d frames with replicas in hand, want 0", h.FailoverShedFrames)
	}
	if h.FailoverRecoveredFrames < queued {
		t.Fatalf("recovered %d frames, want >= %d queued", h.FailoverRecoveredFrames, queued)
	}
	if h.LostSessions != 0 {
		t.Fatalf("lost %d sessions, want 0", h.LostSessions)
	}

	// The resumed session keeps serving on the fallback node.
	c.Pump()
	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.State != "closed" || fin.RawFramesDone == 0 {
		t.Fatalf("final snapshot: %+v", fin)
	}
}

// TestStaleReplicationDropped pins the epoch guard: replication that
// raced a failover sweep (the chunk went into the dead incarnation,
// the sweep took the replica log first) must be dropped, not appended
// — a stale old-incarnation entry in the buddy store would replay
// duplicate chunks into a later failover.
func TestStaleReplicationDropped(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 4096
	cfg.Node.ManualDrain = true
	cfg.Node.Journal = true
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 37, 60_000)
	res, err := cl.SendEvents(snap.ID, stream.Slice(0, 30_000))
	if err != nil {
		t.Fatalf("SendEvents: %v", err)
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner := rt.node
	staleEpoch := rt.epoch
	c.mu.Unlock()

	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow() // bumps the epoch, takes and replays the replica log

	// A replication captured before the kill arrives late: it must see
	// the bumped epoch and drop instead of stranding a stale entry.
	late := serve.IngestResult{Seq: res.Seq + 1}
	c.replicate(rt, owner, staleEpoch, stream.Slice(30_000, 60_000), late)
	for _, n := range c.nodes {
		if sessions, entries := n.server().ReplicaStats(); sessions != 0 || entries != 0 {
			t.Fatalf("stale replication stranded %d entries on %s", entries, n.name)
		}
	}
	c.mu.Lock()
	if rt.buddy != nil {
		t.Fatalf("stale replication re-homed the buddy to %s", rt.buddy.name)
	}
	c.mu.Unlock()
}

// TestNoSurvivorsLosesSessions kills every node and checks sessions
// are reported lost rather than wedged.
func TestNoSurvivorsLosesSessions(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:1")})
	defer stop()
	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if err := c.KillNode("xavier0"); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()
	h := c.Health()
	if h.Status != "down" || h.LostSessions != 1 {
		t.Fatalf("health = %+v", h)
	}
	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if got.State != "closed" {
		t.Fatalf("lost session state %q", got.State)
	}
	// Ingest into a lost session must be refused, not black-holed on
	// the dead node.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 5, 50_000)
	if _, err := cl.SendEvents(snap.ID, stream); err == nil {
		t.Fatal("ingest into lost session succeeded")
	}
	// Creating with no alive nodes fails as a 503, not a bad request.
	if _, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err == nil {
		t.Fatal("create with no alive nodes succeeded")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("no-nodes create error not a 503: %v", err)
	}
}

// TestAdminEndpoints exercises kill/drain/nodes over HTTP.
func TestAdminEndpoints(t *testing.T) {
	tc, stop := newTestClusterURL(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()
	post := func(path string) int {
		resp, err := http.Post(tc.base+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/nodes/xavier0/drain"); code != 200 {
		t.Fatalf("drain: %d", code)
	}
	if code := post("/v1/nodes/xavier1/kill"); code != 200 {
		t.Fatalf("kill: %d", code)
	}
	if code := post("/v1/nodes/ghost/kill"); code != 404 {
		t.Fatalf("kill ghost: %d", code)
	}
	resp, err := http.Get(tc.base + "/v1/nodes")
	if err != nil {
		t.Fatalf("GET /v1/nodes: %v", err)
	}
	var nodes []NodeHealth
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatalf("decode nodes: %v", err)
	}
	resp.Body.Close()
	if len(nodes) != 2 || nodes[0].State != "draining" || nodes[1].State != "dead" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Platform: "xavier"}}, Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Platform: "tpu"}}, ProbeInterval: -1}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{
		{Name: "a", Platform: "xavier"}, {Name: "a", Platform: "orin"},
	}, ProbeInterval: -1}); err == nil {
		t.Fatal("duplicate node name accepted")
	}
}
