package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"evedge/internal/events"
	"evedge/internal/nn"
	"evedge/internal/scene"
	"evedge/internal/serve"
)

// genStream renders a preset sequence at half scale.
func genStream(t *testing.T, p scene.Preset, seed, durUS int64) *events.Stream {
	t.Helper()
	seq, err := scene.NewSequence(p, scene.Half, seed)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	s, err := seq.Generate(durUS)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

// chunks splits a stream into consecutive chunkUS-long pieces.
func chunks(s *events.Stream, durUS, chunkUS int64) []*events.Stream {
	var out []*events.Stream
	for t0 := int64(0); t0 < durUS; t0 += chunkUS {
		out = append(out, s.Slice(t0, t0+chunkUS))
	}
	return out
}

// testCluster bundles the in-process fleet, a single-node client
// pointed at the router, and the listener base URL.
type testCluster struct {
	c    *Cluster
	cl   *serve.Client
	base string
}

// newTestCluster builds a cluster with the probe loop disabled (tests
// drive ProbeNow explicitly) behind an httptest server + serve client.
func newTestCluster(t *testing.T, cfg Config) (*Cluster, *serve.Client, func()) {
	t.Helper()
	tc, stop := newTestClusterURL(t, cfg)
	return tc.c, tc.cl, stop
}

func newTestClusterURL(t *testing.T, cfg Config) (testCluster, func()) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(c.Handler())
	cl := serve.NewClient(hs.URL, hs.Client())
	return testCluster{c: c, cl: cl, base: hs.URL}, func() {
		hs.Close()
		c.Close()
	}
}

func specs(t *testing.T, s string) []NodeSpec {
	t.Helper()
	out, err := ParseNodeSpecs(s)
	if err != nil {
		t.Fatalf("ParseNodeSpecs(%q): %v", s, err)
	}
	return out
}

func TestParseNodeSpecs(t *testing.T) {
	got := specs(t, "xavier:2,orin:1")
	if len(got) != 3 || got[0].Platform != "xavier" || got[2].Platform != "orin" {
		t.Fatalf("specs = %+v", got)
	}
	if one := specs(t, "orin"); len(one) != 1 || one[0].Platform != "orin" {
		t.Fatalf("single spec = %+v", one)
	}
	for _, bad := range []string{"", "xavier:0", "xavier:-1", "xavier:x", "tpu:2", ", ,"} {
		if _, err := ParseNodeSpecs(bad); err == nil {
			t.Fatalf("ParseNodeSpecs(%q) accepted", bad)
		}
	}
}

func TestParsePlacementPolicy(t *testing.T) {
	for in, want := range map[string]PlacementPolicy{
		"": PolicyLeastLoaded, "least-loaded": PolicyLeastLoaded, "ll": PolicyLeastLoaded,
		"hash": PolicyHash,
	} {
		got, err := ParsePlacementPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePlacementPolicy(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParsePlacementPolicy("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestHashPlacementDeterministic checks the hash policy maps the same
// session IDs to the same nodes on two identical fleets.
func TestHashPlacementDeterministic(t *testing.T) {
	build := func() map[string]string {
		c, _, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:3"), Policy: PolicyHash})
		defer stop()
		placed := map[string]string{}
		for i := 0; i < 6; i++ {
			snap, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
			if err != nil {
				t.Fatalf("CreateSession: %v", err)
			}
			placed[snap.ID] = snap.Node
		}
		return placed
	}
	a, b := build(), build()
	for id, node := range a {
		if b[id] != node {
			t.Fatalf("hash placement differs for %s: %s vs %s", id, node, b[id])
		}
	}
}

// TestLeastLoadedSpreads checks equal-cost sessions split evenly over
// identical nodes, and that a higher-capacity Orin absorbs at least as
// many sessions as a Xavier.
func TestLeastLoadedSpreads(t *testing.T) {
	c, _, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()
	for i := 0; i < 4; i++ {
		if _, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
	}
	per := c.sessionsOn()
	if per["xavier0"] != 2 || per["xavier1"] != 2 {
		t.Fatalf("least-loaded split = %v, want 2/2", per)
	}

	mixed, _, stop2 := newTestCluster(t, Config{Nodes: specs(t, "xavier:1,orin:1")})
	defer stop2()
	for i := 0; i < 6; i++ {
		if _, err := mixed.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
	}
	per = mixed.sessionsOn()
	if per["orin1"] < per["xavier0"] {
		t.Fatalf("orin (bigger) got %d sessions, xavier %d", per["orin1"], per["xavier0"])
	}
	if per["xavier0"] == 0 {
		t.Fatalf("least-loaded starved the xavier node: %v", per)
	}
}

// TestClusterLifecycleHTTP drives the full session lifecycle through
// the router with the unchanged single-node serve.Client.
func TestClusterLifecycleHTTP(t *testing.T) {
	_, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()

	h, err := cl.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 2})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if !strings.HasPrefix(snap.ID, "c") || snap.Node == "" {
		t.Fatalf("create snapshot lacks fleet ID/node: %+v", snap)
	}

	const dur = 150_000
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 11, dur)
	sent := 0
	for _, ch := range chunks(stream, dur, 25_000) {
		res, err := cl.SendEvents(snap.ID, ch)
		if err != nil {
			t.Fatalf("SendEvents: %v", err)
		}
		sent += res.Events
	}

	mid, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if mid.EventsIn != uint64(sent) || mid.Node != snap.Node || mid.ID != snap.ID {
		t.Fatalf("mid snapshot: %+v", mid)
	}

	list, err := cl.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(list) != 1 || list[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}

	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if fin.State != "closed" || fin.RawFramesDone == 0 || fin.Latency.P99US <= 0 {
		t.Fatalf("final snapshot: %+v", fin)
	}
	// Ingest into a closed session fails; unknown sessions 404.
	if _, err := cl.SendEvents(snap.ID, stream.Slice(0, 1000)); err == nil {
		t.Fatal("ingest into closed session succeeded")
	}
	if _, err := cl.Session("c999"); err == nil {
		t.Fatal("unknown session found")
	}
}

// metricValue extracts the first value of an unlabelled metric sample.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// sumLabelled sums all samples of a labelled metric.
func sumLabelled(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} ([0-9.e+-]+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s value %q: %v", name, m[1], err)
		}
		sum += v
	}
	return sum
}

// TestClusterFailover is the acceptance scenario: a mixed xavier+orin
// fleet under load from 8 sessions loses a node mid-stream; the
// surviving nodes adopt its sessions, streaming completes, and the
// fleet metrics stay consistent.
func TestClusterFailover(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2,orin:1")})
	defer stop()

	const nSessions = 8
	const dur = 160_000
	nets := []string{nn.DOTIE, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth}
	ids := make([]string, nSessions)
	streams := make([]*events.Stream, nSessions)
	for i := 0; i < nSessions; i++ {
		name := nets[i%len(nets)]
		snap, err := cl.CreateSession(serve.SessionConfig{Network: name, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession %d: %v", i, err)
		}
		ids[i] = snap.ID
		streams[i] = genStream(t, nn.MustByName(name).Input.Preset, int64(30+i), dur)
	}
	per := c.sessionsOn()
	if len(per) < 2 {
		t.Fatalf("sessions all landed on one node: %v", per)
	}

	// Stream the first half everywhere.
	all := make([][]*events.Stream, nSessions)
	for i := range ids {
		all[i] = chunks(streams[i], dur, 20_000)
	}
	half := len(all[0]) / 2
	stream := func(i int, from, to int) error {
		for _, ch := range all[i][from:to] {
			if _, err := cl.SendEvents(ids[i], ch); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- stream(i, 0, half)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("first half: %v", err)
		}
	}

	// Counter baseline before the kill: fleet totals must never step
	// backwards across a failover.
	preText, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics before kill: %v", err)
	}
	preEvents := metricValue(t, preText, "evcluster_events_total")

	// Kill a node that owns sessions, mid-load.
	victim := ""
	for name, n := range c.sessionsOn() {
		if n > 0 {
			victim = name
			break
		}
	}
	victimSessions := c.sessionsOn()[victim]
	if err := c.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	// Every session must now live on a surviving node.
	for _, id := range ids {
		snap, err := cl.Session(id)
		if err != nil {
			t.Fatalf("Session %s after failover: %v", id, err)
		}
		if snap.Node == victim {
			t.Fatalf("session %s still routed to dead node %s", id, victim)
		}
		if snap.State != "active" {
			t.Fatalf("session %s not active after failover: %+v", id, snap)
		}
	}
	h := c.Health()
	if h.Status != "degraded" || h.NodesUp != 2 {
		t.Fatalf("health after kill: %+v", h)
	}
	if h.FailoverSessions != uint64(victimSessions) {
		t.Fatalf("failover count %d, want %d", h.FailoverSessions, victimSessions)
	}

	// Second half streams against the survivors; failed-over sessions
	// restart their converters, so chunks keep flowing under the same
	// fleet-wide IDs.
	errs = make(chan error, nSessions)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- stream(i, half, len(all[i]))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("second half: %v", err)
		}
	}

	for _, id := range ids {
		fin, err := cl.CloseSession(id)
		if err != nil {
			t.Fatalf("CloseSession %s: %v", id, err)
		}
		if fin.State != "closed" {
			t.Fatalf("session %s final state %q", id, fin.State)
		}
	}

	// Fleet metrics consistency: router session gauges agree with the
	// per-node breakdown, and failover counters surfaced.
	text, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if got := metricValue(t, text, "evcluster_sessions_active"); got != 0 {
		t.Fatalf("sessions_active = %v after closing all", got)
	}
	if got := metricValue(t, text, "evcluster_sessions_total"); got != nSessions {
		t.Fatalf("sessions_total = %v, want %d", got, nSessions)
	}
	if got := metricValue(t, text, "evcluster_failover_sessions_total"); got != float64(victimSessions) {
		t.Fatalf("failover_sessions_total = %v, want %d", got, victimSessions)
	}
	if got, fleet := sumLabelled(t, text, "evcluster_node_sessions_active"),
		metricValue(t, text, "evcluster_sessions_active"); got != fleet {
		t.Fatalf("node sessions sum %v != fleet %v", got, fleet)
	}
	// Counters stay monotonic across the failover: the dead node's
	// last-seen totals remain in the fleet sum.
	if got := metricValue(t, text, "evcluster_events_total"); got < preEvents {
		t.Fatalf("events_total went backwards: %v < %v", got, preEvents)
	}
	if up := metricValue(t, text, "evcluster_nodes_up"); up != 2 {
		t.Fatalf("nodes_up = %v", up)
	}
}

// TestDrainMigratesGracefully drains a node and checks its sessions
// move without shedding queued frames, while new sessions avoid it.
func TestDrainMigratesGracefully(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()

	var ids []string
	for i := 0; i < 4; i++ {
		snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, snap.ID)
	}
	if err := c.DrainNode("xavier0"); err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if err := c.DrainNode("xavier0"); err == nil {
		t.Fatal("double drain accepted")
	}
	h := c.Health()
	if h.FailoverShedFrames != 0 {
		t.Fatalf("graceful drain shed %d frames", h.FailoverShedFrames)
	}
	for _, id := range ids {
		snap, err := cl.Session(id)
		if err != nil {
			t.Fatalf("Session %s: %v", id, err)
		}
		if snap.Node != "xavier1" {
			t.Fatalf("session %s on %s after drain", id, snap.Node)
		}
	}
	// New sessions skip the draining node.
	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession after drain: %v", err)
	}
	if snap.Node != "xavier1" {
		t.Fatalf("new session placed on draining node %s", snap.Node)
	}
}

// TestFailoverShedsQueuedFrames checks the kill path counts queued
// frames as shed: after the node dies its workers are gone, so frames
// ingested onto the corpse stay queued and are lost at failover.
func TestFailoverShedsQueuedFrames(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier:2")}
	cfg.Node.QueueCap = 1024
	c, cl, stop := newTestCluster(t, cfg)
	defer stop()

	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	c.mu.Lock()
	rt := c.routes[snap.ID]
	owner, localID := rt.node, rt.localID
	c.mu.Unlock()
	if err := c.KillNode(owner.name); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// White-box: push a burst straight into the dead node's session —
	// the window where a request lands between the kill and the probe.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 3, 100_000)
	res, err := owner.server().Ingest(localID, stream)
	if err != nil {
		t.Fatalf("Ingest onto dead node: %v", err)
	}
	if res.QueueLen == 0 {
		t.Fatal("dead node queued nothing; test needs a burst that frames")
	}
	c.ProbeNow()
	h := c.Health()
	if h.FailoverSessions != 1 {
		t.Fatalf("failover sessions = %d", h.FailoverSessions)
	}
	if h.FailoverShedFrames < uint64(res.QueueLen) {
		t.Fatalf("shed %d frames, want >= %d", h.FailoverShedFrames, res.QueueLen)
	}
	// The fleet-wide ID keeps working on the survivor.
	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session after failover: %v", err)
	}
	if got.Node == owner.name || got.State != "active" {
		t.Fatalf("session after failover: %+v", got)
	}
	// Per-session failover accounting rides on the snapshot.
	if got.Failovers != 1 || got.FailoverShedFrames < uint64(res.QueueLen) {
		t.Fatalf("per-session failover accounting: %+v", got)
	}
	if _, err := cl.SendEvents(snap.ID, stream.Slice(0, 50_000)); err != nil {
		t.Fatalf("SendEvents after failover: %v", err)
	}
}

// TestNoSurvivorsLosesSessions kills every node and checks sessions
// are reported lost rather than wedged.
func TestNoSurvivorsLosesSessions(t *testing.T) {
	c, cl, stop := newTestCluster(t, Config{Nodes: specs(t, "xavier:1")})
	defer stop()
	snap, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if err := c.KillNode("xavier0"); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()
	h := c.Health()
	if h.Status != "down" || h.LostSessions != 1 {
		t.Fatalf("health = %+v", h)
	}
	got, err := cl.Session(snap.ID)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if got.State != "closed" {
		t.Fatalf("lost session state %q", got.State)
	}
	// Ingest into a lost session must be refused, not black-holed on
	// the dead node.
	stream := genStream(t, nn.MustByName(nn.DOTIE).Input.Preset, 5, 50_000)
	if _, err := cl.SendEvents(snap.ID, stream); err == nil {
		t.Fatal("ingest into lost session succeeded")
	}
	// Creating with no alive nodes fails as a 503, not a bad request.
	if _, err := cl.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err == nil {
		t.Fatal("create with no alive nodes succeeded")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("no-nodes create error not a 503: %v", err)
	}
}

// TestAdminEndpoints exercises kill/drain/nodes over HTTP.
func TestAdminEndpoints(t *testing.T) {
	tc, stop := newTestClusterURL(t, Config{Nodes: specs(t, "xavier:2")})
	defer stop()
	post := func(path string) int {
		resp, err := http.Post(tc.base+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/nodes/xavier0/drain"); code != 200 {
		t.Fatalf("drain: %d", code)
	}
	if code := post("/v1/nodes/xavier1/kill"); code != 200 {
		t.Fatalf("kill: %d", code)
	}
	if code := post("/v1/nodes/ghost/kill"); code != 404 {
		t.Fatalf("kill ghost: %d", code)
	}
	resp, err := http.Get(tc.base + "/v1/nodes")
	if err != nil {
		t.Fatalf("GET /v1/nodes: %v", err)
	}
	var nodes []NodeHealth
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatalf("decode nodes: %v", err)
	}
	resp.Body.Close()
	if len(nodes) != 2 || nodes[0].State != "draining" || nodes[1].State != "dead" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Platform: "xavier"}}, Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{{Platform: "tpu"}}, ProbeInterval: -1}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := New(Config{Nodes: []NodeSpec{
		{Name: "a", Platform: "xavier"}, {Name: "a", Platform: "orin"},
	}, ProbeInterval: -1}); err == nil {
		t.Fatal("duplicate node name accepted")
	}
}
