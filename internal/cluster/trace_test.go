package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/serve"
)

// TestClusterTrace drives a small fleet with tracing on through an
// ingest + kill-failover episode and checks the merged trace: one
// process group per node, a fleet track with the failover annotation,
// and merged stage histograms.
func TestClusterTrace(t *testing.T) {
	cfg := Config{
		Nodes: specs(t, "xavier:2"),
		Node:  serve.Config{ManualDrain: true, Trace: obs.Config{Enabled: true}},
	}
	tc, stop := newTestClusterURL(t, cfg)
	defer stop()
	c := tc.c

	net := nn.MustByName(nn.SpikeFlowNet)
	var ids []string
	for i := 0; i < 2; i++ {
		snap, err := c.CreateSession(serve.SessionConfig{Network: nn.SpikeFlowNet, Level: 2})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		ids = append(ids, snap.ID)
	}
	stream := genStream(t, net.Input.Preset, 1, 100_000)
	for _, chunk := range chunks(stream, 100_000, 20_000) {
		for _, id := range ids {
			if _, err := c.Ingest(id, chunk); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
		c.Pump()
	}
	// Kill one node: its sessions fail over, annotated on the fleet track.
	victim := c.Snapshots()[0].Node
	if err := c.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	c.ProbeNow()

	resp, err := http.Get(tc.base + "/v1/trace")
	if err != nil {
		t.Fatalf("GET /v1/trace: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/trace = %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	nodes, lanes := map[string]bool{}, map[string]bool{}
	var names []string
	for _, ev := range doc.TraceEvents {
		args, _ := ev["args"].(map[string]any)
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			nodes[args["name"].(string)] = true
		}
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			lanes[args["name"].(string)] = true
		}
		if n, ok := ev["name"].(string); ok {
			names = append(names, n)
		}
	}
	for _, want := range []string{"router", "xavier0", "xavier1"} {
		if !nodes[want] {
			t.Errorf("merged trace missing node group %q (have %v)", want, nodes)
		}
	}
	if !lanes["fleet"] {
		t.Errorf("merged trace missing fleet lane (have %v)", lanes)
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{"kill:" + victim, "failover:", "hop:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fleet track missing %q annotation", want)
		}
	}

	hists := c.StageHists()
	if hists == nil {
		t.Fatal("StageHists returned nil with tracing on")
	}
	byStage := map[string]obs.HistSnapshot{}
	for _, h := range hists {
		byStage[h.Stage] = h
	}
	for _, stage := range []string{"queue", "exec", "frame"} {
		if byStage[stage].Count == 0 {
			t.Errorf("merged stage histogram %q is empty", stage)
		}
	}
}

// TestClusterTraceDisabled pins the off-path: no tracer, 404 endpoint,
// nil histograms.
func TestClusterTraceDisabled(t *testing.T) {
	cfg := Config{Nodes: specs(t, "xavier"), Node: serve.Config{ManualDrain: true}}
	tc, stop := newTestClusterURL(t, cfg)
	defer stop()
	if tc.c.Tracer() != nil || tc.c.StageHists() != nil {
		t.Fatal("disabled tracing still built fleet tracer state")
	}
	resp, err := http.Get(tc.base + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET /v1/trace with tracing off = %d, want 404", resp.StatusCode)
	}
}
