package cluster

import (
	"testing"
	"time"

	"evedge/internal/nn"
	"evedge/internal/serve"
)

// TestLoadRebalanceMigratesSession builds an imbalanced fleet under
// hash placement (deterministic skew), then lets one probe pass run
// the load rebalancer: exactly one session must move from the hottest
// to the coldest node, the gap must shrink, and the cooldown must hold
// further moves back.
func TestLoadRebalanceMigratesSession(t *testing.T) {
	c, err := New(Config{
		Nodes:             []NodeSpec{{Platform: "xavier"}, {Platform: "xavier"}},
		Policy:            PolicyHash,
		ProbeInterval:     -1, // probe manually
		RebalanceGap:      1e-9,
		RebalanceCooldown: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	// Hash placement of identical sessions: keep creating until the
	// per-node spread reaches 2, which guarantees a strictly improving
	// move exists.
	perNode := func() (int, int) {
		on := c.sessionsOn()
		return on[c.nodes[0].name], on[c.nodes[1].name]
	}
	var skewed bool
	for i := 0; i < 16 && !skewed; i++ {
		if _, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		a, b := perNode()
		skewed = a-b >= 2 || b-a >= 2
	}
	if !skewed {
		t.Skip("hash placement landed balanced for every prefix; nothing to rebalance")
	}
	beforeA, beforeB := perNode()
	gapBefore := beforeA - beforeB
	if gapBefore < 0 {
		gapBefore = -gapBefore
	}

	c.ProbeNow()

	afterA, afterB := perNode()
	gapAfter := afterA - afterB
	if gapAfter < 0 {
		gapAfter = -gapAfter
	}
	if gapAfter != gapBefore-2 {
		t.Fatalf("gap %d -> %d after rebalance, want %d", gapBefore, gapAfter, gapBefore-2)
	}
	h := c.Health()
	if h.RebalanceMigrations != 1 {
		t.Fatalf("rebalance migrations = %d, want 1", h.RebalanceMigrations)
	}
	if h.FailoverSessions != 0 || h.LostSessions != 0 {
		t.Fatalf("load rebalance counted as failover/loss: %+v", h)
	}

	// The moved session is findable: exactly one snapshot carries a
	// migration count, it is open, and it lives on the (previously)
	// colder node.
	moved := 0
	for _, snap := range c.Snapshots() {
		if snap.Migrations == 0 {
			continue
		}
		moved++
		if snap.Migrations != 1 || snap.State != "active" {
			t.Fatalf("moved session in bad state: %+v", snap)
		}
	}
	if moved != 1 {
		t.Fatalf("%d sessions carry migrations, want 1", moved)
	}

	// Cooldown: an immediate second probe must not move anything else.
	c.ProbeNow()
	if h := c.Health(); h.RebalanceMigrations != 1 {
		t.Fatalf("cooldown did not hold: %d migrations", h.RebalanceMigrations)
	}
}

// TestRebalanceDisabledByDefault keeps the zero config frozen: no
// rebalancer, no migrations, whatever the skew.
func TestRebalanceDisabledByDefault(t *testing.T) {
	c, err := New(Config{
		Nodes:         []NodeSpec{{Platform: "xavier"}, {Platform: "xavier"}},
		Policy:        PolicyHash,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		if _, err := c.CreateSession(serve.SessionConfig{Network: nn.DOTIE, Level: 1}); err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
	}
	c.ProbeNow()
	if h := c.Health(); h.RebalanceMigrations != 0 {
		t.Fatalf("disabled rebalancer migrated %d sessions", h.RebalanceMigrations)
	}
}
