// Package cluster shards the Ev-Edge serving layer across a fleet of
// heterogeneous nodes. A Cluster embeds N serve.Server instances (each
// its own simulated platform — Xavier, Orin, mixed) behind a router
// that owns session placement and proxies the whole session lifecycle
// (create / ingest / poll / close) to the owning node over the same
// HTTP API a single evserve node speaks, so clients and evload work
// against a cluster unchanged.
//
// Placement is load-aware (least-loaded by capacity-weighted active
// session cost from each node's load signal) or deterministic (hash of
// the fleet-wide session ID over the alive node set). A probe loop
// watches node health; when a node is killed or drained, the router
// fails its sessions over to surviving nodes: the session is
// re-created at the same network/level on a new node and keeps its
// fleet-wide ID. A drain closes sessions gracefully first, so queued
// frames execute and nothing is shed.
//
// With the per-node journal enabled (serve.Config.Journal), a kill is
// lossless too: every ingested chunk is replicated to a deterministic
// buddy node (the next alive node after the owner in construction
// order) and trimmed as its frames complete, and every emitted result
// follows it there (carrying the session's sequence watermark and the
// catch-up ring contents); on a kill, failover resumes the session on
// the buddy by replaying the unacknowledged chunk entries through the
// normal ingest path — queued frames are recovered
// (failover_recovered_frames) instead of shed — while replicated
// results refill the resumed catch-up ring and push the sequence
// counter past everything the dead incarnation handed out, so a
// streaming client's since=<seq> cursor stays gapless across the
// kill. Without the journal, frames still sitting in the dead node's
// ingest queues are shed and counted (failover_shed_frames).
// Per-session counters restart after a migration — the fleet-level
// counters accumulate across it.
package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"evedge/internal/control"
	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/nn"
	"evedge/internal/obs"
	"evedge/internal/sched"
	"evedge/internal/serve"
)

// Node states.
const (
	stateUp int32 = iota
	stateDraining
	stateDead
)

// NodeSpec describes one fleet node.
type NodeSpec struct {
	// Name identifies the node in routing, health and metrics; empty
	// auto-names it "<platform><index>".
	Name string
	// Platform is a built-in platform preset name (hw.Platforms).
	Platform string
	// Workers sizes the node's worker pool (0 = serve default).
	Workers int
}

// DefaultNodeName is the name New gives the i-th node when its spec
// leaves Name empty — the single source of the "<platform><index>"
// convention admin endpoints and scenario scripts address nodes by.
func DefaultNodeName(spec NodeSpec, i int) string {
	if spec.Name != "" {
		return spec.Name
	}
	return fmt.Sprintf("%s%d", strings.ToLower(spec.Platform), i)
}

// ParseNodeSpecs parses the -nodes flag syntax: a comma-separated list
// of "platform[:count]" groups, e.g. "xavier:4,orin:4" for four Xavier
// nodes plus four Orin nodes, or "xavier" for a single node.
func ParseNodeSpecs(s string) ([]NodeSpec, error) {
	var specs []NodeSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := part
		count := 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: bad node count in %q", part)
			}
			count = n
		}
		if _, err := hw.PlatformByName(name); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			specs = append(specs, NodeSpec{Platform: strings.ToLower(name)})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no node specs in %q", s)
	}
	return specs, nil
}

// Config tunes the cluster.
type Config struct {
	// Nodes lists the fleet members (at least one).
	Nodes []NodeSpec
	// Policy places new sessions: PolicyLeastLoaded (default) or
	// PolicyHash.
	Policy PlacementPolicy
	// ProbeInterval paces the health-probe loop that detects failed
	// nodes and triggers failover (default 1s; negative disables the
	// loop — ProbeNow still probes on demand).
	ProbeInterval time.Duration
	// RebalanceGap enables load-driven session migration: when the
	// capacity-weighted utilization spread between the hottest and the
	// coldest alive node exceeds this gap, the probe loop migrates one
	// session from hot to cold (gracefully — queued frames execute
	// before the move). 0 disables; the same node-load signal that
	// places new sessions drives it.
	RebalanceGap float64
	// RebalanceCooldown is the minimum wall time between load-driven
	// migrations (default 5s), bounding migration churn.
	RebalanceCooldown time.Duration
	// RebalanceQueueDepth lets the rebalancer trigger on the spread of
	// live scheduler queue depths across nodes (pending invocations,
	// max - min) even when the utilization gap sits below RebalanceGap.
	// 0 disables the queue-depth trigger; it only applies while
	// RebalanceGap > 0 (the rebalancer itself must be enabled).
	RebalanceQueueDepth int
	// Elapsed reports time since the cluster started, feeding the load
	// rebalancer's cooldown gate. nil uses the wall clock; a
	// deterministic driver (the scenario harness) injects its virtual
	// clock so migration pacing replays identically under one seed.
	Elapsed func() time.Duration
	// Node is the base per-node server config; Platform is overridden
	// by each NodeSpec, Workers only when the spec sets it.
	Node serve.Config
}

// node is one fleet member: an embedded server plus liveness state.
// The server pointer is swappable: reviving a killed node installs a
// fresh incarnation while the dead one is retired — kept, not dropped,
// because its stranded sessions and counters stay part of the fleet's
// accounting (frame conservation, monotonic totals).
type node struct {
	name     string
	platform string
	cfg      serve.Config // per-node server config, reused by revive
	srv      atomic.Pointer[serve.Server]
	state    atomic.Int32

	retiredMu sync.Mutex
	retired   []*serve.Server
}

func (n *node) server() *serve.Server { return n.srv.Load() }

// incarnations returns every server the node has run, retired first,
// current last.
func (n *node) incarnations() []*serve.Server {
	n.retiredMu.Lock()
	out := append([]*serve.Server(nil), n.retired...)
	n.retiredMu.Unlock()
	return append(out, n.server())
}

func (n *node) alive() bool { return n.state.Load() == stateUp }
func (n *node) stateName() string {
	switch n.state.Load() {
	case stateDraining:
		return "draining"
	case stateDead:
		return "dead"
	}
	return "up"
}

// route maps a fleet-wide session ID to its current owner.
type route struct {
	extID   string
	cfg     serve.SessionConfig
	node    *node
	localID string
	closed  bool
	// buddy is the node holding the session's replicated journal
	// entries (nil until the first journaled ingest, or when no other
	// node is alive). Re-resolved on every replicated chunk so it
	// tracks fleet membership changes.
	buddy *node
	// repMu serializes the route's replication traffic — chunk and
	// result appends, buddy re-homes, the final drop on close —
	// against the failover/migration sweeps, which hold it across
	// take/replay/commit. An in-flight replication therefore either
	// lands before the sweep takes the replica log (and replays) or
	// runs after the commit and sees the bumped epoch.
	repMu sync.Mutex
	// epoch counts ownership flips (failover, drain, rebalance).
	// Replication captured under an older epoch is dropped instead of
	// appended: a chunk ingested into a node that died before its
	// replication ran must not strand a stale old-incarnation entry in
	// the buddy store, where a later failover would replay it into the
	// wrong incarnation. Guarded by Cluster.mu.
	epoch uint64
	// shedFrames accumulates ingest-queue frames lost to kill-failovers
	// of this session, surfaced so clients can account for the gap.
	shedFrames uint64
	// recoveredFrames accumulates frames regenerated by replaying the
	// replicated journal after kill-failovers of this session.
	recoveredFrames uint64
	failovers       int
	// migrations counts load-driven moves to another node (graceful —
	// nothing shed, but per-session counters restart like a failover).
	migrations int
}

// Cluster is the sharded serving fleet: embedded nodes plus the
// routing state. Create one with New, mount Handler on a listener,
// Close on shutdown.
type Cluster struct {
	cfg   Config
	nodes []*node
	start time.Time

	// mu guards the routing table; migMu serializes failover and drain
	// migrations so a node's sessions move exactly once; adminMu
	// serializes node state transitions (kill/drain/revive/undrain) so
	// concurrent admin requests cannot interleave a transition — e.g.
	// two revives double-building servers, or a drain/undrain pair
	// leaving the node up but refusing sessions.
	mu      sync.Mutex
	routes  map[string]*route
	order   []string // external IDs in creation order
	migMu   sync.Mutex
	adminMu sync.Mutex

	nextID       atomic.Uint64
	lostSessions atomic.Uint64
	migrations   atomic.Uint64

	// Failover accounting lives on the routes (live counters) plus the
	// monotonic closed roll-up below, all guarded by mu: when a
	// failed-over session closes, its counters move from the live sum
	// into closed* in the same critical section, so the fleet totals
	// (evcluster_failover_*_total) can never under-count across a close
	// — the bug scattered per-snapshot accounting had.
	closedFailovers uint64
	closedShed      uint64
	closedRecovered uint64

	// rebalancer gates load-driven migrations (nil when disabled). It
	// consumes the same node-load signals placement uses, in wall-time
	// microseconds since start.
	rebalancer *control.RemapPlanner

	// tracer records fleet-plane instants (failovers, migrations, node
	// state changes, router hops) on the "fleet" track; nil when the
	// per-node trace config is off. Per-node lifecycle spans live in
	// each node's own tracer; GET /v1/trace merges all of them.
	tracer *obs.Tracer

	probeStop chan struct{}
	probeOnce sync.Once
	probeWG   sync.WaitGroup

	muxOnce sync.Once
	mux     *http.ServeMux
}

// New validates cfg, starts every node's worker pool and the health
// probe loop, and returns the cluster.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	policy, err := ParsePlacementPolicy(string(cfg.Policy))
	if err != nil {
		return nil, err
	}
	cfg.Policy = policy
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	c := &Cluster{
		cfg:       cfg,
		routes:    map[string]*route{},
		start:     time.Now(),
		probeStop: make(chan struct{}),
	}
	if cfg.Node.Trace.Enabled {
		tcfg := cfg.Node.Trace
		tcfg.Node = "router"
		c.tracer = obs.NewTracer(tcfg)
	}
	if cfg.RebalanceGap > 0 {
		cooldown := cfg.RebalanceCooldown
		if cooldown <= 0 {
			cooldown = 5 * time.Second
		}
		c.rebalancer = control.NewRemapPlanner(control.RemapConfig{
			ImbalanceTh: cfg.RebalanceGap,
			CooldownUS:  float64(cooldown.Microseconds()),
			QueueTh:     cfg.RebalanceQueueDepth,
		})
	}
	names := map[string]bool{}
	for i, spec := range cfg.Nodes {
		platform, err := hw.PlatformByName(spec.Platform)
		if err != nil {
			c.closeNodes()
			return nil, err
		}
		name := DefaultNodeName(spec, i)
		if names[name] {
			c.closeNodes()
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		names[name] = true
		ncfg := cfg.Node
		ncfg.Platform = platform
		if spec.Workers > 0 {
			ncfg.Workers = spec.Workers
		}
		// Each node's trace lanes carry its own name; the config is kept
		// on the node, so a revived incarnation inherits it.
		ncfg.Trace.Node = name
		n := &node{name: name, platform: spec.Platform}
		if ncfg.Journal {
			// Journaled results replicate to the session's buddy the same
			// way chunks do, so a failover can re-seed the resumed
			// journal's sequence counter and catch-up ring.
			ncfg.OnResult = c.resultHook(n)
		}
		n.cfg = ncfg
		srv, err := serve.New(ncfg)
		if err != nil {
			c.closeNodes()
			return nil, fmt.Errorf("cluster: node %s: %w", name, err)
		}
		n.srv.Store(srv)
		c.nodes = append(c.nodes, n)
	}
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop(cfg.ProbeInterval)
	}
	return c, nil
}

// closeNodes stops every constructed node (New error paths, Close),
// retired incarnations included.
func (c *Cluster) closeNodes() {
	for _, n := range c.nodes {
		for _, srv := range n.incarnations() {
			srv.Close()
		}
	}
}

// elapsed is time since start on the configured clock (wall by
// default; the harness injects its virtual clock).
func (c *Cluster) elapsed() time.Duration {
	if c.cfg.Elapsed != nil {
		return c.cfg.Elapsed()
	}
	return time.Since(c.start)
}

// mark records one fleet-plane trace instant at the cluster clock.
// Deterministic replay holds exactly when the harness injects its
// virtual clock via Config.Elapsed; on the wall clock the instants
// still order correctly, they just carry wall timestamps.
func (c *Cluster) mark(name string, count int64) {
	c.tracer.Instant("fleet", obs.StageCtl, name, float64(c.elapsed().Microseconds()), count)
}

// Tracer returns the router's fleet-plane tracer, nil when tracing is
// off.
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// WriteTrace renders the fleet's merged Chrome trace: the router's
// fleet track plus every node incarnation's lifecycle lanes, each
// under its own process group.
func (c *Cluster) WriteTrace(w io.Writer) error {
	if c.tracer == nil {
		return fmt.Errorf("cluster: tracing disabled (set Node.Trace.Enabled)")
	}
	tracers := []*obs.Tracer{c.tracer}
	for _, n := range c.nodes {
		for _, srv := range n.incarnations() {
			if t := srv.Tracer(); t != nil {
				tracers = append(tracers, t)
			}
		}
	}
	return obs.WriteChrome(w, tracers...)
}

// StageHists merges the per-stage latency histograms across every node
// incarnation — the fleet-wide stage breakdown. nil when tracing is
// off.
func (c *Cluster) StageHists() []obs.HistSnapshot {
	if c.tracer == nil {
		return nil
	}
	var all [][]obs.HistSnapshot
	for _, n := range c.nodes {
		for _, srv := range n.incarnations() {
			if h := srv.StageHists(); h != nil {
				all = append(all, h)
			}
		}
	}
	return obs.MergeHists(all...)
}

// Close stops the probe loop and every node's worker pool.
func (c *Cluster) Close() {
	c.probeOnce.Do(func() { close(c.probeStop) })
	c.probeWG.Wait()
	c.closeNodes()
}

// probeLoop periodically probes node health and fails over sessions
// stranded on dead nodes.
func (c *Cluster) probeLoop(interval time.Duration) {
	defer c.probeWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// ProbeNow runs one health-probe pass: any dead or draining node that
// still owns routed sessions has them moved to surviving nodes (a
// create can race a kill or drain and land on a node the migration
// sweep already missed), then the load rebalancer gets one decision.
func (c *Cluster) ProbeNow() {
	for _, n := range c.nodes {
		switch n.state.Load() {
		case stateDead:
			c.failoverNode(n)
		case stateDraining:
			c.migrate(n, true)
		}
	}
	c.maybeRebalance()
}

// maybeRebalance consumes the node-load signals and, when the
// utilization spread between the hottest and the coldest alive node
// exceeds the configured gap (and the cooldown expired), migrates one
// session from hot to cold — the fleet-level analogue of the per-node
// NMP remap: placement tracks the load, not just session churn.
func (c *Cluster) maybeRebalance() {
	if c.rebalancer == nil {
		return
	}
	alive := c.aliveNodes(nil)
	if len(alive) < 2 {
		return
	}
	nowUS := float64(c.elapsed().Microseconds())
	loads := make([]serve.NodeLoad, len(alive))
	devs := make([]control.DeviceSignals, len(alive))
	for i, n := range alive {
		loads[i] = n.server().Load()
		// Queued is the node's live scheduler queue depth
		// (serve.NodeLoad.PendingInvocations) — the execution
		// scheduler's signal, gated by Config.RebalanceQueueDepth — so
		// the fleet rebalancer reacts to real queue pressure, not only
		// the static capacity-weighted session cost. BacklogUS stays 0:
		// the node's drain-time spread is cumulative over its lifetime
		// (it never decays once work completes), so comparing it
		// against the gate's time threshold would migrate sessions off
		// healthy idle fleets forever.
		devs[i] = control.DeviceSignals{
			Device:      n.name,
			Utilization: loads[i].Utilization,
			Queued:      loads[i].PendingInvocations,
		}
	}
	if !c.rebalancer.ShouldRemap(nowUS, devs) {
		return
	}
	if c.migrateForLoad(alive, loads) {
		c.rebalancer.Committed(nowUS, 0)
	} else {
		c.rebalancer.Done(nowUS)
	}
}

// migrateForLoad picks the session on the hottest node whose move to
// the coldest node most reduces the fleet's maximum utilization, and
// moves it gracefully (close on hot — queued frames execute — then
// re-create on cold under the same fleet-wide ID). Returns false when
// no move strictly improves the balance.
func (c *Cluster) migrateForLoad(alive []*node, loads []serve.NodeLoad) bool {
	hot, cold := 0, 0
	for i := range alive {
		if loads[i].Utilization > loads[hot].Utilization {
			hot = i
		}
		if loads[i].Utilization < loads[cold].Utilization {
			cold = i
		}
	}
	if alive[hot] == alive[cold] || loads[hot].CapacityMACs <= 0 || loads[cold].CapacityMACs <= 0 {
		return false
	}
	hotN, coldN := alive[hot], alive[cold]
	hotSrv, coldSrv := hotN.server(), coldN.server()

	c.mu.Lock()
	var candidates []*route
	for _, id := range c.order {
		rt := c.routes[id]
		if rt.node == hotN && !rt.closed {
			candidates = append(candidates, rt)
		}
	}
	c.mu.Unlock()

	curMax := loads[hot].Utilization
	var best *route
	bestMax := curMax
	for _, rt := range candidates {
		net, err := nn.ByName(rt.cfg.Network)
		if err != nil {
			continue
		}
		cost := float64(net.TotalMACs())
		hotAfter := loads[hot].Utilization - cost/loads[hot].CapacityMACs
		coldAfter := loads[cold].Utilization + cost/loads[cold].CapacityMACs
		newMax := hotAfter
		if coldAfter > newMax {
			newMax = coldAfter
		}
		if newMax < bestMax-1e-12 {
			bestMax = newMax
			best = rt
		}
	}
	if best == nil {
		return false
	}

	// Serialize with failover/drain sweeps so a session moves once.
	c.migMu.Lock()
	defer c.migMu.Unlock()
	c.mu.Lock()
	stillOurs := best.node == hotN && !best.closed
	oldID := best.localID
	c.mu.Unlock()
	if !stillOurs {
		return false
	}
	// Create-then-commit-then-close: the route flips to the new owner
	// before the old session closes, so concurrent ingest never lands in
	// a window where neither node owns the stream, and a failed create
	// leaves the session running on the hot node untouched.
	sess, err := coldSrv.CreateSession(best.cfg)
	if err != nil {
		return false
	}
	// The commit and the replica drop run under the route's replication
	// mutex: an in-flight replication for the hot incarnation either
	// lands before the drop (and is dropped with the rest) or waits and
	// then sees the bumped epoch.
	best.repMu.Lock()
	c.mu.Lock()
	if best.closed || best.node != hotN || best.localID != oldID {
		// A client close (or another sweep) won the race; undo ours.
		c.mu.Unlock()
		best.repMu.Unlock()
		_, _ = coldSrv.CloseSession(sess.ID)
		return false
	}
	best.epoch++
	best.node = coldN
	best.localID = sess.ID
	best.migrations++
	prevBuddy := best.buddy
	best.buddy = nil
	c.mu.Unlock()
	if prevBuddy != nil && prevBuddy.state.Load() != stateDead {
		// Stale replicas: the old incarnation's journal closes below with
		// every queued frame executed; its entries must not replay into
		// the re-created session.
		prevBuddy.server().ReplicaDrop(best.extID)
	}
	best.repMu.Unlock()
	// Graceful: the old session's queued frames execute during close.
	_, _ = hotSrv.CloseSession(oldID)
	c.migrations.Add(1)
	c.mark("rebalance:"+best.extID+":"+hotN.name+">"+coldN.name, 1)
	return true
}

// Node returns a fleet member by name.
func (c *Cluster) nodeByName(name string) (*node, error) {
	for _, n := range c.nodes {
		if n.name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("cluster: no node %q", name)
}

// KillNode simulates a node failure: its worker pool stops and the
// node is marked dead. Queued frames on the node are lost; the next
// probe (or any request that hits the dead route) fails its sessions
// over to surviving nodes and counts the shed frames.
func (c *Cluster) KillNode(name string) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	n, err := c.nodeByName(name)
	if err != nil {
		return err
	}
	if n.state.Swap(stateDead) == stateDead {
		return fmt.Errorf("cluster: node %q already dead", name)
	}
	n.server().Close()
	c.mark("kill:"+name, 1)
	return nil
}

// ReviveNode brings a killed node back: any session still routed to
// the dead incarnation is failed over first (so no route dangles into
// the new server), then a fresh server starts under the node's
// original config. The dead incarnation is retired, not discarded —
// its stranded sessions and counters stay part of the fleet's
// accounting, exactly like the pre-revive corpse did.
func (c *Cluster) ReviveNode(name string) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	n, err := c.nodeByName(name)
	if err != nil {
		return err
	}
	if n.state.Load() != stateDead {
		return fmt.Errorf("cluster: node %q is %s, not dead", name, n.stateName())
	}
	c.failoverNode(n)
	srv, err := serve.New(n.cfg)
	if err != nil {
		return fmt.Errorf("cluster: reviving node %s: %w", name, err)
	}
	old := n.srv.Swap(srv)
	n.retiredMu.Lock()
	n.retired = append(n.retired, old)
	n.retiredMu.Unlock()
	n.state.Store(stateUp)
	c.mark("revive:"+name, 1)
	return nil
}

// UndrainNode returns a draining node to service: it accepts new
// sessions again. Sessions drained off it earlier stay where they
// landed; placement repopulates the node as traffic arrives.
func (c *Cluster) UndrainNode(name string) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	n, err := c.nodeByName(name)
	if err != nil {
		return err
	}
	if !n.state.CompareAndSwap(stateDraining, stateUp) {
		return fmt.Errorf("cluster: node %q is %s, not draining", name, n.stateName())
	}
	n.server().SetDraining(false)
	c.mark("undrain:"+name, 1)
	return nil
}

// DrainNode gracefully migrates a node's sessions away: the node stops
// accepting new sessions, every routed session is closed on it (its
// queued frames execute — nothing is shed) and re-created on a
// surviving node under the same config, keeping its fleet-wide ID.
func (c *Cluster) DrainNode(name string) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	n, err := c.nodeByName(name)
	if err != nil {
		return err
	}
	if !n.state.CompareAndSwap(stateUp, stateDraining) {
		return fmt.Errorf("cluster: node %q is %s", name, n.stateName())
	}
	n.server().SetDraining(true)
	c.mark("drain:"+name, 1)
	c.migrate(n, true)
	return nil
}

// failoverNode moves every session still routed to the dead node onto
// survivors. Safe to call repeatedly and concurrently.
func (c *Cluster) failoverNode(n *node) {
	c.migrate(n, false)
}

// migrate moves the node's routed sessions elsewhere. graceful closes
// each session on the old node first (drain: queued frames execute).
// Otherwise the old node is dead: when its unacknowledged journal
// entries survive on a buddy, the session resumes there (or on a
// placed survivor when the buddy cannot host) — the chunk entries
// replay through the normal ingest path and the queued frames are
// recovered; without a replica (journal off, buddy dead, nothing
// unacknowledged) the dead node's queued frames are shed.
func (c *Cluster) migrate(n *node, graceful bool) {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	srv := n.server()
	c.mu.Lock()
	var affected []*route
	for _, id := range c.order {
		rt := c.routes[id]
		if rt.node == n && !rt.closed {
			affected = append(affected, rt)
		}
	}
	c.mu.Unlock()
	for _, rt := range affected {
		c.moveRoute(rt, n, srv, graceful)
	}
}

// moveRoute moves one route off n (dead or draining). It holds the
// route's replication mutex for the whole move, so an in-flight
// replication either finishes before the replica log is taken here
// (and its entry replays) or waits and then observes the epoch this
// commit bumps — a late append can never strand a stale
// old-incarnation entry in the buddy store.
func (c *Cluster) moveRoute(rt *route, n *node, srv *serve.Server, graceful bool) {
	var shed uint64
	if graceful {
		// The graceful close runs before repMu is taken: it drains the
		// session's queued frames, and their completions fire the
		// result-replication hook, which needs repMu itself — holding
		// it across the close would deadlock. Any entries the drain
		// replicates are dropped with the rest of the stale log below.
		c.mu.Lock()
		localID := rt.localID
		ours := rt.node == n && !rt.closed
		c.mu.Unlock()
		if !ours {
			return
		}
		if _, err := srv.CloseSession(localID); err != nil {
			// The session may have raced a client close; count what
			// its queue still held and move on.
			if snap, serr := srv.Snapshot(localID); serr == nil {
				shed = uint64(snap.QueueLen)
			}
		}
	}
	rt.repMu.Lock()
	defer rt.repMu.Unlock()
	c.mu.Lock()
	if rt.node != n || rt.closed {
		// A client close (or another sweep) resolved the route while we
		// waited on repMu; nothing left to move.
		c.mu.Unlock()
		return
	}
	localID := rt.localID
	buddy := rt.buddy
	c.mu.Unlock()

	if !graceful {
		if snap, err := srv.Snapshot(localID); err == nil {
			// Dead node: whatever sat in the ingest queue is lost unless
			// the journal replica below recovers it.
			shed = uint64(snap.QueueLen)
		}
	}
	// Pull the replicated journal off the buddy before placing: a
	// kill-failover with surviving entries resumes on the buddy itself
	// when it can host, so replay normally never crosses another
	// network hop. A draining buddy still holds the replicas — take
	// them; only the new session lands elsewhere.
	var entries []serve.ReplicaEntry
	if !graceful && buddy != nil && buddy.state.Load() != stateDead {
		entries = buddy.server().ReplicaTake(rt.extID)
	}
	var target *node
	var sess *serve.Session
	if len(entries) > 0 && buddy.alive() {
		if s2, err := buddy.server().CreateSession(rt.cfg); err == nil {
			target, sess = buddy, s2
		}
		// A buddy that cannot host (raced into draining or overload)
		// falls through to placement: the replicas are already in hand,
		// replay just crosses one extra hop instead of losing the
		// session.
	}
	if target == nil {
		if placed, err := c.place(rt.extID, n); err == nil {
			if s2, cerr := placed.server().CreateSession(rt.cfg); cerr == nil {
				target, sess = placed, s2
			}
		}
	}
	if target == nil {
		// No survivor can host the session: it is gone, along with
		// whatever the replicas could have recovered.
		c.mu.Lock()
		rt.epoch++
		rt.shedFrames += shed
		c.terminateRouteLocked(rt, shed)
		c.mu.Unlock()
		c.lostSessions.Add(1)
		return
	}
	// Replay before committing the route: the new session is only
	// reachable through this sweep until the route flips, so the
	// replayed chunks re-enter ingest strictly before any new client
	// chunk — preserving the session's watermark ordering.
	var recovered uint64
	if len(entries) > 0 {
		shed = 0
		recovered = c.replay(target, sess.ID, rt.extID, entries)
	}
	c.mu.Lock()
	if rt.closed {
		// A client close landed while we re-created the session:
		// undo the new copy instead of committing an orphan the
		// fleet's load signal would count forever. The route's
		// counters were already folded by that close, so the late
		// shed goes straight into the closed roll-up.
		rt.shedFrames += shed
		c.closedShed += shed
		c.mu.Unlock()
		_, _ = target.server().CloseSession(sess.ID)
		return
	}
	prevBuddy := rt.buddy
	rt.epoch++
	rt.node = target
	rt.localID = sess.ID
	rt.buddy = nil // entries consumed; next ingest re-homes the replica
	rt.shedFrames += shed
	rt.recoveredFrames += recovered
	rt.failovers++
	c.mu.Unlock()
	if graceful && prevBuddy != nil && prevBuddy.state.Load() != stateDead {
		// A graceful move executed every queued frame during close; the
		// old incarnation's replica entries are stale (their sequence
		// numbers belong to the closed journal) and must not replay
		// into the re-created session later.
		prevBuddy.server().ReplicaDrop(rt.extID)
	}
	// Annotate the move on the fleet track: a graceful migration shed
	// nothing, a replayed kill-failover carries the frames it
	// recovered, a bare kill-failover the frames it lost.
	switch {
	case graceful:
		c.mark("migrate:"+rt.extID+":"+n.name+">"+target.name, int64(shed))
	case recovered > 0 || len(entries) > 0:
		c.mark("replay:"+rt.extID+":"+n.name+">"+target.name, int64(recovered))
	default:
		c.mark("failover:"+rt.extID+":"+n.name+">"+target.name, int64(shed))
	}
}

// replay re-ingests a session's replicated journal on the failover
// target: chunk entries re-enter the normal ingest path (recovering
// their queued frames), result entries refill the resumed catch-up
// ring under their original sequence numbers, and the journal's
// sequence counter seeds from the log's highest seq — results
// included, since they share the chunk sequence — so nothing the new
// incarnation assigns can collide with a sequence number a streaming
// client has already consumed. Returns the frames the replay
// regenerated. Entries that fail to decode or ingest are skipped —
// replay is best-effort recovery of an already-failed node, never a
// new failure mode.
func (c *Cluster) replay(target *node, localID, extID string, entries []serve.ReplicaEntry) uint64 {
	srv := target.server()
	// The replica log is seq-sorted, so the last entry carries the
	// highest watermark the buddy saw.
	_ = srv.SeedJournal(localID, entries[len(entries)-1].Seq)
	var recovered uint64
	for _, e := range entries {
		ent, err := serve.DecodeJournalEntry(e.Data)
		if err != nil {
			continue
		}
		switch ent.Kind {
		case serve.JournalResult:
			_ = srv.RestoreResult(localID, ent.Result)
		case serve.JournalChunk:
			res, err := srv.Ingest(localID, ent.Chunk)
			if err != nil {
				continue
			}
			recovered += uint64(res.Frames)
		}
	}
	return recovered
}

// terminateRouteLocked folds a terminating route's failover counters
// into the monotonic closed roll-up; callers hold c.mu and must have
// applied any final shed to rt before calling. Safe against a
// concurrent client close: if the route is already closed (and hence
// already folded), only the late shed delta is added.
func (c *Cluster) terminateRouteLocked(rt *route, lateShed uint64) {
	if rt.closed {
		c.closedShed += lateShed
		return
	}
	rt.closed = true
	c.foldClosedLocked(rt)
}

// foldClosedLocked moves a route's failover counters from the live sum
// into the closed roll-up; called exactly once, under c.mu, when
// rt.closed flips to true.
func (c *Cluster) foldClosedLocked(rt *route) {
	c.closedFailovers += uint64(rt.failovers)
	c.closedShed += rt.shedFrames
	c.closedRecovered += rt.recoveredFrames
}

// failoverCounts sums the fleet's monotonic failover accounting: the
// closed roll-up plus every open route's live counters, read in one
// critical section so a closing session can never be counted in
// neither (an under-count) or both (a double count).
func (c *Cluster) failoverCounts() (sessions, shed, recovered uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sessions, shed, recovered = c.closedFailovers, c.closedShed, c.closedRecovered
	for _, rt := range c.routes {
		if rt.closed {
			continue
		}
		sessions += uint64(rt.failovers)
		shed += rt.shedFrames
		recovered += rt.recoveredFrames
	}
	return sessions, shed, recovered
}

// buddyFor resolves a session owner's deterministic replication buddy:
// the next alive node after the owner in construction order (wrapping),
// nil when no other node is alive. Determinism matters — the failover
// sweep must find the replicas exactly where the ingest path put them.
func (c *Cluster) buddyFor(owner *node) *node {
	for i, n := range c.nodes {
		if n != owner {
			continue
		}
		for k := 1; k < len(c.nodes); k++ {
			cand := c.nodes[(i+k)%len(c.nodes)]
			if cand != owner && cand.alive() {
				return cand
			}
		}
		return nil
	}
	return nil
}

// replicate ships one journaled chunk to the session's buddy node and
// trims the replica log to the chunk's ack watermark. When the buddy
// changed since the last chunk (fleet membership moved), surviving
// entries re-home to the new buddy first so the unacknowledged window
// stays whole on one node. The whole exchange runs under the route's
// replication mutex: re-home plus append is atomic against concurrent
// appends, and a failover sweep that won the race has already bumped
// the epoch — the stale chunk is dropped (its frames are counted shed
// by the sweep's snapshot) instead of stranding an old-incarnation
// entry that a later failover would replay.
func (c *Cluster) replicate(rt *route, owner *node, epoch uint64, chunk *events.Stream, res serve.IngestResult) {
	data, err := serve.EncodeJournalChunk(res.Seq, chunk)
	if err != nil {
		return
	}
	rt.repMu.Lock()
	defer rt.repMu.Unlock()
	buddy := c.buddyFor(owner)
	c.mu.Lock()
	if rt.epoch != epoch || rt.closed {
		// The route flipped (failover, migration) or closed after this
		// chunk was ingested; its journal entry belongs to the dead
		// incarnation.
		c.mu.Unlock()
		return
	}
	prev := rt.buddy
	rt.buddy = buddy
	extID := rt.extID
	c.mu.Unlock()
	if prev != nil && prev != buddy && prev.state.Load() != stateDead {
		moved := prev.server().ReplicaTake(extID)
		if buddy != nil {
			for _, e := range moved {
				buddy.server().ReplicaAppend(extID, e.Seq, e.Kind, e.Data, 0)
			}
		}
	}
	if buddy == nil {
		return
	}
	buddy.server().ReplicaAppend(extID, res.Seq, serve.JournalChunk, data, res.AckSeq)
	if prev != buddy {
		// Buddy (re)assignment is rare — mark it; per-chunk appends are
		// far too hot for the bounded ctl ring.
		c.mark("replicate:"+extID+">"+buddy.name, 1)
	}
}

// resultHook builds node n's serve.Config.OnResult callback: it maps
// the node-local session back to its fleet route and ships the
// encoded result to the route's buddy, carrying the session's
// sequence watermark — and the catch-up ring contents — across a
// future failover. Results follow the chunks' buddy (rt.buddy, set by
// replicate) so the whole journal survives together on one node; a
// result that outruns its session's first replicated chunk is simply
// skipped, the next append carries the watermark forward.
func (c *Cluster) resultHook(n *node) func(string, serve.ResultEvent, uint64) {
	return func(localID string, ev serve.ResultEvent, ackSeq uint64) {
		c.mu.Lock()
		var rt *route
		for _, r := range c.routes {
			if r.node == n && r.localID == localID && !r.closed {
				rt = r
				break
			}
		}
		c.mu.Unlock()
		if rt == nil {
			return
		}
		data, err := serve.EncodeJournalResult(ev)
		if err != nil {
			return
		}
		rt.repMu.Lock()
		defer rt.repMu.Unlock()
		c.mu.Lock()
		stale := rt.closed || rt.node != n || rt.localID != localID
		buddy := rt.buddy
		extID := rt.extID
		c.mu.Unlock()
		if stale || buddy == nil || buddy.state.Load() == stateDead {
			return
		}
		buddy.server().ReplicaAppend(extID, ev.Seq, serve.JournalResult, data, ackSeq)
	}
}

// --- session lifecycle (programmatic surface; HTTP handlers proxy
// through these) ---

// CreateSession places a session on the fleet and returns its snapshot
// under the fleet-wide ID.
func (c *Cluster) CreateSession(cfg serve.SessionConfig) (serve.SessionSnapshot, error) {
	extID := fmt.Sprintf("c%d", c.nextID.Add(1))
	n, err := c.place(extID, nil)
	if err != nil {
		return serve.SessionSnapshot{}, err
	}
	sess, err := n.server().CreateSession(cfg)
	if err != nil {
		return serve.SessionSnapshot{}, err
	}
	rt := &route{extID: extID, cfg: cfg, node: n, localID: sess.ID}
	c.mu.Lock()
	c.routes[extID] = rt
	c.order = append(c.order, extID)
	c.mu.Unlock()
	// The create can race a kill/drain: placement saw the node up, but
	// by the time the route registers the migration sweep may already
	// have run and missed it. Re-check and move the session ourselves.
	switch n.state.Load() {
	case stateDead:
		c.failoverNode(n)
	case stateDraining:
		c.migrate(n, true)
	}
	return c.snapshotRoute(rt)
}

// endpoint resolves a route to its current owner, failing the owner's
// sessions over first when it is dead (a request can race the probe).
// A route that ended on a dead node (lost session, or closed before
// the node died) is rejected rather than proxied: the corpse would
// accept frames no worker will ever drain.
func (c *Cluster) endpoint(extID string) (*node, string, *route, error) {
	for {
		c.mu.Lock()
		rt, ok := c.routes[extID]
		if !ok {
			c.mu.Unlock()
			return nil, "", nil, fmt.Errorf("%w: %q", serve.ErrNoSession, extID)
		}
		n, localID, closed := rt.node, rt.localID, rt.closed
		c.mu.Unlock()
		if n.state.Load() == stateDead {
			if closed {
				return nil, "", nil, fmt.Errorf("cluster: session %q is closed (node %s is dead)", extID, n.name)
			}
			c.failoverNode(n)
			continue
		}
		return n, localID, rt, nil
	}
}

// Ingest proxies one event chunk to the session's owning node. A
// load-driven migration can flip the route mid-request; when the send
// fails and the route has moved, the chunk retries against the new
// owner instead of surfacing a spurious error to the client.
func (c *Cluster) Ingest(extID string, chunk *events.Stream) (serve.IngestResult, error) {
	for {
		n, localID, rt, err := c.endpoint(extID)
		if err != nil {
			return serve.IngestResult{}, err
		}
		// Capture the route's epoch before the send: if a failover sweep
		// flips the route while the chunk is in flight, the bumped epoch
		// tells replicate the entry belongs to the dead incarnation. A
		// route that moved between resolution and here re-resolves; a
		// closed route proceeds — the server owns that error, and
		// replicate's epoch/closed check drops any journal entry.
		c.mu.Lock()
		epoch := rt.epoch
		current := rt.node == n && rt.localID == localID
		c.mu.Unlock()
		if !current {
			continue
		}
		res, err := n.server().Ingest(localID, chunk)
		if err == nil {
			// Router-hop annotation: which node served this chunk, and how
			// many frames the hop produced.
			c.mark("hop:"+rt.extID+">"+n.name, int64(res.Frames))
			if res.Seq > 0 {
				// Journaled chunk: replicate it to the buddy before acking
				// the client, so a kill after this return can replay it.
				c.replicate(rt, n, epoch, chunk, res)
			}
			return res, nil
		}
		if n.state.Load() == stateDead {
			// The owner died between route resolution and the send (a
			// closed server rejects ingest rather than stranding frames on
			// the corpse); loop — endpoint fails the session over and the
			// chunk retries against the new owner.
			continue
		}
		c.mu.Lock()
		moved := rt.node != n || rt.localID != localID
		c.mu.Unlock()
		if !moved {
			return res, err
		}
	}
}

// Snapshot returns the session's state under its fleet-wide ID.
func (c *Cluster) Snapshot(extID string) (serve.SessionSnapshot, error) {
	c.mu.Lock()
	rt, ok := c.routes[extID]
	c.mu.Unlock()
	if !ok {
		return serve.SessionSnapshot{}, fmt.Errorf("%w: %q", serve.ErrNoSession, extID)
	}
	return c.snapshotRoute(rt)
}

// snapshotRoute reads the owning node's snapshot and rewrites it to
// the fleet view: fleet-wide ID, node name, failover accounting,
// lost-session state.
func (c *Cluster) snapshotRoute(rt *route) (serve.SessionSnapshot, error) {
	c.mu.Lock()
	n, localID, closed := rt.node, rt.localID, rt.closed
	extID := rt.extID
	failovers, shed, recovered, migrations := rt.failovers, rt.shedFrames, rt.recoveredFrames, rt.migrations
	c.mu.Unlock()
	snap, err := n.server().Snapshot(localID)
	if err != nil {
		if closed {
			// Lost to a total failover or evicted after close: report the
			// terminal state instead of a routing error.
			snap = serve.SessionSnapshot{State: "closed"}
		} else {
			return serve.SessionSnapshot{}, err
		}
	}
	snap.ID = extID
	snap.Node = n.name
	snap.Failovers = failovers
	snap.FailoverShedFrames = shed
	snap.FailoverRecoveredFrames = recovered
	snap.Migrations = migrations
	if closed && snap.State == "active" {
		snap.State = "closed"
	}
	return snap, nil
}

// Snapshots lists every routed session in creation order.
func (c *Cluster) Snapshots() []serve.SessionSnapshot {
	c.mu.Lock()
	routes := make([]*route, 0, len(c.order))
	for _, id := range c.order {
		routes = append(routes, c.routes[id])
	}
	c.mu.Unlock()
	out := make([]serve.SessionSnapshot, 0, len(routes))
	for _, rt := range routes {
		snap, err := c.snapshotRoute(rt)
		if err != nil {
			continue // evicted on the node; drop from the listing
		}
		out = append(out, snap)
	}
	return out
}

// CloseSession closes the session on its owning node and returns the
// final snapshot under the fleet-wide ID. A migration can move the
// session while the close is in flight; the stale close lands on the
// old (already-closed) local session, so re-resolve and close the new
// owner too — otherwise the migrated copy would leak as an orphan.
func (c *Cluster) CloseSession(extID string) (serve.SessionSnapshot, error) {
	var (
		snap *serve.SessionSnapshot
		n    *node
		rt   *route
	)
	for {
		var localID string
		var err error
		n, localID, rt, err = c.endpoint(extID)
		if err != nil {
			return serve.SessionSnapshot{}, err
		}
		snap, err = n.server().CloseSession(localID)
		if err != nil {
			return serve.SessionSnapshot{}, err
		}
		// Marking closed in the same critical section as the moved check
		// makes this atomic against a migration commit: either the
		// migration already flipped the route (we loop and close the new
		// copy) or it will see closed and undo itself. Folding the
		// route's failover counters into the monotonic closed roll-up in
		// the same section keeps the fleet totals from under-counting
		// across the close.
		c.mu.Lock()
		moved := rt.node != n || rt.localID != localID
		if !moved {
			rt.closed = true
			c.foldClosedLocked(rt)
		}
		c.mu.Unlock()
		if !moved {
			break
		}
	}
	c.mu.Lock()
	failovers, shed, recovered, migrations := rt.failovers, rt.shedFrames, rt.recoveredFrames, rt.migrations
	buddy := rt.buddy
	c.mu.Unlock()
	if buddy != nil && buddy.state.Load() != stateDead {
		// The session is done; its replicated journal has nothing left to
		// recover. The drop serializes with in-flight replication so a
		// late append cannot resurrect the log after it (the route is
		// marked closed above, so appends arriving later skip themselves).
		rt.repMu.Lock()
		buddy.server().ReplicaDrop(extID)
		rt.repMu.Unlock()
	}
	out := *snap
	out.ID = extID
	out.Node = n.name
	out.Failovers = failovers
	out.FailoverShedFrames = shed
	out.FailoverRecoveredFrames = recovered
	out.Migrations = migrations
	return out, nil
}

// NodeNames lists the fleet members in construction order.
func (c *Cluster) NodeNames() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.name
	}
	return out
}

// aliveNodes returns placeable nodes (up, not draining, not excluded)
// in construction order.
func (c *Cluster) aliveNodes(exclude *node) []*node {
	var out []*node
	for _, n := range c.nodes {
		if n != exclude && n.alive() {
			out = append(out, n)
		}
	}
	return out
}

// Pump synchronously drains every live node's scheduled sessions —
// the fleet-wide twin of serve.Server.Pump, only meaningful when the
// per-node config sets ManualDrain. Dead nodes are skipped; their
// queues are frozen evidence for the failover accounting.
func (c *Cluster) Pump() {
	for _, n := range c.nodes {
		if n.state.Load() != stateDead {
			n.server().Pump()
		}
	}
}

// NodeStats is one node's deterministic accounting view, summed over
// every incarnation the node has run (a killed-then-revived node keeps
// its corpse's counters). Residuals count frames sitting in local
// active sessions — ingest queues plus DSFA aggregators — which is
// exactly the term that closes fleet-wide frame conservation:
//
//	FramesIn == RawFramesDone + FramesDropped + FramesDroppedDSFA
//	            + ResidualQueued + ResidualAgg
//
// at any quiescent point (queues pumped, no requests in flight).
type NodeStats struct {
	Name     string
	Platform string
	State    string
	Totals   serve.SessionTotals
	// Residual* count the current incarnation's in-flight frames;
	// Retired* the frames stranded forever in killed incarnations
	// (evidence of past failovers, still part of conservation).
	ResidualQueued int
	ResidualAgg    int
	RetiredQueued  int
	RetiredAgg     int
}

// NodeStats reports every node's accounting view in construction
// order.
func (c *Cluster) NodeStats() []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		st := NodeStats{Name: n.name, Platform: n.platform, State: n.stateName()}
		incs := n.incarnations()
		for i, srv := range incs {
			st.Totals.Merge(srv.Totals())
			var q, a int
			for _, snap := range srv.Snapshots() {
				if snap.State == "active" {
					q += snap.QueueLen
					a += snap.AggPending
				}
			}
			if i == len(incs)-1 {
				st.ResidualQueued, st.ResidualAgg = st.ResidualQueued+q, st.ResidualAgg+a
			} else {
				st.RetiredQueued, st.RetiredAgg = st.RetiredQueued+q, st.RetiredAgg+a
			}
		}
		out = append(out, st)
	}
	return out
}

// FleetTotals sums the monotonic session roll-up across every node and
// incarnation.
func (c *Cluster) FleetTotals() serve.SessionTotals {
	var t serve.SessionTotals
	for _, n := range c.nodes {
		for _, srv := range n.incarnations() {
			t.Merge(srv.Totals())
		}
	}
	return t
}

// SchedTotals sums every node's execution-scheduler counters across
// incarnations — the fleet's micro-batching roll-up (dispatches,
// coalesced members, occupancy).
func (c *Cluster) SchedTotals() sched.Stats {
	var t sched.Stats
	for _, n := range c.nodes {
		for _, srv := range n.incarnations() {
			t.Merge(srv.SchedStats())
		}
	}
	return t
}

// sessionsOn counts open routed sessions per node name.
func (c *Cluster) sessionsOn() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int{}
	for _, rt := range c.routes {
		if !rt.closed {
			out[rt.node.name]++
		}
	}
	return out
}
