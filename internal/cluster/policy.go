package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// ErrNoNodes reports that no alive node can take a session — a
// transient fleet condition (503), not a bad request.
var ErrNoNodes = errors.New("cluster: no alive nodes")

// PlacementPolicy selects how the router places sessions on nodes.
type PlacementPolicy string

// Placement policies. PolicyLeastLoaded picks the node whose
// capacity-weighted active-session cost (serve.NodeLoad.Utilization)
// is lowest, so a bigger platform absorbs proportionally more work.
// PolicyHash maps the fleet-wide session ID deterministically onto the
// alive node set — stable, stateless placement; on failover only the
// failed node's sessions re-hash over the survivors.
const (
	PolicyLeastLoaded PlacementPolicy = "least-loaded"
	PolicyHash        PlacementPolicy = "hash"
)

// ParsePlacementPolicy parses a policy name ("" = least-loaded).
func ParsePlacementPolicy(s string) (PlacementPolicy, error) {
	switch s {
	case "", string(PolicyLeastLoaded), "least_loaded", "ll":
		return PolicyLeastLoaded, nil
	case string(PolicyHash):
		return PolicyHash, nil
	}
	return "", fmt.Errorf("cluster: unknown placement policy %q (have %s, %s)",
		s, PolicyLeastLoaded, PolicyHash)
}

// place picks the node for a session under the configured policy,
// considering only alive, non-draining nodes and never the excluded
// one (the node being failed over or drained).
func (c *Cluster) place(extID string, exclude *node) (*node, error) {
	candidates := c.aliveNodes(exclude)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w to place session %q", ErrNoNodes, extID)
	}
	if c.cfg.Policy == PolicyHash {
		h := fnv.New32a()
		_, _ = h.Write([]byte(extID))
		return candidates[int(h.Sum32())%len(candidates)], nil
	}
	// Least-loaded: lowest utilization, then fewest active sessions,
	// then construction order — deterministic under ties.
	best := candidates[0]
	bestLoad := best.server().Load()
	for _, n := range candidates[1:] {
		l := n.server().Load()
		if l.Utilization < bestLoad.Utilization ||
			(l.Utilization == bestLoad.Utilization && l.SessionsActive < bestLoad.SessionsActive) {
			best, bestLoad = n, l
		}
	}
	return best, nil
}
