// Package nn models the event-vision networks evaluated by the paper
// (Table 1): layer DAGs with analytic compute/memory/sparsity
// profiles used by the Network Mapper and performance model, plus a
// small numeric runtime (dense and sparse convolution, LIF spiking
// dynamics) used by the functional tests and examples.
//
// The paper never retrains networks — Ev-Edge consumes pretrained
// models — so what matters here is faithful topology (layer counts and
// types per Table 1), realistic shapes and op counts, activation
// sparsity (SNNs spike sparsely; that is why they gain the most from
// sparse execution), and a per-layer quantization-sensitivity profile
// that drives the accuracy-degradation model calibrated to Table 2.
package nn

import "fmt"

// Precision is a numeric precision a processing element can execute a
// layer at. The Network Mapper searches over these jointly with device
// placement.
type Precision int

// Precision choices, mirroring TensorRT's deployment precisions on
// Jetson-class hardware.
const (
	FP32 Precision = iota
	FP16
	INT8
)

// String returns the usual notation.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// Bytes returns the storage size of one scalar at this precision.
func (p Precision) Bytes() int {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	}
	return 4
}

// AllPrecisions lists every precision choice.
func AllPrecisions() []Precision { return []Precision{FP32, FP16, INT8} }

// Domain distinguishes analog (ANN) from spiking (SNN) layers.
type Domain int

// Domain values.
const (
	ANN Domain = iota
	SNN
)

// String returns "ANN" or "SNN".
func (d Domain) String() string {
	if d == SNN {
		return "SNN"
	}
	return "ANN"
}

// Kind is the operator class of a layer.
type Kind int

// Layer kinds.
const (
	Conv Kind = iota
	Deconv
	FC
	Pool
	Residual // elementwise add of two inputs followed by activation
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "Conv"
	case Deconv:
		return "Deconv"
	case FC:
		return "FC"
	case Pool:
		return "Pool"
	case Residual:
		return "Residual"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Layer is one node of a network DAG with the analytic profile the
// scheduler and perf model need.
type Layer struct {
	ID     int
	Name   string
	Kind   Kind
	Domain Domain

	InC, InH, InW    int
	OutC, OutH, OutW int
	K, Stride, Pad   int

	// Timesteps > 1 means the layer executes once per SNN timestep
	// (membrane dynamics are stateful across timesteps).
	Timesteps int

	// ActDensity is the expected fraction of nonzero activations the
	// layer *produces*: spike density for SNN layers, post-ReLU density
	// for ANN layers. Input layers inherit the event-frame density at
	// runtime instead.
	ActDensity float64

	// Sensitivity scales how much quantizing this layer degrades task
	// accuracy (used by the ΔA model); first/last layers are typically
	// most sensitive.
	Sensitivity float64
}

// Validate checks the layer profile for internal consistency.
func (l *Layer) Validate() error {
	if l.InC <= 0 || l.InH <= 0 || l.InW <= 0 || l.OutC <= 0 || l.OutH <= 0 || l.OutW <= 0 {
		return fmt.Errorf("nn: layer %q has non-positive shape", l.Name)
	}
	if l.Timesteps < 1 {
		return fmt.Errorf("nn: layer %q has %d timesteps", l.Name, l.Timesteps)
	}
	if l.ActDensity < 0 || l.ActDensity > 1 {
		return fmt.Errorf("nn: layer %q activation density %f outside [0,1]", l.Name, l.ActDensity)
	}
	switch l.Kind {
	case Conv, Deconv:
		if l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("nn: layer %q kernel/stride invalid", l.Name)
		}
	case Pool:
		if l.K <= 0 || l.Stride <= 0 {
			return fmt.Errorf("nn: pool layer %q kernel/stride invalid", l.Name)
		}
	}
	return nil
}

// MACs returns the dense multiply-accumulate count of one inference
// through the layer, including all SNN timesteps. This is the work the
// all-GPU dense baseline performs regardless of event count.
func (l *Layer) MACs() int64 {
	var per int64
	switch l.Kind {
	case Conv, Deconv:
		per = int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.InC) * int64(l.K) * int64(l.K)
	case FC:
		per = int64(l.InC*l.InH*l.InW) * int64(l.OutC*l.OutH*l.OutW)
	case Pool:
		per = int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.K) * int64(l.K)
	case Residual:
		per = int64(l.OutC) * int64(l.OutH) * int64(l.OutW)
	}
	return per * int64(l.Timesteps)
}

// SparseMACs returns the arithmetic of the sparse execution path when
// the layer's input has the given activation density: work scales with
// active input sites instead of the full volume. A per-site gather
// overhead is captured by the perf model, not here.
func (l *Layer) SparseMACs(inputDensity float64) int64 {
	if inputDensity < 0 {
		inputDensity = 0
	}
	if inputDensity > 1 {
		inputDensity = 1
	}
	switch l.Kind {
	case Conv, Deconv:
		active := inputDensity * float64(l.InH*l.InW)
		per := active * float64(l.InC) * float64(l.OutC) * float64(l.K*l.K)
		return int64(per) * int64(l.Timesteps)
	case FC:
		return int64(float64(l.MACs()) * inputDensity)
	default:
		return int64(float64(l.MACs()) * inputDensity)
	}
}

// ParamCount returns the number of weights (plus biases).
func (l *Layer) ParamCount() int64 {
	switch l.Kind {
	case Conv, Deconv:
		return int64(l.OutC)*int64(l.InC)*int64(l.K)*int64(l.K) + int64(l.OutC)
	case FC:
		return int64(l.InC*l.InH*l.InW)*int64(l.OutC) + int64(l.OutC)
	default:
		return 0
	}
}

// ParamBytes returns weight storage at the given precision.
func (l *Layer) ParamBytes(p Precision) int64 { return l.ParamCount() * int64(p.Bytes()) }

// OutBytes returns the activation volume the layer ships to consumers
// at the given precision (one timestep's worth; SNN spike trains are
// shipped per timestep).
func (l *Layer) OutBytes(p Precision) int64 {
	return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(p.Bytes())
}

// InBytes returns the input activation volume at the given precision.
func (l *Layer) InBytes(p Precision) int64 {
	return int64(l.InC) * int64(l.InH) * int64(l.InW) * int64(p.Bytes())
}

// String summarizes the layer.
func (l *Layer) String() string {
	return fmt.Sprintf("%s[%s/%s %dx%dx%d->%dx%dx%d k%d s%d T%d]",
		l.Name, l.Kind, l.Domain, l.InC, l.InH, l.InW, l.OutC, l.OutH, l.OutW, l.K, l.Stride, l.Timesteps)
}
