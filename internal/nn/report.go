package nn

import (
	"fmt"
	"strings"
)

// Summary renders a per-layer report of the network: shapes, kernel
// geometry, dense MACs, parameter counts and the profile fields the
// mapper consumes. Useful for tooling and for sanity-checking the zoo
// against Table 1.
func (n *Network) Summary() string {
	var b strings.Builder
	snn, ann := n.CountByDomain()
	fmt.Fprintf(&b, "%s — %s (%s), %d layers (%d SNN, %d ANN)\n",
		n.Name, n.Task, n.TypeDesc, len(n.Layers), snn, ann)
	fmt.Fprintf(&b, "input: %s framing, window %.1f ms, nB=%d, groupK=%d, preset %s\n",
		n.Input.Framing, float64(n.Input.WindowUS)/1000, n.Input.NumBins, n.Input.GroupK, n.Input.Preset)
	fmt.Fprintf(&b, "%-14s %-7s %-4s %-22s %-5s %10s %10s %6s\n",
		"LAYER", "KIND", "DOM", "SHAPE", "K/S", "MACS(M)", "PARAMS(K)", "ACT")
	for _, l := range n.Layers {
		shape := fmt.Sprintf("%dx%dx%d->%dx%dx%d", l.InC, l.InH, l.InW, l.OutC, l.OutH, l.OutW)
		ks := fmt.Sprintf("%d/%d", l.K, l.Stride)
		fmt.Fprintf(&b, "%-14s %-7s %-4s %-22s %-5s %10.1f %10.1f %6.2f\n",
			l.Name, l.Kind, l.Domain, shape, ks,
			float64(l.MACs())/1e6, float64(l.ParamCount())/1e3, l.ActDensity)
	}
	fmt.Fprintf(&b, "total: %.2f GMACs, %.2f MB params (FP32)\n",
		float64(n.TotalMACs())/1e9, float64(n.TotalParamBytes(FP32))/1e6)
	return b.String()
}

// DOT renders the layer DAG in Graphviz format, SNN layers shaded.
func (n *Network) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
		n.Name)
	for i, l := range n.Layers {
		style := "filled, rounded"
		color := "white"
		if l.Domain == SNN {
			color = "lightyellow"
		}
		fmt.Fprintf(&b, "  l%d [label=\"%s\\n%s %dx%dx%d\", style=%q, fillcolor=%s];\n",
			i, l.Name, l.Kind, l.OutC, l.OutH, l.OutW, style, color)
	}
	for i, preds := range n.Preds {
		for _, p := range preds {
			fmt.Fprintf(&b, "  l%d -> l%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CheckShapes verifies that every edge of the DAG is shape-consistent:
// each consumer's input channel count equals the sum of its producers'
// output channels (concat semantics for multi-input layers) and the
// spatial sizes agree. The zoo is validated with this in tests, so
// hand-built networks get the same guarantee.
func (n *Network) CheckShapes() error {
	for i, l := range n.Layers {
		preds := n.Preds[i]
		if len(preds) == 0 {
			continue
		}
		sumC := 0
		for _, p := range preds {
			pl := n.Layers[p]
			if pl.OutH != l.InH || pl.OutW != l.InW {
				return fmt.Errorf("nn: %s: %s feeds %s with %dx%d, expects %dx%d",
					n.Name, pl.Name, l.Name, pl.OutH, pl.OutW, l.InH, l.InW)
			}
			sumC += pl.OutC
		}
		if sumC != l.InC {
			return fmt.Errorf("nn: %s: %s receives %d channels, expects %d",
				n.Name, l.Name, sumC, l.InC)
		}
	}
	return nil
}
