package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"evedge/internal/par"
	"evedge/internal/sparse"
)

func TestPrecision(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 || INT8.Bytes() != 1 {
		t.Fatal("precision bytes wrong")
	}
	if FP32.String() != "FP32" || FP16.String() != "FP16" || INT8.String() != "INT8" {
		t.Fatal("precision strings wrong")
	}
	if len(AllPrecisions()) != 3 {
		t.Fatal("precision list wrong")
	}
	if !strings.Contains(Precision(9).String(), "9") {
		t.Fatal("unknown precision string")
	}
}

func TestZooTable1LayerCounts(t *testing.T) {
	// The exact layer counts and SNN/ANN splits of the paper's Table 1.
	cases := []struct {
		name             string
		layers, snn, ann int
		typeDesc         string
	}{
		{SpikeFlowNet, 12, 4, 8, "SNN-ANN"},
		{FusionFlowNet, 29, 10, 19, "SNN-ANN"},
		{AdaptiveSpikeNet, 8, 8, 0, "SNN"},
		{HALSIE, 16, 3, 13, "SNN-ANN"},
		{HidalgoDepth, 15, 0, 15, "ANN"},
		{DOTIE, 1, 1, 0, "SNN"},
	}
	for _, c := range cases {
		n := MustByName(c.name)
		if len(n.Layers) != c.layers {
			t.Errorf("%s: %d layers, want %d", c.name, len(n.Layers), c.layers)
		}
		snn, ann := n.CountByDomain()
		if snn != c.snn || ann != c.ann {
			t.Errorf("%s: split %d SNN / %d ANN, want %d/%d", c.name, snn, ann, c.snn, c.ann)
		}
		if n.TypeDesc != c.typeDesc {
			t.Errorf("%s: type %q want %q", c.name, n.TypeDesc, c.typeDesc)
		}
	}
}

func TestZooValidatesAndHasWork(t *testing.T) {
	for _, n := range All() {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if n.TotalMACs() <= 0 {
			t.Fatalf("%s: no MACs", n.Name)
		}
		if n.TotalParamBytes(FP32) <= 0 {
			t.Fatalf("%s: no params", n.Name)
		}
		if n.BaselineAccuracy == 0 {
			t.Fatalf("%s: no baseline accuracy", n.Name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown network accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic")
		}
	}()
	MustByName("nope")
}

func TestLayerMACs(t *testing.T) {
	l := &Layer{
		Kind: Conv, InC: 2, InH: 8, InW: 8, OutC: 4, OutH: 8, OutW: 8,
		K: 3, Stride: 1, Pad: 1, Timesteps: 2,
	}
	want := int64(4*8*8*2*3*3) * 2
	if got := l.MACs(); got != want {
		t.Fatalf("MACs=%d want %d", got, want)
	}
	// Sparse MACs scale with density.
	full := l.SparseMACs(1.0)
	tenth := l.SparseMACs(0.1)
	if tenth >= full || tenth == 0 {
		t.Fatalf("sparse MACs not scaling: %d vs %d", tenth, full)
	}
	// Density clamping.
	if l.SparseMACs(-1) != 0 {
		t.Fatal("negative density not clamped")
	}
	if l.SparseMACs(2) != l.SparseMACs(1) {
		t.Fatal("overdense not clamped")
	}
}

func TestLayerBytes(t *testing.T) {
	l := &Layer{Kind: Conv, InC: 2, InH: 4, InW: 4, OutC: 3, OutH: 4, OutW: 4, K: 3, Stride: 1, Pad: 1, Timesteps: 1}
	if l.ParamCount() != int64(3*2*3*3+3) {
		t.Fatalf("params=%d", l.ParamCount())
	}
	if l.ParamBytes(INT8) != l.ParamCount() {
		t.Fatal("INT8 bytes != count")
	}
	if l.OutBytes(FP16) != int64(3*4*4*2) {
		t.Fatalf("out bytes=%d", l.OutBytes(FP16))
	}
	if l.InBytes(FP32) != int64(2*4*4*4) {
		t.Fatalf("in bytes=%d", l.InBytes(FP32))
	}
}

func TestNetworkValidateCatchesBadDAG(t *testing.T) {
	n := MustByName(SpikeFlowNet)
	n.Preds[3] = []int{7} // points forward
	if err := n.Validate(); err == nil {
		t.Fatal("forward pred accepted")
	}
	n2 := MustByName(SpikeFlowNet)
	n2.Preds[3] = []int{-1}
	if err := n2.Validate(); err == nil {
		t.Fatal("negative pred accepted")
	}
	n3 := MustByName(SpikeFlowNet)
	n3.Layers[0].Timesteps = 0
	if err := n3.Validate(); err == nil {
		t.Fatal("zero timesteps accepted")
	}
}

func TestSuccs(t *testing.T) {
	n := MustByName(SpikeFlowNet)
	succs := n.Succs()
	// dec3 (index 8) feeds dec4 (9) and flow_mid (10).
	if len(succs[8]) != 2 {
		t.Fatalf("dec3 succs=%v", succs[8])
	}
	// flow (11) is terminal.
	if len(succs[11]) != 0 {
		t.Fatalf("flow succs=%v", succs[11])
	}
}

func TestSNNsDominateGainProfile(t *testing.T) {
	// SNN layers must carry timesteps > 1 and sparse activations; that
	// is the precondition for the paper's "SNNs gain most" result.
	for _, name := range []string{AdaptiveSpikeNet, SpikeFlowNet} {
		n := MustByName(name)
		for _, l := range n.Layers {
			if l.Domain == SNN {
				if l.Timesteps < 2 && name != DOTIE {
					t.Errorf("%s/%s: SNN layer with %d timesteps", name, l.Name, l.Timesteps)
				}
				if l.ActDensity > 0.2 && l.Name != "flow" {
					t.Errorf("%s/%s: SNN activation density %f too high", name, l.Name, l.ActDensity)
				}
			}
		}
	}
}

func runtimeInputs(rt *Runtime, seed int64, density float64) map[int]*sparse.Tensor {
	r := rand.New(rand.NewSource(seed))
	ins := make(map[int]*sparse.Tensor)
	for _, id := range rt.InputLayerIDs() {
		c, h, w := rt.InputShape(id)
		x := sparse.NewTensor(c, h, w)
		x.FillRandomSparse(r, density)
		ins[id] = x
	}
	return ins
}

func TestRuntimeForwardAllNetworks(t *testing.T) {
	for _, n := range All() {
		rt, err := NewRuntime(n, DenseExec, 1, 8) // 32x32
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		outs, err := rt.Predict(runtimeInputs(rt, 2, 0.1))
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if len(outs) == 0 {
			t.Fatalf("%s: no outputs", n.Name)
		}
		for id, o := range outs {
			if o.Numel() == 0 {
				t.Fatalf("%s: output %d empty", n.Name, id)
			}
		}
	}
}

func TestRuntimeSparseMatchesDense(t *testing.T) {
	n := MustByName(SpikeFlowNet)
	dense, err := NewRuntime(n, DenseExec, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewRuntime(n, SparseExec, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	ins := runtimeInputs(dense, 3, 0.05)
	a, err := dense.Forward(ins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Forward(ins)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a {
		if d := sparse.MaxAbsDiff(a[id], b[id]); d > 1e-3 {
			t.Fatalf("layer %d (%s): sparse differs from dense by %g", id, n.Layers[id].Name, d)
		}
	}
}

// TestRuntimeParallelBitIdentical: enabling a worker pool must not
// change a single output bit — full forward passes, both exec modes,
// across every zoo network.
func TestRuntimeParallelBitIdentical(t *testing.T) {
	pool := par.New(4)
	defer pool.Close()
	for _, n := range All() {
		for _, mode := range []ExecMode{DenseExec, SparseExec} {
			serial, err := NewRuntime(n, mode, 31, 8)
			if err != nil {
				t.Fatalf("%s: %v", n.Name, err)
			}
			parr, err := NewRuntime(n, mode, 31, 8) // same seed, same weights
			if err != nil {
				t.Fatalf("%s: %v", n.Name, err)
			}
			parr.SetParallel(pool, 0)
			ins := runtimeInputs(serial, 13, 0.1)
			a, err := serial.Forward(ins)
			if err != nil {
				t.Fatalf("%s serial: %v", n.Name, err)
			}
			b, err := parr.Forward(ins)
			if err != nil {
				t.Fatalf("%s parallel: %v", n.Name, err)
			}
			for id := range a {
				if len(a[id].Data) != len(b[id].Data) {
					t.Fatalf("%s layer %d: shape mismatch", n.Name, id)
				}
				for i := range a[id].Data {
					if math.Float32bits(a[id].Data[i]) != math.Float32bits(b[id].Data[i]) {
						t.Fatalf("%s mode %v layer %d elem %d: parallel %g != serial %g",
							n.Name, mode, id, i, b[id].Data[i], a[id].Data[i])
					}
				}
			}
		}
	}
}

func TestRuntimeLIFProducesSparseBoundedRates(t *testing.T) {
	n := MustByName(AdaptiveSpikeNet)
	rt, err := NewRuntime(n, DenseExec, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := rt.Forward(runtimeInputs(rt, 5, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Spike rates are in [0, 1].
	for id, o := range outs {
		for _, v := range o.Data {
			if v < 0 || v > 1.0001 {
				t.Fatalf("layer %d rate %f outside [0,1]", id, v)
			}
		}
	}
	// The first encoder's output should be sparse (not everything fires).
	if d := outs[0].Density(); d > 0.9 {
		t.Fatalf("enc1 spike density %f suspiciously dense", d)
	}
}

func TestRuntimeErrors(t *testing.T) {
	n := MustByName(SpikeFlowNet)
	if _, err := NewRuntime(n, DenseExec, 1, 0); err == nil {
		t.Fatal("zero spatialDiv accepted")
	}
	rt, err := NewRuntime(n, DenseExec, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Missing input.
	if _, err := rt.Forward(map[int]*sparse.Tensor{}); err == nil {
		t.Fatal("missing input accepted")
	}
	// Wrong input shape.
	bad := sparse.NewTensor(5, 3, 3)
	if _, err := rt.Forward(map[int]*sparse.Tensor{0: bad}); err == nil {
		t.Fatal("bad input shape accepted")
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	n := MustByName(DOTIE)
	run := func() *sparse.Tensor {
		rt, err := NewRuntime(n, DenseExec, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := rt.Predict(runtimeInputs(rt, 6, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			return o
		}
		return nil
	}
	a, b := run(), run()
	if sparse.MaxAbsDiff(a, b) != 0 {
		t.Fatal("runtime not deterministic under fixed seed")
	}
}

func TestTaskAndMetricStrings(t *testing.T) {
	if OpticalFlow.String() == "" || SemanticSegmentation.String() == "" ||
		DepthEstimation.String() == "" || ObjectTracking.String() == "" {
		t.Fatal("task strings empty")
	}
	if !MetricAEE.LowerBetter || MetricMIOU.LowerBetter {
		t.Fatal("metric direction wrong")
	}
	l := MustByName(DOTIE).Layers[0]
	if l.String() == "" || l.Kind.String() == "" || l.Domain.String() == "" {
		t.Fatal("layer strings empty")
	}
}
