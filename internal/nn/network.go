package nn

import (
	"fmt"

	"evedge/internal/scene"
)

// Task is the perception task a network solves.
type Task int

// Tasks evaluated in the paper.
const (
	OpticalFlow Task = iota
	SemanticSegmentation
	DepthEstimation
	ObjectTracking
)

// String names the task.
func (t Task) String() string {
	switch t {
	case OpticalFlow:
		return "Optical Flow"
	case SemanticSegmentation:
		return "Semantic Segmentation"
	case DepthEstimation:
		return "Depth Estimation"
	case ObjectTracking:
		return "Object Tracking"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// Metric is the accuracy metric reported for a task. LowerBetter
// distinguishes error metrics (AEE, depth error) from score metrics
// (mIOU).
type Metric struct {
	Name        string
	LowerBetter bool
}

// Metrics used in Table 2.
var (
	MetricAEE      = Metric{Name: "AEE", LowerBetter: true}
	MetricMIOU     = Metric{Name: "mIOU", LowerBetter: false}
	MetricAvgError = Metric{Name: "Avg Error", LowerBetter: true}
)

// FramingMode selects how raw events become frames (paper Sec. 2 and
// Fig. 2): uniform time bins between grayscale frames, or a new frame
// every N events (the count-based construction of SpikeFlowNet and
// Fusion-FlowNet whose rate tracks scene activity).
type FramingMode int

// Framing modes.
const (
	FrameByTime FramingMode = iota
	FrameByCount
)

// String names the mode.
func (m FramingMode) String() string {
	if m == FrameByCount {
		return "count"
	}
	return "time"
}

// InputSpec describes how a network consumes events (the Fig. 2
// representations): the accumulation window between grayscale frames,
// the number of event bins nB, the SNN timestep grouping, and the
// framing mode.
type InputSpec struct {
	WindowUS int64 // accumulation window (Tend - Tstart)
	NumBins  int   // nB of Eq. 1
	GroupK   int   // bins concatenated per timestep (B/k timesteps)
	CropH    int   // network input height (center crop)
	CropW    int   // network input width
	Preset   scene.Preset
	Framing  FramingMode
	// FramePeriodUS is the *target average* framing period for
	// FrameByCount: deployments pick the event count per frame so the
	// mean frame rate matches it; during activity bursts the realized
	// rate rises above it.
	FramePeriodUS int64
}

// Network is a layer DAG plus task metadata.
type Network struct {
	Name     string
	Task     Task
	TypeDesc string // "ANN", "SNN", "SNN-ANN" as in Table 1
	Metric   Metric
	// BaselineAccuracy is the full-precision accuracy from Table 2.
	BaselineAccuracy float64
	Input            InputSpec

	Layers []*Layer
	// Preds[i] lists the indices of layer i's predecessors; an empty
	// list marks a network input layer.
	Preds [][]int
}

// Validate checks DAG consistency and per-layer profiles.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	if len(n.Preds) != len(n.Layers) {
		return fmt.Errorf("nn: network %q preds/layers length mismatch", n.Name)
	}
	for i, l := range n.Layers {
		if l.ID != i {
			return fmt.Errorf("nn: network %q layer %d has ID %d", n.Name, i, l.ID)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("nn: network %q: %w", n.Name, err)
		}
		for _, p := range n.Preds[i] {
			if p < 0 || p >= len(n.Layers) {
				return fmt.Errorf("nn: network %q layer %d has bad pred %d", n.Name, i, p)
			}
			if p >= i {
				return fmt.Errorf("nn: network %q layer %d pred %d not topologically earlier", n.Name, i, p)
			}
		}
	}
	if n.Input.NumBins <= 0 || n.Input.WindowUS <= 0 {
		return fmt.Errorf("nn: network %q has invalid input spec", n.Name)
	}
	if n.Input.Framing == FrameByCount && n.Input.FramePeriodUS <= 0 {
		return fmt.Errorf("nn: network %q uses count framing without a frame period", n.Name)
	}
	return nil
}

// CountByDomain returns the number of SNN and ANN layers, the split
// reported in Table 1.
func (n *Network) CountByDomain() (snn, ann int) {
	for _, l := range n.Layers {
		if l.Domain == SNN {
			snn++
		} else {
			ann++
		}
	}
	return snn, ann
}

// TotalMACs sums dense MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.MACs()
	}
	return s
}

// TotalParamBytes sums weight storage at a uniform precision.
func (n *Network) TotalParamBytes(p Precision) int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.ParamBytes(p)
	}
	return s
}

// Succs computes the successor adjacency from Preds.
func (n *Network) Succs() [][]int {
	out := make([][]int, len(n.Layers))
	for i, ps := range n.Preds {
		for _, p := range ps {
			out[p] = append(out[p], i)
		}
	}
	return out
}

// netBuilder assembles chain-with-skips topologies concisely.
type netBuilder struct {
	layers []*Layer
	preds  [][]int
}

// add appends a layer whose predecessors are the given indices (empty
// = network input) and returns its index.
func (b *netBuilder) add(l *Layer, preds ...int) int {
	l.ID = len(b.layers)
	b.layers = append(b.layers, l)
	b.preds = append(b.preds, append([]int(nil), preds...))
	return l.ID
}

// last returns the index of the most recently added layer.
func (b *netBuilder) last() int { return len(b.layers) - 1 }

// conv adds a conv layer computing the output shape from the input
// shape of the predecessor (or explicit dims for inputs).
func convLayer(name string, dom Domain, inC, inH, inW, outC, k, stride, pad, timesteps int, actDensity, sens float64) *Layer {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	return &Layer{
		Name: name, Kind: Conv, Domain: dom,
		InC: inC, InH: inH, InW: inW,
		OutC: outC, OutH: outH, OutW: outW,
		K: k, Stride: stride, Pad: pad,
		Timesteps: timesteps, ActDensity: actDensity, Sensitivity: sens,
	}
}

func deconvLayer(name string, dom Domain, inC, inH, inW, outC, k, stride, pad, timesteps int, actDensity, sens float64) *Layer {
	outH := (inH-1)*stride - 2*pad + k
	outW := (inW-1)*stride - 2*pad + k
	return &Layer{
		Name: name, Kind: Deconv, Domain: dom,
		InC: inC, InH: inH, InW: inW,
		OutC: outC, OutH: outH, OutW: outW,
		K: k, Stride: stride, Pad: pad,
		Timesteps: timesteps, ActDensity: actDensity, Sensitivity: sens,
	}
}

func residualLayer(name string, dom Domain, c, h, w, timesteps int, actDensity, sens float64) *Layer {
	return &Layer{
		Name: name, Kind: Residual, Domain: dom,
		InC: c, InH: h, InW: w, OutC: c, OutH: h, OutW: w,
		Timesteps: timesteps, ActDensity: actDensity, Sensitivity: sens,
	}
}
