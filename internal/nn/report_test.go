package nn

import (
	"strings"
	"testing"
)

func TestSummaryAndDOT(t *testing.T) {
	n := MustByName(SpikeFlowNet)
	s := n.Summary()
	for _, want := range []string{"SpikeFlowNet", "enc1", "flow", "GMACs", "count framing"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	dot := n.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "l0 -> l1") {
		t.Fatalf("DOT malformed:\n%s", dot)
	}
	// SNN layers shaded.
	if !strings.Contains(dot, "lightyellow") {
		t.Fatal("SNN shading missing")
	}
}

// TestZooShapesChain is a load-bearing structural check: every network
// in the zoo must have shape-consistent edges (including the concat
// fusion layers of the hybrid networks).
func TestZooShapesChain(t *testing.T) {
	for _, n := range All() {
		if err := n.CheckShapes(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestCheckShapesCatchesBreaks(t *testing.T) {
	n := MustByName(HALSIE)
	// Corrupt the fusion layer's channel expectation.
	for _, l := range n.Layers {
		if l.Name == "fuse" {
			l.InC = 999
		}
	}
	if err := n.CheckShapes(); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	n2 := MustByName(SpikeFlowNet)
	n2.Layers[3].OutH = 99 // spatial break
	if err := n2.CheckShapes(); err == nil {
		t.Fatal("spatial mismatch accepted")
	}
}
