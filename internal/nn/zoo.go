package nn

import (
	"fmt"
	"sort"

	"evedge/internal/scene"
)

// Canonical network names (Table 1 plus EV-FlowNet, which the paper's
// multi-task all-ANN configuration uses).
const (
	SpikeFlowNet     = "SpikeFlowNet"
	FusionFlowNet    = "Fusion-FlowNet"
	AdaptiveSpikeNet = "Adaptive-SpikeNet"
	HALSIE           = "HALSIE"
	HidalgoDepth     = "HidalgoDepth" // J. Hidalgo-Carrio et al., monocular dense depth
	DOTIE            = "DOTIE"
	EVFlowNet        = "EV-FlowNet"
)

// AllNames lists every network in the zoo in Table 1 order (EV-FlowNet
// appended).
func AllNames() []string {
	return []string{SpikeFlowNet, FusionFlowNet, AdaptiveSpikeNet, HALSIE, HidalgoDepth, DOTIE, EVFlowNet}
}

// Table1Names lists exactly the networks of the paper's Table 1.
func Table1Names() []string {
	return []string{SpikeFlowNet, FusionFlowNet, AdaptiveSpikeNet, HALSIE, HidalgoDepth, DOTIE}
}

// ByName constructs a network by canonical name.
func ByName(name string) (*Network, error) {
	switch name {
	case SpikeFlowNet:
		return buildSpikeFlowNet(), nil
	case FusionFlowNet:
		return buildFusionFlowNet(), nil
	case AdaptiveSpikeNet:
		return buildAdaptiveSpikeNet(), nil
	case HALSIE:
		return buildHALSIE(), nil
	case HidalgoDepth:
		return buildHidalgoDepth(), nil
	case DOTIE:
		return buildDOTIE(), nil
	case EVFlowNet:
		return buildEVFlowNet(), nil
	}
	names := AllNames()
	sort.Strings(names)
	return nil, fmt.Errorf("nn: unknown network %q (have %v)", name, names)
}

// MustByName is ByName that panics on error; for registries and tests.
func MustByName(name string) *Network {
	n, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// All constructs every network in the zoo.
func All() []*Network {
	out := make([]*Network, 0, len(AllNames()))
	for _, name := range AllNames() {
		out = append(out, MustByName(name))
	}
	return out
}

const (
	crop = 256 // center crop used by SpikeFlowNet and peers on MVSEC

	// Activation densities: SNN spike trains are sparse; ANN ReLU
	// activations are roughly half-dense.
	snnAct = 0.10
	annAct = 0.50
)

// buildSpikeFlowNet: hybrid SNN-ANN optical flow (Lee et al. 2020).
// Table 1: 12 layers — 4 SNN encoders + 8 ANN (residual + decoder).
func buildSpikeFlowNet() *Network {
	b := &netBuilder{}
	const T = 4
	b.add(convLayer("enc1", SNN, 2, crop, crop, 32, 3, 2, 1, T, 0.15, 1.5))
	b.add(convLayer("enc2", SNN, 32, 128, 128, 64, 3, 2, 1, T, 0.13, 1.0), b.last())
	b.add(convLayer("enc3", SNN, 64, 64, 64, 128, 3, 2, 1, T, 0.12, 1.0), b.last())
	b.add(convLayer("enc4", SNN, 128, 32, 32, 256, 3, 2, 1, T, 0.12, 1.0), b.last())
	b.add(convLayer("res1", ANN, 256, 16, 16, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res2", ANN, 256, 16, 16, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(deconvLayer("dec1", ANN, 256, 16, 16, 128, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec2", ANN, 128, 32, 32, 64, 4, 2, 1, 1, annAct, 0.8), b.last())
	d3 := b.add(deconvLayer("dec3", ANN, 64, 64, 64, 32, 4, 2, 1, 1, annAct, 0.8), b.last())
	d4 := b.add(deconvLayer("dec4", ANN, 32, 128, 128, 16, 4, 2, 1, 1, annAct, 0.8), d3)
	b.add(convLayer("flow_mid", ANN, 32, 128, 128, 2, 1, 1, 0, 1, 1.0, 1.2), d3)
	b.add(convLayer("flow", ANN, 16, 256, 256, 2, 1, 1, 0, 1, 1.0, 2.0), d4)
	return &Network{
		Name: SpikeFlowNet, Task: OpticalFlow, TypeDesc: "SNN-ANN",
		Metric: MetricAEE, BaselineAccuracy: 0.93,
		Input: InputSpec{
			WindowUS: 25_000, NumBins: 5, GroupK: 1,
			CropH: crop, CropW: crop, Preset: scene.IndoorFlying2,
			Framing: FrameByCount, FramePeriodUS: 9_500,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildFusionFlowNet: sensor-fusion optical flow (Lee et al. 2022).
// Table 1: 29 layers — 10 SNN (event branch) + 19 ANN (frame branch,
// fusion, decoder, refinement).
func buildFusionFlowNet() *Network {
	b := &netBuilder{}
	const T = 4
	// Event (spiking) branch.
	b.add(convLayer("eenc1", SNN, 2, crop, crop, 16, 3, 2, 1, T, 0.14, 1.5))
	b.add(convLayer("eenc2", SNN, 16, 128, 128, 32, 3, 2, 1, T, 0.13, 1.0), b.last())
	b.add(convLayer("eenc3", SNN, 32, 64, 64, 64, 3, 2, 1, T, 0.12, 1.0), b.last())
	b.add(convLayer("eenc4", SNN, 64, 32, 32, 128, 3, 2, 1, T, 0.11, 1.0), b.last())
	b.add(convLayer("eres1", SNN, 128, 16, 16, 128, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(convLayer("eres2", SNN, 128, 16, 16, 128, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(convLayer("eres3", SNN, 128, 16, 16, 128, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(convLayer("eres4", SNN, 128, 16, 16, 128, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(convLayer("eenc5", SNN, 128, 16, 16, 256, 3, 2, 1, T, 0.11, 1.0), b.last())
	eTop := b.add(convLayer("eres5", SNN, 256, 8, 8, 256, 3, 1, 1, T, 0.11, 0.6), b.last())
	// Frame (analog) branch: grayscale input.
	b.add(convLayer("fenc1", ANN, 1, crop, crop, 16, 3, 2, 1, 1, annAct, 1.5))
	b.add(convLayer("fenc2", ANN, 16, 128, 128, 32, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("fenc3", ANN, 32, 64, 64, 64, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("fenc4", ANN, 64, 32, 32, 128, 3, 2, 1, 1, annAct, 1.0), b.last())
	fTop := b.add(convLayer("fenc5", ANN, 128, 16, 16, 256, 3, 2, 1, 1, annAct, 1.0), b.last())
	// Fusion of the two 256-channel embeddings (channel concat).
	b.add(convLayer("fuse", ANN, 512, 8, 8, 256, 3, 1, 1, 1, annAct, 1.2), eTop, fTop)
	b.add(convLayer("res1", ANN, 256, 8, 8, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res2", ANN, 256, 8, 8, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(deconvLayer("dec1", ANN, 256, 8, 8, 128, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec2", ANN, 128, 16, 16, 64, 4, 2, 1, 1, annAct, 0.8), b.last())
	d3 := b.add(deconvLayer("dec3", ANN, 64, 32, 32, 32, 4, 2, 1, 1, annAct, 0.8), b.last())
	d4 := b.add(deconvLayer("dec4", ANN, 32, 64, 64, 16, 4, 2, 1, 1, annAct, 0.8), d3)
	d5 := b.add(deconvLayer("dec5", ANN, 16, 128, 128, 8, 4, 2, 1, 1, annAct, 0.8), d4)
	b.add(convLayer("flow_mid1", ANN, 32, 64, 64, 2, 1, 1, 0, 1, 1.0, 1.2), d3)
	b.add(convLayer("flow_mid2", ANN, 16, 128, 128, 2, 1, 1, 0, 1, 1.0, 1.2), d4)
	b.add(convLayer("refine1", ANN, 8, 256, 256, 8, 3, 1, 1, 1, annAct, 0.6), d5)
	b.add(convLayer("refine2", ANN, 8, 256, 256, 8, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("refine3", ANN, 8, 256, 256, 8, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("flow", ANN, 8, 256, 256, 2, 1, 1, 0, 1, 1.0, 2.0), b.last())
	return &Network{
		Name: FusionFlowNet, Task: OpticalFlow, TypeDesc: "SNN-ANN",
		Metric: MetricAEE, BaselineAccuracy: 0.72,
		Input: InputSpec{
			WindowUS: 25_000, NumBins: 10, GroupK: 1,
			CropH: crop, CropW: crop, Preset: scene.IndoorFlying1,
			Framing: FrameByCount, FramePeriodUS: 21_000,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildAdaptiveSpikeNet: fully spiking optical flow with learnable
// neuronal dynamics (Kosta et al. 2023). Table 1: 8 SNN layers.
func buildAdaptiveSpikeNet() *Network {
	b := &netBuilder{}
	const T = 5
	b.add(convLayer("enc1", SNN, 2, crop, crop, 32, 3, 2, 1, T, 0.15, 1.5))
	b.add(convLayer("enc2", SNN, 32, 128, 128, 64, 3, 2, 1, T, 0.13, 1.0), b.last())
	b.add(convLayer("enc3", SNN, 64, 64, 64, 128, 3, 2, 1, T, 0.12, 1.0), b.last())
	b.add(convLayer("enc4", SNN, 128, 32, 32, 256, 3, 2, 1, T, 0.11, 1.0), b.last())
	b.add(convLayer("res1", SNN, 256, 16, 16, 256, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(convLayer("res2", SNN, 256, 16, 16, 256, 3, 1, 1, T, 0.11, 0.6), b.last())
	b.add(deconvLayer("dec1", SNN, 256, 16, 16, 128, 4, 2, 1, T, 0.12, 0.8), b.last())
	b.add(convLayer("flow", SNN, 128, 32, 32, 2, 3, 1, 1, T, 1.0, 2.0), b.last())
	return &Network{
		Name: AdaptiveSpikeNet, Task: OpticalFlow, TypeDesc: "SNN",
		Metric: MetricAEE, BaselineAccuracy: 1.27,
		Input: InputSpec{
			WindowUS: 25_000, NumBins: 25, GroupK: 5,
			CropH: crop, CropW: crop, Preset: scene.IndoorFlying1,
			Framing: FrameByCount, FramePeriodUS: 30_000,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildHALSIE: hybrid segmentation exploiting image + event modalities
// (Biswas et al. 2023). Table 1: 16 layers — 3 SNN + 13 ANN.
func buildHALSIE() *Network {
	b := &netBuilder{}
	const T = 4
	const classes = 11 // DDD17-style semantic classes
	// Spiking event branch.
	b.add(convLayer("senc1", SNN, 2, crop, crop, 16, 3, 2, 1, T, 0.12, 1.5))
	b.add(convLayer("senc2", SNN, 16, 128, 128, 32, 3, 2, 1, T, 0.10, 1.0), b.last())
	sTop := b.add(convLayer("senc3", SNN, 32, 64, 64, 64, 3, 2, 1, T, 0.09, 1.0), b.last())
	// Analog image branch.
	b.add(convLayer("ienc1", ANN, 1, crop, crop, 16, 3, 2, 1, 1, annAct, 1.5))
	b.add(convLayer("ienc2", ANN, 16, 128, 128, 32, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("ienc3", ANN, 32, 64, 64, 64, 3, 2, 1, 1, annAct, 1.0), b.last())
	iTop := b.add(convLayer("ienc4", ANN, 64, 32, 32, 64, 3, 1, 1, 1, annAct, 1.0), b.last())
	_ = iTop
	// Fusion at 32x32 needs the event branch at 32x32 too; bring the
	// SNN embedding down with the image branch stride schedule: senc3
	// output is 32x32 already (64 ch @ 32x32).
	fuse := b.add(convLayer("fuse", ANN, 128, 32, 32, 64, 3, 1, 1, 1, annAct, 1.2), sTop, iTop)
	b.add(convLayer("res1", ANN, 64, 32, 32, 64, 3, 1, 1, 1, annAct, 0.6), fuse)
	b.add(deconvLayer("dec1", ANN, 64, 32, 32, 64, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec2", ANN, 64, 64, 64, 32, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec3", ANN, 32, 128, 128, 16, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("head1", ANN, 16, 256, 256, 16, 3, 1, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("head2", ANN, 16, 256, 256, 16, 3, 1, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("head3", ANN, 16, 256, 256, 16, 3, 1, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("classifier", ANN, 16, 256, 256, classes, 1, 1, 0, 1, 1.0, 2.0), b.last())
	return &Network{
		Name: HALSIE, Task: SemanticSegmentation, TypeDesc: "SNN-ANN",
		Metric: MetricMIOU, BaselineAccuracy: 66.31,
		Input: InputSpec{
			WindowUS: 50_000, NumBins: 8, GroupK: 2,
			CropH: crop, CropW: crop, Preset: scene.OutdoorDay1,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildHidalgoDepth: monocular dense depth from events
// (Hidalgo-Carrio et al. 2020). Table 1: 15 ANN layers.
func buildHidalgoDepth() *Network {
	b := &netBuilder{}
	b.add(convLayer("enc1", ANN, 2, crop, crop, 32, 3, 2, 1, 1, annAct, 1.5))
	b.add(convLayer("enc2", ANN, 32, 128, 128, 64, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("enc3", ANN, 64, 64, 64, 128, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("enc4", ANN, 128, 32, 32, 256, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("enc5", ANN, 256, 16, 16, 512, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("res1", ANN, 512, 8, 8, 512, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res2", ANN, 512, 8, 8, 512, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res3", ANN, 512, 8, 8, 512, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res4", ANN, 512, 8, 8, 512, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(deconvLayer("dec1", ANN, 512, 8, 8, 256, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec2", ANN, 256, 16, 16, 128, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec3", ANN, 128, 32, 32, 64, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec4", ANN, 64, 64, 64, 32, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec5", ANN, 32, 128, 128, 16, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("depth", ANN, 16, 256, 256, 1, 3, 1, 1, 1, 1.0, 2.0), b.last())
	return &Network{
		Name: HidalgoDepth, Task: DepthEstimation, TypeDesc: "ANN",
		Metric: MetricAvgError, BaselineAccuracy: 0.61,
		Input: InputSpec{
			WindowUS: 50_000, NumBins: 5, GroupK: 5,
			CropH: crop, CropW: crop, Preset: scene.Town10,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildDOTIE: object detection through temporal isolation of events
// with a single spiking layer (Nagaraj et al. 2022). Table 1: 1 layer.
func buildDOTIE() *Network {
	b := &netBuilder{}
	b.add(convLayer("spiking", SNN, 2, crop, crop, 4, 5, 1, 2, 3, 0.05, 1.5))
	return &Network{
		Name: DOTIE, Task: ObjectTracking, TypeDesc: "SNN",
		Metric: MetricMIOU, BaselineAccuracy: 0.86,
		Input: InputSpec{
			WindowUS: 5_000, NumBins: 5, GroupK: 1,
			CropH: crop, CropW: crop, Preset: scene.HighSpeedSpin,
		},
		Layers: b.layers, Preds: b.preds,
	}
}

// buildEVFlowNet: self-supervised ANN optical flow (Zhu et al. 2018).
// Not in Table 1; used by the paper's all-ANN multi-task mix. Consumes
// the full-accumulation count+timestamp representation (4 channels).
func buildEVFlowNet() *Network {
	b := &netBuilder{}
	b.add(convLayer("enc1", ANN, 4, crop, crop, 32, 3, 2, 1, 1, annAct, 1.5))
	b.add(convLayer("enc2", ANN, 32, 128, 128, 64, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("enc3", ANN, 64, 64, 64, 128, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("enc4", ANN, 128, 32, 32, 256, 3, 2, 1, 1, annAct, 1.0), b.last())
	b.add(convLayer("res1", ANN, 256, 16, 16, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(convLayer("res2", ANN, 256, 16, 16, 256, 3, 1, 1, 1, annAct, 0.6), b.last())
	b.add(deconvLayer("dec1", ANN, 256, 16, 16, 128, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec2", ANN, 128, 32, 32, 64, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec3", ANN, 64, 64, 64, 32, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(deconvLayer("dec4", ANN, 32, 128, 128, 16, 4, 2, 1, 1, annAct, 0.8), b.last())
	b.add(convLayer("flow", ANN, 16, 256, 256, 2, 1, 1, 0, 1, 1.0, 2.0), b.last())
	return &Network{
		Name: EVFlowNet, Task: OpticalFlow, TypeDesc: "ANN",
		Metric: MetricAEE, BaselineAccuracy: 1.03,
		Input: InputSpec{
			WindowUS: 25_000, NumBins: 1, GroupK: 1,
			CropH: crop, CropW: crop, Preset: scene.OutdoorDay1,
			Framing: FrameByCount, FramePeriodUS: 25_000,
		},
		Layers: b.layers, Preds: b.preds,
	}
}
