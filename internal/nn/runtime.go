package nn

import (
	"fmt"
	"math/rand"

	"evedge/internal/par"
	"evedge/internal/sparse"
)

// ExecMode selects the arithmetic path of the numeric runtime.
type ExecMode int

// Execution modes.
const (
	// DenseExec runs plain dense convolutions — the all-GPU baseline's
	// arithmetic.
	DenseExec ExecMode = iota
	// SparseExec runs gather-scatter sparse convolutions whose work is
	// proportional to active sites — the E2SF-enabled path.
	SparseExec
)

// Runtime instantiates a Network with concrete (randomly initialized)
// weights and executes it numerically. It exists for functional tests
// and examples: the experiment harness uses the analytic profiles, not
// this runtime, exactly as the paper's search consumes profiled layer
// times rather than re-running inference.
type Runtime struct {
	Net     *Network
	Mode    ExecMode
	VThresh float32 // LIF firing threshold
	Leak    float32 // LIF leak factor per timestep (0 = IF)

	filters map[int]*sparse.Filter
	// spatialDiv scales down the spatial extent so tests stay fast;
	// channel counts are preserved.
	spatialDiv int

	// pool/shards route convolutions through the tiled kernels when a
	// worker pool is wired in via SetParallel. Tiled kernels are
	// bit-identical to the serial ones, so the runtime's outputs do not
	// depend on whether or how wide parallelism is enabled.
	pool   *par.Pool
	shards int
}

// NewRuntime builds a runtime with weights drawn from seed. spatialDiv
// >= 1 divides the spatial resolution (1 = native 256x256).
func NewRuntime(net *Network, mode ExecMode, seed int64, spatialDiv int) (*Runtime, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if spatialDiv < 1 {
		return nil, fmt.Errorf("nn: spatialDiv must be >= 1, got %d", spatialDiv)
	}
	r := rand.New(rand.NewSource(seed))
	rt := &Runtime{
		Net: net, Mode: mode, VThresh: 0.5, Leak: 0.9,
		filters:    make(map[int]*sparse.Filter),
		spatialDiv: spatialDiv,
	}
	for _, l := range net.Layers {
		switch l.Kind {
		case Conv, Deconv:
			f := sparse.NewFilter(l.OutC, l.InC, l.K, l.Stride, l.Pad)
			f.Deconv = l.Kind == Deconv
			// Kaiming-ish init keeps activations in range layer to layer.
			scale := float32(1.0) / float32(l.InC*l.K*l.K)
			for i := range f.Weights {
				f.Weights[i] = (r.Float32()*2 - 1) * scale * 3
			}
			f.Bias = make([]float32, l.OutC)
			rt.filters[l.ID] = f
		}
	}
	return rt, nil
}

// InputShape returns the (C, H, W) the runtime expects for the given
// input layer.
func (rt *Runtime) InputShape(layerID int) (c, h, w int) {
	l := rt.Net.Layers[layerID]
	return l.InC, l.InH / rt.spatialDiv, l.InW / rt.spatialDiv
}

// InputLayerIDs returns the IDs of layers with no predecessors, in
// order.
func (rt *Runtime) InputLayerIDs() []int {
	var out []int
	for i, ps := range rt.Net.Preds {
		if len(ps) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// OutputLayerIDs returns the IDs of layers with no successors.
func (rt *Runtime) OutputLayerIDs() []int {
	succs := rt.Net.Succs()
	var out []int
	for i := range rt.Net.Layers {
		if len(succs[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Forward executes the network on the given inputs (one tensor per
// input layer, keyed by layer ID) and returns every layer's output.
func (rt *Runtime) Forward(inputs map[int]*sparse.Tensor) (map[int]*sparse.Tensor, error) {
	outs := make(map[int]*sparse.Tensor, len(rt.Net.Layers))
	for i, l := range rt.Net.Layers {
		var in *sparse.Tensor
		if len(rt.Net.Preds[i]) == 0 {
			x, ok := inputs[i]
			if !ok {
				return nil, fmt.Errorf("nn: missing input for layer %d (%s)", i, l.Name)
			}
			wantC, wantH, wantW := rt.InputShape(i)
			if x.C != wantC || x.H != wantH || x.W != wantW {
				return nil, fmt.Errorf("nn: input for %s is %dx%dx%d, want %dx%dx%d",
					l.Name, x.C, x.H, x.W, wantC, wantH, wantW)
			}
			in = x
		} else if len(rt.Net.Preds[i]) == 1 {
			in = outs[rt.Net.Preds[i][0]]
		} else {
			var parts []*sparse.Tensor
			for _, p := range rt.Net.Preds[i] {
				parts = append(parts, outs[p])
			}
			cat, err := concatChannels(parts)
			if err != nil {
				return nil, fmt.Errorf("nn: layer %s: %w", l.Name, err)
			}
			in = cat
		}
		out, err := rt.execLayer(l, in)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %s: %w", l.Name, err)
		}
		outs[i] = out
	}
	return outs, nil
}

// Predict runs Forward and returns only the terminal layer outputs.
func (rt *Runtime) Predict(inputs map[int]*sparse.Tensor) (map[int]*sparse.Tensor, error) {
	outs, err := rt.Forward(inputs)
	if err != nil {
		return nil, err
	}
	res := make(map[int]*sparse.Tensor)
	for _, id := range rt.OutputLayerIDs() {
		res[id] = outs[id]
	}
	return res, nil
}

func (rt *Runtime) execLayer(l *Layer, in *sparse.Tensor) (*sparse.Tensor, error) {
	switch l.Kind {
	case Conv, Deconv:
		if l.Domain == SNN {
			return rt.execLIF(l, in)
		}
		out, err := rt.conv(l, in)
		if err != nil {
			return nil, err
		}
		return out.ReLU(), nil
	case Residual:
		return in.Clone().ReLU(), nil
	case Pool:
		return sparse.MaxPool2D(in, l.K, l.Stride)
	case FC:
		return nil, fmt.Errorf("FC layers are not used by the zoo runtime")
	}
	return nil, fmt.Errorf("unknown layer kind %v", l.Kind)
}

// SetParallel wires a worker pool into the runtime's convolution
// kernels. shards is the work-partition count per dispatch (<= 0 uses
// twice the pool width, which keeps shards fine enough to balance
// uneven rows). A nil pool restores the serial path. Outputs are
// bit-identical either way.
func (rt *Runtime) SetParallel(pool *par.Pool, shards int) {
	if shards <= 0 {
		shards = 2 * pool.Size()
	}
	rt.pool, rt.shards = pool, shards
}

func (rt *Runtime) conv(l *Layer, in *sparse.Tensor) (*sparse.Tensor, error) {
	f := rt.filters[l.ID]
	if rt.pool.Size() > 1 {
		if oh, ow := f.OutShape(in.H, in.W); oh > 0 && ow > 0 {
			out := sparse.NewTensor(f.OutC, oh, ow)
			var err error
			if rt.Mode == SparseExec {
				err = sparse.SparseConv2DTiledInto(out, in, f, rt.pool, rt.shards)
			} else {
				err = sparse.Conv2DTiledInto(out, in, f, rt.pool, rt.shards)
			}
			if err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	if rt.Mode == SparseExec {
		return sparse.SparseConv2D(in, f)
	}
	return sparse.Conv2D(in, f)
}

// execLIF runs leaky integrate-and-fire dynamics over the layer's
// timesteps with the (rate-coded) input held constant, returning the
// mean spike rate per output element — a real thresholding
// nonlinearity that produces genuinely sparse activations.
func (rt *Runtime) execLIF(l *Layer, in *sparse.Tensor) (*sparse.Tensor, error) {
	drive, err := rt.conv(l, in)
	if err != nil {
		return nil, err
	}
	v := sparse.NewTensor(drive.C, drive.H, drive.W)
	rate := sparse.NewTensor(drive.C, drive.H, drive.W)
	T := l.Timesteps
	for t := 0; t < T; t++ {
		for i := range v.Data {
			v.Data[i] = v.Data[i]*rt.Leak + drive.Data[i]
			if v.Data[i] >= rt.VThresh {
				rate.Data[i]++
				v.Data[i] -= rt.VThresh
			}
		}
	}
	rate.Scale(1 / float32(T))
	return rate, nil
}

func concatChannels(parts []*sparse.Tensor) (*sparse.Tensor, error) {
	h, w := parts[0].H, parts[0].W
	c := 0
	for _, p := range parts {
		if p.H != h || p.W != w {
			return nil, fmt.Errorf("concat spatial mismatch %dx%d vs %dx%d", p.H, p.W, h, w)
		}
		c += p.C
	}
	out := sparse.NewTensor(c, h, w)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out, nil
}
