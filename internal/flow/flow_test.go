package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"evedge/internal/scene"
	"evedge/internal/sparse"
)

func constantField(w, h int, u, v float32) *scene.FlowField {
	f := scene.NewFlowField(w, h)
	for i := range f.U {
		f.U[i], f.V[i] = u, v
	}
	return f
}

func TestAEE(t *testing.T) {
	gt := constantField(8, 8, 3, 4)
	if aee, err := AEE(gt, gt); err != nil || aee != 0 {
		t.Fatalf("self AEE=%f err=%v", aee, err)
	}
	pred := constantField(8, 8, 0, 0)
	aee, err := AEE(pred, gt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aee-5) > 1e-6 { // ||(3,4)|| = 5
		t.Fatalf("AEE=%f want 5", aee)
	}
	if _, err := AEE(constantField(4, 4, 0, 0), gt); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMaskedAEE(t *testing.T) {
	gt := scene.NewFlowField(4, 4)
	pred := scene.NewFlowField(4, 4)
	// Error only at (1,1): endpoint error 2.
	pred.U[1*4+1] = 2
	frame := sparse.NewFrame(4, 4, 0, 1)
	frame.Set(1, 1, 1, 0)
	aee, err := MaskedAEE(pred, gt, frame)
	if err != nil {
		t.Fatal(err)
	}
	if aee != 2 {
		t.Fatalf("masked AEE=%f want 2", aee)
	}
	// Mask away the error: evaluate a clean pixel instead.
	frame2 := sparse.NewFrame(4, 4, 0, 1)
	frame2.Set(3, 3, 1, 0)
	aee2, _ := MaskedAEE(pred, gt, frame2)
	if aee2 != 0 {
		t.Fatalf("masked AEE=%f want 0", aee2)
	}
	empty := sparse.NewFrame(4, 4, 0, 1)
	if _, err := MaskedAEE(pred, gt, empty); err == nil {
		t.Fatal("empty mask accepted")
	}
	if _, err := MaskedAEE(pred, gt, sparse.NewFrame(2, 2, 0, 1)); err == nil {
		t.Fatal("mismatched frame accepted")
	}
}

func TestAngularError(t *testing.T) {
	gt := constantField(4, 4, 1, 0)
	// acos rounding near 1.0 leaves a tiny residual; allow it.
	if ae, err := AngularError(gt, gt); err != nil || ae > 1e-4 {
		t.Fatalf("self angular=%g err=%v", ae, err)
	}
	// Orthogonal-ish flows have a clearly positive angular error.
	pred := constantField(4, 4, 0, 1)
	ae, err := AngularError(pred, gt)
	if err != nil {
		t.Fatal(err)
	}
	if ae < 0.5 {
		t.Fatalf("angular=%f too small", ae)
	}
}

func TestIOUAndMeanIOU(t *testing.T) {
	a := NewMask(4, 4)
	b := NewMask(4, 4)
	// Empty vs empty: perfect.
	if iou, _ := IOU(a, b); iou != 1 {
		t.Fatalf("empty IOU=%f", iou)
	}
	a.Data[0], a.Data[1] = true, true
	b.Data[1], b.Data[2] = true, true
	iou, err := IOU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iou-1.0/3) > 1e-9 { // intersection 1, union 3
		t.Fatalf("IOU=%f want 1/3", iou)
	}
	m, err := MeanIOU([]*Mask{a, a}, []*Mask{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-(1.0/3+1)/2) > 1e-9 {
		t.Fatalf("mIOU=%f", m)
	}
	if _, err := MeanIOU([]*Mask{a}, []*Mask{a, b}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := IOU(a, NewMask(2, 2)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDepthAbsRel(t *testing.T) {
	gt := []float32{1, 2, 4, 0} // zero depth excluded
	pred := []float32{1.1, 1.8, 4, 9}
	got, err := DepthAbsRel(pred, gt)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1/1 + 0.2/2 + 0) / 3
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("absrel=%f want %f", got, want)
	}
	if _, err := DepthAbsRel(pred[:2], gt); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := DepthAbsRel([]float32{1}, []float32{0}); err == nil {
		t.Fatal("no valid depth accepted")
	}
}

func TestGroundTruthFlowPureTranslation(t *testing.T) {
	// A camera translating at constant velocity produces uniform flow
	// equal to minus the warp displacement over dt.
	wd := &scene.World{Path: &scene.SmoothPath{VX: 100, VY: -50}} // px/s
	gt := wd.GroundTruthFlow(32, 24, 0, 10_000)                   // dt = 10 ms
	u, v := gt.At(16, 12)
	// Texture moves +1 px in u per 10ms => scene appears to move -1 px.
	if math.Abs(float64(u)+1) > 1e-3 || math.Abs(float64(v)-0.5) > 1e-3 {
		t.Fatalf("flow=(%f,%f) want (-1, 0.5)", u, v)
	}
	// Uniform across the frame for pure translation.
	u2, v2 := gt.At(0, 0)
	if math.Abs(float64(u-u2)) > 1e-3 || math.Abs(float64(v-v2)) > 1e-3 {
		t.Fatal("translation flow not uniform")
	}
	if gt.MeanMagnitude() <= 0 {
		t.Fatal("zero mean magnitude")
	}
}

func TestGroundTruthFlowBlobOverride(t *testing.T) {
	wd := &scene.World{
		Path:  &scene.SmoothPath{},
		Blobs: []scene.Blob{{CX: 16, CY: 16, VX: 200, VY: 0, Radius: 3}},
	}
	gt := wd.GroundTruthFlow(32, 32, 0, 10_000)
	// Inside the blob: 2 px per 10 ms.
	u, _ := gt.At(16, 16)
	if math.Abs(float64(u)-2) > 1e-3 {
		t.Fatalf("blob flow u=%f want 2", u)
	}
	// Far away: static background.
	u2, v2 := gt.At(2, 2)
	if u2 != 0 || v2 != 0 {
		t.Fatalf("background moving: (%f,%f)", u2, v2)
	}
}

func TestGroundTruthFlowRotation(t *testing.T) {
	// Pure rotation: flow magnitude grows with radius, zero at center.
	wd := &scene.World{Path: &scene.SmoothPath{RotAmp: 0.2, RotFreq: 1}}
	gt := wd.GroundTruthFlow(64, 64, 0, 50_000)
	cu, cv := gt.At(32, 32)
	if math.Hypot(float64(cu), float64(cv)) > 0.05 {
		t.Fatalf("center flow (%f,%f) should be ~0", cu, cv)
	}
	eu, ev := gt.At(62, 32)
	if math.Hypot(float64(eu), float64(ev)) < 0.2 {
		t.Fatalf("edge flow (%f,%f) too small under rotation", eu, ev)
	}
}

// Property: AEE is a metric-like quantity — non-negative, zero iff
// fields match, symmetric.
func TestAEEProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := scene.NewFlowField(8, 8)
		b := scene.NewFlowField(8, 8)
		for i := range a.U {
			a.U[i], a.V[i] = r.Float32()*4-2, r.Float32()*4-2
			b.U[i], b.V[i] = r.Float32()*4-2, r.Float32()*4-2
		}
		ab, err1 := AEE(a, b)
		ba, err2 := AEE(b, a)
		aa, err3 := AEE(a, a)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ab >= 0 && math.Abs(ab-ba) < 1e-9 && aa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
