// Package flow provides the task-accuracy metrics the paper's
// evaluation reports: average endpoint error (AEE) for optical flow,
// mean intersection-over-union (mIOU) for segmentation masks, and
// mean absolute relative error for depth — plus masked variants that
// follow the event-vision convention of evaluating only at pixels
// that produced events.
package flow

import (
	"fmt"
	"math"

	"evedge/internal/scene"
	"evedge/internal/sparse"
)

// AEE computes the average endpoint error between a predicted and a
// ground-truth flow field: mean over pixels of ||pred - gt||_2.
func AEE(pred, gt *scene.FlowField) (float64, error) {
	if pred.W != gt.W || pred.H != gt.H {
		return 0, fmt.Errorf("flow: field size mismatch %dx%d vs %dx%d", pred.W, pred.H, gt.W, gt.H)
	}
	var s float64
	for i := range pred.U {
		du := float64(pred.U[i] - gt.U[i])
		dv := float64(pred.V[i] - gt.V[i])
		s += math.Sqrt(du*du + dv*dv)
	}
	return s / float64(len(pred.U)), nil
}

// MaskedAEE computes AEE only at active pixels of the event frame —
// the sparse evaluation protocol of EV-FlowNet and its successors
// (flow is only supervised where events fired).
func MaskedAEE(pred, gt *scene.FlowField, frame *sparse.Frame) (float64, error) {
	if pred.W != gt.W || pred.H != gt.H {
		return 0, fmt.Errorf("flow: field size mismatch %dx%d vs %dx%d", pred.W, pred.H, gt.W, gt.H)
	}
	if frame.W != pred.W || frame.H != pred.H {
		return 0, fmt.Errorf("flow: frame %dx%d does not match fields %dx%d",
			frame.W, frame.H, pred.W, pred.H)
	}
	if frame.NNZ() == 0 {
		return 0, fmt.Errorf("flow: no active pixels to evaluate")
	}
	var s float64
	for i := range frame.Ys {
		idx := int(frame.Ys[i])*pred.W + int(frame.Xs[i])
		du := float64(pred.U[idx] - gt.U[idx])
		dv := float64(pred.V[idx] - gt.V[idx])
		s += math.Sqrt(du*du + dv*dv)
	}
	return s / float64(frame.NNZ()), nil
}

// AngularError returns the mean angular error in radians between two
// flow fields, using the standard (u, v, 1) homogeneous formulation
// that stays defined for zero flow.
func AngularError(pred, gt *scene.FlowField) (float64, error) {
	if pred.W != gt.W || pred.H != gt.H {
		return 0, fmt.Errorf("flow: field size mismatch %dx%d vs %dx%d", pred.W, pred.H, gt.W, gt.H)
	}
	var s float64
	for i := range pred.U {
		pu, pv := float64(pred.U[i]), float64(pred.V[i])
		gu, gv := float64(gt.U[i]), float64(gt.V[i])
		num := pu*gu + pv*gv + 1
		den := math.Sqrt(pu*pu+pv*pv+1) * math.Sqrt(gu*gu+gv*gv+1)
		c := num / den
		if c > 1 {
			c = 1
		}
		if c < -1 {
			c = -1
		}
		s += math.Acos(c)
	}
	return s / float64(len(pred.U)), nil
}

// Mask is a binary segmentation/label mask.
type Mask struct {
	W, H int
	Data []bool
}

// NewMask allocates an all-false mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Data: make([]bool, w*h)}
}

// IOU computes intersection-over-union between two binary masks.
// A pair of empty masks scores 1 (perfect agreement on absence).
func IOU(a, b *Mask) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("flow: mask size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	inter, union := 0, 0
	for i := range a.Data {
		av, bv := a.Data[i], b.Data[i]
		if av && bv {
			inter++
		}
		if av || bv {
			union++
		}
	}
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}

// MeanIOU computes the mean IOU over per-class mask pairs (the mIOU
// metric HALSIE and DOTIE report).
func MeanIOU(pred, gt []*Mask) (float64, error) {
	if len(pred) != len(gt) {
		return 0, fmt.Errorf("flow: %d predicted masks vs %d ground truth", len(pred), len(gt))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("flow: no masks")
	}
	var s float64
	for i := range pred {
		iou, err := IOU(pred[i], gt[i])
		if err != nil {
			return 0, err
		}
		s += iou
	}
	return s / float64(len(pred)), nil
}

// DepthAbsRel computes the mean absolute relative depth error
// mean(|pred - gt| / gt) over pixels with positive ground truth — the
// average-error metric of the monocular depth task.
func DepthAbsRel(pred, gt []float32) (float64, error) {
	if len(pred) != len(gt) {
		return 0, fmt.Errorf("flow: depth length mismatch %d vs %d", len(pred), len(gt))
	}
	var s float64
	n := 0
	for i := range pred {
		if gt[i] <= 0 {
			continue
		}
		s += math.Abs(float64(pred[i]-gt[i])) / float64(gt[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("flow: no valid ground-truth depth")
	}
	return s / float64(n), nil
}
