// Package events models the output of an event camera (Dynamic Vision
// Sensor) in Address Event Representation (AER) form.
//
// An event camera reports per-pixel log-intensity changes as an
// asynchronous stream of events {x, y, t, p} where (x, y) is the pixel
// location, t the timestamp and p the polarity of the change. This
// package provides the Event and Stream types used throughout Ev-Edge,
// plus codecs, window iteration, filtering and density statistics.
//
// Timestamps are microseconds, matching the DAVIS sensor convention.
package events

import (
	"errors"
	"fmt"
	"sort"
)

// Polarity is the sign of a brightness change: +1 for an increase
// (ON event), -1 for a decrease (OFF event).
type Polarity int8

// Polarity values.
const (
	On  Polarity = 1
	Off Polarity = -1
)

// String returns "ON" or "OFF".
func (p Polarity) String() string {
	if p == On {
		return "ON"
	}
	return "OFF"
}

// Valid reports whether p is one of the two legal polarities.
func (p Polarity) Valid() bool { return p == On || p == Off }

// Event is a single AER event.
type Event struct {
	X, Y uint16   // pixel coordinates, origin top-left
	TS   int64    // timestamp in microseconds
	Pol  Polarity // +1 or -1
}

// String formats the event as {x,y,t,p}, the AER tuple used in the paper.
func (e Event) String() string {
	return fmt.Sprintf("{%d,%d,%dus,%s}", e.X, e.Y, e.TS, e.Pol)
}

// Stream is a time-ordered sequence of events from a sensor of a known
// geometry. The zero value is an empty stream of unknown geometry.
type Stream struct {
	Width, Height int
	Events        []Event
}

// NewStream returns an empty stream for a w x h sensor.
func NewStream(w, h int) *Stream {
	return &Stream{Width: w, Height: h}
}

// Len returns the number of events in the stream.
func (s *Stream) Len() int { return len(s.Events) }

// Append adds an event to the end of the stream. It does not enforce
// timestamp order; call Sort or Validate when order matters.
func (s *Stream) Append(e Event) { s.Events = append(s.Events, e) }

// TStart returns the timestamp of the first event, or 0 if empty.
func (s *Stream) TStart() int64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[0].TS
}

// TEnd returns the timestamp of the last event, or 0 if empty.
func (s *Stream) TEnd() int64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].TS
}

// Duration returns TEnd-TStart in microseconds.
func (s *Stream) Duration() int64 { return s.TEnd() - s.TStart() }

// Sort orders events by timestamp (stable, so simultaneous events keep
// their generation order).
func (s *Stream) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].TS < s.Events[j].TS
	})
}

// Sorted reports whether events are in non-decreasing timestamp order.
func (s *Stream) Sorted() bool {
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].TS < s.Events[i-1].TS {
			return false
		}
	}
	return true
}

// Validation errors.
var (
	ErrGeometry   = errors.New("events: event outside sensor geometry")
	ErrOrder      = errors.New("events: timestamps not monotonically non-decreasing")
	ErrPolarity   = errors.New("events: invalid polarity")
	ErrNoGeometry = errors.New("events: stream has no sensor geometry")
)

// Validate checks geometry bounds, polarity legality and timestamp
// order, returning the first violation found.
func (s *Stream) Validate() error {
	if s.Width <= 0 || s.Height <= 0 {
		return ErrNoGeometry
	}
	var prev int64
	for i, e := range s.Events {
		if int(e.X) >= s.Width || int(e.Y) >= s.Height {
			return fmt.Errorf("%w: event %d at (%d,%d) on %dx%d sensor",
				ErrGeometry, i, e.X, e.Y, s.Width, s.Height)
		}
		if !e.Pol.Valid() {
			return fmt.Errorf("%w: event %d has polarity %d", ErrPolarity, i, e.Pol)
		}
		if i > 0 && e.TS < prev {
			return fmt.Errorf("%w: event %d at %dus after %dus", ErrOrder, i, e.TS, prev)
		}
		prev = e.TS
	}
	return nil
}

// Clone returns a deep copy of the stream.
func (s *Stream) Clone() *Stream {
	out := &Stream{Width: s.Width, Height: s.Height}
	out.Events = append([]Event(nil), s.Events...)
	return out
}

// Slice returns a view stream containing events with TS in [t0, t1).
// The stream must be sorted. The returned stream shares backing storage.
func (s *Stream) Slice(t0, t1 int64) *Stream {
	lo := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].TS >= t0 })
	hi := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].TS >= t1 })
	return &Stream{Width: s.Width, Height: s.Height, Events: s.Events[lo:hi]}
}

// Window returns the subslice of events with TS in [t0, t1) without
// allocating a Stream wrapper — the hot-path variant of Slice. The
// stream must be sorted; the slice shares backing storage.
func (s *Stream) Window(t0, t1 int64) []Event {
	lo := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].TS >= t0 })
	hi := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].TS >= t1 })
	return s.Events[lo:hi]
}

// Filter returns a new stream holding only events for which keep
// returns true.
func (s *Stream) Filter(keep func(Event) bool) *Stream {
	out := NewStream(s.Width, s.Height)
	for _, e := range s.Events {
		if keep(e) {
			out.Append(e)
		}
	}
	return out
}

// FilterPolarity returns only events of the given polarity.
func (s *Stream) FilterPolarity(p Polarity) *Stream {
	return s.Filter(func(e Event) bool { return e.Pol == p })
}

// ROI crops the stream to the rectangle [x0,x1) x [y0,y1), re-basing
// coordinates to the new origin.
func (s *Stream) ROI(x0, y0, x1, y1 int) (*Stream, error) {
	if x0 < 0 || y0 < 0 || x1 > s.Width || y1 > s.Height || x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("events: invalid ROI [%d,%d)x[%d,%d) on %dx%d",
			x0, x1, y0, y1, s.Width, s.Height)
	}
	out := NewStream(x1-x0, y1-y0)
	for _, e := range s.Events {
		if int(e.X) >= x0 && int(e.X) < x1 && int(e.Y) >= y0 && int(e.Y) < y1 {
			out.Append(Event{X: e.X - uint16(x0), Y: e.Y - uint16(y0), TS: e.TS, Pol: e.Pol})
		}
	}
	return out, nil
}

// Merge combines two sorted streams of identical geometry into a new
// sorted stream.
func Merge(a, b *Stream) (*Stream, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return nil, fmt.Errorf("events: geometry mismatch %dx%d vs %dx%d",
			a.Width, a.Height, b.Width, b.Height)
	}
	out := NewStream(a.Width, a.Height)
	out.Events = make([]Event, 0, len(a.Events)+len(b.Events))
	i, j := 0, 0
	for i < len(a.Events) && j < len(b.Events) {
		if a.Events[i].TS <= b.Events[j].TS {
			out.Events = append(out.Events, a.Events[i])
			i++
		} else {
			out.Events = append(out.Events, b.Events[j])
			j++
		}
	}
	out.Events = append(out.Events, a.Events[i:]...)
	out.Events = append(out.Events, b.Events[j:]...)
	return out, nil
}

// Window is one fixed-duration chunk of a stream.
type Window struct {
	T0, T1 int64 // [T0, T1)
	Stream *Stream
}

// Windows splits a sorted stream into consecutive windows of the given
// duration (microseconds), covering [TStart, TEnd]. Empty windows are
// included so that temporal-density analysis sees quiet periods.
func (s *Stream) Windows(dur int64) []Window {
	if dur <= 0 || len(s.Events) == 0 {
		return nil
	}
	var out []Window
	for t0 := s.TStart(); t0 <= s.TEnd(); t0 += dur {
		out = append(out, Window{T0: t0, T1: t0 + dur, Stream: s.Slice(t0, t0+dur)})
	}
	return out
}

// CountByPolarity returns the number of ON and OFF events.
func (s *Stream) CountByPolarity() (on, off int) {
	for _, e := range s.Events {
		if e.Pol == On {
			on++
		} else {
			off++
		}
	}
	return on, off
}

// EventRate returns the mean event rate in events per second, or 0 for
// streams shorter than one microsecond.
func (s *Stream) EventRate() float64 {
	d := s.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(s.Events)) / (float64(d) * 1e-6)
}

// ActivePixels returns the number of distinct pixels that produced at
// least one event.
func (s *Stream) ActivePixels() int {
	if s.Width <= 0 || s.Height <= 0 {
		return 0
	}
	seen := make([]bool, s.Width*s.Height)
	n := 0
	for _, e := range s.Events {
		idx := int(e.Y)*s.Width + int(e.X)
		if !seen[idx] {
			seen[idx] = true
			n++
		}
	}
	return n
}

// SpatialDensity returns the fraction of sensor pixels that are active
// in the stream — the "percentage of events in an event frame" metric
// of the paper's Figures 1 and 3 (as a fraction, not percent).
func (s *Stream) SpatialDensity() float64 {
	if s.Width <= 0 || s.Height <= 0 {
		return 0
	}
	return float64(s.ActivePixels()) / float64(s.Width*s.Height)
}

// DensitySeries returns the per-window event counts for the given
// window duration — the temporal event density of the paper's Fig. 5.
func (s *Stream) DensitySeries(dur int64) []int {
	ws := s.Windows(dur)
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = w.Stream.Len()
	}
	return out
}

// Stats summarizes a stream.
type Stats struct {
	N            int     // total events
	On, Off      int     // per polarity
	DurationUS   int64   // time span
	RateEPS      float64 // events per second
	ActivePixels int
	Density      float64 // active pixels / total pixels
}

// Summarize computes Stats for the stream.
func (s *Stream) Summarize() Stats {
	on, off := s.CountByPolarity()
	return Stats{
		N:            s.Len(),
		On:           on,
		Off:          off,
		DurationUS:   s.Duration(),
		RateEPS:      s.EventRate(),
		ActivePixels: s.ActivePixels(),
		Density:      s.SpatialDensity(),
	}
}

// String renders the stats on one line.
func (st Stats) String() string {
	return fmt.Sprintf("n=%d (on=%d off=%d) dur=%.1fms rate=%.0fev/s density=%.2f%%",
		st.N, st.On, st.Off, float64(st.DurationUS)/1000, st.RateEPS, st.Density*100)
}
