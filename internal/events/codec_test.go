package events

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// validHeader builds an EVAR header for a w x h sensor with the given
// record count and version.
func validHeader(version uint16, w, h int, count uint64) []byte {
	b := []byte("EVAR")
	hdr := make([]byte, 2+2+2+8)
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(w))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(h))
	binary.LittleEndian.PutUint64(hdr[6:], count)
	return append(b, hdr...)
}

// record serializes one 13-byte EVAR record.
func record(e Event) []byte {
	rec := make([]byte, 13)
	binary.LittleEndian.PutUint16(rec[0:], e.X)
	binary.LittleEndian.PutUint16(rec[2:], e.Y)
	binary.LittleEndian.PutUint64(rec[4:], uint64(e.TS))
	rec[12] = byte(e.Pol)
	return rec
}

func TestReadBinaryTruncatedMagic(t *testing.T) {
	_, err := ReadBinary(bytes.NewReader([]byte("EV")))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("truncated magic: got %v", err)
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(bytes.NewReader([]byte("NOPE\x01\x00\x00\x00")))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: got %v", err)
	}
}

func TestReadBinaryTruncatedHeader(t *testing.T) {
	// Valid magic, then only half the header.
	buf := append([]byte("EVAR"), make([]byte, 5)...)
	_, err := ReadBinary(bytes.NewReader(buf))
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("truncated header: got %v", err)
	}
}

func TestReadBinaryVersionMismatch(t *testing.T) {
	buf := validHeader(99, 8, 8, 0)
	_, err := ReadBinary(bytes.NewReader(buf))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version mismatch: got %v", err)
	}
}

func TestReadBinaryCountZeroRunsToEOF(t *testing.T) {
	// count=0 is the append-friendly mode: records run to EOF and the
	// count check is skipped.
	buf := validHeader(1, 16, 12, 0)
	want := []Event{
		{X: 1, Y: 2, TS: 100, Pol: On},
		{X: 3, Y: 4, TS: 200, Pol: Off},
		{X: 5, Y: 6, TS: 300, Pol: On},
	}
	for _, e := range want {
		buf = append(buf, record(e)...)
	}
	s, err := ReadBinary(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if s.Width != 16 || s.Height != 12 {
		t.Fatalf("geometry %dx%d, want 16x12", s.Width, s.Height)
	}
	if len(s.Events) != len(want) {
		t.Fatalf("read %d events, want %d", len(s.Events), len(want))
	}
	for i, e := range want {
		if s.Events[i] != e {
			t.Fatalf("event %d = %v, want %v", i, s.Events[i], e)
		}
	}
}

func TestReadBinaryCountZeroEmptyRoundTrip(t *testing.T) {
	// A count=0 header with no records decodes to an empty stream.
	s, err := ReadBinary(bytes.NewReader(validHeader(1, 4, 4, 0)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("read %d events from empty body", s.Len())
	}
	// And writing it back yields a decodable stream again.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil || back.Len() != 0 || back.Width != 4 {
		t.Fatalf("round trip: %v, %+v", err, back)
	}
}

func TestReadBinaryTruncatedRecord(t *testing.T) {
	buf := validHeader(1, 8, 8, 0)
	buf = append(buf, record(Event{X: 1, Y: 1, TS: 10, Pol: On})...)
	buf = append(buf, 0x01, 0x02, 0x03) // 3 bytes of a 13-byte record
	_, err := ReadBinary(bytes.NewReader(buf))
	if err == nil || !strings.Contains(err.Error(), "record") {
		t.Fatalf("truncated record: got %v", err)
	}
}

func TestReadBinaryCountMismatch(t *testing.T) {
	// Header promises 5 records, body carries 2.
	buf := validHeader(1, 8, 8, 5)
	buf = append(buf, record(Event{X: 1, Y: 1, TS: 10, Pol: On})...)
	buf = append(buf, record(Event{X: 2, Y: 2, TS: 20, Pol: Off})...)
	_, err := ReadBinary(bytes.NewReader(buf))
	if err == nil || !strings.Contains(err.Error(), "header count 5 but read 2") {
		t.Fatalf("count mismatch: got %v", err)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("")); err == nil {
		t.Fatal("empty text accepted")
	}
	if _, err := ReadText(strings.NewReader("10 10\n5 x y z\n")); err == nil {
		t.Fatal("malformed record accepted")
	}
}
