package events

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary codec. The on-disk layout is a small header followed by one
// 13-byte record per event:
//
//	magic   [4]byte  "EVAR"
//	version uint16
//	width   uint16
//	height  uint16
//	count   uint64
//	records: x uint16, y uint16, ts int64, pol int8
//
// All integers are little-endian. The format is append-friendly: count
// may be zero, in which case records run to EOF.

const (
	binaryMagic   = "EVAR"
	binaryVersion = 1
	recordSize    = 2 + 2 + 8 + 1
)

// WriteBinary serializes the stream to w in the EVAR binary format.
func WriteBinary(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 2+2+2+8)
	binary.LittleEndian.PutUint16(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(s.Width))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(s.Height))
	binary.LittleEndian.PutUint64(hdr[6:], uint64(len(s.Events)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, recordSize)
	for _, e := range s.Events {
		binary.LittleEndian.PutUint16(rec[0:], e.X)
		binary.LittleEndian.PutUint16(rec[2:], e.Y)
		binary.LittleEndian.PutUint64(rec[4:], uint64(e.TS))
		rec[12] = byte(e.Pol)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a stream from the EVAR binary format.
func ReadBinary(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("events: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("events: bad magic %q", magic)
	}
	hdr := make([]byte, 2+2+2+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("events: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("events: unsupported version %d", v)
	}
	s := NewStream(int(binary.LittleEndian.Uint16(hdr[2:])), int(binary.LittleEndian.Uint16(hdr[4:])))
	count := binary.LittleEndian.Uint64(hdr[6:])
	if count > 0 {
		// The header count sizes the buffer but is untrusted input: a
		// malformed stream can claim 2^64 events where the body holds
		// none. Cap the preallocation and let append grow the slice from
		// what the reader actually delivers.
		pre := count
		if pre > 1<<16 {
			pre = 1 << 16
		}
		s.Events = make([]Event, 0, pre)
	}
	rec := make([]byte, recordSize)
	for {
		_, err := io.ReadFull(br, rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("events: reading record: %w", err)
		}
		e := Event{
			X:   binary.LittleEndian.Uint16(rec[0:]),
			Y:   binary.LittleEndian.Uint16(rec[2:]),
			TS:  int64(binary.LittleEndian.Uint64(rec[4:])),
			Pol: Polarity(int8(rec[12])),
		}
		s.Events = append(s.Events, e)
	}
	if count > 0 && uint64(len(s.Events)) != count {
		return nil, fmt.Errorf("events: header count %d but read %d records", count, len(s.Events))
	}
	return s, nil
}

// WriteText serializes the stream in the whitespace-separated text
// format common to event-camera datasets: a "width height" header line
// followed by one "t x y p" line per event with p in {0,1} (0 = OFF).
func WriteText(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", s.Width, s.Height); err != nil {
		return err
	}
	for _, e := range s.Events {
		p := 0
		if e.Pol == On {
			p = 1
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.TS, e.X, e.Y, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	var w, h int
	if _, err := fmt.Fscanf(br, "%d %d\n", &w, &h); err != nil {
		return nil, fmt.Errorf("events: reading text header: %w", err)
	}
	s := NewStream(w, h)
	for {
		var ts int64
		var x, y, p int
		_, err := fmt.Fscanf(br, "%d %d %d %d\n", &ts, &x, &y, &p)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("events: reading text record %d: %w", s.Len(), err)
		}
		pol := Off
		if p == 1 {
			pol = On
		}
		s.Append(Event{X: uint16(x), Y: uint16(y), TS: ts, Pol: pol})
	}
	return s, nil
}
