package events

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHotPixels(t *testing.T) {
	s := NewStream(8, 8)
	// Background: 16 pixels fire once each.
	for i := 0; i < 16; i++ {
		s.Append(Event{X: uint16(i % 8), Y: uint16(i / 8), TS: int64(i), Pol: On})
	}
	// One pixel fires 100 times.
	for i := 0; i < 100; i++ {
		s.Append(Event{X: 7, Y: 7, TS: int64(100 + i), Pol: On})
	}
	hot, err := s.HotPixels(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 1 || hot[0] != [2]uint16{7, 7} {
		t.Fatalf("hot=%v", hot)
	}
	clean := s.RemoveHotPixels(hot)
	if clean.Len() != 16 {
		t.Fatalf("cleaned len=%d", clean.Len())
	}
	if _, err := s.HotPixels(1); err == nil {
		t.Fatal("factor 1 accepted")
	}
	if _, err := NewStream(0, 0).HotPixels(5); err == nil {
		t.Fatal("no geometry accepted")
	}
	empty := NewStream(4, 4)
	if hot, err := empty.HotPixels(5); err != nil || hot != nil {
		t.Fatal("empty stream should yield no hot pixels")
	}
}

func TestBackgroundActivityFilter(t *testing.T) {
	s := NewStream(16, 16)
	// A supported pair: neighbor events 1 ms apart.
	s.Append(Event{X: 5, Y: 5, TS: 1000, Pol: On})
	s.Append(Event{X: 6, Y: 5, TS: 1500, Pol: On}) // supported by (5,5)
	// An isolated noise event far away in space and time.
	s.Append(Event{X: 12, Y: 12, TS: 2000, Pol: Off})
	// A repeat at the same pixel within the window (self-support).
	s.Append(Event{X: 12, Y: 12, TS: 2500, Pol: Off})
	out, err := s.BackgroundActivityFilter(1000)
	if err != nil {
		t.Fatal(err)
	}
	// First event unsupported, second supported, third unsupported,
	// fourth self-supported.
	if out.Len() != 2 {
		t.Fatalf("kept %d events: %v", out.Len(), out.Events)
	}
	if out.Events[0].X != 6 || out.Events[1].X != 12 {
		t.Fatalf("kept wrong events: %v", out.Events)
	}
	if _, err := s.BackgroundActivityFilter(0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestBAFKeepsDenseMotionDropsNoise(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := NewStream(64, 64)
	// A moving vertical edge: columns fire in sequence, tightly packed.
	for step := 0; step < 50; step++ {
		x := uint16(step)
		for y := 0; y < 64; y += 2 {
			s.Append(Event{X: x, Y: uint16(y), TS: int64(step * 500), Pol: On})
		}
	}
	edgeCount := s.Len()
	// Sprinkle isolated noise.
	for i := 0; i < 200; i++ {
		s.Append(Event{
			X: uint16(r.Intn(64)), Y: uint16(r.Intn(64)),
			TS: int64(r.Intn(25000)), Pol: Off,
		})
	}
	s.Sort()
	out, err := s.BackgroundActivityFilter(1500)
	if err != nil {
		t.Fatal(err)
	}
	kept := float64(out.Len()) / float64(edgeCount)
	if kept < 0.5 {
		t.Fatalf("BAF dropped too much structure: kept %.2f of edge count", kept)
	}
	if out.Len() >= s.Len() {
		t.Fatal("BAF dropped nothing")
	}
}

func TestRefractoryFilter(t *testing.T) {
	s := NewStream(4, 4)
	for _, ts := range []int64{0, 100, 300, 1200, 1250} {
		s.Append(Event{X: 1, Y: 1, TS: ts, Pol: On})
	}
	out, err := s.RefractoryFilter(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Keep 0 (first), drop 100 and 300, keep 1200, drop 1250.
	if out.Len() != 2 || out.Events[1].TS != 1200 {
		t.Fatalf("kept %v", out.Events)
	}
	if _, err := s.RefractoryFilter(0); err == nil {
		t.Fatal("zero period accepted")
	}
}

// Property: filters never invent events and preserve order.
func TestFiltersProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomStream(r, 150)
		baf, err := s.BackgroundActivityFilter(int64(1 + r.Intn(5000)))
		if err != nil {
			return false
		}
		refr, err := s.RefractoryFilter(int64(1 + r.Intn(5000)))
		if err != nil {
			return false
		}
		for _, out := range []*Stream{baf, refr} {
			if out.Len() > s.Len() {
				return false
			}
			if !out.Sorted() {
				return false
			}
			if out.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
