package events

import (
	"fmt"
	"sort"
)

// Event-stream denoising filters. Real DVS pipelines run these between
// the sensor and the framing stage: hot pixels (stuck or overly
// sensitive photoreceptors) fire orders of magnitude above their
// neighbors, and shot-noise events have no spatio-temporal support.
// E2SF consumes the cleaned stream; the filters keep the density
// statistics the rest of the pipeline depends on trustworthy.

// HotPixels returns the coordinates of pixels whose event count
// exceeds factor times the mean count of active pixels. factor must be
// > 1; typical values are 5-20.
func (s *Stream) HotPixels(factor float64) ([][2]uint16, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("events: hot-pixel factor must be > 1, got %f", factor)
	}
	if s.Width <= 0 || s.Height <= 0 {
		return nil, ErrNoGeometry
	}
	counts := make([]int, s.Width*s.Height)
	active := 0
	for _, e := range s.Events {
		idx := int(e.Y)*s.Width + int(e.X)
		if counts[idx] == 0 {
			active++
		}
		counts[idx]++
	}
	if active == 0 {
		return nil, nil
	}
	mean := float64(len(s.Events)) / float64(active)
	var out [][2]uint16
	for idx, c := range counts {
		if float64(c) > factor*mean {
			out = append(out, [2]uint16{uint16(idx % s.Width), uint16(idx / s.Width)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][0] < out[j][0]
	})
	return out, nil
}

// RemoveHotPixels drops all events from the listed pixels.
func (s *Stream) RemoveHotPixels(pixels [][2]uint16) *Stream {
	bad := make(map[uint32]bool, len(pixels))
	for _, p := range pixels {
		bad[uint32(p[1])<<16|uint32(p[0])] = true
	}
	return s.Filter(func(e Event) bool {
		return !bad[uint32(e.Y)<<16|uint32(e.X)]
	})
}

// BackgroundActivityFilter removes events with no recent spatio-
// temporal support: an event survives only if one of its 8 spatial
// neighbors (or the pixel itself) produced an event within windowUS
// before it. This is the classic BAF denoiser; windowUS around a few
// milliseconds removes shot noise while keeping motion edges. The
// stream must be sorted.
func (s *Stream) BackgroundActivityFilter(windowUS int64) (*Stream, error) {
	if windowUS <= 0 {
		return nil, fmt.Errorf("events: BAF window must be positive, got %d", windowUS)
	}
	if s.Width <= 0 || s.Height <= 0 {
		return nil, ErrNoGeometry
	}
	last := make([]int64, s.Width*s.Height)
	for i := range last {
		last[i] = -1 << 62
	}
	out := NewStream(s.Width, s.Height)
	for _, e := range s.Events {
		x, y := int(e.X), int(e.Y)
		supported := false
	neighbors:
		for dy := -1; dy <= 1; dy++ {
			ny := y + dy
			if ny < 0 || ny >= s.Height {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := x + dx
				if nx < 0 || nx >= s.Width {
					continue
				}
				if e.TS-last[ny*s.Width+nx] <= windowUS {
					supported = true
					break neighbors
				}
			}
		}
		last[y*s.Width+x] = e.TS
		if supported {
			out.Append(e)
		}
	}
	return out, nil
}

// RefractoryFilter drops events from a pixel that fire within
// periodUS of that pixel's previous (kept) event — mimicking the
// sensor-side refractory mechanism for streams recorded without one.
func (s *Stream) RefractoryFilter(periodUS int64) (*Stream, error) {
	if periodUS <= 0 {
		return nil, fmt.Errorf("events: refractory period must be positive, got %d", periodUS)
	}
	if s.Width <= 0 || s.Height <= 0 {
		return nil, ErrNoGeometry
	}
	last := make([]int64, s.Width*s.Height)
	for i := range last {
		last[i] = -1 << 62
	}
	out := NewStream(s.Width, s.Height)
	for _, e := range s.Events {
		idx := int(e.Y)*s.Width + int(e.X)
		if e.TS-last[idx] >= periodUS {
			out.Append(e)
			last[idx] = e.TS
		}
	}
	return out, nil
}
