package events

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// validBinary builds a small well-formed EVAR stream for the seed
// corpus.
func validBinary(t testing.TB) []byte {
	s := NewStream(8, 6)
	s.Append(Event{X: 1, Y: 2, TS: 100, Pol: On})
	s.Append(Event{X: 3, Y: 4, TS: 250, Pol: Off})
	s.Append(Event{X: 7, Y: 5, TS: 260, Pol: On})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadBinary hammers the EVAR wire decoder with malformed input —
// the exact bytes a serving node accepts from untrusted clients. The
// decoder must never panic, and anything it accepts must re-encode and
// re-decode to the same stream.
func FuzzReadBinary(f *testing.F) {
	valid := validBinary(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated record
	f.Add(valid[:7])            // truncated header
	f.Add([]byte("EVAR"))
	f.Add([]byte("EVIL\x01\x00"))
	// Header claiming 2^40 events over an empty body: the allocation
	// bomb the bounded preallocation defuses.
	bomb := []byte("EVAR")
	hdr := make([]byte, 14)
	binary.LittleEndian.PutUint16(hdr[0:], 1)
	binary.LittleEndian.PutUint16(hdr[2:], 346)
	binary.LittleEndian.PutUint16(hdr[4:], 260)
	binary.LittleEndian.PutUint64(hdr[6:], 1<<40)
	f.Add(append(bomb, hdr...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, s); err != nil {
			t.Fatalf("re-encoding accepted stream: %v", err)
		}
		s2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if s2.Len() != s.Len() || s2.Width != s.Width || s2.Height != s.Height {
			t.Fatalf("roundtrip mismatch: %dx%d/%d events vs %dx%d/%d",
				s.Width, s.Height, s.Len(), s2.Width, s2.Height, s2.Len())
		}
	})
}

// FuzzReadText covers the whitespace text codec the dataset tooling
// reads: no panics, and accepted input survives a roundtrip.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("8 6\n100 1 2 1\n250 3 4 0\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("-3 -9\n1 2 3 4\n"))
	f.Add([]byte("abc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, s); err != nil {
			t.Fatalf("re-encoding accepted stream: %v", err)
		}
		s2, err := ReadText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if s2.Len() != s.Len() {
			t.Fatalf("roundtrip event count %d != %d", s2.Len(), s.Len())
		}
	})
}
