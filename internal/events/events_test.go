package events

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mk(w, h int, evs ...Event) *Stream {
	s := NewStream(w, h)
	s.Events = append(s.Events, evs...)
	return s
}

func TestPolarity(t *testing.T) {
	if On.String() != "ON" || Off.String() != "OFF" {
		t.Fatalf("polarity strings: %s %s", On, Off)
	}
	if !On.Valid() || !Off.Valid() || Polarity(0).Valid() || Polarity(2).Valid() {
		t.Fatal("polarity validity wrong")
	}
}

func TestStreamBasics(t *testing.T) {
	s := mk(4, 4,
		Event{X: 0, Y: 0, TS: 10, Pol: On},
		Event{X: 1, Y: 2, TS: 20, Pol: Off},
		Event{X: 3, Y: 3, TS: 45, Pol: On},
	)
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	if s.TStart() != 10 || s.TEnd() != 45 || s.Duration() != 35 {
		t.Fatalf("bounds %d %d %d", s.TStart(), s.TEnd(), s.Duration())
	}
	on, off := s.CountByPolarity()
	if on != 2 || off != 1 {
		t.Fatalf("polarity counts %d %d", on, off)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
}

func TestEmptyStream(t *testing.T) {
	s := NewStream(10, 10)
	if s.TStart() != 0 || s.TEnd() != 0 || s.Duration() != 0 {
		t.Fatal("empty stream bounds must be zero")
	}
	if s.EventRate() != 0 {
		t.Fatal("empty stream rate must be zero")
	}
	if got := s.Windows(100); got != nil {
		t.Fatalf("empty stream windows = %v", got)
	}
	if s.ActivePixels() != 0 || s.SpatialDensity() != 0 {
		t.Fatal("empty stream density must be zero")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		s    *Stream
	}{
		{"geometry", mk(2, 2, Event{X: 5, Y: 0, TS: 1, Pol: On})},
		{"order", mk(4, 4, Event{TS: 10, Pol: On}, Event{TS: 5, Pol: On})},
		{"polarity", mk(4, 4, Event{TS: 1, Pol: 0})},
		{"nogeom", mk(0, 0)},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSort(t *testing.T) {
	s := mk(4, 4,
		Event{X: 1, TS: 30, Pol: On},
		Event{X: 2, TS: 10, Pol: Off},
		Event{X: 3, TS: 20, Pol: On},
	)
	if s.Sorted() {
		t.Fatal("should be unsorted")
	}
	s.Sort()
	if !s.Sorted() {
		t.Fatal("Sort failed")
	}
	if s.Events[0].X != 2 || s.Events[2].X != 1 {
		t.Fatalf("order wrong: %v", s.Events)
	}
}

func TestSliceAndWindows(t *testing.T) {
	s := NewStream(4, 4)
	for i := 0; i < 100; i++ {
		s.Append(Event{X: uint16(i % 4), Y: uint16(i / 25), TS: int64(i * 10), Pol: On})
	}
	mid := s.Slice(200, 500)
	if mid.Len() != 30 {
		t.Fatalf("slice len=%d", mid.Len())
	}
	if mid.TStart() != 200 || mid.TEnd() != 490 {
		t.Fatalf("slice bounds %d %d", mid.TStart(), mid.TEnd())
	}
	ws := s.Windows(250)
	if len(ws) != 4 {
		t.Fatalf("windows=%d", len(ws))
	}
	total := 0
	for _, w := range ws {
		total += w.Stream.Len()
	}
	if total != s.Len() {
		t.Fatalf("windows lose events: %d != %d", total, s.Len())
	}
}

func TestFilterAndROI(t *testing.T) {
	s := mk(10, 10,
		Event{X: 1, Y: 1, TS: 1, Pol: On},
		Event{X: 5, Y: 5, TS: 2, Pol: Off},
		Event{X: 9, Y: 9, TS: 3, Pol: On},
	)
	if got := s.FilterPolarity(On).Len(); got != 2 {
		t.Fatalf("on filter: %d", got)
	}
	roi, err := s.ROI(4, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if roi.Len() != 1 || roi.Events[0].X != 1 || roi.Events[0].Y != 1 {
		t.Fatalf("roi wrong: %v", roi.Events)
	}
	if roi.Width != 4 || roi.Height != 4 {
		t.Fatalf("roi geometry %dx%d", roi.Width, roi.Height)
	}
	if _, err := s.ROI(5, 5, 3, 3); err == nil {
		t.Fatal("inverted ROI accepted")
	}
	if _, err := s.ROI(0, 0, 11, 11); err == nil {
		t.Fatal("oversized ROI accepted")
	}
}

func TestMerge(t *testing.T) {
	a := mk(4, 4, Event{TS: 1, Pol: On}, Event{TS: 5, Pol: On})
	b := mk(4, 4, Event{TS: 2, Pol: Off}, Event{TS: 9, Pol: Off})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sorted() || m.Len() != 4 {
		t.Fatalf("merge wrong: %v", m.Events)
	}
	if _, err := Merge(a, mk(5, 5)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestDensity(t *testing.T) {
	s := mk(10, 10,
		Event{X: 0, Y: 0, TS: 1, Pol: On},
		Event{X: 0, Y: 0, TS: 2, Pol: Off}, // same pixel
		Event{X: 5, Y: 5, TS: 3, Pol: On},
	)
	if s.ActivePixels() != 2 {
		t.Fatalf("active=%d", s.ActivePixels())
	}
	if d := s.SpatialDensity(); d != 0.02 {
		t.Fatalf("density=%f", d)
	}
}

func TestDensitySeries(t *testing.T) {
	s := NewStream(4, 4)
	// 5 events in [0,100), none in [100,200), 2 in [200,300)
	for _, ts := range []int64{0, 10, 20, 30, 40, 210, 220} {
		s.Append(Event{TS: ts, Pol: On})
	}
	got := s.DensitySeries(100)
	want := []int{5, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("series=%v want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := mk(10, 10,
		Event{X: 0, Y: 0, TS: 0, Pol: On},
		Event{X: 1, Y: 1, TS: 1000000, Pol: Off},
	)
	st := s.Summarize()
	if st.N != 2 || st.On != 1 || st.Off != 1 || st.RateEPS != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func randomStream(r *rand.Rand, n int) *Stream {
	s := NewStream(64, 48)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += r.Int63n(100)
		p := On
		if r.Intn(2) == 0 {
			p = Off
		}
		s.Append(Event{X: uint16(r.Intn(64)), Y: uint16(r.Intn(48)), TS: ts, Pol: p})
	}
	return s
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 1000} {
		s := randomStream(r, n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("n=%d binary round trip mismatch", n)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE00000000000000"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := randomStream(r, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("text round trip mismatch")
	}
}

// Property: windows of any positive duration partition the events.
func TestWindowsPartitionProperty(t *testing.T) {
	f := func(seed int64, durRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomStream(r, 200)
		dur := int64(durRaw)%5000 + 1
		total := 0
		for _, w := range s.Windows(dur) {
			total += w.Stream.Len()
			// every event in a window is inside its bounds
			for _, e := range w.Stream.Events {
				if e.TS < w.T0 || e.TS >= w.T1 {
					return false
				}
			}
		}
		return total == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary codec is lossless for arbitrary sorted streams.
func TestBinaryCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomStream(r, r.Intn(300))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	s := mk(4, 4, Event{TS: 1, Pol: On})
	c := s.Clone()
	c.Events[0].TS = 99
	if s.Events[0].TS != 1 {
		t.Fatal("clone shares storage")
	}
}
