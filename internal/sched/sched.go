// Package sched is the fleet-wide execution scheduler: the shared
// substrate that owns per-device run queues and replaces the
// lock-the-engine-and-submit path everywhere work reaches the
// simulated accelerators. Producers (serving sessions, the multi-task
// runner, benchmarks) submit Requests; the scheduler coalesces
// compatible ones — same coalescing Key: primary device, network,
// plan signature — into micro-batches within a bounded window and
// hands each batch to a consumer-supplied Dispatch function exactly
// once. Keeping dispatch a callback keeps the substrate decoupled from
// any one consumer: serve merges pipeline invocations and prices them
// on the shared hw.Engine, the multi-task runner replays its offline
// job list, tests dispatch synthetic work.
//
// The scheduler runs in two modes:
//
//   - Wall-clock (evserve / evcluster): one dispatcher goroutine per
//     device queue. A dispatcher pops the head request, gathers
//     compatible work already queued, optionally sleeps out the
//     remaining coalescing window to let more arrive, then dispatches.
//     Queues for different devices run concurrently — the engine is
//     internally synchronized per device.
//
//   - Virtual-clock (the scenario harness, ManualDrain servers): no
//     goroutines at all. Submit only enqueues; Pump drains everything
//     pending in deterministic submission order, coalescing compatible
//     requests across the whole pending set. The same (scenario, seed)
//     pair replays byte-identically because dispatch order is a pure
//     function of submission order.
//
// Fairness: queues are FIFO by submission; coalescing only ever pulls
// *compatible* requests forward. An incompatible request behind a
// flash-crowd backlog of B compatible ones therefore waits at most
// ceil(B/MaxBatch) dispatches plus one coalescing window — it can
// never be starved by other sessions' merging (see the starvation
// test).
package sched

import (
	"fmt"
	"sync"
	"time"
)

// Key identifies coalesceable work: requests with equal keys may ride
// one micro-batch. Device routes the request to its run queue (the
// plan's primary device); Net and Sig pin the network and the exact
// plan mapping so merged members price identically.
type Key struct {
	Device int
	Net    string
	Sig    string
}

// Request is one unit of submitted work.
type Request struct {
	// Session names the submitter; Wait blocks on it.
	Session string
	// Key is the coalescing identity (see Key).
	Key Key
	// Units is the request's raw-frame weight, reported in Stats.
	Units int
	// Payload carries the consumer's data (e.g. the invocation plus its
	// plan) through to Dispatch untouched.
	Payload any
	// Done, if non-nil, is called with the batch completion time after
	// the request's batch dispatched. Batches complete in dispatch
	// order and members in submission order, so virtual-mode callbacks
	// are deterministic.
	Done func(endUS float64)
}

// Config tunes a scheduler.
type Config struct {
	// Dispatch executes one micro-batch (1..MaxBatch compatible
	// requests, submission-ordered) and returns its completion time in
	// virtual microseconds. Required. The batch slice is scheduler
	// scratch reused across dispatches — consume it during the call,
	// never retain it.
	Dispatch func(batch []*Request) float64
	// MaxBatch caps micro-batch members; <= 0 takes DefaultMaxBatch,
	// 1 disables coalescing (the serialized baseline).
	MaxBatch int
	// Window bounds how long a wall-clock dispatcher holds the head
	// request open for more compatible arrivals. 0 coalesces
	// opportunistically (only work already queued). Ignored in virtual
	// mode, where Pump boundaries are the window.
	Window time.Duration
	// Virtual selects the deterministic no-goroutine mode driven by
	// Pump.
	Virtual bool
	// Observe, if non-nil, is called once per executed micro-batch —
	// after Dispatch returns with the batch completion time, before the
	// members' Done callbacks — so a tracing layer can record dispatch
	// instants with batch identity and occupancy. It runs outside the
	// scheduler lock on the dispatching goroutine; virtual mode calls
	// it in deterministic dispatch order.
	Observe func(batch []*Request, endUS float64)
	// Release, if non-nil, is called exactly once per request after ALL
	// scheduler bookkeeping for it has finished — after Done and after
	// the outstanding/per-session counters were decremented (which read
	// r.Session) — so consumers can recycle Request structs through a
	// pool. The scheduler never touches a request after releasing it.
	Release func(r *Request)
}

// DefaultMaxBatch is the micro-batch cap when Config.MaxBatch is 0.
const DefaultMaxBatch = 8

// Stats is the scheduler's monotonic counter snapshot.
type Stats struct {
	// Submitted counts requests accepted; Dispatched counts requests
	// whose batch has executed (Submitted - Dispatched is the live
	// backlog); Dispatches counts batches handed to Dispatch.
	Submitted  uint64 `json:"submitted"`
	Dispatched uint64 `json:"dispatched"`
	Dispatches uint64 `json:"dispatches"`
	// Coalesced counts requests that rode a batch with at least one
	// other member.
	Coalesced uint64 `json:"coalesced"`
	// Units sums the dispatched requests' raw-frame weights.
	Units uint64 `json:"units"`
	// MaxBatchLen is the largest batch dispatched so far.
	MaxBatchLen int `json:"max_batch_len"`
}

// Occupancy is the mean number of requests per executed dispatch
// (1 = fully serialized, >1 = micro-batching is coalescing
// cross-submission work). It counts dispatched members, not accepted
// submissions, so a backlogged live server does not overstate it.
func (s Stats) Occupancy() float64 {
	if s.Dispatches == 0 {
		return 0
	}
	return float64(s.Dispatched) / float64(s.Dispatches)
}

// Merge folds another snapshot in (fleet aggregation across nodes and
// incarnations).
func (s *Stats) Merge(o Stats) {
	s.Submitted += o.Submitted
	s.Dispatched += o.Dispatched
	s.Dispatches += o.Dispatches
	s.Coalesced += o.Coalesced
	s.Units += o.Units
	if o.MaxBatchLen > s.MaxBatchLen {
		s.MaxBatchLen = o.MaxBatchLen
	}
}

// devQueue is one device's wall-clock run queue.
type devQueue struct {
	reqs []*Request
}

// Scheduler owns the run queues. Create with New, submit with Submit;
// stop wall-clock dispatchers with Close (remaining work dispatches
// first).
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on completion and state changes
	stats   Stats
	queues  map[int]*devQueue // wall mode, by Key.Device
	pending []*Request        // virtual mode, submission order
	// outstanding counts submitted-but-not-completed requests, total
	// and per session; Wait and Drain block on them.
	outstanding int
	perSession  map[string]int
	waiters     int // active Wait/Drain calls: dispatchers skip windows
	stopped     bool

	// Virtual-mode scratch reused across Pump cycles so a steady-state
	// pump allocates nothing: retired pending arrays (spares) feed the
	// next swap, takenBuf/batchBuf back the per-cycle coalescing state.
	// pumping guards against a nested Pump (a Done callback calling
	// Wait) corrupting the shared scratch — the nested call falls back
	// to fresh allocations.
	pumping  bool
	spares   [][]*Request
	takenBuf []bool
	batchBuf []*Request

	wg sync.WaitGroup
}

// New validates cfg and returns a scheduler; wall-clock dispatchers
// start lazily, one per device queue, on first submission.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Dispatch == nil {
		return nil, fmt.Errorf("sched: Config.Dispatch is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Scheduler{
		cfg:        cfg,
		queues:     map[int]*devQueue{},
		perSession: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Stats returns the counter snapshot.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QueueDepths reports pending requests per device — the queue-depth
// signal the control plane and the fleet router consume.
func (s *Scheduler) QueueDepths() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[int]int{}
	if s.cfg.Virtual {
		for _, r := range s.pending {
			out[r.Key.Device]++
		}
		return out
	}
	for dev, q := range s.queues {
		if len(q.reqs) > 0 {
			out[dev] = len(q.reqs)
		}
	}
	return out
}

// Pending reports the total number of queued requests.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Virtual {
		return len(s.pending)
	}
	n := 0
	for _, q := range s.queues {
		n += len(q.reqs)
	}
	return n
}

// Submit accepts one request. In virtual mode it only enqueues (Pump
// dispatches); in wall-clock mode it lands on the device's run queue
// and wakes its dispatcher. Submit never blocks on dispatch. A submit
// that races Close (a late HTTP handler on a shutting-down server)
// dispatches inline instead of enqueueing: the dispatchers are gone,
// so an enqueued request would never complete and Wait/Drain would
// hang (and a fresh queue's wg.Add would race Close's wg.Wait).
func (s *Scheduler) Submit(r *Request) {
	s.mu.Lock()
	s.stats.Submitted++
	s.outstanding++
	s.perSession[r.Session]++
	if s.cfg.Virtual {
		s.pending = append(s.pending, r)
		s.mu.Unlock()
		return
	}
	if s.stopped {
		s.mu.Unlock()
		s.dispatch([]*Request{r})
		return
	}
	q, ok := s.queues[r.Key.Device]
	if !ok {
		q = &devQueue{}
		s.queues[r.Key.Device] = q
		s.wg.Add(1)
		go s.dispatcher(q)
	}
	q.reqs = append(q.reqs, r)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// gatherLocked removes up to max-len(batch) requests compatible with
// key from q (preserving submission order) and appends them to batch.
func gatherLocked(q *devQueue, key Key, batch []*Request, max int) []*Request {
	kept := q.reqs[:0]
	for _, r := range q.reqs {
		if len(batch) < max && r.Key == key {
			batch = append(batch, r)
			continue
		}
		kept = append(kept, r)
	}
	// Zero the freed tail so dropped requests do not leak.
	for i := len(kept); i < len(q.reqs); i++ {
		q.reqs[i] = nil
	}
	q.reqs = kept
	return batch
}

// dispatcher drains one device's run queue until Close — the
// wall-clock hot loop: pop the head, gather compatible work, sleep out
// the coalescing window if there is room, dispatch.
func (s *Scheduler) dispatcher(q *devQueue) {
	defer s.wg.Done()
	var batch []*Request // reused across iterations; dispatch must not retain it
	for {
		s.mu.Lock()
		for len(q.reqs) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if len(q.reqs) == 0 && s.stopped {
			s.mu.Unlock()
			return
		}
		head := q.reqs[0]
		q.reqs[0] = nil
		q.reqs = q.reqs[1:]
		batch = append(batch[:0], head)
		batch = gatherLocked(q, head.Key, batch, s.cfg.MaxBatch)
		window := s.cfg.Window
		if s.stopped || s.waiters > 0 {
			window = 0 // hurry: someone is draining or shutting down
		}
		s.mu.Unlock()
		if window > 0 && len(batch) < s.cfg.MaxBatch {
			time.Sleep(window)
			s.mu.Lock()
			batch = gatherLocked(q, head.Key, batch, s.cfg.MaxBatch)
			s.mu.Unlock()
		}
		s.dispatch(batch)
	}
}

// dispatch executes one batch and completes its members.
func (s *Scheduler) dispatch(batch []*Request) {
	end := s.cfg.Dispatch(batch)
	if s.cfg.Observe != nil {
		s.cfg.Observe(batch, end)
	}
	s.mu.Lock()
	s.stats.Dispatches++
	s.stats.Dispatched += uint64(len(batch))
	if len(batch) > s.stats.MaxBatchLen {
		s.stats.MaxBatchLen = len(batch)
	}
	if len(batch) > 1 {
		s.stats.Coalesced += uint64(len(batch))
	}
	for _, r := range batch {
		s.stats.Units += uint64(r.Units)
	}
	s.mu.Unlock()
	for _, r := range batch {
		if r.Done != nil {
			r.Done(end)
		}
	}
	s.mu.Lock()
	for _, r := range batch {
		s.outstanding--
		if s.perSession[r.Session]--; s.perSession[r.Session] == 0 {
			delete(s.perSession, r.Session)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.cfg.Release != nil {
		for _, r := range batch {
			s.cfg.Release(r)
		}
	}
}

// Pump dispatches everything pending in virtual mode and reports
// whether anything ran. Requests submitted by Done callbacks during
// the pass land in the next pending set; callers loop until Pump
// returns false to reach quiescence. Batches form over the whole
// pending set: walking it in submission order, each request opens a
// batch and pulls later compatible requests forward (up to MaxBatch) —
// the Pump boundary is the virtual coalescing window.
func (s *Scheduler) Pump() bool {
	if !s.cfg.Virtual {
		return false
	}
	worked := false
	s.mu.Lock()
	reentrant := s.pumping
	s.pumping = true
	s.mu.Unlock()
	for {
		s.mu.Lock()
		pending := s.pending
		if n := len(s.spares); n > 0 {
			s.pending = s.spares[n-1][:0]
			s.spares = s.spares[:n-1]
		} else {
			s.pending = nil
		}
		s.mu.Unlock()
		if len(pending) == 0 {
			break
		}
		worked = true
		var taken []bool
		var batch []*Request
		if !reentrant {
			// Steady-state path: reuse the shared scratch. A nested Pump
			// (Done → Wait → Pump) would trample it, so that case below
			// allocates fresh.
			if cap(s.takenBuf) < len(pending) {
				s.takenBuf = make([]bool, len(pending))
			}
			taken = s.takenBuf[:len(pending)]
			for i := range taken {
				taken[i] = false
			}
			batch = s.batchBuf[:0]
		} else {
			taken = make([]bool, len(pending))
		}
		for i, r := range pending {
			if taken[i] {
				continue
			}
			batch = append(batch[:0], r)
			for j := i + 1; j < len(pending) && len(batch) < s.cfg.MaxBatch; j++ {
				if !taken[j] && pending[j].Key == r.Key {
					batch = append(batch, pending[j])
					taken[j] = true
				}
			}
			s.dispatch(batch)
		}
		if !reentrant {
			s.batchBuf = batch[:0] // keep any growth for the next cycle
		}
		// Retire this pending array into the spares stack so the next
		// Submit burst reuses its storage; nil the elements first so
		// completed requests do not leak through the scratch.
		for i := range pending {
			pending[i] = nil
		}
		s.mu.Lock()
		s.spares = append(s.spares, pending[:0])
		s.mu.Unlock()
	}
	if !reentrant {
		s.mu.Lock()
		s.pumping = false
		s.mu.Unlock()
	}
	return worked
}

// Wait blocks until the session has no submitted-but-uncompleted work.
// In virtual mode it pumps inline (single-threaded callers own the
// clock); in wall-clock mode it marks itself a waiter so dispatchers
// skip their coalescing windows and drain promptly.
func (s *Scheduler) Wait(session string) {
	if s.cfg.Virtual {
		s.mu.Lock()
		for s.perSession[session] > 0 {
			s.mu.Unlock()
			if !s.Pump() {
				return // nothing pending: callbacks owe the rest
			}
			s.mu.Lock()
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.waiters++
	s.cond.Broadcast()
	for s.perSession[session] > 0 {
		s.cond.Wait()
	}
	s.waiters--
	s.mu.Unlock()
}

// Drain blocks until no work is outstanding anywhere (virtual mode:
// pumps to quiescence).
func (s *Scheduler) Drain() {
	if s.cfg.Virtual {
		for s.Pump() {
		}
		return
	}
	s.mu.Lock()
	s.waiters++
	s.cond.Broadcast()
	for s.outstanding > 0 {
		s.cond.Wait()
	}
	s.waiters--
	s.mu.Unlock()
}

// Close stops the wall-clock dispatchers after they drain their
// queues. Virtual schedulers have no goroutines; Close only marks the
// scheduler stopped.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
