package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recorder is a test Dispatch that logs batches deterministically.
type recorder struct {
	mu      sync.Mutex
	batches [][]string // member session IDs per dispatch
}

func (r *recorder) dispatch(batch []*Request) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, len(batch))
	for i, req := range batch {
		ids[i] = req.Session
	}
	r.batches = append(r.batches, ids)
	return float64(len(r.batches)) * 100
}

func key(dev int, net string) Key { return Key{Device: dev, Net: net, Sig: net} }

// TestVirtualCoalescing pumps a mixed pending set and checks
// compatible requests merge up to MaxBatch while incompatible ones
// dispatch alone, in deterministic submission order.
func TestVirtualCoalescing(t *testing.T) {
	rec := &recorder{}
	s, err := New(Config{Virtual: true, MaxBatch: 3, Dispatch: rec.dispatch})
	if err != nil {
		t.Fatal(err)
	}
	// a a b a a c a: key A coalesces into [a a a] [a a], b and c alone.
	for i, k := range []string{"a", "a", "b", "a", "a", "c", "a"} {
		s.Submit(&Request{Session: fmt.Sprintf("%s%d", k, i), Key: key(0, k), Units: 1})
	}
	if !s.Pump() {
		t.Fatal("Pump dispatched nothing")
	}
	want := [][]string{{"a0", "a1", "a3"}, {"b2"}, {"a4", "a6"}, {"c5"}}
	if len(rec.batches) != len(want) {
		t.Fatalf("batches %v, want %v", rec.batches, want)
	}
	for i := range want {
		if fmt.Sprint(rec.batches[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("batch %d = %v, want %v", i, rec.batches[i], want[i])
		}
	}
	st := s.Stats()
	if st.Submitted != 7 || st.Dispatches != 4 || st.Coalesced != 5 || st.MaxBatchLen != 3 {
		t.Fatalf("stats %+v", st)
	}
	if occ := st.Occupancy(); occ != 7.0/4.0 {
		t.Fatalf("occupancy %f, want 1.75", occ)
	}
}

// TestVirtualDeterminism replays the same submission sequence twice
// and requires the identical dispatch transcript.
func TestVirtualDeterminism(t *testing.T) {
	run := func() [][]string {
		rec := &recorder{}
		s, _ := New(Config{Virtual: true, MaxBatch: 4, Dispatch: rec.dispatch})
		for i := 0; i < 40; i++ {
			k := []string{"a", "b", "c"}[i%3]
			s.Submit(&Request{Session: fmt.Sprintf("s%d", i), Key: key(i%2, k)})
		}
		s.Drain()
		return rec.batches
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same submissions, different dispatch order:\n%v\nvs\n%v", a, b)
	}
}

// TestVirtualDoneResubmits checks Pump-to-quiescence: work submitted
// by a completion callback dispatches in the next pass.
func TestVirtualDoneResubmits(t *testing.T) {
	rec := &recorder{}
	var s *Scheduler
	s, _ = New(Config{Virtual: true, MaxBatch: 2, Dispatch: rec.dispatch})
	resubmitted := false
	s.Submit(&Request{Session: "root", Key: key(0, "a"), Done: func(float64) {
		if !resubmitted {
			resubmitted = true
			s.Submit(&Request{Session: "child", Key: key(0, "a")})
		}
	}})
	s.Drain()
	if len(rec.batches) != 2 {
		t.Fatalf("expected 2 dispatches (root, then child), got %v", rec.batches)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d after Drain", s.Pending())
	}
}

// TestWallCoalescingWindow exercises the wall-clock path: requests
// submitted within one window ride one batch.
func TestWallCoalescingWindow(t *testing.T) {
	rec := &recorder{}
	s, _ := New(Config{MaxBatch: 8, Window: 50 * time.Millisecond, Dispatch: rec.dispatch})
	defer s.Close()
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		s.Submit(&Request{Session: fmt.Sprintf("s%d", i), Key: key(0, "a"),
			Done: func(float64) { done <- struct{}{} }})
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("request never completed")
		}
	}
	st := s.Stats()
	if st.Submitted != 4 || st.Dispatches >= 4 {
		t.Fatalf("no coalescing happened: %+v", st)
	}
}

// TestStarvationBound is the fairness contract: a single low-rate
// session's request queued behind a flash-crowd backlog on the same
// device must dispatch within the bounded number of batches —
// ceil(backlog/MaxBatch) — rather than waiting for the crowd to drain
// one by one, and in wall-clock mode it completes promptly.
func TestStarvationBound(t *testing.T) {
	// Virtual mode: exact bound on the dispatch position.
	rec := &recorder{}
	s, _ := New(Config{Virtual: true, MaxBatch: 8, Dispatch: rec.dispatch})
	const crowd = 40
	for i := 0; i < crowd; i++ {
		s.Submit(&Request{Session: "flood", Key: key(0, "crowd")})
	}
	s.Submit(&Request{Session: "quiet", Key: key(0, "trickle")})
	s.Drain()
	pos := -1
	for i, b := range rec.batches {
		for _, id := range b {
			if id == "quiet" {
				pos = i
			}
		}
	}
	if pos < 0 {
		t.Fatal("low-rate request never dispatched")
	}
	// The crowd collapses into ceil(40/8)=5 batches; the trickle must
	// dispatch no later than right after them.
	if pos > crowd/8 {
		t.Fatalf("low-rate request dispatched at batch %d, want <= %d (crowd must coalesce, not starve)", pos, crowd/8)
	}

	// Wall-clock mode: the same shape completes within a small multiple
	// of the coalescing window.
	slow := &recorder{}
	w, _ := New(Config{MaxBatch: 8, Window: 10 * time.Millisecond, Dispatch: slow.dispatch})
	defer w.Close()
	for i := 0; i < crowd; i++ {
		w.Submit(&Request{Session: "flood", Key: key(0, "crowd")})
	}
	got := make(chan struct{})
	w.Submit(&Request{Session: "quiet", Key: key(0, "trickle"), Done: func(float64) { close(got) }})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("low-rate session starved behind the flash crowd")
	}
}

// TestWaitAndDrain covers the blocking primitives in wall mode.
func TestWaitAndDrain(t *testing.T) {
	rec := &recorder{}
	s, _ := New(Config{MaxBatch: 2, Window: 5 * time.Millisecond, Dispatch: rec.dispatch})
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Submit(&Request{Session: "w", Key: key(i%3, "a")})
	}
	s.Wait("w")
	if n := s.Pending(); n != 0 {
		t.Fatalf("Wait returned with %d pending", n)
	}
	s.Drain()
	if st := s.Stats(); st.Submitted != 10 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSubmitAfterClose pins the shutdown race: a submit landing after
// Close (a late HTTP handler on a stopping server) must dispatch
// inline — never strand on a dispatcherless queue where Done would
// never fire and Wait would hang.
func TestSubmitAfterClose(t *testing.T) {
	rec := &recorder{}
	s, _ := New(Config{MaxBatch: 4, Dispatch: rec.dispatch})
	s.Submit(&Request{Session: "early", Key: key(0, "a")})
	s.Close()
	completed := false
	s.Submit(&Request{Session: "late", Key: key(0, "a"), Done: func(float64) { completed = true }})
	if !completed {
		t.Fatal("post-Close submit did not dispatch inline")
	}
	s.Wait("late") // must not hang
	if st := s.Stats(); st.Submitted != 2 || st.Dispatched != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestConfigErrors pins the constructor contract.
func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Dispatch")
	}
	s, err := New(Config{Dispatch: func([]*Request) float64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.MaxBatch != DefaultMaxBatch {
		t.Fatalf("MaxBatch default %d, want %d", s.cfg.MaxBatch, DefaultMaxBatch)
	}
	if s.Pump() {
		t.Fatal("Pump on a wall-clock scheduler reported work")
	}
	s.Close()
}

// TestObserveHook pins the post-dispatch observer contract: called once
// per micro-batch with the batch and the dispatch end time, after
// Dispatch returns and before any Done callback fires.
func TestObserveHook(t *testing.T) {
	rec := &recorder{}
	type obsCall struct {
		ids []string
		end float64
	}
	var observed []obsCall
	var doneOrder []string
	cfg := Config{Virtual: true, MaxBatch: 3, Dispatch: rec.dispatch}
	cfg.Observe = func(batch []*Request, endUS float64) {
		ids := make([]string, len(batch))
		for i, r := range batch {
			ids[i] = r.Session
		}
		observed = append(observed, obsCall{ids, endUS})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("s%d", i)
		s.Submit(&Request{Session: id, Key: key(0, "a"), Done: func(float64) {
			doneOrder = append(doneOrder, id)
			if got := len(observed); got == 0 {
				t.Errorf("Done for %s fired before Observe", id)
			}
		}})
	}
	s.Drain()
	if len(observed) != len(rec.batches) {
		t.Fatalf("observed %d batches, dispatched %d", len(observed), len(rec.batches))
	}
	for i, o := range observed {
		if fmt.Sprint(o.ids) != fmt.Sprint(rec.batches[i]) {
			t.Fatalf("observe %d saw %v, dispatch saw %v", i, o.ids, rec.batches[i])
		}
		// recorder.dispatch returns 100*dispatchNumber as the end time.
		if want := float64(i+1) * 100; o.end != want {
			t.Fatalf("observe %d end %g, want %g", i, o.end, want)
		}
	}
	if len(doneOrder) != 5 {
		t.Fatalf("done callbacks %v, want all 5", doneOrder)
	}
}
