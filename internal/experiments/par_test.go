package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestParQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.CPUList = []int{1, 4}
	res, err := Run("par", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), 4*len(cfg.CPUList); got != want {
		t.Fatalf("rows = %d, want %d (4 kernels x %d cpu widths)", got, want, len(cfg.CPUList))
	}
	for _, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(res.Header))
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q: %v", row[5], err)
		}
		switch row[1] {
		case "1":
			// One core cannot beat serial; the projection must say so.
			if sp > 1.01 {
				t.Errorf("%s at 1 cpu projects %.2fx > 1x", row[0], sp)
			}
		case "4":
			if sp < 2 {
				t.Errorf("%s at 4 cpus projects %.2fx, want >= 2x", row[0], sp)
			}
		}
	}
}

func TestParRejectsBadCPUList(t *testing.T) {
	cfg := QuickConfig()
	cfg.CPUList = []int{2, 0}
	if _, err := Run("par", cfg); err == nil {
		t.Fatal("cpu width 0 accepted")
	}
}

func TestRulebookQuick(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("rulebook", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 scene + 2 scenario)", len(res.Rows))
	}
	for _, row := range res.Rows {
		frames, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil || frames == 0 {
			t.Fatalf("workload %s: bad frame count %q (%v)", row[0], row[1], err)
		}
		hits, _ := strconv.ParseUint(row[2], 10, 64)
		misses, _ := strconv.ParseUint(row[3], 10, 64)
		if hits+misses != frames {
			t.Errorf("workload %s: hits %d + misses %d != frames %d", row[0], hits, misses, frames)
		}
	}
	// The tracker scene is temporally coherent; the cache must exploit it.
	if row := res.Rows[0]; !strings.HasPrefix(row[0], "scene/") {
		t.Fatalf("first row %q is not a scene workload", row[0])
	} else if hr, _ := strconv.ParseFloat(row[4], 64); hr < 0.5 {
		t.Errorf("%s hit rate %.3f, want >= 0.5", row[0], hr)
	}
}
