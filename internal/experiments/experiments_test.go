package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseRatio extracts the float from a "1.58x" cell.
func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

func TestIDsAllRegistered(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := registry[id]; !ok {
			t.Errorf("id %s not registered", id)
		}
	}
	if len(IDs()) != len(registry) {
		t.Fatalf("IDs lists %d, registry has %d", len(IDs()), len(registry))
	}
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Run("table1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	want := map[string]string{
		"SpikeFlowNet":      "12",
		"Fusion-FlowNet":    "29",
		"Adaptive-SpikeNet": "8",
		"HALSIE":            "16",
		"HidalgoDepth":      "15",
		"DOTIE":             "1",
	}
	for _, row := range res.Rows {
		if got := row[3]; got != want[row[0]] {
			t.Errorf("%s: layers %s want %s", row[0], got, want[row[0]])
		}
	}
}

func TestFig1ShowsWaste(t *testing.T) {
	res, err := Run("fig1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Row 4: wasteful-op factor must be well above 1 (the paper's
	// motivation: most dense operations are wasted).
	factor := parseRatio(t, res.Rows[4][1])
	if factor < 2 {
		t.Fatalf("waste factor %.2f implausibly low", factor)
	}
}

func TestFig3DensityRange(t *testing.T) {
	res, err := Run("fig3", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Densities must span a wide range (paper: 0.15%-28.57%); require
	// at least one below 3% and one above 10%.
	var lo, hi = 100.0, 0.0
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 3 {
		t.Errorf("lowest density %.2f%% too high", lo)
	}
	if hi < 10 {
		t.Errorf("highest density %.2f%% too low", hi)
	}
}

func TestFig5Bursty(t *testing.T) {
	res, err := Run("fig5", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series["events_per_10ms"]
	if len(series) < 100 {
		t.Fatalf("series too short: %d", len(series))
	}
	ratio := parseRatio(t, res.Rows[3][1])
	if ratio < 2 {
		t.Fatalf("peak/mean %.2f not bursty enough for Fig. 5", ratio)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline-heavy")
	}
	res, err := Run("fig8", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	byName := map[string][]string{}
	for _, row := range res.Rows {
		byName[row[0]] = row
	}
	// Every network's combined speedup is at least 1x and within a
	// loose band around the paper's 1.28-2.05x.
	for name, row := range byName {
		all := parseRatio(t, row[3])
		if all < 1.0 || all > 3.0 {
			t.Errorf("%s: combined speedup %.2f outside loose band", name, all)
		}
	}
	// SNN networks gain more than the pure-ANN depth network.
	if parseRatio(t, byName["Adaptive-SpikeNet"][3]) <= parseRatio(t, byName["HidalgoDepth"][3])*0.9 {
		t.Error("all-SNN network should gain at least as much as the ANN network")
	}
	// DSFA merges meaningfully for the flow networks but not for
	// segmentation (pixel-accuracy bound).
	if mr := mustFloat(t, byName["HALSIE"][4]); mr > 1.5 {
		t.Errorf("HALSIE merge ratio %.2f too aggressive for segmentation", mr)
	}
	if mr := mustFloat(t, byName["SpikeFlowNet"][4]); mr < 1.2 {
		t.Errorf("SpikeFlowNet merge ratio %.2f shows no DSFA activity", mr)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEnergyImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline-heavy")
	}
	res, err := Run("energy", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if v := parseRatio(t, row[3]); v < 1.0 || v > 3.0 {
			t.Errorf("%s: energy improvement %.2f outside loose band", row[0], v)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	res, err := Run("fig9", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		vsRRN := parseRatio(t, row[2])
		fpSlower := parseRatio(t, row[4])
		if vsRRN < 1.0 {
			t.Errorf("%s: NMP lost to RR-Network (%.2f)", row[0], vsRRN)
		}
		if fpSlower < 1.0 || fpSlower > 1.6 {
			t.Errorf("%s: NMP-FP penalty %.2f outside loose band", row[0], fpSlower)
		}
	}
}

func TestFig10Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	res, err := Run("fig10a", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	hist := res.Series["best_fitness_per_generation"]
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1]+1e-9 {
			t.Fatalf("fitness regressed at generation %d", i)
		}
	}
	res2, err := Run("fig10b", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := parseRatio(t, res2.Rows[2][1])
	if ratio < 1.0 {
		t.Fatalf("random search beat evolutionary search (%.2f)", ratio)
	}
}

func TestTable2AccuracyWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline-heavy")
	}
	res, err := Run("table2", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Measured Ev-Edge accuracy must be within ~2x of the paper's
	// reported delta from baseline (the ΔA bound mechanics).
	for _, row := range res.Rows {
		base := mustFloat(t, row[2])
		got := mustFloat(t, row[3])
		paper := mustFloat(t, row[4])
		paperDelta := paper - base
		gotDelta := got - base
		if paperDelta < 0 {
			paperDelta, gotDelta = -paperDelta, -gotDelta
		}
		if gotDelta < 0 {
			t.Errorf("%s: accuracy improved (%f), impossible under quantization", row[0], gotDelta)
		}
		if gotDelta > 2*paperDelta+1e-9 {
			t.Errorf("%s: delta %.3f exceeds 2x the paper's %.3f", row[0], gotDelta, paperDelta)
		}
	}
}

func TestRenderText(t *testing.T) {
	res, err := Run("table1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderText(res)
	if !strings.Contains(out, "SpikeFlowNet") || !strings.Contains(out, "paper:") {
		t.Fatalf("render missing content:\n%s", out)
	}
}
