package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"evedge/internal/harness"
	"evedge/internal/nn"
	"evedge/internal/par"
	"evedge/internal/sparse"
)

// The par/rulebook experiments are repo-native (no counterpart in the
// paper): they characterize the host-side parallel kernel path and the
// temporal-coherence rulebook cache. Virtual-time results are
// byte-identical with and without them — these tables are about wall
// clock and cache behaviour, not about the simulated accelerators.

// measureNs times fn (which must already include any per-op loop) by
// repeating it until ~40ms of wall clock accumulates.
func measureNs(fn func()) float64 {
	fn() // warm caches, pools and the branch predictor's first guess
	start := time.Now()
	n := 0
	for time.Since(start) < 40*time.Millisecond {
		fn()
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// parProjectNs is the work-span projection: shards split units with
// the kernels' splitRange arithmetic, the largest shard bounds the
// span, and the measured empty-dispatch cost rides on top.
func parProjectNs(serialNs float64, units, cpus, shards int, overheadNs float64) float64 {
	maxShard := 0
	for s := 0; s < shards; s++ {
		lo, hi := s*units/shards, (s+1)*units/shards
		if hi-lo > maxShard {
			maxShard = hi - lo
		}
	}
	span := serialNs * float64(maxShard) / float64(units)
	if ideal := serialNs / float64(cpus); ideal > span {
		span = ideal
	}
	return span + overheadNs
}

type parNoop struct{}

func (parNoop) RunShard(int, int, *par.Scratch) {}

// Par regenerates the core-scaling table: serial vs tiled sparse
// kernels across Config.CPUList. Measured wall time is whatever the
// host delivers (honest on any core count); the projected column is
// the deterministic work-span bound for the stated core count.
func Par(cfg Config) (*Result, error) {
	cpus := cfg.CPUList
	if len(cpus) == 0 {
		cpus = []int{1, 2, 4, 8}
	}
	size := 128
	if cfg.Quick {
		size = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := sparse.NewTensor(2, size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			if rng.Float64() < 0.05 {
				for c := 0; c < in.C; c++ {
					in.Set(c, y, x, rng.Float32())
				}
			}
		}
	}
	f := sparse.NewFilter(8, 2, 3, 1, 1)
	for i := range f.Weights {
		f.Weights[i] = rng.Float32() - 0.5
	}
	oh, ow := f.OutShape(in.H, in.W)
	outConv := sparse.NewTensor(f.OutC, oh, ow)
	outSub := sparse.NewTensor(f.OutC, in.H, in.W)

	const rows, cols, dcols = 256, 128, 16
	var entries []sparse.COOEntry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.05 {
				entries = append(entries, sparse.COOEntry{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	csr, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		return nil, err
	}
	dmat := sparse.NewMat(cols, dcols)
	for i := range dmat.Data {
		dmat.Data[i] = rng.Float32()
	}
	outMat := sparse.NewMat(rows, dcols)

	kernels := []struct {
		name   string
		units  int
		serial func()
		tiled  func(pool *par.Pool, shards int)
	}{
		{"submanifold_conv2d", in.H * in.W,
			func() { _ = sparse.SubmanifoldConv2DInto(outSub, in, f) },
			func(p *par.Pool, s int) { _ = sparse.SubmanifoldConv2DTiledInto(outSub, in, f, p, s) }},
		{"sparse_conv2d", oh,
			func() { _ = sparse.SparseConv2DInto(outConv, in, f) },
			func(p *par.Pool, s int) { _ = sparse.SparseConv2DTiledInto(outConv, in, f, p, s) }},
		{"conv2d", f.OutC * oh * ow,
			func() { _ = sparse.Conv2DInto(outConv, in, f) },
			func(p *par.Pool, s int) { _ = sparse.Conv2DTiledInto(outConv, in, f, p, s) }},
		{"csr_spmm", rows,
			func() { _ = csr.SpMMInto(outMat, dmat) },
			func(p *par.Pool, s int) { _ = csr.SpMMTiledInto(outMat, dmat, p, s) }},
	}

	res := &Result{
		ID:     "par",
		Title:  "Tiled sparse kernels: measured wall time and work-span core scaling",
		Header: []string{"kernel", "cpus", "serial us/op", "tiled wall us/op", "projected us/op", "projected speedup"},
		PaperRef: "repo-native (no paper counterpart): tiled kernels are bit-identical to serial, " +
			"so only host wall clock changes",
		Notes: []string{
			fmt.Sprintf("host has %d CPU core(s); measured tiled wall time shows real speedup only when the host has the stated cores", runtime.NumCPU()),
			"projected = max(serial/cpus, largest-shard share) + measured empty-dispatch overhead",
		},
	}
	for _, k := range kernels {
		serialNs := measureNs(k.serial)
		for _, c := range cpus {
			if c < 1 {
				return nil, fmt.Errorf("experiments: cpu list entry %d < 1", c)
			}
			pool := par.New(c)
			shards := 2 * c
			overhead := 0.0
			if c > 1 {
				overhead = measureNs(func() { pool.Run(shards, parNoop{}) })
			}
			wallNs := measureNs(func() { k.tiled(pool, shards) })
			pool.Close()
			projNs := parProjectNs(serialNs, k.units, c, shards, overhead)
			res.addRow(k.name, fmt.Sprintf("%d", c),
				fmt.Sprintf("%.1f", serialNs/1e3),
				fmt.Sprintf("%.1f", wallNs/1e3),
				fmt.Sprintf("%.1f", projNs/1e3),
				fmt.Sprintf("%.2fx", serialNs/projNs))
		}
	}
	return res, nil
}

// Rulebook regenerates the temporal-coherence table: rulebook-cache
// hit rates over real scene streams (coherent tracker vs fast
// ego-motion) and over the harness's uniform-random scenario traffic
// (the adversarial worst case — spatially uncorrelated events make
// every frame look like a scene cut, and the cache degrades to a
// rebuild per frame without ever corrupting results).
func Rulebook(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "rulebook",
		Title:  "Rulebook cache temporal coherence: delta-revalidation hit rates",
		Header: []string{"workload", "frames", "hits", "misses", "hit rate", "sites carried", "saved scan elems"},
		PaperRef: "repo-native (no paper counterpart): coherence is a property of the event stream; " +
			"results are identical on hit and miss paths",
	}
	for _, name := range []string{nn.DOTIE, nn.SpikeFlowNet} {
		net, err := nn.ByName(name)
		if err != nil {
			return nil, err
		}
		frames, _, err := frameStats(cfg, net)
		if err != nil {
			return nil, err
		}
		cache := sparse.NewRulebookCache(3, 0)
		var saved uint64
		for _, fr := range frames {
			as, _ := cache.Observe(fr)
			if n := fr.H*fr.W - as.Sites(); n > 0 {
				saved += uint64(n)
			}
		}
		st := cache.Stats()
		res.addRow("scene/"+name,
			fmt.Sprintf("%d", st.Frames), fmt.Sprintf("%d", st.Hits), fmt.Sprintf("%d", st.Misses),
			fmt.Sprintf("%.3f", st.HitRate()),
			fmt.Sprintf("%d", st.SitesCarried), fmt.Sprintf("%d", saved))
	}
	parallel := cfg.Parallel
	if parallel <= 1 {
		parallel = 8
	}
	for _, name := range []string{"steady", "dynamics-flip"} {
		sc, err := harness.Get(name)
		if err != nil {
			return nil, err
		}
		sc.Parallel = parallel
		run, err := harness.Run(sc, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rb := run.Rulebook
		res.addRow("scenario/"+name,
			fmt.Sprintf("%d", rb.Frames), fmt.Sprintf("%d", rb.Hits), fmt.Sprintf("%d", rb.Misses),
			fmt.Sprintf("%.3f", rb.HitRate()),
			fmt.Sprintf("%d", rb.SitesCarried), fmt.Sprintf("%d", rb.SavedScanElems))
	}
	res.Notes = append(res.Notes,
		"scene rows observe E2SF frame streams directly; scenario rows run the fleet harness with Script.Parallel="+fmt.Sprint(parallel),
		"scenario traffic is uniform-random synthetic events: zero spatial coherence by construction, the cache's worst case")
	return res, nil
}
