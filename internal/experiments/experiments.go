// Package experiments regenerates every table and figure of the
// paper's evaluation (Sec. 5-6). Each experiment is a named generator
// returning a structured Result (header + rows + optional series) plus
// the paper's reference band, so cmd/evbench and the benchmark harness
// can print paper-vs-measured side by side and EXPERIMENTS.md can
// record the comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"evedge/internal/scene"
)

// Config sizes an experiment run.
type Config struct {
	// Scale selects camera resolution; Full reproduces the DAVIS346
	// geometry, Half keeps CI fast.
	Scale scene.Scale
	// DurUS is the simulated stream duration per sequence.
	DurUS int64
	// Seed drives every stochastic component.
	Seed int64
	// Quick shrinks search budgets (for tests); the full runs use the
	// paper-scale defaults.
	Quick bool
	// Parallel sets the kernel worker-pool width for the experiments
	// that exercise the host-parallel path (<= 1 keeps their default).
	Parallel int
	// CPUList is the core counts the "par" experiment sweeps (empty
	// uses 1,2,4,8).
	CPUList []int
}

// DefaultConfig returns the full-fidelity settings.
func DefaultConfig() Config {
	return Config{Scale: scene.Full, DurUS: 2_000_000, Seed: 7}
}

// QuickConfig returns fast settings for tests.
func QuickConfig() Config {
	return Config{Scale: scene.Half, DurUS: 1_200_000, Seed: 7, Quick: true}
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Series holds figure data (e.g. fitness per generation, events
	// per time bucket).
	Series map[string][]float64
	// PaperRef states what the paper reports for this artifact.
	PaperRef string
	// Notes records calibration caveats and observed deltas.
	Notes []string
}

func (r *Result) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Generator produces one experiment result.
type Generator func(Config) (*Result, error)

var registry = map[string]Generator{
	"fig1":     Fig1,
	"fig3":     Fig3,
	"fig5":     Fig5,
	"fig8":     Fig8,
	"energy":   Energy,
	"fig9":     Fig9,
	"fig10a":   Fig10a,
	"fig10b":   Fig10b,
	"table1":   Table1,
	"table2":   Table2,
	"par":      Par,
	"rulebook": Rulebook,
}

// IDs lists the experiment identifiers in presentation order.
func IDs() []string {
	return []string{"table1", "fig1", "fig3", "fig5", "fig8", "energy", "fig9", "fig10a", "fig10b", "table2", "par", "rulebook"}
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		ids := IDs()
		sort.Strings(ids)
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
	}
	return g(cfg)
}

// RenderText formats a result as an aligned text table.
func RenderText(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperRef != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperRef)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	var keys []string
	for k := range r.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "series %s: ", k)
		for i, v := range r.Series[k] {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.3g", v)
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
