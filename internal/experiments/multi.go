package experiments

import (
	"fmt"

	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

// MultiTaskConfigs returns the paper's concurrent-execution mixes: an
// all-ANN pair, an all-SNN pair, and a four-network mixed SNN-ANN
// configuration (Sec. 5).
func MultiTaskConfigs() map[string][]string {
	return map[string][]string{
		"all-ANN":   {nn.EVFlowNet, nn.HidalgoDepth},
		"all-SNN":   {nn.DOTIE, nn.AdaptiveSpikeNet},
		"mixed-SNN": {nn.FusionFlowNet, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth},
	}
}

// multiTaskOrder presents configurations in the paper's order.
func multiTaskOrder() []string { return []string{"all-ANN", "all-SNN", "mixed-SNN"} }

// workloadDensity measures each network's mean event-frame density on
// its own preset so the profile DB matches runtime conditions.
func workloadDensity(cfg Config, names []string) ([]*nn.Network, []float64, error) {
	nets := make([]*nn.Network, len(names))
	dens := make([]float64, len(names))
	for i, name := range names {
		nets[i] = nn.MustByName(name)
		_, d, err := frameStats(cfg, nets[i])
		if err != nil {
			return nil, nil, err
		}
		dens[i] = d
	}
	return nets, dens, nil
}

// buildMapper profiles a workload and constructs the Network Mapper.
func buildMapper(cfg Config, names []string, fullPrec bool) (*nmp.Mapper, []*nn.Network, error) {
	nets, dens, err := workloadDensity(cfg, names)
	if err != nil {
		return nil, nil, err
	}
	platform := XavierPlatform()
	model := perf.NewModel(platform)
	db, err := perf.BuildProfileDB(model, nets, true, dens)
	if err != nil {
		return nil, nil, err
	}
	ncfg := nmpConfig(cfg, cfg.Seed+3)
	ncfg.FullPrecisionOnly = fullPrec
	mp, err := nmp.NewMapper(db, model, ncfg)
	if err != nil {
		return nil, nil, err
	}
	return mp, nets, nil
}

// Fig9 reproduces Figure 9: multi-task latency of NMP against the
// round-robin baselines and the full-precision NMP variant.
func Fig9(cfg Config) (*Result, error) {
	r := &Result{
		ID: "fig9", Title: "Multi-task execution: NMP vs round-robin scheduling",
		Header:   []string{"Config", "NMP(us)", "vs RR-Network", "vs RR-Layer", "NMP-FP slower by"},
		PaperRef: "Fig. 9: NMP 1.43x-1.81x over RR-Network, 1.24x-1.41x over RR-Layer; NMP-FP 1.05x-1.22x slower than NMP",
	}
	for _, name := range multiTaskOrder() {
		names := MultiTaskConfigs()[name]
		mpFP, _, err := buildMapper(cfg, names, true)
		if err != nil {
			return nil, err
		}
		fpRes, err := mpFP.Search()
		if err != nil {
			return nil, err
		}
		mp, nets, err := buildMapper(cfg, names, false)
		if err != nil {
			return nil, err
		}
		// Warm-start the mixed-precision search with the FP-only result:
		// its search space is a superset, so it must never lose.
		mp.AddSeed(fpRes.Assignment)
		res, err := mp.Search()
		if err != nil {
			return nil, err
		}
		platform := XavierPlatform()
		rrn, err := nmp.RRNetwork(nets, platform)
		if err != nil {
			return nil, err
		}
		rrnRes, err := mp.EvaluatePolicy(rrn)
		if err != nil {
			return nil, err
		}
		rrl, err := nmp.RRLayer(nets, platform)
		if err != nil {
			return nil, err
		}
		rrlRes, err := mp.EvaluatePolicy(rrl)
		if err != nil {
			return nil, err
		}
		r.addRow(name,
			fmt.Sprintf("%.0f", res.LatencyUS),
			fmt.Sprintf("%.2fx", rrnRes.LatencyUS/res.LatencyUS),
			fmt.Sprintf("%.2fx", rrlRes.LatencyUS/res.LatencyUS),
			fmt.Sprintf("%.2fx", fpRes.LatencyUS/res.LatencyUS))
	}
	r.Notes = append(r.Notes,
		"all-SNN overshoots the paper band because the modeled DLA cannot run sparse SNN kernels, amplifying RR-Network's placement penalty",
		"for the two-task all-ANN pair RR-Layer ties RR-Network (balanced load); the paper's ordering holds for the larger mixed configuration")
	return r, nil
}

// Fig10a reproduces Figure 10a: evolutionary-search fitness
// convergence on the mixed SNN-ANN configuration.
func Fig10a(cfg Config) (*Result, error) {
	mp, _, err := buildMapper(cfg, MultiTaskConfigs()["mixed-SNN"], false)
	if err != nil {
		return nil, err
	}
	res, err := mp.Search()
	if err != nil {
		return nil, err
	}
	hist := res.FitnessHistory
	r := &Result{
		ID: "fig10a", Title: "NMP evolutionary search convergence (mixed SNN-ANN)",
		Header:   []string{"Metric", "Value"},
		Series:   map[string][]float64{"best_fitness_per_generation": hist},
		PaperRef: "Fig. 10a: fitness decreases monotonically over generations, minimizing latency and accuracy degradation together",
	}
	r.addRow("generations", fmt.Sprintf("%d", len(hist)))
	r.addRow("initial best fitness", fmt.Sprintf("%.0f", hist[0]))
	r.addRow("final best fitness", fmt.Sprintf("%.0f", hist[len(hist)-1]))
	r.addRow("improvement", fmt.Sprintf("%.2fx", hist[0]/hist[len(hist)-1]))
	r.addRow("final latency (us)", fmt.Sprintf("%.0f", res.LatencyUS))
	r.addRow("feasible", fmt.Sprintf("%v", res.Feasible))
	return r, nil
}

// Fig10b reproduces Figure 10b: NMP-searched configuration latency
// compared to generation-matched random search.
func Fig10b(cfg Config) (*Result, error) {
	mp, _, err := buildMapper(cfg, MultiTaskConfigs()["mixed-SNN"], false)
	if err != nil {
		return nil, err
	}
	evo, err := mp.Search()
	if err != nil {
		return nil, err
	}
	rnd, err := mp.RandomSearch()
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID: "fig10b", Title: "NMP evolutionary search vs random search (mixed SNN-ANN)",
		Header:   []string{"Search", "Latency(us)", "Evaluations"},
		PaperRef: "Fig. 10b: Ev-Edge-NMP is 1.42x faster than random search",
	}
	r.addRow("evolutionary", fmt.Sprintf("%.0f", evo.LatencyUS), fmt.Sprintf("%d", evo.Evaluations))
	r.addRow("random", fmt.Sprintf("%.0f", rnd.LatencyUS), fmt.Sprintf("%d", rnd.Evaluations))
	r.addRow("ratio", fmt.Sprintf("%.2fx", rnd.LatencyUS/evo.LatencyUS), "")
	return r, nil
}
